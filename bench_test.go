package geoind_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section (see DESIGN.md §2 for the experiment index),
// plus per-mechanism latency micro-benchmarks. Each experiment benchmark
// executes its eval runner end to end (with a reduced request workload so a
// single iteration stays in benchmark territory) and publishes the headline
// quantities via b.ReportMetric, so `go test -bench=.` regenerates the
// paper's series. For full-size paper-style tables use:
//
//	go run ./cmd/experiments all

import (
	"testing"

	"geoind"
	"geoind/internal/eval"
	"geoind/internal/geo"
)

// benchContext returns an eval context sized for benchmarking.
func benchContext() *eval.Context {
	c := eval.NewContext()
	c.Requests = 500
	return c
}

// BenchmarkFig3_OPT regenerates Figure 3: OPT utility loss and solve time vs
// grid granularity (expected shape: utility falls, time explodes with g).
func BenchmarkFig3_OPT(b *testing.B) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunFig3([]int{2, 3, 4, 5, 6})
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(first.UtilityLoss, "km_g2")
		b.ReportMetric(last.UtilityLoss, "km_g6")
		b.ReportMetric(last.BuildSeconds/first.BuildSeconds, "time_blowup_x")
	}
}

// BenchmarkFig5_BudgetAccuracy regenerates Figure 5: empirical Pr[x|x]
// against the analytical target rho (expected: within a few percent for
// g >= 3).
func BenchmarkFig5_BudgetAccuracy(b *testing.B) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunFig5([]int{2, 3, 4, 5, 6}, []float64{0.5, 0.7, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxDeviation(true), "max_dev_g3plus")
	}
}

// BenchmarkTable2_MSMvsOPT regenerates Table 2: utility and time of MSM
// against OPT at matched effective granularity (expected: OPT slightly
// better utility, orders of magnitude slower).
func BenchmarkTable2_MSMvsOPT(b *testing.B) {
	c := benchContext()
	maxOpt := 9
	if !testing.Short() {
		maxOpt = 16 // the paper's 72h+ Gurobi case; minutes here
	}
	for i := 0; i < b.N; i++ {
		res, err := c.RunTable2([]int{4, 9, 16}, maxOpt)
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[1] // effective granularity 9
		b.ReportMetric(row.OPTUtility, "opt_km_eff9")
		b.ReportMetric(row.MSMUtility, "msm_km_eff9")
		b.ReportMetric(row.OPTSolveSec/row.MSMColdSec, "opt_over_msm_time_x")
	}
}

// BenchmarkFig6_EpsSweepEuclid regenerates Figure 6: utility (d) vs eps for
// MSM and PL (expected: MSM ~3x better at eps=0.1, converging near eps=1).
func BenchmarkFig6_EpsSweepEuclid(b *testing.B) {
	benchEpsSweep(b, geo.Euclidean)
}

// BenchmarkFig7_EpsSweepSquared regenerates Figure 7: utility (d^2) vs eps
// (expected: up to ~5x gap at small eps).
func BenchmarkFig7_EpsSweepSquared(b *testing.B) {
	benchEpsSweep(b, geo.SquaredEuclidean)
}

func benchEpsSweep(b *testing.B, metric geo.Metric) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunEpsSweep(metric, []float64{0.1, 0.5, 0.9}, []int{4})
		if err != nil {
			b.Fatal(err)
		}
		lowEps, highEps := res.Rows[0], res.Rows[2]
		b.ReportMetric(lowEps.PL/lowEps.MSM, "pl_over_msm_eps01")
		b.ReportMetric(highEps.PL/highEps.MSM, "pl_over_msm_eps09")
	}
}

// BenchmarkFig8_GranularitySweep regenerates Figure 8: MSM utility (d) vs g
// (expected: U shape with the optimum around g=4-5).
func BenchmarkFig8_GranularitySweep(b *testing.B) {
	benchGranularitySweep(b, geo.Euclidean)
}

// BenchmarkFig9_GranularitySweepSquared regenerates Figure 9 (d^2 metric).
func BenchmarkFig9_GranularitySweepSquared(b *testing.B) {
	benchGranularitySweep(b, geo.SquaredEuclidean)
}

func benchGranularitySweep(b *testing.B, metric geo.Metric) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunGranularitySweep(metric, []int{2, 3, 4, 5, 6}, []float64{0.9})
		if err != nil {
			b.Fatal(err)
		}
		best, worst := res.Rows[0].MSM, res.Rows[0].MSM
		for _, row := range res.Rows {
			if row.MSM < best {
				best = row.MSM
			}
			if row.MSM > worst {
				worst = row.MSM
			}
		}
		b.ReportMetric(best, "best_loss")
		b.ReportMetric(worst/best, "worst_over_best_x")
	}
}

// BenchmarkFig10_RhoSweep regenerates Figure 10: MSM utility (d) vs rho.
func BenchmarkFig10_RhoSweep(b *testing.B) {
	benchRhoSweep(b, geo.Euclidean)
}

// BenchmarkFig11_RhoSweepSquared regenerates Figure 11 (d^2 metric).
func BenchmarkFig11_RhoSweepSquared(b *testing.B) {
	benchRhoSweep(b, geo.SquaredEuclidean)
}

func benchRhoSweep(b *testing.B, metric geo.Metric) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunRhoSweep(metric, []float64{0.5, 0.7, 0.9}, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		// g=2 shows the paper's clean decreasing trend; report its spread.
		var first, last float64
		for _, row := range res.Rows {
			if row.G == 2 && row.Dataset == "gowalla-austin-synthetic" {
				if first == 0 {
					first = row.MSM
				}
				last = row.MSM
			}
		}
		b.ReportMetric(first-last, "g2_rho_gain")
	}
}

// BenchmarkMechanismLatency covers the §6.2 timing claims: per-report cost
// of PL, warm MSM, cold MSM and OPT sampling.
func BenchmarkMechanismLatency(b *testing.B) {
	ds := geoind.GowallaSynthetic()
	reqs := ds.SampleRequests(4096, 1)

	b.Run("PL", func(b *testing.B) {
		pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.5, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pl.Report(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("MSM_warm", func(b *testing.B) {
		m, err := geoind.NewMSM(geoind.MSMConfig{
			Eps: 0.5, Region: ds.Region(), Granularity: 4,
			PriorPoints: ds.Points(), Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Precompute(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Report(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("MSM_cold", func(b *testing.B) {
		pts := ds.Points()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := geoind.NewMSM(geoind.MSMConfig{
				Eps: 0.5, Region: ds.Region(), Granularity: 4,
				PriorPoints: pts, Seed: uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Report(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("OPT_sample", func(b *testing.B) {
		o, err := geoind.NewOptimal(geoind.OptimalConfig{
			Eps: 0.5, Region: ds.Region(), Granularity: 6,
			PriorPoints: ds.Points(), Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.Report(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOPTSolve measures the LP solve cost at increasing granularity:
// the scalability wall of Figure 3 in isolation.
func BenchmarkOPTSolve(b *testing.B) {
	ds := geoind.GowallaSynthetic()
	for _, g := range []int{3, 4, 6, 8} {
		b.Run(g2s(g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := geoind.NewOptimal(geoind.OptimalConfig{
					Eps: 0.5, Region: ds.Region(), Granularity: g,
					PriorPoints: ds.Points(), Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func g2s(g int) string {
	return "g=" + string(rune('0'+g))
}

// BenchmarkExtensionAdaptive regenerates the adaptive-vs-grid comparison.
func BenchmarkExtensionAdaptive(b *testing.B) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunAdaptiveComparison([]float64{0.5}, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].GridLoss, "grid_km")
		b.ReportMetric(res.Rows[0].AdaptiveLoss, "adaptive_km")
	}
}

// BenchmarkExtensionSpanner regenerates the spanner-reduced OPT ablation.
func BenchmarkExtensionSpanner(b *testing.B) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunSpannerAblation(6, 0.5, []float64{1.5})
		if err != nil {
			b.Fatal(err)
		}
		full, sp := res.Rows[0], res.Rows[1]
		b.ReportMetric(float64(full.PairFamilies)/float64(sp.PairFamilies), "constraint_reduction_x")
		b.ReportMetric(sp.ExpectedLoss/full.ExpectedLoss, "loss_premium_x")
	}
}

// BenchmarkExtensionAdversary regenerates the Bayesian-adversary
// privacy-utility plane.
func BenchmarkExtensionAdversary(b *testing.B) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunAdversary(9, []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Mechanism {
			case "PL+remap":
				b.ReportMetric(row.AdvError, "pl_adv_err_km")
			case "OPT":
				b.ReportMetric(row.AdvError, "opt_adv_err_km")
			}
		}
	}
}

// BenchmarkExtensionAudit regenerates the effective-epsilon privacy audit.
func BenchmarkExtensionAudit(b *testing.B) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunPrivacyAudit(0.5, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].MaxEffEps, "opt_eff_eps")
		b.ReportMetric(res.Rows[1].MaxEffEps, "msm_eff_eps")
	}
}

// BenchmarkExtensionBudgetAblation regenerates the budget-split ablation.
func BenchmarkExtensionBudgetAblation(b *testing.B) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunBudgetAblation(0.5, 3)
		if err != nil {
			b.Fatal(err)
		}
		var paper, reversed float64
		for _, row := range res.Rows {
			switch row.Strategy {
			case "problem-1 split (paper)":
				paper = row.UtilityLoss
			case "reversed split (leaf-heavy)":
				reversed = row.UtilityLoss
			}
		}
		b.ReportMetric(reversed/paper, "reversed_over_paper_x")
	}
}

// BenchmarkExtensionTrajectory regenerates the trajectory-protection
// comparison (independent vs predictive mechanism).
func BenchmarkExtensionTrajectory(b *testing.B) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunTrajectory(1.0, 300)
		if err != nil {
			b.Fatal(err)
		}
		sedentary := res.Rows[0]
		b.ReportMetric(sedentary.IndSpent/sedentary.PredSpent, "budget_savings_x")
	}
}

// BenchmarkExtensionElastic regenerates the elastic-metric analysis.
func BenchmarkExtensionElastic(b *testing.B) {
	c := benchContext()
	for i := 0; i < b.N; i++ {
		res, err := c.RunElastic(4, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].PrSameSensitive-res.Rows[1].PrSameSensitive, "district_prsame_drop")
	}
}
