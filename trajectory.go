package geoind

import (
	"fmt"
	"math/rand/v2"

	"geoind/internal/trajectory"
)

// TraceStep is one released location of a protected trace with its budget
// cost. Fresh indicates the underlying mechanism ran (false means the
// previous release was re-used after a passed prediction test).
type TraceStep = trajectory.Step

// TraceSummary aggregates a protected trace: steps, fresh reports, total
// budget spent and mean Euclidean loss.
type TraceSummary = trajectory.Summary

// PredictiveConfig parameterizes ReportTracePredictive. Theta is the test
// threshold in km; EpsTest the per-test budget (its Laplace noise scale is
// 1/EpsTest, so keep Theta a few multiples of that for informative tests).
type PredictiveConfig struct {
	Theta   float64
	EpsTest float64
}

// ReportTrace protects a trace by running every point through the mechanism
// independently: total budget = len(points) * mech.Epsilon() by the
// composability property.
func ReportTrace(mech Mechanism, points []Point) ([]TraceStep, TraceSummary, error) {
	steps, err := trajectory.Independent(mech, points)
	if err != nil {
		return nil, TraceSummary{}, err
	}
	sum, err := trajectory.Summarize(points, steps)
	return steps, sum, err
}

// ReportTracePredictive protects a trace with the predictive mechanism of
// Chatzikokolakis et al. (PETS 2014): a cheap eps-test re-releases the
// previous report while the user has not moved beyond Theta, so dwelling
// users spend far less than len(points) * eps.
func ReportTracePredictive(mech Mechanism, points []Point, cfg PredictiveConfig, seed uint64) ([]TraceStep, TraceSummary, error) {
	steps, err := trajectory.Predictive(mech, points, trajectory.PredictiveConfig{
		Theta:   cfg.Theta,
		EpsTest: cfg.EpsTest,
	}, rand.New(rand.NewPCG(seed, 0x9e37)))
	if err != nil {
		return nil, TraceSummary{}, err
	}
	sum, err := trajectory.Summarize(points, steps)
	return steps, sum, err
}

// TraceConfig parameterizes GenerateTraces, the synthetic mobility model
// (anchor dwells + local walks + occasional jumps).
type TraceConfig struct {
	Region     Rect
	Anchors    []Point
	Steps      int
	StayProb   float64
	LocalSigma float64
	JumpProb   float64
	WalkSigma  float64
	Seed       uint64
}

// AdversaryError measures the privacy of released traces empirically: a
// Bayesian attacker with population-level mobility knowledge (the empirical
// prior over a granularity x granularity grid of region) estimates each true
// point from its release by the posterior mean, and the result is the mean
// localization error in km. Larger is better for the user. eps calibrates
// the attacker's likelihood model; use the mechanism's per-report epsilon.
func AdversaryError(region Rect, granularity int, eps float64, traces [][]Point, runs [][]TraceStep) (float64, error) {
	e, err := trajectory.EmpiricalAdversaryError(trajectory.AdversaryConfig{
		Region:      region,
		Granularity: granularity,
		Eps:         eps,
	}, traces, runs)
	if err != nil {
		return 0, fmt.Errorf("geoind: %w", err)
	}
	return e, nil
}

// GenerateTraces produces n synthetic mobility traces; the same config
// always produces the same traces.
func GenerateTraces(n int, cfg TraceConfig) ([][]Point, error) {
	traces, err := trajectory.Generate(n, trajectory.GenConfig{
		Region:     cfg.Region,
		Anchors:    cfg.Anchors,
		Steps:      cfg.Steps,
		StayProb:   cfg.StayProb,
		LocalSigma: cfg.LocalSigma,
		JumpProb:   cfg.JumpProb,
		WalkSigma:  cfg.WalkSigma,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	out := make([][]Point, len(traces))
	for i, tr := range traces {
		out[i] = tr.Points
	}
	return out, nil
}
