package geoind_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"geoind"
)

func TestPlanarLaplaceFacade(t *testing.T) {
	pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Name() != "PL" || pl.Epsilon() != 0.5 {
		t.Errorf("Name=%s Eps=%g", pl.Name(), pl.Epsilon())
	}
	z, err := pl.Report(geoind.Point{X: 5, Y: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(z.X) || math.IsNaN(z.Y) {
		t.Error("NaN report")
	}
	// Remapped variant.
	plr, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{
		Eps: 0.5, Seed: 1, Remap: true, Region: geoind.Square(20), Granularity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plr.Name() != "PL+remap" {
		t.Errorf("Name=%s", plr.Name())
	}
	z, err = plr.Report(geoind.Point{X: 5, Y: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A remapped output is a cell center: coordinates are odd multiples of 2.5.
	for _, v := range []float64{z.X, z.Y} {
		q := v / 2.5
		if math.Abs(q-math.Round(q)) > 1e-9 || int(math.Round(q))%2 == 0 {
			t.Errorf("remapped output %v not a 4x4 cell center", z)
		}
	}
	// Invalid remap config.
	if _, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.5, Remap: true}); err == nil {
		t.Error("remap without grid should error")
	}
}

func TestOptimalFacade(t *testing.T) {
	ds := geoind.YelpSynthetic()
	o, err := geoind.NewOptimal(geoind.OptimalConfig{
		Eps: 0.5, Region: ds.Region(), Granularity: 3,
		PriorPoints: ds.Points(), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "OPT" || o.Epsilon() != 0.5 {
		t.Errorf("Name=%s Eps=%g", o.Name(), o.Epsilon())
	}
	if ex := o.VerifyGeoInd(); ex > 1e-6 {
		t.Errorf("GeoInd excess %g", ex)
	}
	if o.ExpectedLoss() <= 0 {
		t.Errorf("expected loss %g", o.ExpectedLoss())
	}
	k := o.Channel()
	if len(k) != 81 {
		t.Errorf("channel len %d", len(k))
	}
	if _, err := o.Report(geoind.Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestMSMFacade(t *testing.T) {
	ds := geoind.YelpSynthetic()
	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: 0.9, Region: ds.Region(), Granularity: 3,
		PriorPoints: ds.Points(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "MSM" || m.Epsilon() != 0.9 {
		t.Errorf("Name=%s Eps=%g", m.Name(), m.Epsilon())
	}
	split := m.BudgetSplit()
	if len(split) != m.Height() {
		t.Errorf("split len %d height %d", len(split), m.Height())
	}
	sum := 0.0
	for _, e := range split {
		sum += e
	}
	if math.Abs(sum-0.9) > 1e-12 {
		t.Errorf("split sums to %g", sum)
	}
	want := 1
	for i := 0; i < m.Height(); i++ {
		want *= 3
	}
	if m.LeafGranularity() != want {
		t.Errorf("leaf granularity %d want %d", m.LeafGranularity(), want)
	}
	if _, err := m.Report(geoind.Point{X: 4, Y: 16}); err != nil {
		t.Fatal(err)
	}
	queries, solves := m.Stats()
	if queries != 1 || solves < 1 {
		t.Errorf("queries=%d solves=%d", queries, solves)
	}
	if err := m.Precompute(); err != nil {
		t.Fatal(err)
	}
}

// TestMSMMaxSolves: setting MaxSolves alone still builds a shared store (the
// admission bound needs one), reports flow normally under it, and the
// admission counters surface through StoreStats.
func TestMSMMaxSolves(t *testing.T) {
	ds := geoind.YelpSynthetic()
	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: 0.9, Region: ds.Region(), Granularity: 3,
		PriorPoints: ds.Points(), Seed: 3, MaxSolves: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Report(geoind.Point{X: 4, Y: 16}); err != nil {
			t.Fatalf("report %d under max-solves: %v", i, err)
		}
	}
	st := m.StoreStats()
	if st.Misses == 0 {
		t.Error("expected cold solves to go through the admission-bounded store")
	}
	if st.Rejected != 0 || st.Queued != 0 {
		t.Errorf("sequential load should not shed or leave queued solves: %+v", st)
	}
}

func TestEvaluateUtility(t *testing.T) {
	ds := geoind.YelpSynthetic()
	pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	reqs := ds.SampleRequests(500, 9)
	st, err := geoind.EvaluateUtility(pl, reqs, geoind.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 500 {
		t.Errorf("N=%d", st.N)
	}
	// PL mean loss at eps=0.5 should be near 2/eps = 4 km.
	if st.Mean < 2.5 || st.Mean > 6 {
		t.Errorf("PL mean loss %g km, want ~4", st.Mean)
	}
	if st.Max < st.Mean {
		t.Errorf("max %g < mean %g", st.Max, st.Mean)
	}
}

func TestDatasetFacade(t *testing.T) {
	ds := geoind.GowallaSynthetic()
	if ds.Len() != 265571 || ds.NumUsers() != 12155 {
		t.Errorf("len=%d users=%d", ds.Len(), ds.NumUsers())
	}
	if ds.Region().Width() != 20 {
		t.Errorf("region %v", ds.Region())
	}
	c := ds.CheckIn(0)
	if c.User < 0 || c.User >= ds.NumUsers() {
		t.Errorf("checkin user %d", c.User)
	}
	var buf bytes.Buffer
	small := geoind.YelpSynthetic()
	if err := small.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := geoind.ReadDatasetCSV(&buf, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != small.Len() {
		t.Errorf("round trip %d != %d", back.Len(), small.Len())
	}
	// Deterministic request sampling.
	a := ds.SampleRequests(10, 7)
	b := ds.SampleRequests(10, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SampleRequests not deterministic")
		}
	}
}

// TestMechanismComparison is the facade-level smoke test of the paper's
// headline: at a tight budget MSM beats PL on utility.
func TestMechanismComparison(t *testing.T) {
	ds := geoind.YelpSynthetic()
	reqs := ds.SampleRequests(1500, 11)

	msm, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: 0.3, Region: ds.Region(), Granularity: 4,
		PriorPoints: ds.Points(), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	msmStats, err := geoind.EvaluateUtility(msm, reqs, geoind.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	plStats, err := geoind.EvaluateUtility(pl, reqs, geoind.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if msmStats.Mean >= plStats.Mean {
		t.Errorf("MSM %.3f km not better than PL %.3f km", msmStats.Mean, plStats.Mean)
	}
	t.Logf("eps=0.3: MSM=%.3f km, PL=%.3f km", msmStats.Mean, plStats.Mean)
}

func TestAdaptiveMSMFacade(t *testing.T) {
	ds := geoind.YelpSynthetic()
	m, err := geoind.NewAdaptiveMSM(geoind.AdaptiveMSMConfig{
		Eps: 0.5, Region: ds.Region(), Fanout: 3,
		PriorPoints: ds.Points(), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "MSM-adaptive" || m.Epsilon() != 0.5 {
		t.Errorf("Name=%s Eps=%g", m.Name(), m.Epsilon())
	}
	if m.NumNodes() < 1+9 {
		t.Errorf("NumNodes=%d too small", m.NumNodes())
	}
	if m.MeanLeafSide() <= 0 || m.MeanLeafSide() > 20 {
		t.Errorf("MeanLeafSide=%g", m.MeanLeafSide())
	}
	z, err := m.Report(geoind.Point{X: 4, Y: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Region().ContainsClosed(z) {
		t.Errorf("report %v outside region", z)
	}
	if err := m.Precompute(); err != nil {
		t.Fatal(err)
	}
	// Invalid config surfaces errors.
	if _, err := geoind.NewAdaptiveMSM(geoind.AdaptiveMSMConfig{Eps: -1, Region: ds.Region(), Fanout: 3}); err == nil {
		t.Error("negative eps should error")
	}
}

// TestAllMechanismsSatisfyInterface drives every mechanism through the same
// workload via the Mechanism interface.
func TestAllMechanismsSatisfyInterface(t *testing.T) {
	ds := geoind.YelpSynthetic()
	reqs := ds.SampleRequests(50, 13)
	pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o, err := geoind.NewOptimal(geoind.OptimalConfig{Eps: 0.5, Region: ds.Region(), Granularity: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := geoind.NewMSM(geoind.MSMConfig{Eps: 0.5, Region: ds.Region(), Granularity: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := geoind.NewAdaptiveMSM(geoind.AdaptiveMSMConfig{
		Eps: 0.5, Region: ds.Region(), Fanout: 3, PriorPoints: ds.Points(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []geoind.Mechanism{pl, o, m, a} {
		st, err := geoind.EvaluateUtility(mech, reqs, geoind.Euclidean)
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		if st.N != 50 || st.Mean <= 0 {
			t.Errorf("%s: stats %+v", mech.Name(), st)
		}
		t.Logf("%-12s mean loss %.3f km", mech.Name(), st.Mean)
	}
}

func TestBudgetedWrapper(t *testing.T) {
	pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := geoind.NewBudgeted(pl, 0.5, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if b.Limit() != 0.5 || b.Epsilon() != 0.25 {
		t.Errorf("limit=%g eps=%g", b.Limit(), b.Epsilon())
	}
	x := geoind.Point{X: 5, Y: 5}
	if _, err := b.Report("alice", x); err != nil {
		t.Fatal(err)
	}
	if r := b.Remaining("alice"); math.Abs(r-0.25) > 1e-12 {
		t.Errorf("remaining %g want 0.25", r)
	}
	if _, err := b.Report("alice", x); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Report("alice", x); err != geoind.ErrBudgetExhausted {
		t.Errorf("third report: %v want ErrBudgetExhausted", err)
	}
	// Other users unaffected.
	if _, err := b.Report("bob", x); err != nil {
		t.Errorf("bob: %v", err)
	}
	// Ledger persistence round trip.
	var buf bytes.Buffer
	if err := b.SaveLedger(&buf); err != nil {
		t.Fatal(err)
	}
	b2, err := geoind.NewBudgeted(pl, 0.5, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.LoadLedger(&buf); err != nil {
		t.Fatal(err)
	}
	if r := b2.Remaining("alice"); r > 1e-12 {
		t.Errorf("restored remaining %g want 0", r)
	}
	// Validation.
	if _, err := geoind.NewBudgeted(nil, 1, time.Hour); err == nil {
		t.Error("nil mechanism should error")
	}
	if _, err := geoind.NewBudgeted(pl, 0.1, time.Hour); err == nil {
		t.Error("limit below eps should error")
	}
}

func TestTrajectoryFacade(t *testing.T) {
	traces, err := geoind.GenerateTraces(2, geoind.TraceConfig{
		Region:  geoind.Square(20),
		Anchors: []geoind.Point{{X: 5, Y: 5}, {X: 15, Y: 15}},
		Steps:   100, StayProb: 0.9, LocalSigma: 0.05, JumpProb: 0.03, WalkSigma: 0.5,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 || len(traces[0]) != 100 {
		t.Fatalf("traces %dx%d", len(traces), len(traces[0]))
	}
	pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 1.0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	steps, sum, err := geoind.ReportTrace(pl, traces[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 100 || sum.TotalSpent != 100 {
		t.Errorf("independent: %d steps spent %g", len(steps), sum.TotalSpent)
	}
	psteps, psum, err := geoind.ReportTracePredictive(pl, traces[0],
		geoind.PredictiveConfig{Theta: 4, EpsTest: 0.25}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(psteps) != 100 {
		t.Errorf("predictive steps %d", len(psteps))
	}
	if psum.TotalSpent >= sum.TotalSpent {
		t.Errorf("predictive spent %g not below %g", psum.TotalSpent, sum.TotalSpent)
	}
	// Bad config errors.
	if _, _, err := geoind.ReportTracePredictive(pl, traces[0], geoind.PredictiveConfig{}, 7); err == nil {
		t.Error("zero config should error")
	}
	if _, err := geoind.GenerateTraces(0, geoind.TraceConfig{}); err == nil {
		t.Error("bad trace config should error")
	}
}
