# Development and CI entry points. `make ci` is the full gate every PR must
# pass: formatting, vet, build, the race-instrumented test suite and a short
# benchmark smoke run.

GO ?= go

.PHONY: ci fmt-check vet build test race bench-smoke

ci: fmt-check vet build race bench-smoke

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run xxx -bench 'MSMReportParallel|AdaptiveReportParallel' -benchtime 50x .
