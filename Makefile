# Development and CI entry points. `make ci` is the full gate every PR must
# pass: formatting, vet, build, the race-instrumented test suite (including a
# focused pass over the snapshot-persistence paths) and a short benchmark
# smoke run. `make bench-json` records the batch and persistence benchmarks
# as BENCH_batch.json / BENCH_persist.json; `make bench-diff` compares a
# fresh run against the committed baselines (warn-only).

GO ?= go

.PHONY: ci fmt-check vet build test race race-persist fuzz-short bench-smoke bench-json bench-ctx bench-sample bench-local bench-load bench-fabric bench-trace bench-diff load-smoke fleet-smoke trace-smoke

ci: fmt-check vet build race race-persist bench-smoke load-smoke fleet-smoke trace-smoke

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

# -shuffle=on randomizes test (and subtest) execution order so
# order-dependent tests fail in CI instead of in production debugging
# sessions; the seed is printed on failure for local reproduction.
race:
	$(GO) test -race -shuffle=on ./...

# Focused race pass over the persistence layer, shared sampler state and the
# channel fabric: concurrent DirCache writers, write-behind goroutines and
# warm-restart loads run with -count=2 so the second round exercises the
# populated-directory paths; the AliasSharing suites race the once-guarded
# lazy alias-table build across goroutines sharing one channel; the fabric
# suites race tier promotion, hedged fetches, fault-injected backings and the
# in-process fleet tests; the session Concurrent/Journal suites hammer
# Spend/Refund/Save across shards while the journal appends and compacts.
race-persist:
	$(GO) test -race -count=2 -run 'Snapshot|DirCache|Backing|WarmRestart|CacheBytes|AliasSharing|LocalParallel|RelevanceDomain|Remote|Tiered|Ring|Fabric|Fleet|Concurrent|Journal|Rollover|Trace' \
		./internal/channel ./internal/opt ./internal/fabric ./internal/session ./internal/server .

# Short native-fuzz pass over the two snapshot decode layers (the checksummed
# frame in internal/channel and the channel payload codec in internal/opt).
# A budgeted smoke run for CI — soak runs can raise -fuzztime freely; new
# crashers land in testdata/fuzz and should be committed as regression seeds.
fuzz-short:
	$(GO) test -run xxx -fuzz FuzzSnapshotLoad -fuzztime 10s ./internal/channel
	$(GO) test -run xxx -fuzz FuzzSnapshotCodec -fuzztime 10s ./internal/opt
	$(GO) test -run xxx -fuzz FuzzLocalRelevance -fuzztime 10s ./internal/opt
	$(GO) test -run xxx -fuzz FuzzJournalRecord -fuzztime 10s ./internal/session
	$(GO) test -run xxx -fuzz FuzzSessionSnapshot -fuzztime 10s ./internal/session

bench-smoke:
	$(GO) test -run xxx -bench 'MSMReportParallel|AdaptiveReportParallel|ReportBatch/msm|ReportLoop/msm' -benchtime 50x .

# Short load run against an in-process server: mixed report/batch traffic
# with disconnect chaos, gated on zero 5xx responses and a sane p99. This is
# the CI check that the serving stack (routing, instrumentation, budget
# accounting, admission control) survives concurrent load, not a
# performance benchmark — the p99 bound is deliberately loose for noisy
# shared runners.
load-smoke:
	$(GO) run ./cmd/loadgen -self -duration 5s -workers 8 -self-budget 50 \
		-max-5xx 0 -max-p99 500ms -out /tmp/load_smoke.json > /dev/null

# Record the committed load baseline (BENCH_load.json): a 10s closed-loop
# run against the in-process server. Regenerate deliberately, on a quiet
# machine, like every other BENCH_*.json baseline.
bench-load:
	$(GO) run ./cmd/loadgen -self -duration 10s -workers 8 -self-budget 50 \
		-out BENCH_load.json > /dev/null
	@echo wrote BENCH_load.json

# Record the batch benchmark sweep as JSON (the committed baseline lives at
# BENCH_batch.json; regenerate it deliberately, on a quiet machine).
bench-json:
	$(GO) test -run xxx -bench 'ReportBatch|ReportLoop|ServerBatchThroughput|ServerSingleReports' \
		-benchtime 300x -benchmem . ./internal/server/ | $(GO) run ./cmd/benchjson > BENCH_batch.json
	@echo wrote BENCH_batch.json
	$(GO) test -run xxx -bench 'ColdStart|WarmRestart' \
		-benchtime 3x -benchmem . | $(GO) run ./cmd/benchjson > BENCH_persist.json
	@echo wrote BENCH_persist.json

# Record the cancellation-plumbing overhead benchmarks as BENCH_ctx.json:
# warm Report / ReportBatch under the legacy, background-ctx and
# cancelable-ctx calling conventions. The committed baseline documents the
# tentpole claim that ctx plumbing costs the warm path <2%.
bench-ctx:
	$(GO) test -run xxx -bench 'CtxOverhead' -benchtime 2s -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_ctx.json
	@echo wrote BENCH_ctx.json

# Record the warm-path sampler benchmarks as BENCH_sample.json: cum vs alias
# draw cost (dense and compact channels), the full SampleVia report path, the
# one-time alias-table build, and on-disk snapshot sizes (retired v1 dense vs
# v2 dense vs v2 compact, reported as B/op). The committed baseline documents
# the alias >=5x warm-path and compact >=4x snapshot-size claims.
bench-sample:
	$(GO) test -run xxx -bench 'SamplerDraw|SampleViaReport|AliasBuild|SnapshotBytes' \
		-benchtime 1s -benchmem ./internal/opt | $(GO) run ./cmd/benchjson > BENCH_sample.json
	@echo wrote BENCH_sample.json

# Record the locally relevant OPT benchmarks as BENCH_local.json: per-channel
# solve time dense vs local at n=144 on the same concentrated prior, plus the
# n=1024 precompute that the dense LP cannot attempt at all (~10^9 constraint
# rows). The committed baseline documents the >=10x solve-time claim; the
# `cells/solve` metric records how many LP variables each construction solved
# over. The dense n=144 side takes ~20s per solve - run on a quiet machine.
bench-local:
	$(GO) test -run xxx -bench 'LocalVsDense|LocalPrecompute' \
		-benchtime 1x -benchmem ./internal/opt | $(GO) run ./cmd/benchjson > BENCH_local.json
	@echo wrote BENCH_local.json

# Record the channel-fabric fleet benchmarks as BENCH_fabric.json: total LP
# solves for a 2-replica fabric-joined fleet vs two isolated replicas over the
# same cold key space (the committed baseline documents the >=1.8x solve
# reduction), plus remote-fetch latency quantiles as custom metrics.
bench-fabric:
	$(GO) test -run xxx -bench 'FabricFleet|FabricIsolated' \
		-benchtime 3x -benchmem . | $(GO) run ./cmd/benchjson > BENCH_fabric.json
	@echo wrote BENCH_fabric.json

# Two-process fleet smoke: builds the real geoind-server binary, starts two
# replicas joined by -peers/-fabric-self with distinct cache dirs, drives
# mixed concurrent traffic, and asserts zero 5xx, fleet-total LP solves equal
# to the unique-channel count (exactly-once), and clean degradation to local
# solves after the owner replica is SIGKILLed.
fleet-smoke:
	GEOIND_FLEET_SMOKE=1 $(GO) test -run TestFleetSmoke -v -timeout 300s ./cmd/geoind-server/

# Record the trace-pipeline baseline (BENCH_trace.json): the stateful
# /v1/trace endpoint over a journaled session store (latency quantiles +
# memo-hit rate), the offline predictive-vs-independent budget economics
# (spend_ratio <= 0.5 at equal-or-better adversary error), and the per-record
# journal durability cost. Custom units survive into the JSON via benchjson's
# metrics map. Regenerate deliberately, on a quiet machine.
bench-trace:
	{ $(GO) test -run xxx -bench 'TraceEndpoint|TracePredictiveSavings' \
		-benchtime 3x -benchmem . ; \
	  $(GO) test -run xxx -bench 'JournalAppend' -benchtime 2000x -benchmem ./internal/session ; } \
	  | $(GO) run ./cmd/benchjson > BENCH_trace.json
	@echo wrote BENCH_trace.json

# Single-process crash-durability smoke: builds the real geoind-server binary
# with a journaled -ledger-dir and the /v1/trace pipeline enabled, SIGKILLs
# it with concurrent trace traffic in flight, restarts it on the same journal
# and asserts no user over-spent their window budget, zero 5xx throughout,
# and that a stationary user's memoized release survived the crash.
trace-smoke:
	GEOIND_TRACE_SMOKE=1 $(GO) test -run TestTraceSmoke -v -timeout 300s ./cmd/geoind-server/

# Compare a fresh benchmark run against the committed baseline. Warn-only:
# regressions above 20% are flagged but never fail the target.
bench-diff:
	$(GO) test -run xxx -bench 'ReportBatch|ReportLoop|ServerBatchThroughput|ServerSingleReports' \
		-benchtime 300x -benchmem . ./internal/server/ | $(GO) run ./cmd/benchjson > /tmp/bench_current.json
	$(GO) run ./cmd/benchjson -diff -threshold 20 BENCH_batch.json /tmp/bench_current.json
	$(GO) test -run xxx -bench 'ColdStart|WarmRestart' \
		-benchtime 3x -benchmem . | $(GO) run ./cmd/benchjson > /tmp/bench_persist_current.json
	$(GO) run ./cmd/benchjson -diff -threshold 50 BENCH_persist.json /tmp/bench_persist_current.json
	$(GO) test -run xxx -bench 'CtxOverhead' -benchtime 2s -benchmem . \
		| $(GO) run ./cmd/benchjson > /tmp/bench_ctx_current.json
	$(GO) run ./cmd/benchjson -diff -threshold 20 BENCH_ctx.json /tmp/bench_ctx_current.json
	$(GO) test -run xxx -bench 'SamplerDraw|SampleViaReport|AliasBuild|SnapshotBytes' \
		-benchtime 1s -benchmem ./internal/opt | $(GO) run ./cmd/benchjson > /tmp/bench_sample_current.json
	$(GO) run ./cmd/benchjson -diff -threshold 30 BENCH_sample.json /tmp/bench_sample_current.json
	$(GO) test -run xxx -bench 'LocalVsDense|LocalPrecompute' \
		-benchtime 1x -benchmem ./internal/opt | $(GO) run ./cmd/benchjson > /tmp/bench_local_current.json
	$(GO) run ./cmd/benchjson -diff -threshold 50 BENCH_local.json /tmp/bench_local_current.json
	$(GO) run ./cmd/loadgen -self -duration 10s -workers 8 -self-budget 50 \
		-out /tmp/bench_load_current.json > /dev/null
	$(GO) run ./cmd/benchjson -diff -threshold 100 BENCH_load.json /tmp/bench_load_current.json
	$(GO) test -run xxx -bench 'FabricFleet|FabricIsolated' \
		-benchtime 3x -benchmem . | $(GO) run ./cmd/benchjson > /tmp/bench_fabric_current.json
	$(GO) run ./cmd/benchjson -diff -threshold 50 BENCH_fabric.json /tmp/bench_fabric_current.json
	{ $(GO) test -run xxx -bench 'TraceEndpoint|TracePredictiveSavings' \
		-benchtime 3x -benchmem . ; \
	  $(GO) test -run xxx -bench 'JournalAppend' -benchtime 2000x -benchmem ./internal/session ; } \
	  | $(GO) run ./cmd/benchjson > /tmp/bench_trace_current.json
	$(GO) run ./cmd/benchjson -diff -threshold 50 BENCH_trace.json /tmp/bench_trace_current.json
