package geoind

import (
	"context"
	"fmt"
	"io"
	"time"

	"geoind/internal/server"
	"geoind/internal/session"
)

// ErrBudgetExhausted is returned by Budgeted.Report when a user's window
// budget cannot cover another report.
var ErrBudgetExhausted = server.ErrBudgetExhausted

// Budgeted wraps a Mechanism with per-user privacy budget accounting. By the
// composability property of GeoInd (§2.2 of the paper), n reports at budget
// eps are jointly equivalent to one report at n*eps, so any deployment that
// serves repeated reports must cap each user's total spend per time window —
// this type enforces that cap on the client/library side (the HTTP service
// in cmd/geoind-server enforces the same contract server-side).
type Budgeted struct {
	mech   Mechanism
	ledger *server.Ledger
}

// NewBudgeted wraps mech so each user may spend at most limit epsilon per
// window. limit must cover at least one report.
func NewBudgeted(mech Mechanism, limit float64, window time.Duration) (*Budgeted, error) {
	if mech == nil {
		return nil, fmt.Errorf("geoind: nil mechanism")
	}
	if limit < mech.Epsilon() {
		return nil, fmt.Errorf("geoind: budget limit %g below per-report epsilon %g", limit, mech.Epsilon())
	}
	l, err := server.NewLedger(limit, window, nil)
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	return &Budgeted{mech: mech, ledger: l}, nil
}

// NewBudgetedDurable is NewBudgeted with crash-safe accounting: per-user
// state is journaled to dir (append-only log plus periodic snapshots) and
// replayed on the next open, so a process crash cannot reset anyone's spend.
// Call Close when done to flush and compact the journal.
func NewBudgetedDurable(mech Mechanism, limit float64, window time.Duration, dir string) (*Budgeted, error) {
	if mech == nil {
		return nil, fmt.Errorf("geoind: nil mechanism")
	}
	if limit < mech.Epsilon() {
		return nil, fmt.Errorf("geoind: budget limit %g below per-report epsilon %g", limit, mech.Epsilon())
	}
	st, err := session.Open(session.Config{Limit: limit, Window: window, Dir: dir})
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	l, err := server.NewLedgerStore(st)
	if err != nil {
		_ = st.Close()
		return nil, fmt.Errorf("geoind: %w", err)
	}
	return &Budgeted{mech: mech, ledger: l}, nil
}

// Close flushes and compacts the durable accounting state, when the Budgeted
// was opened with NewBudgetedDurable. It is a no-op error-free close for
// memory-only instances.
func (b *Budgeted) Close() error { return b.ledger.Sessions().Close() }

// Report sanitizes x on behalf of user, debiting the per-report epsilon from
// the user's window budget. It returns ErrBudgetExhausted (without reporting
// anything) when the budget cannot cover the report. Budget is charged only
// on success: a report that fails reveals nothing, so its charge is refunded.
func (b *Budgeted) Report(user string, x Point) (Point, error) {
	return b.ReportCtx(context.Background(), user, x)
}

// ReportCtx is Report under a context: canceling ctx makes an in-flight cold
// report return promptly with ctx.Err(), and the charge is refunded — a
// canceled report reveals no location, so it must not consume budget.
//
// The ledger is debited before sampling (not after) so that concurrent
// requests from one user can never jointly exceed the cap through a
// check-then-charge race; the refund on failure restores the charge-only-on-
// success semantics.
func (b *Budgeted) ReportCtx(ctx context.Context, user string, x Point) (Point, error) {
	eps := b.mech.Epsilon()
	if err := b.ledger.Spend(user, eps); err != nil {
		return Point{}, err
	}
	z, err := reportCtx(ctx, b.mech, x)
	if err != nil {
		b.ledger.Refund(user, eps)
		return Point{}, err
	}
	return z, nil
}

// ReportBatch sanitizes a batch of points on behalf of user, debiting
// len(points) * Epsilon() from the user's window budget atomically: either
// the whole batch is charged and reported, or the error is returned and the
// ledger is left unchanged — a batch can never be partially charged, and a
// batch that fails (or is canceled mid-flight) leaves the budget untouched.
// This is the client-side counterpart of the server's POST /v1/report:batch
// all-or-nothing rule.
func (b *Budgeted) ReportBatch(user string, points []Point) ([]Point, error) {
	return b.ReportBatchCtx(context.Background(), user, points)
}

// ReportBatchCtx is ReportBatch under a context. A batch canceled mid-flight
// returns ctx.Err() with the user's budget unchanged: no sanitized location
// left the mechanism, so nothing was revealed and nothing is charged. The
// charge is taken upfront (atomic no-overdraft check) and refunded in full
// on any failure.
func (b *Budgeted) ReportBatchCtx(ctx context.Context, user string, points []Point) ([]Point, error) {
	if len(points) == 0 {
		return []Point{}, nil
	}
	total := float64(len(points)) * b.mech.Epsilon()
	if err := b.ledger.Spend(user, total); err != nil {
		return nil, err
	}
	out, err := ReportBatchCtx(ctx, b.mech, points)
	if err != nil {
		b.ledger.Refund(user, total)
		return nil, err
	}
	return out, nil
}

// reportCtx dispatches one report through the mechanism's ctx-aware path
// when it has one.
func reportCtx(ctx context.Context, m Mechanism, x Point) (Point, error) {
	if mc, ok := m.(MechanismCtx); ok {
		return mc.ReportCtx(ctx, x)
	}
	if err := ctx.Err(); err != nil {
		return Point{}, err
	}
	return m.Report(x)
}

// Remaining returns the user's unspent budget in the current window.
func (b *Budgeted) Remaining(user string) float64 { return b.ledger.Remaining(user) }

// Limit returns the per-window budget cap.
func (b *Budgeted) Limit() float64 { return b.ledger.Limit() }

// Epsilon returns the per-report budget.
func (b *Budgeted) Epsilon() float64 { return b.mech.Epsilon() }

// SaveLedger persists the accounting state as JSON.
func (b *Budgeted) SaveLedger(w io.Writer) error { return b.ledger.Save(w) }

// LoadLedger restores accounting state written by SaveLedger.
func (b *Budgeted) LoadLedger(r io.Reader) error { return b.ledger.Load(r) }
