package geoind

import (
	"fmt"
	"io"
	"time"

	"geoind/internal/server"
)

// ErrBudgetExhausted is returned by Budgeted.Report when a user's window
// budget cannot cover another report.
var ErrBudgetExhausted = server.ErrBudgetExhausted

// Budgeted wraps a Mechanism with per-user privacy budget accounting. By the
// composability property of GeoInd (§2.2 of the paper), n reports at budget
// eps are jointly equivalent to one report at n*eps, so any deployment that
// serves repeated reports must cap each user's total spend per time window —
// this type enforces that cap on the client/library side (the HTTP service
// in cmd/geoind-server enforces the same contract server-side).
type Budgeted struct {
	mech   Mechanism
	ledger *server.Ledger
}

// NewBudgeted wraps mech so each user may spend at most limit epsilon per
// window. limit must cover at least one report.
func NewBudgeted(mech Mechanism, limit float64, window time.Duration) (*Budgeted, error) {
	if mech == nil {
		return nil, fmt.Errorf("geoind: nil mechanism")
	}
	if limit < mech.Epsilon() {
		return nil, fmt.Errorf("geoind: budget limit %g below per-report epsilon %g", limit, mech.Epsilon())
	}
	l, err := server.NewLedger(limit, window, nil)
	if err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	return &Budgeted{mech: mech, ledger: l}, nil
}

// Report sanitizes x on behalf of user, debiting the per-report epsilon from
// the user's window budget first. It returns ErrBudgetExhausted (without
// reporting anything) when the budget cannot cover the report.
func (b *Budgeted) Report(user string, x Point) (Point, error) {
	if err := b.ledger.Spend(user, b.mech.Epsilon()); err != nil {
		return Point{}, err
	}
	return b.mech.Report(x)
}

// ReportBatch sanitizes a batch of points on behalf of user, debiting
// len(points) * Epsilon() from the user's window budget atomically before
// any sampling happens: either the whole batch is charged and reported, or
// ErrBudgetExhausted is returned and the ledger is left unchanged — a batch
// can never be partially charged. This is the client-side counterpart of the
// server's POST /v1/report:batch all-or-nothing rule.
func (b *Budgeted) ReportBatch(user string, points []Point) ([]Point, error) {
	if len(points) == 0 {
		return []Point{}, nil
	}
	if err := b.ledger.Spend(user, float64(len(points))*b.mech.Epsilon()); err != nil {
		return nil, err
	}
	return ReportBatch(b.mech, points)
}

// Remaining returns the user's unspent budget in the current window.
func (b *Budgeted) Remaining(user string) float64 { return b.ledger.Remaining(user) }

// Limit returns the per-window budget cap.
func (b *Budgeted) Limit() float64 { return b.ledger.Limit() }

// Epsilon returns the per-report budget.
func (b *Budgeted) Epsilon() float64 { return b.mech.Epsilon() }

// SaveLedger persists the accounting state as JSON.
func (b *Budgeted) SaveLedger(w io.Writer) error { return b.ledger.Save(w) }

// LoadLedger restores accounting state written by SaveLedger.
func (b *Budgeted) LoadLedger(r io.Reader) error { return b.ledger.Load(r) }
