package geoind_test

// Cancellation-contract tests for the public facade: canceled requests abort
// cold reports promptly, abandoned solves keep serving their remaining
// waiters, and canceled work never consumes privacy budget.

import (
	"context"
	"errors"
	"testing"
	"time"

	"geoind"
)

// blockMech is a Mechanism whose ctx paths block until canceled (or until
// release is closed) — a stand-in for a cold report stuck behind a long
// solve.
type blockMech struct{ release chan struct{} }

func (blockMech) Report(x geoind.Point) (geoind.Point, error) { return x, nil }
func (blockMech) Epsilon() float64                            { return 0.5 }
func (blockMech) Name() string                                { return "block" }
func (m blockMech) ReportCtx(ctx context.Context, x geoind.Point) (geoind.Point, error) {
	select {
	case <-ctx.Done():
		return geoind.Point{}, ctx.Err()
	case <-m.release:
		return x, nil
	}
}
func (m blockMech) ReportBatch(points []geoind.Point) ([]geoind.Point, error) {
	return m.ReportBatchCtx(context.Background(), points)
}
func (m blockMech) ReportBatchCtx(ctx context.Context, points []geoind.Point) ([]geoind.Point, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-m.release:
		return points, nil
	}
}

// TestBudgetedCanceledBatchLeavesBudgetUnchanged is the regression test for
// the budget-leak bug: a batch canceled mid-flight must refund its whole
// upfront charge — no sanitized location left the mechanism, so nothing may
// be billed.
func TestBudgetedCanceledBatchLeavesBudgetUnchanged(t *testing.T) {
	release := make(chan struct{})
	b, err := geoind.NewBudgeted(blockMech{release: release}, 10, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pts := []geoind.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.ReportBatchCtx(ctx, "alice", pts)
		done <- err
	}()
	// Give the batch time to take its upfront charge, then cancel it.
	deadline := time.Now().Add(5 * time.Second)
	for b.Remaining("alice") == 10 {
		if time.Now().After(deadline) {
			t.Fatal("batch never charged the upfront budget")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled batch did not return")
	}
	if r := b.Remaining("alice"); r != 10 {
		t.Errorf("canceled batch leaked budget: remaining %g want 10", r)
	}

	// A later batch still works and is charged normally on success.
	close(release)
	if _, err := b.ReportBatch("alice", pts); err != nil {
		t.Fatal(err)
	}
	if r := b.Remaining("alice"); r != 8.5 {
		t.Errorf("successful batch: remaining %g want 8.5", r)
	}
}

// TestBudgetedCanceledReportRefunds: the single-report counterpart.
func TestBudgetedCanceledReportRefunds(t *testing.T) {
	b, err := geoind.NewBudgeted(blockMech{release: make(chan struct{})}, 1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.ReportCtx(ctx, "u", geoind.Point{X: 1, Y: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v want context.Canceled", err)
	}
	if r := b.Remaining("u"); r != 1 {
		t.Errorf("canceled report leaked budget: remaining %g want 1", r)
	}
}

// TestMSMCanceledColdReportAbandonsSolve is the detached-lifecycle acceptance
// test at the facade level: a canceled request aborts an in-flight cold
// Report well before the LP completes, while a second uncanceled waiter on
// the same channel still receives the solved result.
func TestMSMCanceledColdReportAbandonsSolve(t *testing.T) {
	// Granularity 8 makes the root solve a 64-cell exact LP — hundreds of
	// milliseconds even without the race detector — so the cancel below
	// lands while the solve is demonstrably in flight.
	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: 0.5, Region: geoind.Square(20), Granularity: 8, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := geoind.Point{X: 10, Y: 10}

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := make(chan error, 1)
	go func() {
		_, err := m.ReportCtx(ctxA, x)
		errA <- err
	}()
	// Wait for A's miss to start the detached root-channel solve.
	deadline := time.Now().Add(30 * time.Second)
	for m.StoreStats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cold report never started a solve")
		}
		time.Sleep(time.Millisecond)
	}

	// B joins the same flight under a background context.
	type res struct {
		z   geoind.Point
		err error
	}
	resB := make(chan res, 1)
	go func() {
		z, err := m.ReportCtx(context.Background(), x)
		resB <- res{z, err}
	}()
	// B must be registered as a waiter before A cancels, or the refcount
	// could hit zero and abort the solve B wants. Joining a flight is a map
	// lookup plus a refcount bump — 50ms dwarfs it, while the LP still has
	// hundreds of milliseconds to run.
	time.Sleep(50 * time.Millisecond)
	cancelA()

	select {
	case err := <-errA:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled caller: err=%v want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled caller did not return while the solve was in flight")
	}
	// A returned by abandoning, not by waiting out the LP: the solve must
	// still be running for B.
	st := m.StoreStats()
	if st.Abandoned == 0 {
		t.Errorf("stats %+v: no waiter was recorded as abandoned", st)
	}
	if st.Canceled != 0 {
		t.Errorf("stats %+v: the solve was aborted even though B still waits", st)
	}

	select {
	case r := <-resB:
		if r.err != nil {
			t.Fatalf("surviving waiter: %v", r.err)
		}
		if r.z == (geoind.Point{}) {
			t.Error("surviving waiter got a zero point")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("surviving waiter never received the solved channel")
	}
}

// TestReportBatchCtxPreCanceled: the package-level batch helper refuses dead
// contexts without sampling.
func TestReportBatchCtxPreCanceled(t *testing.T) {
	pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pl.ReportBatchCtx(ctx, []geoind.Point{{X: 1, Y: 1}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v want context.Canceled", err)
	}
}
