package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"geoind"
	"geoind/internal/server"
)

// TestFleetSmoke is the two-process fleet gate (`make fleet-smoke`): it
// builds the real geoind-server binary, starts two replicas that share
// nothing but the network (distinct cache dirs), and asserts the fabric's
// two load-bearing properties end to end:
//
//  1. every unique channel is LP-solved exactly once fleet-wide — the sum of
//     channel-cache misses across both replicas equals the solve count of an
//     isolated single-process precompute with the same configuration;
//  2. killing one replica costs only latency: the survivor serves the full
//     key space with zero 5xx responses, locally re-solving the dead owner's
//     channels.
//
// Guarded by GEOIND_FLEET_SMOKE=1 because it builds a binary and runs two
// OS processes.
func TestFleetSmoke(t *testing.T) {
	if os.Getenv("GEOIND_FLEET_SMOKE") != "1" {
		t.Skip("set GEOIND_FLEET_SMOKE=1 to run the two-process fleet smoke test")
	}

	const (
		eps  = 2.4 // height 3 with g=3: 91 unique channels, each a 9x9 LP
		g    = "3"
		side = "20"
		seed = "7"
	)

	// The isolated reference: one process, no fabric, same mechanism
	// configuration. Its precompute solve count is the unique-channel count
	// the fleet total must match.
	ref, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: eps, Region: geoind.Square(20), Granularity: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Precompute(); err != nil {
		t.Fatal(err)
	}
	_, uniqueChannels, _ := ref.CacheStats()
	if uniqueChannels < 10 {
		t.Fatalf("reference precompute solved only %d channels; the fleet assertion would be vacuous", uniqueChannels)
	}
	t.Logf("isolated reference: %d unique channels", uniqueChannels)

	bin := filepath.Join(t.TempDir(), "geoind-server")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build geoind-server: %v\n%s", err, out)
	}

	ports := []int{freePort(t), freePort(t)}
	urls := []string{
		fmt.Sprintf("http://127.0.0.1:%d", ports[0]),
		fmt.Sprintf("http://127.0.0.1:%d", ports[1]),
	}
	peers := urls[0] + "," + urls[1]

	procs := make([]*exec.Cmd, 2)
	for i := range procs {
		cmd := exec.Command(bin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-mechanism", "msm", "-eps", fmt.Sprint(eps), "-g", g, "-side", side,
			"-seed", seed, "-workers", "2", "-budget", "0",
			"-cache-dir", filepath.Join(t.TempDir(), fmt.Sprintf("cache%d", i)),
			"-peers", peers, "-fabric-self", urls[i],
			"-hedge-delay", "20ms", "-fetch-timeout", "3s", "-fetch-backoff", "50ms",
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start replica %d: %v", i, err)
		}
		procs[i] = cmd
		i := i
		t.Cleanup(func() {
			if procs[i].Process != nil {
				_ = procs[i].Process.Kill()
				_, _ = procs[i].Process.Wait()
			}
		})
	}
	for i, u := range urls {
		waitReady(t, u, 60*time.Second)
		t.Logf("replica %d ready on %s", i, u)
	}

	// Phase 1: concurrent cold traffic round-robin across the fleet. A
	// modest point set (not the full domain) leaves some of each replica's
	// non-owned keys cold for the kill phase.
	errs5xx := driveTraffic(t, urls, 8, 120)
	if errs5xx != 0 {
		t.Fatalf("phase 1: %d 5xx responses from the healthy fleet", errs5xx)
	}

	var fleetMisses, fleetRemoteHits int64
	for i, u := range urls {
		st := scrapeStats(t, u)
		if st.ChannelCache == nil {
			t.Fatalf("replica %d: no channel_cache section", i)
		}
		if st.Fabric == nil {
			t.Fatalf("replica %d: no fabric section", i)
		}
		t.Logf("replica %d: %d solves, %d hits", i, st.ChannelCache.Misses, st.ChannelCache.Hits)
		fleetMisses += st.ChannelCache.Misses
		for _, tier := range st.Fabric.Tiers {
			if tier.Name == "remote" {
				fleetRemoteHits += tier.Hits
			}
		}
		if st.ChannelCache.Misses == 0 {
			t.Errorf("replica %d solved nothing; ownership is degenerate", i)
		}
	}
	if fleetMisses != uniqueChannels {
		t.Errorf("fleet solved %d channels total, want exactly %d (each unique channel once)",
			fleetMisses, uniqueChannels)
	}

	// Phase 2: kill replica 1 outright (no drain) and sweep the full domain
	// at replica 0. Cold channels owned by the dead replica must degrade to
	// local solves — zero request errors, only latency.
	_ = procs[1].Process.Kill()
	_, _ = procs[1].Process.Wait()
	if n := driveTraffic(t, urls[:1], 8, 400); n != 0 {
		t.Fatalf("phase 2: %d 5xx responses after killing the peer", n)
	}
	st := scrapeStats(t, urls[0])
	if st.ChannelCache.Misses == 0 {
		t.Error("survivor reports no solves at all")
	}
	t.Logf("survivor after owner loss: %d solves, remote fallbacks=%v",
		st.ChannelCache.Misses, remoteFallbacks(st))
	if fleetRemoteHits == 0 && remoteFallbacks(st) == 0 {
		t.Error("no remote fetch activity anywhere: the fleet never talked to itself")
	}

	// Graceful shutdown of the survivor must exit cleanly.
	if err := procs[0].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := procs[0].Wait(); err != nil {
		t.Errorf("survivor exit: %v", err)
	}
}

func remoteFallbacks(st *server.StatsResponse) int64 {
	if st.Fabric == nil || st.Fabric.Remote == nil {
		return 0
	}
	return st.Fabric.Remote.Fallbacks
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

func waitReady(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("replica %s not ready within %s", base, timeout)
}

// driveTraffic issues mixed single/batch reports from `workers` goroutines,
// spreading points over the region and requests round-robin over targets.
// Returns the number of 5xx responses; transport errors fail the test (the
// targets passed in are expected to be alive).
func driveTraffic(t *testing.T, targets []string, workers, perWorker int) int64 {
	t.Helper()
	var rr, errs5xx atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 30 * time.Second}
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Deterministic sweep: worker/iteration pairs cover a grid
				// of points across the 20km region.
				n := w*perWorker + i
				x := float64(n%40) * 0.5
				y := float64((n/40)%40) * 0.5
				target := targets[rr.Add(1)%int64(len(targets))]
				var resp *http.Response
				var err error
				if n%5 == 4 {
					body, _ := json.Marshal([]map[string]any{
						{"user_id": "u", "x": x, "y": y},
						{"user_id": "u", "x": y, "y": x},
					})
					resp, err = client.Post(target+"/v1/report:batch", "application/json", bytes.NewReader(body))
				} else {
					body := fmt.Sprintf(`{"user_id":"u","x":%g,"y":%g}`, x, y)
					resp, err = client.Post(target+"/v1/report", "application/json", bytes.NewReader([]byte(body)))
				}
				if err != nil {
					t.Errorf("request to %s: %v", target, err)
					continue
				}
				if resp.StatusCode >= 500 {
					errs5xx.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	return errs5xx.Load()
}

func scrapeStats(t *testing.T, base string) *server.StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("scrape %s/v1/stats: %v", base, err)
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}
