package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"geoind/internal/server"
)

// TestTraceSmoke is the crash-durability gate for the session layer
// (`make trace-smoke`): it builds the real geoind-server binary, drives
// concurrent /v1/trace traffic against a journaled ledger, SIGKILLs the
// process with requests in flight, restarts it on the same -ledger-dir and
// asserts the two load-bearing properties end to end:
//
//  1. no user ever exceeds the window budget — after the crash the replayed
//     ledger reports non-negative remaining budget for every user, and no
//     response at any point was a 5xx (only 200s and budget 429s);
//  2. a stationary user's memoized release survives the restart: the first
//     re-released prediction after recovery returns exactly the coordinates
//     frozen before the kill, at the cheap eps-test price.
//
// Guarded by GEOIND_TRACE_SMOKE=1 because it builds a binary and kills OS
// processes.
func TestTraceSmoke(t *testing.T) {
	if os.Getenv("GEOIND_TRACE_SMOKE") != "1" {
		t.Skip("set GEOIND_TRACE_SMOKE=1 to run the kill -9 trace smoke test")
	}

	const (
		eps     = 2.0
		epsTest = 0.5
		theta   = 4.0
		limit   = 40.0 // low enough that walker users exhaust it mid-run
	)

	bin := filepath.Join(t.TempDir(), "geoind-server")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build geoind-server: %v\n%s", err, out)
	}

	ledgerDir := t.TempDir()
	start := func() (*exec.Cmd, string) {
		port := freePort(t)
		cmd := exec.Command(bin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-mechanism", "pl", "-eps", fmt.Sprint(eps), "-side", "20",
			"-seed", "7", "-budget", fmt.Sprint(limit), "-budget-window", "24h",
			"-ledger-dir", ledgerDir, "-ledger-sync", "1",
			"-trace-theta", fmt.Sprint(theta), "-trace-eps-test", fmt.Sprint(epsTest),
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start geoind-server: %v", err)
		}
		url := fmt.Sprintf("http://127.0.0.1:%d", port)
		waitReady(t, url, 60*time.Second)
		return cmd, url
	}

	proc, url := start()
	t.Cleanup(func() {
		if proc.Process != nil {
			_ = proc.Process.Kill()
			_, _ = proc.Process.Wait()
		}
	})

	// Phase 1a: a stationary user reports the same point until a re-release
	// is observed; its memoized release must survive the crash below. This
	// traffic finishes before the kill so the memo on disk is unambiguous.
	const statX, statY = 7.0, 11.0
	var lastRelease [2]float64
	sawMemoHit := false
	for i := 0; i < 15; i++ {
		resp := postTraceSmoke(t, url, "stationary", statX, statY)
		if resp == nil {
			t.Fatal("stationary user request failed before the kill")
		}
		lastRelease = [2]float64{resp.X, resp.Y}
		if !resp.Fresh {
			sawMemoHit = true
			if resp.EpsSpent != epsTest {
				t.Fatalf("memo hit cost %g, want eps-test price %g", resp.EpsSpent, epsTest)
			}
			break
		}
	}
	if !sawMemoHit {
		t.Fatal("stationary user never got a re-released prediction in 15 steps")
	}

	// Phase 1b: concurrent walker traffic, then SIGKILL with requests in
	// flight. Transport errors after the kill flag flips are expected; 5xx
	// responses never are. The low limit means some walkers exhaust their
	// budget first, so 429s (and the no-over-spend check after recovery)
	// are exercised too.
	var killed atomic.Bool
	var errs5xx, sent atomic.Int64
	users := []string{"w0", "w1", "w2", "w3"}
	var wg sync.WaitGroup
	for wi, user := range users {
		wg.Add(1)
		go func(wi int, user string) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(wi), 0x5afe))
			x, y := 4.0+3*float64(wi), 5.0
			client := &http.Client{Timeout: 10 * time.Second}
			for !killed.Load() {
				x = math.Min(math.Max(x+rng.NormFloat64()*0.2, 0), 19.9)
				y = math.Min(math.Max(y+rng.NormFloat64()*0.2, 0), 19.9)
				body := fmt.Sprintf(`{"user_id":%q,"x":%g,"y":%g}`, user, x, y)
				resp, err := client.Post(url+"/v1/trace", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					if !killed.Load() {
						t.Errorf("trace request for %s failed before the kill: %v", user, err)
					}
					continue
				}
				if resp.StatusCode >= 500 {
					errs5xx.Add(1)
				}
				resp.Body.Close()
				sent.Add(1)
			}
		}(wi, user)
	}
	for sent.Load() < 80 { // ensure real journal pressure before the kill
		time.Sleep(10 * time.Millisecond)
	}
	killed.Store(true)
	if err := proc.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		t.Fatal(err)
	}
	_, _ = proc.Process.Wait()
	wg.Wait()
	if n := errs5xx.Load(); n != 0 {
		t.Fatalf("phase 1: %d 5xx responses before the kill", n)
	}
	t.Logf("killed server after %d trace responses", sent.Load())

	// Phase 2: restart on the same journal. Every user's replayed ledger
	// must be within the window limit — a crash can lose the response to an
	// in-flight request, but never un-journal a spend.
	proc, url = start()
	for _, user := range append(users, "stationary") {
		remaining := budgetRemaining(t, url, user)
		if remaining < -1e-9 {
			t.Errorf("user %s over-spent after crash recovery: remaining %g", user, remaining)
		}
		if remaining > limit+1e-9 {
			t.Errorf("user %s resurrected budget after crash recovery: remaining %g > limit %g", user, remaining, limit)
		}
		t.Logf("user %s: remaining %.2f of %.2f after recovery", user, remaining, limit)
	}

	// Phase 3: the stationary user's trace resumes warm. Until the first
	// fresh report replaces the memo, every re-released prediction must be
	// bit-identical to the release frozen before the kill.
	reused := 0
	memoIntact := true
	for i := 0; i < 10; i++ {
		resp := postTraceSmoke(t, url, "stationary", statX, statY)
		if resp == nil {
			t.Fatal("stationary user request failed after restart")
		}
		if resp.Fresh {
			memoIntact = false // memo legitimately replaced from here on
			continue
		}
		reused++
		if memoIntact && (resp.X != lastRelease[0] || resp.Y != lastRelease[1]) {
			t.Errorf("post-restart re-release (%g, %g) != pre-kill memo (%g, %g)",
				resp.X, resp.Y, lastRelease[0], lastRelease[1])
		}
		if resp.EpsSpent != epsTest {
			t.Errorf("post-restart memo hit cost %g, want %g", resp.EpsSpent, epsTest)
		}
	}
	if reused == 0 {
		t.Error("no re-released predictions in 10 post-restart steps: memo did not survive the crash")
	}
	t.Logf("post-restart: %d/10 steps re-used the journaled release", reused)

	// A clean shutdown must still work after all of the above.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc.Wait(); err != nil {
		t.Errorf("clean shutdown exit: %v", err)
	}
}

// postTraceSmoke posts one predictive trace step and decodes the response;
// nil means a non-200 status (the caller decides whether that is fatal).
func postTraceSmoke(t *testing.T, base, user string, x, y float64) *server.TraceResponse {
	t.Helper()
	body := fmt.Sprintf(`{"user_id":%q,"x":%g,"y":%g}`, user, x, y)
	resp, err := http.Post(base+"/v1/trace", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /v1/trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var tr server.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return &tr
}

func budgetRemaining(t *testing.T, base, user string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/budget?user_id=" + user)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Remaining float64 `json:"remaining_budget"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Remaining
}
