// Command geoind-server runs the location-sanitization microservice: an
// HTTP JSON API fronting a GeoInd mechanism with per-user privacy budget
// accounting.
//
// Endpoints:
//
//	GET  /healthz                   liveness probe
//	GET  /v1/healthz                readiness probe: 503 once graceful
//	                                shutdown begins, so load balancers stop
//	                                routing new traffic during the drain
//	GET  /v1/info                   mechanism + budget configuration
//	POST /v1/report                 {"user_id":"u","x":3.2,"y":11.7} -> sanitized location
//	POST /v1/report:batch           [{"user_id":"u","x":...,"y":...}, ...] -> sanitized
//	                                locations in input order; the whole batch budget
//	                                (len x eps) is charged atomically or not at all
//	GET  /v1/budget?user_id=u       remaining budget in the current window
//	POST /v1/trace                  {"user_id":"u","x":3.2,"y":11.7} -> one step of a
//	                                continuous trace: the predictive mechanism re-releases
//	                                the user's previous report (for a fraction of eps)
//	                                while they have not moved beyond -trace-theta; enabled
//	                                by -trace-theta, stateful per user, durable with
//	                                -ledger-dir
//	GET  /v1/stats                  channel-cache counters (hits, solves,
//	                                persistent-cache disk hits/writes) and
//	                                sampler/pruning configuration
//	GET  /metrics                   Prometheus text exposition (request/error
//	                                counters, latency histograms, store and
//	                                budget counters, solve-queue depth)
//	GET  /v1/channels/{key}         fleet-internal snapshot endpoint: streams a
//	                                solved channel as a checksummed frame that
//	                                the fetching replica fully re-verifies
//
// With -peers and -fabric-self, several replicas form a channel fleet:
// rendezvous hashing assigns each channel one owner, only the owner solves
// its LP (precompute is restricted to owned channels), and the other
// replicas fetch the owner's verified snapshot over /v1/channels — with a
// hedged second request to the next ring replica after -hedge-delay. An
// unreachable owner degrades to a local solve, never a request failure.
//
// With -max-solves N, at most N cold channel solves execute concurrently and
// at most N more wait in the admission queue; requests beyond that are
// answered 429 with a Retry-After header and no budget charge. With
// -pprof-addr, net/http/pprof is served on a separate listener so profiling
// is never exposed on the public address.
//
// Example:
//
//	geoind-server -addr :8080 -mechanism msm -eps 0.25 -g 4 -dataset gowalla \
//	    -budget 1.0 -budget-window 24h -ledger-file /var/lib/geoind/ledger.json \
//	    -cache-dir /var/lib/geoind/channels
//
// With -cache-dir, every solved channel is persisted as a checksummed
// snapshot; a restart (or another replica sharing the volume) reloads them
// and performs zero LP solves during precompute.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"geoind"
	"geoind/internal/channel"
	"geoind/internal/fabric"
	"geoind/internal/server"
	"geoind/internal/session"
)

// logCacheStats reports how much of the precompute phase was served from the
// persistent snapshot cache: on a warm restart every channel is a disk hit
// and zero LPs are solved.
func logCacheStats(cacheDir string, st channel.Stats) {
	if cacheDir == "" {
		return
	}
	log.Printf("channel cache: %d LP solves, %d loaded from %s, %d queued for persistence",
		st.Misses, st.BackingHits, cacheDir, st.BackingWrites)
}

// serverConfig mirrors the flag set; run takes it by value so tests can
// exercise the full lifecycle without building an argv.
type serverConfig struct {
	addr         string
	mechName     string
	eps          float64
	g            int
	rho          float64
	side         float64
	dsName       string
	seed         uint64
	workers      int
	budgetLimit  float64
	budgetWindow time.Duration
	ledgerFile   string
	ledgerDir    string
	ledgerSync   int
	traceTheta   float64
	traceEpsTest float64
	cacheDir     string
	cacheBytes   int64
	reqTimeout   time.Duration
	solveTimeout time.Duration
	maxSolves    int
	sampler      string
	pruneMass    float64
	localRadius  float64
	localMass    float64
	pprofAddr    string
	peers        string
	fabricSelf   string
	hedgeDelay   time.Duration
	fetchTimeout time.Duration
	fetchRetries int
	fetchBackoff time.Duration
	fabricMem    int64
}

func main() {
	var cfg serverConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.mechName, "mechanism", "msm", "mechanism: msm, adaptive, pl or opt")
	flag.Float64Var(&cfg.eps, "eps", 0.25, "privacy budget per report (1/km)")
	flag.IntVar(&cfg.g, "g", 4, "grid granularity / fanout")
	flag.Float64Var(&cfg.rho, "rho", 0.8, "per-level same-cell probability target")
	flag.Float64Var(&cfg.side, "side", 20, "region side (km), ignored with -dataset")
	flag.StringVar(&cfg.dsName, "dataset", "", "prior dataset: gowalla, yelp or a CSV path")
	flag.Uint64Var(&cfg.seed, "seed", 0, "RNG seed (0 = time-based)")
	flag.IntVar(&cfg.workers, "workers", -1, "channel-pipeline parallelism: LP block solves, precompute fan-out and concurrent sampling (0 or 1 = sequential, negative = one per CPU)")
	flag.Float64Var(&cfg.budgetLimit, "budget", 1.0, "per-user budget per window (0 disables enforcement)")
	flag.DurationVar(&cfg.budgetWindow, "budget-window", 24*time.Hour, "budget accounting window")
	flag.StringVar(&cfg.ledgerFile, "ledger-file", "", "optional ledger persistence file (legacy JSON snapshot saved on shutdown; with -ledger-dir it is only read once as a migration source)")
	flag.StringVar(&cfg.ledgerDir, "ledger-dir", "", "durable per-user session directory: budget spend and trace state are journaled (append-only log + snapshots) and survive crashes, unlike -ledger-file which only persists on clean shutdown")
	flag.IntVar(&cfg.ledgerSync, "ledger-sync", 0, "fsync the session journal every N records (0 = default 1, every record; larger trades the tail of the journal for throughput)")
	flag.Float64Var(&cfg.traceTheta, "trace-theta", 0, "enable POST /v1/trace with this predictive test threshold (km): stationary users re-release their last report for only -trace-eps-test per step (0 = endpoint disabled; requires -budget > 0)")
	flag.Float64Var(&cfg.traceEpsTest, "trace-eps-test", 0, "per-step budget of the /v1/trace prediction test (0 = default eps/4)")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "persistent channel snapshot directory (restarts and replicas sharing it skip the LP solve phase)")
	flag.Int64Var(&cfg.cacheBytes, "cache-bytes", 0, "resident channel-matrix byte budget with LRU eviction (0 = unbounded; evicted channels reload from -cache-dir)")
	flag.DurationVar(&cfg.reqTimeout, "request-timeout", 0, "per-request deadline for /v1/report and /v1/report:batch (0 = none; a request past the deadline is canceled and answered 504 with its budget refunded)")
	flag.DurationVar(&cfg.solveTimeout, "solve-timeout", 0, "wall-clock bound on each detached channel solve (0 = none; a timed-out solve is aborted and retried by the next request for that channel)")
	flag.IntVar(&cfg.maxSolves, "max-solves", 0, "cold-solve admission control: at most this many channel solves execute concurrently and as many more queue; excess requests get 429 + Retry-After with no budget charge (0 = unbounded)")
	flag.StringVar(&cfg.sampler, "sampler", "cum", "warm-path sampler: cum (cumulative binary search, bit-compatible reference) or alias (O(1) Walker alias tables)")
	flag.Float64Var(&cfg.pruneMass, "prune-mass", 0, "per-row channel pruning bound in [0, 0.5): prune up to this probability mass per row into a uniform background (eps-preserving, verifier-gated; 0 = dense channels)")
	flag.Float64Var(&cfg.localRadius, "local-radius", 0, "locally relevant OPT: solve each channel LP only over cells within this radius (km) of the prior-mass core; excluded cells get an eps-preserving padded background (0 = disabled; msm and opt mechanisms only)")
	flag.Float64Var(&cfg.localMass, "local-mass", 0, "locally relevant OPT: prior mass allowed outside the relevance core, in (0, 0.5) (0 = default 1e-3; requires -local-radius)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "optional separate listen address for net/http/pprof (e.g. localhost:6060; empty = profiling disabled)")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated base URLs of every replica in the channel fleet, identical on all replicas (e.g. http://a:8080,http://b:8080); empty = standalone (msm only)")
	flag.StringVar(&cfg.fabricSelf, "fabric-self", "", "this replica's own base URL; must be one of -peers")
	flag.DurationVar(&cfg.hedgeDelay, "hedge-delay", 0, "latency threshold before a remote channel fetch hedges to the next ring replica (0 = default 150ms, negative = hedging off)")
	flag.DurationVar(&cfg.fetchTimeout, "fetch-timeout", 0, "wall-clock bound on one remote channel fetch attempt including hedges (0 = default 15s)")
	flag.IntVar(&cfg.fetchRetries, "fetch-retries", 0, "extra remote fetch attempts after a transient failure (0 = default 2, negative = no retries)")
	flag.DurationVar(&cfg.fetchBackoff, "fetch-backoff", 0, "initial delay between remote fetch attempts, doubling per retry (0 = default 100ms)")
	flag.Int64Var(&cfg.fabricMem, "fabric-mem-bytes", 0, "byte bound of the fabric's in-memory snapshot tier (0 = default 64MiB, negative = tier off)")
	flag.Parse()

	if err := run(cfg); err != nil {
		log.Fatal("geoind-server: ", err)
	}
}

// servePprof exposes the net/http/pprof handlers on their own mux and
// listener, so enabling profiling never widens the public API surface.
// Returns a closer for the listener.
func servePprof(addr string) (func() error, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	log.Printf("pprof listening on %s", ln.Addr())
	return ln.Close, nil
}

func run(cfg serverConfig) error {
	addr, mechName, eps, g, rho, side := cfg.addr, cfg.mechName, cfg.eps, cfg.g, cfg.rho, cfg.side
	dsName, seed, workers := cfg.dsName, cfg.seed, cfg.workers
	budgetLimit, budgetWindow, ledgerFile := cfg.budgetLimit, cfg.budgetWindow, cfg.ledgerFile
	cacheDir, cacheBytes := cfg.cacheDir, cfg.cacheBytes
	reqTimeout, solveTimeout := cfg.reqTimeout, cfg.solveTimeout
	sampler, pruneMass := cfg.sampler, cfg.pruneMass
	localRadius, localMass := cfg.localRadius, cfg.localMass

	if localRadius > 0 && mechName != "msm" && mechName != "opt" {
		return fmt.Errorf("-local-radius is only supported by the msm and opt mechanisms, not %q", mechName)
	}

	var fabricCfg *geoind.FabricConfig
	if cfg.peers != "" {
		if mechName != "msm" {
			return fmt.Errorf("-peers is only supported by the msm mechanism, not %q", mechName)
		}
		if cfg.fabricSelf == "" {
			return fmt.Errorf("-peers requires -fabric-self (this replica's own base URL)")
		}
		var peerList []string
		for _, p := range strings.Split(cfg.peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		fabricCfg = &geoind.FabricConfig{
			Peers:        peerList,
			Self:         cfg.fabricSelf,
			MemBytes:     cfg.fabricMem,
			HedgeDelay:   cfg.hedgeDelay,
			FetchTimeout: cfg.fetchTimeout,
			FetchRetries: cfg.fetchRetries,
			FetchBackoff: cfg.fetchBackoff,
		}
	} else if cfg.fabricSelf != "" {
		return fmt.Errorf("-fabric-self requires -peers")
	}

	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}

	if cfg.pprofAddr != "" {
		closePprof, err := servePprof(cfg.pprofAddr)
		if err != nil {
			return err
		}
		defer closePprof()
	}

	// One signal context covers the whole lifecycle: a SIGINT/SIGTERM during
	// the (potentially long) precompute phase cancels it instead of forcing a
	// kill, and the same signal later triggers the graceful HTTP drain.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	region := geoind.Square(side)
	var points []geoind.Point
	switch dsName {
	case "":
	case "gowalla":
		d := geoind.GowallaSynthetic()
		region, points = d.Region(), d.Points()
	case "yelp":
		d := geoind.YelpSynthetic()
		region, points = d.Region(), d.Points()
	default:
		f, err := os.Open(dsName)
		if err != nil {
			return err
		}
		d, err := geoind.ReadDatasetCSV(f, dsName, side)
		f.Close()
		if err != nil {
			return err
		}
		region, points = d.Region(), d.Points()
	}

	var mech server.Reporter
	var flush func() // drains write-behind snapshot persistence, nil when N/A
	switch mechName {
	case "msm":
		m, err := geoind.NewMSM(geoind.MSMConfig{
			Eps: eps, Region: region, Granularity: g, Rho: rho,
			PriorPoints: points, Seed: seed, Workers: workers,
			CacheDir: cacheDir, CacheBytes: cacheBytes, SolveTimeout: solveTimeout,
			MaxSolves: cfg.maxSolves,
			Sampler:   sampler, PruneMass: pruneMass,
			LocalRadius: localRadius, LocalMassFloor: localMass,
			Fabric: fabricCfg,
		})
		if err != nil {
			return err
		}
		if fabricCfg != nil {
			log.Printf("channel fabric: %s in a %d-replica fleet (owner-only precompute)",
				fabricCfg.Self, len(fabricCfg.Peers))
		}
		log.Printf("precomputing MSM channels (height %d, leaf %dx%d)...",
			m.Height(), m.LeafGranularity(), m.LeafGranularity())
		if err := m.PrecomputeCtx(sigCtx); err != nil {
			return err
		}
		logCacheStats(cacheDir, m.StoreStats())
		mech, flush = m, m.FlushCache
	case "adaptive":
		m, err := geoind.NewAdaptiveMSM(geoind.AdaptiveMSMConfig{
			Eps: eps, Region: region, Fanout: g, Rho: rho,
			PriorPoints: points, Seed: seed, Workers: workers,
			CacheDir: cacheDir, CacheBytes: cacheBytes, SolveTimeout: solveTimeout,
			MaxSolves: cfg.maxSolves,
			Sampler:   sampler, PruneMass: pruneMass,
		})
		if err != nil {
			return err
		}
		log.Printf("precomputing adaptive channels (%d nodes)...", m.NumNodes())
		if err := m.PrecomputeCtx(sigCtx); err != nil {
			return err
		}
		logCacheStats(cacheDir, m.StoreStats())
		mech, flush = m, m.FlushCache
	case "pl":
		m, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: eps, Seed: seed})
		if err != nil {
			return err
		}
		mech = m
	case "opt":
		m, err := geoind.NewOptimal(geoind.OptimalConfig{
			Eps: eps, Region: region, Granularity: g, PriorPoints: points, Seed: seed,
			Workers: workers, Sampler: sampler, PruneMass: pruneMass,
			LocalRadius: localRadius, LocalMassFloor: localMass,
		})
		if err != nil {
			return err
		}
		mech = m
	default:
		return fmt.Errorf("unknown mechanism %q", mechName)
	}

	var ledger *server.Ledger
	var sessions *session.Store
	if budgetLimit > 0 {
		if cfg.ledgerDir != "" {
			// Durable sessions: every spend and memo update is journaled, so a
			// crash (not just a clean shutdown) preserves budget accounting.
			// In a fleet, each replica journals only the users it owns under
			// the same rendezvous hash that assigns channels, so replicas
			// sharing a volume pattern never fight over foreign users' state.
			var owns func(string) bool
			if fabricCfg != nil {
				ring, err := fabric.NewRing(fabricCfg.Peers, fabricCfg.Self)
				if err != nil {
					return err
				}
				owns = func(user string) bool {
					h := channel.NewHasher()
					h.String(user)
					return ring.Owner(h.Sum()) == ring.Self()
				}
			}
			var err error
			sessions, err = session.Open(session.Config{
				Limit:     budgetLimit,
				Window:    budgetWindow,
				Dir:       cfg.ledgerDir,
				SyncEvery: cfg.ledgerSync,
				Owns:      owns,
			})
			if err != nil {
				return err
			}
			defer func() {
				if err := sessions.Close(); err != nil {
					log.Printf("session store close: %v", err)
				}
			}()
			ledger, err = server.NewLedgerStore(sessions)
			if err != nil {
				return err
			}
			log.Printf("session journal in %s (%d users replayed)", cfg.ledgerDir, ledger.Users())
			if ledgerFile != "" {
				// One-shot migration from the legacy JSON snapshot: only into
				// an empty journal, so replayed journal state always wins.
				if ledger.Users() > 0 {
					log.Printf("ignoring -ledger-file %s: journal already has state", ledgerFile)
				} else if f, err := os.Open(ledgerFile); err == nil {
					if err := ledger.Load(f); err != nil {
						f.Close()
						return fmt.Errorf("migrate ledger: %w", err)
					}
					f.Close()
					log.Printf("migrated ledger from %s into journal (%d users)", ledgerFile, ledger.Users())
				} else if !errors.Is(err, os.ErrNotExist) {
					return err
				}
			}
		} else {
			var err error
			ledger, err = server.NewLedger(budgetLimit, budgetWindow, nil)
			if err != nil {
				return err
			}
			if ledgerFile != "" {
				if f, err := os.Open(ledgerFile); err == nil {
					if err := ledger.Load(f); err != nil {
						f.Close()
						return fmt.Errorf("restore ledger: %w", err)
					}
					f.Close()
					log.Printf("restored ledger from %s (%d users)", ledgerFile, ledger.Users())
				} else if !errors.Is(err, os.ErrNotExist) {
					return err
				}
			}
		}
	}

	srv, err := server.New(mech, ledger, region)
	if err != nil {
		return err
	}
	if cfg.traceTheta > 0 {
		if ledger == nil {
			return fmt.Errorf("-trace-theta requires budget enforcement (-budget > 0)")
		}
		epsTest := cfg.traceEpsTest
		if epsTest == 0 {
			epsTest = mech.Epsilon() / 4
		}
		if err := srv.EnableTrace(server.TraceConfig{
			Theta:   cfg.traceTheta,
			EpsTest: epsTest,
			Seed:    seed,
		}); err != nil {
			return err
		}
		log.Printf("trace endpoint enabled (theta=%g km, epsTest=%g)", cfg.traceTheta, epsTest)
	} else if cfg.traceEpsTest != 0 {
		return fmt.Errorf("-trace-eps-test requires -trace-theta")
	}
	srv.SetRequestTimeout(reqTimeout)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving %s (eps=%g/report) on %s", mech.Name(), mech.Epsilon(), addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
		log.Printf("received shutdown signal, draining")
	}

	// Flip readiness first so load balancers stop sending new work, then
	// drain in-flight requests.
	srv.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if flush != nil {
		flush() // make sure every solved channel reached the snapshot cache
	}
	if ledger != nil && ledgerFile != "" && cfg.ledgerDir == "" {
		f, err := os.CreateTemp(".", "ledger-*.tmp")
		if err != nil {
			return err
		}
		if err := ledger.Save(f); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			return err
		}
		if err := os.Rename(f.Name(), ledgerFile); err != nil {
			os.Remove(f.Name())
			return err
		}
		log.Printf("saved ledger to %s", ledgerFile)
	}
	return nil
}
