// Command geoind-server runs the location-sanitization microservice: an
// HTTP JSON API fronting a GeoInd mechanism with per-user privacy budget
// accounting.
//
// Endpoints:
//
//	GET  /healthz                   liveness probe
//	GET  /v1/healthz                readiness probe: 503 once graceful
//	                                shutdown begins, so load balancers stop
//	                                routing new traffic during the drain
//	GET  /v1/info                   mechanism + budget configuration
//	POST /v1/report                 {"user_id":"u","x":3.2,"y":11.7} -> sanitized location
//	POST /v1/report:batch           [{"user_id":"u","x":...,"y":...}, ...] -> sanitized
//	                                locations in input order; the whole batch budget
//	                                (len x eps) is charged atomically or not at all
//	GET  /v1/budget?user_id=u       remaining budget in the current window
//	GET  /v1/stats                  channel-cache counters (hits, solves,
//	                                persistent-cache disk hits/writes) and
//	                                sampler/pruning configuration
//
// Example:
//
//	geoind-server -addr :8080 -mechanism msm -eps 0.25 -g 4 -dataset gowalla \
//	    -budget 1.0 -budget-window 24h -ledger-file /var/lib/geoind/ledger.json \
//	    -cache-dir /var/lib/geoind/channels
//
// With -cache-dir, every solved channel is persisted as a checksummed
// snapshot; a restart (or another replica sharing the volume) reloads them
// and performs zero LP solves during precompute.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"geoind"
	"geoind/internal/channel"
	"geoind/internal/server"
)

// logCacheStats reports how much of the precompute phase was served from the
// persistent snapshot cache: on a warm restart every channel is a disk hit
// and zero LPs are solved.
func logCacheStats(cacheDir string, st channel.Stats) {
	if cacheDir == "" {
		return
	}
	log.Printf("channel cache: %d LP solves, %d loaded from %s, %d queued for persistence",
		st.Misses, st.BackingHits, cacheDir, st.BackingWrites)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	mechName := flag.String("mechanism", "msm", "mechanism: msm, adaptive, pl or opt")
	eps := flag.Float64("eps", 0.25, "privacy budget per report (1/km)")
	g := flag.Int("g", 4, "grid granularity / fanout")
	rho := flag.Float64("rho", 0.8, "per-level same-cell probability target")
	side := flag.Float64("side", 20, "region side (km), ignored with -dataset")
	ds := flag.String("dataset", "", "prior dataset: gowalla, yelp or a CSV path")
	seed := flag.Uint64("seed", 0, "RNG seed (0 = time-based)")
	workers := flag.Int("workers", -1, "channel-pipeline parallelism: LP block solves, precompute fan-out and concurrent sampling (0 or 1 = sequential, negative = one per CPU)")
	budgetLimit := flag.Float64("budget", 1.0, "per-user budget per window (0 disables enforcement)")
	budgetWindow := flag.Duration("budget-window", 24*time.Hour, "budget accounting window")
	ledgerFile := flag.String("ledger-file", "", "optional ledger persistence file")
	cacheDir := flag.String("cache-dir", "", "persistent channel snapshot directory (restarts and replicas sharing it skip the LP solve phase)")
	cacheBytes := flag.Int64("cache-bytes", 0, "resident channel-matrix byte budget with LRU eviction (0 = unbounded; evicted channels reload from -cache-dir)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request deadline for /v1/report and /v1/report:batch (0 = none; a request past the deadline is canceled and answered 504 with its budget refunded)")
	solveTimeout := flag.Duration("solve-timeout", 0, "wall-clock bound on each detached channel solve (0 = none; a timed-out solve is aborted and retried by the next request for that channel)")
	sampler := flag.String("sampler", "cum", "warm-path sampler: cum (cumulative binary search, bit-compatible reference) or alias (O(1) Walker alias tables)")
	pruneMass := flag.Float64("prune-mass", 0, "per-row channel pruning bound in [0, 0.5): prune up to this probability mass per row into a uniform background (eps-preserving, verifier-gated; 0 = dense channels)")
	localRadius := flag.Float64("local-radius", 0, "locally relevant OPT: solve each channel LP only over cells within this radius (km) of the prior-mass core; excluded cells get an eps-preserving padded background (0 = disabled; msm and opt mechanisms only)")
	localMass := flag.Float64("local-mass", 0, "locally relevant OPT: prior mass allowed outside the relevance core, in (0, 0.5) (0 = default 1e-3; requires -local-radius)")
	flag.Parse()

	if err := run(*addr, *mechName, *eps, *g, *rho, *side, *ds, *seed, *workers,
		*budgetLimit, *budgetWindow, *ledgerFile, *cacheDir, *cacheBytes,
		*reqTimeout, *solveTimeout, *sampler, *pruneMass, *localRadius, *localMass); err != nil {
		log.Fatal("geoind-server: ", err)
	}
}

func run(addr, mechName string, eps float64, g int, rho, side float64, dsName string,
	seed uint64, workers int, budgetLimit float64, budgetWindow time.Duration,
	ledgerFile, cacheDir string, cacheBytes int64,
	reqTimeout, solveTimeout time.Duration, sampler string, pruneMass float64,
	localRadius, localMass float64) error {

	if localRadius > 0 && mechName != "msm" && mechName != "opt" {
		return fmt.Errorf("-local-radius is only supported by the msm and opt mechanisms, not %q", mechName)
	}

	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}

	// One signal context covers the whole lifecycle: a SIGINT/SIGTERM during
	// the (potentially long) precompute phase cancels it instead of forcing a
	// kill, and the same signal later triggers the graceful HTTP drain.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	region := geoind.Square(side)
	var points []geoind.Point
	switch dsName {
	case "":
	case "gowalla":
		d := geoind.GowallaSynthetic()
		region, points = d.Region(), d.Points()
	case "yelp":
		d := geoind.YelpSynthetic()
		region, points = d.Region(), d.Points()
	default:
		f, err := os.Open(dsName)
		if err != nil {
			return err
		}
		d, err := geoind.ReadDatasetCSV(f, dsName, side)
		f.Close()
		if err != nil {
			return err
		}
		region, points = d.Region(), d.Points()
	}

	var mech server.Reporter
	var flush func() // drains write-behind snapshot persistence, nil when N/A
	switch mechName {
	case "msm":
		m, err := geoind.NewMSM(geoind.MSMConfig{
			Eps: eps, Region: region, Granularity: g, Rho: rho,
			PriorPoints: points, Seed: seed, Workers: workers,
			CacheDir: cacheDir, CacheBytes: cacheBytes, SolveTimeout: solveTimeout,
			Sampler: sampler, PruneMass: pruneMass,
			LocalRadius: localRadius, LocalMassFloor: localMass,
		})
		if err != nil {
			return err
		}
		log.Printf("precomputing MSM channels (height %d, leaf %dx%d)...",
			m.Height(), m.LeafGranularity(), m.LeafGranularity())
		if err := m.PrecomputeCtx(sigCtx); err != nil {
			return err
		}
		logCacheStats(cacheDir, m.StoreStats())
		mech, flush = m, m.FlushCache
	case "adaptive":
		m, err := geoind.NewAdaptiveMSM(geoind.AdaptiveMSMConfig{
			Eps: eps, Region: region, Fanout: g, Rho: rho,
			PriorPoints: points, Seed: seed, Workers: workers,
			CacheDir: cacheDir, CacheBytes: cacheBytes, SolveTimeout: solveTimeout,
			Sampler: sampler, PruneMass: pruneMass,
		})
		if err != nil {
			return err
		}
		log.Printf("precomputing adaptive channels (%d nodes)...", m.NumNodes())
		if err := m.PrecomputeCtx(sigCtx); err != nil {
			return err
		}
		logCacheStats(cacheDir, m.StoreStats())
		mech, flush = m, m.FlushCache
	case "pl":
		m, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: eps, Seed: seed})
		if err != nil {
			return err
		}
		mech = m
	case "opt":
		m, err := geoind.NewOptimal(geoind.OptimalConfig{
			Eps: eps, Region: region, Granularity: g, PriorPoints: points, Seed: seed,
			Workers: workers, Sampler: sampler, PruneMass: pruneMass,
			LocalRadius: localRadius, LocalMassFloor: localMass,
		})
		if err != nil {
			return err
		}
		mech = m
	default:
		return fmt.Errorf("unknown mechanism %q", mechName)
	}

	var ledger *server.Ledger
	if budgetLimit > 0 {
		var err error
		ledger, err = server.NewLedger(budgetLimit, budgetWindow, nil)
		if err != nil {
			return err
		}
		if ledgerFile != "" {
			if f, err := os.Open(ledgerFile); err == nil {
				if err := ledger.Load(f); err != nil {
					f.Close()
					return fmt.Errorf("restore ledger: %w", err)
				}
				f.Close()
				log.Printf("restored ledger from %s (%d users)", ledgerFile, ledger.Users())
			} else if !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
	}

	srv, err := server.New(mech, ledger, region)
	if err != nil {
		return err
	}
	srv.SetRequestTimeout(reqTimeout)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving %s (eps=%g/report) on %s", mech.Name(), mech.Epsilon(), addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
		log.Printf("received shutdown signal, draining")
	}

	// Flip readiness first so load balancers stop sending new work, then
	// drain in-flight requests.
	srv.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if flush != nil {
		flush() // make sure every solved channel reached the snapshot cache
	}
	if ledger != nil && ledgerFile != "" {
		f, err := os.CreateTemp(".", "ledger-*.tmp")
		if err != nil {
			return err
		}
		if err := ledger.Save(f); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			return err
		}
		if err := os.Rename(f.Name(), ledgerFile); err != nil {
			os.Remove(f.Name())
			return err
		}
		log.Printf("saved ledger to %s", ledgerFile)
	}
	return nil
}
