package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWorkloadDraws(t *testing.T) {
	w, err := newWorkload(7, 20, 100, 1.3, 5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		x, y := w.point()
		if x < 0 || x >= 20 || y < 0 || y >= 20 {
			t.Fatalf("draw %d: (%g, %g) outside [0, 20)", i, x, y)
		}
	}
	seen := map[string]int{}
	for i := 0; i < 10000; i++ {
		seen[w.user()]++
	}
	// Zipf skew: rank-0 must dominate any mid-tail user.
	if seen["u0"] < 10*seen["u50"] {
		t.Errorf("u0 drawn %d times vs u50 %d times; expected heavy skew", seen["u0"], seen["u50"])
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := newWorkload(1, 20, 0, 1.3, 5, 0.8); err == nil {
		t.Error("0 users should error")
	}
	if _, err := newWorkload(1, 20, 10, 1.0, 5, 0.8); err == nil {
		t.Error("zipf exponent 1.0 should error")
	}
	if _, err := newWorkload(1, 20, 10, 1.3, 5, 1.5); err == nil {
		t.Error("hotspot fraction > 1 should error")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a, _ := newWorkload(42, 20, 100, 1.3, 3, 0.8)
	b, _ := newWorkload(42, 20, 100, 1.3, 3, 0.8)
	for i := 0; i < 100; i++ {
		ax, ay := a.point()
		bx, by := b.point()
		if ax != bx || ay != by || a.user() != b.user() {
			t.Fatalf("draw %d diverged between same-seed workloads", i)
		}
	}
}

func TestBenchDocumentShape(t *testing.T) {
	s := &summary{
		Report: classStats{Count: 1000, P50Ms: 1, P99Ms: 5, P999Ms: 9},
		Batch:  classStats{Count: 0},
	}
	doc := s.benchDocument()
	if len(doc.Cases) != 3 {
		t.Fatalf("cases = %d, want 3 (batch had no samples)", len(doc.Cases))
	}
	if doc.Cases[0].Name != "Loadgen/report/p50" || doc.Cases[0].NsPerOp != 1e6 {
		t.Errorf("case 0 = %+v", doc.Cases[0])
	}
	if doc.Load != s {
		t.Error("summary not embedded in document")
	}
}

func TestAssertGates(t *testing.T) {
	s := &summary{Completed: 100, Err5xx: 3, Report: classStats{Count: 90, P99Ms: 700}}
	if got := s.assert(config{max5xx: -1}); got != 0 {
		t.Errorf("no gates: exit %d, want 0", got)
	}
	if got := s.assert(config{max5xx: 2}); got != 1 {
		t.Errorf("5xx gate: exit %d, want 1", got)
	}
	if got := s.assert(config{max5xx: -1, maxP99: 500 * time.Millisecond}); got != 1 {
		t.Errorf("p99 gate: exit %d, want 1", got)
	}
	empty := &summary{}
	if got := empty.assert(config{max5xx: -1}); got != 1 {
		t.Errorf("zero completed requests must fail: exit %d", got)
	}
}

// TestEndToEndSelf drives a short real run against the in-process server
// and checks the full loop: traffic flows, the output file is valid
// benchjson-schema JSON carrying quantiles and scraped budget counters.
func TestEndToEndSelf(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "load.json")
	cfg := config{
		duration:   400 * time.Millisecond,
		workers:    4,
		timeout:    5 * time.Second,
		users:      50,
		zipfS:      1.3,
		hotspots:   3,
		hotFrac:    0.8,
		batchFrac:  0.3,
		batchSize:  4,
		chaosFrac:  0.05,
		chaosAt:    time.Millisecond,
		seed:       1,
		out:        outPath,
		max5xx:     0,
		maxP99:     2 * time.Second,
		self:       true,
		selfMech:   "pl",
		selfEps:    0.25,
		selfBudget: 100,
	}
	if got := run(cfg, io.Discard); got != 0 {
		t.Fatalf("run exit %d, want 0", got)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDocument
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cases) == 0 {
		t.Fatal("no benchmark cases in output")
	}
	for _, c := range doc.Cases {
		if !strings.HasPrefix(c.Name, "Loadgen/") || c.Iterations <= 0 || c.NsPerOp <= 0 {
			t.Errorf("malformed case %+v", c)
		}
	}
	if doc.Load == nil || doc.Load.Completed == 0 {
		t.Fatal("load summary missing or empty")
	}
	if doc.Load.Err5xx != 0 {
		t.Errorf("self run produced %d 5xx responses", doc.Load.Err5xx)
	}
	if !doc.Load.MetricsScraped {
		t.Error("budget counters were not scraped from /metrics")
	}
	if doc.Load.BudgetCharges == 0 {
		t.Error("ledger configured but no budget charges recorded")
	}
}

// TestEndToEndOpenLoop covers the paced arrival mode.
func TestEndToEndOpenLoop(t *testing.T) {
	cfg := config{
		duration:  300 * time.Millisecond,
		workers:   4,
		rps:       200,
		timeout:   5 * time.Second,
		users:     20,
		zipfS:     1.5,
		hotspots:  2,
		hotFrac:   0.5,
		batchSize: 1,
		seed:      2,
		max5xx:    0,
		self:      true,
		selfMech:  "pl",
		selfEps:   0.25,
	}
	if got := run(cfg, io.Discard); got != 0 {
		t.Fatalf("open-loop run exit %d, want 0", got)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if got := run(config{}, io.Discard); got != 2 {
		t.Errorf("neither -url nor -self: exit %d, want 2", got)
	}
	if got := run(config{url: "http://x", self: true}, io.Discard); got != 2 {
		t.Errorf("both -url and -self: exit %d, want 2", got)
	}
	if got := run(config{url: "http://x", targets: "http://a,http://b", workers: 1, batchSize: 1}, io.Discard); got != 2 {
		t.Errorf("both -url and -targets: exit %d, want 2", got)
	}
	if got := run(config{self: true, workers: 0, batchSize: 1}, io.Discard); got != 2 {
		t.Errorf("zero workers: exit %d, want 2", got)
	}
	if got := run(config{self: true, workers: 1, batchSize: 1, affinity: "sticky"}, io.Discard); got != 2 {
		t.Errorf("bad affinity: exit %d, want 2", got)
	}
}

// TestEndToEndTargets drives a fleet of two in-process replicas through the
// -targets path: traffic reaches both, and the per-replica fleet scrape with
// the duplicate-solve estimate lands in the summary.
func TestEndToEndTargets(t *testing.T) {
	base := config{workers: 1, selfMech: "pl", selfEps: 0.25, timeout: 5 * time.Second, seed: 3}
	var urls []string
	for i := 0; i < 2; i++ {
		u, shutdown, err := startSelfServer(base)
		if err != nil {
			t.Fatal(err)
		}
		defer shutdown()
		urls = append(urls, u)
	}
	for _, affinity := range []string{"rr", "user"} {
		cfg := config{
			targets:   strings.Join(urls, ","),
			affinity:  affinity,
			duration:  250 * time.Millisecond,
			workers:   4,
			timeout:   5 * time.Second,
			users:     20,
			zipfS:     1.3,
			hotspots:  2,
			hotFrac:   0.5,
			batchSize: 1,
			seed:      4,
			max5xx:    0,
		}
		out := filepath.Join(t.TempDir(), affinity+".json")
		cfg.out = out
		if got := run(cfg, io.Discard); got != 0 {
			t.Fatalf("affinity=%s: run exit %d, want 0", affinity, got)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var doc benchDocument
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		fl := doc.Load.Fleet
		if fl == nil || len(fl.Replicas) != 2 {
			t.Fatalf("affinity=%s: fleet section %+v", affinity, fl)
		}
		for _, rs := range fl.Replicas {
			if !rs.Scraped {
				t.Errorf("affinity=%s: replica %s not scraped", affinity, rs.URL)
			}
		}
		// PL replicas never solve channels, so the fleet-wide duplicate
		// estimate must be exactly zero.
		if fl.DuplicateSolveEstimate != 0 || fl.TotalSolves != 0 {
			t.Errorf("affinity=%s: fleet totals %+v", affinity, fl)
		}
	}
}

// TestTargetAffinity pins the distribution contracts: user affinity is
// sticky per user ID, round-robin alternates.
func TestTargetAffinity(t *testing.T) {
	r := newRunner(config{affinity: "user"}, []string{"http://a", "http://b", "http://c"})
	for _, u := range []string{"u0", "u1", "u17"} {
		first := r.target(u)
		for i := 0; i < 10; i++ {
			if got := r.target(u); got != first {
				t.Fatalf("user %s moved from %s to %s", u, first, got)
			}
		}
	}
	rr := newRunner(config{affinity: "rr"}, []string{"http://a", "http://b"})
	if rr.target("x") == rr.target("x") {
		t.Fatal("round-robin returned the same target twice in a row")
	}
}
