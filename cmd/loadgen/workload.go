package main

import (
	"fmt"
	"math"
	"math/rand"
)

// workload generates the synthetic population one worker draws requests
// from: Zipf-distributed user IDs (a few heavy hitters, a long tail — the
// shape that stresses per-user budget windows) and a hotspot-mixture spatial
// prior (most reports cluster around a handful of popular places, the rest
// are background noise — the shape the paper's prior-aware channels are
// built for). Each worker owns one workload so draws need no locking;
// workers are seeded deterministically from the base seed.
type workload struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	side     float64
	hotspots []hotspot
	hotFrac  float64
	// tracePos is each user's current position in their continuous random
	// walk (per-worker, like everything else here, so no locking).
	tracePos map[string][2]float64
}

type hotspot struct {
	x, y, sigma float64
}

// newWorkload builds a workload over a side x side region with the given
// number of distinct users and hotspots. zipfS > 1 is the Zipf exponent
// (larger = more skew toward user 0).
func newWorkload(seed int64, side float64, users uint64, zipfS float64, nHotspots int, hotFrac float64) (*workload, error) {
	if users == 0 {
		return nil, fmt.Errorf("users must be > 0")
	}
	if zipfS <= 1 {
		return nil, fmt.Errorf("zipf exponent must be > 1, got %g", zipfS)
	}
	if hotFrac < 0 || hotFrac > 1 {
		return nil, fmt.Errorf("hotspot fraction must be in [0, 1], got %g", hotFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	w := &workload{
		rng:      rng,
		zipf:     rand.NewZipf(rng, zipfS, 1, users-1),
		side:     side,
		hotFrac:  hotFrac,
		tracePos: make(map[string][2]float64),
	}
	// Hotspot centers are drawn once per workload from the same seed, kept
	// away from the region edge so their Gaussian mass mostly stays inside.
	for i := 0; i < nHotspots; i++ {
		w.hotspots = append(w.hotspots, hotspot{
			x:     side * (0.15 + 0.7*rng.Float64()),
			y:     side * (0.15 + 0.7*rng.Float64()),
			sigma: side * (0.02 + 0.03*rng.Float64()),
		})
	}
	return w, nil
}

// user draws a Zipf-ranked user ID.
func (w *workload) user() string {
	return fmt.Sprintf("u%d", w.zipf.Uint64())
}

// point draws one location: with probability hotFrac a Gaussian draw around
// a uniformly chosen hotspot (clamped into the region), otherwise uniform
// background.
func (w *workload) point() (x, y float64) {
	if len(w.hotspots) > 0 && w.rng.Float64() < w.hotFrac {
		h := w.hotspots[w.rng.Intn(len(w.hotspots))]
		x = clamp(h.x+w.rng.NormFloat64()*h.sigma, 0, w.side)
		y = clamp(h.y+w.rng.NormFloat64()*h.sigma, 0, w.side)
		return x, y
	}
	return w.rng.Float64() * w.side, w.rng.Float64() * w.side
}

// traceStep advances (or starts) the user's persistent random walk and
// returns their new position. Steps are small Gaussian moves (~200m), so a
// frequently reporting user mostly dwells — the regime the server's
// predictive /v1/trace pipeline is built to exploit.
func (w *workload) traceStep(user string) (x, y float64) {
	pos, ok := w.tracePos[user]
	if !ok {
		pos[0], pos[1] = w.point()
	} else {
		const walkSigma = 0.2 // km per step
		pos[0] = clamp(pos[0]+w.rng.NormFloat64()*walkSigma, 0, w.side)
		pos[1] = clamp(pos[1]+w.rng.NormFloat64()*walkSigma, 0, w.side)
	}
	w.tracePos[user] = pos
	return pos[0], pos[1]
}

func clamp(v, lo, hi float64) float64 {
	// The region is the half-open [0, side) x [0, side); math.Nextafter
	// keeps clamped draws strictly inside.
	return math.Min(math.Max(v, lo), math.Nextafter(hi, lo))
}
