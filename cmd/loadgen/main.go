// Command loadgen drives synthetic traffic at a running geoind-server (or
// an in-process one with -self) and reports the latency and error profile
// the way a capacity test would see it.
//
// The workload models the paper's setting rather than uniform noise: user
// IDs are Zipf-distributed (a few heavy hitters dominate, stressing
// per-user budget windows), locations follow a hotspot mixture (most
// reports cluster around a few popular places), traffic mixes single
// reports with batches (-batch-frac, -batch-size), and a configurable
// fraction of requests is abandoned mid-flight (-chaos-frac) to exercise
// the cancellation and budget-refund paths.
//
// Two pacing modes:
//
//   - closed loop (default): -workers goroutines issue requests
//     back-to-back, so offered load adapts to server latency.
//   - open loop (-rps > 0): arrivals are paced at a fixed rate regardless
//     of completions (bounded by -workers concurrent requests), which is
//     what reveals queueing collapse.
//
// The run summary — per-class p50/p99/p999, status-code counts, error and
// budget-refund rates (scraped from the server's /metrics) — is written to
// -out in the same JSON schema `cmd/benchjson` records, so a committed
// baseline diffs with:
//
//	go run ./cmd/benchjson -diff -threshold 50 BENCH_load.json new.json
//
// With -max-5xx and -max-p99 the command exits non-zero when the run
// violates the bound, making it usable as a CI smoke-load gate:
//
//	go run ./cmd/loadgen -self -duration 5s -max-5xx 0 -max-p99 500ms
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geoind"
	"geoind/internal/metrics"
	"geoind/internal/server"
)

type config struct {
	url      string
	targets  string
	affinity string
	duration time.Duration
	workers  int
	rps      float64
	timeout  time.Duration

	users     uint64
	zipfS     float64
	hotspots  int
	hotFrac   float64
	batchFrac float64
	batchSize int
	traceFrac float64
	chaosFrac float64
	chaosAt   time.Duration
	seed      int64

	out    string
	max5xx int64
	maxP99 time.Duration

	self          bool
	selfMech      string
	selfEps       float64
	selfBudget    float64
	selfMaxSolves int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.url, "url", "", "base URL of a running geoind-server (e.g. http://localhost:8080); empty requires -self or -targets")
	flag.StringVar(&cfg.targets, "targets", "", "comma-separated base URLs of a replica fleet; traffic is spread across them per -affinity and each replica's /metrics is scraped for the fleet duplicate-solve estimate")
	flag.StringVar(&cfg.affinity, "affinity", "rr", "fleet traffic distribution with -targets: rr (round-robin per request) or user (each user ID sticks to one replica)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to drive load")
	flag.IntVar(&cfg.workers, "workers", 8, "closed-loop workers / open-loop concurrency cap")
	flag.Float64Var(&cfg.rps, "rps", 0, "open-loop arrival rate in requests/sec (0 = closed loop)")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request client timeout")
	flag.Uint64Var(&cfg.users, "users", 1000, "distinct user IDs")
	flag.Float64Var(&cfg.zipfS, "zipf-s", 1.3, "Zipf exponent for user popularity (> 1; larger = more skew)")
	flag.IntVar(&cfg.hotspots, "hotspots", 5, "number of spatial hotspots in the location prior")
	flag.Float64Var(&cfg.hotFrac, "hotspot-frac", 0.8, "fraction of reports drawn from a hotspot (rest uniform)")
	flag.Float64Var(&cfg.batchFrac, "batch-frac", 0.2, "fraction of requests sent as /v1/report:batch")
	flag.IntVar(&cfg.batchSize, "batch-size", 16, "points per batch request")
	flag.Float64Var(&cfg.traceFrac, "trace-frac", 0, "fraction of requests sent as /v1/trace continuous-reporting steps: each user follows a persistent random walk, so the server's predictive memo gets realistic dwell patterns (requires a trace-enabled target; with -self also -self-budget)")
	flag.Float64Var(&cfg.chaosFrac, "chaos-frac", 0.05, "fraction of requests abandoned mid-flight (client disconnect chaos)")
	flag.DurationVar(&cfg.chaosAt, "chaos-after", 2*time.Millisecond, "mean time before a chaos request is abandoned")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	flag.StringVar(&cfg.out, "out", "", "write the JSON summary here (benchjson-compatible; empty = stdout only)")
	flag.Int64Var(&cfg.max5xx, "max-5xx", -1, "fail (exit 1) if more than this many 5xx responses (-1 = no gate)")
	flag.DurationVar(&cfg.maxP99, "max-p99", 0, "fail (exit 1) if single-report p99 exceeds this (0 = no gate)")
	flag.BoolVar(&cfg.self, "self", false, "serve an in-process geoind-server on a loopback port instead of targeting -url")
	flag.StringVar(&cfg.selfMech, "self-mech", "pl", "-self mechanism: pl or msm")
	flag.Float64Var(&cfg.selfEps, "self-eps", 0.25, "-self privacy budget per report")
	flag.Float64Var(&cfg.selfBudget, "self-budget", 0, "-self per-user budget per 1h window (0 = enforcement disabled)")
	flag.IntVar(&cfg.selfMaxSolves, "self-max-solves", 0, "-self cold-solve admission bound (0 = unbounded; msm only)")
	flag.Parse()

	os.Exit(run(cfg, os.Stdout))
}

func run(cfg config, out io.Writer) int {
	modes := 0
	for _, on := range []bool{cfg.url != "", cfg.targets != "", cfg.self} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		log.Print("loadgen: exactly one of -url, -targets or -self is required")
		return 2
	}
	if cfg.workers < 1 || cfg.batchSize < 1 {
		log.Print("loadgen: -workers and -batch-size must be >= 1")
		return 2
	}
	if cfg.traceFrac < 0 || cfg.traceFrac > 1 {
		log.Print("loadgen: -trace-frac must be in [0, 1]")
		return 2
	}
	if cfg.traceFrac > 0 && cfg.self && cfg.selfBudget <= 0 {
		log.Print("loadgen: -trace-frac with -self requires -self-budget > 0 (the trace endpoint needs budget sessions)")
		return 2
	}
	if cfg.affinity == "" {
		cfg.affinity = "rr"
	}
	if cfg.affinity != "rr" && cfg.affinity != "user" {
		log.Printf("loadgen: unknown -affinity %q (rr or user)", cfg.affinity)
		return 2
	}
	targets := []string{cfg.url}
	if cfg.targets != "" {
		targets = targets[:0]
		for _, t := range strings.Split(cfg.targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, t)
			}
		}
		if len(targets) == 0 {
			log.Print("loadgen: -targets is empty")
			return 2
		}
	}
	if cfg.self {
		selfURL, shutdown, err := startSelfServer(cfg)
		if err != nil {
			log.Printf("loadgen: start in-process server: %v", err)
			return 2
		}
		targets = []string{selfURL}
		defer shutdown()
	}
	base := targets[0]

	info, err := fetchInfo(base, cfg.timeout)
	if err != nil {
		log.Printf("loadgen: %v", err)
		return 2
	}
	log.Printf("target %s (%d replicas): mechanism=%s eps=%g region side=%g km",
		base, len(targets), info.Mechanism, info.Epsilon, info.RegionSideKm)

	r := newRunner(cfg, targets)
	summary, err := r.drive(info.RegionSideKm)
	if err != nil {
		log.Printf("loadgen: %v", err)
		return 2
	}
	summary.scrapeBudget(base, cfg.timeout)
	if len(targets) > 1 {
		summary.scrapeFleet(targets, cfg.timeout)
	}

	doc := summary.benchDocument()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Printf("loadgen: %v", err)
		return 2
	}
	if cfg.out != "" {
		buf, _ := json.MarshalIndent(doc, "", "  ")
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
			log.Printf("loadgen: %v", err)
			return 2
		}
		log.Printf("wrote %s", cfg.out)
	}
	summary.print()
	return summary.assert(cfg)
}

// infoResponse mirrors the fields of /v1/info the generator needs.
type infoResponse struct {
	Mechanism    string  `json:"mechanism"`
	Epsilon      float64 `json:"epsilon_per_report"`
	RegionSideKm float64 `json:"region_side_km"`
}

func fetchInfo(base string, timeout time.Duration) (*infoResponse, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/v1/info")
	if err != nil {
		return nil, fmt.Errorf("fetch /v1/info: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch /v1/info: status %d", resp.StatusCode)
	}
	var info infoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("decode /v1/info: %w", err)
	}
	if info.RegionSideKm <= 0 {
		return nil, fmt.Errorf("/v1/info reports region side %g", info.RegionSideKm)
	}
	return &info, nil
}

// startSelfServer builds a mechanism + server and serves it on a loopback
// port, so CI smoke runs need no external process.
func startSelfServer(cfg config) (baseURL string, shutdown func(), err error) {
	region := geoind.Square(20)
	var mech server.Reporter
	switch cfg.selfMech {
	case "pl":
		m, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: cfg.selfEps, Seed: uint64(cfg.seed)})
		if err != nil {
			return "", nil, err
		}
		mech = m
	case "msm":
		m, err := geoind.NewMSM(geoind.MSMConfig{
			Eps: cfg.selfEps, Region: region, Granularity: 3,
			Seed: uint64(cfg.seed), Workers: -1, MaxSolves: cfg.selfMaxSolves,
		})
		if err != nil {
			return "", nil, err
		}
		mech = m
	default:
		return "", nil, fmt.Errorf("unknown -self-mech %q (pl or msm)", cfg.selfMech)
	}
	var ledger *server.Ledger
	if cfg.selfBudget > 0 {
		if ledger, err = server.NewLedger(cfg.selfBudget, time.Hour, nil); err != nil {
			return "", nil, err
		}
	}
	srv, err := server.New(mech, ledger, region)
	if err != nil {
		return "", nil, err
	}
	if cfg.traceFrac > 0 {
		// Theta covers the random walk's typical step so dwelling users hit
		// the memo; epsTest at eps/4 keeps the test cheap relative to a
		// fresh report.
		if err := srv.EnableTrace(server.TraceConfig{
			Theta:   2,
			EpsTest: cfg.selfEps / 4,
			Seed:    uint64(cfg.seed),
		}); err != nil {
			return "", nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("loadgen: self server: %v", err)
		}
	}()
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// latencyBounds are the loadgen histogram buckets: log-spaced (x1.25) from
// 50µs to ~60s, fine enough that interpolated p999 is within one bucket
// ratio of the true value.
var latencyBounds = func() []float64 {
	var b []float64
	for v := 50e-6; v < 60; v *= 1.25 {
		b = append(b, v)
	}
	return b
}()

// runner owns the shared, concurrency-safe run state. Latencies go into
// lock-free histograms; status counts into a small mutex-guarded map.
type runner struct {
	cfg     config
	targets []string
	rr      atomic.Uint64 // round-robin cursor across targets
	client  *http.Client

	reportHist *metrics.Histogram
	batchHist  *metrics.Histogram
	traceHist  *metrics.Histogram

	mu     sync.Mutex
	status map[int]int64

	reports, batches, traces atomic.Int64 // completed with an HTTP status
	canceled, transport      atomic.Int64
}

func newRunner(cfg config, targets []string) *runner {
	return &runner{
		cfg:     cfg,
		targets: targets,
		client: &http.Client{
			Timeout: cfg.timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.workers * 2 * len(targets),
				MaxIdleConnsPerHost: cfg.workers * 2,
			},
		},
		reportHist: metrics.NewHistogram(latencyBounds),
		batchHist:  metrics.NewHistogram(latencyBounds),
		traceHist:  metrics.NewHistogram(latencyBounds),
		status:     make(map[int]int64),
	}
}

// target picks the replica a request goes to: round-robin spreads every
// request (cold channels land on arbitrary replicas, the worst case for
// duplicate solves), user affinity models a session-sticky load balancer.
func (r *runner) target(user string) string {
	if len(r.targets) == 1 {
		return r.targets[0]
	}
	if r.cfg.affinity == "user" {
		h := fnv.New64a()
		_, _ = h.Write([]byte(user))
		return r.targets[h.Sum64()%uint64(len(r.targets))]
	}
	return r.targets[r.rr.Add(1)%uint64(len(r.targets))]
}

// drive runs the configured load and returns the summary. Closed loop:
// every worker issues back-to-back. Open loop: a pacer feeds a token
// channel at -rps; workers block on tokens, so arrivals are rate-driven
// but concurrency stays capped at -workers (a partly-open system).
func (r *runner) drive(side float64) (*summary, error) {
	deadline := time.Now().Add(r.cfg.duration)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	var tokens chan struct{}
	if r.cfg.rps > 0 {
		tokens = make(chan struct{}, r.cfg.workers)
		interval := time.Duration(float64(time.Second) / r.cfg.rps)
		if interval <= 0 {
			return nil, fmt.Errorf("rps %g too high to pace", r.cfg.rps)
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // all workers busy: the arrival is shed, not queued
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < r.cfg.workers; i++ {
		w, err := newWorkload(r.cfg.seed+int64(i)*7919, side, r.cfg.users,
			r.cfg.zipfS, r.cfg.hotspots, r.cfg.hotFrac)
		if err != nil {
			cancel()
			wg.Wait()
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-ctx.Done():
						return
					case <-tokens:
					}
				}
				r.one(ctx, w)
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if d := r.cfg.duration; elapsed > d {
		elapsed = d // workers overshoot the deadline by at most one request
	}
	return r.summarize(elapsed), nil
}

// one issues a single request: a batch with probability batch-frac,
// otherwise a single report; with probability chaos-frac the request is
// abandoned after an exponentially distributed delay.
func (r *runner) one(ctx context.Context, w *workload) {
	draw := w.rng.Float64()
	isTrace := draw < r.cfg.traceFrac
	isBatch := !isTrace && draw < r.cfg.traceFrac+r.cfg.batchFrac
	var path string
	var body []byte
	user := w.user()
	if isTrace {
		path = "/v1/trace"
		x, y := w.traceStep(user)
		body = []byte(fmt.Sprintf(`{"user_id":%q,"x":%g,"y":%g}`, user, x, y))
	} else if isBatch {
		path = "/v1/report:batch"
		type rr struct {
			UserID string  `json:"user_id"`
			X      float64 `json:"x"`
			Y      float64 `json:"y"`
		}
		reqs := make([]rr, r.cfg.batchSize)
		for i := range reqs {
			x, y := w.point()
			reqs[i] = rr{UserID: user, X: x, Y: y}
		}
		body, _ = json.Marshal(reqs)
	} else {
		path = "/v1/report"
		x, y := w.point()
		body = []byte(fmt.Sprintf(`{"user_id":%q,"x":%g,"y":%g}`, user, x, y))
	}

	reqCtx := ctx
	if r.cfg.chaosFrac > 0 && w.rng.Float64() < r.cfg.chaosFrac {
		var cancel context.CancelFunc
		delay := time.Duration(w.rng.ExpFloat64() * float64(r.cfg.chaosAt))
		reqCtx, cancel = context.WithTimeout(ctx, delay)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, r.target(user)+path, bytes.NewReader(body))
	if err != nil {
		r.transport.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")

	start := time.Now()
	resp, err := r.client.Do(req)
	lat := time.Since(start).Seconds()
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			r.canceled.Add(1) // chaos disconnect or run deadline: by design
		default:
			r.transport.Add(1)
		}
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	switch {
	case isTrace:
		r.traces.Add(1)
		r.traceHist.Observe(lat)
	case isBatch:
		r.batches.Add(1)
		r.batchHist.Observe(lat)
	default:
		r.reports.Add(1)
		r.reportHist.Observe(lat)
	}
	r.mu.Lock()
	r.status[resp.StatusCode]++
	r.mu.Unlock()
}

// classStats is the per-request-class latency digest.
type classStats struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// summary is the machine-readable outcome of one run. It is embedded in the
// benchjson document under "load", next to the quantile "cases" that
// `benchjson -diff` compares.
type summary struct {
	Mode         string           `json:"mode"`
	DurationSec  float64          `json:"duration_sec"`
	Completed    int64            `json:"completed"`
	Throughput   float64          `json:"throughput_rps"`
	Report       classStats       `json:"report"`
	Batch        classStats       `json:"batch"`
	Trace        classStats       `json:"trace"`
	StatusCounts map[string]int64 `json:"status_counts"`
	Canceled     int64            `json:"canceled"`
	Transport    int64            `json:"transport_errors"`
	Err5xx       int64            `json:"errors_5xx"`
	ErrorRate    float64          `json:"error_rate"`

	// Budget movement scraped from the server's /metrics after the run;
	// RefundRate is refunds/charges (0 when the scrape is unavailable or
	// no ledger is configured).
	MetricsScraped bool    `json:"metrics_scraped"`
	BudgetCharges  float64 `json:"budget_charges"`
	BudgetRefunds  float64 `json:"budget_refunds"`
	RefundRate     float64 `json:"refund_rate"`
	SolveRejected  float64 `json:"solve_rejected"`

	// Trace pipeline counters (0 when the endpoint is disabled):
	// MemoHitRate = memo hits / (memo hits + fresh), the fraction of trace
	// steps served by re-releasing the session's prediction.
	TraceFresh    float64 `json:"trace_fresh"`
	TraceMemoHits float64 `json:"trace_memo_hits"`
	MemoHitRate   float64 `json:"memo_hit_rate"`

	// Fleet is present only with -targets: one scrape per replica plus the
	// fleet-wide duplicate-solve estimate.
	Fleet *fleetSummary `json:"fleet,omitempty"`
}

// replicaScrape is one replica's post-run /metrics digest.
type replicaScrape struct {
	URL string `json:"url"`
	// Solves is the replica's LP-solve count (channel-cache misses).
	Solves float64 `json:"solves"`
	// RemoteHits counts channels this replica fetched from a peer instead
	// of solving; Fallbacks counts remote lookups that gave up and solved
	// locally — each fallback is a potential fleet-duplicate solve.
	RemoteHits float64 `json:"remote_hits"`
	Fallbacks  float64 `json:"fallbacks"`
	Scraped    bool    `json:"scraped"`
}

// fleetSummary aggregates the per-replica scrapes. DuplicateSolveEstimate is
// the sum of remote fallbacks across the fleet: with healthy fabric
// ownership every channel is solved only by its owner, so any solve of a
// non-owned key happened through the fallback path and is the fleet's
// duplicate-solve signal (~0 when the fabric is on and peers are up).
type fleetSummary struct {
	Replicas               []replicaScrape `json:"replicas"`
	TotalSolves            float64         `json:"total_solves"`
	TotalRemoteHits        float64         `json:"total_remote_hits"`
	DuplicateSolveEstimate float64         `json:"duplicate_solve_estimate"`
}

// scrapeFleet reads every replica's /metrics once after the run and digests
// the fleet-wide solve distribution.
func (s *summary) scrapeFleet(targets []string, timeout time.Duration) {
	client := &http.Client{Timeout: timeout}
	fleet := &fleetSummary{}
	for _, t := range targets {
		rs := replicaScrape{URL: t}
		if samples, ok := scrapeMetrics(client, t); ok {
			rs.Scraped = true
			rs.Solves = samples["geoind_channel_cache_misses_total"]
			rs.RemoteHits = samples[`geoind_fabric_tier_hits_total{tier="remote"}`]
			rs.Fallbacks = samples["geoind_fabric_remote_fallbacks_total"]
		}
		fleet.Replicas = append(fleet.Replicas, rs)
		fleet.TotalSolves += rs.Solves
		fleet.TotalRemoteHits += rs.RemoteHits
		fleet.DuplicateSolveEstimate += rs.Fallbacks
	}
	s.Fleet = fleet
}

// scrapeMetrics fetches and validates one replica's /metrics exposition.
func scrapeMetrics(client *http.Client, base string) (map[string]float64, bool) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, false
	}
	samples, problems := metrics.Validate(string(body))
	if len(problems) > 0 {
		log.Printf("loadgen: %s/metrics failed validation: %s", base, problems[0])
		return nil, false
	}
	return samples, true
}

func (r *runner) summarize(elapsed time.Duration) *summary {
	s := &summary{
		Mode:         "closed",
		DurationSec:  elapsed.Seconds(),
		StatusCounts: make(map[string]int64),
		Canceled:     r.canceled.Load(),
		Transport:    r.transport.Load(),
	}
	if r.cfg.rps > 0 {
		s.Mode = "open"
	}
	r.mu.Lock()
	for code, n := range r.status {
		s.StatusCounts[strconv.Itoa(code)] = n
		if code >= 500 {
			s.Err5xx += n
		}
	}
	r.mu.Unlock()
	s.Completed = r.reports.Load() + r.batches.Load() + r.traces.Load()
	if s.DurationSec > 0 {
		s.Throughput = float64(s.Completed) / s.DurationSec
	}
	if s.Completed > 0 {
		s.ErrorRate = float64(s.Err5xx) / float64(s.Completed)
	}
	s.Report = digest(r.reportHist)
	s.Batch = digest(r.batchHist)
	s.Trace = digest(r.traceHist)
	return s
}

func digest(h *metrics.Histogram) classStats {
	return classStats{
		Count:  h.Count(),
		P50Ms:  h.Quantile(0.5) * 1e3,
		P99Ms:  h.Quantile(0.99) * 1e3,
		P999Ms: h.Quantile(0.999) * 1e3,
	}
}

// scrapeBudget reads the server's /metrics once after the run and extracts
// the budget charge/refund totals and the admission-shed count.
func (s *summary) scrapeBudget(base string, timeout time.Duration) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	samples, problems := metrics.Validate(string(body))
	if len(problems) > 0 {
		log.Printf("loadgen: /metrics failed validation: %s", problems[0])
		return
	}
	s.MetricsScraped = true
	s.BudgetCharges = samples["geoind_budget_charges_total"]
	s.BudgetRefunds = samples["geoind_budget_refunds_total"]
	s.SolveRejected = samples["geoind_solve_rejected_total"]
	if s.BudgetCharges > 0 {
		s.RefundRate = s.BudgetRefunds / s.BudgetCharges
	}
	s.TraceFresh = samples["geoind_trace_fresh_total"]
	s.TraceMemoHits = samples["geoind_trace_memo_hits_total"]
	if steps := s.TraceFresh + s.TraceMemoHits; steps > 0 {
		s.MemoHitRate = s.TraceMemoHits / steps
	}
}

// benchCase / benchDocument mirror cmd/benchjson's schema so the committed
// BENCH_load.json baseline diffs with the same tool as every other
// benchmark file; the full summary rides along under "load".
type benchCase struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

type benchDocument struct {
	GoMaxProcs int         `json:"go_max_procs"`
	Cases      []benchCase `json:"cases"`
	Load       *summary    `json:"load"`
}

func (s *summary) benchDocument() *benchDocument {
	doc := &benchDocument{GoMaxProcs: runtime.GOMAXPROCS(0), Load: s}
	add := func(class string, st classStats) {
		if st.Count == 0 {
			return
		}
		for _, q := range []struct {
			name string
			ms   float64
		}{{"p50", st.P50Ms}, {"p99", st.P99Ms}, {"p999", st.P999Ms}} {
			doc.Cases = append(doc.Cases, benchCase{
				Name:       "Loadgen/" + class + "/" + q.name,
				Iterations: st.Count,
				NsPerOp:    q.ms * 1e6,
			})
		}
	}
	add("report", s.Report)
	add("batch", s.Batch)
	add("trace", s.Trace)
	sort.Slice(doc.Cases, func(i, j int) bool { return doc.Cases[i].Name < doc.Cases[j].Name })
	return doc
}

// print logs the human-readable digest.
func (s *summary) print() {
	log.Printf("%s loop: %d completed in %.1fs (%.0f req/s), %d canceled (chaos), %d transport errors",
		s.Mode, s.Completed, s.DurationSec, s.Throughput, s.Canceled, s.Transport)
	log.Printf("report: n=%d p50=%.2fms p99=%.2fms p999=%.2fms", s.Report.Count, s.Report.P50Ms, s.Report.P99Ms, s.Report.P999Ms)
	if s.Batch.Count > 0 {
		log.Printf("batch:  n=%d p50=%.2fms p99=%.2fms p999=%.2fms", s.Batch.Count, s.Batch.P50Ms, s.Batch.P99Ms, s.Batch.P999Ms)
	}
	if s.Trace.Count > 0 {
		log.Printf("trace:  n=%d p50=%.2fms p99=%.2fms p999=%.2fms", s.Trace.Count, s.Trace.P50Ms, s.Trace.P99Ms, s.Trace.P999Ms)
	}
	codes := make([]string, 0, len(s.StatusCounts))
	for c := range s.StatusCounts {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		log.Printf("status %s: %d", c, s.StatusCounts[c])
	}
	if s.MetricsScraped {
		log.Printf("budget: %g charges, %g refunds (refund rate %.3f), %g solves shed",
			s.BudgetCharges, s.BudgetRefunds, s.RefundRate, s.SolveRejected)
		if s.TraceFresh+s.TraceMemoHits > 0 {
			log.Printf("trace pipeline: %g fresh, %g memo hits (hit rate %.3f)",
				s.TraceFresh, s.TraceMemoHits, s.MemoHitRate)
		}
	}
	if s.Fleet != nil {
		for _, rs := range s.Fleet.Replicas {
			if !rs.Scraped {
				log.Printf("fleet %s: scrape failed", rs.URL)
				continue
			}
			log.Printf("fleet %s: %g LP solves, %g remote hits, %g fallbacks",
				rs.URL, rs.Solves, rs.RemoteHits, rs.Fallbacks)
		}
		log.Printf("fleet total: %g LP solves, %g remote hits, duplicate-solve estimate %g",
			s.Fleet.TotalSolves, s.Fleet.TotalRemoteHits, s.Fleet.DuplicateSolveEstimate)
	}
	log.Printf("5xx: %d (error rate %.4f)", s.Err5xx, s.ErrorRate)
}

// assert applies the CI gates; returns the process exit code.
func (s *summary) assert(cfg config) int {
	failed := false
	if cfg.max5xx >= 0 && s.Err5xx > cfg.max5xx {
		log.Printf("FAIL: %d 5xx responses exceeds -max-5xx %d", s.Err5xx, cfg.max5xx)
		failed = true
	}
	if cfg.maxP99 > 0 && s.Report.Count > 0 && s.Report.P99Ms > cfg.maxP99.Seconds()*1e3 {
		log.Printf("FAIL: report p99 %.2fms exceeds -max-p99 %s", s.Report.P99Ms, cfg.maxP99)
		failed = true
	}
	if s.Completed == 0 {
		log.Print("FAIL: no requests completed")
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}
