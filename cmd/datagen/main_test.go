package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geoind/internal/dataset"
)

func smallConfig() dataset.GenConfig {
	return dataset.GenConfig{
		Name: "custom", Side: 20, NumUsers: 20, NumCheckIns: 500, NumPOIs: 50,
		NumClusters: 3, CoreClusters: 1, ClusterSigma: 1, ZipfS: 1, HomeAffinity: 0.5, Seed: 1,
	}
}

func TestRealMainCustomToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := realMain("custom", out, smallConfig()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "user,x_km,y_km") {
		t.Error("missing CSV header")
	}
	if got := strings.Count(s, "\n"); got != 502 { // metadata + header + 500 rows
		t.Errorf("line count %d want 502", got)
	}
	// Round-trips through the dataset reader.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := dataset.ReadCSV(f, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.CheckIns) != 500 || d.Side != 20 {
		t.Errorf("reloaded %d check-ins side %g", len(d.CheckIns), d.Side)
	}
}

func TestRealMainErrors(t *testing.T) {
	if err := realMain("nope", "", smallConfig()); err == nil {
		t.Error("unknown dataset should error")
	}
	bad := smallConfig()
	bad.NumPOIs = 0
	if err := realMain("custom", "", bad); err == nil {
		t.Error("invalid custom config should error")
	}
	if err := realMain("custom", "/nonexistent-dir/x.csv", smallConfig()); err == nil {
		t.Error("unwritable output should error")
	}
}
