// Command datagen emits the synthetic check-in datasets as CSV, either the
// two built-in paper substitutes or a custom configuration.
//
// Examples:
//
//	datagen -dataset gowalla -out gowalla.csv
//	datagen -dataset custom -checkins 50000 -users 1000 -pois 2000 -out my.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"geoind/internal/dataset"
)

func main() {
	name := flag.String("dataset", "gowalla", "dataset: gowalla, yelp or custom")
	out := flag.String("out", "", "output file (default stdout)")
	side := flag.Float64("side", 20, "custom: region side (km)")
	users := flag.Int("users", 1000, "custom: number of users")
	checkins := flag.Int("checkins", 100000, "custom: number of check-ins")
	pois := flag.Int("pois", 5000, "custom: number of POIs")
	clusters := flag.Int("clusters", 30, "custom: number of POI clusters")
	core := flag.Int("core-clusters", 4, "custom: clusters forming the dense core")
	sigma := flag.Float64("sigma", 1.0, "custom: cluster spatial std-dev (km)")
	zipf := flag.Float64("zipf", 1.0, "custom: POI popularity Zipf exponent")
	affinity := flag.Float64("affinity", 0.6, "custom: user home-cluster affinity")
	seed := flag.Uint64("seed", 1, "custom: RNG seed")
	flag.Parse()

	if err := realMain(*name, *out, dataset.GenConfig{
		Name: "custom", Side: *side, NumUsers: *users, NumCheckIns: *checkins,
		NumPOIs: *pois, NumClusters: *clusters, CoreClusters: *core,
		ClusterSigma: *sigma, ZipfS: *zipf, HomeAffinity: *affinity, Seed: *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func realMain(name, out string, custom dataset.GenConfig) error {
	var d *dataset.Dataset
	var err error
	switch name {
	case "gowalla":
		d = dataset.SyntheticGowalla()
	case "yelp":
		d = dataset.SyntheticYelp()
	case "custom":
		d, err = dataset.Generate(custom)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown dataset %q", name)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d check-ins (%d users) of %s\n", len(d.CheckIns), d.NumUsers, d.Name)
	return nil
}
