package main

import (
	"testing"

	"geoind/internal/eval"
)

func TestRunDispatch(t *testing.T) {
	ctx := eval.NewContext()
	ctx.Requests = 100 // keep the fast experiments fast

	// Every known name dispatches and returns a non-empty table. Only the
	// cheap experiments are executed here; the expensive ones are covered
	// by the eval package tests and the benchmarks.
	for _, name := range []string{"ablation", "spanner", "trajectory"} {
		res, err := run(ctx, name, 4, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tab := res.Table()
		if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
	if _, err := run(ctx, "not-an-experiment", 4, false); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunFig3RespectsMaxG(t *testing.T) {
	ctx := eval.NewContext()
	ctx.Requests = 100
	res, err := run(ctx, "fig3", 3, false)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table()
	if len(tab.Rows) != 2 { // g = 2, 3
		t.Errorf("fig3 rows %d want 2", len(tab.Rows))
	}
}
