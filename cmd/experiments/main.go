// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§6) on the synthetic dataset substitutes, plus the two
// extension experiments (privacy audit, budget ablation).
//
// Usage:
//
//	experiments [flags] <experiment>...
//
// where <experiment> is one or more of:
//
//	fig3 fig5 table2 fig6 fig7 fig8 fig9 fig10 fig11 timings audit ablation
//	adaptive spanner adversary trajectory elastic all
//
// Flags:
//
//	-requests N      workload size per measurement (default 3000, as in §6.1)
//	-format F        output format: ascii, markdown or csv (default ascii)
//	-fig3-max-g G    largest OPT granularity for fig3 (default 8; the paper
//	                 sweeps to 11, which takes a few minutes here)
//	-table2-large    include the OPT granularity-16 row of Table 2 (the run
//	                 the paper's Gurobi setup could not finish in 72h; takes
//	                 minutes with the structured solver)
//	-seed N          base RNG seed (default 2019)
//	-workers N       LP block-solve parallelism during mechanism construction
//	                 (default 1; the solver is bit-identical for any worker
//	                 count, so this only changes wall time, never output)
//	-cache-dir D     persist solved OPT/spanner channels as verified snapshots
//	                 under D and reuse them across experiment runs (the
//	                 channels are deterministic, so results never change —
//	                 only the repeated LP solve time disappears)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"geoind/internal/eval"
	"geoind/internal/geo"
)

// tabler is any experiment result that renders as a table.
type tabler interface{ Table() *eval.Table }

func main() {
	requests := flag.Int("requests", 3000, "workload size per measurement")
	format := flag.String("format", "ascii", "output format: ascii, markdown or csv")
	fig3MaxG := flag.Int("fig3-max-g", 8, "largest OPT granularity for fig3")
	table2Large := flag.Bool("table2-large", false, "include the OPT g=16 row of Table 2")
	seed := flag.Uint64("seed", 2019, "base RNG seed")
	workers := flag.Int("workers", 1, "LP block-solve parallelism (output is identical for any value)")
	cacheDir := flag.String("cache-dir", "", "persistent channel snapshot directory reused across runs")
	localRadius := flag.Float64("local-radius", 0, "locally relevant OPT: solve channel LPs only over cells within this radius (km) of the prior-mass core (0 = full LP)")
	localMass := flag.Float64("local-mass", 0, "locally relevant OPT: prior mass allowed outside the relevance core (0 = default 1e-3; requires -local-radius)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <fig3|fig5|table2|fig6|fig7|fig8|fig9|fig10|fig11|timings|audit|ablation|adaptive|spanner|adversary|trajectory|elastic|all>...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ctx := eval.NewContext()
	ctx.Requests = *requests
	ctx.Seed = *seed
	ctx.Workers = *workers
	ctx.CacheDir = *cacheDir
	ctx.LocalRadius = *localRadius
	ctx.LocalMassFloor = *localMass
	defer ctx.SyncCache()

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = []string{"fig3", "fig5", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "timings", "audit", "ablation", "adaptive", "spanner", "adversary", "trajectory", "elastic"}
	}
	for _, name := range names {
		start := time.Now()
		res, err := run(ctx, name, *fig3MaxG, *table2Large)
		if err != nil {
			ctx.SyncCache() // keep already-solved channels for the next run
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		t := res.Table()
		switch *format {
		case "markdown":
			fmt.Println(t.Markdown())
		case "csv":
			fmt.Print(t.CSV())
		default:
			fmt.Println(t.String())
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
	}
}

func run(ctx *eval.Context, name string, fig3MaxG int, table2Large bool) (tabler, error) {
	epsList := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	rhoList := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	switch name {
	case "fig3":
		var gs []int
		for g := 2; g <= fig3MaxG; g++ {
			gs = append(gs, g)
		}
		return ctx.RunFig3(gs)
	case "fig5":
		return ctx.RunFig5([]int{2, 3, 4, 5, 6, 7}, rhoList)
	case "table2":
		maxOpt := 9
		if table2Large {
			maxOpt = 16
		}
		return ctx.RunTable2([]int{4, 9, 16}, maxOpt)
	case "fig6":
		return ctx.RunEpsSweep(geo.Euclidean, epsList, []int{4, 6})
	case "fig7":
		return ctx.RunEpsSweep(geo.SquaredEuclidean, epsList, []int{4, 6})
	case "fig8":
		return ctx.RunGranularitySweep(geo.Euclidean, []int{2, 3, 4, 5, 6}, []float64{0.5, 0.7, 0.9})
	case "fig9":
		return ctx.RunGranularitySweep(geo.SquaredEuclidean, []int{2, 3, 4, 5, 6}, []float64{0.5, 0.7, 0.9})
	case "fig10":
		return ctx.RunRhoSweep(geo.Euclidean, rhoList, []int{2, 4, 6})
	case "fig11":
		return ctx.RunRhoSweep(geo.SquaredEuclidean, rhoList, []int{2, 4, 6})
	case "timings":
		return ctx.RunTimings()
	case "audit":
		return ctx.RunPrivacyAudit(eval.DefaultEps, 3)
	case "ablation":
		return ctx.RunBudgetAblation(eval.DefaultEps, 3)
	case "adaptive":
		return ctx.RunAdaptiveComparison([]float64{0.1, 0.5, 0.9}, 3)
	case "spanner":
		return ctx.RunSpannerAblation(6, eval.DefaultEps, []float64{1.1, 1.5, 2.0})
	case "adversary":
		return ctx.RunAdversary(9, []float64{0.1, 0.5, 0.9})
	case "trajectory":
		return ctx.RunTrajectory(1.0, 500)
	case "elastic":
		return ctx.RunElastic(6, 0.9)
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}
