// Command benchjson converts `go test -bench` output into a stable JSON
// document and diffs two such documents for benchmark regressions.
//
// Convert (reads benchmark output from stdin, writes JSON to stdout):
//
//	go test -run xxx -bench ReportBatch -benchmem . | benchjson > BENCH_batch.json
//
// Diff (warn-only: always exits 0; regressions are reported, not fatal):
//
//	benchjson -diff -threshold 20 BENCH_batch.json new.json
//
// The trailing "-<GOMAXPROCS>" suffix of each benchmark name is stripped so
// baselines recorded on machines with different core counts diff cleanly;
// the procs value is kept once at the top level instead. Cases are sorted by
// name so the JSON is deterministic and diffs are minimal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Case is one benchmark measurement. Custom units emitted with
// testing.B.ReportMetric (anything other than ns/op, B/op, allocs/op and
// MB/s) are preserved under Metrics so domain numbers like a memo-hit rate
// or a budget spend ratio survive into the committed baseline.
type Case struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document: the machine's GOMAXPROCS at record time plus
// the sorted benchmark cases.
type Report struct {
	GoMaxProcs int    `json:"go_max_procs"`
	Cases      []Case `json:"cases"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkReportBatch/msm/w=all/n=256-8   300   14345 ns/op   4160 B/op   2 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func main() {
	diff := flag.Bool("diff", false, "diff two JSON reports: benchjson -diff OLD NEW")
	threshold := flag.Float64("threshold", 20, "regression threshold in percent for -diff")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff OLD.json NEW.json [-threshold PCT]")
			os.Exit(2)
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Cases) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// Parse reads `go test -bench` output and returns the structured report.
// Non-benchmark lines are ignored. When the same case name appears more than
// once (e.g. -count > 1) the last measurement wins.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	byName := map[string]Case{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		c := Case{Name: m[1]}
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil {
				rep.GoMaxProcs = p
			}
		}
		c.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		c.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		c.BytesPerOp = metric(m[5], "B/op")
		c.AllocsPerOp = metric(m[5], "allocs/op")
		c.Metrics = customMetrics(m[5])
		byName[c.Name] = c
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, c := range byName {
		rep.Cases = append(rep.Cases, c)
	}
	// `go test` omits the -N name suffix entirely when GOMAXPROCS is 1.
	if rep.GoMaxProcs == 0 && len(rep.Cases) > 0 {
		rep.GoMaxProcs = 1
	}
	sort.Slice(rep.Cases, func(i, j int) bool { return rep.Cases[i].Name < rep.Cases[j].Name })
	return rep, nil
}

// metric extracts the value preceding a unit token (e.g. "B/op") from the
// tail of a benchmark line; 0 if the unit is absent.
func metric(tail, unit string) float64 {
	fields := strings.Fields(tail)
	for i := 1; i < len(fields); i++ {
		if fields[i] == unit {
			v, _ := strconv.ParseFloat(fields[i-1], 64)
			return v
		}
	}
	return 0
}

// standardUnits are the units already captured in dedicated Case fields (or,
// for MB/s and reports/s, derivable throughput noise not worth baselining).
var standardUnits = map[string]bool{
	"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true, "reports/s": true,
}

// customMetrics collects every remaining "<value> <unit>" pair of the line
// tail — the ReportMetric output; nil when the line has none.
func customMetrics(tail string) map[string]float64 {
	fields := strings.Fields(tail)
	var out map[string]float64
	for i := 1; i < len(fields); i++ {
		if standardUnits[fields[i]] {
			continue
		}
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		if out == nil {
			out = map[string]float64{}
		}
		out[fields[i]] = v
	}
	return out
}

// DiffLine is one case comparison in a diff report.
type DiffLine struct {
	Name     string
	OldNs    float64
	NewNs    float64
	DeltaPct float64
}

// Diff compares two reports on ns/op. It returns every case present in both,
// sorted worst-regression first, plus the names only found in one of them.
func Diff(old, cur *Report) (lines []DiffLine, onlyOld, onlyNew []string) {
	oldBy := map[string]Case{}
	for _, c := range old.Cases {
		oldBy[c.Name] = c
	}
	seen := map[string]bool{}
	for _, c := range cur.Cases {
		o, ok := oldBy[c.Name]
		if !ok {
			onlyNew = append(onlyNew, c.Name)
			continue
		}
		seen[c.Name] = true
		d := DiffLine{Name: c.Name, OldNs: o.NsPerOp, NewNs: c.NsPerOp}
		if o.NsPerOp > 0 {
			d.DeltaPct = (c.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		lines = append(lines, d)
	}
	for _, c := range old.Cases {
		if !seen[c.Name] {
			onlyOld = append(onlyOld, c.Name)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].DeltaPct > lines[j].DeltaPct })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return lines, onlyOld, onlyNew
}

// runDiff loads the two reports, prints the human-readable comparison to w,
// and — when $GITHUB_STEP_SUMMARY is set — appends a markdown table of the
// cases that moved beyond the threshold. Warn-only by design:
// regressions never produce a non-zero exit (benchmarks on shared CI runners
// are too noisy to gate merges on), they just get flagged loudly.
func runDiff(oldPath, newPath string, threshold float64, w io.Writer) error {
	old, err := load(oldPath)
	if err != nil {
		return err
	}
	cur, err := load(newPath)
	if err != nil {
		return err
	}
	lines, onlyOld, onlyNew := Diff(old, cur)

	var b strings.Builder
	regressions := 0
	fmt.Fprintf(&b, "benchmark diff: %s -> %s (threshold %.0f%%)\n", oldPath, newPath, threshold)
	if old.GoMaxProcs != cur.GoMaxProcs {
		fmt.Fprintf(&b, "note: GOMAXPROCS differs (baseline %d, current %d) — deltas are indicative only\n",
			old.GoMaxProcs, cur.GoMaxProcs)
	}
	for _, d := range lines {
		mark := " "
		if d.DeltaPct > threshold {
			mark = "!"
			regressions++
		} else if d.DeltaPct < -threshold {
			mark = "+"
		}
		fmt.Fprintf(&b, "%s %-60s %12.1f -> %12.1f ns/op  %+7.1f%%\n", mark, d.Name, d.OldNs, d.NewNs, d.DeltaPct)
	}
	for _, n := range onlyOld {
		fmt.Fprintf(&b, "- %s: only in baseline\n", n)
	}
	for _, n := range onlyNew {
		fmt.Fprintf(&b, "? %s: not in baseline\n", n)
	}
	if regressions > 0 {
		fmt.Fprintf(&b, "WARNING: %d case(s) regressed more than %.0f%% (warn-only, not failing the build)\n",
			regressions, threshold)
	} else {
		fmt.Fprintf(&b, "no regressions above %.0f%%\n", threshold)
	}
	out := b.String()
	fmt.Fprint(w, out)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprint(f, stepSummary(oldPath, newPath, threshold, lines, onlyOld, onlyNew))
			f.Close()
		}
	}
	return nil
}

// stepSummary renders the diff as GitHub-flavored markdown for
// $GITHUB_STEP_SUMMARY: a headline, then a table of the cases that moved
// beyond the threshold (all cases when nothing did would be noise — a quiet
// diff collapses to one line). Regressions are listed worst-first because
// Diff already sorts that way.
func stepSummary(oldPath, newPath string, threshold float64, lines []DiffLine, onlyOld, onlyNew []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark diff: `%s` vs `%s`\n\n", oldPath, newPath)
	var moved []DiffLine
	for _, d := range lines {
		if d.DeltaPct > threshold || d.DeltaPct < -threshold {
			moved = append(moved, d)
		}
	}
	if len(moved) == 0 && len(onlyOld) == 0 && len(onlyNew) == 0 {
		fmt.Fprintf(&b, "No changes above ±%.0f%% across %d cases.\n\n", threshold, len(lines))
		return b.String()
	}
	if len(moved) > 0 {
		fmt.Fprintf(&b, "| | Benchmark | Baseline ns/op | Current ns/op | Δ |\n")
		fmt.Fprintf(&b, "|---|---|---:|---:|---:|\n")
		for _, d := range moved {
			mark := "🟢"
			if d.DeltaPct > threshold {
				mark = "🔴"
			}
			fmt.Fprintf(&b, "| %s | `%s` | %.1f | %.1f | %+.1f%% |\n",
				mark, d.Name, d.OldNs, d.NewNs, d.DeltaPct)
		}
		b.WriteString("\n")
	}
	for _, n := range onlyOld {
		fmt.Fprintf(&b, "- `%s`: only in baseline\n", n)
	}
	for _, n := range onlyNew {
		fmt.Fprintf(&b, "- `%s`: not in baseline\n", n)
	}
	regressed := 0
	for _, d := range moved {
		if d.DeltaPct > threshold {
			regressed++
		}
	}
	if regressed > 0 {
		fmt.Fprintf(&b, "\n**%d case(s) regressed more than %.0f%%** (warn-only).\n\n", regressed, threshold)
	} else {
		fmt.Fprintf(&b, "\nNo regressions above %.0f%%.\n\n", threshold)
	}
	return b.String()
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
