package main

import (
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: geoind
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkReportBatch/msm/w=all/n=256-8         	     300	     14345 ns/op	  17849454 reports/s	    4160 B/op	       2 allocs/op
BenchmarkReportBatch/msm/w=1/n=1-8             	     300	       331.0 ns/op	   3029202 reports/s	      80 B/op	       2 allocs/op
BenchmarkReportLoop/msm/w=all/n=256-8          	     300	     44447 ns/op	   5760627 reports/s	   16384 B/op	     256 allocs/op
PASS
ok  	geoind	4.401s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoMaxProcs != 8 {
		t.Errorf("GoMaxProcs = %d, want 8", rep.GoMaxProcs)
	}
	if len(rep.Cases) != 3 {
		t.Fatalf("%d cases, want 3", len(rep.Cases))
	}
	// Sorted by name; the -8 procs suffix must be stripped.
	want := []string{
		"BenchmarkReportBatch/msm/w=1/n=1",
		"BenchmarkReportBatch/msm/w=all/n=256",
		"BenchmarkReportLoop/msm/w=all/n=256",
	}
	for i, c := range rep.Cases {
		if c.Name != want[i] {
			t.Errorf("case %d name = %q, want %q", i, c.Name, want[i])
		}
	}
	c := rep.Cases[1] // the msm/w=all/n=256 batch case
	if c.NsPerOp != 14345 || c.Iterations != 300 || c.BytesPerOp != 4160 || c.AllocsPerOp != 2 {
		t.Errorf("unexpected case values: %+v", c)
	}
	if f := rep.Cases[0].NsPerOp; f != 331.0 {
		t.Errorf("fractional ns/op = %v, want 331.0", f)
	}
	if c.Metrics != nil {
		t.Errorf("standard-units case grew custom metrics: %v", c.Metrics)
	}
}

func TestParseKeepsCustomMetrics(t *testing.T) {
	const line = "BenchmarkTracePredictiveSavings-8   3   100 ns/op   0.42 spend_ratio   1.9 ind_adv_km   16 B/op   2 allocs/op\n"
	rep, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != 1 {
		t.Fatalf("%d cases, want 1", len(rep.Cases))
	}
	c := rep.Cases[0]
	if c.BytesPerOp != 16 || c.AllocsPerOp != 2 {
		t.Errorf("standard units misparsed: %+v", c)
	}
	if got := c.Metrics["spend_ratio"]; got != 0.42 {
		t.Errorf("spend_ratio = %v, want 0.42", got)
	}
	if got := c.Metrics["ind_adv_km"]; got != 1.9 {
		t.Errorf("ind_adv_km = %v, want 1.9", got)
	}
	if len(c.Metrics) != 2 {
		t.Errorf("metrics = %v, want exactly the two custom units", c.Metrics)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := Parse(strings.NewReader("hello\nnot a bench line\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != 0 {
		t.Errorf("parsed %d cases from noise", len(rep.Cases))
	}
}

func TestDiff(t *testing.T) {
	old := &Report{Cases: []Case{
		{Name: "A", NsPerOp: 100},
		{Name: "B", NsPerOp: 100},
		{Name: "Gone", NsPerOp: 5},
	}}
	cur := &Report{Cases: []Case{
		{Name: "A", NsPerOp: 150}, // +50% regression
		{Name: "B", NsPerOp: 90},  // -10% improvement
		{Name: "New", NsPerOp: 7},
	}}
	lines, onlyOld, onlyNew := Diff(old, cur)
	if len(lines) != 2 {
		t.Fatalf("%d diff lines, want 2", len(lines))
	}
	// Worst regression first.
	if lines[0].Name != "A" || lines[0].DeltaPct != 50 {
		t.Errorf("lines[0] = %+v, want A +50%%", lines[0])
	}
	if lines[1].Name != "B" || lines[1].DeltaPct != -10 {
		t.Errorf("lines[1] = %+v, want B -10%%", lines[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "Gone" {
		t.Errorf("onlyOld = %v, want [Gone]", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "New" {
		t.Errorf("onlyNew = %v, want [New]", onlyNew)
	}
}

func TestRunDiffWarnOnly(t *testing.T) {
	dir := t.TempDir()
	oldPath := dir + "/old.json"
	newPath := dir + "/new.json"
	writeJSON(t, oldPath, `{"go_max_procs":1,"cases":[{"name":"A","iterations":10,"ns_per_op":100}]}`)
	writeJSON(t, newPath, `{"go_max_procs":1,"cases":[{"name":"A","iterations":10,"ns_per_op":200}]}`)

	var out strings.Builder
	// A 100% regression at threshold 20 must be reported but NOT error.
	if err := runDiff(oldPath, newPath, 20, &out); err != nil {
		t.Fatalf("runDiff errored on a regression: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "WARNING: 1 case(s) regressed") {
		t.Errorf("diff output missing regression warning:\n%s", s)
	}
	if !strings.Contains(s, "+100.0%") {
		t.Errorf("diff output missing delta:\n%s", s)
	}
}

func TestRunDiffWritesStepSummaryTable(t *testing.T) {
	dir := t.TempDir()
	oldPath := dir + "/old.json"
	newPath := dir + "/new.json"
	sumPath := dir + "/summary.md"
	writeJSON(t, oldPath, `{"go_max_procs":1,"cases":[
		{"name":"A","iterations":10,"ns_per_op":100},
		{"name":"B","iterations":10,"ns_per_op":100},
		{"name":"Gone","iterations":10,"ns_per_op":100}]}`)
	writeJSON(t, newPath, `{"go_max_procs":1,"cases":[
		{"name":"A","iterations":10,"ns_per_op":200},
		{"name":"B","iterations":10,"ns_per_op":101}]}`)
	t.Setenv("GITHUB_STEP_SUMMARY", sumPath)

	var out strings.Builder
	if err := runDiff(oldPath, newPath, 20, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	md := string(raw)
	if !strings.Contains(md, "| 🔴 | `A` | 100.0 | 200.0 | +100.0% |") {
		t.Errorf("summary missing regression table row:\n%s", md)
	}
	if strings.Contains(md, "`B`") {
		t.Errorf("summary includes case B, which moved within the threshold:\n%s", md)
	}
	if !strings.Contains(md, "`Gone`: only in baseline") {
		t.Errorf("summary missing removed-case note:\n%s", md)
	}
	if !strings.Contains(md, "**1 case(s) regressed more than 20%**") {
		t.Errorf("summary missing regression headline:\n%s", md)
	}
}

func TestStepSummaryQuietDiffCollapses(t *testing.T) {
	md := stepSummary("a.json", "b.json", 20,
		[]DiffLine{{Name: "A", OldNs: 100, NewNs: 105, DeltaPct: 5}}, nil, nil)
	if !strings.Contains(md, "No changes above ±20% across 1 cases.") {
		t.Errorf("quiet diff should collapse to one line:\n%s", md)
	}
	if strings.Contains(md, "|---|") {
		t.Errorf("quiet diff should not render a table:\n%s", md)
	}
}

func writeJSON(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
