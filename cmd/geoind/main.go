// Command geoind sanitizes locations from the command line: it reads "x y"
// coordinate pairs (planar km) from arguments or stdin, runs them through
// the selected GeoInd mechanism, and prints the privacy-preserving reported
// locations.
//
// Examples:
//
//	geoind -mechanism msm -eps 0.5 -g 4 -dataset gowalla -loc "3.2 11.7"
//	echo "3.2 11.7" | geoind -mechanism pl -eps 0.3
//	geoind -mechanism msm -eps 0.5 -g 4 -dataset yelp -info
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"geoind"
)

func main() {
	mech := flag.String("mechanism", "msm", "mechanism: msm, pl or opt")
	eps := flag.Float64("eps", 0.5, "privacy budget epsilon (1/km)")
	g := flag.Int("g", 4, "grid granularity (fanout per level for msm)")
	rho := flag.Float64("rho", 0.8, "per-level same-cell probability target (msm)")
	side := flag.Float64("side", 20, "region side length in km (ignored with -dataset)")
	ds := flag.String("dataset", "", "prior dataset: gowalla, yelp, or a CSV path")
	seed := flag.Uint64("seed", 1, "RNG seed")
	loc := flag.String("loc", "", `single location to sanitize, as "x y"; otherwise reads stdin`)
	metric := flag.String("metric", "euclidean", "utility metric: euclidean or squared")
	info := flag.Bool("info", false, "print mechanism details (budget split, height) and exit")
	flag.Parse()

	// Ctrl-C cancels an in-flight cold report (the first report may trigger
	// LP solves) instead of leaving the process stuck until kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := realMain(ctx, *mech, *eps, *g, *rho, *side, *ds, *seed, *loc, *metric, *info); err != nil {
		fmt.Fprintln(os.Stderr, "geoind:", err)
		os.Exit(1)
	}
}

func realMain(ctx context.Context, mechName string, eps float64, g int, rho, side float64, dsName string, seed uint64, loc, metricName string, info bool) error {
	var m geoind.Metric
	switch metricName {
	case "euclidean":
		m = geoind.Euclidean
	case "squared":
		m = geoind.SquaredEuclidean
	default:
		return fmt.Errorf("unknown metric %q", metricName)
	}

	region := geoind.Square(side)
	var points []geoind.Point
	switch dsName {
	case "":
	case "gowalla":
		d := geoind.GowallaSynthetic()
		region, points = d.Region(), d.Points()
	case "yelp":
		d := geoind.YelpSynthetic()
		region, points = d.Region(), d.Points()
	default:
		f, err := os.Open(dsName)
		if err != nil {
			return err
		}
		defer f.Close()
		d, err := geoind.ReadDatasetCSV(f, dsName, side)
		if err != nil {
			return err
		}
		region, points = d.Region(), d.Points()
	}

	var mech geoind.Mechanism
	switch mechName {
	case "msm":
		msm, err := geoind.NewMSM(geoind.MSMConfig{
			Eps: eps, Region: region, Granularity: g, Rho: rho,
			Metric: m, PriorPoints: points, Seed: seed,
		})
		if err != nil {
			return err
		}
		if info {
			fmt.Printf("mechanism:        MSM\n")
			fmt.Printf("total budget:     %g\n", msm.Epsilon())
			fmt.Printf("index height:     %d\n", msm.Height())
			fmt.Printf("budget split:     %v\n", msm.BudgetSplit())
			fmt.Printf("leaf granularity: %dx%d\n", msm.LeafGranularity(), msm.LeafGranularity())
			return nil
		}
		mech = msm
	case "pl":
		pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: eps, Seed: seed})
		if err != nil {
			return err
		}
		if info {
			fmt.Printf("mechanism:    PL\ntotal budget: %g\nmean noise:   %g km\n", eps, 2/eps)
			return nil
		}
		mech = pl
	case "opt":
		o, err := geoind.NewOptimal(geoind.OptimalConfig{
			Eps: eps, Region: region, Granularity: g,
			Metric: m, PriorPoints: points, Seed: seed,
		})
		if err != nil {
			return err
		}
		if info {
			fmt.Printf("mechanism:     OPT\ntotal budget:  %g\nexpected loss: %g %s\ngeoind excess: %g\n",
				eps, o.ExpectedLoss(), m.Unit(), o.VerifyGeoInd())
			return nil
		}
		mech = o
	default:
		return fmt.Errorf("unknown mechanism %q", mechName)
	}

	report := func(line string) error {
		var x geoind.Point
		if _, err := fmt.Sscanf(strings.TrimSpace(line), "%f %f", &x.X, &x.Y); err != nil {
			return fmt.Errorf("parse %q: want \"x y\": %w", line, err)
		}
		var z geoind.Point
		var err error
		if mc, ok := mech.(geoind.MechanismCtx); ok {
			z, err = mc.ReportCtx(ctx, x)
		} else {
			z, err = mech.Report(x)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%.6f %.6f\n", z.X, z.Y)
		return nil
	}

	if loc != "" {
		return report(loc)
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		if err := report(sc.Text()); err != nil {
			return err
		}
	}
	return sc.Err()
}
