package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestRealMainErrors(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"unknown mechanism", func() error {
			return realMain(context.Background(), "nope", 0.5, 4, 0.8, 20, "", 1, "1 1", "euclidean", false)
		}},
		{"unknown metric", func() error {
			return realMain(context.Background(), "pl", 0.5, 4, 0.8, 20, "", 1, "1 1", "manhattan", false)
		}},
		{"missing csv", func() error {
			return realMain(context.Background(), "pl", 0.5, 4, 0.8, 20, "/nonexistent/file.csv", 1, "1 1", "euclidean", false)
		}},
		{"bad location", func() error {
			return realMain(context.Background(), "pl", 0.5, 4, 0.8, 20, "", 1, "not-a-point", "euclidean", false)
		}},
		{"bad eps", func() error {
			return realMain(context.Background(), "pl", -1, 4, 0.8, 20, "", 1, "1 1", "euclidean", false)
		}},
	}
	for _, c := range cases {
		if err := c.run(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRealMainHappyPaths(t *testing.T) {
	// PL single location.
	if err := realMain(context.Background(), "pl", 0.5, 4, 0.8, 20, "", 1, "3.2 11.7", "euclidean", false); err != nil {
		t.Errorf("pl report: %v", err)
	}
	// PL info.
	if err := realMain(context.Background(), "pl", 0.5, 4, 0.8, 20, "", 1, "", "euclidean", true); err != nil {
		t.Errorf("pl info: %v", err)
	}
	// OPT info with uniform prior on a small grid.
	if err := realMain(context.Background(), "opt", 0.5, 3, 0.8, 20, "", 1, "", "squared", true); err != nil {
		t.Errorf("opt info: %v", err)
	}
	// MSM info and report against a tiny CSV prior.
	dir := t.TempDir()
	csv := filepath.Join(dir, "tiny.csv")
	content := "# dataset=tiny side_km=20\nuser,x_km,y_km\n"
	for i := 0; i < 50; i++ {
		content += "1,5.0,5.0\n2,15.0,15.0\n"
	}
	if err := os.WriteFile(csv, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := realMain(context.Background(), "msm", 0.5, 3, 0.8, 20, csv, 1, "", "euclidean", true); err != nil {
		t.Errorf("msm info: %v", err)
	}
	if err := realMain(context.Background(), "msm", 0.5, 3, 0.8, 20, csv, 1, "5 5", "euclidean", false); err != nil {
		t.Errorf("msm report: %v", err)
	}
}
