package geoind_test

// Batch-path benchmarks. Each BenchmarkReportBatch op is ONE batch of n
// points through ReportBatch; each BenchmarkReportLoop op is the same n
// points through n sequential Report calls on an identically configured
// mechanism — the baseline the batch path amortizes. Compare ns/op at equal
// mechanism/n/w to read the batching speedup directly; ns/op divided by n is
// the per-report cost. w=1 is the sequential shared-RNG mode, w=all uses the
// full worker pool (per-query PCG streams + fan-out).

import (
	"fmt"
	"testing"

	"geoind"
)

// batchSizes are the paper-style batch sweep points.
var batchSizes = []int{1, 16, 256}

// batchWorkerModes pairs the display name with the Workers config value.
var batchWorkerModes = []struct {
	name    string
	workers int
}{
	{"w=1", 1},
	{"w=all", -1},
}

// benchBatchMechanism builds the warm mechanism under test for one
// (mechanism, workers) cell.
func benchBatchMechanism(b *testing.B, mech string, workers int) geoind.BatchMechanism {
	b.Helper()
	ds := geoind.GowallaSynthetic()
	switch mech {
	case "msm":
		return warmMSM(b, workers)
	case "adaptive":
		m, err := geoind.NewAdaptiveMSM(geoind.AdaptiveMSMConfig{
			Eps: 0.5, Region: ds.Region(), Fanout: 3,
			PriorPoints: ds.Points(), Seed: 1, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Precompute(); err != nil {
			b.Fatal(err)
		}
		return m
	case "opt":
		m, err := geoind.NewOptimal(geoind.OptimalConfig{
			Eps: 0.5, Region: ds.Region(), Granularity: 8,
			PriorPoints: ds.Points(), Seed: 1, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		return m
	case "pl":
		m, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.5, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return m
	default:
		b.Fatalf("unknown mechanism %q", mech)
		return nil
	}
}

// benchMechs lists the mechanisms × worker modes in the sweep. PL has no
// Workers knob, so only the w=1 cell exists for it.
func benchMechs() []struct {
	mech, wname string
	workers     int
} {
	var out []struct {
		mech, wname string
		workers     int
	}
	for _, mech := range []string{"msm", "adaptive", "opt", "pl"} {
		for _, wm := range batchWorkerModes {
			if mech == "pl" && wm.name != "w=1" {
				continue
			}
			out = append(out, struct {
				mech, wname string
				workers     int
			}{mech, wm.name, wm.workers})
		}
	}
	return out
}

// BenchmarkReportBatch measures one ReportBatch call per op across
// mechanisms × batch sizes {1,16,256} × workers {1, all}.
func BenchmarkReportBatch(b *testing.B) {
	ds := geoind.GowallaSynthetic()
	for _, cell := range benchMechs() {
		b.Run(fmt.Sprintf("%s/%s", cell.mech, cell.wname), func(b *testing.B) {
			m := benchBatchMechanism(b, cell.mech, cell.workers)
			for _, n := range batchSizes {
				pts := ds.SampleRequests(n, 1)
				b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := m.ReportBatch(pts); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
				})
			}
		})
	}
}

// BenchmarkReportLoop is the sequential baseline: n Report calls per op on
// the same mechanism configurations.
func BenchmarkReportLoop(b *testing.B) {
	ds := geoind.GowallaSynthetic()
	for _, cell := range benchMechs() {
		b.Run(fmt.Sprintf("%s/%s", cell.mech, cell.wname), func(b *testing.B) {
			m := benchBatchMechanism(b, cell.mech, cell.workers)
			for _, n := range batchSizes {
				pts := ds.SampleRequests(n, 1)
				b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for _, x := range pts {
							if _, err := m.Report(x); err != nil {
								b.Fatal(err)
							}
						}
					}
					b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
				})
			}
		})
	}
}
