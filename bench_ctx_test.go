package geoind_test

// Cancellation-plumbing overhead benchmarks. The tentpole claim of the
// context refactor is that the warm Report hot path — resident channel,
// pure sampling, no locks — pays (almost) nothing for cancelability: every
// polling site short-circuits on ctx.Done() == nil, so a Background context
// never reaches a select, and a cancelable context costs one non-blocking
// Err() check per descent step. `make bench-ctx` records the three variants
// side by side in BENCH_ctx.json; Report_legacy vs ReportCtx_cancelable is
// the plumbing cost, expected under 2%.

import (
	"context"
	"testing"

	"geoind"
)

func warmCtxMSM(b *testing.B) (*geoind.MSM, []geoind.Point) {
	b.Helper()
	ds := geoind.GowallaSynthetic()
	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: 0.5, Region: ds.Region(), Granularity: 4,
		PriorPoints: ds.Points(), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Precompute(); err != nil {
		b.Fatal(err)
	}
	return m, ds.SampleRequests(4096, 1)
}

// BenchmarkCtxOverheadReport measures the warm single-report hot path under
// the three calling conventions.
func BenchmarkCtxOverheadReport(b *testing.B) {
	b.Run("Report_legacy", func(b *testing.B) {
		m, reqs := warmCtxMSM(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Report(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("ReportCtx_background", func(b *testing.B) {
		m, reqs := warmCtxMSM(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.ReportCtx(ctx, reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("ReportCtx_cancelable", func(b *testing.B) {
		m, reqs := warmCtxMSM(b)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.ReportCtx(ctx, reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCtxOverheadBatch measures the pooled warm batch path with and
// without a cancelable context.
func BenchmarkCtxOverheadBatch(b *testing.B) {
	const batch = 256
	b.Run("ReportBatch_legacy", func(b *testing.B) {
		m, reqs := warmCtxMSM(b)
		pts := reqs[:batch]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.ReportBatch(pts); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("ReportBatchCtx_cancelable", func(b *testing.B) {
		m, reqs := warmCtxMSM(b)
		pts := reqs[:batch]
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.ReportBatchCtx(ctx, pts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
