package geoind

import (
	"io"
	"math/rand/v2"

	"geoind/internal/dataset"
)

// CheckIn is one user location report in a dataset.
type CheckIn struct {
	// User is a dense user identifier.
	User int
	// Loc is the check-in location in planar kilometre coordinates.
	Loc Point
}

// Dataset is a collection of check-ins over a square planar region, used to
// build adversarial priors and query workloads.
type Dataset struct {
	d *dataset.Dataset
}

// GowallaSynthetic returns the deterministic substitute for the paper's
// Gowalla/Austin dataset (265,571 check-ins, 12,155 users, 20x20 km^2).
func GowallaSynthetic() *Dataset { return &Dataset{d: dataset.SyntheticGowalla()} }

// YelpSynthetic returns the deterministic substitute for the paper's
// Yelp/Las Vegas dataset (81,201 check-ins, 7,581 users, 20x20 km^2).
func YelpSynthetic() *Dataset { return &Dataset{d: dataset.SyntheticYelp()} }

// ReadDatasetCSV loads check-ins in "user,x_km,y_km" format. side may be 0
// when the file carries the metadata header written by WriteCSV.
func ReadDatasetCSV(r io.Reader, name string, side float64) (*Dataset, error) {
	d, err := dataset.ReadCSV(r, name, side)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// Name returns the dataset identifier.
func (ds *Dataset) Name() string { return ds.d.Name }

// Region returns the planar extent of the dataset.
func (ds *Dataset) Region() Rect { return ds.d.Region() }

// NumUsers returns the number of distinct users.
func (ds *Dataset) NumUsers() int { return ds.d.NumUsers }

// Len returns the number of check-ins.
func (ds *Dataset) Len() int { return len(ds.d.CheckIns) }

// CheckIn returns record i.
func (ds *Dataset) CheckIn(i int) CheckIn {
	c := ds.d.CheckIns[i]
	return CheckIn{User: c.User, Loc: c.Loc}
}

// Points returns all check-in locations.
func (ds *Dataset) Points() []Point { return ds.d.Points() }

// SampleRequests draws n check-in locations uniformly at random with the
// given seed — the paper's query workload.
func (ds *Dataset) SampleRequests(n int, seed uint64) []Point {
	return ds.d.SampleRequests(n, rand.New(rand.NewPCG(seed, 0x5eed)))
}

// WriteCSV serializes the dataset with a metadata header.
func (ds *Dataset) WriteCSV(w io.Writer) error { return ds.d.WriteCSV(w) }

// UtilityStats summarizes per-request utility loss.
type UtilityStats struct {
	// N is the number of requests evaluated.
	N int
	// Mean is the average loss in the metric's unit.
	Mean float64
	// Max is the worst observed loss.
	Max float64
}

// EvaluateUtility runs every request through the mechanism and measures the
// utility loss between true and reported locations under the metric.
func EvaluateUtility(m Mechanism, requests []Point, metric Metric) (UtilityStats, error) {
	var st UtilityStats
	for _, x := range requests {
		z, err := m.Report(x)
		if err != nil {
			return st, err
		}
		loss := metric.Loss(x, z)
		st.N++
		st.Mean += loss
		if loss > st.Max {
			st.Max = loss
		}
	}
	if st.N > 0 {
		st.Mean /= float64(st.N)
	}
	return st, nil
}
