package geoind_test

// Batch-path contract tests. The contract (see BatchMechanism): at
// Workers <= 1 a batch is bit-identical to calling Report in a loop on an
// identically seeded mechanism; at Workers > 1 the output is deterministic in
// input (arrival) order — independent of the worker count, and equal to a
// sequential Report loop in the same order.

import (
	"testing"
	"time"

	"geoind"
)

// batchTestPoints samples a deterministic workload over the synthetic
// Gowalla region.
func batchTestPoints(n int) []geoind.Point {
	ds := geoind.GowallaSynthetic()
	return ds.SampleRequests(n, 7)
}

// mkMSM builds a small MSM with the given worker count (fixed seed).
func mkMSM(t testing.TB, workers int) *geoind.MSM {
	t.Helper()
	ds := geoind.GowallaSynthetic()
	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: 0.5, Region: ds.Region(), Granularity: 3, MaxHeight: 2,
		PriorPoints: ds.Points(), Seed: 42, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mkAdaptive builds a small adaptive MSM with the given worker count.
func mkAdaptive(t testing.TB, workers int) *geoind.AdaptiveMSM {
	t.Helper()
	ds := geoind.GowallaSynthetic()
	m, err := geoind.NewAdaptiveMSM(geoind.AdaptiveMSMConfig{
		Eps: 0.5, Region: ds.Region(), Fanout: 3, Height: 2,
		PriorPoints: ds.Points(), Seed: 42, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// reportLoop calls Report once per point, in order.
func reportLoop(t *testing.T, m geoind.Mechanism, pts []geoind.Point) []geoind.Point {
	t.Helper()
	out := make([]geoind.Point, len(pts))
	for i, x := range pts {
		z, err := m.Report(x)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = z
	}
	return out
}

func assertSamePoints(t *testing.T, name string, got, want []geoind.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: point %d diverged: batch %v vs loop %v", name, i, got[i], want[i])
		}
	}
}

// TestReportBatchBitIdenticalSequential verifies that at Workers=1 every
// mechanism's ReportBatch is bit-identical to a Report loop on an identically
// seeded twin.
func TestReportBatchBitIdenticalSequential(t *testing.T) {
	ds := geoind.GowallaSynthetic()
	pts := batchTestPoints(64)

	mechs := []struct {
		name string
		mk   func() geoind.BatchMechanism
	}{
		{"msm", func() geoind.BatchMechanism { return mkMSM(t, 1) }},
		{"adaptive", func() geoind.BatchMechanism { return mkAdaptive(t, 1) }},
		{"pl", func() geoind.BatchMechanism {
			m, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.5, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"pl+remap", func() geoind.BatchMechanism {
			m, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{
				Eps: 0.5, Seed: 42, Remap: true, Region: ds.Region(), Granularity: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"opt", func() geoind.BatchMechanism {
			m, err := geoind.NewOptimal(geoind.OptimalConfig{
				Eps: 0.5, Region: ds.Region(), Granularity: 4,
				PriorPoints: ds.Points(), Seed: 42, Workers: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
	}
	for _, tc := range mechs {
		t.Run(tc.name, func(t *testing.T) {
			loop := reportLoop(t, tc.mk(), pts)
			batch, err := tc.mk().ReportBatch(pts)
			if err != nil {
				t.Fatal(err)
			}
			assertSamePoints(t, tc.name, batch, loop)
		})
	}
}

// TestReportBatchOrderDeterministicParallel verifies the Workers>1 contract:
// the batch output depends only on seed and input order, not on the worker
// count — and matches a sequential Report loop in the same arrival order,
// because the batch reserves the same per-query stream indices the loop
// would consume.
func TestReportBatchOrderDeterministicParallel(t *testing.T) {
	pts := batchTestPoints(128)

	// Workers values are pinned above 1 rather than using -1 (all CPUs): on
	// a single-core host -1 resolves to 1, which is the sequential shared-RNG
	// mode — a different (equally deterministic) output stream by design.
	t.Run("msm", func(t *testing.T) {
		b2, err := mkMSM(t, 2).ReportBatch(pts)
		if err != nil {
			t.Fatal(err)
		}
		b8, err := mkMSM(t, 8).ReportBatch(pts)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePoints(t, "workers 2 vs 8", b8, b2)
		loop := reportLoop(t, mkMSM(t, 2), pts)
		assertSamePoints(t, "batch vs arrival-order loop", b2, loop)
	})

	t.Run("adaptive", func(t *testing.T) {
		b2, err := mkAdaptive(t, 2).ReportBatch(pts)
		if err != nil {
			t.Fatal(err)
		}
		b8, err := mkAdaptive(t, 8).ReportBatch(pts)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePoints(t, "workers 2 vs 8", b8, b2)
		loop := reportLoop(t, mkAdaptive(t, 2), pts)
		assertSamePoints(t, "batch vs arrival-order loop", b2, loop)
	})

	t.Run("opt", func(t *testing.T) {
		ds := geoind.GowallaSynthetic()
		mk := func(workers int) *geoind.Optimal {
			m, err := geoind.NewOptimal(geoind.OptimalConfig{
				Eps: 0.5, Region: ds.Region(), Granularity: 4,
				PriorPoints: ds.Points(), Seed: 42, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		b2, err := mk(2).ReportBatch(pts)
		if err != nil {
			t.Fatal(err)
		}
		b8, err := mk(8).ReportBatch(pts)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePoints(t, "workers 2 vs 8", b8, b2)
	})
}

// TestReportBatchEdgeCases covers the empty batch and the generic helper's
// fallback for mechanisms without a pooled path.
func TestReportBatchEdgeCases(t *testing.T) {
	m := mkMSM(t, -1)
	out, err := m.ReportBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("empty batch returned %d results", len(out))
	}

	// The package-level helper routes BatchMechanisms to the pooled path and
	// loops otherwise; both must agree on count and region membership.
	ds := geoind.GowallaSynthetic()
	pts := batchTestPoints(16)
	zs, err := geoind.ReportBatch(m, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(zs) != len(pts) {
		t.Fatalf("helper returned %d results, want %d", len(zs), len(pts))
	}
	for i, z := range zs {
		if !ds.Region().ContainsClosed(z) {
			t.Errorf("result %d (%v) outside region", i, z)
		}
	}
}

// TestBudgetedReportBatchAllOrNothing verifies the client-side per-user
// batch: the whole batch is charged atomically, and a rejected batch leaves
// the ledger unchanged.
func TestBudgetedReportBatchAllOrNothing(t *testing.T) {
	m, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := geoind.NewBudgeted(m, 2.0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pts := batchTestPoints(3)

	// Cost 1.5 fits in 2.0.
	zs, err := b.ReportBatch("alice", pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(zs) != 3 {
		t.Fatalf("%d results, want 3", len(zs))
	}
	if r := b.Remaining("alice"); r != 0.5 {
		t.Errorf("remaining %g want 0.5", r)
	}

	// Second batch would cost another 1.5 > 0.5: rejected, ledger unchanged.
	if _, err := b.ReportBatch("alice", pts); err != geoind.ErrBudgetExhausted {
		t.Fatalf("got %v want ErrBudgetExhausted", err)
	}
	if r := b.Remaining("alice"); r != 0.5 {
		t.Errorf("rejected batch changed ledger: remaining %g want 0.5", r)
	}

	// Empty batch is free.
	if _, err := b.ReportBatch("alice", nil); err != nil {
		t.Fatal(err)
	}
	if r := b.Remaining("alice"); r != 0.5 {
		t.Errorf("empty batch charged ledger: remaining %g want 0.5", r)
	}
}
