package geoind_test

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geoind"
	"geoind/internal/server"
)

// fleet is an in-process 2..n-replica channel fabric: each replica is a real
// MSM joined by -peers-equivalent config, served over a real TCP listener so
// remote snapshot fetches cross an actual HTTP boundary.
type fleet struct {
	msms    []*geoind.MSM
	urls    []string
	servers []*http.Server
}

func startFleet(tb testing.TB, n int, eps float64) *fleet {
	tb.Helper()
	f := &fleet{}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		lns[i] = ln
		f.urls = append(f.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		m, err := geoind.NewMSM(geoind.MSMConfig{
			Eps: eps, Region: geoind.Square(20), Granularity: 3, Seed: 7,
			Fabric: &geoind.FabricConfig{
				Peers: f.urls, Self: f.urls[i],
				HedgeDelay:   10 * time.Millisecond,
				FetchTimeout: 2 * time.Second,
				FetchRetries: 2,
				FetchBackoff: 10 * time.Millisecond,
			},
		})
		if err != nil {
			tb.Fatal(err)
		}
		srv, err := server.New(m, nil, geoind.Square(20))
		if err != nil {
			tb.Fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(lns[i]) //nolint:errcheck // closed via fleet.stop
		f.msms = append(f.msms, m)
		f.servers = append(f.servers, hs)
	}
	tb.Cleanup(f.stop)
	return f
}

func (f *fleet) stop() {
	for _, hs := range f.servers {
		hs.Close()
	}
}

// sweep reports a grid of points covering the whole region through one
// replica, failing the test on any query error.
func sweep(tb testing.TB, m *geoind.MSM, step float64) {
	tb.Helper()
	for x := 0.3; x < 20; x += step {
		for y := 0.3; y < 20; y += step {
			if _, err := m.Report(geoind.Point{X: x, Y: y}); err != nil {
				tb.Fatalf("report (%g, %g): %v", x, y, err)
			}
		}
	}
}

// uniqueChannelCount precomputes an isolated MSM with the same mechanism
// configuration and returns its LP-solve count — the number of distinct
// channels the configuration needs.
func uniqueChannelCount(tb testing.TB, eps float64) int64 {
	tb.Helper()
	ref, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: eps, Region: geoind.Square(20), Granularity: 3, Seed: 7,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := ref.Precompute(); err != nil {
		tb.Fatal(err)
	}
	_, misses, _ := ref.CacheStats()
	return misses
}

// TestFleetExactlyOnceSolves: a 2-replica fabric fleet precomputes and serves
// cold traffic with each unique channel LP-solved exactly once fleet-wide,
// replicas pulling non-owned channels from their owner over HTTP.
func TestFleetExactlyOnceSolves(t *testing.T) {
	const eps = 2.4 // height 3: 91 unique channels
	want := uniqueChannelCount(t, eps)
	f := startFleet(t, 2, eps)

	for i, m := range f.msms {
		if err := m.Precompute(); err != nil {
			t.Fatalf("replica %d precompute: %v", i, err)
		}
	}
	// Cold traffic across the full domain on both replicas: every channel on
	// every descent path is demanded at both, so each replica ends up with
	// the full set — owned ones solved, the rest fetched.
	for _, m := range f.msms {
		sweep(t, m, 0.7)
	}

	var fleetSolves, remoteHits int64
	for i, m := range f.msms {
		_, misses, _ := m.CacheStats()
		if misses == 0 {
			t.Errorf("replica %d solved nothing; ownership is degenerate", i)
		}
		fleetSolves += misses
		st, ok := m.FabricStats()
		if !ok {
			t.Fatalf("replica %d reports no fabric", i)
		}
		for _, tier := range st.Tiers {
			if tier.Name == "remote" {
				remoteHits += tier.Hits
			}
		}
		if st.Remote != nil && st.Remote.Fallbacks != 0 {
			t.Errorf("replica %d fell back to %d local solves with a healthy fleet", i, st.Remote.Fallbacks)
		}
	}
	if fleetSolves != want {
		t.Errorf("fleet solved %d channels, want exactly %d", fleetSolves, want)
	}
	if remoteHits == 0 {
		t.Error("no remote-tier hits: replicas never fetched from each other")
	}
}

// TestFleetOwnerLossFallback: when the owner of part of the key space
// disappears mid-flight, the survivor answers every query by degrading to
// local solves — availability costs extra solves, never errors.
func TestFleetOwnerLossFallback(t *testing.T) {
	const eps = 2.4
	f := startFleet(t, 2, eps)
	for i, m := range f.msms {
		if err := m.Precompute(); err != nil {
			t.Fatalf("replica %d precompute: %v", i, err)
		}
	}
	_, before, _ := f.msms[0].CacheStats()

	// Kill replica 1's HTTP face; its MSM object stays alive but replica 0
	// can no longer reach it.
	f.servers[1].Close()

	sweep(t, f.msms[0], 0.7)

	_, after, _ := f.msms[0].CacheStats()
	if after <= before {
		t.Errorf("survivor solves went %d -> %d; expected local re-solves of the dead owner's channels", before, after)
	}
	st, ok := f.msms[0].FabricStats()
	if !ok || st.Remote == nil {
		t.Fatal("survivor reports no remote fabric stats")
	}
	if st.Remote.Fallbacks == 0 {
		t.Error("no fallbacks recorded despite the dead owner")
	}
}

// TestFleetFlappingPeerSingleBudgetCharge: a flapping remote peer (errors,
// garbage, truncated frames) costs retries and fallback solves — but each
// report still charges the privacy-budget ledger exactly once, and every
// request succeeds.
func TestFleetFlappingPeerSingleBudgetCharge(t *testing.T) {
	var calls atomic.Int64
	flap := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) % 3 {
		case 0:
			http.Error(w, "transient", http.StatusInternalServerError)
		case 1:
			w.Write([]byte("GICH garbage that is not a snapshot frame"))
		default:
			w.Write([]byte{0x47, 0x49}) // truncated
		}
	}))
	defer flap.Close()

	selfLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer selfLn.Close()
	self := "http://" + selfLn.Addr().String()

	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: 0.8, Region: geoind.Square(20), Granularity: 3, Seed: 7,
		Fabric: &geoind.FabricConfig{
			Peers: []string{self, flap.URL}, Self: self,
			HedgeDelay:   5 * time.Millisecond,
			FetchTimeout: time.Second,
			FetchRetries: 1,
			FetchBackoff: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const limit = 100.0
	ledger, err := server.NewLedger(limit, time.Hour, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(m, ledger, geoind.Square(20))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const reports = 20
	for i := 0; i < reports; i++ {
		x, y := float64(i)+0.5, float64(reports-i)-0.5
		body := fmt.Sprintf(`{"user_id":"alice","x":%g,"y":%g}`, x, y)
		resp, err := http.Post(ts.URL+"/v1/report", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	want := limit - reports*m.Epsilon()
	if got := ledger.Remaining("alice"); math.Abs(got-want) > 1e-9 {
		t.Errorf("remaining budget %g, want %g: flapping remote changed the charge", got, want)
	}
	st, ok := m.FabricStats()
	if !ok || st.Remote == nil {
		t.Fatal("no remote fabric stats")
	}
	if st.Remote.Fallbacks == 0 && st.Remote.Retries == 0 {
		t.Error("flapping peer was never actually exercised")
	}
	if calls.Load() == 0 {
		t.Error("flapping peer received no requests")
	}
}
