package geoind_test

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geoind"
)

func persistTestConfig(cacheDir string) geoind.MSMConfig {
	var pts []geoind.Point
	for i := 0; i < 40; i++ {
		pts = append(pts, geoind.Point{
			X: float64(i%8) * 2.3,
			Y: float64(i%5) * 3.1,
		})
	}
	return geoind.MSMConfig{
		Eps:         0.5,
		Region:      geoind.Square(20),
		Granularity: 3,
		PriorPoints: pts,
		Seed:        42,
		CacheDir:    cacheDir,
	}
}

func reportSequence(t *testing.T, m *geoind.MSM, n int) []geoind.Point {
	t.Helper()
	var out []geoind.Point
	for i := 0; i < n; i++ {
		x := geoind.Point{X: float64(i%7) * 2.9, Y: float64(i%4) * 4.7}
		z, err := m.Report(x)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, z)
	}
	return out
}

// TestWarmRestartZeroSolves is the acceptance criterion of the persistence
// layer: a restarted process pointed at a populated cache directory
// precomputes every channel without performing a single LP solve, and its
// report stream is bit-identical to the first process's.
func TestWarmRestartZeroSolves(t *testing.T) {
	dir := t.TempDir()

	m1, err := geoind.NewMSM(persistTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Precompute(); err != nil {
		t.Fatal(err)
	}
	m1.FlushCache()
	_, solves1 := m1.Stats()
	if solves1 == 0 {
		t.Fatal("cold start performed no solves")
	}
	st1 := m1.StoreStats()
	if st1.BackingWrites != int64(solves1) {
		t.Fatalf("persisted %d of %d solved channels", st1.BackingWrites, solves1)
	}
	seq1 := reportSequence(t, m1, 200)

	// Second process: same config, same directory.
	m2, err := geoind.NewMSM(persistTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Precompute(); err != nil {
		t.Fatal(err)
	}
	if _, solves2 := m2.Stats(); solves2 != 0 {
		t.Fatalf("warm restart performed %d LP solves, want 0", solves2)
	}
	st2 := m2.StoreStats()
	if st2.Misses != 0 {
		t.Fatalf("warm restart store misses = %d, want 0", st2.Misses)
	}
	if st2.BackingHits != int64(solves1) {
		t.Fatalf("warm restart loaded %d snapshots, want %d", st2.BackingHits, solves1)
	}

	// Bit-identity: the same seed must produce the same report stream.
	seq2 := reportSequence(t, m2, 200)
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("report %d: cold %v, warm %v", i, seq1[i], seq2[i])
		}
	}
}

// TestWarmRestartSpannerVariant checks that spanner-reduced channels persist
// under their own key variant: warm-restarting a spanner mechanism loads
// spanner snapshots, and an exact mechanism sharing the directory never sees
// them.
func TestWarmRestartSpannerVariant(t *testing.T) {
	dir := t.TempDir()

	cfgSpan := persistTestConfig(dir)
	cfgSpan.SpannerStretch = 1.5
	m1, err := geoind.NewMSM(cfgSpan)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Precompute(); err != nil {
		t.Fatal(err)
	}
	m1.FlushCache()
	_, solvesSpan := m1.Stats()
	if solvesSpan == 0 {
		t.Fatal("spanner cold start performed no solves")
	}

	// Warm spanner restart: zero solves.
	m2, err := geoind.NewMSM(cfgSpan)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Precompute(); err != nil {
		t.Fatal(err)
	}
	if _, s := m2.Stats(); s != 0 {
		t.Fatalf("warm spanner restart performed %d solves, want 0", s)
	}

	// An exact mechanism over the same directory must NOT reuse the
	// spanner snapshots: its keys differ in the variant field.
	mExact, err := geoind.NewMSM(persistTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := mExact.Precompute(); err != nil {
		t.Fatal(err)
	}
	if _, s := mExact.Stats(); s == 0 {
		t.Fatal("exact mechanism reused spanner snapshots")
	}
}

// TestWarmRestartLocalVariant checks that locally relevant channels persist
// under their own key variant and come back in a zero-solve warm restart:
// the sparse local snapshots (carrying their relevance domain) decode
// through the restricted verifier gate into bit-identical channels, and a
// mechanism with different construction knobs sharing the directory never
// sees them.
func TestWarmRestartLocalVariant(t *testing.T) {
	dir := t.TempDir()

	cfgLocal := persistTestConfig(dir)
	// The padded background needs eps*dmin large enough to absorb the mass
	// floor at every level of the budget allocation (beta < 1/2), so the
	// test budget is higher than the dense-construction tests use.
	cfgLocal.Eps = 3
	cfgLocal.LocalRadius = 4
	cfgLocal.LocalMassFloor = 0.05
	m1, err := geoind.NewMSM(cfgLocal)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Precompute(); err != nil {
		t.Fatal(err)
	}
	m1.FlushCache()
	_, solves1 := m1.Stats()
	if solves1 == 0 {
		t.Fatal("local cold start performed no solves")
	}
	radius, floor, localCh, fallbacks := m1.LocalInfo()
	if radius != 4 || floor != 0.05 {
		t.Fatalf("LocalInfo config = (%g, %g), want (4, 0.05)", radius, floor)
	}
	if localCh == 0 || fallbacks != 0 {
		t.Fatalf("cold start: %d local channels, %d dense fallbacks, want >0 and 0", localCh, fallbacks)
	}
	seq1 := reportSequence(t, m1, 100)

	// Warm restart: every channel loads from its kind-5 snapshot, zero solves.
	m2, err := geoind.NewMSM(cfgLocal)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Precompute(); err != nil {
		t.Fatal(err)
	}
	if _, s := m2.Stats(); s != 0 {
		t.Fatalf("warm local restart performed %d LP solves, want 0", s)
	}
	if st := m2.StoreStats(); st.BackingHits != int64(solves1) {
		t.Fatalf("warm local restart loaded %d snapshots, want %d", st.BackingHits, solves1)
	}
	if _, _, lc, fb := m2.LocalInfo(); lc != 0 || fb != 0 {
		t.Fatalf("warm restart counted %d local solves and %d fallbacks, want 0/0", lc, fb)
	}
	seq2 := reportSequence(t, m2, 100)
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("report %d: cold %v, warm %v", i, seq1[i], seq2[i])
		}
	}

	// An exact mechanism over the same directory must NOT reuse the local
	// snapshots: its keys differ in the variant field.
	mExact, err := geoind.NewMSM(persistTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := mExact.Precompute(); err != nil {
		t.Fatal(err)
	}
	if _, s := mExact.Stats(); s == 0 {
		t.Fatal("exact mechanism reused local snapshots")
	}
}

// TestCacheBytesEvictionWithDiskReload bounds the resident cache tightly so
// channels are evicted during precompute, then verifies lookups still resolve
// (from disk) without additional solves once the directory is populated.
func TestCacheBytesEvictionWithDiskReload(t *testing.T) {
	dir := t.TempDir()

	cfg := persistTestConfig(dir)
	cfg.CacheBytes = 1 // evict everything immediately; disk is the only cache
	m1, err := geoind.NewMSM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Precompute(); err != nil {
		t.Fatal(err)
	}
	m1.FlushCache()
	_, solves1 := m1.Stats()
	if st := m1.StoreStats(); st.Evictions == 0 {
		t.Fatalf("CacheBytes=1 evicted nothing: %+v", st)
	}

	m2, err := geoind.NewMSM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Precompute(); err != nil {
		t.Fatal(err)
	}
	if _, s := m2.Stats(); s != 0 {
		t.Fatalf("evicting warm restart performed %d solves, want 0", s)
	}
	if _, err := m2.Report(geoind.Point{X: 3, Y: 4}); err != nil {
		t.Fatal(err)
	}
	_ = solves1

	// The snapshot directory holds one file per solved channel.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no snapshot namespace directories written")
	}
}

// rewriteSnapshotVersion rewrites every snapshot file under dir to carry the
// given format version (recomputing the trailing CRC so the frame stays
// structurally sound) — reproducing the on-disk state a process of another
// format version leaves behind.
func rewriteSnapshotVersion(t *testing.T, dir string, version uint32) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".chan") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(data[4:], version)
		binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
		n++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestWarmRestartFromV1Snapshots is the rollout acceptance criterion for a
// snapshot format bump: a process started against a cache directory full of
// foreign-version (v1) files must come up with zero request errors — every
// file reads as a miss (not an error), is re-solved, and is overwritten in
// the current format — after which the next restart is a zero-solve warm
// start again.
func TestWarmRestartFromV1Snapshots(t *testing.T) {
	dir := t.TempDir()

	m1, err := geoind.NewMSM(persistTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Precompute(); err != nil {
		t.Fatal(err)
	}
	m1.FlushCache()
	_, solves1 := m1.Stats()

	// Regress every snapshot file to format version 1.
	if n := rewriteSnapshotVersion(t, dir, 1); n != solves1 {
		t.Fatalf("rewrote %d snapshot files, want %d", n, solves1)
	}

	// Second process: the v1 files are misses, not errors — precompute
	// re-solves everything and reports succeed with zero request errors.
	m2, err := geoind.NewMSM(persistTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Precompute(); err != nil {
		t.Fatal(err)
	}
	if _, s := m2.Stats(); s != solves1 {
		t.Fatalf("v1-directory restart performed %d solves, want %d", s, solves1)
	}
	if st := m2.StoreStats(); st.BackingHits != 0 {
		t.Fatalf("v1 snapshots produced %d backing hits, want 0", st.BackingHits)
	}
	// The skew is observable as version misses, and is not miscounted as
	// corruption.
	dst, ok := m2.DirCacheStats()
	if !ok {
		t.Fatal("DirCacheStats: no backing reported despite CacheDir")
	}
	if dst.VersionMisses != int64(solves1) || dst.Errors != 0 {
		t.Fatalf("dir-cache counters after v1 restart: %+v, want %d version misses and 0 errors",
			dst, solves1)
	}
	if _, err := m2.ReportBatch([]geoind.Point{{X: 3, Y: 4}, {X: 11, Y: 2}}); err != nil {
		t.Fatalf("report after v1 migration: %v", err)
	}
	m2.FlushCache()

	// Third process: the directory was migrated in place — zero solves.
	m3, err := geoind.NewMSM(persistTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.Precompute(); err != nil {
		t.Fatal(err)
	}
	if _, s := m3.Stats(); s != 0 {
		t.Fatalf("restart after migration performed %d solves, want 0", s)
	}
}
