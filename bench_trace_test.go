package geoind_test

// Trace-pipeline benchmarks behind `make bench-trace` (committed baseline:
// BENCH_trace.json, compared by bench-diff):
//
//   - BenchmarkTraceEndpoint drives the stateful /v1/trace endpoint of an
//     in-process server journaling every spend to disk, and reports request
//     latency quantiles plus the predictive memo-hit rate;
//   - BenchmarkTracePredictiveSavings documents the tentpole economics
//     offline: on correlated random-walk traces the predictive pipeline
//     spends <=50% of independent composition's budget (spend_ratio) at
//     equal-or-better empirical adversary error (ind/pred_adv_km);
//   - BenchmarkJournalAppend (./internal/session) rides along in the same
//     baseline for the per-record durability cost.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"geoind"
	"geoind/internal/server"
	"geoind/internal/session"
)

const (
	benchTraceEps     = 2.0
	benchTraceEpsTest = 0.5
	benchTraceTheta   = 4.0
)

// BenchmarkTraceEndpoint: each op is a burst of 512 predictive /v1/trace
// requests from 16 random-walk users (sigma 0.2 km/step — mostly dwelling,
// the regime the predictive test exploits) against a server with a durable
// session store at the default fsync-every-record policy.
func BenchmarkTraceEndpoint(b *testing.B) {
	mech, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: benchTraceEps, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	st, err := session.Open(session.Config{Limit: 1e9, Window: 24 * time.Hour, Dir: b.TempDir(), SyncEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	ledger, err := server.NewLedgerStore(st)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(mech, ledger, geoind.Square(20))
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.EnableTrace(server.TraceConfig{Theta: benchTraceTheta, EpsTest: benchTraceEpsTest, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	const burst, nUsers = 512, 16
	rng := rand.New(rand.NewPCG(7, 0xbe9c))
	walk := make([][2]float64, nUsers)
	for i := range walk {
		walk[i] = [2]float64{10, 10}
	}
	var lat []time.Duration
	var fresh, hits float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < burst; r++ {
			u := r % nUsers
			walk[u][0] = math.Min(math.Max(walk[u][0]+rng.NormFloat64()*0.2, 0), 19.9)
			walk[u][1] = math.Min(math.Max(walk[u][1]+rng.NormFloat64()*0.2, 0), 19.9)
			body := fmt.Sprintf(`{"user_id":"u%d","x":%g,"y":%g}`, u, walk[u][0], walk[u][1])
			t0 := time.Now()
			resp, err := client.Post(ts.URL+"/v1/trace", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				b.Fatal(err)
			}
			var tr server.TraceResponse
			if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			lat = append(lat, time.Since(t0))
			if resp.StatusCode != 200 {
				b.Fatalf("trace status %d", resp.StatusCode)
			}
			if tr.Fresh {
				fresh++
			} else {
				hits++
			}
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) float64 {
		return float64(lat[min(int(q*float64(len(lat))), len(lat)-1)])
	}
	b.ReportMetric(quantile(0.50), "p50_ns")
	b.ReportMetric(quantile(0.99), "p99_ns")
	b.ReportMetric(hits/(hits+fresh), "memo_hit_rate")
}

// BenchmarkTracePredictiveSavings: offline comparison on 8 generated
// mobility traces (85% dwell) at eps=2/report. spend_ratio is predictive
// total spend over independent-composition spend; the adv_km metrics are the
// empirical Bayesian attacker's mean localization error against each run
// (larger = more private — predictive must not come out below independent).
func BenchmarkTracePredictiveSavings(b *testing.B) {
	region := geoind.Square(20)
	anchors := []geoind.Point{{X: 5, Y: 5}, {X: 15, Y: 15}, {X: 10, Y: 3}, {X: 3, Y: 17}}
	traces, err := geoind.GenerateTraces(8, geoind.TraceConfig{
		Region: region, Anchors: anchors, Steps: 200,
		StayProb: 0.85, LocalSigma: 0.05, JumpProb: 0.05, WalkSigma: 0.5, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	var spendRatio, indAdv, predAdv float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		indMech, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: benchTraceEps, Seed: uint64(1000 + i)})
		if err != nil {
			b.Fatal(err)
		}
		predMech, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: benchTraceEps, Seed: uint64(2000 + i)})
		if err != nil {
			b.Fatal(err)
		}
		var indSpent, predSpent float64
		indRuns := make([][]geoind.TraceStep, 0, len(traces))
		predRuns := make([][]geoind.TraceStep, 0, len(traces))
		for ti, pts := range traces {
			steps, sum, err := geoind.ReportTrace(indMech, pts)
			if err != nil {
				b.Fatal(err)
			}
			indSpent += sum.TotalSpent
			indRuns = append(indRuns, steps)
			psteps, psum, err := geoind.ReportTracePredictive(predMech, pts,
				geoind.PredictiveConfig{Theta: benchTraceTheta, EpsTest: benchTraceEpsTest},
				uint64(3000+100*i+ti))
			if err != nil {
				b.Fatal(err)
			}
			predSpent += psum.TotalSpent
			predRuns = append(predRuns, psteps)
		}
		spendRatio = predSpent / indSpent
		if indAdv, err = geoind.AdversaryError(region, 24, benchTraceEps, traces, indRuns); err != nil {
			b.Fatal(err)
		}
		if predAdv, err = geoind.AdversaryError(region, 24, benchTraceEps, traces, predRuns); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(spendRatio, "spend_ratio")
	b.ReportMetric(indAdv, "ind_adv_km")
	b.ReportMetric(predAdv, "pred_adv_km")
}
