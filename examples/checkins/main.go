// Geosocial check-in protection with per-user budget accounting.
//
// A geosocial app lets users "check in" during the day. Each check-in leaks
// location information, and by the composability property of GeoInd (§2.2 of
// the paper) the leakage adds up: n reports at budget eps are equivalent to
// one report at n*eps. This example simulates a day of check-ins where every
// user holds a daily budget; each check-in spends a fixed slice of it
// through a shared MSM instance, and the app stops sanitizing (refuses the
// check-in) once a user's budget is exhausted.
//
// Run with: go run ./examples/checkins
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"geoind"
)

const (
	dailyBudget   = 1.0   // per-user daily epsilon
	perReportEps  = 0.25  // budget spent per check-in
	simulatedDay  = 30000 // number of check-in attempts across all users
	trackedUsers  = 5000
	reportsPerDay = int(dailyBudget / perReportEps)
)

func main() {
	ds := geoind.GowallaSynthetic()

	// One shared mechanism: the channel cache serves every user, and each
	// report consumes perReportEps from the reporting user's daily budget.
	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: perReportEps, Region: ds.Region(), Granularity: 3,
		PriorPoints: ds.Points(), Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-report eps=%.2f, daily budget=%.2f => %d check-ins/user/day\n",
		perReportEps, dailyBudget, reportsPerDay)
	fmt.Printf("MSM: height=%d, split=%.3f, leaf grid %dx%d\n\n",
		m.Height(), m.BudgetSplit(), m.LeafGranularity(), m.LeafGranularity())

	spent := make(map[int]float64, trackedUsers)
	rng := rand.New(rand.NewPCG(7, 8))
	var served, refused int
	var totalLoss float64

	for i := 0; i < simulatedDay; i++ {
		rec := ds.CheckIn(rng.IntN(ds.Len()))
		if spent[rec.User]+perReportEps > dailyBudget+1e-9 {
			refused++
			continue
		}
		z, err := m.Report(rec.Loc)
		if err != nil {
			log.Fatal(err)
		}
		spent[rec.User] += perReportEps
		served++
		totalLoss += rec.Loc.Dist(z)
	}

	fmt.Printf("check-in attempts: %d\n", simulatedDay)
	fmt.Printf("served:            %d (mean utility loss %.2f km)\n", served, totalLoss/float64(served))
	fmt.Printf("refused (budget):  %d\n", refused)

	// Budget accounting invariant: nobody exceeded the daily budget.
	worstUser, worst := -1, 0.0
	for u, s := range spent {
		if s > worst {
			worst, worstUser = s, u
		}
	}
	fmt.Printf("max daily spend:   %.2f (user %d) <= %.2f\n", worst, worstUser, dailyBudget)

	queries, solves := m.Stats()
	fmt.Printf("\nshared channel cache: %d reports, only %d LP solves\n", queries, solves)
}
