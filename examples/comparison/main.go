// Side-by-side comparison of the three GeoInd mechanisms.
//
// Runs planar Laplace, the optimal mechanism, and the multi-step mechanism
// at the same privacy budget over the same workload, reporting mean utility
// loss under both metrics of the paper and the time each mechanism needs —
// a miniature of the paper's whole evaluation in one binary.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"time"

	"geoind"
)

func main() {
	const (
		eps      = 0.5
		g        = 3 // OPT grid g^2 x g^2 would be ideal but slow; use g for OPT, MSM descends to g^h
		requests = 2000
	)
	ds := geoind.GowallaSynthetic()
	reqs := ds.SampleRequests(requests, 3)

	type entry struct {
		mech  geoind.Mechanism
		build time.Duration
	}
	var entries []entry

	start := time.Now()
	pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: eps, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	entries = append(entries, entry{pl, time.Since(start)})

	start = time.Now()
	optm, err := geoind.NewOptimal(geoind.OptimalConfig{
		Eps: eps, Region: ds.Region(), Granularity: g * g, // match MSM's leaf granularity
		PriorPoints: ds.Points(), Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	entries = append(entries, entry{optm, time.Since(start)})

	start = time.Now()
	msm, err := geoind.NewMSM(geoind.MSMConfig{
		Eps: eps, Region: ds.Region(), Granularity: g,
		PriorPoints: ds.Points(), Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := msm.Precompute(); err != nil {
		log.Fatal(err)
	}
	entries = append(entries, entry{msm, time.Since(start)})

	fmt.Printf("budget eps=%.1f, %d requests over %s\n", eps, requests, ds.Name())
	fmt.Printf("MSM: height=%d, leaf %dx%d; OPT grid %dx%d\n\n",
		msm.Height(), msm.LeafGranularity(), msm.LeafGranularity(), g*g, g*g)
	fmt.Println("mechanism  mean d (km)  mean d^2 (km^2)  build+precompute  per-report")

	for _, e := range entries {
		var d, d2 float64
		start := time.Now()
		for _, x := range reqs {
			z, err := e.mech.Report(x)
			if err != nil {
				log.Fatal(err)
			}
			d += x.Dist(z)
			d2 += x.Dist2(z)
		}
		perReport := time.Since(start) / requests
		fmt.Printf("%-9s  %11.3f  %15.3f  %16s  %10s\n",
			e.mech.Name(), d/requests, d2/requests,
			e.build.Round(time.Millisecond), perReport.Round(time.Microsecond))
	}

	fmt.Println("\nexpected shape (paper §6.2): OPT best utility but costly to build;")
	fmt.Println("MSM within a small factor of OPT at a fraction of the cost; PL cheap but noisy.")
}
