// Location-privacy microservice, end to end in one process.
//
// Starts the HTTP sanitization service on a local port with an MSM mechanism
// and a per-user budget ledger, then plays a client session against it:
// inspecting the mechanism, reporting locations until the budget runs out,
// and checking the remaining budget. This mirrors how a mobile app backend
// would deploy the library (see cmd/geoind-server for the standalone
// binary).
//
// Run with: go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"geoind"
	"geoind/internal/server"
)

func main() {
	ds := geoind.YelpSynthetic()

	mech, err := geoind.NewMSM(geoind.MSMConfig{
		Eps:         0.25, // per report
		Region:      ds.Region(),
		Granularity: 3,
		PriorPoints: ds.Points(),
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mech.Precompute(); err != nil {
		log.Fatal(err)
	}

	ledger, err := server.NewLedger(0.5, 24*time.Hour, nil) // two reports/day
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(mech, ledger, ds.Region())
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Println("service listening at", ts.URL)

	// --- client session ---
	get := func(path string) map[string]any {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		return out
	}
	report := func(user string, x, y float64) (int, map[string]any) {
		body, _ := json.Marshal(server.ReportRequest{UserID: user, X: x, Y: y})
		resp, err := http.Post(ts.URL+"/v1/report", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		return resp.StatusCode, out
	}

	fmt.Printf("\nGET /v1/info\n  %v\n", get("/v1/info"))

	fmt.Println("\nalice reports her location three times (budget allows two):")
	for i := 1; i <= 3; i++ {
		status, out := report("alice", 7.4, 12.1)
		fmt.Printf("  report %d -> HTTP %d: %v\n", i, status, out)
	}

	fmt.Printf("\nGET /v1/budget?user_id=alice\n  %v\n", get("/v1/budget?user_id=alice"))
	fmt.Printf("GET /v1/budget?user_id=bob\n  %v\n", get("/v1/budget?user_id=bob"))

	fmt.Println("\nout-of-region and malformed requests are rejected:")
	status, out := report("alice", 500, 500)
	fmt.Printf("  (500,500) -> HTTP %d: %v\n", status, out)
}
