// POI search under location obfuscation — the paper's motivating workload.
//
// A user asks for the nearest restaurant, but only the privacy-preserving
// location reaches the server. The server answers relative to the reported
// point, so the user may be routed to a farther POI than the true nearest
// one. This example measures that regret — the extra distance travelled —
// for the planar Laplace baseline and for MSM at the same privacy budget,
// and shows the d^2 effect too: how much larger a search radius the user
// must request to keep the true nearest POI in the result set.
//
// Run with: go run ./examples/poisearch
package main

import (
	"fmt"
	"log"
	"math"

	"geoind"
)

func main() {
	ds := geoind.YelpSynthetic()
	pois := dedupe(ds.Points()) // the restaurant directory
	fmt.Printf("POI directory: %d distinct places in %s\n\n", len(pois), ds.Name())

	users := ds.SampleRequests(500, 7)

	for _, eps := range []float64{0.1, 0.5} {
		msm, err := geoind.NewMSM(geoind.MSMConfig{
			Eps: eps, Region: ds.Region(), Granularity: 4,
			PriorPoints: ds.Points(), Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: eps, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("eps = %.1f\n", eps)
		fmt.Println("  mechanism  mean regret (km)  p95 regret (km)  radius factor")
		for _, m := range []geoind.Mechanism{msm, pl} {
			regrets := make([]float64, 0, len(users))
			radius := make([]float64, 0, len(users))
			for _, x := range users {
				z, err := m.Report(x)
				if err != nil {
					log.Fatal(err)
				}
				// The user stands at a POI (check-ins happen at POIs), so
				// the interesting target is the nearest *other* place.
				trueNearest := nearestOther(pois, x)
				served := nearestOther(pois, z) // what the server returns
				regret := x.Dist(served) - x.Dist(trueNearest)
				regrets = append(regrets, regret)
				// Radius the user must query around z to cover the true
				// nearest POI, relative to the non-private radius.
				need := z.Dist(trueNearest)
				have := math.Max(x.Dist(trueNearest), 1e-9)
				radius = append(radius, need/have)
			}
			fmt.Printf("  %-9s  %16.3f  %15.3f  %13.1fx\n",
				m.Name(), mean(regrets), p95(regrets), mean(radius))
		}
		fmt.Println()
	}
}

// dedupe collapses repeated check-ins at the same POI coordinates.
func dedupe(pts []geoind.Point) []geoind.Point {
	seen := make(map[geoind.Point]bool, len(pts))
	out := pts[:0:0]
	for _, p := range pts {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// nearestOther returns the closest POI to q at a strictly positive distance
// (linear scan: the directory is small and this example is about privacy,
// not indexing).
func nearestOther(pois []geoind.Point, q geoind.Point) geoind.Point {
	var best geoind.Point
	bestD := math.Inf(1)
	for _, p := range pois {
		if d := q.Dist(p); d > 0 && d < bestD {
			best, bestD = p, d
		}
	}
	return best
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func p95(v []float64) float64 {
	sorted := append([]float64(nil), v...)
	for i := 1; i < len(sorted); i++ { // insertion sort: small n
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[int(0.95*float64(len(sorted)-1))]
}
