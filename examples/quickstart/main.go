// Quickstart: protect a user's location with the multi-step mechanism.
//
// Builds an MSM instance over the synthetic Gowalla/Austin dataset, shows
// how the privacy budget is split across the hierarchical index, and
// sanitizes a handful of locations.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"geoind"
)

func main() {
	// The dataset doubles as the adversary's background knowledge (the
	// prior): users check in at well-defined POIs with known popularity.
	ds := geoind.GowallaSynthetic()
	fmt.Printf("dataset %s: %d check-ins by %d users over %.0fx%.0f km\n\n",
		ds.Name(), ds.Len(), ds.NumUsers(), ds.Region().Width(), ds.Region().Height())

	m, err := geoind.NewMSM(geoind.MSMConfig{
		Eps:         0.5, // total privacy budget (1/km): lower = stronger privacy
		Region:      ds.Region(),
		Granularity: 3,   // each index level splits a cell into 3x3
		Rho:         0.8, // per-level probability of staying in the true cell
		Metric:      geoind.Euclidean,
		PriorPoints: ds.Points(),
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("index height:      %d levels\n", m.Height())
	fmt.Printf("budget split:      %.4f\n", m.BudgetSplit())
	fmt.Printf("leaf granularity:  %dx%d cells\n\n", m.LeafGranularity(), m.LeafGranularity())

	// Optional offline phase: pre-solve all channels so that every
	// subsequent report costs only a table lookup and a random draw.
	if err := m.Precompute(); err != nil {
		log.Fatal(err)
	}

	locations := []geoind.Point{
		{X: 3.2, Y: 11.7}, // somewhere in the suburbs
		{X: 10.1, Y: 9.8}, // downtown
		{X: 18.9, Y: 1.2}, // edge of the region
	}
	fmt.Println("true location        reported location    distance (utility loss)")
	for _, x := range locations {
		z, err := m.Report(x)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%6.2f, %6.2f)  ->  (%6.2f, %6.2f)     %.2f km\n", x.X, x.Y, z.X, z.Y, x.Dist(z))
	}

	queries, solves := m.Stats()
	fmt.Printf("\nserved %d reports using %d cached LP solves\n", queries, solves)
}
