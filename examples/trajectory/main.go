// Trajectory protection: a day of movement under a privacy budget.
//
// A fitness app samples the user's location every few minutes. Reporting
// each point independently spends eps per point — an 8-hour trace at one
// point per minute burns 480x the single-report budget. The predictive
// mechanism (Chatzikokolakis et al., PETS 2014) exploits the fact that
// people dwell: a cheap private test re-releases the previous report while
// the user hasn't moved beyond a threshold, so budget drains only when the
// user actually goes somewhere.
//
// Run with: go run ./examples/trajectory
package main

import (
	"fmt"
	"log"

	"geoind"
)

func main() {
	region := geoind.Square(20)
	traces, err := geoind.GenerateTraces(3, geoind.TraceConfig{
		Region: region,
		Anchors: []geoind.Point{
			{X: 5, Y: 5},   // home
			{X: 15, Y: 15}, // office
			{X: 10, Y: 3},  // gym
		},
		Steps:      480, // one sample per minute for 8 hours
		StayProb:   0.92,
		LocalSigma: 0.05,
		JumpProb:   0.01,
		WalkSigma:  0.4,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	const epsPerReport = 1.0
	fmt.Printf("3 users, 480 samples each, eps=%.1f per fresh report\n\n", epsPerReport)
	fmt.Println("user  strategy     total eps  fresh  mean loss (km)")
	for u, trace := range traces {
		pl, err := geoind.NewPlanarLaplace(geoind.LaplaceConfig{Eps: epsPerReport, Seed: uint64(100 + u)})
		if err != nil {
			log.Fatal(err)
		}
		_, ind, err := geoind.ReportTrace(pl, trace)
		if err != nil {
			log.Fatal(err)
		}
		_, pred, err := geoind.ReportTracePredictive(pl, trace, geoind.PredictiveConfig{
			Theta:   4.0,  // km: "have I left the neighbourhood?"
			EpsTest: 0.25, // a quarter of a report per test
		}, uint64(200+u))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  independent  %9.1f  %5d  %14.2f\n", u, ind.TotalSpent, ind.Fresh, ind.MeanLoss)
		fmt.Printf("      predictive   %9.1f  %5d  %14.2f\n", pred.TotalSpent, pred.Fresh, pred.MeanLoss)
	}
	fmt.Println("\nthe predictive mechanism spends a fraction of the budget at comparable")
	fmt.Println("(often better) utility, because re-released reports have no fresh noise.")
}
