package geoind_test

import (
	"sync"
	"testing"

	"geoind"
)

// samplerTestConfig is persistTestConfig without the cache directory, with
// the warm-path sampler configuration under test.
func samplerTestConfig(sampler string, pruneMass float64) geoind.MSMConfig {
	cfg := persistTestConfig("")
	cfg.CacheDir = ""
	cfg.Sampler = sampler
	cfg.PruneMass = pruneMass
	return cfg
}

// TestSamplerConfigValidation covers the facade-level refusal paths for the
// new sampler knobs.
func TestSamplerConfigValidation(t *testing.T) {
	cfg := samplerTestConfig("vose", 0)
	if _, err := geoind.NewMSM(cfg); err == nil {
		t.Error("unknown sampler name accepted")
	}
	for _, mass := range []float64{-0.1, 0.5, 1.2} {
		cfg := samplerTestConfig("alias", mass)
		if _, err := geoind.NewMSM(cfg); err == nil {
			t.Errorf("prune mass %g accepted", mass)
		}
	}
}

// TestAliasSamplerReportsMatchDistribution smoke-checks the alias warm path
// end to end at the facade: an alias-configured MSM (with pruning enabled)
// precomputes, reports, and reports in batch without error, and SamplerInfo
// reflects the configuration. Run under -race by the Makefile's focused pass.
func TestAliasSamplerReportsMatchDistribution(t *testing.T) {
	m, err := geoind.NewMSM(samplerTestConfig("alias", 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Precompute(); err != nil {
		t.Fatal(err)
	}
	kind, mass, pruned, fallbacks := m.SamplerInfo()
	if kind != "alias" || mass != 0.1 {
		t.Fatalf("SamplerInfo = (%q, %g), want (alias, 0.1)", kind, mass)
	}
	if pruned+fallbacks == 0 {
		t.Fatal("no channel was pruned or counted as a fallback")
	}
	reportSequence(t, m, 100)
}

// TestAliasSharingConcurrentReports races the shared lazy alias tables
// through the full stack: one alias-mode MSM, many goroutines issuing
// ReportBatch concurrently against the shared channel store. Every report
// must land inside the region; the -race instrumented Makefile pass
// (race-persist) runs this to prove the once-guarded table build and
// subsequent lock-free sharing are sound.
func TestAliasSharingConcurrentReports(t *testing.T) {
	for _, mass := range []float64{0, 0.1} {
		m, err := geoind.NewMSM(samplerTestConfig("alias", mass))
		if err != nil {
			t.Fatal(err)
		}
		// No Precompute: let the goroutines also race channel creation and
		// the first Sampler(alias) call on each freshly solved channel.
		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pts := make([]geoind.Point, 40)
				for i := range pts {
					pts[i] = geoind.Point{
						X: float64((i*7+w)%9) * 2.2,
						Y: float64((i*3+w)%5) * 3.9,
					}
				}
				for round := 0; round < 5; round++ {
					zs, err := m.ReportBatch(pts)
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					for _, z := range zs {
						if z.X < 0 || z.X > 20 || z.Y < 0 || z.Y > 20 {
							t.Errorf("worker %d: report %v outside region", w, z)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
	}
}
