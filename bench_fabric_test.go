package geoind_test

// Channel-fabric fleet benchmarks: cold start + full cold coverage for a
// 2-replica fabric-joined fleet vs two isolated replicas solving the same
// key space. The fabric's consistent-hash ownership partitions the LP solves
// (each unique channel solved once fleet-wide, non-owned channels fetched
// over HTTP), so the fleet side reports ~half the solves/op of the isolated
// side — the committed BENCH_fabric.json baseline documents the >=1.8x
// reduction. Remote-fetch latency quantiles ride along as custom metrics.
// `make bench-fabric` regenerates the baseline; bench-diff compares runs.

import (
	"sync"
	"testing"

	"geoind"
)

const benchFabricEps = 2.4 // height 3 with g=3: 91 unique channels

// BenchmarkFabricFleet: construct a 2-replica fleet, precompute both
// replicas concurrently (owner-only), then demand every channel at every
// replica so non-owned channels cross the wire.
func BenchmarkFabricFleet(b *testing.B) {
	var totalSolves int64
	var p50, p99 float64
	for i := 0; i < b.N; i++ {
		f := startFleet(b, 2, benchFabricEps)
		var wg sync.WaitGroup
		for _, m := range f.msms {
			m := m
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := m.Precompute(); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
		for _, m := range f.msms {
			sweep(b, m, 0.7)
		}
		for _, m := range f.msms {
			_, misses, _ := m.CacheStats()
			totalSolves += misses
			if h := m.FabricFetchLatency(); h != nil && h.Count() > 0 {
				p50 = max(p50, h.Quantile(0.5)*1e3)
				p99 = max(p99, h.Quantile(0.99)*1e3)
			}
		}
		f.stop()
	}
	b.ReportMetric(float64(totalSolves)/float64(b.N), "solves/op")
	b.ReportMetric(p50, "fetch_p50_ms")
	b.ReportMetric(p99, "fetch_p99_ms")
}

// BenchmarkFabricIsolated: the control — two replicas with no fabric each
// solve the full key space themselves.
func BenchmarkFabricIsolated(b *testing.B) {
	var totalSolves int64
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m, err := geoind.NewMSM(geoind.MSMConfig{
					Eps: benchFabricEps, Region: geoind.Square(20), Granularity: 3, Seed: 7,
				})
				if err != nil {
					b.Error(err)
					return
				}
				if err := m.Precompute(); err != nil {
					b.Error(err)
					return
				}
				_, misses, _ := m.CacheStats()
				mu.Lock()
				totalSolves += misses
				mu.Unlock()
			}()
		}
		wg.Wait()
	}
	b.ReportMetric(float64(totalSolves)/float64(b.N), "solves/op")
}
