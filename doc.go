// Package geoind is a pure-Go implementation of utility-preserving, scalable
// location privacy with geo-indistinguishability, reproducing the EDBT 2019
// paper "A Utility-Preserving and Scalable Technique for Protecting Location
// Data with Geo-Indistinguishability" (Ahuja, Ghinita, Shahabi).
//
// Geo-indistinguishability (GeoInd) adapts differential privacy to the
// online location-reporting setting: a mechanism K satisfies eps-GeoInd if
// for all locations x, x' and any output z,
//
//	K(x)(z) <= exp(eps * d(x, x')) * K(x')(z),
//
// so an adversary observing the reported location cannot confidently
// distinguish nearby true locations, regardless of prior knowledge.
//
// The package provides three mechanisms behind one interface:
//
//   - NewPlanarLaplace: the classic planar Laplace mechanism — fast,
//     prior-agnostic, but noisy.
//   - NewOptimal: the optimal mechanism (Bordenabe et al.) — solves a linear
//     program to minimize expected utility loss for a given adversarial
//     prior; exact but expensive beyond small grids.
//   - NewMSM: the paper's Multi-Step Mechanism — applies the optimal
//     mechanism recursively along a hierarchical spatial index, splitting
//     the privacy budget across levels with an analytical model, achieving
//     near-optimal utility at a tiny fraction of the cost.
//
// All randomness is seeded and reproducible. No dependencies beyond the
// standard library; the linear programs are solved by an internal
// structure-exploiting interior-point method.
//
// Quick start:
//
//	ds := geoind.GowallaSynthetic()
//	m, err := geoind.NewMSM(geoind.MSMConfig{
//		Eps:         0.5,
//		Region:      ds.Region(),
//		Granularity: 4,
//		PriorPoints: ds.Points(),
//		Seed:        1,
//	})
//	if err != nil { ... }
//	private, err := m.Report(geoind.Point{X: 3.2, Y: 11.7})
package geoind
