module geoind

go 1.22
