package geoind_test

// Persistence benchmarks: full mechanism construction + precompute with and
// without a populated snapshot cache. BenchmarkColdStart solves every channel
// from scratch each iteration; BenchmarkWarmRestart loads verified snapshots
// from a directory populated once before the timer — the difference is the
// entire LP solve phase. The committed baseline lives at BENCH_persist.json
// (`make bench-json` regenerates it alongside BENCH_batch.json).

import (
	"testing"

	"geoind"
)

// benchPersistConfig is a deliberately non-trivial startup: granularity 4
// (16-cell channels) over a skewed prior, so the solve phase dominates.
func benchPersistConfig(cacheDir string) geoind.MSMConfig {
	var pts []geoind.Point
	for i := 0; i < 60; i++ {
		pts = append(pts, geoind.Point{
			X: float64(i%9) * 2.1,
			Y: float64(i%7) * 2.6,
		})
	}
	return geoind.MSMConfig{
		Eps:         0.5,
		Region:      geoind.Square(20),
		Granularity: 4,
		PriorPoints: pts,
		Seed:        7,
		CacheDir:    cacheDir,
	}
}

// BenchmarkColdStart measures process startup with an empty cache: every
// channel of the hierarchy is solved by the LP.
func BenchmarkColdStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := geoind.NewMSM(benchPersistConfig(""))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Precompute(); err != nil {
			b.Fatal(err)
		}
		_, solves := m.Stats()
		if solves == 0 {
			b.Fatal("cold start performed no solves")
		}
	}
}

// BenchmarkWarmRestart measures process startup against a populated snapshot
// directory: construction + precompute with zero LP solves.
func BenchmarkWarmRestart(b *testing.B) {
	dir := b.TempDir()
	warm, err := geoind.NewMSM(benchPersistConfig(dir))
	if err != nil {
		b.Fatal(err)
	}
	if err := warm.Precompute(); err != nil {
		b.Fatal(err)
	}
	warm.FlushCache()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := geoind.NewMSM(benchPersistConfig(dir))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Precompute(); err != nil {
			b.Fatal(err)
		}
		if _, solves := m.Stats(); solves != 0 {
			b.Fatalf("warm restart performed %d solves", solves)
		}
	}
}
