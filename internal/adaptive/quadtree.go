package adaptive

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"geoind/internal/budget"
	"geoind/internal/channel"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/lp"
	"geoind/internal/opt"
	"geoind/internal/prior"
)

// QuadConfig parameterizes the quadtree mechanism — the other index
// structure named by the paper's future work (§8). Unlike the k-d Tree,
// quadtree cells are uniform squares: adaptation comes from *depth*, not
// cell shape. A node keeps splitting into 2x2 quadrants while it still
// holds at least MassThreshold of the prior mass, the budget allows another
// level, and MaxDepth is not reached — so dense areas get deep, fine-grained
// subtrees while empty suburbs stay coarse.
type QuadConfig struct {
	// Eps is the total privacy budget (> 0).
	Eps float64
	// Region is the square planar domain.
	Region geo.Rect
	// MassThreshold stops splitting below this prior mass; 0 means 0.01.
	MassThreshold float64
	// MaxDepth caps the tree depth; 0 means 6.
	MaxDepth int
	// Rho is the per-step same-cell probability target; 0 means 0.8.
	Rho float64
	// Metric is the utility metric dQ.
	Metric geo.Metric
	// PriorPoints drives both the prior and the split decisions.
	PriorPoints []geo.Point
	// PriorGranularity is the fine prior grid resolution; 0 means 128
	// (must be a power of two at least 2^MaxDepth for exact alignment).
	PriorGranularity int
	// LP configures the per-node solves.
	LP *lp.IPMOptions
	// Workers bounds pipeline parallelism (LP block solves, Precompute
	// fan-out, and — when > 1 — lock-free per-query sampling streams).
	Workers int
	// Store optionally injects a shared channel store; nil means private.
	Store *channel.Store
	// Sampler selects the warm-path sampling implementation (see
	// core.Config.Sampler).
	Sampler opt.SamplerKind
	// PruneMass, when > 0, compacts solved node channels (see
	// Config.PruneMass). Must be in [0, opt.MaxPruneMass).
	PruneMass float64
}

// QuadMechanism is the quadtree multi-step mechanism.
type QuadMechanism struct {
	cfg   QuadConfig
	root  *quadNode
	seed  uint64
	nodes int

	store     *channel.Store
	priorHash uint64
	variant   uint64 // store-key variant; 0 means unset (dense)

	solves         atomic.Int64
	prunedChannels atomic.Int64
	pruneFallbacks atomic.Int64
	queryIdx       atomic.Uint64

	rng   *rand.Rand
	rngMu sync.Mutex
}

type quadNode struct {
	rect     geo.Rect
	mass     float64
	eps      float64 // budget of the descent step performed at this node
	children []*quadNode
	id       int
	depth    int
}

// NewQuad builds the quadtree mechanism.
func NewQuad(cfg QuadConfig, seed uint64) (*QuadMechanism, error) {
	if !(cfg.Eps > 0) || math.IsInf(cfg.Eps, 0) {
		return nil, fmt.Errorf("adaptive: quad eps=%g must be positive and finite", cfg.Eps)
	}
	if cfg.Region.Width() <= 0 || cfg.Region.Height() <= 0 {
		return nil, fmt.Errorf("adaptive: quad degenerate region %v", cfg.Region)
	}
	if cfg.MassThreshold == 0 {
		cfg.MassThreshold = 0.01
	}
	if !(cfg.MassThreshold > 0 && cfg.MassThreshold < 1) {
		return nil, fmt.Errorf("adaptive: quad mass threshold %g outside (0,1)", cfg.MassThreshold)
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MaxDepth < 1 || cfg.MaxDepth > 12 {
		return nil, fmt.Errorf("adaptive: quad max depth %d outside [1,12]", cfg.MaxDepth)
	}
	if cfg.Rho == 0 {
		cfg.Rho = 0.8
	}
	if !(cfg.Rho > 0 && cfg.Rho < 1) {
		return nil, fmt.Errorf("adaptive: quad rho=%g outside (0,1)", cfg.Rho)
	}
	if !cfg.Metric.Valid() {
		return nil, fmt.Errorf("adaptive: quad unknown metric %v", cfg.Metric)
	}
	if cfg.PruneMass != 0 && (!(cfg.PruneMass > 0) || cfg.PruneMass >= opt.MaxPruneMass) {
		return nil, fmt.Errorf("adaptive: quad prune mass %g outside [0, %g)", cfg.PruneMass, opt.MaxPruneMass)
	}
	if cfg.PriorGranularity == 0 {
		cfg.PriorGranularity = 128
	}
	minG := 1 << cfg.MaxDepth
	if cfg.PriorGranularity < minG || cfg.PriorGranularity%minG != 0 {
		return nil, fmt.Errorf("adaptive: quad prior granularity %d must be a multiple of 2^MaxDepth = %d",
			cfg.PriorGranularity, minG)
	}

	fineGrid, err := grid.New(cfg.Region, cfg.PriorGranularity)
	if err != nil {
		return nil, fmt.Errorf("adaptive: %w", err)
	}
	var fine *prior.Prior
	if len(cfg.PriorPoints) > 0 {
		fine = prior.FromPoints(fineGrid, cfg.PriorPoints)
	} else {
		fine = prior.Uniform(fineGrid)
	}

	m := &QuadMechanism{
		cfg:   cfg,
		seed:  seed,
		rng:   rand.New(rand.NewPCG(seed, 0x90ad7ee)),
		store: cfg.Store,
	}
	if m.store == nil {
		m.store = channel.New(channel.Options{})
	}
	root, err := m.grow(fine, 0, 0, cfg.PriorGranularity, 0, cfg.PriorGranularity, 0, cfg.Eps)
	if err != nil {
		return nil, err
	}
	m.root = root
	h := channel.NewHasher()
	h.Int(cfg.MaxDepth)
	h.Float64(cfg.MassThreshold)
	h.Float64(cfg.Rho)
	h.Float64(cfg.Region.MinX)
	h.Float64(cfg.Region.MinY)
	h.Float64(cfg.Region.MaxX)
	h.Float64(cfg.Region.MaxY)
	h.Floats(fine.Weights())
	m.priorHash = h.Sum()
	if cfg.PruneMass > 0 {
		vh := channel.NewHasher()
		vh.Uint64(math.Float64bits(cfg.PruneMass))
		m.variant = vh.Sum()
	}
	return m, nil
}

// grow recursively builds the quadtree over the fine-grid index range.
func (m *QuadMechanism) grow(p *prior.Prior, depth, rowLo, rowHi, colLo, colHi int, spent, remaining float64) (*quadNode, error) {
	g := p.Grid()
	n := &quadNode{
		rect:  rectOf(g, rowLo, rowHi, colLo, colHi),
		mass:  p.BlockMass(rowLo, colLo, rowHi-rowLo, colHi-colLo),
		id:    m.nodes,
		depth: depth,
	}
	m.nodes++

	// Split? Only while dense enough, deep budget available, and the range
	// is still divisible.
	if depth >= m.cfg.MaxDepth || n.mass < m.cfg.MassThreshold || (rowHi-rowLo) < 2 {
		return n, nil
	}
	childSide := n.rect.Width() / 2
	need, err := budget.MinEpsilon(math.Min(childSide, n.rect.Height()/2), m.cfg.Rho)
	if err != nil {
		return nil, err
	}
	if need >= remaining {
		// Cannot afford another informative level here: this subtree's
		// descent ends one step below, absorbing all remaining budget.
		n.eps = remaining
		midR, midC := (rowLo+rowHi)/2, (colLo+colHi)/2
		for _, r := range [][2]int{{rowLo, midR}, {midR, rowHi}} {
			for _, c := range [][2]int{{colLo, midC}, {midC, colHi}} {
				leaf := &quadNode{
					rect:  rectOf(g, r[0], r[1], c[0], c[1]),
					mass:  p.BlockMass(r[0], c[0], r[1]-r[0], c[1]-c[0]),
					id:    m.nodes,
					depth: depth + 1,
				}
				m.nodes++
				n.children = append(n.children, leaf)
			}
		}
		return n, nil
	}
	n.eps = need
	midR, midC := (rowLo+rowHi)/2, (colLo+colHi)/2
	for _, r := range [][2]int{{rowLo, midR}, {midR, rowHi}} {
		for _, c := range [][2]int{{colLo, midC}, {midC, colHi}} {
			child, err := m.grow(p, depth+1, r[0], r[1], c[0], c[1], spent+need, remaining-need)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, child)
		}
	}
	return n, nil
}

// Epsilon returns the total budget. Paths that end early (sparse areas)
// spend less than Epsilon; the guarantee still holds since unspent budget
// only strengthens privacy.
func (m *QuadMechanism) Epsilon() float64 { return m.cfg.Eps }

// NumNodes returns the tree size.
func (m *QuadMechanism) NumNodes() int { return m.nodes }

// MaxDepthUsed returns the deepest node level actually present.
func (m *QuadMechanism) MaxDepthUsed() int {
	max := 0
	var walk func(*quadNode)
	walk = func(n *quadNode) {
		if n.depth > max {
			max = n.depth
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(m.root)
	return max
}

// DepthAt returns the leaf depth of the subtree containing p.
func (m *QuadMechanism) DepthAt(p geo.Point) int {
	p = m.cfg.Region.Clamp(p)
	node := m.root
	for node.children != nil {
		next := node.children[0]
		for _, c := range node.children {
			if c.rect.Contains(p) {
				next = c
				break
			}
		}
		node = next
	}
	return node.depth
}

// lpOpts resolves interior-point options, defaulting the worker count to
// the pipeline's.
func (m *QuadMechanism) lpOpts() *lp.IPMOptions {
	var o lp.IPMOptions
	if m.cfg.LP != nil {
		o = *m.cfg.LP
	}
	if o.Workers == 0 {
		o.Workers = m.cfg.Workers
	}
	return &o
}

// channel returns the 4-candidate channel of a node through the
// singleflight store: concurrent requests perform exactly one solve.
func (m *QuadMechanism) channel(ctx context.Context, n *quadNode) (*opt.PointChannel, error) {
	key := channel.NewKey(quadNamespace, n.depth, n.id, n.eps, int(m.cfg.Metric), m.priorHash)
	if m.variant != 0 {
		key = key.WithVariant(m.variant)
	}
	v, _, err := m.store.GetOrComputeCtx(ctx, key, func(solveCtx context.Context) (any, error) {
		return m.solveChannel(solveCtx, n)
	})
	if err != nil {
		return nil, err
	}
	// Persisted snapshots are checksum- and key-verified, but never trust a
	// foreign backing value over a fresh solve if the shape is wrong.
	ch, ok := v.(*opt.PointChannel)
	if !ok || ch.N() != len(n.children) {
		return m.solveChannel(ctx, n)
	}
	return ch, nil
}

// solveChannel performs the LP solve for one inner node.
func (m *QuadMechanism) solveChannel(ctx context.Context, n *quadNode) (*opt.PointChannel, error) {
	centers := make([]geo.Point, len(n.children))
	masses := make([]float64, len(n.children))
	total := 0.0
	for i, c := range n.children {
		centers[i] = c.rect.Center()
		masses[i] = c.mass
		total += c.mass
	}
	if total == 0 {
		for i := range masses {
			masses[i] = 1
		}
	}
	ch, err := opt.BuildPointsCtx(ctx, n.eps, centers, masses, m.cfg.Metric, &opt.Options{LP: m.lpOpts()})
	if err != nil {
		return nil, fmt.Errorf("adaptive: quad node %d: %w", n.id, err)
	}
	m.solves.Add(1)
	if m.cfg.PruneMass > 0 {
		if pruned, perr := ch.Prune(m.cfg.PruneMass, masses); perr == nil {
			ch = pruned
			m.prunedChannels.Add(1)
		} else {
			m.pruneFallbacks.Add(1)
		}
	}
	return ch, nil
}

// Report sanitizes x with the mechanism's seeded randomness (see
// Mechanism.Report for the Workers-dependent RNG mode).
func (m *QuadMechanism) Report(x geo.Point) (geo.Point, error) {
	return m.ReportCtx(context.Background(), x)
}

// ReportCtx is Report under a context; see Mechanism.ReportCtx for the
// cancellation contract.
func (m *QuadMechanism) ReportCtx(ctx context.Context, x geo.Point) (geo.Point, error) {
	if channel.Workers(m.cfg.Workers) <= 1 {
		m.rngMu.Lock()
		defer m.rngMu.Unlock()
		return m.reportWithCtx(ctx, x, m.rng)
	}
	qi := m.queryIdx.Add(1) - 1
	rng := rand.New(rand.NewPCG(m.seed, reportStreamSalt^qi))
	return m.reportWithCtx(ctx, x, rng)
}

// ReportWith descends the quadtree (Algorithm 1 over quadrants) and returns
// the selected leaf-cell center.
func (m *QuadMechanism) ReportWith(x geo.Point, rng *rand.Rand) (geo.Point, error) {
	return m.reportWithCtx(context.Background(), x, rng)
}

func (m *QuadMechanism) reportWithCtx(ctx context.Context, x geo.Point, rng *rand.Rand) (geo.Point, error) {
	x = m.cfg.Region.Clamp(x)
	node := m.root
	for node.children != nil {
		ch, err := m.channel(ctx, node)
		if err != nil {
			return geo.Point{}, err
		}
		xi := -1
		for i, c := range node.children {
			if c.rect.Contains(x) {
				xi = i
				break
			}
		}
		if xi < 0 {
			xi = rng.IntN(len(node.children))
		}
		node = node.children[ch.Sampler(m.cfg.Sampler).Sample(xi, rng)]
	}
	return node.rect.Center(), nil
}

// Precompute eagerly solves every inner node's channel, fanning the
// independent solves out across up to Workers goroutines.
func (m *QuadMechanism) Precompute() error {
	return m.PrecomputeCtx(context.Background())
}

// PrecomputeCtx is Precompute under a context: the fan-out polls ctx before
// each solve and stops issuing new ones once canceled.
func (m *QuadMechanism) PrecomputeCtx(ctx context.Context) error {
	var inner []*quadNode
	var walk func(*quadNode)
	walk = func(n *quadNode) {
		if n.children == nil {
			return
		}
		inner = append(inner, n)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(m.root)
	return channel.ForEachCtx(ctx, channel.Workers(m.cfg.Workers), len(inner), func(i int) error {
		_, err := m.channel(ctx, inner[i])
		return err
	})
}

// Stats returns the number of LP solves performed (atomic; safe under
// concurrent load).
func (m *QuadMechanism) Stats() int {
	return int(m.solves.Load())
}

// StoreStats returns a snapshot of the channel store's counters.
func (m *QuadMechanism) StoreStats() channel.Stats { return m.store.Stats() }

// SyncStore blocks until the store's write-behind persistence goroutines
// (if a backing cache is configured) have drained.
func (m *QuadMechanism) SyncStore() { m.store.Sync() }
