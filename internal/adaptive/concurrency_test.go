package adaptive

import (
	"math/rand/v2"
	"sync"
	"testing"

	"geoind/internal/geo"
)

// hammerReports fires report from 16 goroutines, n calls each, over inputs
// spread across the 20 km region.
func hammerReports(t *testing.T, n int, report func(x geo.Point) error) {
	t.Helper()
	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 77))
			for i := 0; i < n; i++ {
				x := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
				if err := report(x); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func concurrentKD(t *testing.T, workers int, seed uint64) *Mechanism {
	t.Helper()
	m, err := New(Config{
		Eps:         2.0,
		Region:      geo.NewSquare(20),
		Fanout:      3,
		Height:      2,
		PriorPoints: clusteredPoints(600, 5),
		Workers:     workers,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func concurrentQuad(t *testing.T, workers int, seed uint64) *QuadMechanism {
	t.Helper()
	m, err := NewQuad(QuadConfig{
		Eps:         2.0,
		Region:      geo.NewSquare(20),
		MaxDepth:    4,
		PriorPoints: clusteredPoints(600, 5),
		Workers:     workers,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestKDConcurrentSingleflight overlaps Precompute with 16 goroutines of
// Report traffic on the k-d mechanism and checks every inner node's channel
// was solved exactly once.
func TestKDConcurrentSingleflight(t *testing.T) {
	m := concurrentKD(t, -1, 11)
	var wg sync.WaitGroup
	wg.Add(1)
	precompErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		precompErr <- m.Precompute()
	}()
	hammerReports(t, 15, func(x geo.Point) error {
		_, err := m.Report(x)
		return err
	})
	wg.Wait()
	if err := <-precompErr; err != nil {
		t.Fatal(err)
	}
	inner := 0
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Children == nil {
			return
		}
		inner++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(m.Tree().Root)
	if got := m.Stats(); got != inner {
		t.Errorf("solves = %d, want exactly one per inner node (%d)", got, inner)
	}
	st := m.StoreStats()
	if int(st.Misses) != inner || int(st.Entries) != inner {
		t.Errorf("store misses/entries = %d/%d, want %d/%d", st.Misses, st.Entries, inner, inner)
	}
}

// TestQuadConcurrentSingleflight is the quadtree counterpart.
func TestQuadConcurrentSingleflight(t *testing.T) {
	m := concurrentQuad(t, -1, 11)
	var wg sync.WaitGroup
	wg.Add(1)
	precompErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		precompErr <- m.Precompute()
	}()
	hammerReports(t, 15, func(x geo.Point) error {
		_, err := m.Report(x)
		return err
	})
	wg.Wait()
	if err := <-precompErr; err != nil {
		t.Fatal(err)
	}
	inner := 0
	var walk func(*quadNode)
	walk = func(n *quadNode) {
		if n.children == nil {
			return
		}
		inner++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(m.root)
	if got := m.Stats(); got != inner {
		t.Errorf("solves = %d, want exactly one per inner node (%d)", got, inner)
	}
	st := m.StoreStats()
	if int(st.Misses) != inner || int(st.Entries) != inner {
		t.Errorf("store misses/entries = %d/%d, want %d/%d", st.Misses, st.Entries, inner, inner)
	}
}

// TestKDSequentialModeBitIdenticalToSeed pins the Workers<=1 k-d Report path
// to the historical single-stream behaviour (PCG salt 0xada9717e, call
// order).
func TestKDSequentialModeBitIdenticalToSeed(t *testing.T) {
	const seed = 23
	m := concurrentKD(t, 1, seed)
	ref := concurrentKD(t, 1, seed)
	refRng := rand.New(rand.NewPCG(seed, 0xada9717e))
	inputs := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 150; i++ {
		x := geo.Point{X: inputs.Float64() * 20, Y: inputs.Float64() * 20}
		got, err := m.Report(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.ReportWith(x, refRng)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("report %d diverged from seed stream: %v vs %v", i, got, want)
		}
	}
}

// TestQuadSequentialModeBitIdenticalToSeed is the quadtree counterpart
// (PCG salt 0x90ad7ee).
func TestQuadSequentialModeBitIdenticalToSeed(t *testing.T) {
	const seed = 23
	m := concurrentQuad(t, 1, seed)
	ref := concurrentQuad(t, 1, seed)
	refRng := rand.New(rand.NewPCG(seed, 0x90ad7ee))
	inputs := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 150; i++ {
		x := geo.Point{X: inputs.Float64() * 20, Y: inputs.Float64() * 20}
		got, err := m.Report(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.ReportWith(x, refRng)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("report %d diverged from seed stream: %v vs %v", i, got, want)
		}
	}
}

// TestAdaptiveParallelModeDeterministic checks the Workers>1 per-query
// stream path is reproducible given arrival order, for both index families.
func TestAdaptiveParallelModeDeterministic(t *testing.T) {
	kd1, kd2 := concurrentKD(t, 4, 42), concurrentKD(t, 4, 42)
	q1, q2 := concurrentQuad(t, 4, 42), concurrentQuad(t, 4, 42)
	inputs := rand.New(rand.NewPCG(6, 7))
	for i := 0; i < 150; i++ {
		x := geo.Point{X: inputs.Float64() * 20, Y: inputs.Float64() * 20}
		a1, err1 := kd1.Report(x)
		a2, err2 := kd2.Report(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a1 != a2 {
			t.Fatalf("kd report %d diverged: %v vs %v", i, a1, a2)
		}
		b1, err1 := q1.Report(x)
		b2, err2 := q2.Report(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if b1 != b2 {
			t.Fatalf("quad report %d diverged: %v vs %v", i, b1, b2)
		}
	}
}
