// Package adaptive implements the paper's future-work direction (§8): a
// multi-step mechanism over a prior-adaptive hierarchical partition instead
// of a uniform grid. Each node of the tree splits its rectangle into
// fanout x fanout sub-rectangles by k-d-style mass-median cuts (slice and
// dice: the node is cut into fanout vertical strips of roughly equal prior
// mass, each strip into fanout cells of roughly equal mass), so dense
// downtown areas get small cells — fine reporting granularity exactly where
// queries concentrate — while empty suburbs keep large cells.
//
// The multi-step descent, budget accounting and per-node OPT channels mirror
// internal/core, with two generalizations: candidate locations are the
// irregular child-cell centers (opt.BuildPoints), and the per-level Problem-1
// budget requirement is evaluated per node from its own child-cell geometry,
// with the final level of every root-to-leaf path absorbing the remaining
// budget so each path consumes exactly eps (composability per path).
package adaptive

import (
	"fmt"
	"math"

	"geoind/internal/budget"
	"geoind/internal/geo"
	"geoind/internal/prior"
)

// Node is one node of the adaptive partition tree.
type Node struct {
	// Rect is the node's spatial extent.
	Rect geo.Rect
	// Children partition Rect (nil for leaves). len == fanout*fanout.
	Children []*Node
	// Mass is the prior mass of Rect.
	Mass float64
	// Eps is the budget assigned to the descent step performed AT this node
	// (zero for leaves).
	Eps float64
	// Level is the node's depth (root = 0).
	Level int
	id    int
}

// ID returns a stable identifier for channel caching.
func (n *Node) ID() int { return n.id }

// Centers returns the child-cell centers (the node's logical locations).
func (n *Node) Centers() []geo.Point {
	out := make([]geo.Point, len(n.Children))
	for i, c := range n.Children {
		out[i] = c.Rect.Center()
	}
	return out
}

// ChildMasses returns the children's prior masses.
func (n *Node) ChildMasses() []float64 {
	out := make([]float64, len(n.Children))
	for i, c := range n.Children {
		out[i] = c.Mass
	}
	return out
}

// ChildContaining returns the index of the child whose rect contains p, or
// -1 when p is outside the node.
func (n *Node) ChildContaining(p geo.Point) int {
	for i, c := range n.Children {
		if c.Rect.Contains(p) {
			return i
		}
	}
	return -1
}

// Tree is a balanced prior-adaptive partition of a region.
type Tree struct {
	Root   *Node
	Fanout int
	Height int
	nodes  int
}

// NumNodes returns the total number of tree nodes.
func (t *Tree) NumNodes() int { return t.nodes }

// Leaves returns all leaf nodes in construction order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Children == nil {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// BuildTree constructs the adaptive tree over the prior's region. The prior
// supplies both the mass distribution driving the splits and the split
// coordinates, which snap to the prior grid's cell boundaries (so a finer
// prior grid gives finer split resolution). rho drives the per-node budget
// requirement: each inner node receives the minimal budget that keeps the
// same-cell probability at least rho for its (geometry-averaged) child size,
// and every path's last step absorbs the remainder of eps.
func BuildTree(p *prior.Prior, eps float64, fanout, height int, rho float64) (*Tree, error) {
	if p == nil {
		return nil, fmt.Errorf("adaptive: nil prior")
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("adaptive: eps=%g must be positive and finite", eps)
	}
	if fanout < 2 || fanout > 16 {
		return nil, fmt.Errorf("adaptive: fanout %d outside [2,16]", fanout)
	}
	if height < 1 {
		return nil, fmt.Errorf("adaptive: height %d < 1", height)
	}
	if !(rho > 0 && rho < 1) {
		return nil, fmt.Errorf("adaptive: rho=%g outside (0,1)", rho)
	}
	fineG := p.Grid().Granularity()
	minSpan := 1
	for i := 0; i < height; i++ {
		minSpan *= fanout
	}
	if fineG < minSpan {
		return nil, fmt.Errorf("adaptive: prior granularity %d too coarse for fanout^height = %d", fineG, minSpan)
	}

	t := &Tree{Fanout: fanout, Height: height}
	root, err := t.build(p, 0, 0, fineG, 0, fineG, eps, rho)
	if err != nil {
		return nil, err
	}
	t.Root = root
	return t, nil
}

// build recursively partitions the fine-grid index range
// [rowLo,rowHi) x [colLo,colHi).
func (t *Tree) build(p *prior.Prior, level, rowLo, rowHi, colLo, colHi int, remaining, rho float64) (*Node, error) {
	g := p.Grid()
	n := &Node{
		Rect:  rectOf(g, rowLo, rowHi, colLo, colHi),
		Mass:  p.BlockMass(rowLo, colLo, rowHi-rowLo, colHi-colLo),
		Level: level,
		id:    t.nodes,
	}
	t.nodes++
	if level == t.Height {
		return n, nil
	}

	// Budget for this descent step: the Problem-1 minimum for the node's
	// average child dimension, except that the last level takes everything
	// left (and any level where the requirement exceeds the remainder
	// becomes the last).
	childSide := math.Sqrt(n.Rect.Width() * n.Rect.Height() / float64(t.Fanout*t.Fanout))
	need, err := budget.MinEpsilon(childSide, rho)
	if err != nil {
		return nil, err
	}
	last := level == t.Height-1 || need >= remaining
	if last {
		n.Eps = remaining
	} else {
		n.Eps = need
	}

	// Slice: columns into fanout strips of ~equal mass, then dice each
	// strip into fanout cells. Splits snap to fine-grid lines.
	colCuts := massQuantileCuts(t.Fanout, colLo, colHi, func(lo, hi int) float64 {
		return p.BlockMass(rowLo, lo, rowHi-rowLo, hi-lo)
	})
	for ci := 0; ci < t.Fanout; ci++ {
		cLo, cHi := colCuts[ci], colCuts[ci+1]
		rowCuts := massQuantileCuts(t.Fanout, rowLo, rowHi, func(lo, hi int) float64 {
			return p.BlockMass(lo, cLo, hi-lo, cHi-cLo)
		})
		for ri := 0; ri < t.Fanout; ri++ {
			var child *Node
			if last {
				// Children of the final step are leaves regardless of the
				// configured height (budget exhausted).
				child = &Node{
					Rect:  rectOf(g, rowCuts[ri], rowCuts[ri+1], cLo, cHi),
					Mass:  p.BlockMass(rowCuts[ri], cLo, rowCuts[ri+1]-rowCuts[ri], cHi-cLo),
					Level: level + 1,
					id:    t.nodes,
				}
				t.nodes++
			} else {
				child, err = t.build(p, level+1, rowCuts[ri], rowCuts[ri+1], cLo, cHi,
					remaining-n.Eps, rho)
				if err != nil {
					return nil, err
				}
			}
			n.Children = append(n.Children, child)
		}
	}
	return n, nil
}

// rectOf converts a fine-grid index range into a spatial rectangle.
func rectOf(g interface {
	CellRect(int) geo.Rect
	Index(int, int) int
}, rowLo, rowHi, colLo, colHi int) geo.Rect {
	lo := g.CellRect(g.Index(rowLo, colLo))
	hi := g.CellRect(g.Index(rowHi-1, colHi-1))
	return geo.Rect{MinX: lo.MinX, MinY: lo.MinY, MaxX: hi.MaxX, MaxY: hi.MaxY}
}

// massQuantileCuts splits the index range [lo, hi) into parts contiguous
// ranges with approximately equal mass (per the supplied range-mass
// function), guaranteeing every part is non-empty. It returns parts+1 cut
// positions starting at lo and ending at hi.
func massQuantileCuts(parts, lo, hi int, mass func(lo, hi int) float64) []int {
	cuts := make([]int, parts+1)
	cuts[0] = lo
	total := mass(lo, hi)
	for i := 1; i < parts; i++ {
		target := total * float64(i) / float64(parts)
		// Binary search the smallest cut with mass(lo, cut) >= target.
		a, b := cuts[i-1]+1, hi-(parts-i) // leave room for remaining parts
		for a < b {
			mid := (a + b) / 2
			if mass(lo, mid) >= target {
				b = mid
			} else {
				a = mid + 1
			}
		}
		cuts[i] = a
	}
	cuts[parts] = hi
	return cuts
}
