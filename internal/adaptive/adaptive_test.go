package adaptive

import (
	"math"
	"math/rand/v2"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/prior"
)

func clusteredPoints(n int, seed uint64) []geo.Point {
	rng := rand.New(rand.NewPCG(seed, 1))
	centers := []geo.Point{{X: 5, Y: 5}, {X: 14, Y: 12}, {X: 8, Y: 17}}
	pts := make([]geo.Point, 0, n)
	region := geo.NewSquare(20)
	for i := 0; i < n; i++ {
		c := centers[rng.IntN(len(centers))]
		pts = append(pts, region.Clamp(geo.Point{
			X: c.X + rng.NormFloat64()*1.2,
			Y: c.Y + rng.NormFloat64()*1.2,
		}))
	}
	return pts
}

func testPrior(t *testing.T, g int, pts []geo.Point) *prior.Prior {
	t.Helper()
	gr, err := grid.New(geo.NewSquare(20), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		return prior.Uniform(gr)
	}
	return prior.FromPoints(gr, pts)
}

func TestBuildTreeValidation(t *testing.T) {
	p := testPrior(t, 64, nil)
	if _, err := BuildTree(nil, 0.5, 2, 2, 0.8); err == nil {
		t.Error("nil prior should error")
	}
	if _, err := BuildTree(p, 0, 2, 2, 0.8); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := BuildTree(p, 0.5, 1, 2, 0.8); err == nil {
		t.Error("fanout 1 should error")
	}
	if _, err := BuildTree(p, 0.5, 2, 0, 0.8); err == nil {
		t.Error("height 0 should error")
	}
	if _, err := BuildTree(p, 0.5, 2, 2, 1.5); err == nil {
		t.Error("rho out of range should error")
	}
	if _, err := BuildTree(p, 0.5, 16, 3, 0.8); err == nil {
		t.Error("16^3 > 64 prior cells should error")
	}
}

// TestTreePartitionInvariants: children tile the parent exactly and node
// masses equal the sum of child masses.
func TestTreePartitionInvariants(t *testing.T) {
	pts := clusteredPoints(5000, 3)
	p := testPrior(t, 128, pts)
	tree, err := BuildTree(p, 1.0, 3, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Children == nil {
			return
		}
		if len(n.Children) != 9 {
			t.Fatalf("node %d has %d children", n.ID(), len(n.Children))
		}
		area, mass := 0.0, 0.0
		for _, c := range n.Children {
			area += c.Rect.Width() * c.Rect.Height()
			mass += c.Mass
			if c.Rect.MinX < n.Rect.MinX-1e-9 || c.Rect.MaxX > n.Rect.MaxX+1e-9 ||
				c.Rect.MinY < n.Rect.MinY-1e-9 || c.Rect.MaxY > n.Rect.MaxY+1e-9 {
				t.Fatalf("child rect %v escapes parent %v", c.Rect, n.Rect)
			}
		}
		if parentArea := n.Rect.Width() * n.Rect.Height(); math.Abs(area-parentArea) > 1e-6*parentArea {
			t.Fatalf("node %d children cover %g of %g area", n.ID(), area, parentArea)
		}
		if math.Abs(mass-n.Mass) > 1e-9 {
			t.Fatalf("node %d children mass %g != node mass %g", n.ID(), mass, n.Mass)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root)
	if tree.Root.Mass < 0.999 {
		t.Errorf("root mass %g want ~1", tree.Root.Mass)
	}
}

// TestTreeMassBalance: sibling masses are roughly equal wherever the prior
// resolution allows (the defining property of the mass-median splits).
func TestTreeMassBalance(t *testing.T) {
	pts := clusteredPoints(20000, 5)
	p := testPrior(t, 128, pts)
	tree, err := BuildTree(p, 1.0, 2, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root
	for i, c := range root.Children {
		if c.Mass < 0.10 || c.Mass > 0.45 {
			t.Errorf("root child %d mass %.3f, want near 0.25 (mass-balanced split)", i, c.Mass)
		}
	}
}

// TestAdaptiveCellsSmallerDowntown: leaves covering the dense cluster are
// smaller than leaves covering empty space.
func TestAdaptiveCellsSmallerDowntown(t *testing.T) {
	pts := clusteredPoints(20000, 7)
	p := testPrior(t, 128, pts)
	tree, err := BuildTree(p, 1.0, 3, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	var denseSide, sparseSide float64
	var denseN, sparseN int
	for _, leaf := range tree.Leaves() {
		side := math.Sqrt(leaf.Rect.Width() * leaf.Rect.Height())
		if leaf.Rect.Contains(geo.Point{X: 5, Y: 5}) || leaf.Rect.Contains(geo.Point{X: 14, Y: 12}) {
			denseSide += side
			denseN++
		}
		if leaf.Rect.Contains(geo.Point{X: 19, Y: 1}) || leaf.Rect.Contains(geo.Point{X: 1, Y: 19}) {
			sparseSide += side
			sparseN++
		}
	}
	if denseN == 0 || sparseN == 0 {
		t.Fatal("test geometry assumption failed")
	}
	if denseSide/float64(denseN) >= sparseSide/float64(sparseN) {
		t.Errorf("dense leaves (%.2f km) not smaller than sparse leaves (%.2f km)",
			denseSide/float64(denseN), sparseSide/float64(sparseN))
	}
}

// TestPathBudgetConservation: every root-to-leaf path consumes exactly eps.
func TestPathBudgetConservation(t *testing.T) {
	pts := clusteredPoints(5000, 9)
	m, err := New(Config{
		Eps: 0.7, Region: geo.NewSquare(20), Fanout: 3, Height: 3,
		Metric: geo.Euclidean, PriorPoints: pts,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 3))
	for i := 0; i < 200; i++ {
		p := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		if got := m.PathBudget(p); math.Abs(got-0.7) > 1e-9 {
			t.Fatalf("path through %v consumes %g, want 0.7", p, got)
		}
	}
}

func TestMechanismValidation(t *testing.T) {
	base := Config{Eps: 0.5, Region: geo.NewSquare(20), Fanout: 3, Metric: geo.Euclidean}
	bad := base
	bad.Region = geo.Rect{}
	if _, err := New(bad, 1); err == nil {
		t.Error("degenerate region should error")
	}
	bad = base
	bad.Metric = geo.Metric(9)
	if _, err := New(bad, 1); err == nil {
		t.Error("bad metric should error")
	}
	bad = base
	bad.Eps = -1
	if _, err := New(bad, 1); err == nil {
		t.Error("negative eps should error")
	}
}

func TestReportDeterministicAndInRegion(t *testing.T) {
	pts := clusteredPoints(3000, 11)
	mk := func() *Mechanism {
		m, err := New(Config{
			Eps: 0.5, Region: geo.NewSquare(20), Fanout: 3,
			Metric: geo.Euclidean, PriorPoints: pts,
		}, 77)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := mk(), mk()
	region := geo.NewSquare(20)
	for i := 0; i < 60; i++ {
		x := pts[i%len(pts)]
		z1, err1 := m1.Report(x)
		z2, err2 := m2.Report(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if z1 != z2 {
			t.Fatalf("report %d diverged: %v vs %v", i, z1, z2)
		}
		if !region.ContainsClosed(z1) {
			t.Fatalf("report %v outside region", z1)
		}
	}
}

func TestPrecomputeAndCache(t *testing.T) {
	pts := clusteredPoints(2000, 13)
	m, err := New(Config{
		Eps: 0.5, Region: geo.NewSquare(20), Fanout: 2, Height: 3,
		Metric: geo.Euclidean, PriorPoints: pts,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Precompute(); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	rng := rand.New(rand.NewPCG(6, 7))
	for i := 0; i < 100; i++ {
		if _, err := m.ReportWith(geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}, rng); err != nil {
			t.Fatal(err)
		}
	}
	if after := m.Stats(); after != before {
		t.Errorf("warm mechanism performed %d extra solves", after-before)
	}
}

// TestAdaptiveUtilityCompetitive: on a strongly clustered prior the
// adaptive mechanism should not lose badly to (and typically beats) the
// uniform-grid flat OPT at the same budget, since its cells are small where
// the queries are.
func TestAdaptiveUtilityCompetitive(t *testing.T) {
	pts := clusteredPoints(20000, 17)
	m, err := New(Config{
		Eps: 0.5, Region: geo.NewSquare(20), Fanout: 3, Height: 2,
		Metric: geo.Euclidean, PriorPoints: pts,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(8, 9))
	loss := 0.0
	const nq = 1500
	for i := 0; i < nq; i++ {
		x := pts[rng.IntN(len(pts))]
		z, err := m.ReportWith(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		loss += x.Dist(z)
	}
	loss /= nq
	// PL at eps=0.5 has mean loss 2/eps = 4 km; the adaptive mechanism must
	// be clearly better on clustered data.
	if loss >= 3.5 {
		t.Errorf("adaptive MSM mean loss %.3f km too high", loss)
	}
	t.Logf("adaptive MSM mean loss %.3f km (mean leaf side %.2f km)", loss, m.MeanLeafSide())
}

// TestMeanLeafSideShrinksWithBudget: more budget affords deeper descents,
// hence finer mass-weighted leaf cells.
func TestMeanLeafSideShrinksWithBudget(t *testing.T) {
	pts := clusteredPoints(10000, 19)
	prev := math.Inf(1)
	for _, eps := range []float64{0.2, 0.8, 3.0} {
		m, err := New(Config{
			Eps: eps, Region: geo.NewSquare(20), Fanout: 3, Height: 3,
			Metric: geo.Euclidean, PriorPoints: pts,
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		side := m.MeanLeafSide()
		if side > prev+1e-9 {
			t.Errorf("eps=%g: mean leaf side %.3f grew (prev %.3f)", eps, side, prev)
		}
		prev = side
	}
}
