package adaptive

import (
	"math"
	"math/rand/v2"
	"testing"

	"geoind/internal/geo"
)

func quadCfg(pts []geo.Point) QuadConfig {
	return QuadConfig{
		Eps:         3.0, // enough for several levels
		Region:      geo.NewSquare(20),
		Metric:      geo.Euclidean,
		PriorPoints: pts,
	}
}

func TestNewQuadValidation(t *testing.T) {
	base := quadCfg(nil)
	mods := []func(*QuadConfig){
		func(c *QuadConfig) { c.Eps = 0 },
		func(c *QuadConfig) { c.Region = geo.Rect{} },
		func(c *QuadConfig) { c.MassThreshold = 1.5 },
		func(c *QuadConfig) { c.MaxDepth = 13 },
		func(c *QuadConfig) { c.Rho = 2 },
		func(c *QuadConfig) { c.Metric = geo.Metric(9) },
		func(c *QuadConfig) { c.PriorGranularity = 100; c.MaxDepth = 5 }, // 100 % 32 != 0
	}
	for i, mod := range mods {
		cfg := base
		mod(&cfg)
		if _, err := NewQuad(cfg, 1); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := NewQuad(base, 1); err != nil {
		t.Fatalf("base config: %v", err)
	}
}

// TestQuadDepthAdaptsToDensity: the tree is deeper over the dense cluster
// than over empty space.
func TestQuadDepthAdaptsToDensity(t *testing.T) {
	pts := clusteredPoints(20000, 3)
	m, err := NewQuad(quadCfg(pts), 1)
	if err != nil {
		t.Fatal(err)
	}
	dense := m.DepthAt(geo.Point{X: 5, Y: 5})   // cluster center
	sparse := m.DepthAt(geo.Point{X: 19, Y: 1}) // empty corner
	if dense <= sparse {
		t.Errorf("dense depth %d not greater than sparse depth %d", dense, sparse)
	}
	if m.MaxDepthUsed() < 2 {
		t.Errorf("tree too shallow: %d", m.MaxDepthUsed())
	}
	t.Logf("depth at cluster %d, at empty corner %d, max %d, nodes %d",
		dense, sparse, m.MaxDepthUsed(), m.NumNodes())
}

// TestQuadBudgetBoundPerPath: the budget consumed along any root-leaf path
// never exceeds eps.
func TestQuadBudgetBoundPerPath(t *testing.T) {
	pts := clusteredPoints(10000, 5)
	cfg := quadCfg(pts)
	cfg.Eps = 1.2
	m, err := NewQuad(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *quadNode, spent float64)
	walk = func(n *quadNode, spent float64) {
		spent += n.eps
		if spent > cfg.Eps+1e-9 {
			t.Fatalf("path through node %d spends %g > %g", n.id, spent, cfg.Eps)
		}
		for _, c := range n.children {
			walk(c, spent)
		}
	}
	walk(m.root, 0)
}

// TestQuadPartitionInvariant: children exactly tile their parent and carry
// its mass.
func TestQuadPartitionInvariant(t *testing.T) {
	pts := clusteredPoints(5000, 7)
	m, err := NewQuad(quadCfg(pts), 1)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *quadNode)
	walk = func(n *quadNode) {
		if n.children == nil {
			return
		}
		if len(n.children) != 4 {
			t.Fatalf("node %d has %d children", n.id, len(n.children))
		}
		area, mass := 0.0, 0.0
		for _, c := range n.children {
			area += c.rect.Width() * c.rect.Height()
			mass += c.mass
		}
		pArea := n.rect.Width() * n.rect.Height()
		if math.Abs(area-pArea) > 1e-6*pArea {
			t.Fatalf("node %d: children area %g vs %g", n.id, area, pArea)
		}
		if math.Abs(mass-n.mass) > 1e-9 {
			t.Fatalf("node %d: children mass %g vs %g", n.id, mass, n.mass)
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(m.root)
}

func TestQuadReportDeterministicAndInRegion(t *testing.T) {
	pts := clusteredPoints(3000, 9)
	mk := func() *QuadMechanism {
		m, err := NewQuad(quadCfg(pts), 11)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := mk(), mk()
	region := geo.NewSquare(20)
	for i := 0; i < 50; i++ {
		x := pts[i%len(pts)]
		z1, err1 := m1.Report(x)
		z2, err2 := m2.Report(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if z1 != z2 {
			t.Fatalf("report %d diverged", i)
		}
		if !region.ContainsClosed(z1) {
			t.Fatalf("report %v outside region", z1)
		}
	}
}

func TestQuadPrecomputeAndUtility(t *testing.T) {
	pts := clusteredPoints(20000, 13)
	cfg := quadCfg(pts)
	cfg.Eps = 2.0
	m, err := NewQuad(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Precompute(); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	rng := rand.New(rand.NewPCG(6, 7))
	loss := 0.0
	const nq = 1000
	for i := 0; i < nq; i++ {
		x := pts[rng.IntN(len(pts))]
		z, err := m.ReportWith(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		loss += x.Dist(z)
	}
	if m.Stats() != before {
		t.Errorf("warm quadtree performed %d extra solves", m.Stats()-before)
	}
	loss /= nq
	// The quadtree's 2x2 fanout is budget-hungry: each resolution doubling
	// costs a full Problem-1 level, so at moderate budgets it trails the
	// wider-fanout mechanisms (an honest finding recorded in
	// EXPERIMENTS.md). It must still be far more informative than blind
	// guessing: the prior medoid alone gives ~5 km mean loss on this
	// workload.
	if loss >= 3.0 {
		t.Errorf("quadtree mean loss %.3f km not informative", loss)
	}
	t.Logf("quadtree mean loss %.3f km (nodes %d, max depth %d)", loss, m.NumNodes(), m.MaxDepthUsed())
}
