package adaptive

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"geoind/internal/channel"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/lp"
	"geoind/internal/opt"
	"geoind/internal/prior"
)

// Store namespaces for the two adaptive index families sharing a channel
// store, and the PCG stream salt of the lock-free sampling path (distinct
// from internal/core's so per-query streams never overlap between
// mechanisms built from one seed).
const (
	kdNamespace      = "adaptive"
	quadNamespace    = "quad"
	reportStreamSalt = 0xbb67ae8584caa73b
)

// Config parameterizes the adaptive multi-step mechanism.
type Config struct {
	// Eps is the total privacy budget (> 0).
	Eps float64
	// Region is the square planar domain.
	Region geo.Rect
	// Fanout is the number of slices per axis at each node (children =
	// Fanout^2), in [2, 16].
	Fanout int
	// Height is the maximum tree depth; paths may terminate earlier when
	// the budget runs out. 0 means a default of 3.
	Height int
	// Rho is the per-step same-cell probability target; 0 means 0.8.
	Rho float64
	// Metric is the utility metric dQ.
	Metric geo.Metric
	// PriorPoints builds the adversarial prior (required: the whole point
	// of the adaptive index is prior skew; an empty set falls back to a
	// uniform prior, which degenerates to an equal-area partition).
	PriorPoints []geo.Point
	// PriorGranularity is the fine grid resolution the prior (and hence the
	// split coordinates) use; 0 means 128.
	PriorGranularity int
	// LP configures the per-node solves.
	LP *lp.IPMOptions
	// Workers bounds pipeline parallelism (LP block solves, Precompute
	// fan-out, and — when > 1 — lock-free per-query sampling streams).
	// 0 or 1 keeps the historical sequential behaviour; negative means one
	// worker per CPU.
	Workers int
	// Store optionally injects a shared channel store; nil means private.
	Store *channel.Store
	// Sampler selects the warm-path sampling implementation (see
	// core.Config.Sampler); the zero value is the bit-compatible cumulative
	// binary search.
	Sampler opt.SamplerKind
	// PruneMass, when > 0, compacts each solved node channel with the
	// eps-preserving pruning of opt.PointChannel.Prune (verifier-gated,
	// dense fallback on failure). Must be in [0, opt.MaxPruneMass). Pruned
	// channels carry a store-key variant so they never alias dense ones.
	PruneMass float64
}

// Mechanism is the adaptive multi-step mechanism.
type Mechanism struct {
	cfg  Config
	tree *Tree
	fine *prior.Prior
	seed uint64

	store     *channel.Store
	priorHash uint64
	variant   uint64 // store-key variant; 0 means unset (dense)

	solves         atomic.Int64
	prunedChannels atomic.Int64
	pruneFallbacks atomic.Int64
	queryIdx       atomic.Uint64

	rng   *rand.Rand
	rngMu sync.Mutex
}

// New builds the adaptive mechanism: it constructs the fine prior, grows the
// mass-balanced tree with per-node budget assignment, and prepares lazy
// channel solving.
func New(cfg Config, seed uint64) (*Mechanism, error) {
	if cfg.Rho == 0 {
		cfg.Rho = 0.8
	}
	if cfg.Height == 0 {
		cfg.Height = 3
	}
	if cfg.PriorGranularity == 0 {
		cfg.PriorGranularity = 128
	}
	if cfg.Region.Width() <= 0 || cfg.Region.Height() <= 0 {
		return nil, fmt.Errorf("adaptive: degenerate region %v", cfg.Region)
	}
	if !cfg.Metric.Valid() {
		return nil, fmt.Errorf("adaptive: unknown metric %v", cfg.Metric)
	}
	if cfg.PruneMass != 0 && (!(cfg.PruneMass > 0) || cfg.PruneMass >= opt.MaxPruneMass) {
		return nil, fmt.Errorf("adaptive: prune mass %g outside [0, %g)", cfg.PruneMass, opt.MaxPruneMass)
	}
	fineGrid, err := grid.New(cfg.Region, cfg.PriorGranularity)
	if err != nil {
		return nil, fmt.Errorf("adaptive: %w", err)
	}
	var fine *prior.Prior
	if len(cfg.PriorPoints) > 0 {
		fine = prior.FromPoints(fineGrid, cfg.PriorPoints)
	} else {
		fine = prior.Uniform(fineGrid)
	}
	tree, err := BuildTree(fine, cfg.Eps, cfg.Fanout, cfg.Height, cfg.Rho)
	if err != nil {
		return nil, err
	}
	m := &Mechanism{
		cfg:   cfg,
		tree:  tree,
		fine:  fine,
		seed:  seed,
		rng:   rand.New(rand.NewPCG(seed, 0xada9717e)),
		store: cfg.Store,
	}
	if m.store == nil {
		m.store = channel.New(channel.Options{})
	}
	h := channel.NewHasher()
	h.Int(cfg.Fanout)
	h.Int(cfg.Height)
	h.Float64(cfg.Rho)
	h.Float64(cfg.Region.MinX)
	h.Float64(cfg.Region.MinY)
	h.Float64(cfg.Region.MaxX)
	h.Float64(cfg.Region.MaxY)
	h.Floats(fine.Weights())
	m.priorHash = h.Sum()
	if cfg.PruneMass > 0 {
		vh := channel.NewHasher()
		vh.Uint64(math.Float64bits(cfg.PruneMass))
		m.variant = vh.Sum()
	}
	return m, nil
}

// Tree exposes the underlying partition (read-only).
func (m *Mechanism) Tree() *Tree { return m.tree }

// Epsilon returns the total budget.
func (m *Mechanism) Epsilon() float64 { return m.cfg.Eps }

// Stats returns the number of LP solves performed so far (maintained
// atomically, safe under concurrent load).
func (m *Mechanism) Stats() (solves int) {
	return int(m.solves.Load())
}

// StoreStats returns a snapshot of the channel store's counters.
func (m *Mechanism) StoreStats() channel.Stats { return m.store.Stats() }

// DirCacheStats returns the persistent backing cache's counters when one is
// configured; ok is false otherwise.
func (m *Mechanism) DirCacheStats() (channel.DirStats, bool) { return m.store.BackingStats() }

// SamplerInfo reports the warm-path sampling configuration and the pruning
// counters (channels compacted / dense fallbacks after a failed prune).
func (m *Mechanism) SamplerInfo() (kind string, pruneMass float64, pruned, fallbacks int64) {
	return m.cfg.Sampler.String(), m.cfg.PruneMass, m.prunedChannels.Load(), m.pruneFallbacks.Load()
}

// sample draws one descent step from ch with the configured sampler kind.
func (m *Mechanism) sample(ch *opt.PointChannel, xi int, rng *rand.Rand) int {
	return ch.Sampler(m.cfg.Sampler).Sample(xi, rng)
}

// SyncStore blocks until the store's write-behind persistence goroutines
// (if a backing cache is configured) have drained.
func (m *Mechanism) SyncStore() { m.store.Sync() }

// lpOpts resolves interior-point options, defaulting the worker count to
// the pipeline's.
func (m *Mechanism) lpOpts() *lp.IPMOptions {
	var o lp.IPMOptions
	if m.cfg.LP != nil {
		o = *m.cfg.LP
	}
	if o.Workers == 0 {
		o.Workers = m.cfg.Workers
	}
	return &o
}

// channel returns the OPT channel of a node through the singleflight store:
// concurrent requests for one node perform exactly one solve.
func (m *Mechanism) channel(ctx context.Context, n *Node) (*opt.PointChannel, error) {
	key := channel.NewKey(kdNamespace, 0, n.ID(), n.Eps, int(m.cfg.Metric), m.priorHash)
	if m.variant != 0 {
		key = key.WithVariant(m.variant)
	}
	v, _, err := m.store.GetOrComputeCtx(ctx, key, func(solveCtx context.Context) (any, error) {
		return m.solveChannel(solveCtx, n)
	})
	if err != nil {
		return nil, err
	}
	// Persisted snapshots are checksum- and key-verified, but never trust a
	// foreign backing value over a fresh solve if the shape is wrong.
	ch, ok := v.(*opt.PointChannel)
	if !ok || ch.N() != len(n.Children) {
		return m.solveChannel(ctx, n)
	}
	return ch, nil
}

// solveChannel performs the LP solve for one inner node.
func (m *Mechanism) solveChannel(ctx context.Context, n *Node) (*opt.PointChannel, error) {
	masses := n.ChildMasses()
	total := 0.0
	for _, v := range masses {
		total += v
	}
	if total == 0 {
		for i := range masses {
			masses[i] = 1
		}
	}
	ch, err := opt.BuildPointsCtx(ctx, n.Eps, n.Centers(), masses, m.cfg.Metric, &opt.Options{LP: m.lpOpts()})
	if err != nil {
		return nil, fmt.Errorf("adaptive: node %d: %w", n.ID(), err)
	}
	m.solves.Add(1)
	if m.cfg.PruneMass > 0 {
		if pruned, perr := ch.Prune(m.cfg.PruneMass, masses); perr == nil {
			ch = pruned
			m.prunedChannels.Add(1)
		} else {
			// Keep dense: the verifier gate inside Prune rejected the
			// compact form, and pruning is never a correctness dependency.
			m.pruneFallbacks.Add(1)
		}
	}
	return ch, nil
}

// Report sanitizes x with the mechanism's seeded randomness. Workers <= 1
// reproduces the historical shared-RNG stream under a mutex; Workers > 1
// gives each query its own PCG stream split by arrival index, so concurrent
// reports never serialize on a lock.
func (m *Mechanism) Report(x geo.Point) (geo.Point, error) {
	return m.ReportCtx(context.Background(), x)
}

// ReportCtx is Report under a context: canceling ctx aborts an in-flight
// cold descent promptly (abandoning shared solves, not killing them while
// other waiters remain). With a Background context the output stream is
// bit-identical to Report.
func (m *Mechanism) ReportCtx(ctx context.Context, x geo.Point) (geo.Point, error) {
	if channel.Workers(m.cfg.Workers) <= 1 {
		m.rngMu.Lock()
		defer m.rngMu.Unlock()
		return m.reportWithCtx(ctx, x, m.rng)
	}
	qi := m.queryIdx.Add(1) - 1
	rng := rand.New(rand.NewPCG(m.seed, reportStreamSalt^qi))
	return m.reportWithCtx(ctx, x, rng)
}

// ReportBatch sanitizes a slice of locations in one call and returns the
// results in input order. Workers <= 1 holds the shared RNG mutex once for
// the whole batch and processes points sequentially (bit-identical to a
// Report loop); Workers > 1 reserves a contiguous block of query indices and
// fans the points across the worker pool, each point drawing from the PCG
// stream of its own index, so the output is independent of the worker count
// and matches a sequential Report loop in the same arrival order.
func (m *Mechanism) ReportBatch(xs []geo.Point) ([]geo.Point, error) {
	return m.ReportBatchCtx(context.Background(), xs)
}

// ReportBatchCtx is ReportBatch under a context: the pooled fan-out polls
// ctx before every point, so a cancel drains the workers promptly and the
// call returns ctx.Err(). Uncanceled output is bit-identical to ReportBatch.
func (m *Mechanism) ReportBatchCtx(ctx context.Context, xs []geo.Point) ([]geo.Point, error) {
	out := make([]geo.Point, len(xs))
	if len(xs) == 0 {
		return out, nil
	}
	workers := channel.Workers(m.cfg.Workers)
	if workers <= 1 {
		m.rngMu.Lock()
		defer m.rngMu.Unlock()
		if err := m.reportBatchSeq(ctx, xs, out, m.rng); err != nil {
			return nil, err
		}
		return out, nil
	}
	base := m.queryIdx.Add(uint64(len(xs))) - uint64(len(xs))
	if err := channel.ForEachCtx(ctx, workers, len(xs), func(i int) error {
		rng := rand.New(rand.NewPCG(m.seed, reportStreamSalt^(base+uint64(i))))
		z, err := m.reportWithCtx(ctx, xs[i], rng)
		if err != nil {
			return err
		}
		out[i] = z
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// reportBatchSeq is the sequential batch descent: points in input order, all
// samples drawn from rng, bit-identical to a ReportWith loop. Each inner
// node's channel is fetched from the store once per batch and memoized by
// node — the fetch consumes no randomness, so the draw stream is unchanged.
func (m *Mechanism) reportBatchSeq(ctx context.Context, xs, out []geo.Point, rng *rand.Rand) error {
	cache := make(map[*Node]*opt.PointChannel)
	cancelable := ctx.Done() != nil
	for i, x := range xs {
		// Poll with a stride: one warm descent is a few hundred ns, so a
		// 32-point stride still cancels within ~10µs while keeping the
		// ctx.Err() cost off the per-point hot path.
		if cancelable && i&31 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		x = m.cfg.Region.Clamp(x)
		node := m.tree.Root
		for node.Children != nil {
			ch, ok := cache[node]
			if !ok {
				var err error
				ch, err = m.channel(ctx, node)
				if err != nil {
					return err
				}
				cache[node] = ch
			}
			xi := node.ChildContaining(x)
			if xi < 0 {
				xi = rng.IntN(len(node.Children))
			}
			node = node.Children[m.sample(ch, xi, rng)]
		}
		out[i] = node.Rect.Center()
	}
	return nil
}

// ReportWith descends the tree: at each inner node it runs the node's OPT
// channel on x's child cell (or a uniformly random child when x lies outside
// the node, as in Algorithm 1 line 10) and recurses into the selected child;
// the final selected cell's center is reported.
func (m *Mechanism) ReportWith(x geo.Point, rng *rand.Rand) (geo.Point, error) {
	return m.reportWithCtx(context.Background(), x, rng)
}

func (m *Mechanism) reportWithCtx(ctx context.Context, x geo.Point, rng *rand.Rand) (geo.Point, error) {
	x = m.cfg.Region.Clamp(x)
	node := m.tree.Root
	for node.Children != nil {
		ch, err := m.channel(ctx, node)
		if err != nil {
			return geo.Point{}, err
		}
		xi := node.ChildContaining(x)
		if xi < 0 {
			xi = rng.IntN(len(node.Children))
		}
		node = node.Children[m.sample(ch, xi, rng)]
	}
	return node.Rect.Center(), nil
}

// Precompute eagerly solves every inner node's channel, fanning the
// independent solves out across up to Workers goroutines.
func (m *Mechanism) Precompute() error {
	return m.PrecomputeCtx(context.Background())
}

// PrecomputeCtx is Precompute under a context: the fan-out polls ctx before
// each solve and stops issuing new ones once canceled. Solved channels stay
// in the store.
func (m *Mechanism) PrecomputeCtx(ctx context.Context) error {
	var inner []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Children == nil {
			return
		}
		inner = append(inner, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(m.tree.Root)
	return channel.ForEachCtx(ctx, channel.Workers(m.cfg.Workers), len(inner), func(i int) error {
		_, err := m.channel(ctx, inner[i])
		return err
	})
}

// PathBudget returns the total budget consumed along the root path leading
// to the leaf containing p (every complete path consumes exactly Eps; the
// method exists so tests can verify that invariant).
func (m *Mechanism) PathBudget(p geo.Point) float64 {
	p = m.cfg.Region.Clamp(p)
	total := 0.0
	node := m.tree.Root
	for node.Children != nil {
		total += node.Eps
		xi := node.ChildContaining(p)
		if xi < 0 {
			xi = 0
		}
		node = node.Children[xi]
	}
	return total
}

// MeanLeafSide returns the prior-mass-weighted average leaf cell side
// length, a compactness measure of the partition (smaller where it matters
// means better expected utility).
func (m *Mechanism) MeanLeafSide() float64 {
	total, mass := 0.0, 0.0
	for _, leaf := range m.tree.Leaves() {
		side := math.Sqrt(leaf.Rect.Width() * leaf.Rect.Height())
		total += leaf.Mass * side
		mass += leaf.Mass
	}
	if mass == 0 {
		return 0
	}
	return total / mass
}
