package trajectory

import (
	"math"
	"math/rand/v2"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/laplace"
)

// plReporter adapts the planar Laplace mechanism for trace tests.
type plReporter struct{ m *laplace.Mechanism }

func (p plReporter) Report(x geo.Point) (geo.Point, error) { return p.m.Sample(x), nil }
func (p plReporter) Epsilon() float64                      { return p.m.Epsilon() }

func newPL(t *testing.T, eps float64, seed uint64) Reporter {
	t.Helper()
	m, err := laplace.New(eps, rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return plReporter{m}
}

func genCfg(seed uint64) GenConfig {
	return GenConfig{
		Region:     geo.NewSquare(20),
		Anchors:    []geo.Point{{X: 5, Y: 5}, {X: 15, Y: 15}, {X: 10, Y: 3}},
		Steps:      200,
		StayProb:   0.85,
		LocalSigma: 0.05,
		JumpProb:   0.05,
		WalkSigma:  0.5,
		Seed:       seed,
	}
}

func TestGenerateValidation(t *testing.T) {
	good := genCfg(1)
	mods := []func(*GenConfig){
		func(c *GenConfig) { c.Region = geo.Rect{} },
		func(c *GenConfig) { c.Anchors = nil },
		func(c *GenConfig) { c.Steps = 0 },
		func(c *GenConfig) { c.StayProb = 0.9; c.JumpProb = 0.5 },
		func(c *GenConfig) { c.StayProb = -0.1 },
		func(c *GenConfig) { c.LocalSigma = 0 },
		func(c *GenConfig) { c.WalkSigma = 0 },
	}
	for i, mod := range mods {
		cfg := good
		mod(&cfg)
		if _, err := Generate(1, cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := Generate(0, good); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestGenerateShape(t *testing.T) {
	traces, err := Generate(5, genCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 5 {
		t.Fatalf("traces %d", len(traces))
	}
	region := geo.NewSquare(20)
	for _, tr := range traces {
		if len(tr.Points) != 200 {
			t.Fatalf("user %d has %d points", tr.User, len(tr.Points))
		}
		for _, p := range tr.Points {
			if !region.Contains(p) {
				t.Fatalf("point %v outside region", p)
			}
		}
	}
	// Determinism.
	again, err := Generate(5, genCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	for u := range traces {
		for i := range traces[u].Points {
			if traces[u].Points[i] != again[u].Points[i] {
				t.Fatal("generation not deterministic")
			}
		}
	}
	// Temporal correlation: consecutive step distances are mostly tiny.
	small := 0
	total := 0
	for _, tr := range traces {
		for i := 1; i < len(tr.Points); i++ {
			if tr.Points[i-1].Dist(tr.Points[i]) < 0.3 {
				small++
			}
			total++
		}
	}
	if frac := float64(small) / float64(total); frac < 0.7 {
		t.Errorf("only %.2f of steps are dwell-scale; traces not correlated", frac)
	}
}

func TestIndependentAccounting(t *testing.T) {
	mech := newPL(t, 0.2, 3)
	traces, err := Generate(1, genCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	steps, err := Independent(mech, traces[0].Points)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(traces[0].Points, steps)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Steps != 200 || sum.Fresh != 200 {
		t.Errorf("steps=%d fresh=%d", sum.Steps, sum.Fresh)
	}
	if math.Abs(sum.TotalSpent-200*0.2) > 1e-9 {
		t.Errorf("spent %g want 40", sum.TotalSpent)
	}
	if sum.MeanLoss <= 0 {
		t.Errorf("mean loss %g", sum.MeanLoss)
	}
}

func TestPredictiveValidation(t *testing.T) {
	mech := newPL(t, 0.2, 3)
	rng := rand.New(rand.NewPCG(1, 1))
	pts := []geo.Point{{X: 1, Y: 1}}
	if _, err := Predictive(mech, pts, PredictiveConfig{Theta: 0, EpsTest: 0.01}, rng); err == nil {
		t.Error("theta=0 should fail")
	}
	if _, err := Predictive(mech, pts, PredictiveConfig{Theta: 1, EpsTest: 0}, rng); err == nil {
		t.Error("epsTest=0 should fail")
	}
	if _, err := Predictive(mech, pts, PredictiveConfig{Theta: 1, EpsTest: 0.01}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

// TestPredictiveAccounting: each step costs either epsTest (prediction) or
// epsTest+epsReport (fresh, after the first).
func TestPredictiveAccounting(t *testing.T) {
	mech := newPL(t, 0.2, 5)
	traces, err := Generate(1, genCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PredictiveConfig{Theta: 1.0, EpsTest: 0.02}
	steps, err := Predictive(mech, traces[0].Points, cfg, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range steps {
		switch {
		case i == 0:
			if !st.Fresh || math.Abs(st.Spent-0.2) > 1e-12 {
				t.Fatalf("first step %+v", st)
			}
		case st.Fresh:
			if math.Abs(st.Spent-0.22) > 1e-12 {
				t.Fatalf("fresh step %d spent %g want 0.22", i, st.Spent)
			}
		default:
			if math.Abs(st.Spent-0.02) > 1e-12 {
				t.Fatalf("predicted step %d spent %g want 0.02", i, st.Spent)
			}
		}
	}
}

// TestPredictiveSavesBudgetOnDwellingUser: on strongly correlated traces the
// predictive mechanism spends far less than independent reporting at
// comparable utility.
func TestPredictiveSavesBudgetOnDwellingUser(t *testing.T) {
	cfg := genCfg(13)
	cfg.StayProb = 0.95
	cfg.JumpProb = 0.02
	traces, err := Generate(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Self-consistent parameters: theta must sit a few test-noise scales
	// (1/epsTest = 2 km) above the typical distance between the true
	// location and the stale release (~1 km of PL noise at eps=2), or
	// spurious test failures erase the savings.
	pcfg := PredictiveConfig{Theta: 4.0, EpsTest: 0.5}
	for _, tr := range traces {
		ind, err := Independent(newPL(t, 2.0, 21), tr.Points)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := Predictive(newPL(t, 2.0, 22), tr.Points, pcfg, rand.New(rand.NewPCG(3, 3)))
		if err != nil {
			t.Fatal(err)
		}
		indSum, _ := Summarize(tr.Points, ind)
		predSum, _ := Summarize(tr.Points, pred)
		if predSum.TotalSpent > indSum.TotalSpent/2 {
			t.Errorf("user %d: predictive spent %.2f, not far below independent %.2f",
				tr.User, predSum.TotalSpent, indSum.TotalSpent)
		}
		// Utility should not collapse: re-released predictions are near the
		// dwell anchor, so the mean loss stays within a small factor of the
		// independent mechanism's.
		if predSum.MeanLoss > 3*indSum.MeanLoss+1 {
			t.Errorf("user %d: predictive loss %.2f vs independent %.2f",
				tr.User, predSum.MeanLoss, indSum.MeanLoss)
		}
	}
}

// TestPredictiveDetectsMovement: a teleporting user forces fresh reports.
func TestPredictiveDetectsMovement(t *testing.T) {
	// Alternate between two far-apart anchors every step.
	pts := make([]geo.Point, 40)
	for i := range pts {
		if i%2 == 0 {
			pts[i] = geo.Point{X: 2, Y: 2}
		} else {
			pts[i] = geo.Point{X: 18, Y: 18}
		}
	}
	// EpsTest=0.5 keeps the test noise scale at 2 km, far below the 22 km
	// jumps, so essentially every test must fail. (At tiny epsTest the test
	// becomes noisy and erroneous passes are expected — that is the
	// privacy/accuracy trade-off of the test itself.)
	steps, err := Predictive(newPL(t, 0.5, 31), pts, PredictiveConfig{Theta: 1.0, EpsTest: 0.5},
		rand.New(rand.NewPCG(4, 4)))
	if err != nil {
		t.Fatal(err)
	}
	fresh := 0
	for _, st := range steps {
		if st.Fresh {
			fresh++
		}
	}
	if fresh < 38 {
		t.Errorf("only %d/40 fresh reports for a teleporting user", fresh)
	}
}

func TestSummarizeValidation(t *testing.T) {
	if _, err := Summarize(make([]geo.Point, 3), make([]Step, 2)); err == nil {
		t.Error("length mismatch should error")
	}
	s, err := Summarize(nil, nil)
	if err != nil || s.Steps != 0 {
		t.Errorf("empty summary: %+v err=%v", s, err)
	}
}

// TestLaplace1D: the noise has the right scale and is symmetric.
func TestLaplace1D(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	const n = 200000
	scale := 2.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := laplace1D(rng, scale)
		sum += v
		sumAbs += math.Abs(v)
	}
	if math.Abs(sum/n) > 0.05 {
		t.Errorf("mean %g want ~0", sum/n)
	}
	// E|X| = scale for Laplace.
	if math.Abs(sumAbs/n-scale) > 0.05 {
		t.Errorf("mean |X| = %g want %g", sumAbs/n, scale)
	}
}
