// Empirical adversary-error metric, following "On the Anonymization of
// Differentially Private Location Obfuscation" (PAPERS.md): privacy is
// measured not by the mechanism's parameters but by how well an optimal-ish
// Bayesian attacker localizes the user from the released trace. The attacker
// here knows the mobility prior empirically (the distribution of true
// locations over the evaluation traces), models the release channel as the
// planar-Laplace likelihood exp(-eps*d), and estimates each true point by
// the posterior mean. The metric is the mean Euclidean distance between true
// points and those estimates — larger is better for the user. Re-released
// predictions (memo hits) give the attacker repeated observations of one
// release, which is exactly the temporal-correlation leakage the metric is
// meant to surface; running it over independent vs predictive runs answers
// whether the budget savings cost localization privacy.
package trajectory

import (
	"fmt"
	"math"

	"geoind/internal/geo"
)

// AdversaryConfig parameterizes the empirical Bayesian attacker.
type AdversaryConfig struct {
	// Region is the attack domain; the posterior is computed over a
	// Granularity x Granularity grid of its cells.
	Region geo.Rect
	// Granularity is the posterior grid resolution per axis (e.g. 32).
	Granularity int
	// Eps calibrates the attacker's likelihood model exp(-Eps * d(c, z)).
	// Use the mechanism's per-report epsilon: the attacker knows the
	// system's parameters (no security through obscurity).
	Eps float64
}

// Validate checks the configuration.
func (c AdversaryConfig) Validate() error {
	switch {
	case c.Region.Width() <= 0 || c.Region.Height() <= 0:
		return fmt.Errorf("trajectory: adversary: degenerate region")
	case c.Granularity < 2:
		return fmt.Errorf("trajectory: adversary: granularity %d < 2", c.Granularity)
	case !(c.Eps > 0) || math.IsInf(c.Eps, 0):
		return fmt.Errorf("trajectory: adversary: eps %g must be positive and finite", c.Eps)
	}
	return nil
}

// EmpiricalAdversaryError runs the posterior-mean attacker over released
// runs and returns the mean localization error in km. traces[i] are the
// true points of run i; runs[i] the corresponding released steps. The prior
// is estimated from all true points (the attacker has population-level
// mobility knowledge), with add-one smoothing so unvisited cells keep
// nonzero mass.
func EmpiricalAdversaryError(cfg AdversaryConfig, traces [][]geo.Point, runs [][]Step) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(traces) != len(runs) {
		return 0, fmt.Errorf("trajectory: adversary: %d traces vs %d runs", len(traces), len(runs))
	}
	g := cfg.Granularity
	cellW := cfg.Region.Width() / float64(g)
	cellH := cfg.Region.Height() / float64(g)

	centers := make([]geo.Point, g*g)
	prior := make([]float64, g*g)
	for i := range prior {
		prior[i] = 1 // add-one smoothing
	}
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			centers[r*g+c] = geo.Point{
				X: cfg.Region.MinX + (float64(c)+0.5)*cellW,
				Y: cfg.Region.MinY + (float64(r)+0.5)*cellH,
			}
		}
	}
	cellOf := func(p geo.Point) int {
		q := cfg.Region.Clamp(p)
		c := int((q.X - cfg.Region.MinX) / cellW)
		r := int((q.Y - cfg.Region.MinY) / cellH)
		if c >= g {
			c = g - 1
		}
		if r >= g {
			r = g - 1
		}
		return r*g + c
	}
	steps := 0
	for i, trace := range traces {
		if len(trace) != len(runs[i]) {
			return 0, fmt.Errorf("trajectory: adversary: run %d has %d steps for %d true points",
				i, len(runs[i]), len(trace))
		}
		steps += len(trace)
		for _, x := range trace {
			prior[cellOf(x)]++
		}
	}
	if steps == 0 {
		return 0, fmt.Errorf("trajectory: adversary: no steps to attack")
	}

	var total float64
	for i, trace := range traces {
		for t, x := range trace {
			z := runs[i][t].Released
			// Posterior over cells given the released point; the posterior
			// mean minimizes expected squared error and is the standard
			// remap attack for Euclidean loss.
			var wSum, ex, ey float64
			for ci, center := range centers {
				w := prior[ci] * math.Exp(-cfg.Eps*center.Dist(z))
				wSum += w
				ex += w * center.X
				ey += w * center.Y
			}
			est := geo.Point{X: ex / wSum, Y: ey / wSum}
			total += x.Dist(est)
		}
	}
	return total / float64(steps), nil
}
