package trajectory

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"geoind/internal/geo"
)

// recordingBudget is a Budget that tracks net charged budget and can be
// armed to deny spends.
type recordingBudget struct {
	charged float64
	deny    bool
}

var errDenied = errors.New("denied")

func (b *recordingBudget) Spend(eps float64) error {
	if b.deny {
		return errDenied
	}
	b.charged += eps
	return nil
}

func (b *recordingBudget) Refund(eps float64) { b.charged -= eps }

// failingReporter errors on Report after optionally succeeding n times.
type failingReporter struct{ eps float64 }

func (f failingReporter) Report(geo.Point) (geo.Point, error) {
	return geo.Point{}, errors.New("mechanism down")
}
func (f failingReporter) Epsilon() float64 { return f.eps }

// TestStepPredictiveMatchesWholeTrace: looping StepPredictive over a trace
// must be bit-identical to the whole-trace Predictive (same rng consumption,
// same costs, same releases).
func TestStepPredictiveMatchesWholeTrace(t *testing.T) {
	traces, err := Generate(2, genCfg(17))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PredictiveConfig{Theta: 2.0, EpsTest: 0.1}
	for _, tr := range traces {
		whole, err := Predictive(newPL(t, 1.0, 51), tr.Points, cfg, rand.New(rand.NewPCG(5, 5)))
		if err != nil {
			t.Fatal(err)
		}
		mech := newPL(t, 1.0, 51)
		rng := rand.New(rand.NewPCG(5, 5))
		var st State
		for i, x := range tr.Points {
			step, next, err := StepPredictive(mech, Unmetered{}, st, x, cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			st = next
			if step != whole[i] {
				t.Fatalf("step %d: stepwise %+v != whole-trace %+v", i, step, whole[i])
			}
		}
	}
}

func TestStepPredictiveBudgetAccounting(t *testing.T) {
	mech := newPL(t, 1.0, 61)
	cfg := PredictiveConfig{Theta: 2.0, EpsTest: 0.25}
	rng := rand.New(rand.NewPCG(6, 6))
	b := &recordingBudget{}

	// First step: no prior release, charges exactly epsReport.
	step, st, err := StepPredictive(mech, b, State{}, geo.Point{X: 5, Y: 5}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasRelease || !step.Fresh || math.Abs(b.charged-1.0) > 1e-12 {
		t.Fatalf("first step: %+v charged=%g", step, b.charged)
	}

	// Subsequent steps: net charge always equals the step's Spent.
	for i := 0; i < 50; i++ {
		before := b.charged
		step, st, err = StepPredictive(mech, b, st, geo.Point{X: 5, Y: 5}, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs((b.charged-before)-step.Spent) > 1e-12 {
			t.Fatalf("step %d: charged %g but Spent %g", i, b.charged-before, step.Spent)
		}
	}

	// Denied budget: nothing charged, state unchanged.
	b.deny = true
	prev := st
	if _, st2, err := StepPredictive(mech, b, st, geo.Point{X: 5, Y: 5}, cfg, rng); err == nil || st2 != prev {
		t.Fatalf("denied spend: err=%v state=%+v", err, st2)
	}
}

// TestStepPredictiveRefundsOnMechanismFailure: when the underlying mechanism
// errors, only the report epsilon is refunded. The private test already ran
// — its outcome is observable no matter how the step ends — so its epsTest
// stays spent; refunding it would hand out free distance probes.
func TestStepPredictiveRefundsOnMechanismFailure(t *testing.T) {
	cfg := PredictiveConfig{Theta: 0.001, EpsTest: 100} // test noise ~0: always fails the test
	rng := rand.New(rand.NewPCG(7, 7))
	b := &recordingBudget{}
	st := State{HasRelease: true, Release: geo.Point{X: 0, Y: 0}}
	_, st2, err := StepPredictive(failingReporter{eps: 1}, b, st, geo.Point{X: 19, Y: 19}, cfg, rng)
	if err == nil {
		t.Fatal("mechanism failure not propagated")
	}
	if math.Abs(b.charged-cfg.EpsTest) > 1e-12 {
		t.Fatalf("net charge %g after failed release, want epsTest %g kept", b.charged, cfg.EpsTest)
	}
	if st2 != st {
		t.Fatalf("state mutated on failure: %+v", st2)
	}

	// First step (no prior release, no test run): the whole charge comes
	// back — nothing was revealed.
	b2 := &recordingBudget{}
	_, _, err = StepPredictive(failingReporter{eps: 1}, b2, State{}, geo.Point{X: 19, Y: 19}, cfg, rng)
	if err == nil {
		t.Fatal("mechanism failure not propagated on first step")
	}
	if math.Abs(b2.charged) > 1e-12 {
		t.Fatalf("net charge %g after failed first release, want 0", b2.charged)
	}
}

// cappedBudget admits spends while the running total stays within limit —
// the shape of a nearly exhausted ledger window.
type cappedBudget struct {
	charged float64
	limit   float64
}

func (b *cappedBudget) Spend(eps float64) error {
	if b.charged+eps > b.limit {
		return errDenied
	}
	b.charged += eps
	return nil
}

func (b *cappedBudget) Refund(eps float64) { b.charged -= eps }

// TestStepPredictiveKeepsEpsTestOnDeniedReport: when the test fails and the
// follow-up report spend is denied, the epsTest must stay spent. The denial
// itself tells the caller the test failed (a pass would have re-released),
// so refunding would let a user with remaining budget in [epsTest, eps)
// probe distance-to-memo repeatedly at zero accounted cost.
func TestStepPredictiveKeepsEpsTestOnDeniedReport(t *testing.T) {
	cfg := PredictiveConfig{Theta: 0.001, EpsTest: 0.25} // far point: test always fails
	rng := rand.New(rand.NewPCG(8, 8))
	st := State{HasRelease: true, Release: geo.Point{X: 0, Y: 0}}
	// Admits epsTest (0.25) but not the follow-up report epsilon (1).
	b := &cappedBudget{limit: 0.5}
	for i := 0; i < 2; i++ {
		before := b.charged
		_, st2, err := StepPredictive(failingReporter{eps: 1}, b, st, geo.Point{X: 19, Y: 19}, cfg, rng)
		if !errors.Is(err, errDenied) {
			t.Fatalf("probe %d: err = %v, want denial", i, err)
		}
		if st2 != st {
			t.Fatalf("probe %d: state mutated on denial: %+v", i, st2)
		}
		if b.charged <= before {
			t.Fatalf("probe %d ran for free: charged %g -> %g", i, before, b.charged)
		}
	}
	if math.Abs(b.charged-0.5) > 1e-12 {
		t.Fatalf("two probes should exhaust the 0.5 budget in epsTest charges, got %g", b.charged)
	}
	// A third probe is denied at the test spend itself: no noise drawn, so
	// nothing is (or needs to be) kept.
	if _, _, err := StepPredictive(failingReporter{eps: 1}, b, st, geo.Point{X: 19, Y: 19}, cfg, rng); !errors.Is(err, errDenied) {
		t.Fatalf("exhausted probe: err = %v, want denial", err)
	}
	if math.Abs(b.charged-0.5) > 1e-12 {
		t.Fatalf("denied test spend changed the charge: %g", b.charged)
	}
}

func TestEmpiricalAdversaryErrorValidation(t *testing.T) {
	good := AdversaryConfig{Region: geo.NewSquare(20), Granularity: 16, Eps: 1}
	cases := []AdversaryConfig{
		{Region: geo.Rect{}, Granularity: 16, Eps: 1},
		{Region: geo.NewSquare(20), Granularity: 1, Eps: 1},
		{Region: geo.NewSquare(20), Granularity: 16, Eps: 0},
	}
	for i, cfg := range cases {
		if _, err := EmpiricalAdversaryError(cfg, nil, nil); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := EmpiricalAdversaryError(good, make([][]geo.Point, 1), nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := EmpiricalAdversaryError(good, [][]geo.Point{{}}, [][]Step{{}}); err == nil {
		t.Error("zero steps accepted")
	}
}

// TestAdversaryErrorOrdersEps: a weaker mechanism (smaller eps) must be
// harder to attack — the adversary error should clearly decrease as eps
// grows.
func TestAdversaryErrorOrdersEps(t *testing.T) {
	traces, err := Generate(4, genCfg(23))
	if err != nil {
		t.Fatal(err)
	}
	attack := func(eps float64, seed uint64) float64 {
		t.Helper()
		mech := newPL(t, eps, seed)
		pts := make([][]geo.Point, len(traces))
		runs := make([][]Step, len(traces))
		for i, tr := range traces {
			pts[i] = tr.Points
			steps, err := Independent(mech, tr.Points)
			if err != nil {
				t.Fatal(err)
			}
			runs[i] = steps
		}
		cfg := AdversaryConfig{Region: geo.NewSquare(20), Granularity: 24, Eps: eps}
		e, err := EmpiricalAdversaryError(cfg, pts, runs)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	weak := attack(0.2, 71) // noisy releases: attacker struggles
	strong := attack(4.0, 72)
	if !(weak > strong*1.5) {
		t.Errorf("adversary error does not order eps: eps=0.2 -> %.3f km, eps=4 -> %.3f km", weak, strong)
	}
	if strong <= 0 || weak > 30 {
		t.Errorf("implausible adversary errors: %g / %g", strong, weak)
	}
}
