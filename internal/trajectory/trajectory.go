// Package trajectory extends the library from single reports to mobility
// traces. Repeated reports compose linearly (§2.2 of the paper): n reports
// cost n*eps, which exhausts realistic budgets within a day. The package
// implements the standard remedy from the GeoInd literature — the
// *predictive mechanism* of Chatzikokolakis, Palamidessi and Stronati
// (PETS 2014) — alongside the naive independent reporter, plus a seeded
// generator of synthetic mobility traces to evaluate them on.
//
// The predictive mechanism exploits temporal correlation: a user who has not
// moved far can keep reporting the previously released location. Each step
// runs a *private test*: it compares d(x_t, prediction) against a threshold
// theta after adding Laplace noise with scale 1/epsTest. Distance to a fixed
// point is 1-Lipschitz in the GeoInd metric, so the noisy test is itself
// epsTest-GeoInd. On a pass, the prediction is re-released and the step
// costs only epsTest; on a failure, the underlying mechanism reports afresh
// for epsTest + epsReport. Stationary stretches become nearly free.
package trajectory

import (
	"fmt"
	"math"
	"math/rand/v2"

	"geoind/internal/geo"
)

// Reporter is the underlying single-report mechanism (geoind.Mechanism
// satisfies it).
type Reporter interface {
	Report(x geo.Point) (geo.Point, error)
	Epsilon() float64
}

// Trace is one user's sequence of true locations at uniform time steps.
type Trace struct {
	User   int
	Points []geo.Point
}

// Step is one released location together with its budget cost.
type Step struct {
	// Released is the reported location for this time step.
	Released geo.Point
	// Spent is the privacy budget consumed at this step.
	Spent float64
	// Fresh reports whether the underlying mechanism ran (false = the
	// prediction was re-released).
	Fresh bool
}

// Independent releases every point of the trace through the mechanism,
// spending mech.Epsilon() per step. It is the baseline the predictive
// mechanism is measured against.
func Independent(mech Reporter, trace []geo.Point) ([]Step, error) {
	out := make([]Step, 0, len(trace))
	for _, x := range trace {
		z, err := mech.Report(x)
		if err != nil {
			return nil, err
		}
		out = append(out, Step{Released: z, Spent: mech.Epsilon(), Fresh: true})
	}
	return out, nil
}

// PredictiveConfig parameterizes the predictive mechanism.
type PredictiveConfig struct {
	// Theta is the test threshold (km): predictions within theta of the
	// true location (pre-noise) tend to pass.
	Theta float64
	// EpsTest is the budget of each private test (typically a small
	// fraction of the report budget).
	EpsTest float64
}

// Validate checks the configuration.
func (c PredictiveConfig) Validate() error {
	if !(c.Theta > 0) {
		return fmt.Errorf("trajectory: theta %g must be positive", c.Theta)
	}
	if !(c.EpsTest > 0) || math.IsInf(c.EpsTest, 0) {
		return fmt.Errorf("trajectory: epsTest %g must be positive and finite", c.EpsTest)
	}
	return nil
}

// State is the session-resident predictive-mechanism state between steps:
// the last released location, if any. It lives wherever the caller keeps
// per-user state (the server keeps it in internal/session; the whole-trace
// helpers keep it on the stack).
type State struct {
	// HasRelease reports whether a previous release exists to predict from.
	HasRelease bool
	// Release is the last released (sanitized) location.
	Release geo.Point
}

// Budget meters one user's spend for the stepwise API. Spend debits before
// any noise is drawn (admission control); Refund returns budget whose
// release never happened. The server backs this with the session store;
// Unmetered is the whole-trace evaluation backing.
type Budget interface {
	Spend(eps float64) error
	Refund(eps float64)
}

// Unmetered is a Budget that admits everything (evaluation runs, where the
// question is how much *would* be spent).
type Unmetered struct{}

// Spend implements Budget.
func (Unmetered) Spend(float64) error { return nil }

// Refund implements Budget.
func (Unmetered) Refund(float64) {}

// StepPredictive advances the predictive mechanism by one point: one true
// location in, one released location out, with the cross-step state passed
// explicitly. With a prior release it first charges epsTest and runs the
// private test; on a pass the previous release is re-released for just
// epsTest. On a failure (or with no prior release) it charges the report
// budget and releases afresh.
//
// Budget is charged before any noise is drawn, and the charges compose
// strictly with what was revealed: once the test noise has been drawn its
// epsTest stays spent for good, because the test's outcome is observable
// no matter how the step ends (a pass re-releases, a fail surfaces as a
// fresh report, a budget denial, or a mechanism error). Refunding it would
// let a caller run epsTest-DP distance probes for free. Only budget whose
// noise was never drawn is refunded: the report epsilon when the mechanism
// fails, which on a first step (no prior release, no test) is the whole
// charge.
func StepPredictive(mech Reporter, budget Budget, st State, x geo.Point, cfg PredictiveConfig, rng *rand.Rand) (Step, State, error) {
	if err := cfg.Validate(); err != nil {
		return Step{}, st, err
	}
	if rng == nil {
		return Step{}, st, fmt.Errorf("trajectory: nil rng")
	}
	charged := 0.0
	if st.HasRelease {
		if err := budget.Spend(cfg.EpsTest); err != nil {
			return Step{}, st, err
		}
		charged = cfg.EpsTest
		noisy := x.Dist(st.Release) + laplace1D(rng, 1/cfg.EpsTest)
		if noisy <= cfg.Theta {
			return Step{Released: st.Release, Spent: cfg.EpsTest, Fresh: false}, st, nil
		}
		// Failed test: the epsTest is spent either way; fall through to a
		// fresh report.
	}
	if err := budget.Spend(mech.Epsilon()); err != nil {
		// No refund of the epsTest already charged: the test ran, and its
		// failure is observable through this very denial.
		return Step{}, st, err
	}
	charged += mech.Epsilon()
	z, err := mech.Report(x)
	if err != nil {
		// The report never happened, so its epsilon goes back; the test's
		// epsTest (when a test ran) stays spent.
		budget.Refund(mech.Epsilon())
		return Step{}, st, err
	}
	return Step{Released: z, Spent: charged, Fresh: true}, State{HasRelease: true, Release: z}, nil
}

// Predictive runs the predictive mechanism over a trace. The first step is
// always a fresh report. The rng drives the test noise (the underlying
// mechanism keeps its own randomness). It is the whole-trace loop over
// StepPredictive with an unmetered budget.
func Predictive(mech Reporter, trace []geo.Point, cfg PredictiveConfig, rng *rand.Rand) ([]Step, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("trajectory: nil rng")
	}
	out := make([]Step, 0, len(trace))
	var st State
	for _, x := range trace {
		step, next, err := StepPredictive(mech, Unmetered{}, st, x, cfg, rng)
		if err != nil {
			return nil, err
		}
		st = next
		out = append(out, step)
	}
	return out, nil
}

// laplace1D samples from the Laplace distribution with the given scale.
func laplace1D(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	sign := 1.0
	if u < 0 {
		sign = -1
		u = -u
	}
	// u in [0, 0.5): 1-2u in (0, 1], log is safe.
	return -scale * sign * math.Log(1-2*u)
}

// Summary aggregates a released trace.
type Summary struct {
	Steps      int
	Fresh      int
	TotalSpent float64
	// MeanLoss is the mean Euclidean distance between true and released
	// locations.
	MeanLoss float64
}

// Summarize computes aggregate statistics of a run against the true trace.
func Summarize(trace []geo.Point, steps []Step) (Summary, error) {
	if len(trace) != len(steps) {
		return Summary{}, fmt.Errorf("trajectory: %d true points vs %d steps", len(trace), len(steps))
	}
	var s Summary
	s.Steps = len(steps)
	for i, st := range steps {
		if st.Fresh {
			s.Fresh++
		}
		s.TotalSpent += st.Spent
		s.MeanLoss += trace[i].Dist(st.Released)
	}
	if s.Steps > 0 {
		s.MeanLoss /= float64(s.Steps)
	}
	return s, nil
}

// GenConfig parameterizes synthetic trace generation.
type GenConfig struct {
	// Region is the planar domain.
	Region geo.Rect
	// Anchors are locations users dwell at (POIs/home/work); at least one.
	Anchors []geo.Point
	// Steps is the trace length.
	Steps int
	// StayProb is the probability of dwelling (tiny jitter) at each step.
	StayProb float64
	// LocalSigma is the dwell jitter std-dev (km).
	LocalSigma float64
	// JumpProb is the probability of teleporting to a random anchor
	// (vehicle trip); otherwise the user walks a Gaussian step of
	// WalkSigma.
	JumpProb  float64
	WalkSigma float64
	// Seed fixes the randomness.
	Seed uint64
}

// Validate checks the generation parameters.
func (c GenConfig) Validate() error {
	switch {
	case c.Region.Width() <= 0 || c.Region.Height() <= 0:
		return fmt.Errorf("trajectory: degenerate region")
	case len(c.Anchors) == 0:
		return fmt.Errorf("trajectory: no anchors")
	case c.Steps < 1:
		return fmt.Errorf("trajectory: steps %d < 1", c.Steps)
	case c.StayProb < 0 || c.StayProb > 1 || c.JumpProb < 0 || c.JumpProb > 1 || c.StayProb+c.JumpProb > 1:
		return fmt.Errorf("trajectory: invalid stay/jump probabilities %g/%g", c.StayProb, c.JumpProb)
	case c.LocalSigma <= 0 || c.WalkSigma <= 0:
		return fmt.Errorf("trajectory: sigmas must be positive")
	}
	return nil
}

// Generate produces n traces under the anchor-dwell random-walk model:
// users mostly dwell near an anchor, occasionally walk, and sometimes jump
// to a different anchor. This produces the temporal correlation the
// predictive mechanism exploits, with realistic breaks.
func Generate(n int, cfg GenConfig) ([]Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("trajectory: n=%d traces", n)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7ace))
	traces := make([]Trace, n)
	for u := 0; u < n; u++ {
		cur := cfg.Anchors[rng.IntN(len(cfg.Anchors))]
		pts := make([]geo.Point, 0, cfg.Steps)
		for s := 0; s < cfg.Steps; s++ {
			r := rng.Float64()
			switch {
			case r < cfg.StayProb:
				cur = cur.Add(rng.NormFloat64()*cfg.LocalSigma, rng.NormFloat64()*cfg.LocalSigma)
			case r < cfg.StayProb+cfg.JumpProb:
				cur = cfg.Anchors[rng.IntN(len(cfg.Anchors))]
			default:
				cur = cur.Add(rng.NormFloat64()*cfg.WalkSigma, rng.NormFloat64()*cfg.WalkSigma)
			}
			cur = cfg.Region.Clamp(cur)
			pts = append(pts, cur)
		}
		traces[u] = Trace{User: u, Points: pts}
	}
	return traces, nil
}
