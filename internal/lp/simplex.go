package lp

import (
	"fmt"
	"math"
)

// SimplexOptions configures the dense simplex solver.
type SimplexOptions struct {
	// MaxPivots bounds the total number of pivots across both phases.
	// Zero means a default of 50*(rows+cols).
	MaxPivots int
	// Tol is the numerical tolerance for feasibility and optimality tests.
	// Zero means 1e-9.
	Tol float64
}

func (o *SimplexOptions) withDefaults(rows, cols int) SimplexOptions {
	out := SimplexOptions{MaxPivots: 50 * (rows + cols + 10), Tol: 1e-9}
	if o != nil {
		if o.MaxPivots > 0 {
			out.MaxPivots = o.MaxPivots
		}
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
	}
	return out
}

// Solve minimizes c'x subject to Aub x <= bub, Aeq x = beq, x >= 0 using a
// dense two-phase primal simplex with Bland's anti-cycling rule as a
// fallback. It is intended for small problems (hundreds of rows/columns) and
// as a reference oracle for the interior-point solver; the GeoInd LPs used
// in production go through GeoIndProblem.Solve instead.
func Solve(c []float64, aub [][]float64, bub []float64, aeq [][]float64, beq []float64, opts *SimplexOptions) (*Solution, error) {
	n := len(c)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty objective", ErrBadProblem)
	}
	if len(aub) != len(bub) || len(aeq) != len(beq) {
		return nil, fmt.Errorf("%w: row/rhs length mismatch", ErrBadProblem)
	}
	for _, row := range aub {
		if len(row) != n {
			return nil, fmt.Errorf("%w: inequality row width %d != %d", ErrBadProblem, len(row), n)
		}
	}
	for _, row := range aeq {
		if len(row) != n {
			return nil, fmt.Errorf("%w: equality row width %d != %d", ErrBadProblem, len(row), n)
		}
	}
	m := len(aub) + len(aeq)
	opt := opts.withDefaults(m, n)

	// Assemble the standard form A x = b, x >= 0 with slack columns for the
	// inequality rows, flipping rows so that b >= 0, then an artificial
	// basis. Column layout: [x (n) | slacks (len(aub)) | artificials (m)].
	nSlack := len(aub)
	nTotal := n + nSlack + m
	a := make([][]float64, m)
	b := make([]float64, m)
	basis := make([]int, m)
	for i := range a {
		a[i] = make([]float64, nTotal)
	}
	for i, row := range aub {
		copy(a[i], row)
		a[i][n+i] = 1
		b[i] = bub[i]
		if b[i] < 0 {
			for j := 0; j <= n+nSlack-1; j++ {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
		}
	}
	for k, row := range aeq {
		i := nSlack + k
		copy(a[i], row)
		b[i] = beq[k]
		if b[i] < 0 {
			for j := 0; j < n; j++ {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
		}
	}
	// Artificial columns form the initial identity basis. For inequality
	// rows whose slack kept coefficient +1 we could use the slack directly,
	// but using artificials everywhere keeps the logic uniform; phase 1
	// drives them out regardless.
	for i := 0; i < m; i++ {
		a[i][n+nSlack+i] = 1
		basis[i] = n + nSlack + i
	}

	t := &tableau{a: a, b: b, basis: basis, tol: opt.Tol}

	// Phase 1: minimize the sum of artificials.
	phase1Cost := make([]float64, nTotal)
	for j := n + nSlack; j < nTotal; j++ {
		phase1Cost[j] = 1
	}
	iters1, status := t.run(phase1Cost, opt.MaxPivots, n+nSlack)
	if status == StatusIterLimit {
		return &Solution{Status: StatusIterLimit, Iters: iters1}, nil
	}
	if t.objective(phase1Cost) > opt.Tol*float64(m+1) {
		return &Solution{Status: StatusInfeasible, Iters: iters1}, nil
	}
	// Drive any artificial still in the basis to a structural column (or
	// detect a redundant row and leave the artificial at value zero).
	t.evictArtificials(n + nSlack)

	// Phase 2: original objective, artificial columns barred.
	phase2Cost := make([]float64, nTotal)
	copy(phase2Cost, c)
	iters2, status := t.run(phase2Cost, opt.MaxPivots-iters1, n+nSlack)
	sol := &Solution{Status: status, Iters: iters1 + iters2}
	if status != StatusOptimal {
		return sol, nil
	}
	sol.X = make([]float64, n)
	for i, bv := range t.basis {
		if bv < n {
			sol.X[bv] = t.b[i]
		}
	}
	sol.Obj = dot(c, sol.X)
	return sol, nil
}

// tableau is a dense simplex tableau operating on A x = b with b >= 0
// maintained invariant under pivoting.
type tableau struct {
	a     [][]float64
	b     []float64
	basis []int
	tol   float64
}

// objective returns cost'x for the current basic solution.
func (t *tableau) objective(cost []float64) float64 {
	obj := 0.0
	for i, bv := range t.basis {
		obj += cost[bv] * t.b[i]
	}
	return obj
}

// reducedCosts computes cost_j - y'A_j for all columns, where y solves
// B'y = cost_B, using the explicit tableau (which stores B^{-1}A).
func (t *tableau) reducedCosts(cost []float64, out []float64) {
	nTotal := len(t.a[0])
	for j := 0; j < nTotal; j++ {
		r := cost[j]
		for i := range t.a {
			r -= cost[t.basis[i]] * t.a[i][j]
		}
		out[j] = r
	}
}

// run performs simplex pivots minimizing cost until optimality, the pivot
// budget is exhausted, or unboundedness is detected. Columns at index >=
// barFrom are only eligible while their cost is positive-coefficient phase-1
// artificials; in phase 2 they are barred from entering.
func (t *tableau) run(cost []float64, maxPivots, barFrom int) (int, Status) {
	nTotal := len(t.a[0])
	red := make([]float64, nTotal)
	iters := 0
	// Switch to Bland's rule after an adaptive threshold to escape cycles.
	blandAfter := 5 * (len(t.a) + nTotal)
	for {
		if iters >= maxPivots {
			return iters, StatusIterLimit
		}
		t.reducedCosts(cost, red)
		enter := -1
		if iters < blandAfter {
			best := -t.tol
			for j := 0; j < nTotal; j++ {
				if j >= barFrom && cost[j] == 0 {
					continue // barred artificial in phase 2
				}
				if red[j] < best {
					best = red[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < nTotal; j++ {
				if j >= barFrom && cost[j] == 0 {
					continue
				}
				if red[j] < -t.tol {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return iters, StatusOptimal
		}
		// Ratio test: choose leaving row minimizing b_i / a_ie over
		// a_ie > tol, breaking ties by smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := range t.a {
			pivot := t.a[i][enter]
			if pivot <= t.tol {
				continue
			}
			ratio := t.b[i] / pivot
			if ratio < bestRatio-t.tol || (ratio < bestRatio+t.tol && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return iters, StatusUnbounded
		}
		t.pivot(leave, enter)
		iters++
	}
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis.
func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	for j := range t.a[row] {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	t.a[row][col] = 1 // exact
	for i := range t.a {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		rowVec := t.a[row]
		dst := t.a[i]
		for j := range dst {
			dst[j] -= f * rowVec[j]
		}
		dst[col] = 0 // exact
		t.b[i] -= f * t.b[row]
		if t.b[i] < 0 && t.b[i] > -t.tol {
			t.b[i] = 0
		}
	}
	t.basis[row] = col
}

// evictArtificials pivots basic artificial variables (all at value ~0 after
// a feasible phase 1) out of the basis when a structural column with a
// nonzero tableau entry exists in their row; rows with no such column are
// redundant and left alone.
func (t *tableau) evictArtificials(nStructural int) {
	for i, bv := range t.basis {
		if bv < nStructural {
			continue
		}
		for j := 0; j < nStructural; j++ {
			if math.Abs(t.a[i][j]) > t.tol {
				t.pivot(i, j)
				break
			}
		}
	}
}
