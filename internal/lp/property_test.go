package lp

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randomPointProblem builds a GeoInd LP over random candidate locations
// (not a grid), with a random prior and utility metric d or d^2.
func randomPointProblem(rng *rand.Rand, n int, eps float64, squared bool) *GeoIndProblem {
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Float64() * 10, rng.Float64() * 10}
	}
	dist := func(a, b int) float64 {
		return math.Hypot(pts[a].x-pts[b].x, pts[a].y-pts[b].y)
	}
	prior := make([]float64, n)
	total := 0.0
	for i := range prior {
		prior[i] = rng.Float64() + 0.01
		total += prior[i]
	}
	p := &GeoIndProblem{N: n, Obj: make([]float64, n*n)}
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			d := dist(x, z)
			if squared {
				d *= d
			}
			p.Obj[x*n+z] = prior[x] / total * d
		}
	}
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			d := dist(x, xp)
			coef := math.Exp(-eps * d)
			if d == 0 {
				coef = 1
			}
			p.Pairs = append(p.Pairs, Pair{X: x, Xp: xp, Coef: coef})
		}
	}
	return p
}

// TestGeoIndRandomInstances: the IPM must reach optimality on a broad sample
// of random instances, with stochastic rows and all constraints satisfied.
func TestGeoIndRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 6))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(8) // 2..9 candidates
		eps := 0.05 + rng.Float64()*2
		p := randomPointProblem(rng, n, eps, rng.Float64() < 0.5)
		sol, err := p.Solve(nil)
		if err != nil {
			t.Fatalf("trial %d (n=%d eps=%.3f): %v", trial, n, eps, err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d (n=%d eps=%.3f): status %v gap %g", trial, n, eps, sol.Status, sol.Gap)
		}
		checkGeoIndSolution(t, p, sol.K, 1e-5)
		if sol.Obj < -1e-9 {
			t.Fatalf("trial %d: negative objective %g", trial, sol.Obj)
		}
	}
}

// TestGeoIndRandomVsSimplex cross-checks objective values against the
// reference simplex on small random instances.
func TestGeoIndRandomVsSimplex(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 88))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.IntN(4) // 2..5 candidates
		eps := 0.1 + rng.Float64()
		p := randomPointProblem(rng, n, eps, false)
		ipm, err := p.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		c, aub, bub, aeq, beq := denseForm(p)
		sx, err := Solve(c, aub, bub, aeq, beq, &SimplexOptions{MaxPivots: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if sx.Status != StatusOptimal {
			t.Fatalf("trial %d: simplex status %v", trial, sx.Status)
		}
		if math.Abs(ipm.Obj-sx.Obj) > 1e-4*(1+math.Abs(sx.Obj)) {
			t.Errorf("trial %d (n=%d eps=%.3f): IPM %.8g vs simplex %.8g", trial, n, eps, ipm.Obj, sx.Obj)
		}
	}
}

// TestSimplexRandomFeasibleBounded: randomly generated problems with a known
// feasible point and box constraints must come back optimal with an
// objective no worse than the known point's.
func TestSimplexRandomFeasibleBounded(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 55))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(6)
		m := 1 + rng.IntN(6)
		// Known point inside the box [0, 5]^n.
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.Float64() * 5
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		var aub [][]float64
		var bub []float64
		// Random constraints made feasible at x0 by construction.
		for r := 0; r < m; r++ {
			row := make([]float64, n)
			lhs := 0.0
			for i := range row {
				row[i] = rng.NormFloat64()
				lhs += row[i] * x0[i]
			}
			aub = append(aub, row)
			bub = append(bub, lhs+rng.Float64())
		}
		// Box upper bounds keep the problem bounded.
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			aub = append(aub, row)
			bub = append(bub, 5)
		}
		sol, err := Solve(c, aub, bub, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if sol.Obj > dot(c, x0)+1e-7 {
			t.Errorf("trial %d: optimum %.8g worse than feasible point %.8g", trial, sol.Obj, dot(c, x0))
		}
		// Solution is feasible.
		for r, row := range aub {
			if dot(row, sol.X) > bub[r]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated", trial, r)
			}
		}
		for i, v := range sol.X {
			if v < -1e-9 {
				t.Fatalf("trial %d: x[%d]=%g negative", trial, i, v)
			}
		}
	}
}
