package lp

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSolveCtxPreCanceled(t *testing.T) {
	prior := make([]float64, 9)
	for i := range prior {
		prior[i] = 1.0 / 9
	}
	p := gridGeoIndProblem(3, 1.0, prior)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SolveCtx(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v want context.Canceled", err)
	}
}

// TestSolveCtxCancelMidSolve cancels an in-flight solve and requires it to
// return context.Canceled promptly — within the per-iteration checkpoint
// budget, not after running all remaining IPM iterations.
func TestSolveCtxCancelMidSolve(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := randomGeoIndProblem(48, 99)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := p.SolveCtx(ctx, &IPMOptions{Workers: workers})
			done <- err
		}()
		// Let the solve get going, then pull the plug.
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			// A fast machine may finish the whole solve before the cancel
			// lands; that is a pass too (cancellation never corrupts a
			// completed solve). Anything else must be context.Canceled.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: err=%v", workers, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: solve did not return after cancel", workers)
		}
	}
}

// TestSolveCtxUncanceledMatchesSolve: threading a live context through the
// solver must not perturb the arithmetic — the solution is bit-identical to
// the plain Solve path.
func TestSolveCtxUncanceledMatchesSolve(t *testing.T) {
	p := randomGeoIndProblem(20, 7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a, err := p.SolveCtx(ctx, &IPMOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Solve(&IPMOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.K) != len(b.K) {
		t.Fatalf("len %d vs %d", len(a.K), len(b.K))
	}
	for i := range a.K {
		if a.K[i] != b.K[i] {
			t.Fatalf("K[%d]: %g vs %g (ctx plumbing changed the arithmetic)", i, a.K[i], b.K[i])
		}
	}
}
