package lp

import (
	"context"
	"fmt"
	"math"
	"os"
)

// debugIPM enables per-iteration residual tracing via GEOIND_DEBUG_IPM=1.
var debugIPM = os.Getenv("GEOIND_DEBUG_IPM") != ""

// Pair is one ordered pair (x, x') of candidate locations participating in a
// GeoInd constraint family. For every reported column z it induces the
// inequality Coef*K(x)(z) - K(x')(z) <= 0, where Coef = exp(-eps*d(x, x')).
// This is the scaled form of Eq. (4): coefficients stay in (0, 1], which
// keeps the LP numerically well behaved even for distant pairs.
type Pair struct {
	X, Xp int
	Coef  float64
}

// GeoIndProblem is the optimal-mechanism linear program of Eq. (3)-(6):
//
//	minimize    sum_{x,z} Obj[x*N+z] * K(x)(z)
//	subject to  Coef_p*K(x_p)(z) - K(x'_p)(z) <= 0   for every pair p, column z
//	            sum_z K(x)(z) = 1                     for every row x
//	            K >= 0
//
// Obj[x*N+z] is typically Prior(x) * dQ(x, z).
type GeoIndProblem struct {
	// N is the number of candidate locations (grid cells).
	N int
	// Obj is the row-major objective matrix, length N*N.
	Obj []float64
	// Pairs lists the ordered pairs with their exp(-eps*d) coefficients.
	Pairs []Pair
}

// IPMOptions configures the interior-point solver.
type IPMOptions struct {
	// Tol is the relative convergence tolerance on primal/dual residuals
	// and the complementarity gap. Zero means 1e-7.
	Tol float64
	// MaxIters bounds the number of predictor-corrector iterations.
	// Zero means 200.
	MaxIters int
	// Workers bounds the parallelism of the per-column block factorizations
	// (the dominant per-iteration cost). 0 or 1 runs serially, n > 1 uses up
	// to n workers, and a negative value uses one worker per CPU. The solver
	// output is bit-identical for every worker count: only the independent
	// per-block work is parallelized, while cross-block floating-point
	// accumulations stay serial in fixed column order.
	Workers int
}

// GeoIndSolution is the result of solving a GeoIndProblem.
type GeoIndSolution struct {
	Status Status
	// K is the row-major channel matrix, length N*N. Rows sum to 1 within
	// the solver tolerance; entries may be very small positive numbers.
	K []float64
	// Obj is the objective value in the original (unscaled) units.
	Obj float64
	// Iters is the number of interior-point iterations performed.
	Iters int
	// Gap is the final average complementarity, a bound on suboptimality
	// in scaled units.
	Gap float64
}

// Validate checks the problem structure.
func (p *GeoIndProblem) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("%w: N=%d", ErrBadProblem, p.N)
	}
	if len(p.Obj) != p.N*p.N {
		return fmt.Errorf("%w: len(Obj)=%d want %d", ErrBadProblem, len(p.Obj), p.N*p.N)
	}
	for i, pr := range p.Pairs {
		if pr.X < 0 || pr.X >= p.N || pr.Xp < 0 || pr.Xp >= p.N || pr.X == pr.Xp {
			return fmt.Errorf("%w: pair %d indices (%d,%d)", ErrBadProblem, i, pr.X, pr.Xp)
		}
		if !(pr.Coef > 0 && pr.Coef <= 1) {
			return fmt.Errorf("%w: pair %d coefficient %g not in (0,1]", ErrBadProblem, i, pr.Coef)
		}
	}
	for i, c := range p.Obj {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: Obj[%d]=%g", ErrBadProblem, i, c)
		}
	}
	return nil
}

// Solve runs the structure-exploiting Mehrotra predictor-corrector method
// without cancellation (SolveCtx with a background context).
func (p *GeoIndProblem) Solve(opts *IPMOptions) (*GeoIndSolution, error) {
	return p.SolveCtx(context.Background(), opts)
}

// SolveCtx runs the structure-exploiting Mehrotra predictor-corrector method
// under ctx: the main loop polls the context once per iteration and the per-z
// block pool polls it between blocks, so a canceled solve returns ctx.Err()
// within one block's worth of work — a tiny fraction of a full solve — rather
// than running every remaining iteration. A solve that completes normally is
// unaffected: cancellation checkpoints never alter the arithmetic, so the
// output remains bit-identical for any worker count.
//
// Internal variable layout is z-major (v[z*N+x]) so that the per-column
// normal-equation blocks and the constraint vectors are contiguous; the
// returned K is converted back to the row-major convention of the paper.
func (p *GeoIndProblem) SolveCtx(ctx context.Context, opts *IPMOptions) (*GeoIndSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tol, maxIters, workers := 1e-7, 200, 1
	if opts != nil {
		if opts.Tol > 0 {
			tol = opts.Tol
		}
		if opts.MaxIters > 0 {
			maxIters = opts.MaxIters
		}
		workers = resolveWorkers(opts.Workers)
	}
	n := p.N
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n == 1 {
		return &GeoIndSolution{Status: StatusOptimal, K: []float64{1}, Obj: p.Obj[0]}, nil
	}
	if workers > n {
		workers = n
	}
	st := newGeoIndState(p, workers)
	st.ctx = ctx
	defer st.pool.close()
	status, iters, gap := st.run(tol, maxIters)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sol := &GeoIndSolution{Status: status, Iters: iters, Gap: gap, K: make([]float64, n*n)}
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			sol.K[x*n+z] = st.v[z*n+x]
		}
	}
	sol.Obj = dot(p.Obj, sol.K)
	return sol, nil
}

// geoIndState holds all solver vectors. Constraint index is i = z*P + p;
// variable index is z*N + x.
type geoIndState struct {
	n, nn, np, mi int
	pairs         []Pair
	c             []float64 // z-major scaled objective
	cScale        float64

	// Primal/dual iterates.
	v, y, zv []float64 // length nn, n, nn
	s, zs, w []float64 // length mi
	// Per-iteration buffers.
	rp1, dy, rhsY              []float64   // length n
	rd1, q, dv, dzv, dvA, dzvA []float64   // length nn
	rp2, h, ds, dzs            []float64   // length mi
	blocks                     []float64   // n blocks of n*n: inverse normal matrices
	buildBuf                   [][]float64 // per-worker n*n scratch for block assembly
	invScratch                 [][]float64 // per-worker n*n scratch for cholInverse
	schur, schurF              []float64   // n*n

	pool *blockPool      // nil when running serially
	ctx  context.Context // nil means not cancelable (Solve / direct tests)
}

// canceled reports whether the solve's context has been canceled. A nil ctx
// (legacy Solve path, direct state construction in tests) never cancels, and
// a context that cannot be canceled (ctx.Done() == nil) short-circuits
// without touching the context's mutex.
func (st *geoIndState) canceled() bool {
	return st.ctx != nil && st.ctx.Done() != nil && st.ctx.Err() != nil
}

func newGeoIndState(p *GeoIndProblem, workers int) *geoIndState {
	n := p.N
	nn := n * n
	np := len(p.Pairs)
	mi := np * n
	st := &geoIndState{n: n, nn: nn, np: np, mi: mi, pairs: p.Pairs}
	st.pool = newBlockPool(workers)
	if workers < 1 {
		workers = 1
	}
	st.buildBuf = make([][]float64, workers)
	st.invScratch = make([][]float64, workers)
	for w := 0; w < workers; w++ {
		st.buildBuf[w] = make([]float64, nn)
		st.invScratch[w] = make([]float64, nn)
	}
	st.cScale = 0
	for _, c := range p.Obj {
		if a := math.Abs(c); a > st.cScale {
			st.cScale = a
		}
	}
	if st.cScale == 0 {
		st.cScale = 1
	}
	st.c = make([]float64, nn)
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			st.c[z*n+x] = p.Obj[x*n+z] / st.cScale
		}
	}
	st.v = make([]float64, nn)
	st.zv = make([]float64, nn)
	for i := range st.v {
		st.v[i] = 1 / float64(n)
		st.zv[i] = 1
	}
	st.y = make([]float64, n)
	st.s = make([]float64, mi)
	st.zs = make([]float64, mi)
	st.w = make([]float64, mi)
	for z := 0; z < n; z++ {
		for pi, pr := range p.Pairs {
			i := z*np + pi
			st.s[i] = math.Max((1-pr.Coef)/float64(n), 0.01)
			st.zs[i] = 1
			st.w[i] = -1
		}
	}
	st.rp1 = make([]float64, n)
	st.dy = make([]float64, n)
	st.rhsY = make([]float64, n)
	st.rd1 = make([]float64, nn)
	st.q = make([]float64, nn)
	st.dv = make([]float64, nn)
	st.dzv = make([]float64, nn)
	st.dvA = make([]float64, nn)
	st.dzvA = make([]float64, nn)
	st.rp2 = make([]float64, mi)
	st.h = make([]float64, mi)
	st.ds = make([]float64, mi)
	st.dzs = make([]float64, mi)
	st.blocks = make([]float64, n*nn)
	st.schur = make([]float64, nn)
	st.schurF = make([]float64, nn)
	return st
}

// run executes the main predictor-corrector loop.
//
// Near machine-precision convergence the scaling matrices become extremely
// ill-conditioned and iterates can deteriorate, so the loop tracks the best
// iterate seen (by a combined primal/dual/gap merit) and returns it; it also
// exits early when the merit has stopped improving.
func (st *geoIndState) run(tol float64, maxIters int) (Status, int, float64) {
	n, np := st.n, st.np
	total := float64(st.nn + st.mi)
	cInf := 0.0
	for _, c := range st.c {
		if a := math.Abs(c); a > cInf {
			cInf = a
		}
	}
	bestMerit := math.Inf(1)
	bestMu := math.Inf(1)
	bestV := make([]float64, st.nn)
	stall := 0
	iters := 0
	for iter := 0; iter < maxIters; iter++ {
		iters = iter
		// Cancellation checkpoint: one poll per predictor-corrector
		// iteration. The caller (SolveCtx) turns the early exit into
		// ctx.Err(); the best iterate so far is discarded, never returned
		// partially solved.
		if st.canceled() {
			break
		}
		// --- Residuals ---
		// rp1 = 1 - E v
		for x := 0; x < n; x++ {
			st.rp1[x] = 1
		}
		for z := 0; z < n; z++ {
			row := st.v[z*n:]
			for x := 0; x < n; x++ {
				st.rp1[x] -= row[x]
			}
		}
		// rd1 = c - E'y - G'w - zv ; start with c - E'y - zv, scatter w.
		for z := 0; z < n; z++ {
			base := z * n
			for x := 0; x < n; x++ {
				st.rd1[base+x] = st.c[base+x] - st.y[x] - st.zv[base+x]
			}
		}
		// rp2 = -Gv - s and G'w scatter, plus residual norms.
		relP := inf(st.rp1)
		relD2 := 0.0
		for z := 0; z < n; z++ {
			vz := st.v[z*n : z*n+n]
			rz := st.rd1[z*n : z*n+n]
			base := z * np
			for pi, pr := range st.pairs {
				i := base + pi
				gv := pr.Coef*vz[pr.X] - vz[pr.Xp]
				r := -gv - st.s[i]
				st.rp2[i] = r
				if a := math.Abs(r); a > relP {
					relP = a
				}
				wi := st.w[i]
				rz[pr.X] -= pr.Coef * wi
				rz[pr.Xp] += wi
				if a := math.Abs(-wi - st.zs[i]); a > relD2 {
					relD2 = a
				}
			}
		}
		relD := math.Max(inf(st.rd1), relD2)
		mu := (dot(st.v, st.zv) + dot(st.s, st.zs)) / total
		merit := math.Max(math.Max(relP/2, relD/(1+cInf)), mu)
		if debugIPM {
			fmt.Printf("ipm iter %2d relP=%.3e relD=%.3e mu=%.3e\n", iter, relP, relD, mu)
		}
		if merit < bestMerit {
			bestMerit = merit
			bestMu = mu
			copy(bestV, st.v)
			stall = 0
		} else {
			stall++
		}
		if merit <= tol {
			return StatusOptimal, iter, mu
		}
		if stall >= 12 {
			break // no longer improving; best iterate stands
		}

		// --- Normal matrix blocks and Schur complement ---
		st.factorBlocks()

		// --- Affine (predictor) step ---
		// h = rd2 + zs + (zs/s)*rp2, with rd2 = -w - zs  =>  h = -w + (zs/s)*rp2
		for i := 0; i < st.mi; i++ {
			st.h[i] = -st.w[i] + st.zs[i]/st.s[i]*st.rp2[i]
		}
		// q = G'h - zv - rd1
		st.formQ(st.h, func(i int) float64 { return -st.zv[i] - st.rd1[i] })
		st.solveKKT(st.dvA, st.dy)
		for i := 0; i < st.nn; i++ {
			st.dzvA[i] = -st.zv[i] - st.zv[i]/st.v[i]*st.dvA[i]
		}
		// Affine ds/dzs and affine step lengths.
		alphaP, alphaD := maxStep(st.v, st.dvA), maxStep(st.zv, st.dzvA)
		for z := 0; z < n; z++ {
			dvz := st.dvA[z*n : z*n+n]
			base := z * np
			for pi, pr := range st.pairs {
				i := base + pi
				gdv := pr.Coef*dvz[pr.X] - dvz[pr.Xp]
				dsi := st.rp2[i] - gdv
				dwi := st.h[i] - st.zs[i]/st.s[i]*gdv
				dzsi := (-st.w[i] - st.zs[i]) - dwi
				st.ds[i] = dsi
				st.dzs[i] = dzsi
				if dsi < 0 {
					if a := -st.s[i] / dsi; a < alphaP {
						alphaP = a
					}
				}
				if dzsi < 0 {
					if a := -st.zs[i] / dzsi; a < alphaD {
						alphaD = a
					}
				}
			}
		}
		if alphaP > 1 {
			alphaP = 1
		}
		if alphaD > 1 {
			alphaD = 1
		}
		muAff := 0.0
		for i := 0; i < st.nn; i++ {
			muAff += (st.v[i] + alphaP*st.dvA[i]) * (st.zv[i] + alphaD*st.dzvA[i])
		}
		for i := 0; i < st.mi; i++ {
			muAff += (st.s[i] + alphaP*st.ds[i]) * (st.zs[i] + alphaD*st.dzs[i])
		}
		muAff /= total
		sigma := math.Pow(math.Max(muAff, 0)/mu, 3)
		sigma = math.Min(math.Max(sigma, 1e-8), 1)

		// --- Corrector (combined) step ---
		// h = -w + ( -(sigma*mu - s*zs - dsA*dzsA)/s + zs/s*rp2 ) ... i.e.
		// h = rd2 - rc2/s + (zs/s)rp2 with rc2 = sigma*mu - s.zs - dsA.dzsA.
		smu := sigma * mu
		for i := 0; i < st.mi; i++ {
			rc2 := smu - st.s[i]*st.zs[i] - st.ds[i]*st.dzs[i]
			st.h[i] = (-st.w[i] - st.zs[i]) - rc2/st.s[i] + st.zs[i]/st.s[i]*st.rp2[i]
		}
		st.formQ(st.h, func(i int) float64 {
			rc1 := smu - st.v[i]*st.zv[i] - st.dvA[i]*st.dzvA[i]
			return rc1/st.v[i] - st.rd1[i]
		})
		st.solveKKT(st.dv, st.dy)
		for i := 0; i < st.nn; i++ {
			rc1 := smu - st.v[i]*st.zv[i] - st.dvA[i]*st.dzvA[i]
			st.dzv[i] = rc1/st.v[i] - st.zv[i]/st.v[i]*st.dv[i]
		}
		alphaP, alphaD = maxStep(st.v, st.dv), maxStep(st.zv, st.dzv)
		for z := 0; z < n; z++ {
			dvz := st.dv[z*n : z*n+n]
			base := z * np
			for pi, pr := range st.pairs {
				i := base + pi
				gdv := pr.Coef*dvz[pr.X] - dvz[pr.Xp]
				dsi := st.rp2[i] - gdv
				dwi := st.h[i] - st.zs[i]/st.s[i]*gdv
				dzsi := (-st.w[i] - st.zs[i]) - dwi
				st.ds[i] = dsi
				st.dzs[i] = dzsi
				st.h[i] = dwi // h is consumed; reuse it to carry dw
				if dsi < 0 {
					if a := -st.s[i] / dsi; a < alphaP {
						alphaP = a
					}
				}
				if dzsi < 0 {
					if a := -st.zs[i] / dzsi; a < alphaD {
						alphaD = a
					}
				}
			}
		}
		tau := 0.995
		if mu < 1e-5 {
			tau = 0.9995
		}
		alphaP = math.Min(1, tau*alphaP)
		alphaD = math.Min(1, tau*alphaD)

		for i := 0; i < st.nn; i++ {
			st.v[i] += alphaP * st.dv[i]
			st.zv[i] += alphaD * st.dzv[i]
		}
		for x := 0; x < n; x++ {
			st.y[x] += alphaD * st.dy[x]
		}
		for i := 0; i < st.mi; i++ {
			st.s[i] += alphaP * st.ds[i]
			st.zs[i] += alphaD * st.dzs[i]
			st.w[i] += alphaD * st.h[i]
		}
	}
	copy(st.v, bestV)
	// Accept a mildly looser tolerance when iteration stopped on stall or
	// budget: the best iterate is typically far more accurate than this.
	if bestMerit <= math.Max(tol*100, 1e-6) {
		return StatusOptimal, iters, bestMu
	}
	return StatusIterLimit, iters, bestMu
}

// factorBlocks assembles M_z = diag(zv/v)_z + G_z' diag(zs/s)_z G_z for every
// column z, inverts each block, accumulates the Schur complement
// S = sum_z M_z^{-1}, and factors S.
//
// The per-column blocks are independent (constraints couple only same-z
// variables), so assembly, factorization and inversion fan out across the
// worker pool; the Schur accumulation runs serially afterwards in fixed z
// order so the sum — and hence the whole solve — is bit-identical for any
// worker count.
func (st *geoIndState) factorBlocks() {
	n, np := st.n, st.np
	st.pool.forEachBlock(n, func(worker, z int) {
		// Per-z cancellation checkpoint: once the solve's context is
		// canceled, remaining blocks are skipped so the pool drains within
		// one block's worth of work. Results are garbage afterwards, but the
		// iteration loop breaks before using them and SolveCtx discards the
		// state entirely.
		if st.canceled() {
			return
		}
		blk := st.buildBuf[worker]
		for i := range blk {
			blk[i] = 0
		}
		base := z * n
		for x := 0; x < n; x++ {
			blk[x*n+x] = st.zv[base+x] / st.v[base+x]
		}
		cbase := z * np
		for pi, pr := range st.pairs {
			i := cbase + pi
			d := st.zs[i] / st.s[i]
			a := pr.Coef
			blk[pr.X*n+pr.X] += d * a * a
			da := d * a
			blk[pr.X*n+pr.Xp] -= da
			blk[pr.Xp*n+pr.X] -= da
			blk[pr.Xp*n+pr.Xp] += d
		}
		dst := st.blocks[z*st.nn : (z+1)*st.nn]
		// Factor then invert in place; a failed factorization is repaired
		// by cholFactor's internal ridge escalation.
		if _, err := cholFactor(blk, dst, n); err != nil {
			// As a last resort make the block strongly diagonally dominant.
			copy(dst, blk)
			for x := 0; x < n; x++ {
				dst[x*n+x] = blk[x*n+x] + 1
			}
			tryChol(dst, n)
		}
		cholInverse(dst, n, st.invScratch[worker])
	})
	for i := range st.schur {
		st.schur[i] = 0
	}
	for z := 0; z < n; z++ {
		dst := st.blocks[z*st.nn : (z+1)*st.nn]
		for i := range dst {
			st.schur[i] += dst[i]
		}
	}
	if _, err := cholFactor(st.schur, st.schurF, n); err != nil {
		copy(st.schurF, st.schur)
		for x := 0; x < n; x++ {
			st.schurF[x*n+x] += 1e-8
		}
		tryChol(st.schurF, n)
	}
}

// formQ sets q[i] = baseFn(i) for all variables and then scatters G'h into
// it: q[z*n+X] += Coef*h, q[z*n+Xp] -= h.
func (st *geoIndState) formQ(h []float64, baseFn func(i int) float64) {
	n, np := st.n, st.np
	for i := 0; i < st.nn; i++ {
		st.q[i] = baseFn(i)
	}
	for z := 0; z < n; z++ {
		qz := st.q[z*n : z*n+n]
		base := z * np
		for pi, pr := range st.pairs {
			hi := h[base+pi]
			qz[pr.X] += pr.Coef * hi
			qz[pr.Xp] -= hi
		}
	}
}

// solveKKT solves M dv - E'dy = q, E dv = rp1 using the factored blocks and
// Schur complement. On return dv and dy hold the Newton directions.
func (st *geoIndState) solveKKT(dv, dy []float64) {
	n := st.n
	// rhsY = rp1 - E M^{-1} q
	copy(st.rhsY, st.rp1)
	for z := 0; z < n; z++ {
		inv := st.blocks[z*st.nn : (z+1)*st.nn]
		qz := st.q[z*n : z*n+n]
		for x := 0; x < n; x++ {
			row := inv[x*n : x*n+n]
			st.rhsY[x] -= dot(row, qz)
		}
	}
	copy(dy, st.rhsY)
	cholSolve(st.schurF, n, dy)
	// dv = M^{-1}(q + E'dy); per-z segments are disjoint, so the back-
	// substitution fans out across the worker pool (bit-identical: each
	// segment's arithmetic is unchanged).
	st.pool.forEachBlock(n, func(_, z int) {
		if st.canceled() {
			return // drain promptly; see factorBlocks
		}
		inv := st.blocks[z*st.nn : (z+1)*st.nn]
		qz := st.q[z*n : z*n+n]
		dvz := dv[z*n : z*n+n]
		for x := 0; x < n; x++ {
			row := inv[x*n : x*n+n]
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += row[k] * (qz[k] + dy[k])
			}
			dvz[x] = sum
		}
	})
}

// maxStep returns the largest alpha in (0, +inf] with x + alpha*dx >= 0.
func maxStep(x, dx []float64) float64 {
	alpha := math.Inf(1)
	for i, d := range dx {
		if d < 0 {
			if a := -x[i] / d; a < alpha {
				alpha = a
			}
		}
	}
	return alpha
}

// inf returns the infinity norm of v.
func inf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
