package lp

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randSPD(rng *rand.Rand, n int) []float64 {
	b := make([]float64, n*n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b[i*n+k] * b[j*n+k]
			}
			a[i*n+j] = s
		}
		a[i*n+i] += float64(n) // well conditioned
	}
	return a
}

func TestCholFactorSolve(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33} {
		a := randSPD(rng, n)
		f := make([]float64, n*n)
		ridge, err := cholFactor(a, f, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ridge != 0 {
			t.Errorf("n=%d: unexpected ridge %g on well-conditioned matrix", n, ridge)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i*n+j] * x[j]
			}
		}
		cholSolve(f, n, b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				t.Fatalf("n=%d: solve mismatch at %d: %g vs %g", n, i, b[i], x[i])
			}
		}
	}
}

func TestCholInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{1, 2, 4, 7, 12, 25} {
		a := randSPD(rng, n)
		f := make([]float64, n*n)
		if _, err := cholFactor(a, f, n); err != nil {
			t.Fatal(err)
		}
		scratch := make([]float64, n*n)
		cholInverse(f, n, scratch)
		// f now holds inv(a); check a*inv = I.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a[i*n+k] * f[k*n+j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(s-want) > 1e-8 {
					t.Fatalf("n=%d: (A*inv)[%d,%d]=%g want %g", n, i, j, s, want)
				}
			}
		}
	}
}

func TestCholFactorIndefinite(t *testing.T) {
	// A singular matrix should be repaired with a ridge rather than NaN.
	a := []float64{1, 1, 1, 1}
	f := make([]float64, 4)
	ridge, err := cholFactor(a, f, 2)
	if err != nil {
		t.Fatalf("expected ridge repair, got %v", err)
	}
	if ridge <= 0 {
		t.Errorf("expected positive ridge, got %g", ridge)
	}
}

func TestSimplexBasic(t *testing.T) {
	// min -x0 - 2x1 s.t. x0 + x1 <= 4, x1 <= 2  => x=(2,2), obj -6.
	sol, err := Solve(
		[]float64{-1, -2},
		[][]float64{{1, 1}, {0, 1}}, []float64{4, 2},
		nil, nil, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status=%v", sol.Status)
	}
	if math.Abs(sol.Obj-(-6)) > 1e-9 {
		t.Errorf("obj=%g want -6", sol.Obj)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 || math.Abs(sol.X[1]-2) > 1e-9 {
		t.Errorf("x=%v want (2,2)", sol.X)
	}
}

func TestSimplexEquality(t *testing.T) {
	// min x0 + 3x1 s.t. x0 + x1 = 2  => x=(2,0), obj 2.
	sol, err := Solve(
		[]float64{1, 3},
		nil, nil,
		[][]float64{{1, 1}}, []float64{2}, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-2) > 1e-9 {
		t.Fatalf("status=%v obj=%g want optimal 2", sol.Status, sol.Obj)
	}
}

func TestSimplexMixed(t *testing.T) {
	// min -3x -5y s.t. x<=4, 2y<=12, 3x+2y=18 => x=2? Classic problem but
	// with equality: 3x+2y=18, x<=4, y<=6 -> best at x=2,y=6, obj=-36.
	sol, err := Solve(
		[]float64{-3, -5},
		[][]float64{{1, 0}, {0, 2}}, []float64{4, 12},
		[][]float64{{3, 2}}, []float64{18}, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-(-36)) > 1e-8 {
		t.Fatalf("status=%v obj=%g want optimal -36 (x=%v)", sol.Status, sol.Obj, sol.X)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	// x <= -1 with x >= 0 is infeasible.
	sol, err := Solve([]float64{1}, [][]float64{{1}}, []float64{-1}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status=%v want infeasible", sol.Status)
	}
	// Contradictory equalities.
	sol, err = Solve([]float64{1, 1},
		nil, nil,
		[][]float64{{1, 1}, {1, 1}}, []float64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status=%v want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// min -x0 s.t. x1 <= 1: x0 unbounded above.
	sol, err := Solve([]float64{-1, 0}, [][]float64{{0, 1}}, []float64{1}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status=%v want unbounded", sol.Status)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// -x0 <= -2  (x0 >= 2), min x0 => 2.
	sol, err := Solve([]float64{1}, [][]float64{{-1}}, []float64{-2}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-2) > 1e-9 {
		t.Fatalf("status=%v obj=%g want optimal 2", sol.Status, sol.Obj)
	}
}

func TestSimplexRedundantEquality(t *testing.T) {
	// Duplicate equality rows exercise artificial eviction of redundant rows.
	sol, err := Solve([]float64{1, 1},
		nil, nil,
		[][]float64{{1, 1}, {2, 2}}, []float64{2, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-2) > 1e-8 {
		t.Fatalf("status=%v obj=%g want optimal 2", sol.Status, sol.Obj)
	}
}

func TestSimplexValidation(t *testing.T) {
	if _, err := Solve(nil, nil, nil, nil, nil, nil); err == nil {
		t.Error("empty objective should error")
	}
	if _, err := Solve([]float64{1}, [][]float64{{1, 2}}, []float64{1}, nil, nil, nil); err == nil {
		t.Error("row width mismatch should error")
	}
	if _, err := Solve([]float64{1}, [][]float64{{1}}, []float64{1, 2}, nil, nil, nil); err == nil {
		t.Error("rhs length mismatch should error")
	}
}

// --- GeoInd LP helpers ---

// gridGeoIndProblem builds the OPT linear program for a g x g unit grid with
// the given prior (length g*g, row-major) and privacy budget eps.
func gridGeoIndProblem(g int, eps float64, prior []float64) *GeoIndProblem {
	n := g * g
	centers := make([][2]float64, n)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			centers[i*g+j] = [2]float64{float64(j) + 0.5, float64(i) + 0.5}
		}
	}
	dist := func(a, b int) float64 {
		dx := centers[a][0] - centers[b][0]
		dy := centers[a][1] - centers[b][1]
		return math.Hypot(dx, dy)
	}
	p := &GeoIndProblem{N: n, Obj: make([]float64, n*n)}
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			p.Obj[x*n+z] = prior[x] * dist(x, z)
		}
	}
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			p.Pairs = append(p.Pairs, Pair{X: x, Xp: xp, Coef: math.Exp(-eps * dist(x, xp))})
		}
	}
	return p
}

// denseForm converts a GeoIndProblem to dense simplex inputs.
func denseForm(p *GeoIndProblem) (c []float64, aub [][]float64, bub []float64, aeq [][]float64, beq []float64) {
	n := p.N
	nn := n * n
	c = append([]float64(nil), p.Obj...)
	for _, pr := range p.Pairs {
		for z := 0; z < n; z++ {
			row := make([]float64, nn)
			row[pr.X*n+z] = pr.Coef
			row[pr.Xp*n+z] = -1
			aub = append(aub, row)
			bub = append(bub, 0)
		}
	}
	for x := 0; x < n; x++ {
		row := make([]float64, nn)
		for z := 0; z < n; z++ {
			row[x*n+z] = 1
		}
		aeq = append(aeq, row)
		beq = append(beq, 1)
	}
	return
}

// checkGeoIndSolution verifies stochasticity and the GeoInd constraints.
func checkGeoIndSolution(t *testing.T, p *GeoIndProblem, k []float64, tol float64) {
	t.Helper()
	n := p.N
	for x := 0; x < n; x++ {
		sum := 0.0
		for z := 0; z < n; z++ {
			v := k[x*n+z]
			if v < -tol {
				t.Fatalf("K[%d][%d]=%g negative", x, z, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("row %d sums to %g", x, sum)
		}
	}
	for _, pr := range p.Pairs {
		for z := 0; z < n; z++ {
			lhs := pr.Coef*k[pr.X*n+z] - k[pr.Xp*n+z]
			if lhs > tol {
				t.Fatalf("GeoInd violated: pair (%d,%d) z=%d excess %g", pr.X, pr.Xp, z, lhs)
			}
		}
	}
}

func TestGeoIndTrivial(t *testing.T) {
	p := &GeoIndProblem{N: 1, Obj: []float64{0}}
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || sol.K[0] != 1 {
		t.Fatalf("got %+v", sol)
	}
}

func TestGeoIndValidate(t *testing.T) {
	cases := []*GeoIndProblem{
		{N: 0},
		{N: 2, Obj: []float64{1}},
		{N: 2, Obj: make([]float64, 4), Pairs: []Pair{{X: 0, Xp: 0, Coef: 0.5}}},
		{N: 2, Obj: make([]float64, 4), Pairs: []Pair{{X: 0, Xp: 1, Coef: 0}}},
		{N: 2, Obj: make([]float64, 4), Pairs: []Pair{{X: 0, Xp: 1, Coef: 2}}},
		{N: 2, Obj: make([]float64, 4), Pairs: []Pair{{X: 0, Xp: 3, Coef: 0.5}}},
		{N: 2, Obj: []float64{0, math.NaN(), 0, 0}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

// TestGeoIndVsSimplex cross-validates the IPM against the reference simplex
// on a 2x2 grid with a skewed prior.
func TestGeoIndVsSimplex(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	for _, eps := range []float64{0.3, 0.8, 1.5} {
		p := gridGeoIndProblem(2, eps, prior)
		ipm, err := p.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if ipm.Status != StatusOptimal {
			t.Fatalf("eps=%g: IPM status %v", eps, ipm.Status)
		}
		checkGeoIndSolution(t, p, ipm.K, 1e-6)

		c, aub, bub, aeq, beq := denseForm(p)
		sx, err := Solve(c, aub, bub, aeq, beq, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sx.Status != StatusOptimal {
			t.Fatalf("eps=%g: simplex status %v", eps, sx.Status)
		}
		if math.Abs(ipm.Obj-sx.Obj) > 1e-5*(1+math.Abs(sx.Obj)) {
			t.Errorf("eps=%g: IPM obj %.10g != simplex obj %.10g", eps, ipm.Obj, sx.Obj)
		}
	}
}

// TestGeoIndVsSimplex3x3 does the same on a 3x3 grid (9 locations, 648
// inequality rows) unless -short is set.
func TestGeoIndVsSimplex3x3(t *testing.T) {
	if testing.Short() {
		t.Skip("3x3 simplex cross-check skipped in -short mode")
	}
	rng := rand.New(rand.NewPCG(7, 9))
	prior := make([]float64, 9)
	sum := 0.0
	for i := range prior {
		prior[i] = rng.Float64() + 0.05
		sum += prior[i]
	}
	for i := range prior {
		prior[i] /= sum
	}
	p := gridGeoIndProblem(3, 0.7, prior)
	ipm, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ipm.Status != StatusOptimal {
		t.Fatalf("IPM status %v", ipm.Status)
	}
	checkGeoIndSolution(t, p, ipm.K, 1e-6)
	c, aub, bub, aeq, beq := denseForm(p)
	sx, err := Solve(c, aub, bub, aeq, beq, &SimplexOptions{MaxPivots: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if sx.Status != StatusOptimal {
		t.Fatalf("simplex status %v", sx.Status)
	}
	if math.Abs(ipm.Obj-sx.Obj) > 1e-5*(1+math.Abs(sx.Obj)) {
		t.Errorf("IPM obj %.10g != simplex obj %.10g", ipm.Obj, sx.Obj)
	}
}

// TestGeoIndInvariants checks stochasticity and constraint satisfaction on
// larger instances where the simplex is too slow.
func TestGeoIndInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, g := range []int{3, 4, 5} {
		n := g * g
		prior := make([]float64, n)
		sum := 0.0
		for i := range prior {
			prior[i] = rng.Float64()*rng.Float64() + 0.01
			sum += prior[i]
		}
		for i := range prior {
			prior[i] /= sum
		}
		p := gridGeoIndProblem(g, 0.5, prior)
		sol, err := p.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("g=%d: status %v (gap %g)", g, sol.Status, sol.Gap)
		}
		checkGeoIndSolution(t, p, sol.K, 1e-6)

		// The uniform channel is feasible, so OPT must not cost more.
		uniformObj := 0.0
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				uniformObj += p.Obj[x*n+z] / float64(n)
			}
		}
		if sol.Obj > uniformObj+1e-6 {
			t.Errorf("g=%d: OPT obj %g exceeds uniform obj %g", g, sol.Obj, uniformObj)
		}
	}
}

// TestGeoIndMonotoneInEps: more budget (larger eps) can only reduce the
// optimal expected loss, since the feasible set grows with eps.
func TestGeoIndMonotoneInEps(t *testing.T) {
	prior := []float64{0.05, 0.1, 0.15, 0.2, 0.02, 0.08, 0.25, 0.1, 0.05}
	prev := math.Inf(1)
	for _, eps := range []float64{0.1, 0.3, 0.5, 1.0, 2.0} {
		p := gridGeoIndProblem(3, eps, prior)
		sol, err := p.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("eps=%g: status %v", eps, sol.Status)
		}
		if sol.Obj > prev+1e-6 {
			t.Errorf("objective not monotone: eps=%g obj=%g > prev %g", eps, sol.Obj, prev)
		}
		prev = sol.Obj
	}
}

// TestGeoIndHugeEps: with a very large budget the constraints are loose and
// the mechanism can report (nearly) the true location: cost ~ 0.
func TestGeoIndHugeEps(t *testing.T) {
	prior := []float64{0.25, 0.25, 0.25, 0.25}
	p := gridGeoIndProblem(2, 50, prior)
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Obj > 1e-3 {
		t.Errorf("obj=%g want ~0 for huge eps", sol.Obj)
	}
}

func BenchmarkGeoIndSolve(b *testing.B) {
	for _, g := range []int{3, 4, 5} {
		b.Run("g="+string(rune('0'+g)), func(b *testing.B) {
			n := g * g
			prior := make([]float64, n)
			for i := range prior {
				prior[i] = 1 / float64(n)
			}
			p := gridGeoIndProblem(g, 0.5, prior)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Solve(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
