// Package lp is a pure-Go linear-programming substrate replacing the
// commercial Gurobi solver used by the paper (§6.1). It provides:
//
//   - A dense two-phase primal simplex (Solve) for small general LPs; it is
//     the reference implementation used to cross-validate the interior-point
//     solver and to solve miscellaneous small programs.
//   - A structure-exploiting Mehrotra predictor-corrector interior-point
//     method (GeoIndProblem.Solve) specialized to the optimal-mechanism LP of
//     Eq. (3)-(6). The GeoInd inequality constraints couple variables only
//     within a single reported-location column z, so the reduced normal
//     matrix is block-diagonal with one dense block per column; the row-sum
//     equalities contribute an n x n Schur complement. This brings the
//     per-iteration cost down from O(n^6) to O(n^4) for n candidate
//     locations, which is what makes both the OPT baseline sweeps and the
//     per-level solves inside MSM feasible without an external solver.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal solution was found within tolerance.
	StatusOptimal Status = iota
	// StatusInfeasible means no feasible point exists.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
	// StatusIterLimit means the iteration limit was hit before convergence.
	StatusIterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrBadProblem is returned for structurally invalid problem definitions.
var ErrBadProblem = errors.New("lp: malformed problem")

// Solution is the result of a simplex solve.
type Solution struct {
	Status Status
	// X is the primal solution (meaningful when Status == StatusOptimal).
	X []float64
	// Obj is the objective value c'X.
	Obj float64
	// Iters is the number of simplex pivots performed across both phases.
	Iters int
}

// dot returns the inner product of two equal-length vectors.
func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// cholFactor copies the n x n symmetric positive-definite matrix src
// (row-major, lower triangle authoritative) into dst and factors it in place
// into a lower Cholesky factor. If the matrix is numerically indefinite the
// factorization is retried with an exponentially increasing diagonal ridge;
// the ridge used is returned. dst and src must not alias.
func cholFactor(src, dst []float64, n int) (ridge float64, err error) {
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(src[i*n+i]); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		maxDiag = 1
	}
	ridge = 0
	for attempt := 0; attempt < 40; attempt++ {
		copy(dst, src[:n*n])
		if ridge > 0 {
			for i := 0; i < n; i++ {
				dst[i*n+i] += ridge
			}
		}
		if tryChol(dst, n) {
			return ridge, nil
		}
		if ridge == 0 {
			ridge = 1e-14 * maxDiag
		} else {
			ridge *= 100
		}
		if ridge > maxDiag {
			break
		}
	}
	return ridge, errNotPD
}

var errNotPD = errors.New("lp: matrix not positive definite")

// tryChol attempts an in-place lower Cholesky factorization. It returns
// false (leaving a partially overwritten) when a nonpositive pivot appears.
func tryChol(a []float64, n int) bool {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			row := a[i*n:]
			base := a[j*n:]
			for k := 0; k < j; k++ {
				s -= row[k] * base[k]
			}
			a[i*n+j] = s * inv
		}
	}
	return true
}

// cholSolve solves L L' x = b in place given the factor produced by
// tryChol; b is overwritten with the solution.
func cholSolve(l []float64, n int, b []float64) {
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		row := l[i*n:]
		for k := 0; k < i; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s / row[i]
	}
	// Backward solve L' x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * b[k]
		}
		b[i] = s / l[i*n+i]
	}
}

// cholInverse replaces the n x n SPD matrix a (of which only the lower
// triangle is valid Cholesky factor input) with its full inverse. a must
// already hold the lower Cholesky factor L; on return a holds (L L')^{-1}
// as a full symmetric matrix.
func cholInverse(a []float64, n int, scratch []float64) {
	// Invert L in place into the lower triangle of scratch.
	inv := scratch[:n*n]
	for i := range inv {
		inv[i] = 0
	}
	for j := 0; j < n; j++ {
		inv[j*n+j] = 1 / a[j*n+j]
		for i := j + 1; i < n; i++ {
			s := 0.0
			row := a[i*n:]
			for k := j; k < i; k++ {
				s -= row[k] * inv[k*n+j]
			}
			inv[i*n+j] = s / row[i]
		}
	}
	// a = inv' * inv  (only lower triangle computed, then mirrored).
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := i; k < n; k++ { // inv[k*n+i], inv[k*n+j] nonzero for k >= max(i,j)=i
				s += inv[k*n+i] * inv[k*n+j]
			}
			a[i*n+j] = s
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a[i*n+j] = a[j*n+i]
		}
	}
}
