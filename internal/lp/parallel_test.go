package lp

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randomGeoIndProblem builds a well-posed random instance shaped like the
// OPT linear program: objective = prior-weighted distances over an n-point
// configuration, constraints = all ordered pairs with exp(-eps d)
// coefficients.
func randomGeoIndProblem(n int, seed uint64) *GeoIndProblem {
	rng := rand.New(rand.NewPCG(seed, 7))
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Float64() * 10, rng.Float64() * 10}
	}
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = 0.1 + rng.Float64()
		total += w[i]
	}
	dist := func(a, b pt) float64 { return math.Hypot(a.x-b.x, a.y-b.y) }
	p := &GeoIndProblem{N: n, Obj: make([]float64, n*n)}
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			p.Obj[x*n+z] = w[x] / total * dist(pts[x], pts[z])
		}
	}
	const eps = 0.5
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			p.Pairs = append(p.Pairs, Pair{X: x, Xp: xp, Coef: math.Exp(-eps * dist(pts[x], pts[xp]))})
		}
	}
	return p
}

// TestSolveWorkersBitIdentical verifies the parallel IPM's core guarantee:
// the per-column blocks are processed independently and every cross-block
// accumulation is serial in fixed order, so Workers=N returns the exact same
// floating-point result as Workers=1.
func TestSolveWorkersBitIdentical(t *testing.T) {
	for _, n := range []int{4, 9, 16} {
		p := randomGeoIndProblem(n, uint64(n))
		ref, err := p.Solve(&IPMOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Status != StatusOptimal {
			t.Fatalf("n=%d reference did not converge: %v", n, ref.Status)
		}
		for _, workers := range []int{2, 4, -1} {
			got, err := p.Solve(&IPMOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got.Status != ref.Status || got.Iters != ref.Iters {
				t.Errorf("n=%d workers=%d status/iters (%v,%d) differ from serial (%v,%d)",
					n, workers, got.Status, got.Iters, ref.Status, ref.Iters)
			}
			for i := range ref.K {
				if got.K[i] != ref.K[i] {
					t.Fatalf("n=%d workers=%d K[%d]=%g differs from serial %g (must be bit-identical)",
						n, workers, i, got.K[i], ref.K[i])
				}
			}
			if got.Obj != ref.Obj {
				t.Errorf("n=%d workers=%d obj %g != serial %g", n, workers, got.Obj, ref.Obj)
			}
		}
	}
}

// TestSolveWorkersRepeated guards against pool-lifecycle bugs: many solves
// through the same options must neither leak worker goroutines per solve
// (the pool is closed with its state) nor corrupt results.
func TestSolveWorkersRepeated(t *testing.T) {
	p := randomGeoIndProblem(9, 3)
	ref, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := p.Solve(&IPMOptions{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got.Obj != ref.Obj {
			t.Fatalf("solve %d: obj %g != %g", i, got.Obj, ref.Obj)
		}
	}
}
