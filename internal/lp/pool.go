package lp

import (
	"runtime"
	"sync"
)

// blockPool is the bounded fork-join worker pool used by the interior-point
// method to process the n independent per-column normal-equation blocks in
// parallel. The blocks are independent by construction (the GeoInd
// inequality constraints couple variables only within one reported column z,
// see DESIGN.md §4), so each can be assembled, factored and inverted on its
// own core. Workers are persistent goroutines living for the duration of one
// Solve call: factorBlocks and solveKKT dispatch to them every iteration
// without re-spawning.
//
// Determinism: every parallel section writes only to per-z disjoint
// destinations (block z's inverse, dv's z-th segment); all floating-point
// accumulations that cross blocks (the Schur complement sum, the rhsY
// reduction) stay serial and in fixed z order. The solver output is
// therefore bit-identical for every worker count.
type blockPool struct {
	workers int
	tasks   chan blockTask
	wg      sync.WaitGroup
}

type blockTask struct {
	lo, hi int // half-open z range
	fn     func(worker, z int)
	done   *sync.WaitGroup
	worker int
}

// resolveWorkers maps the IPMOptions.Workers convention onto an effective
// worker count: 0 and 1 mean serial, n > 1 means n workers, n < 0 means one
// per CPU.
func resolveWorkers(n int) int {
	switch {
	case n < 0:
		return runtime.NumCPU()
	case n <= 1:
		return 1
	default:
		return n
	}
}

// newBlockPool starts a pool with the given effective worker count; a count
// of one returns nil (callers run inline).
func newBlockPool(workers int) *blockPool {
	if workers <= 1 {
		return nil
	}
	p := &blockPool{workers: workers, tasks: make(chan blockTask)}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				for z := t.lo; z < t.hi; z++ {
					t.fn(t.worker, z)
				}
				t.done.Done()
			}
		}()
	}
	return p
}

// close terminates the worker goroutines.
func (p *blockPool) close() {
	if p != nil {
		close(p.tasks)
		p.wg.Wait()
	}
}

// forEachBlock runs fn(worker, z) for every z in [0, n), partitioned into
// one contiguous span per worker. fn receives the span's worker index so it
// can use per-worker scratch buffers; spans never overlap, so writes to
// per-z destinations are race-free. With a nil pool it runs inline as
// worker 0.
func (p *blockPool) forEachBlock(n int, fn func(worker, z int)) {
	if p == nil || n < 2 {
		for z := 0; z < n; z++ {
			fn(0, z)
		}
		return
	}
	spans := p.workers
	if spans > n {
		spans = n
	}
	var done sync.WaitGroup
	done.Add(spans)
	for w := 0; w < spans; w++ {
		lo := w * n / spans
		hi := (w + 1) * n / spans
		p.tasks <- blockTask{lo: lo, hi: hi, fn: fn, done: &done, worker: w}
	}
	done.Wait()
}
