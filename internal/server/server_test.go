package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"geoind/internal/geo"
	"geoind/internal/laplace"
)

// plReporter adapts the laplace mechanism to the Reporter interface.
type plReporter struct {
	m  *laplace.Mechanism
	mu sync.Mutex
}

func (p *plReporter) Report(x geo.Point) (geo.Point, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m.Sample(x), nil
}
func (p *plReporter) Epsilon() float64 { return p.m.Epsilon() }
func (p *plReporter) Name() string     { return "PL" }

func newTestReporter(t *testing.T, eps float64) Reporter {
	t.Helper()
	m, err := laplace.New(eps, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	return &plReporter{m: m}
}

// fakeClock is an adjustable clock for window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestLedgerValidation(t *testing.T) {
	if _, err := NewLedger(0, time.Hour, nil); err == nil {
		t.Error("zero limit should error")
	}
	if _, err := NewLedger(1, 0, nil); err == nil {
		t.Error("zero window should error")
	}
}

func TestLedgerSpendAndExhaust(t *testing.T) {
	l, err := NewLedger(1.0, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Spend("alice", 0.25); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	if err := l.Spend("alice", 0.25); err != ErrBudgetExhausted {
		t.Errorf("5th spend: got %v want ErrBudgetExhausted", err)
	}
	if r := l.Remaining("alice"); r > 1e-9 {
		t.Errorf("remaining %g want 0", r)
	}
	// Other users are unaffected.
	if err := l.Spend("bob", 1.0); err != nil {
		t.Errorf("bob: %v", err)
	}
	if l.Users() != 2 {
		t.Errorf("users %d want 2", l.Users())
	}
	if err := l.Spend("carol", -1); err == nil {
		t.Error("negative spend should error")
	}
}

func TestLedgerWindowReset(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l, err := NewLedger(0.5, 24*time.Hour, clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("u", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("u", 0.5); err != ErrBudgetExhausted {
		t.Fatalf("got %v", err)
	}
	clock.Advance(23 * time.Hour)
	if err := l.Spend("u", 0.5); err != ErrBudgetExhausted {
		t.Fatalf("window not elapsed yet: got %v", err)
	}
	clock.Advance(2 * time.Hour)
	if err := l.Spend("u", 0.5); err != nil {
		t.Fatalf("after window: %v", err)
	}
}

func TestLedgerConcurrentSpends(t *testing.T) {
	l, err := NewLedger(100, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 400)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				errs <- l.Spend("shared", 0.25)
			}
		}()
	}
	wg.Wait()
	close(errs)
	ok := 0
	for err := range errs {
		if err == nil {
			ok++
		}
	}
	// 400 spends of 0.25 against limit 100: exactly 400 must succeed.
	if ok != 400 {
		t.Errorf("%d spends succeeded, want 400", ok)
	}
	if r := l.Remaining("shared"); r > 1e-9 {
		t.Errorf("remaining %g want 0", r)
	}
}

func TestLedgerSaveLoad(t *testing.T) {
	clock := &fakeClock{t: time.Unix(5000, 0)}
	l, err := NewLedger(2, time.Hour, clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("a", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("b", 0.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l2, err := NewLedger(2, time.Hour, clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if r := l2.Remaining("a"); r < 0.49 || r > 0.51 {
		t.Errorf("a remaining %g want 0.5", r)
	}
	// Mismatched config rejected.
	l3, _ := NewLedger(5, time.Hour, clock.Now)
	if err := l3.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("limit mismatch should error")
	}
	if err := l2.Load(strings.NewReader("{garbage")); err == nil {
		t.Error("bad JSON should error")
	}
}

func newTestServer(t *testing.T, ledger *Ledger) *httptest.Server {
	t.Helper()
	s, err := New(newTestReporter(t, 0.5), ledger, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func postReport(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/report", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServerValidation(t *testing.T) {
	if _, err := New(nil, nil, geo.NewSquare(20)); err == nil {
		t.Error("nil mechanism should error")
	}
	if _, err := New(newTestReporter(t, 0.5), nil, geo.Rect{}); err == nil {
		t.Error("degenerate region should error")
	}
	tiny, _ := NewLedger(0.1, time.Hour, nil)
	if _, err := New(newTestReporter(t, 0.5), tiny, geo.NewSquare(20)); err == nil {
		t.Error("ledger below per-report eps should error")
	}
}

func TestServerHealthAndInfo(t *testing.T) {
	ledger, _ := NewLedger(2, time.Hour, nil)
	ts := newTestServer(t, ledger)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Mechanism != "PL" || info.Epsilon != 0.5 || info.RegionSideKm != 20 || info.BudgetLimit != 2 {
		t.Errorf("info = %+v", info)
	}
}

func TestServerReportFlow(t *testing.T) {
	ledger, _ := NewLedger(1.0, time.Hour, nil)
	ts := newTestServer(t, ledger)

	resp, out := postReport(t, ts.URL, `{"user_id":"alice","x":5,"y":5}`)
	if resp.StatusCode != 200 {
		t.Fatalf("report: %d (%v)", resp.StatusCode, out)
	}
	if out["eps_spent"].(float64) != 0.5 {
		t.Errorf("eps_spent %v", out["eps_spent"])
	}
	if out["remaining_budget"].(float64) != 0.5 {
		t.Errorf("remaining %v want 0.5", out["remaining_budget"])
	}

	// Second report exhausts the budget; third is refused with 429.
	resp, _ = postReport(t, ts.URL, `{"user_id":"alice","x":5,"y":5}`)
	if resp.StatusCode != 200 {
		t.Fatalf("second report: %d", resp.StatusCode)
	}
	resp, out = postReport(t, ts.URL, `{"user_id":"alice","x":5,"y":5}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third report: %d want 429 (%v)", resp.StatusCode, out)
	}

	// Budget endpoint agrees.
	bresp, err := http.Get(ts.URL + "/v1/budget?user_id=alice")
	if err != nil {
		t.Fatal(err)
	}
	var budget map[string]any
	if err := json.NewDecoder(bresp.Body).Decode(&budget); err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if budget["remaining_budget"].(float64) != 0 {
		t.Errorf("budget endpoint: %v", budget)
	}
}

func TestServerBadRequests(t *testing.T) {
	ledger, _ := NewLedger(10, time.Hour, nil)
	ts := newTestServer(t, ledger)

	cases := []struct {
		body string
		want int
	}{
		{`{"user_id":"u","x":5,"y":5}`, 200},
		{`not json`, 400},
		{`{"user_id":"u","x":5,"y":5,"extra":1}`, 400}, // unknown field
		{`{"x":5,"y":5}`, 400},                         // missing user
		{`{"user_id":"u","x":500,"y":5}`, 400},         // outside region
	}
	for _, c := range cases {
		resp, out := postReport(t, ts.URL, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("body %q: status %d want %d (%v)", c.body, resp.StatusCode, c.want, out)
		}
	}

	// Wrong methods.
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/report: %d want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/info", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/info: %d want 405", resp.StatusCode)
	}

	// Budget endpoint without user.
	resp, err = http.Get(ts.URL + "/v1/budget")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("budget without user: %d want 400", resp.StatusCode)
	}
}

func TestServerWithoutLedger(t *testing.T) {
	ts := newTestServer(t, nil)
	// No user_id needed, unlimited reports.
	for i := 0; i < 5; i++ {
		resp, out := postReport(t, ts.URL, `{"x":5,"y":5}`)
		if resp.StatusCode != 200 {
			t.Fatalf("report %d: %d (%v)", i, resp.StatusCode, out)
		}
		if _, ok := out["remaining_budget"]; ok {
			t.Error("remaining_budget should be omitted without ledger")
		}
	}
	resp, err := http.Get(ts.URL + "/v1/budget?user_id=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("budget endpoint without ledger: %d want 404", resp.StatusCode)
	}
}

// batchCountingReporter wraps plReporter and counts pooled-batch calls so
// tests can assert the handler prefers ReportBatch over a Report loop.
type batchCountingReporter struct {
	plReporter
	batchCalls int
	batchPts   int
}

func (b *batchCountingReporter) ReportBatch(xs []geo.Point) ([]geo.Point, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.batchCalls++
	b.batchPts += len(xs)
	out := make([]geo.Point, len(xs))
	for i, x := range xs {
		out[i] = b.m.Sample(x)
	}
	return out, nil
}

func postBatch(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/report:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServerBatchReport(t *testing.T) {
	m, err := laplace.New(0.5, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	rep := &batchCountingReporter{plReporter: plReporter{m: m}}
	ledger, _ := NewLedger(2.0, time.Hour, nil)
	s, err := New(rep, ledger, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, out := postBatch(t, ts.URL,
		`[{"user_id":"alice","x":5,"y":5},{"user_id":"alice","x":6,"y":6},{"user_id":"alice","x":7,"y":7}]`)
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d (%v)", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results len %d want 3", len(results))
	}
	if got := out["eps_spent"].(float64); got != 1.5 {
		t.Errorf("eps_spent %g want 1.5 (3 * 0.5)", got)
	}
	if got := out["remaining_budget"].(float64); got != 0.5 {
		t.Errorf("remaining %g want 0.5", got)
	}
	if rep.batchCalls != 1 || rep.batchPts != 3 {
		t.Errorf("pooled path not used: %d calls / %d points, want 1 / 3", rep.batchCalls, rep.batchPts)
	}
	// The single-report endpoint agrees with the batch ledger state.
	if r := ledger.Remaining("alice"); r != 0.5 {
		t.Errorf("ledger remaining %g want 0.5", r)
	}
}

func TestServerBatchAllOrNothing(t *testing.T) {
	ledger, _ := NewLedger(1.0, time.Hour, nil)
	ts := newTestServer(t, ledger)

	// Batch cost 3*0.5 = 1.5 > limit 1.0: refused, ledger untouched.
	resp, out := postBatch(t, ts.URL,
		`[{"user_id":"u","x":1,"y":1},{"user_id":"u","x":2,"y":2},{"user_id":"u","x":3,"y":3}]`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget batch: %d want 429 (%v)", resp.StatusCode, out)
	}
	if r := ledger.Remaining("u"); r != 1.0 {
		t.Errorf("ledger changed on rejected batch: remaining %g want 1.0", r)
	}

	// A batch that exactly fits succeeds and drains the budget to zero.
	resp, out = postBatch(t, ts.URL, `[{"user_id":"u","x":1,"y":1},{"user_id":"u","x":2,"y":2}]`)
	if resp.StatusCode != 200 {
		t.Fatalf("exact-fit batch: %d (%v)", resp.StatusCode, out)
	}
	if r := ledger.Remaining("u"); r > 1e-9 {
		t.Errorf("remaining %g want 0", r)
	}

	// Even a single-point batch is now refused; ledger still at zero spend.
	resp, _ = postBatch(t, ts.URL, `[{"user_id":"u","x":1,"y":1}]`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("post-exhaustion batch: %d want 429", resp.StatusCode)
	}
}

func TestServerBatchBadRequests(t *testing.T) {
	ledger, _ := NewLedger(100, time.Hour, nil)
	ts := newTestServer(t, ledger)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"ok", `[{"user_id":"u","x":5,"y":5}]`, 200},
		{"empty batch", `[]`, 400},
		{"not json", `nonsense`, 400},
		{"object not array", `{"user_id":"u","x":5,"y":5}`, 400},
		{"malformed entry", `[{"user_id":"u","x":"five","y":5}]`, 400},
		{"unknown field", `[{"user_id":"u","x":5,"y":5,"zz":1}]`, 400},
		{"missing user", `[{"x":5,"y":5}]`, 400},
		{"mixed users", `[{"user_id":"u","x":5,"y":5},{"user_id":"v","x":6,"y":6}]`, 400},
		{"out of region", `[{"user_id":"u","x":5,"y":5},{"user_id":"u","x":500,"y":5}]`, 400},
	}
	for _, c := range cases {
		resp, out := postBatch(t, ts.URL, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d want %d (%v)", c.name, resp.StatusCode, c.want, out)
		}
	}
	// Nothing but the one valid batch may have been charged.
	if r := ledger.Remaining("u"); r != 99.5 {
		t.Errorf("remaining %g want 99.5: a rejected batch was charged", r)
	}
	if r := ledger.Remaining("v"); r != 100 {
		t.Errorf("user v remaining %g want 100", r)
	}

	// Oversized batch: MaxBatchSize+1 valid entries, rejected with 413.
	var sb strings.Builder
	sb.WriteString("[")
	for i := 0; i <= MaxBatchSize; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"user_id":"u","x":5,"y":5}`)
	}
	sb.WriteString("]")
	resp, _ := postBatch(t, ts.URL, sb.String())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: %d want 413", resp.StatusCode)
	}
	if r := ledger.Remaining("u"); r != 99.5 {
		t.Errorf("oversized batch charged the ledger: remaining %g want 99.5", r)
	}

	// Wrong method.
	resp2, err := http.Get(ts.URL + "/v1/report:batch")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/report:batch: %d want 405", resp2.StatusCode)
	}
}

func TestServerBatchWithoutLedger(t *testing.T) {
	ts := newTestServer(t, nil)
	// user_id is not required (and mixed entries are fine) without budgets.
	resp, out := postBatch(t, ts.URL, `[{"x":5,"y":5},{"user_id":"anyone","x":6,"y":6}]`)
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d (%v)", resp.StatusCode, out)
	}
	if len(out["results"].([]any)) != 2 {
		t.Errorf("results: %v", out["results"])
	}
	if _, ok := out["remaining_budget"]; ok {
		t.Error("remaining_budget should be omitted without ledger")
	}
}

func TestServerReportsArePerturbed(t *testing.T) {
	ts := newTestServer(t, nil)
	distinct := map[string]bool{}
	for i := 0; i < 10; i++ {
		_, out := postReport(t, ts.URL, `{"x":10,"y":10}`)
		distinct[fmt.Sprintf("%v,%v", out["x"], out["y"])] = true
	}
	if len(distinct) < 2 {
		t.Error("10 reports produced identical outputs; mechanism not sampling")
	}
}
