package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"geoind/internal/channel"
	"geoind/internal/geo"
	"geoind/internal/metrics"
)

// scrape fetches /metrics, asserts it parses as valid exposition text, and
// returns the samples keyed by full series name.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, problems := metrics.Validate(string(body))
	for _, p := range problems {
		t.Errorf("exposition problem: %s", p)
	}
	return samples
}

func TestMetricsEndpoint(t *testing.T) {
	ledger, err := NewLedger(10, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, ledger)

	// Drive every instrumented outcome the scrape should reflect: two good
	// reports, one validation failure, and a probe.
	for i := 0; i < 2; i++ {
		resp, _ := postReport(t, ts.URL, `{"user_id":"u1","x":1,"y":2}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report %d: status %d", i, resp.StatusCode)
		}
	}
	resp, _ := postReport(t, ts.URL, `{"user_id":"u1","x":999,"y":2}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-region report: status %d", resp.StatusCode)
	}
	if hr, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		hr.Body.Close()
	}

	samples := scrape(t, ts.URL)
	if got := samples[`geoind_requests_total{code="200",endpoint="/v1/report"}`]; got != 2 {
		t.Errorf("report 200s = %g, want 2", got)
	}
	if got := samples[`geoind_requests_total{code="400",endpoint="/v1/report"}`]; got != 1 {
		t.Errorf("report 400s = %g, want 1", got)
	}
	if got := samples[`geoind_requests_total{code="200",endpoint="/healthz"}`]; got != 1 {
		t.Errorf("healthz 200s = %g, want 1", got)
	}
	if got := samples[`geoind_request_duration_seconds_count{endpoint="/v1/report"}`]; got != 3 {
		t.Errorf("report latency count = %g, want 3", got)
	}
	if got := samples["geoind_budget_charges_total"]; got != 2 {
		t.Errorf("budget charges = %g, want 2 (400 must not charge)", got)
	}
	if got := samples["geoind_budget_eps_charged_total"]; got != 1.0 {
		t.Errorf("eps charged = %g, want 1.0 (2 reports at eps=0.5)", got)
	}
	if got := samples["geoind_budget_refunds_total"]; got != 0 {
		t.Errorf("budget refunds = %g, want 0", got)
	}
	// Scraping must not count itself.
	if got := samples[`geoind_requests_total{code="200",endpoint="/metrics"}`]; got != 0 {
		t.Errorf("/metrics counted itself: %g", got)
	}
}

func TestMetricsExposeStoreCounters(t *testing.T) {
	rep := &dirStatsReporter{
		statsReporter: statsReporter{
			Reporter: newTestReporter(t, 0.5),
			st: channel.Stats{
				Hits: 7, Misses: 3, Evictions: 1, BackingHits: 2, BackingWrites: 3,
				Entries: 4, Cost: 4096, Inflight: 1, Abandoned: 1, Canceled: 2,
				Queued: 5, Rejected: 6,
			},
		},
		dst: channel.DirStats{VersionMisses: 8, Errors: 9},
		ok:  true,
	}
	s, err := New(rep, nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	samples := scrape(t, ts.URL)
	want := map[string]float64{
		"geoind_channel_cache_hits_total":        7,
		"geoind_channel_cache_misses_total":      3,
		"geoind_channel_cache_evictions_total":   1,
		"geoind_channel_cache_disk_hits_total":   2,
		"geoind_channel_cache_disk_writes_total": 3,
		"geoind_channel_cache_entries":           4,
		"geoind_channel_cache_cost_bytes":        4096,
		"geoind_solves_inflight":                 1,
		"geoind_channel_solves_abandoned_total":  1,
		"geoind_channel_solves_canceled_total":   2,
		"geoind_solve_queue_depth":               5,
		"geoind_solve_rejected_total":            6,
		"geoind_snapshot_version_misses_total":   8,
		"geoind_snapshot_disk_errors_total":      9,
	}
	for name, v := range want {
		if samples[name] != v {
			t.Errorf("%s = %g, want %g", name, samples[name], v)
		}
	}
}

// overloadReporter fails every report with the admission-queue-full error,
// wrapped the way the mechanism stack wraps it.
type overloadReporter struct {
	Reporter
}

func (r *overloadReporter) Report(geo.Point) (geo.Point, error) {
	return geo.Point{}, fmt.Errorf("solve channel: %w", channel.ErrSolveOverload)
}

func (r *overloadReporter) ReportBatch([]geo.Point) ([]geo.Point, error) {
	return nil, fmt.Errorf("solve channel: %w", channel.ErrSolveOverload)
}

func TestOverloadReturns429AndChargesNothing(t *testing.T) {
	const limit = 10.0
	ledger, err := NewLedger(limit, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(&overloadReporter{Reporter: newTestReporter(t, 0.5)}, ledger, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, out := postReport(t, ts.URL, `{"user_id":"u1","x":1,"y":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded report: status %d, want 429 (body %v)", resp.StatusCode, out)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}

	// Batch path: same contract.
	br, err := http.Post(ts.URL+"/v1/report:batch", "application/json",
		strings.NewReader(`[{"user_id":"u1","x":1,"y":2},{"user_id":"u1","x":3,"y":4}]`))
	if err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if br.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded batch: status %d, want 429", br.StatusCode)
	}
	if got := br.Header.Get("Retry-After"); got != "1" {
		t.Errorf("batch Retry-After = %q, want \"1\"", got)
	}

	// The shed requests must not consume budget: the spend was refunded in
	// full, so remaining equals the configured limit.
	bresp, err := http.Get(ts.URL + "/v1/budget?user_id=u1")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var budget struct {
		Remaining float64 `json:"remaining_budget"`
	}
	if err := json.NewDecoder(bresp.Body).Decode(&budget); err != nil {
		t.Fatal(err)
	}
	if budget.Remaining != limit {
		t.Errorf("remaining budget after 429s = %g, want full limit %g", budget.Remaining, limit)
	}

	// And the metrics must show the round trip: every charge refunded, eps
	// refunded mass equal to eps charged mass.
	samples := scrape(t, ts.URL)
	if c, r := samples["geoind_budget_charges_total"], samples["geoind_budget_refunds_total"]; c != r || c == 0 {
		t.Errorf("charges %g vs refunds %g, want equal and nonzero", c, r)
	}
	if c, r := samples["geoind_budget_eps_charged_total"], samples["geoind_budget_eps_refunded_total"]; c != r || c == 0 {
		t.Errorf("eps charged %g vs refunded %g, want equal and nonzero", c, r)
	}
	if got := samples[`geoind_requests_total{code="429",endpoint="/v1/report"}`]; got != 1 {
		t.Errorf("429 count = %g, want 1", got)
	}
}

func TestStatsExposeAdmissionCounters(t *testing.T) {
	rep := &statsReporter{
		Reporter: newTestReporter(t, 0.5),
		st:       channel.Stats{Queued: 3, Rejected: 11},
	}
	s, err := New(rep, nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ChannelCache *ChannelCacheStats `json:"channel_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ChannelCache == nil {
		t.Fatal("stats response missing channel_cache")
	}
	if out.ChannelCache.SolveQueueDepth != 3 {
		t.Errorf("solve_queue_depth = %d, want 3", out.ChannelCache.SolveQueueDepth)
	}
	if out.ChannelCache.SolveRejected != 11 {
		t.Errorf("solve_rejected = %d, want 11", out.ChannelCache.SolveRejected)
	}
}
