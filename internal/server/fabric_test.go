package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"geoind/internal/channel"
	"geoind/internal/fabric"
	"geoind/internal/geo"
	"geoind/internal/metrics"
)

// fabricReporter stands in for an MSM joined to a channel fabric: it serves
// one canned snapshot frame and fixed fabric counters.
type fabricReporter struct {
	Reporter
	key     channel.Key
	frame   []byte
	err     error // overrides the frame when set
	gotKey  channel.Key
	gotSolv bool
	st      fabric.Stats
	hist    *metrics.Histogram
}

func (f *fabricReporter) ChannelSnapshot(_ context.Context, key channel.Key, solve bool) ([]byte, error) {
	f.gotKey, f.gotSolv = key, solve
	if f.err != nil {
		return nil, f.err
	}
	if key != f.key {
		return nil, fmt.Errorf("%w: not my key", channel.ErrUnknownKey)
	}
	return f.frame, nil
}

func (f *fabricReporter) FabricStats() (fabric.Stats, bool)      { return f.st, true }
func (f *fabricReporter) FabricFetchLatency() *metrics.Histogram { return f.hist }

func newFabricReporter(t *testing.T) *fabricReporter {
	t.Helper()
	key := channel.NewKey("msm", 1, 5, 0.5, 0, 0xabc)
	hist := metrics.NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	hist.Observe(0.002)
	return &fabricReporter{
		Reporter: newTestReporter(t, 0.5),
		key:      key,
		frame:    channel.Snapshot(key, []byte("payload")),
		st: fabric.Stats{
			Self:  "http://a",
			Peers: []string{"http://a", "http://b"},
			Tiers: []channel.TierStats{
				{Name: "mem", DirStats: channel.DirStats{Loads: 10, Hits: 6}},
				{Name: "remote", DirStats: channel.DirStats{Loads: 4, Hits: 3, Errors: 1}, LoadNanos: 2_000_000},
			},
			Remote: &fabric.RemoteStats{Fetches: 4, Hedges: 2, HedgeWins: 1, Retries: 1, Fallbacks: 1},
		},
		hist: hist,
	}
}

// TestChannelSnapshotEndpoint: the fleet snapshot endpoint round-trips a
// frame for a well-formed URL and maps mechanism errors onto the statuses
// the remote tier's retry triage expects.
func TestChannelSnapshotEndpoint(t *testing.T) {
	mech := newFabricReporter(t)
	srv, err := New(mech, nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}

	rec := get(fabric.SnapshotURL("http://a", mech.key, true))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !bytes.Equal(rec.Body.Bytes(), mech.frame) {
		t.Fatal("response body is not the snapshot frame")
	}
	if mech.gotKey != mech.key || !mech.gotSolv {
		t.Fatalf("mechanism saw key %+v solve=%v", mech.gotKey, mech.gotSolv)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}

	// solve=0 must reach the mechanism as solve=false (the hedge contract).
	if rec := get(fabric.SnapshotURL("http://a", mech.key, false)); rec.Code != http.StatusOK {
		t.Fatalf("cached-only status %d", rec.Code)
	} else if mech.gotSolv {
		t.Fatal("solve=0 URL reached the mechanism with solve=true")
	}

	// Error mapping.
	otherKey := channel.NewKey("msm", 2, 9, 0.25, 0, 0xabc)
	if rec := get(fabric.SnapshotURL("http://a", otherKey, true)); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown key: status %d, want 404", rec.Code)
	}
	mech.err = channel.ErrNotCached
	if rec := get(fabric.SnapshotURL("http://a", mech.key, false)); rec.Code != http.StatusNotFound {
		t.Fatalf("not cached: status %d, want 404", rec.Code)
	}
	mech.err = channel.ErrSolveOverload
	rec = get(fabric.SnapshotURL("http://a", mech.key, true))
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("overload: status %d retry-after %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	mech.err = context.DeadlineExceeded
	if rec := get(fabric.SnapshotURL("http://a", mech.key, true)); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline: status %d, want 504", rec.Code)
	}
	mech.err = fmt.Errorf("solver exploded")
	if rec := get(fabric.SnapshotURL("http://a", mech.key, true)); rec.Code != http.StatusInternalServerError {
		t.Fatalf("generic error: status %d, want 500", rec.Code)
	}
	mech.err = nil

	// Malformed URLs are rejected before the mechanism sees them.
	if rec := get("/v1/channels/zzzz"); rec.Code != http.StatusBadRequest {
		t.Fatalf("mangled URL: status %d, want 400", rec.Code)
	}
	// Method and capability gates.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, fabric.SnapshotURL("http://a", mech.key, true), nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", rec.Code)
	}
}

// TestChannelSnapshotWithoutSource: a mechanism that serves no snapshots
// answers 404 (a definitive miss for the remote tier), not 500.
func TestChannelSnapshotWithoutSource(t *testing.T) {
	srv, err := New(newTestReporter(t, 0.5), nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	key := channel.NewKey("msm", 1, 5, 0.5, 0, 0xabc)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fabric.SnapshotURL("http://a", key, true), nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
}

// TestStatsEndpointFabricSection: a fabric-joined mechanism surfaces the
// per-tier and remote counters; plain mechanisms omit the section.
func TestStatsEndpointFabricSection(t *testing.T) {
	mech := newFabricReporter(t)
	srv, err := New(mech, nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	fs := resp.Fabric
	if fs == nil {
		t.Fatal("fabric section missing")
	}
	if fs.Self != "http://a" || len(fs.Peers) != 2 {
		t.Fatalf("fleet identity %+v", fs)
	}
	if len(fs.Tiers) != 2 || fs.Tiers[0].Name != "mem" || fs.Tiers[1].Name != "remote" {
		t.Fatalf("tiers %+v", fs.Tiers)
	}
	if fs.Tiers[1].Errors != 1 || fs.Tiers[1].LoadMsTotal != 2 {
		t.Fatalf("remote tier counters %+v", fs.Tiers[1])
	}
	if fs.Remote == nil || fs.Remote.Hedges != 2 || fs.Remote.HedgeWins != 1 || fs.Remote.Fallbacks != 1 {
		t.Fatalf("remote section %+v", fs.Remote)
	}

	// A non-fabric mechanism omits the key entirely.
	plain, err := New(newTestReporter(t, 0.5), nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["fabric"]; ok {
		t.Fatal("fabric section present for a plain Reporter")
	}
}

// TestMetricsFabricSeries: /metrics renders the per-tier counters, the
// remote fetch counters, and the externally-owned fetch-latency histogram.
func TestMetricsFabricSeries(t *testing.T) {
	srv, err := New(newFabricReporter(t), nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`geoind_fabric_tier_loads_total{tier="mem"} 10`,
		`geoind_fabric_tier_hits_total{tier="remote"} 3`,
		`geoind_fabric_tier_errors_total{tier="remote"} 1`,
		`geoind_fabric_remote_fetches_total 4`,
		`geoind_fabric_remote_hedges_total 2`,
		`geoind_fabric_remote_hedge_wins_total 1`,
		`geoind_fabric_remote_fallbacks_total 1`,
		`geoind_fabric_fetch_duration_seconds_count 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape output missing %q", want)
		}
	}
}
