package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"geoind/internal/channel"
	"geoind/internal/geo"
)

// statsReporter is a Reporter that also exposes channel-store counters,
// standing in for MSM/adaptive mechanisms in /v1/stats tests.
type statsReporter struct {
	Reporter
	st channel.Stats
}

func (s *statsReporter) StoreStats() channel.Stats { return s.st }

// dirStatsReporter additionally exposes persistent-cache counters, standing
// in for a mechanism with a configured cache directory.
type dirStatsReporter struct {
	statsReporter
	dst channel.DirStats
	ok  bool
}

func (d *dirStatsReporter) DirCacheStats() (channel.DirStats, bool) { return d.dst, d.ok }

func TestStatsEndpoint(t *testing.T) {
	mech := &statsReporter{
		Reporter: newTestReporter(t, 0.5),
		st: channel.Stats{
			Hits: 12, Misses: 3, BackingHits: 7, BackingWrites: 3,
			Entries: 3, Cost: 4096, Evictions: 1,
		},
	}
	srv, err := New(mech, nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mechanism != "PL" {
		t.Errorf("mechanism %q", resp.Mechanism)
	}
	cc := resp.ChannelCache
	if cc == nil {
		t.Fatal("channel_cache missing for a StoreStatser mechanism")
	}
	if cc.Hits != 12 || cc.Misses != 3 || cc.DiskHits != 7 || cc.DiskWrites != 3 ||
		cc.Entries != 3 || cc.CostBytes != 4096 || cc.Evictions != 1 {
		t.Fatalf("channel_cache %+v", cc)
	}
}

// TestStatsEndpointDirCacheCounters: a mechanism with a persistent snapshot
// cache surfaces version misses (format-skew rollout signal) and decode
// errors separately from the in-memory store counters.
func TestStatsEndpointDirCacheCounters(t *testing.T) {
	mech := &dirStatsReporter{
		statsReporter: statsReporter{
			Reporter: newTestReporter(t, 0.5),
			st:       channel.Stats{Hits: 1, Misses: 9},
		},
		dst: channel.DirStats{Loads: 10, Hits: 1, VersionMisses: 8, Errors: 1},
		ok:  true,
	}
	srv, err := New(mech, nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	cc := resp.ChannelCache
	if cc == nil {
		t.Fatal("channel_cache missing")
	}
	if cc.VersionMisses != 8 || cc.DiskErrors != 1 {
		t.Fatalf("version_misses=%d disk_errors=%d, want 8 and 1", cc.VersionMisses, cc.DiskErrors)
	}

	// Without a configured cache directory (ok=false) the counters stay zero.
	mech.ok = false
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	resp = StatsResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ChannelCache.VersionMisses != 0 || resp.ChannelCache.DiskErrors != 0 {
		t.Fatalf("counters leaked without a backing: %+v", resp.ChannelCache)
	}
}

func TestStatsEndpointWithoutStoreStatser(t *testing.T) {
	srv, err := New(newTestReporter(t, 0.5), nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	// The channel_cache key must be omitted entirely, not null-filled.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["channel_cache"]; ok {
		t.Fatal("channel_cache present for a plain Reporter")
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stats", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats: status %d, want 405", rec.Code)
	}
}

// localStatsReporter stands in for a mechanism supporting the locally
// relevant OPT construction.
type localStatsReporter struct {
	Reporter
	radius, floor   float64
	local, fallback int64
}

func (l *localStatsReporter) LocalInfo() (radius, massFloor float64, localChannels, denseFallbacks int64) {
	return l.radius, l.floor, l.local, l.fallback
}

// TestStatsEndpointLocalSection: a LocalStatser mechanism with the variant
// enabled surfaces the local solve and dense-fallback counters; with the
// variant off (radius 0) the section is omitted entirely.
func TestStatsEndpointLocalSection(t *testing.T) {
	mech := &localStatsReporter{
		Reporter: newTestReporter(t, 0.5),
		radius:   2.5, floor: 0.01, local: 20, fallback: 1,
	}
	srv, err := New(mech, nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Local == nil {
		t.Fatal("local section missing for an enabled LocalStatser mechanism")
	}
	if resp.Local.RadiusKm != 2.5 || resp.Local.MassFloor != 0.01 ||
		resp.Local.LocalChannels != 20 || resp.Local.DenseFallbacks != 1 {
		t.Fatalf("local section %+v", resp.Local)
	}

	// Variant off: the key must be omitted, not zero-filled.
	mech.radius = 0
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["local"]; ok {
		t.Fatal("local section present with the variant disabled")
	}
}
