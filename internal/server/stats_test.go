package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"geoind/internal/channel"
	"geoind/internal/geo"
)

// statsReporter is a Reporter that also exposes channel-store counters,
// standing in for MSM/adaptive mechanisms in /v1/stats tests.
type statsReporter struct {
	Reporter
	st channel.Stats
}

func (s *statsReporter) StoreStats() channel.Stats { return s.st }

func TestStatsEndpoint(t *testing.T) {
	mech := &statsReporter{
		Reporter: newTestReporter(t, 0.5),
		st: channel.Stats{
			Hits: 12, Misses: 3, BackingHits: 7, BackingWrites: 3,
			Entries: 3, Cost: 4096, Evictions: 1,
		},
	}
	srv, err := New(mech, nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mechanism != "PL" {
		t.Errorf("mechanism %q", resp.Mechanism)
	}
	cc := resp.ChannelCache
	if cc == nil {
		t.Fatal("channel_cache missing for a StoreStatser mechanism")
	}
	if cc.Hits != 12 || cc.Misses != 3 || cc.DiskHits != 7 || cc.DiskWrites != 3 ||
		cc.Entries != 3 || cc.CostBytes != 4096 || cc.Evictions != 1 {
		t.Fatalf("channel_cache %+v", cc)
	}
}

func TestStatsEndpointWithoutStoreStatser(t *testing.T) {
	srv, err := New(newTestReporter(t, 0.5), nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	// The channel_cache key must be omitted entirely, not null-filled.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["channel_cache"]; ok {
		t.Fatal("channel_cache present for a plain Reporter")
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stats", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats: status %d, want 405", rec.Code)
	}
}
