package server

import (
	"net/http"
	"strconv"
	"time"

	"geoind/internal/channel"
	"geoind/internal/fabric"
	"geoind/internal/metrics"
	"geoind/internal/session"
)

// latencyBuckets are the request-duration histogram bounds in seconds:
// log-spaced from 100µs (a warm alias-table report) to 30s (a cold dense LP
// solve), so both regimes land in resolvable buckets.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// serverMetrics owns the request-level instruments and the registry every
// scrape renders. Store, budget and solve-queue statistics are not copied
// into instruments: they are registered as scrape-time sampling functions
// over the subsystems' own atomic counters, so /metrics and /v1/stats can
// never disagree.
type serverMetrics struct {
	reg *metrics.Registry

	// requests/errors are labeled per endpoint and status code at response
	// time; latency is one histogram per endpoint.
	requests func(endpoint, code string) *metrics.Counter
	latency  map[string]*metrics.Histogram

	budgetCharges *metrics.Counter
	budgetRefunds *metrics.Counter
	epsCharged    *metrics.FloatCounter
	epsRefunded   *metrics.FloatCounter
}

// instrumentedEndpoints are the routes that get their own latency histogram
// and request counters. Probes are included: scrape output then covers
// everything a load balancer touches.
var instrumentedEndpoints = []string{
	"/healthz", "/v1/healthz", "/v1/info", "/v1/report", "/v1/report:batch",
	"/v1/budget", "/v1/trace", "/v1/stats", "/v1/channels",
}

// newServerMetrics builds the registry and request instruments for one
// server and wires the scrape-time gauges over the mechanism's store,
// sampler and solve-queue counters (when the mechanism exposes them), the
// ledger's session/journal counters (when budgets are enforced), and the
// trace pipeline's counters (zero until EnableTrace).
func newServerMetrics(s *Server) *serverMetrics {
	mech := s.mech
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg:     reg,
		latency: make(map[string]*metrics.Histogram, len(instrumentedEndpoints)),
	}
	m.requests = func(endpoint, code string) *metrics.Counter {
		return reg.Counter("geoind_requests_total",
			"HTTP requests served, by endpoint and status code.",
			metrics.Labels{"endpoint": endpoint, "code": code})
	}
	for _, ep := range instrumentedEndpoints {
		m.latency[ep] = reg.Histogram("geoind_request_duration_seconds",
			"Request latency by endpoint.",
			metrics.Labels{"endpoint": ep}, latencyBuckets)
	}
	m.budgetCharges = reg.Counter("geoind_budget_charges_total",
		"Successful budget debits (refunded charges still count).", nil)
	m.budgetRefunds = reg.Counter("geoind_budget_refunds_total",
		"Budget refunds for reports that failed, timed out or were canceled.", nil)
	m.epsCharged = reg.FloatCounter("geoind_budget_eps_charged_total",
		"Total epsilon debited from user budgets.", nil)
	m.epsRefunded = reg.FloatCounter("geoind_budget_eps_refunded_total",
		"Total epsilon refunded to user budgets.", nil)

	if ss, ok := mech.(StoreStatser); ok {
		reg.CounterFunc("geoind_channel_cache_hits_total",
			"Channel-store lookups satisfied without an LP solve.", nil,
			func() float64 { return float64(ss.StoreStats().Hits) })
		reg.CounterFunc("geoind_channel_cache_misses_total",
			"Channel-store lookups that performed an LP solve.", nil,
			func() float64 { return float64(ss.StoreStats().Misses) })
		reg.CounterFunc("geoind_channel_cache_evictions_total",
			"Channels evicted by the cost-aware LRU policy.", nil,
			func() float64 { return float64(ss.StoreStats().Evictions) })
		reg.CounterFunc("geoind_channel_cache_disk_hits_total",
			"Channel loads satisfied by the persistent snapshot cache.", nil,
			func() float64 { return float64(ss.StoreStats().BackingHits) })
		reg.CounterFunc("geoind_channel_cache_disk_writes_total",
			"Solved channels handed to the snapshot cache for write-behind.", nil,
			func() float64 { return float64(ss.StoreStats().BackingWrites) })
		reg.CounterFunc("geoind_channel_solves_abandoned_total",
			"Waiters that gave up on an in-flight solve.", nil,
			func() float64 { return float64(ss.StoreStats().Abandoned) })
		reg.CounterFunc("geoind_channel_solves_canceled_total",
			"Solves aborted before completion.", nil,
			func() float64 { return float64(ss.StoreStats().Canceled) })
		reg.CounterFunc("geoind_solve_rejected_total",
			"Cold-solve admissions rejected with 429 because the queue was full.", nil,
			func() float64 { return float64(ss.StoreStats().Rejected) })
		reg.GaugeFunc("geoind_channel_cache_entries",
			"Resident channels in the store.", nil,
			func() float64 { return float64(ss.StoreStats().Entries) })
		reg.GaugeFunc("geoind_channel_cache_cost_bytes",
			"Resident channel bytes under the cache budget.", nil,
			func() float64 { return float64(ss.StoreStats().Cost) })
		reg.GaugeFunc("geoind_solves_inflight",
			"Channel solves currently executing.", nil,
			func() float64 { return float64(ss.StoreStats().Inflight) })
		reg.GaugeFunc("geoind_solve_queue_depth",
			"Admitted solves waiting for a free solve slot.", nil,
			func() float64 { return float64(ss.StoreStats().Queued) })
	}
	if fs, ok := mech.(FabricStatser); ok {
		if fst, have := fs.FabricStats(); have {
			// The tier chain is fixed at startup, so one series per tier can
			// be registered up front; each samples the live counters by name.
			for _, t := range fst.Tiers {
				name := t.Name
				tier := func() channel.TierStats {
					st, _ := fs.FabricStats()
					for _, cand := range st.Tiers {
						if cand.Name == name {
							return cand
						}
					}
					return channel.TierStats{}
				}
				ls := metrics.Labels{"tier": name}
				reg.CounterFunc("geoind_fabric_tier_loads_total",
					"Channel lookups that reached this fabric tier.", ls,
					func() float64 { return float64(tier().Loads) })
				reg.CounterFunc("geoind_fabric_tier_hits_total",
					"Fabric tier lookups that returned a verified channel.", ls,
					func() float64 { return float64(tier().Hits) })
				reg.CounterFunc("geoind_fabric_tier_errors_total",
					"Fabric tier snapshots rejected as corrupt or undecodable.", ls,
					func() float64 { return float64(tier().Errors) })
				reg.CounterFunc("geoind_fabric_tier_version_misses_total",
					"Intact fabric-tier snapshots skipped for a foreign format version.", ls,
					func() float64 { return float64(tier().VersionMisses) })
				reg.CounterFunc("geoind_fabric_tier_writes_total",
					"Snapshots stored into this fabric tier (write-behind and promotions).", ls,
					func() float64 { return float64(tier().Writes) })
			}
			remote := func() *fabric.RemoteStats {
				st, _ := fs.FabricStats()
				return st.Remote
			}
			if remote() != nil {
				sample := func(pick func(*fabric.RemoteStats) int64) func() float64 {
					return func() float64 {
						if rs := remote(); rs != nil {
							return float64(pick(rs))
						}
						return 0
					}
				}
				reg.CounterFunc("geoind_fabric_remote_fetches_total",
					"Remote snapshot HTTP requests issued (primaries, hedges, retries).", nil,
					sample(func(rs *fabric.RemoteStats) int64 { return rs.Fetches }))
				reg.CounterFunc("geoind_fabric_remote_hedges_total",
					"Hedged second fetches launched after the latency threshold.", nil,
					sample(func(rs *fabric.RemoteStats) int64 { return rs.Hedges }))
				reg.CounterFunc("geoind_fabric_remote_hedge_wins_total",
					"Hedged fetches that answered first with a usable snapshot.", nil,
					sample(func(rs *fabric.RemoteStats) int64 { return rs.HedgeWins }))
				reg.CounterFunc("geoind_fabric_remote_retries_total",
					"Remote fetch retries after transient failures.", nil,
					sample(func(rs *fabric.RemoteStats) int64 { return rs.Retries }))
				reg.CounterFunc("geoind_fabric_remote_fallbacks_total",
					"Remote lookups that gave up; the local solve path took over.", nil,
					sample(func(rs *fabric.RemoteStats) int64 { return rs.Fallbacks }))
			}
			if h := fs.FabricFetchLatency(); h != nil {
				reg.RegisterHistogram("geoind_fabric_fetch_duration_seconds",
					"Remote snapshot fetch latency (completed attempts).", nil, h)
			}
		}
	}
	if ds, ok := mech.(DirStatser); ok {
		if _, have := ds.DirCacheStats(); have {
			reg.CounterFunc("geoind_snapshot_version_misses_total",
				"Intact snapshot files skipped for a foreign format version.", nil,
				func() float64 {
					st, _ := ds.DirCacheStats()
					return float64(st.VersionMisses)
				})
			reg.CounterFunc("geoind_snapshot_disk_errors_total",
				"Snapshot files rejected as corrupt or undecodable.", nil,
				func() float64 {
					st, _ := ds.DirCacheStats()
					return float64(st.Errors)
				})
		}
	}
	if s.ledger != nil {
		sess := s.ledger.Sessions()
		reg.GaugeFunc("geoind_sessions",
			"Users with live session entries (idle entries are GCed).", nil,
			func() float64 { return float64(sess.Stats().Users) })
		reg.CounterFunc("geoind_session_evictions_total",
			"Idle session entries garbage-collected.", nil,
			func() float64 { return float64(sess.Stats().Evicted) })
		reg.CounterFunc("geoind_session_memo_hits_total",
			"Memo reads that found a previous release for the user.", nil,
			func() float64 { return float64(sess.Stats().MemoHits) })
		reg.CounterFunc("geoind_session_memo_writes_total",
			"Releases memoized as session predictions.", nil,
			func() float64 { return float64(sess.Stats().MemoWrites) })
		journal := func(pick func(*session.JournalStats) int64) func() float64 {
			return func() float64 {
				if js := sess.Stats().Journal; js != nil {
					return float64(pick(js))
				}
				return 0
			}
		}
		reg.CounterFunc("geoind_session_journal_records_total",
			"Session-state records appended to the durability journal.", nil,
			journal(func(js *session.JournalStats) int64 { return js.Records }))
		reg.CounterFunc("geoind_session_journal_bytes_total",
			"Bytes appended to the session journal.", nil,
			journal(func(js *session.JournalStats) int64 { return js.Bytes }))
		reg.CounterFunc("geoind_session_journal_syncs_total",
			"fsync calls on the session journal.", nil,
			journal(func(js *session.JournalStats) int64 { return js.Syncs }))
		reg.CounterFunc("geoind_session_journal_compactions_total",
			"Journal compactions (snapshot + segment rotation).", nil,
			journal(func(js *session.JournalStats) int64 { return js.Compactions }))
		reg.CounterFunc("geoind_session_journal_anomalies_total",
			"Replay anomalies tolerated (torn tails truncated, spends clamped).", nil,
			journal(func(js *session.JournalStats) int64 { return js.Anomalies }))
	}
	trace := func(pick func(*traceState) int64) func() float64 {
		return func() float64 {
			if ts := s.trace.Load(); ts != nil {
				return float64(pick(ts))
			}
			return 0
		}
	}
	reg.CounterFunc("geoind_trace_fresh_total",
		"Trace steps that ran the underlying mechanism.", nil,
		trace(func(ts *traceState) int64 { return ts.fresh.Load() }))
	reg.CounterFunc("geoind_trace_memo_hits_total",
		"Trace steps that re-released the session's previous release.", nil,
		trace(func(ts *traceState) int64 { return ts.memoHits.Load() }))
	reg.CounterFunc("geoind_trace_independent_total",
		"Trace steps served in independent (full-epsilon) mode.", nil,
		trace(func(ts *traceState) int64 { return ts.independent.Load() }))
	reg.CounterFunc("geoind_trace_denied_total",
		"Trace steps refused because the user's budget window was exhausted.", nil,
		trace(func(ts *traceState) int64 { return ts.denied.Load() }))
	return m
}

// chargeBudget / refundBudget record the ledger movements the handlers make;
// the eps totals make refund *mass* (not just counts) visible, which is what
// the loadgen refund-rate assertion checks against.
func (m *serverMetrics) chargeBudget(eps float64) {
	m.budgetCharges.Inc()
	m.epsCharged.Add(eps)
}

func (m *serverMetrics) refundBudget(eps float64) {
	m.budgetRefunds.Inc()
	m.epsRefunded.Add(eps)
}

// statusRecorder captures the status code a handler writes so the
// instrumentation middleware can label its counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps one endpoint's handler with request counting and latency
// observation. The duration covers the full handler — decode, validation,
// budget accounting and mechanism work — which is what a client experiences.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.latency[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		hist.Observe(time.Since(start).Seconds())
		s.metrics.requests(endpoint, statusText(rec.status)).Inc()
	}
}

// statusText renders a status code as its metric label.
func statusText(code int) string {
	// Fast path for the codes the server actually emits.
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusMethodNotAllowed:
		return "405"
	case http.StatusRequestEntityTooLarge:
		return "413"
	case http.StatusTooManyRequests:
		return "429"
	case statusClientClosedRequest:
		return "499"
	case http.StatusInternalServerError:
		return "500"
	case http.StatusServiceUnavailable:
		return "503"
	case http.StatusGatewayTimeout:
		return "504"
	}
	return strconv.Itoa(code)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format. Everything is rendered from live counters at scrape time; the
// endpoint performs no allocation-heavy aggregation and is safe to scrape
// at high frequency.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}
