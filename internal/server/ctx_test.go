package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"geoind/internal/channel"
	"geoind/internal/geo"
)

// blockingReporter implements Reporter, CtxReporter and CtxBatchReporter; its
// report paths block until the request context dies, simulating a cold solve
// that takes longer than the client is willing to wait.
type blockingReporter struct{}

func (blockingReporter) Report(x geo.Point) (geo.Point, error) { return x, nil }
func (blockingReporter) Epsilon() float64                      { return 0.5 }
func (blockingReporter) Name() string                          { return "blocking" }

func (blockingReporter) ReportCtx(ctx context.Context, x geo.Point) (geo.Point, error) {
	<-ctx.Done()
	return geo.Point{}, ctx.Err()
}

func (blockingReporter) ReportBatchCtx(ctx context.Context, xs []geo.Point) ([]geo.Point, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// do serves req against s and returns the recorded response.
func do(t *testing.T, s *Server, req *http.Request) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(w, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s %s did not return: handler hung on a dead request", req.Method, req.URL.Path)
	}
	return w
}

// TestReportClientDisconnect: a /v1/report whose context is already canceled
// (the client hung up) returns promptly with 499 and refunds the charge — it
// must not hang on the singleflight waiting for a solve nobody wants.
func TestReportClientDisconnect(t *testing.T) {
	ledger, _ := NewLedger(1.0, time.Hour, nil)
	s, err := New(blockingReporter{}, ledger, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/report",
		strings.NewReader(`{"user_id":"u","x":5,"y":5}`)).WithContext(ctx)

	w := do(t, s, req)
	if w.Code != statusClientClosedRequest {
		t.Errorf("status %d want %d", w.Code, statusClientClosedRequest)
	}
	if r := ledger.Remaining("u"); r != 1.0 {
		t.Errorf("canceled report charged the budget: remaining %g want 1.0", r)
	}
}

// TestBatchClientDisconnect is the batch counterpart: the whole charge comes
// back (all-or-nothing extends to cancellation).
func TestBatchClientDisconnect(t *testing.T) {
	ledger, _ := NewLedger(2.0, time.Hour, nil)
	s, err := New(blockingReporter{}, ledger, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/report:batch",
		strings.NewReader(`[{"user_id":"u","x":1,"y":1},{"user_id":"u","x":2,"y":2}]`)).WithContext(ctx)

	w := do(t, s, req)
	if w.Code != statusClientClosedRequest {
		t.Errorf("status %d want %d", w.Code, statusClientClosedRequest)
	}
	if r := ledger.Remaining("u"); r != 2.0 {
		t.Errorf("canceled batch charged the budget: remaining %g want 2.0", r)
	}
}

// TestRequestTimeout: with -request-timeout configured, a report that outlives
// the deadline is canceled server-side, answered 504, and refunded.
func TestRequestTimeout(t *testing.T) {
	ledger, _ := NewLedger(1.0, time.Hour, nil)
	s, err := New(blockingReporter{}, ledger, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	s.SetRequestTimeout(20 * time.Millisecond)
	req := httptest.NewRequest(http.MethodPost, "/v1/report",
		strings.NewReader(`{"user_id":"u","x":5,"y":5}`))

	w := do(t, s, req)
	if w.Code != http.StatusGatewayTimeout {
		t.Errorf("status %d want 504", w.Code)
	}
	if r := ledger.Remaining("u"); r != 1.0 {
		t.Errorf("timed-out report charged the budget: remaining %g want 1.0", r)
	}
}

// TestReadinessFlipsOnShutdown: /v1/healthz is 200 while serving and 503 once
// BeginShutdown is called; the liveness probe /healthz stays 200 throughout.
func TestReadinessFlipsOnShutdown(t *testing.T) {
	s, err := New(newTestReporter(t, 0.5), nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) int {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w.Code
	}
	if c := get("/v1/healthz"); c != http.StatusOK {
		t.Fatalf("ready before shutdown: %d want 200", c)
	}
	s.BeginShutdown()
	if c := get("/v1/healthz"); c != http.StatusServiceUnavailable {
		t.Errorf("ready after BeginShutdown: %d want 503", c)
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Errorf("liveness after BeginShutdown: %d want 200 (process is still up)", c)
	}
}

// cancelStatser is a StoreStatser stub exposing cancellation counters.
type cancelStatser struct{ blockingReporter }

func (cancelStatser) StoreStats() channel.Stats {
	return channel.Stats{Hits: 3, Misses: 1, Abandoned: 2, Canceled: 1}
}

// TestStatsExposeCancellation: /v1/stats surfaces the store's Abandoned and
// Canceled counters.
func TestStatsExposeCancellation(t *testing.T) {
	s, err := New(cancelStatser{}, nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	var resp StatsResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ChannelCache == nil {
		t.Fatal("channel_cache section missing")
	}
	if resp.ChannelCache.Abandoned != 2 || resp.ChannelCache.Canceled != 1 {
		t.Errorf("cancellation counters %+v want abandoned=2 canceled=1", resp.ChannelCache)
	}
}
