// Package server provides a production-style location-sanitization service
// around the library's mechanisms: an HTTP JSON API plus a per-user privacy
// budget ledger enforcing the composability accounting of §2.2 — n reports
// at budget eps are equivalent to one report at n*eps, so a deployment must
// cap each user's total spend per time window.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrBudgetExhausted is returned by Spend when a user's window budget cannot
// cover the request.
var ErrBudgetExhausted = fmt.Errorf("privacy budget exhausted for this window")

// Ledger tracks per-user privacy budget consumption over rolling windows.
// The zero value is not usable; call NewLedger.
type Ledger struct {
	limit  float64
	window time.Duration
	now    func() time.Time

	mu    sync.Mutex
	users map[string]*ledgerEntry
}

type ledgerEntry struct {
	Spent       float64   `json:"spent"`
	WindowStart time.Time `json:"window_start"`
}

// NewLedger creates a ledger allowing each user to spend at most limit
// epsilon per window. A nil clock uses time.Now.
func NewLedger(limit float64, window time.Duration, clock func() time.Time) (*Ledger, error) {
	if !(limit > 0) {
		return nil, fmt.Errorf("server: ledger limit %g must be positive", limit)
	}
	if window <= 0 {
		return nil, fmt.Errorf("server: ledger window %v must be positive", window)
	}
	if clock == nil {
		clock = time.Now
	}
	return &Ledger{
		limit:  limit,
		window: window,
		now:    clock,
		users:  make(map[string]*ledgerEntry),
	}, nil
}

// Limit returns the per-window budget.
func (l *Ledger) Limit() float64 { return l.limit }

// Window returns the accounting window.
func (l *Ledger) Window() time.Duration { return l.window }

// entry returns the user's current-window entry, rolling the window if it
// has elapsed. Caller must hold l.mu.
func (l *Ledger) entry(user string) *ledgerEntry {
	now := l.now()
	e := l.users[user]
	if e == nil {
		e = &ledgerEntry{WindowStart: now}
		l.users[user] = e
	} else if now.Sub(e.WindowStart) >= l.window {
		e.Spent = 0
		e.WindowStart = now
	}
	return e
}

// Spend debits eps from the user's window budget, or returns
// ErrBudgetExhausted (leaving the ledger unchanged) when the remaining
// budget is insufficient.
func (l *Ledger) Spend(user string, eps float64) error {
	if !(eps > 0) {
		return fmt.Errorf("server: spend amount %g must be positive", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entry(user)
	if e.Spent+eps > l.limit+1e-12 {
		return ErrBudgetExhausted
	}
	e.Spent += eps
	return nil
}

// Refund credits eps back to the user's window budget, clamping at zero
// spend. It undoes a Spend whose report never happened (request canceled,
// deadline exceeded, mechanism failure): the user revealed nothing, so the
// composability accounting of §2.2 owes them the budget back. Refunding
// after the window rolled over is harmless — the fresh window already has
// zero spend and the clamp keeps it there.
func (l *Ledger) Refund(user string, eps float64) {
	if !(eps > 0) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entry(user)
	e.Spent -= eps
	if e.Spent < 0 {
		e.Spent = 0
	}
}

// Remaining returns the user's unspent budget in the current window.
func (l *Ledger) Remaining(user string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entry(user)
	if r := l.limit - e.Spent; r > 0 {
		return r
	}
	return 0
}

// Users returns the number of users with ledger entries.
func (l *Ledger) Users() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.users)
}

// ledgerSnapshot is the serialized ledger state.
type ledgerSnapshot struct {
	Limit  float64                 `json:"limit"`
	Window time.Duration           `json:"window_ns"`
	Users  map[string]*ledgerEntry `json:"users"`
}

// Save writes the ledger state as JSON.
func (l *Ledger) Save(w io.Writer) error {
	l.mu.Lock()
	snap := ledgerSnapshot{Limit: l.limit, Window: l.window, Users: make(map[string]*ledgerEntry, len(l.users))}
	for u, e := range l.users {
		cp := *e
		snap.Users[u] = &cp
	}
	l.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load restores ledger state saved by Save. Limit and window of the
// snapshot must match the ledger's configuration; entries are replaced.
func (l *Ledger) Load(r io.Reader) error {
	var snap ledgerSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("server: ledger load: %w", err)
	}
	if snap.Limit != l.limit || snap.Window != l.window {
		return fmt.Errorf("server: ledger load: snapshot limit/window (%g, %v) do not match (%g, %v)",
			snap.Limit, snap.Window, l.limit, l.window)
	}
	for u, e := range snap.Users {
		if e == nil || e.Spent < 0 {
			return fmt.Errorf("server: ledger load: invalid entry for user %q", u)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.users = make(map[string]*ledgerEntry, len(snap.Users))
	for u, e := range snap.Users {
		cp := *e
		l.users[u] = &cp
	}
	return nil
}
