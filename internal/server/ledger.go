// Package server provides a production-style location-sanitization service
// around the library's mechanisms: an HTTP JSON API plus a per-user privacy
// budget ledger enforcing the composability accounting of §2.2 — n reports
// at budget eps are equivalent to one report at n*eps, so a deployment must
// cap each user's total spend per time window.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"geoind/internal/session"
)

// ErrBudgetExhausted is returned by Spend when a user's window budget cannot
// cover the request. It is the session store's error value, so comparisons
// hold across layers.
var ErrBudgetExhausted = session.ErrBudgetExhausted

// Ledger tracks per-user privacy budget consumption over rolling windows.
// It is a thin view over a session.Store: the store owns all per-user state
// (spend, window, last-release memo) and, when opened with a journal
// directory, its durability. The zero value is not usable; call NewLedger
// or NewLedgerStore.
type Ledger struct {
	store *session.Store
}

// NewLedger creates a memory-only ledger allowing each user to spend at
// most limit epsilon per window. A nil clock uses time.Now. For a durable
// ledger, open a session.Store with a Dir and wrap it with NewLedgerStore.
func NewLedger(limit float64, window time.Duration, clock func() time.Time) (*Ledger, error) {
	st, err := session.Open(session.Config{Limit: limit, Window: window, Clock: clock})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return &Ledger{store: st}, nil
}

// NewLedgerStore wraps an existing session store (typically journal-backed)
// as a Ledger.
func NewLedgerStore(st *session.Store) (*Ledger, error) {
	if st == nil {
		return nil, fmt.Errorf("server: nil session store")
	}
	return &Ledger{store: st}, nil
}

// Sessions exposes the underlying session store (memo state, stats,
// durability control).
func (l *Ledger) Sessions() *session.Store { return l.store }

// Limit returns the per-window budget.
func (l *Ledger) Limit() float64 { return l.store.Limit() }

// Window returns the accounting window.
func (l *Ledger) Window() time.Duration { return l.store.Window() }

// Spend debits eps from the user's window budget, or returns
// ErrBudgetExhausted (leaving the ledger unchanged) when the remaining
// budget is insufficient.
func (l *Ledger) Spend(user string, eps float64) error { return l.store.Spend(user, eps) }

// Refund credits eps back to the user's window budget, clamping at zero
// spend. It undoes a Spend whose report never happened (request canceled,
// deadline exceeded, mechanism failure): the user revealed nothing, so the
// composability accounting of §2.2 owes them the budget back.
func (l *Ledger) Refund(user string, eps float64) { l.store.Refund(user, eps) }

// Remaining returns the user's unspent budget in the current window. It is
// a pure read: querying arbitrary (possibly bogus) user IDs creates no
// ledger state.
func (l *Ledger) Remaining(user string) float64 { return l.store.Remaining(user) }

// Users returns the number of users with live ledger entries. Idle entries
// are garbage-collected (window elapsed with zero spend, or two windows
// idle), so this tracks active users rather than growing without bound.
func (l *Ledger) Users() int { return l.store.Users() }

// ledgerEntry is the legacy JSON serialization of one user's state. Memo
// fields are included when present so a JSON save/restore cycle keeps the
// predictive trace state; old snapshots without them load fine.
type ledgerEntry struct {
	Spent       float64   `json:"spent"`
	WindowStart time.Time `json:"window_start"`
	MemoX       *float64  `json:"memo_x,omitempty"`
	MemoY       *float64  `json:"memo_y,omitempty"`
}

// ledgerSnapshot is the serialized ledger state.
type ledgerSnapshot struct {
	Limit  float64                 `json:"limit"`
	Window time.Duration           `json:"window_ns"`
	Users  map[string]*ledgerEntry `json:"users"`
}

// Save writes the ledger state as JSON. This is the legacy single-file
// persistence path (-ledger-file); journal-backed stores persist
// incrementally on their own and use Save only for migration/export.
func (l *Ledger) Save(w io.Writer) error {
	states := l.store.Export()
	snap := ledgerSnapshot{
		Limit:  l.store.Limit(),
		Window: l.store.Window(),
		Users:  make(map[string]*ledgerEntry, len(states)),
	}
	for _, st := range states {
		e := &ledgerEntry{Spent: st.Spent, WindowStart: st.WindowStart}
		if st.HasMemo {
			x, y := st.Memo.X, st.Memo.Y
			e.MemoX, e.MemoY = &x, &y
		}
		snap.Users[st.User] = e
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load restores ledger state saved by Save. Limit and window of the
// snapshot must match the ledger's configuration; entries are replaced (and
// journaled, when the underlying store is durable).
func (l *Ledger) Load(r io.Reader) error {
	var snap ledgerSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("server: ledger load: %w", err)
	}
	if snap.Limit != l.store.Limit() || snap.Window != l.store.Window() {
		return fmt.Errorf("server: ledger load: snapshot limit/window (%g, %v) do not match (%g, %v)",
			snap.Limit, snap.Window, l.store.Limit(), l.store.Window())
	}
	states := make([]session.State, 0, len(snap.Users))
	for u, e := range snap.Users {
		if e == nil || e.Spent < 0 {
			return fmt.Errorf("server: ledger load: invalid entry for user %q", u)
		}
		st := session.State{User: u, Spent: e.Spent, WindowStart: e.WindowStart}
		if e.MemoX != nil && e.MemoY != nil {
			st.HasMemo = true
			st.Memo.X, st.Memo.Y = *e.MemoX, *e.MemoY
		}
		states = append(states, st)
	}
	if err := l.store.Replace(states); err != nil {
		return fmt.Errorf("server: ledger load: %w", err)
	}
	return nil
}
