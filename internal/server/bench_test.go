package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/laplace"
)

// benchServer assembles an unbudgeted server over a fast PL reporter with a
// pooled batch path, so the benchmark isolates the HTTP + handler overhead
// the batch endpoint amortizes.
func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	m, err := laplace.New(0.5, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(&batchCountingReporter{plReporter: plReporter{m: m}}, nil, geo.NewSquare(20))
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, client *http.Client, url string, body []byte) {
	b.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServerBatchThroughput posts one n-point batch per op; ns/op ÷ n is
// the amortized per-report cost. Compare with BenchmarkServerSingleReports,
// which pays a full round-trip per point.
func BenchmarkServerBatchThroughput(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ts := benchServer(b)
			reqs := make([]ReportRequest, n)
			for i := range reqs {
				reqs[i] = ReportRequest{X: float64(i%20) + 0.5, Y: float64(i%20) + 0.5}
			}
			body, err := json.Marshal(reqs)
			if err != nil {
				b.Fatal(err)
			}
			url := ts.URL + "/v1/report:batch"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPost(b, ts.Client(), url, body)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// BenchmarkServerSingleReports posts n individual /v1/report requests per op:
// the round-trip-per-point baseline the batch endpoint is measured against.
func BenchmarkServerSingleReports(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ts := benchServer(b)
			bodies := make([][]byte, n)
			for i := range bodies {
				body, err := json.Marshal(ReportRequest{X: float64(i%20) + 0.5, Y: float64(i%20) + 0.5})
				if err != nil {
					b.Fatal(err)
				}
				bodies[i] = body
			}
			url := ts.URL + "/v1/report"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, body := range bodies {
					benchPost(b, ts.Client(), url, body)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}
