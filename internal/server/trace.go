package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"

	"geoind/internal/geo"
	"geoind/internal/trajectory"
)

// TraceConfig parameterizes the stateful /v1/trace endpoint.
type TraceConfig struct {
	// Theta is the predictive test threshold in km: while the user stays
	// within ~theta of their last release, the test tends to pass and the
	// step costs only EpsTest.
	Theta float64
	// EpsTest is the privacy budget of each private test (typically a small
	// fraction of the report epsilon).
	EpsTest float64
	// Seed fixes the test-noise randomness (0 is a valid fixed seed).
	Seed uint64
}

// traceState is the server-side state of the trace pipeline. The per-user
// state (budget, last release) lives in the session store; this holds only
// the shared configuration, the test-noise rng, the per-user step locks and
// the counters.
type traceState struct {
	cfg TraceConfig
	rng *rand.Rand // over a locked source: safe for concurrent handlers

	// userLocks serializes predictive steps per user (striped by FNV-1a of
	// the user ID) so the memo read → step → memo write sequence is atomic
	// per user. Without it, concurrent same-user steps race on the memo:
	// several could each pay full epsilon for a fresh report, or one could
	// re-release a memo another just replaced. Budget admission stays exact
	// either way — this keeps the memo state and the fresh/memo-hit
	// counters coherent. Striping bounds memory at the cost of occasional
	// cross-user serialization (a colliding user waits out another's step,
	// including its report's solve).
	userLocks [256]sync.Mutex

	fresh       atomic.Int64
	memoHits    atomic.Int64
	independent atomic.Int64
	denied      atomic.Int64
}

// userLock returns the stripe lock serializing one user's predictive steps.
func (ts *traceState) userLock(user string) *sync.Mutex {
	h := uint32(2166136261)
	for i := 0; i < len(user); i++ {
		h ^= uint32(user[i])
		h *= 16777619
	}
	return &ts.userLocks[h%uint32(len(ts.userLocks))]
}

// lockedSource serializes a rand.Source for concurrent use. rand/v2's Rand
// keeps no state outside its source, so locking Uint64 is sufficient.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

// EnableTrace switches on POST /v1/trace with the given predictive-test
// configuration. It requires budget enforcement: per-user sticky trace state
// without per-user budget accounting would be privacy theater. Call before
// serving traffic.
func (s *Server) EnableTrace(cfg TraceConfig) error {
	if s.ledger == nil {
		return fmt.Errorf("server: trace requires a budget ledger (per-user sessions track spend)")
	}
	pcfg := trajectory.PredictiveConfig{Theta: cfg.Theta, EpsTest: cfg.EpsTest}
	if err := pcfg.Validate(); err != nil {
		return fmt.Errorf("server: trace config: %w", err)
	}
	if worst := s.mech.Epsilon() + cfg.EpsTest; s.ledger.Limit() < worst {
		return fmt.Errorf("server: ledger limit %g below worst-case trace step cost %g (eps + epsTest): no moving user could ever report",
			s.ledger.Limit(), worst)
	}
	s.trace.Store(&traceState{
		cfg: cfg,
		rng: rand.New(&lockedSource{src: rand.NewPCG(cfg.Seed, 0x7ace)}),
	})
	return nil
}

// TraceRequest is the /v1/trace request body: one point of a user's
// mobility trace.
type TraceRequest struct {
	// UserID identifies the sticky session and budget account (required).
	UserID string `json:"user_id"`
	// X, Y are the true planar coordinates in km.
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Mode selects the reporting strategy: "predictive" (default) runs the
	// test-then-release mechanism against the session's last release;
	// "independent" pays full epsilon for a fresh report (the baseline).
	Mode string `json:"mode,omitempty"`
}

// TraceResponse is the /v1/trace response body.
type TraceResponse struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// EpsSpent is this step's budget cost: epsTest for a re-released
	// prediction, epsTest+eps (or eps on the session's first step) for a
	// fresh report.
	EpsSpent float64 `json:"eps_spent"`
	// Fresh reports whether the underlying mechanism ran (false = the
	// session's previous release was re-released).
	Fresh     bool    `json:"fresh"`
	Mode      string  `json:"mode"`
	Remaining float64 `json:"remaining_budget"`
	Mechanism string  `json:"mechanism"`
}

// traceBudget adapts the ledger (plus budget metrics) to the stepwise
// trajectory API for one user.
type traceBudget struct {
	s    *Server
	user string
}

func (b traceBudget) Spend(eps float64) error {
	if err := b.s.ledger.Spend(b.user, eps); err != nil {
		return err
	}
	b.s.metrics.chargeBudget(eps)
	return nil
}

func (b traceBudget) Refund(eps float64) {
	b.s.ledger.Refund(b.user, eps)
	b.s.metrics.refundBudget(eps)
}

// serverReporter adapts the server's cancelable report path to the
// context-free trajectory.Reporter interface for the duration of one request:
// Report runs under the request context (timeout + client disconnect).
type serverReporter struct {
	s   *Server
	ctx context.Context
}

func (m serverReporter) Report(x geo.Point) (geo.Point, error) { return m.s.reportOne(m.ctx, x) }
func (m serverReporter) Epsilon() float64                      { return m.s.mech.Epsilon() }

// handleTrace serves POST /v1/trace: one true location in, one released
// location out, with per-user sticky state (budget window + last release) in
// the session store. Budget is charged before any noise is drawn; on a
// failed or canceled release the report epsilon is refunded, while the
// prediction test's epsTest — once its noise has been drawn — stays spent,
// because the test outcome is observable through the response either way
// (see trajectory.StepPredictive).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	ts := s.trace.Load()
	if ts == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			"trace endpoint disabled (start the server with -trace-theta)"})
		return
	}
	var req TraceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: " + err.Error()})
		return
	}
	if req.UserID == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{"user_id required"})
		return
	}
	x := geo.Point{X: req.X, Y: req.Y}
	if !s.region.ContainsClosed(x) {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			fmt.Sprintf("location %v outside service region %v", x, s.region)})
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "predictive"
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	switch mode {
	case "independent":
		eps := s.mech.Epsilon()
		if err := s.ledger.Spend(req.UserID, eps); err != nil {
			s.writeTraceSpendError(w, ts, err)
			return
		}
		s.metrics.chargeBudget(eps)
		z, err := s.reportOne(ctx, x)
		if err != nil {
			s.ledger.Refund(req.UserID, eps)
			s.metrics.refundBudget(eps)
			writeReportError(w, err)
			return
		}
		ts.independent.Add(1)
		writeJSON(w, http.StatusOK, TraceResponse{
			X: z.X, Y: z.Y, EpsSpent: eps, Fresh: true, Mode: mode,
			Remaining: s.ledger.Remaining(req.UserID), Mechanism: s.mech.Name(),
		})

	case "predictive":
		// One predictive step at a time per user: the memo read, the step
		// and the memo write must observe each other, or concurrent
		// same-user requests double-pay for fresh reports / re-release a
		// stale memo (budget accounting alone is already atomic).
		lock := ts.userLock(req.UserID)
		lock.Lock()
		defer lock.Unlock()

		sess := s.ledger.Sessions()
		memo, ok := sess.Memo(req.UserID)
		st := trajectory.State{HasRelease: ok, Release: memo}
		pcfg := trajectory.PredictiveConfig{Theta: ts.cfg.Theta, EpsTest: ts.cfg.EpsTest}
		step, next, err := trajectory.StepPredictive(
			serverReporter{s, ctx}, traceBudget{s, req.UserID}, st, x, pcfg, ts.rng)
		if err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				s.writeTraceSpendError(w, ts, err)
				return
			}
			writeReportError(w, err)
			return
		}
		if step.Fresh {
			// Persist the new release as the session's prediction; the memo
			// write is journaled with the same durability as the spend.
			sess.SetMemo(req.UserID, next.Release)
			ts.fresh.Add(1)
		} else {
			ts.memoHits.Add(1)
		}
		writeJSON(w, http.StatusOK, TraceResponse{
			X: step.Released.X, Y: step.Released.Y, EpsSpent: step.Spent,
			Fresh: step.Fresh, Mode: mode,
			Remaining: s.ledger.Remaining(req.UserID), Mechanism: s.mech.Name(),
		})

	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{
			fmt.Sprintf("unknown mode %q (want \"predictive\" or \"independent\")", req.Mode)})
	}
}

func (s *Server) writeTraceSpendError(w http.ResponseWriter, ts *traceState, err error) {
	if errors.Is(err, ErrBudgetExhausted) {
		ts.denied.Add(1)
		writeJSON(w, http.StatusTooManyRequests, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
}
