package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"geoind/internal/channel"
	"geoind/internal/fabric"
	"geoind/internal/geo"
	"geoind/internal/metrics"
	"geoind/internal/session"
)

// Reporter is the mechanism interface the server fronts. The public
// geoind.Mechanism satisfies it (geoind.Point is an alias of geo.Point).
type Reporter interface {
	Report(x geo.Point) (geo.Point, error)
	Epsilon() float64
	Name() string
}

// BatchReporter is optionally implemented by mechanisms with a pooled batch
// path (every public geoind mechanism is one). The batch handler uses it
// when available and falls back to a sequential Report loop otherwise.
type BatchReporter interface {
	ReportBatch(xs []geo.Point) ([]geo.Point, error)
}

// CtxReporter is optionally implemented by mechanisms whose report path is
// cancelable. When the mechanism provides it, each /v1/report runs under the
// request's context (plus the configured request timeout), so a client that
// disconnects mid-report stops paying for the work it no longer wants.
type CtxReporter interface {
	ReportCtx(ctx context.Context, x geo.Point) (geo.Point, error)
}

// CtxBatchReporter is the cancelable batch counterpart of CtxReporter.
type CtxBatchReporter interface {
	ReportBatchCtx(ctx context.Context, xs []geo.Point) ([]geo.Point, error)
}

// StoreStatser is optionally implemented by mechanisms backed by a channel
// store (geoind.MSM and geoind.AdaptiveMSM are). When the mechanism provides
// it, /v1/stats exposes the store counters — including persistent-cache disk
// hits and write-behind writes, the observable proof of a zero-solve warm
// restart.
type StoreStatser interface {
	StoreStats() channel.Stats
}

// SamplerStatser is optionally implemented by mechanisms with a configurable
// warm-path sampler and channel pruning (geoind.MSM and geoind.AdaptiveMSM
// are). When the mechanism provides it, /v1/stats exposes the sampler kind in
// use, the configured prune mass, and the per-variant channel counters.
type SamplerStatser interface {
	SamplerInfo() (kind string, pruneMass float64, pruned, fallbacks int64)
}

// LocalStatser is optionally implemented by mechanisms supporting the
// locally relevant OPT construction (geoind.MSM and geoind.Optimal are).
// When the mechanism provides it and the variant is enabled (radius > 0),
// /v1/stats exposes the local configuration, the count of channels solved
// over a reduced domain, and the dense fallbacks taken when a local build
// failed its restricted GeoInd gate.
type LocalStatser interface {
	LocalInfo() (radius, massFloor float64, localChannels, denseFallbacks int64)
}

// DirStatser is optionally implemented by mechanisms with a persistent
// snapshot cache (geoind.MSM and geoind.AdaptiveMSM are). It exposes the
// cache directory's own counters — in particular version misses, which make a
// snapshot-format rollout observable: a v1 directory warming a v2 process
// counts version misses (benign, files are rewritten) rather than errors
// (corrupt or undecodable files).
type DirStatser interface {
	DirCacheStats() (channel.DirStats, bool)
}

// ChannelSource is optionally implemented by mechanisms that can serve
// their solved channels as verified snapshot frames (geoind.MSM is one).
// When the mechanism provides it, GET /v1/channels/{key} streams the
// persisted GICH framing to fleet peers; the frame carries the full key and
// a CRC, and the fetching peer re-verifies both before use.
type ChannelSource interface {
	ChannelSnapshot(ctx context.Context, key channel.Key, solve bool) ([]byte, error)
}

// FabricStatser is optionally implemented by mechanisms joined to a channel
// fabric (geoind.MSM with MSMConfig.Fabric is). When the mechanism provides
// it, /v1/stats exposes the per-tier and remote-fetch counters and /metrics
// exposes the same series plus the fetch-latency histogram.
type FabricStatser interface {
	FabricStats() (fabric.Stats, bool)
	FabricFetchLatency() *metrics.Histogram
}

// MaxBatchSize bounds the number of points one /v1/report:batch request may
// carry; larger batches are rejected with 413 before any budget is charged.
const MaxBatchSize = 1024

// Server is the HTTP sanitization service: it owns a mechanism, a per-user
// budget ledger, and the region bounds used for input validation.
type Server struct {
	mech       Reporter
	ledger     *Ledger
	region     geo.Rect
	mux        *http.ServeMux
	metrics    *serverMetrics
	reqTimeout time.Duration
	draining   atomic.Bool
	trace      atomic.Pointer[traceState]
}

// New assembles a server. The ledger may be nil, in which case budgets are
// not enforced (useful for trusted single-user deployments).
func New(mech Reporter, ledger *Ledger, region geo.Rect) (*Server, error) {
	if mech == nil {
		return nil, fmt.Errorf("server: nil mechanism")
	}
	if region.Width() <= 0 || region.Height() <= 0 {
		return nil, fmt.Errorf("server: degenerate region %v", region)
	}
	if ledger != nil && ledger.Limit() < mech.Epsilon() {
		return nil, fmt.Errorf("server: ledger limit %g below per-report epsilon %g: no request could ever succeed",
			ledger.Limit(), mech.Epsilon())
	}
	s := &Server{mech: mech, ledger: ledger, region: region, mux: http.NewServeMux()}
	s.metrics = newServerMetrics(s)
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealth))
	s.mux.HandleFunc("/v1/healthz", s.instrument("/v1/healthz", s.handleReady))
	s.mux.HandleFunc("/v1/info", s.instrument("/v1/info", s.handleInfo))
	s.mux.HandleFunc("/v1/report", s.instrument("/v1/report", s.handleReport))
	s.mux.HandleFunc("/v1/report:batch", s.instrument("/v1/report:batch", s.handleReportBatch))
	s.mux.HandleFunc("/v1/budget", s.instrument("/v1/budget", s.handleBudget))
	s.mux.HandleFunc("/v1/trace", s.instrument("/v1/trace", s.handleTrace))
	s.mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", s.handleStats))
	s.mux.HandleFunc(fabric.SnapshotPathPrefix, s.instrument("/v1/channels", s.handleChannelSnapshot))
	// The scrape endpoint is deliberately not instrumented: a Prometheus
	// server polling every few seconds would dominate the request counters.
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetRequestTimeout bounds the mechanism work of each report request; 0 (the
// default) means the request runs until the client gives up. The deadline is
// layered on top of the per-request context, so whichever fires first —
// client disconnect or timeout — cancels the report.
func (s *Server) SetRequestTimeout(d time.Duration) { s.reqTimeout = d }

// BeginShutdown flips GET /v1/healthz to 503 so load balancers stop routing
// new traffic here. Call it before http.Server.Shutdown: in-flight requests
// still complete, but the readiness probe reports the drain immediately.
func (s *Server) BeginShutdown() { s.draining.Store(true) }

// requestCtx derives the context a report handler runs under: the request's
// own context (canceled when the client disconnects) plus the configured
// request timeout, when one is set.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.reqTimeout > 0 {
		return context.WithTimeout(r.Context(), s.reqTimeout)
	}
	return r.Context(), func() {}
}

// statusClientClosedRequest is the de-facto status (nginx's 499) for a
// request aborted by the client before the response was written. The client
// usually never sees it, but it keeps access logs honest about who gave up.
const statusClientClosedRequest = 499

// retryAfterSeconds is the hint returned with solve-overload 429s. The
// admission queue drains as fast as LP solves complete, so a short fixed
// backoff is honest: clients that wait even one second usually find a slot
// (or a freshly cached channel) on retry.
const retryAfterSeconds = "1"

// writeReportError maps a mechanism error to an HTTP status: solve-queue
// overload is a retryable 429 (with a Retry-After hint), a deadline that
// fired server-side is a 504, a client disconnect a 499, anything else a 500.
func writeReportError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, channel.ErrSolveOverload):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			"server overloaded: " + err.Error() + " (no budget was charged)"})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{"report timed out: " + err.Error()})
	case errors.Is(err, context.Canceled):
		writeJSON(w, statusClientClosedRequest, errorResponse{"request canceled: " + err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
	}
}

// ReportRequest is the /v1/report request body.
type ReportRequest struct {
	// UserID identifies the budget account (required when budgets are
	// enforced).
	UserID string `json:"user_id"`
	// X, Y are the true planar coordinates in km.
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// ReportResponse is the /v1/report response body.
type ReportResponse struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	EpsSpent float64 `json:"eps_spent"`
	// Remaining is present only when budget enforcement is enabled.
	Remaining *float64 `json:"remaining_budget,omitempty"`
	Mechanism string   `json:"mechanism"`
}

// BatchPoint is one sanitized location of a batch response.
type BatchPoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// BatchReportResponse is the /v1/report:batch response body.
type BatchReportResponse struct {
	// Results holds one sanitized location per input point, in input order.
	Results []BatchPoint `json:"results"`
	// EpsSpent is the total privacy cost of the batch:
	// len(Results) * per-report epsilon.
	EpsSpent float64 `json:"eps_spent"`
	// Remaining is present only when budget enforcement is enabled.
	Remaining *float64 `json:"remaining_budget,omitempty"`
	Mechanism string   `json:"mechanism"`
}

// InfoResponse is the /v1/info response body.
type InfoResponse struct {
	Mechanism    string  `json:"mechanism"`
	Epsilon      float64 `json:"epsilon_per_report"`
	RegionSideKm float64 `json:"region_side_km"`
	BudgetLimit  float64 `json:"budget_limit,omitempty"`
	BudgetWindow string  `json:"budget_window,omitempty"`
}

// ChannelCacheStats is the channel-store section of a stats response.
type ChannelCacheStats struct {
	// Hits are lookups satisfied without an LP solve (resident entry,
	// deduplicated in-flight solve, or persistent-cache load).
	Hits int64 `json:"hits"`
	// Misses are lookups that performed an LP solve.
	Misses int64 `json:"misses"`
	// DiskHits of the hits were loaded from the persistent snapshot cache.
	DiskHits int64 `json:"disk_hits"`
	// DiskWrites counts solved channels handed to the snapshot cache.
	DiskWrites int64 `json:"disk_writes"`
	// VersionMisses counts intact snapshot files skipped because they were
	// written by a foreign format version (expected during rollouts; the
	// store re-solves and rewrites them in the current format).
	VersionMisses int64 `json:"version_misses"`
	// DiskErrors counts snapshot files found but rejected as corrupt,
	// truncated, or undecodable.
	DiskErrors int64 `json:"disk_errors"`
	Entries    int64 `json:"entries"`
	CostBytes  int64 `json:"cost_bytes"`
	Evictions  int64 `json:"evictions"`
	// Abandoned counts waiters that gave up on an in-flight solve (their
	// request was canceled or timed out while the solve kept running for
	// the remaining waiters).
	Abandoned int64 `json:"abandoned"`
	// Canceled counts solves aborted outright: every waiter abandoned the
	// flight, or the solve timeout elapsed.
	Canceled int64 `json:"canceled"`
	// SolveQueueDepth is the number of admitted solves currently waiting
	// for a free solve slot (nonzero only with -max-solves).
	SolveQueueDepth int64 `json:"solve_queue_depth"`
	// SolveRejected counts cold solves shed with 429 because the admission
	// queue was full.
	SolveRejected int64 `json:"solve_rejected"`
}

// SamplerStats is the sampling-configuration section of a stats response.
type SamplerStats struct {
	// Kind is the warm-path sampler in use ("cum" or "alias").
	Kind string `json:"kind"`
	// PruneMass is the configured per-row pruning bound (0 = dense).
	PruneMass float64 `json:"prune_mass,omitempty"`
	// PrunedChannels counts solved channels stored in compact form.
	PrunedChannels int64 `json:"pruned_channels"`
	// PruneFallbacks counts solved channels kept dense because the compact
	// form failed the post-prune GeoInd re-verification.
	PruneFallbacks int64 `json:"prune_fallbacks"`
}

// LocalStats is the locally-relevant-OPT section of a stats response,
// present only when the variant is enabled.
type LocalStats struct {
	// RadiusKm is the configured relevance dilation radius.
	RadiusKm float64 `json:"radius_km"`
	// MassFloor is the prior-mass budget outside the relevance core.
	MassFloor float64 `json:"mass_floor"`
	// LocalChannels counts channels solved over a reduced domain.
	LocalChannels int64 `json:"local_channels"`
	// DenseFallbacks counts local builds that fell back to the dense
	// formulation (failed restricted GeoInd gate or unconverged reduced LP).
	DenseFallbacks int64 `json:"dense_fallbacks"`
}

// FabricTierStats is one backing tier of the fabric section, fastest first.
type FabricTierStats struct {
	// Name identifies the tier ("mem", "disk", "remote").
	Name string `json:"name"`
	// Loads counts lookups that reached this tier; Hits of them returned a
	// verified channel.
	Loads int64 `json:"loads"`
	Hits  int64 `json:"hits"`
	// Errors counts snapshots found but rejected (corrupt, truncated, key
	// mismatch, undecodable); VersionMisses counts intact snapshots written
	// by a foreign format version (benign).
	Errors        int64 `json:"errors"`
	VersionMisses int64 `json:"version_misses"`
	// Writes counts snapshots stored into this tier (write-behind and
	// promotions); WriteErrors counts failed stores.
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	// LoadMsTotal is the cumulative wall-clock time spent in this tier's
	// loads, in milliseconds.
	LoadMsTotal float64 `json:"load_ms_total"`
}

// FabricRemoteStats is the remote-fetch section of the fabric stats, absent
// for a single-replica fleet.
type FabricRemoteStats struct {
	// Fetches counts HTTP snapshot requests issued (primaries, hedges,
	// retries).
	Fetches int64 `json:"fetches"`
	// Hedges counts hedged second requests launched after the latency
	// threshold; HedgeWins of them answered first with a usable snapshot.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// Retries counts re-fetches after transient failures.
	Retries int64 `json:"retries"`
	// Fallbacks counts remote lookups that gave up — the local LP solve
	// path took over (owner down, repeated corruption, timeout).
	Fallbacks int64 `json:"fallbacks"`
	// FetchP50Ms / FetchP99Ms are fetch-latency quantile estimates in
	// milliseconds.
	FetchP50Ms float64 `json:"fetch_p50_ms"`
	FetchP99Ms float64 `json:"fetch_p99_ms"`
}

// FabricStats is the distributed-channel-fabric section of a stats response.
type FabricStats struct {
	// Self is this replica's base URL; Peers is the full replica set.
	Self  string   `json:"self"`
	Peers []string `json:"peers"`
	// Tiers is the per-tier breakdown of the backing chain, fastest first.
	Tiers []FabricTierStats `json:"tiers"`
	// Remote is present only for fleets with more than one replica.
	Remote *FabricRemoteStats `json:"remote,omitempty"`
}

// StatsResponse is the /v1/stats response body.
type StatsResponse struct {
	Mechanism    string             `json:"mechanism"`
	ChannelCache *ChannelCacheStats `json:"channel_cache,omitempty"`
	Sampler      *SamplerStats      `json:"sampler,omitempty"`
	Local        *LocalStats        `json:"local,omitempty"`
	Fabric       *FabricStats       `json:"fabric,omitempty"`
	Sessions     *session.Stats     `json:"sessions,omitempty"`
	Trace        *TraceStats        `json:"trace,omitempty"`
}

// TraceStats is the /v1/trace section of StatsResponse.
type TraceStats struct {
	// Theta and EpsTest echo the predictive-test configuration.
	Theta   float64 `json:"theta"`
	EpsTest float64 `json:"eps_test"`
	// Fresh counts steps where the underlying mechanism ran; MemoHits counts
	// re-released predictions (each cost only EpsTest).
	Fresh    int64 `json:"fresh"`
	MemoHits int64 `json:"memo_hits"`
	// Independent counts mode=independent steps; Denied counts 429s from an
	// exhausted budget window.
	Independent int64 `json:"independent"`
	Denied      int64 `json:"denied"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe: 200 while serving, 503 once
// BeginShutdown has been called. Unlike /healthz (liveness: is the process
// up), readiness tells load balancers whether to route new traffic here.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "shutting_down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	info := InfoResponse{
		Mechanism:    s.mech.Name(),
		Epsilon:      s.mech.Epsilon(),
		RegionSideKm: s.region.Width(),
	}
	if s.ledger != nil {
		info.BudgetLimit = s.ledger.Limit()
		info.BudgetWindow = s.ledger.Window().String()
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	resp := StatsResponse{Mechanism: s.mech.Name()}
	if ss, ok := s.mech.(StoreStatser); ok {
		st := ss.StoreStats()
		resp.ChannelCache = &ChannelCacheStats{
			Hits:            st.Hits,
			Misses:          st.Misses,
			DiskHits:        st.BackingHits,
			DiskWrites:      st.BackingWrites,
			Entries:         st.Entries,
			CostBytes:       st.Cost,
			Evictions:       st.Evictions,
			Abandoned:       st.Abandoned,
			Canceled:        st.Canceled,
			SolveQueueDepth: st.Queued,
			SolveRejected:   st.Rejected,
		}
		if ds, ok := s.mech.(DirStatser); ok {
			if dst, ok := ds.DirCacheStats(); ok {
				resp.ChannelCache.VersionMisses = dst.VersionMisses
				resp.ChannelCache.DiskErrors = dst.Errors
			}
		}
	}
	if sam, ok := s.mech.(SamplerStatser); ok {
		kind, pruneMass, pruned, fallbacks := sam.SamplerInfo()
		resp.Sampler = &SamplerStats{
			Kind:           kind,
			PruneMass:      pruneMass,
			PrunedChannels: pruned,
			PruneFallbacks: fallbacks,
		}
	}
	if ls, ok := s.mech.(LocalStatser); ok {
		if radius, massFloor, local, fallbacks := ls.LocalInfo(); radius > 0 {
			resp.Local = &LocalStats{
				RadiusKm:       radius,
				MassFloor:      massFloor,
				LocalChannels:  local,
				DenseFallbacks: fallbacks,
			}
		}
	}
	if fs, ok := s.mech.(FabricStatser); ok {
		if fst, ok := fs.FabricStats(); ok {
			sec := &FabricStats{Self: fst.Self, Peers: fst.Peers}
			for _, t := range fst.Tiers {
				sec.Tiers = append(sec.Tiers, FabricTierStats{
					Name:          t.Name,
					Loads:         t.Loads,
					Hits:          t.Hits,
					Errors:        t.Errors,
					VersionMisses: t.VersionMisses,
					Writes:        t.Writes,
					WriteErrors:   t.WriteErrors,
					LoadMsTotal:   float64(t.LoadNanos) / 1e6,
				})
			}
			if t := fst.Remote; t != nil {
				sec.Remote = &FabricRemoteStats{
					Fetches:    t.Fetches,
					Hedges:     t.Hedges,
					HedgeWins:  t.HedgeWins,
					Retries:    t.Retries,
					Fallbacks:  t.Fallbacks,
					FetchP50Ms: t.FetchP50Ms,
					FetchP99Ms: t.FetchP99Ms,
				}
			}
			resp.Fabric = sec
		}
	}
	if s.ledger != nil {
		st := s.ledger.Sessions().Stats()
		resp.Sessions = &st
	}
	if ts := s.trace.Load(); ts != nil {
		resp.Trace = &TraceStats{
			Theta:       ts.cfg.Theta,
			EpsTest:     ts.cfg.EpsTest,
			Fresh:       ts.fresh.Load(),
			MemoHits:    ts.memoHits.Load(),
			Independent: ts.independent.Load(),
			Denied:      ts.denied.Load(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleChannelSnapshot serves GET /v1/channels/{key}: the fleet-internal
// snapshot endpoint peers fetch verified channel frames from. The key is
// parsed and hash-checked from the URL, then validated by the mechanism
// against its own configuration, so a malformed or foreign request can never
// trigger work for a channel outside this replica's index. A cached-only
// request (solve=0, what hedges send) for a cold key answers 404 — the
// definitive "not here" that makes a hedge unable to cause duplicate solves.
func (s *Server) handleChannelSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	cs, ok := s.mech.(ChannelSource)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"mechanism serves no channel snapshots"})
		return
	}
	key, solve, err := fabric.ParseSnapshotRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad snapshot request: " + err.Error()})
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	frame, err := cs.ChannelSnapshot(ctx, key, solve)
	if err != nil {
		writeChannelError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(frame)))
	_, _ = w.Write(frame)
}

// writeChannelError maps a snapshot-endpoint error to an HTTP status. The
// mapping is what the remote tier's retry triage keys off: 404 (unknown key,
// not cached) is definitive, 429/5xx are retryable.
func writeChannelError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, channel.ErrUnknownKey):
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
	case errors.Is(err, channel.ErrNotCached):
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
	case errors.Is(err, channel.ErrSolveOverload):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusTooManyRequests, errorResponse{err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{err.Error()})
	case errors.Is(err, context.Canceled):
		writeJSON(w, statusClientClosedRequest, errorResponse{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
	}
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	if s.ledger == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"budget enforcement disabled"})
		return
	}
	user := r.URL.Query().Get("user_id")
	if user == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{"user_id query parameter required"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"user_id":          user,
		"remaining_budget": s.ledger.Remaining(user),
		"limit":            s.ledger.Limit(),
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req ReportRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: " + err.Error()})
		return
	}
	x := geo.Point{X: req.X, Y: req.Y}
	if !s.region.ContainsClosed(x) {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			fmt.Sprintf("location %v outside service region %v", x, s.region)})
		return
	}
	if s.ledger != nil {
		if req.UserID == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{"user_id required"})
			return
		}
		if err := s.ledger.Spend(req.UserID, s.mech.Epsilon()); err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				writeJSON(w, http.StatusTooManyRequests, errorResponse{err.Error()})
				return
			}
			writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
			return
		}
		s.metrics.chargeBudget(s.mech.Epsilon())
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	z, err := s.reportOne(ctx, x)
	if err != nil {
		// A failed or canceled report revealed nothing, so it costs nothing.
		if s.ledger != nil {
			s.ledger.Refund(req.UserID, s.mech.Epsilon())
			s.metrics.refundBudget(s.mech.Epsilon())
		}
		writeReportError(w, err)
		return
	}
	resp := ReportResponse{X: z.X, Y: z.Y, EpsSpent: s.mech.Epsilon(), Mechanism: s.mech.Name()}
	if s.ledger != nil {
		rem := s.ledger.Remaining(req.UserID)
		resp.Remaining = &rem
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReportBatch sanitizes a JSON array of report requests in one round
// trip. Validation covers every entry before anything is charged or sampled;
// with budget enforcement the whole batch must belong to one user and its
// total cost len(batch) * epsilon is debited atomically — when the remaining
// budget cannot cover it, the request is refused with 429 and the ledger is
// left unchanged (all-or-nothing: a batch is never partially charged).
func (s *Server) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var reqs []ReportRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reqs); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: " + err.Error()})
		return
	}
	if len(reqs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"empty batch"})
		return
	}
	if len(reqs) > MaxBatchSize {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			fmt.Sprintf("batch of %d exceeds limit %d", len(reqs), MaxBatchSize)})
		return
	}
	xs := make([]geo.Point, len(reqs))
	for i, req := range reqs {
		x := geo.Point{X: req.X, Y: req.Y}
		if !s.region.ContainsClosed(x) {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				fmt.Sprintf("entry %d: location %v outside service region %v", i, x, s.region)})
			return
		}
		xs[i] = x
	}
	user := reqs[0].UserID
	if s.ledger != nil {
		if user == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{"entry 0: user_id required"})
			return
		}
		for i, req := range reqs[1:] {
			if req.UserID != user {
				writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf(
					"mixed-user batch: entry %d has user_id %q, entry 0 has %q (a batch is charged to one budget account)",
					i+1, req.UserID, user)})
				return
			}
		}
		if err := s.ledger.Spend(user, float64(len(reqs))*s.mech.Epsilon()); err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				writeJSON(w, http.StatusTooManyRequests, errorResponse{fmt.Sprintf(
					"batch cost %g exceeds remaining budget %g: %v (no budget was charged)",
					float64(len(reqs))*s.mech.Epsilon(), s.ledger.Remaining(user), err)})
				return
			}
			writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
			return
		}
		s.metrics.chargeBudget(float64(len(reqs)) * s.mech.Epsilon())
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	zs, err := s.reportAll(ctx, xs)
	if err != nil {
		// All-or-nothing extends to cancellation: a batch that dies
		// mid-flight released no sanitized locations, so the whole charge
		// comes back.
		if s.ledger != nil {
			s.ledger.Refund(user, float64(len(reqs))*s.mech.Epsilon())
			s.metrics.refundBudget(float64(len(reqs)) * s.mech.Epsilon())
		}
		writeReportError(w, err)
		return
	}
	resp := BatchReportResponse{
		Results:   make([]BatchPoint, len(zs)),
		EpsSpent:  float64(len(zs)) * s.mech.Epsilon(),
		Mechanism: s.mech.Name(),
	}
	for i, z := range zs {
		resp.Results[i] = BatchPoint{X: z.X, Y: z.Y}
	}
	if s.ledger != nil {
		rem := s.ledger.Remaining(user)
		resp.Remaining = &rem
	}
	writeJSON(w, http.StatusOK, resp)
}

// reportOne runs one report under ctx, preferring the mechanism's cancelable
// path when it has one.
func (s *Server) reportOne(ctx context.Context, x geo.Point) (geo.Point, error) {
	if cr, ok := s.mech.(CtxReporter); ok {
		return cr.ReportCtx(ctx, x)
	}
	if err := ctx.Err(); err != nil {
		return geo.Point{}, err
	}
	return s.mech.Report(x)
}

// reportAll runs the mechanism over a validated batch under ctx, using the
// pooled batch path when the mechanism provides one.
func (s *Server) reportAll(ctx context.Context, xs []geo.Point) ([]geo.Point, error) {
	if br, ok := s.mech.(CtxBatchReporter); ok {
		return br.ReportBatchCtx(ctx, xs)
	}
	if br, ok := s.mech.(BatchReporter); ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return br.ReportBatch(xs)
	}
	zs := make([]geo.Point, len(xs))
	for i, x := range xs {
		z, err := s.reportOne(ctx, x)
		if err != nil {
			return nil, err
		}
		zs[i] = z
	}
	return zs, nil
}
