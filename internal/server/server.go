package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"geoind/internal/channel"
	"geoind/internal/geo"
)

// Reporter is the mechanism interface the server fronts. The public
// geoind.Mechanism satisfies it (geoind.Point is an alias of geo.Point).
type Reporter interface {
	Report(x geo.Point) (geo.Point, error)
	Epsilon() float64
	Name() string
}

// BatchReporter is optionally implemented by mechanisms with a pooled batch
// path (every public geoind mechanism is one). The batch handler uses it
// when available and falls back to a sequential Report loop otherwise.
type BatchReporter interface {
	ReportBatch(xs []geo.Point) ([]geo.Point, error)
}

// StoreStatser is optionally implemented by mechanisms backed by a channel
// store (geoind.MSM and geoind.AdaptiveMSM are). When the mechanism provides
// it, /v1/stats exposes the store counters — including persistent-cache disk
// hits and write-behind writes, the observable proof of a zero-solve warm
// restart.
type StoreStatser interface {
	StoreStats() channel.Stats
}

// MaxBatchSize bounds the number of points one /v1/report:batch request may
// carry; larger batches are rejected with 413 before any budget is charged.
const MaxBatchSize = 1024

// Server is the HTTP sanitization service: it owns a mechanism, a per-user
// budget ledger, and the region bounds used for input validation.
type Server struct {
	mech   Reporter
	ledger *Ledger
	region geo.Rect
	mux    *http.ServeMux
}

// New assembles a server. The ledger may be nil, in which case budgets are
// not enforced (useful for trusted single-user deployments).
func New(mech Reporter, ledger *Ledger, region geo.Rect) (*Server, error) {
	if mech == nil {
		return nil, fmt.Errorf("server: nil mechanism")
	}
	if region.Width() <= 0 || region.Height() <= 0 {
		return nil, fmt.Errorf("server: degenerate region %v", region)
	}
	if ledger != nil && ledger.Limit() < mech.Epsilon() {
		return nil, fmt.Errorf("server: ledger limit %g below per-report epsilon %g: no request could ever succeed",
			ledger.Limit(), mech.Epsilon())
	}
	s := &Server{mech: mech, ledger: ledger, region: region, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/info", s.handleInfo)
	s.mux.HandleFunc("/v1/report", s.handleReport)
	s.mux.HandleFunc("/v1/report:batch", s.handleReportBatch)
	s.mux.HandleFunc("/v1/budget", s.handleBudget)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ReportRequest is the /v1/report request body.
type ReportRequest struct {
	// UserID identifies the budget account (required when budgets are
	// enforced).
	UserID string `json:"user_id"`
	// X, Y are the true planar coordinates in km.
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// ReportResponse is the /v1/report response body.
type ReportResponse struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	EpsSpent float64 `json:"eps_spent"`
	// Remaining is present only when budget enforcement is enabled.
	Remaining *float64 `json:"remaining_budget,omitempty"`
	Mechanism string   `json:"mechanism"`
}

// BatchPoint is one sanitized location of a batch response.
type BatchPoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// BatchReportResponse is the /v1/report:batch response body.
type BatchReportResponse struct {
	// Results holds one sanitized location per input point, in input order.
	Results []BatchPoint `json:"results"`
	// EpsSpent is the total privacy cost of the batch:
	// len(Results) * per-report epsilon.
	EpsSpent float64 `json:"eps_spent"`
	// Remaining is present only when budget enforcement is enabled.
	Remaining *float64 `json:"remaining_budget,omitempty"`
	Mechanism string   `json:"mechanism"`
}

// InfoResponse is the /v1/info response body.
type InfoResponse struct {
	Mechanism    string  `json:"mechanism"`
	Epsilon      float64 `json:"epsilon_per_report"`
	RegionSideKm float64 `json:"region_side_km"`
	BudgetLimit  float64 `json:"budget_limit,omitempty"`
	BudgetWindow string  `json:"budget_window,omitempty"`
}

// ChannelCacheStats is the channel-store section of a stats response.
type ChannelCacheStats struct {
	// Hits are lookups satisfied without an LP solve (resident entry,
	// deduplicated in-flight solve, or persistent-cache load).
	Hits int64 `json:"hits"`
	// Misses are lookups that performed an LP solve.
	Misses int64 `json:"misses"`
	// DiskHits of the hits were loaded from the persistent snapshot cache.
	DiskHits int64 `json:"disk_hits"`
	// DiskWrites counts solved channels handed to the snapshot cache.
	DiskWrites int64 `json:"disk_writes"`
	Entries    int64 `json:"entries"`
	CostBytes  int64 `json:"cost_bytes"`
	Evictions  int64 `json:"evictions"`
}

// StatsResponse is the /v1/stats response body.
type StatsResponse struct {
	Mechanism    string             `json:"mechanism"`
	ChannelCache *ChannelCacheStats `json:"channel_cache,omitempty"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	info := InfoResponse{
		Mechanism:    s.mech.Name(),
		Epsilon:      s.mech.Epsilon(),
		RegionSideKm: s.region.Width(),
	}
	if s.ledger != nil {
		info.BudgetLimit = s.ledger.Limit()
		info.BudgetWindow = s.ledger.Window().String()
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	resp := StatsResponse{Mechanism: s.mech.Name()}
	if ss, ok := s.mech.(StoreStatser); ok {
		st := ss.StoreStats()
		resp.ChannelCache = &ChannelCacheStats{
			Hits:       st.Hits,
			Misses:     st.Misses,
			DiskHits:   st.BackingHits,
			DiskWrites: st.BackingWrites,
			Entries:    st.Entries,
			CostBytes:  st.Cost,
			Evictions:  st.Evictions,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	if s.ledger == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"budget enforcement disabled"})
		return
	}
	user := r.URL.Query().Get("user_id")
	if user == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{"user_id query parameter required"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"user_id":          user,
		"remaining_budget": s.ledger.Remaining(user),
		"limit":            s.ledger.Limit(),
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req ReportRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: " + err.Error()})
		return
	}
	x := geo.Point{X: req.X, Y: req.Y}
	if !s.region.ContainsClosed(x) {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			fmt.Sprintf("location %v outside service region %v", x, s.region)})
		return
	}
	if s.ledger != nil {
		if req.UserID == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{"user_id required"})
			return
		}
		if err := s.ledger.Spend(req.UserID, s.mech.Epsilon()); err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				writeJSON(w, http.StatusTooManyRequests, errorResponse{err.Error()})
				return
			}
			writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
			return
		}
	}
	z, err := s.mech.Report(x)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	resp := ReportResponse{X: z.X, Y: z.Y, EpsSpent: s.mech.Epsilon(), Mechanism: s.mech.Name()}
	if s.ledger != nil {
		rem := s.ledger.Remaining(req.UserID)
		resp.Remaining = &rem
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReportBatch sanitizes a JSON array of report requests in one round
// trip. Validation covers every entry before anything is charged or sampled;
// with budget enforcement the whole batch must belong to one user and its
// total cost len(batch) * epsilon is debited atomically — when the remaining
// budget cannot cover it, the request is refused with 429 and the ledger is
// left unchanged (all-or-nothing: a batch is never partially charged).
func (s *Server) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var reqs []ReportRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reqs); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON: " + err.Error()})
		return
	}
	if len(reqs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"empty batch"})
		return
	}
	if len(reqs) > MaxBatchSize {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			fmt.Sprintf("batch of %d exceeds limit %d", len(reqs), MaxBatchSize)})
		return
	}
	xs := make([]geo.Point, len(reqs))
	for i, req := range reqs {
		x := geo.Point{X: req.X, Y: req.Y}
		if !s.region.ContainsClosed(x) {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				fmt.Sprintf("entry %d: location %v outside service region %v", i, x, s.region)})
			return
		}
		xs[i] = x
	}
	user := reqs[0].UserID
	if s.ledger != nil {
		if user == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{"entry 0: user_id required"})
			return
		}
		for i, req := range reqs[1:] {
			if req.UserID != user {
				writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf(
					"mixed-user batch: entry %d has user_id %q, entry 0 has %q (a batch is charged to one budget account)",
					i+1, req.UserID, user)})
				return
			}
		}
		if err := s.ledger.Spend(user, float64(len(reqs))*s.mech.Epsilon()); err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				writeJSON(w, http.StatusTooManyRequests, errorResponse{fmt.Sprintf(
					"batch cost %g exceeds remaining budget %g: %v (no budget was charged)",
					float64(len(reqs))*s.mech.Epsilon(), s.ledger.Remaining(user), err)})
				return
			}
			writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
			return
		}
	}
	zs, err := s.reportAll(xs)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	resp := BatchReportResponse{
		Results:   make([]BatchPoint, len(zs)),
		EpsSpent:  float64(len(zs)) * s.mech.Epsilon(),
		Mechanism: s.mech.Name(),
	}
	for i, z := range zs {
		resp.Results[i] = BatchPoint{X: z.X, Y: z.Y}
	}
	if s.ledger != nil {
		rem := s.ledger.Remaining(user)
		resp.Remaining = &rem
	}
	writeJSON(w, http.StatusOK, resp)
}

// reportAll runs the mechanism over a validated batch, using the pooled
// batch path when the mechanism provides one.
func (s *Server) reportAll(xs []geo.Point) ([]geo.Point, error) {
	if br, ok := s.mech.(BatchReporter); ok {
		return br.ReportBatch(xs)
	}
	zs := make([]geo.Point, len(xs))
	for i, x := range xs {
		z, err := s.mech.Report(x)
		if err != nil {
			return nil, err
		}
		zs[i] = z
	}
	return zs, nil
}
