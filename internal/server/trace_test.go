package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"geoind/internal/geo"
	"geoind/internal/session"
)

// newTraceServer builds a trace-enabled server over a durable (tempdir)
// session store with the given budget limit, returning the server (for
// direct state inspection) and the HTTP fixture.
func newTraceServer(t *testing.T, eps, limit float64, cfg TraceConfig) (*Server, *httptest.Server) {
	t.Helper()
	st, err := session.Open(session.Config{Limit: limit, Window: time.Hour, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	ledger, err := NewLedgerStore(st)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(newTestReporter(t, eps), ledger, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableTrace(cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postTrace(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/trace", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestEnableTraceValidation(t *testing.T) {
	s, err := New(newTestReporter(t, 0.5), nil, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableTrace(TraceConfig{Theta: 2, EpsTest: 0.1}); err == nil {
		t.Error("trace without a ledger should error")
	}

	ledger, err := NewLedger(10, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err = New(newTestReporter(t, 0.5), ledger, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []TraceConfig{
		{Theta: 0, EpsTest: 0.1},
		{Theta: 2, EpsTest: 0},
		{Theta: 2, EpsTest: -1},
		{Theta: 2, EpsTest: 100}, // eps + epsTest above the limit
	} {
		if err := s.EnableTrace(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if err := s.EnableTrace(TraceConfig{Theta: 2, EpsTest: 0.1}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDisabled(t *testing.T) {
	ledger, err := NewLedger(10, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(newTestReporter(t, 0.5), ledger, geo.NewSquare(20))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, _ := postTrace(t, ts.URL, `{"user_id":"u","x":1,"y":1}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled trace returned %d, want 404", resp.StatusCode)
	}
}

func TestTraceRequestValidation(t *testing.T) {
	_, ts := newTraceServer(t, 0.5, 100, TraceConfig{Theta: 2, EpsTest: 0.1})
	cases := []struct {
		body string
		want int
	}{
		{`{"x":1,"y":1}`, http.StatusBadRequest},                          // no user
		{`{"user_id":"u","x":500,"y":1}`, http.StatusBadRequest},          // outside region
		{`{"user_id":"u","x":1,"y":1,"mode":"x"}`, http.StatusBadRequest}, // bad mode
		{`{"user_id":"u","x":1,"bogus":2}`, http.StatusBadRequest},        // unknown field
		{`{`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postTrace(t, ts.URL, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("body %q: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET returned %d, want 405", resp.StatusCode)
	}
}

// TestTraceStationaryUserSavesBudget drives a dwelling user and checks the
// core predictive property end to end: after the first fresh report, steps
// mostly re-release the memoized location for epsTest, so total spend is far
// below the independent cost, and re-released steps return the exact same
// coordinates.
func TestTraceStationaryUserSavesBudget(t *testing.T) {
	const steps = 40
	s, ts := newTraceServer(t, 2.0, 1000, TraceConfig{Theta: 4, EpsTest: 0.5, Seed: 9})

	var frozen geo.Point
	memoHits := 0
	for i := 0; i < steps; i++ {
		resp, out := postTrace(t, ts.URL, `{"user_id":"alice","x":3,"y":4}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status %d: %v", i, resp.StatusCode, out)
		}
		if out["mode"] != "predictive" {
			t.Fatalf("step %d: mode %v", i, out["mode"])
		}
		z := geo.Point{X: out["x"].(float64), Y: out["y"].(float64)}
		if out["fresh"].(bool) {
			frozen = z
		} else {
			memoHits++
			if z != frozen {
				t.Fatalf("step %d: memo hit released %v, want frozen %v", i, z, frozen)
			}
			if spent := out["eps_spent"].(float64); spent != 0.5 {
				t.Fatalf("step %d: memo hit cost %g, want epsTest", i, spent)
			}
		}
	}
	if memoHits < steps/2 {
		t.Errorf("only %d/%d memo hits for a stationary user under theta=4", memoHits, steps)
	}

	spent := 1000 - s.ledger.Remaining("alice")
	independent := float64(steps) * 2.0
	if spent > independent/2 {
		t.Errorf("predictive spend %g not below half the independent cost %g", spent, independent)
	}

	// The session memo must match the frozen release (that is what a restart
	// would replay).
	memo, ok := s.ledger.Sessions().Memo("alice")
	if !ok || memo != frozen {
		t.Errorf("session memo %v ok=%v, want %v", memo, ok, frozen)
	}
}

// TestTraceIndependentMode checks the full-epsilon baseline path: every step
// fresh, costs mech epsilon, and never touches the predictive memo.
func TestTraceIndependentMode(t *testing.T) {
	s, ts := newTraceServer(t, 0.5, 100, TraceConfig{Theta: 2, EpsTest: 0.1})
	for i := 0; i < 3; i++ {
		resp, out := postTrace(t, ts.URL, `{"user_id":"bob","x":1,"y":1,"mode":"independent"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %v", resp.StatusCode, out)
		}
		if !out["fresh"].(bool) || out["eps_spent"].(float64) != 0.5 {
			t.Fatalf("independent step: %v", out)
		}
	}
	if _, ok := s.ledger.Sessions().Memo("bob"); ok {
		t.Error("independent mode wrote a predictive memo")
	}
	if rem := s.ledger.Remaining("bob"); math.Abs(rem-98.5) > 1e-9 {
		t.Errorf("remaining %g, want 98.5", rem)
	}
}

// TestTraceBudgetExhaustion: an exhausted window yields 429 and no
// over-spend; the counter surfaces in stats.
func TestTraceBudgetExhaustion(t *testing.T) {
	// Limit admits the first fresh report (0.5) plus one failed-test fresh
	// step at most; theta is tiny so every test fails and costs 0.55.
	s, ts := newTraceServer(t, 0.5, 1.2, TraceConfig{Theta: 0.001, EpsTest: 0.05, Seed: 3})
	denied := 0
	for i := 0; i < 6; i++ {
		resp, _ := postTrace(t, ts.URL, fmt.Sprintf(`{"user_id":"carol","x":%d,"y":%d}`, i%10, (i*3)%10))
		if resp.StatusCode == http.StatusTooManyRequests {
			denied++
		}
	}
	if denied == 0 {
		t.Fatal("no request was denied despite the tiny budget")
	}
	if rem := s.ledger.Remaining("carol"); rem < 0 {
		t.Errorf("remaining %g went negative", rem)
	}
	spent := 1.2 - s.ledger.Remaining("carol")
	if spent > 1.2+1e-9 {
		t.Errorf("spent %g exceeds limit", spent)
	}

	httpResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Trace == nil || stats.Sessions == nil {
		t.Fatalf("stats missing trace/sessions sections: %+v", stats)
	}
	if int(stats.Trace.Denied) != denied {
		t.Errorf("stats denied %d, want %d", stats.Trace.Denied, denied)
	}
	if stats.Trace.Fresh == 0 {
		t.Error("stats fresh is zero after successful steps")
	}
	if stats.Sessions.Users != 1 {
		t.Errorf("stats users %d, want 1", stats.Sessions.Users)
	}
	if stats.Sessions.Journal == nil || stats.Sessions.Journal.Records == 0 {
		t.Error("journal stats missing or empty for a durable store")
	}
}

// TestTraceSurvivesRestart is the in-process durability check: spend via
// traces, reopen the store from the same directory, and verify both the
// budget and the memoized release came back.
func TestTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Server, *httptest.Server, *session.Store) {
		st, err := session.Open(session.Config{Limit: 10, Window: time.Hour, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ledger, err := NewLedgerStore(st)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(newTestReporter(t, 2.0), ledger, geo.NewSquare(20))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EnableTrace(TraceConfig{Theta: 4, EpsTest: 0.5, Seed: 11}); err != nil {
			t.Fatal(err)
		}
		return s, httptest.NewServer(s), st
	}

	s1, ts1, st1 := open()
	for i := 0; i < 5; i++ {
		resp, out := postTrace(t, ts1.URL, `{"user_id":"dave","x":2,"y":2}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: %v", i, out)
		}
	}
	remBefore := s1.ledger.Remaining("dave")
	memoBefore, okBefore := s1.ledger.Sessions().Memo("dave")
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2, st2 := open()
	defer ts2.Close()
	defer st2.Close()
	if rem := s2.ledger.Remaining("dave"); math.Abs(rem-remBefore) > 1e-9 {
		t.Fatalf("remaining after restart %g, want %g", rem, remBefore)
	}
	memo, ok := s2.ledger.Sessions().Memo("dave")
	if ok != okBefore || memo != memoBefore {
		t.Fatalf("memo after restart %v ok=%v, want %v ok=%v", memo, ok, memoBefore, okBefore)
	}

	// A stationary user's next step should be able to reuse the replayed
	// memo: drive a few steps and require at least one non-fresh release of
	// exactly the pre-restart location.
	reused := false
	for i := 0; i < 10 && !reused; i++ {
		resp, out := postTrace(t, ts2.URL, `{"user_id":"dave","x":2,"y":2}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-restart step %d: %v", i, out)
		}
		if !out["fresh"].(bool) {
			got := geo.Point{X: out["x"].(float64), Y: out["y"].(float64)}
			if got == memoBefore {
				reused = true
			}
		}
	}
	if okBefore && !reused {
		t.Error("restart never re-released the journaled memo for a stationary user")
	}
}

// TestTraceConcurrentSameUser: predictive steps for one user are serialized
// server-side, so a burst of concurrent requests from a stationary user pays
// for exactly one fresh report and re-releases it to everyone else. Without
// the per-user lock, several racing requests would each miss the memo and
// each pay full epsilon.
func TestTraceConcurrentSameUser(t *testing.T) {
	const workers = 20
	// theta=50 with epsTest=1 makes the stationary test failure probability
	// ~e^-50: every post-fresh step is a memo hit, deterministically enough.
	s, ts := newTraceServer(t, 2.0, 100, TraceConfig{Theta: 50, EpsTest: 1, Seed: 13})

	var wg sync.WaitGroup
	codes := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/trace", "application/json",
				strings.NewReader(`{"user_id":"frank","x":3,"y":4}`))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
	}

	tsState := s.trace.Load()
	if f := tsState.fresh.Load(); f != 1 {
		t.Errorf("fresh reports = %d, want exactly 1 for a serialized stationary burst", f)
	}
	if h := tsState.memoHits.Load(); h != workers-1 {
		t.Errorf("memo hits = %d, want %d", h, workers-1)
	}
	wantSpent := 2.0 + float64(workers-1)*1.0
	if spent := 100 - s.ledger.Remaining("frank"); math.Abs(spent-wantSpent) > 1e-9 {
		t.Errorf("spent %g, want %g (one fresh + %d memo hits)", spent, wantSpent, workers-1)
	}
}

// TestTraceMetricsExposed: the Prometheus endpoint carries the session and
// trace series.
func TestTraceMetricsExposed(t *testing.T) {
	_, ts := newTraceServer(t, 0.5, 100, TraceConfig{Theta: 4, EpsTest: 0.05})
	for i := 0; i < 3; i++ {
		postTrace(t, ts.URL, `{"user_id":"erin","x":1,"y":1}`)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, series := range []string{
		"geoind_sessions", "geoind_session_journal_records_total",
		"geoind_trace_fresh_total", "geoind_trace_memo_hits_total",
		`endpoint="/v1/trace"`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
}
