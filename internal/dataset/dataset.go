// Package dataset provides the check-in workloads of the paper's evaluation
// (§6.1). The original experiments use two real datasets that cannot be
// shipped offline:
//
//   - Gowalla (SNAP): 265,571 check-ins by 12,155 users in a 20x20 km^2 area
//     of Austin, TX.
//   - Yelp: 81,201 check-ins by 7,581 users in a 20x20 km^2 area of
//     Las Vegas, NV.
//
// As the substitution rule requires, this package synthesizes datasets with
// the same published shape statistics from a seeded POI mixture model: POIs
// cluster around a handful of hot spots (a dense core plus suburbs), POI
// popularity follows a Zipf law, and each user favours a home cluster. The
// result is exactly the kind of highly non-uniform discrete prior that the
// optimal mechanism exploits, which is the property the paper's experiments
// depend on. Real data in the same planar format can be swapped in through
// ReadCSV.
package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"

	"geoind/internal/geo"
)

// CheckIn is one location report: a user at a POI.
type CheckIn struct {
	// User is a dense user identifier in [0, NumUsers).
	User int
	// Loc is the check-in location in planar kilometre coordinates.
	Loc geo.Point
}

// Dataset is a named collection of check-ins over a square planar region.
type Dataset struct {
	// Name identifies the dataset in experiment output.
	Name string
	// Side is the side length L (km) of the square region.
	Side float64
	// CheckIns holds every record.
	CheckIns []CheckIn
	// NumUsers is the number of distinct users.
	NumUsers int
	// NumPOIs is the number of distinct candidate POIs used for synthesis
	// (zero for datasets loaded from CSV).
	NumPOIs int
}

// Region returns the planar extent of the dataset.
func (d *Dataset) Region() geo.Rect { return geo.NewSquare(d.Side) }

// Points returns the bare check-in locations (aliased, do not mutate).
func (d *Dataset) Points() []geo.Point {
	pts := make([]geo.Point, len(d.CheckIns))
	for i, c := range d.CheckIns {
		pts[i] = c.Loc
	}
	return pts
}

// SampleRequests draws n check-in locations uniformly at random (with
// replacement), the query workload of §6.1 ("3,000 requests randomly
// selected from the set of check-ins").
func (d *Dataset) SampleRequests(n int, rng *rand.Rand) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = d.CheckIns[rng.IntN(len(d.CheckIns))].Loc
	}
	return out
}

// GenConfig parameterizes synthetic dataset generation.
type GenConfig struct {
	Name        string
	Side        float64 // region side length (km)
	NumUsers    int
	NumCheckIns int
	NumPOIs     int
	NumClusters int
	// CoreClusters is how many clusters form the dense "downtown" core.
	CoreClusters int
	// ClusterSigma is the spatial std-dev (km) of POIs around their cluster.
	ClusterSigma float64
	// ZipfS is the POI-popularity Zipf exponent (typical 0.8-1.2).
	ZipfS float64
	// HomeAffinity is the probability that a check-in happens in the user's
	// home cluster rather than a popularity-weighted global POI.
	HomeAffinity float64
	// Seed fixes all randomness.
	Seed uint64
}

// Validate checks the generation parameters.
func (c *GenConfig) Validate() error {
	switch {
	case c.Side <= 0:
		return fmt.Errorf("dataset: side %g must be positive", c.Side)
	case c.NumUsers < 1:
		return fmt.Errorf("dataset: NumUsers %d < 1", c.NumUsers)
	case c.NumCheckIns < 1:
		return fmt.Errorf("dataset: NumCheckIns %d < 1", c.NumCheckIns)
	case c.NumPOIs < 1:
		return fmt.Errorf("dataset: NumPOIs %d < 1", c.NumPOIs)
	case c.NumClusters < 1 || c.CoreClusters < 0 || c.CoreClusters > c.NumClusters:
		return fmt.Errorf("dataset: bad cluster counts (%d clusters, %d core)", c.NumClusters, c.CoreClusters)
	case c.ClusterSigma <= 0:
		return fmt.Errorf("dataset: ClusterSigma %g must be positive", c.ClusterSigma)
	case c.ZipfS <= 0:
		return fmt.Errorf("dataset: ZipfS %g must be positive", c.ZipfS)
	case c.HomeAffinity < 0 || c.HomeAffinity > 1:
		return fmt.Errorf("dataset: HomeAffinity %g outside [0,1]", c.HomeAffinity)
	}
	return nil
}

// Generate synthesizes a dataset. The same config always produces the same
// data.
func Generate(cfg GenConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xda7a5e7))
	region := geo.NewSquare(cfg.Side)

	// Cluster centers: core clusters pack the middle of the region, the
	// rest scatter across it (suburbs).
	type cluster struct {
		center geo.Point
		weight float64
	}
	clusters := make([]cluster, cfg.NumClusters)
	for i := range clusters {
		var c geo.Point
		if i < cfg.CoreClusters {
			c = geo.Point{
				X: cfg.Side * (0.40 + 0.20*rng.Float64()),
				Y: cfg.Side * (0.40 + 0.20*rng.Float64()),
			}
		} else {
			c = geo.Point{X: cfg.Side * rng.Float64(), Y: cfg.Side * rng.Float64()}
		}
		w := 1 / math.Pow(float64(i+1), 0.9) // popular first clusters
		clusters[i] = cluster{center: c, weight: w}
	}
	clusterCum := cumulative(clusters, func(c cluster) float64 { return c.weight })

	// POIs: cluster assignment by weight, Gaussian spread, clamped inside.
	pois := make([]geo.Point, cfg.NumPOIs)
	poiCluster := make([]int, cfg.NumPOIs)
	for i := range pois {
		ci := searchCum(clusterCum, rng.Float64())
		c := clusters[ci]
		p := geo.Point{
			X: c.center.X + rng.NormFloat64()*cfg.ClusterSigma,
			Y: c.center.Y + rng.NormFloat64()*cfg.ClusterSigma,
		}
		pois[i] = region.Clamp(p)
		poiCluster[i] = ci
	}

	// Zipf popularity over POIs (rank = index).
	poiCum := make([]float64, cfg.NumPOIs)
	total := 0.0
	for i := range poiCum {
		total += 1 / math.Pow(float64(i+1), cfg.ZipfS)
		poiCum[i] = total
	}
	for i := range poiCum {
		poiCum[i] /= total
	}

	// Per-cluster POI lists for home-affinity sampling.
	byCluster := make([][]int, cfg.NumClusters)
	for i, ci := range poiCluster {
		byCluster[ci] = append(byCluster[ci], i)
	}

	// Users: home cluster by cluster weight.
	homes := make([]int, cfg.NumUsers)
	for u := range homes {
		homes[u] = searchCum(clusterCum, rng.Float64())
	}

	d := &Dataset{
		Name:     cfg.Name,
		Side:     cfg.Side,
		NumUsers: cfg.NumUsers,
		NumPOIs:  cfg.NumPOIs,
		CheckIns: make([]CheckIn, 0, cfg.NumCheckIns),
	}
	for i := 0; i < cfg.NumCheckIns; i++ {
		u := rng.IntN(cfg.NumUsers)
		var poi int
		home := byCluster[homes[u]]
		if len(home) > 0 && rng.Float64() < cfg.HomeAffinity {
			poi = home[rng.IntN(len(home))]
		} else {
			poi = searchCum(poiCum, rng.Float64())
		}
		d.CheckIns = append(d.CheckIns, CheckIn{User: u, Loc: pois[poi]})
	}
	return d, nil
}

// cumulative builds a normalized cumulative distribution from weights.
func cumulative[T any](items []T, weight func(T) float64) []float64 {
	cum := make([]float64, len(items))
	total := 0.0
	for i, it := range items {
		total += weight(it)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// searchCum returns the first index whose cumulative value exceeds u.
func searchCum(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SyntheticGowalla returns the deterministic Gowalla-Austin substitute with
// the paper's published cardinalities (§6.1).
func SyntheticGowalla() *Dataset {
	d, err := Generate(GenConfig{
		Name:         "gowalla-austin-synthetic",
		Side:         20,
		NumUsers:     12155,
		NumCheckIns:  265571,
		NumPOIs:      15000,
		NumClusters:  60,
		CoreClusters: 8,
		ClusterSigma: 1.2,
		ZipfS:        1.0,
		HomeAffinity: 0.7,
		Seed:         0x60A11A,
	})
	if err != nil {
		panic(err) // static config; cannot fail
	}
	return d
}

// SyntheticYelp returns the deterministic Yelp-LasVegas substitute with the
// paper's published cardinalities (§6.1). Las Vegas concentrates activity
// along the Strip, modelled here with fewer, tighter core clusters.
func SyntheticYelp() *Dataset {
	d, err := Generate(GenConfig{
		Name:         "yelp-lasvegas-synthetic",
		Side:         20,
		NumUsers:     7581,
		NumCheckIns:  81201,
		NumPOIs:      5000,
		NumClusters:  35,
		CoreClusters: 5,
		ClusterSigma: 0.9,
		ZipfS:        1.1,
		HomeAffinity: 0.6,
		Seed:         0x791F,
	})
	if err != nil {
		panic(err)
	}
	return d
}

// WriteCSV serializes the dataset as "user,x_km,y_km" rows with a header.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dataset=%s side_km=%g users=%d\nuser,x_km,y_km\n",
		d.Name, d.Side, d.NumUsers); err != nil {
		return err
	}
	for _, c := range d.CheckIns {
		if _, err := fmt.Fprintf(bw, "%d,%.6f,%.6f\n", c.User, c.Loc.X, c.Loc.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or real data in the same
// format). side must be supplied when the file lacks the metadata comment.
func ReadCSV(r io.Reader, name string, side float64) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	d := &Dataset{Name: name, Side: side}
	users := map[int]bool{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			for _, field := range strings.Fields(text[1:]) {
				if v, ok := strings.CutPrefix(field, "side_km="); ok {
					s, err := strconv.ParseFloat(v, 64)
					if err == nil && s > 0 {
						d.Side = s
					}
				}
				if v, ok := strings.CutPrefix(field, "dataset="); ok && name == "" {
					d.Name = v
				}
			}
			continue
		}
		if text == "user,x_km,y_km" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("dataset: line %d: want 3 fields, got %d", line, len(parts))
		}
		u, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: user: %w", line, err)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: x: %w", line, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: y: %w", line, err)
		}
		users[u] = true
		d.CheckIns = append(d.CheckIns, CheckIn{User: u, Loc: geo.Point{X: x, Y: y}})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(d.CheckIns) == 0 {
		return nil, errors.New("dataset: no check-ins found")
	}
	if d.Side <= 0 {
		return nil, errors.New("dataset: region side unknown (pass side or include metadata header)")
	}
	d.NumUsers = len(users)
	return d, nil
}
