package dataset

import (
	"bytes"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"

	"geoind/internal/grid"
	"geoind/internal/prior"
)

func TestGenerateValidation(t *testing.T) {
	base := GenConfig{
		Name: "t", Side: 20, NumUsers: 10, NumCheckIns: 100, NumPOIs: 20,
		NumClusters: 3, CoreClusters: 1, ClusterSigma: 1, ZipfS: 1, HomeAffinity: 0.5,
	}
	mods := []func(*GenConfig){
		func(c *GenConfig) { c.Side = 0 },
		func(c *GenConfig) { c.NumUsers = 0 },
		func(c *GenConfig) { c.NumCheckIns = 0 },
		func(c *GenConfig) { c.NumPOIs = 0 },
		func(c *GenConfig) { c.NumClusters = 0 },
		func(c *GenConfig) { c.CoreClusters = 5 },
		func(c *GenConfig) { c.ClusterSigma = 0 },
		func(c *GenConfig) { c.ZipfS = 0 },
		func(c *GenConfig) { c.HomeAffinity = 1.5 },
	}
	for i, mod := range mods {
		cfg := base
		mod(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if _, err := Generate(base); err != nil {
		t.Fatalf("base config failed: %v", err)
	}
}

func TestSyntheticCardinalities(t *testing.T) {
	g := SyntheticGowalla()
	if len(g.CheckIns) != 265571 {
		t.Errorf("gowalla check-ins %d want 265571", len(g.CheckIns))
	}
	if g.NumUsers != 12155 {
		t.Errorf("gowalla users %d want 12155", g.NumUsers)
	}
	if g.Side != 20 {
		t.Errorf("gowalla side %g want 20", g.Side)
	}
	y := SyntheticYelp()
	if len(y.CheckIns) != 81201 {
		t.Errorf("yelp check-ins %d want 81201", len(y.CheckIns))
	}
	if y.NumUsers != 7581 {
		t.Errorf("yelp users %d want 7581", y.NumUsers)
	}
}

func TestAllCheckInsInsideRegion(t *testing.T) {
	for _, d := range []*Dataset{SyntheticGowalla(), SyntheticYelp()} {
		r := d.Region()
		for i, c := range d.CheckIns {
			if !r.ContainsClosed(c.Loc) {
				t.Fatalf("%s: check-in %d at %v outside region", d.Name, i, c.Loc)
			}
			if c.User < 0 || c.User >= d.NumUsers {
				t.Fatalf("%s: check-in %d has user %d outside [0,%d)", d.Name, i, c.User, d.NumUsers)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{
		Name: "det", Side: 20, NumUsers: 100, NumCheckIns: 5000, NumPOIs: 200,
		NumClusters: 5, CoreClusters: 2, ClusterSigma: 1, ZipfS: 1, HomeAffinity: 0.5,
		Seed: 99,
	}
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.CheckIns) != len(d2.CheckIns) {
		t.Fatal("length mismatch")
	}
	for i := range d1.CheckIns {
		if d1.CheckIns[i] != d2.CheckIns[i] {
			t.Fatalf("check-in %d differs", i)
		}
	}
}

// TestSkewedPrior verifies that the synthetic data produces the strongly
// non-uniform prior the paper's mechanisms exploit: the most popular decile
// of grid cells should carry the bulk of the probability mass.
func TestSkewedPrior(t *testing.T) {
	for _, d := range []*Dataset{SyntheticGowalla(), SyntheticYelp()} {
		g := grid.MustNew(d.Region(), 16)
		p := prior.FromPoints(g, d.Points())
		w := p.Weights()
		sort.Sort(sort.Reverse(sort.Float64Slice(w)))
		top := 0.0
		for i := 0; i < len(w)/10; i++ {
			top += w[i]
		}
		if top < 0.5 {
			t.Errorf("%s: top decile of cells holds only %.2f of mass; prior not skewed", d.Name, top)
		}
		t.Logf("%s: top decile mass %.2f", d.Name, top)
	}
}

func TestSampleRequests(t *testing.T) {
	d := SyntheticYelp()
	rng := rand.New(rand.NewPCG(5, 6))
	reqs := d.SampleRequests(3000, rng)
	if len(reqs) != 3000 {
		t.Fatalf("got %d requests", len(reqs))
	}
	// Every request must be an actual check-in location.
	locs := map[[2]float64]bool{}
	for _, c := range d.CheckIns {
		locs[[2]float64{c.Loc.X, c.Loc.Y}] = true
	}
	for _, r := range reqs {
		if !locs[[2]float64{r.X, r.Y}] {
			t.Fatalf("request %v is not a check-in location", r)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := GenConfig{
		Name: "rt", Side: 20, NumUsers: 50, NumCheckIns: 1000, NumPOIs: 100,
		NumClusters: 4, CoreClusters: 1, ClusterSigma: 1, ZipfS: 1, HomeAffinity: 0.5,
		Seed: 7,
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "", 0) // side from metadata header
	if err != nil {
		t.Fatal(err)
	}
	if back.Side != 20 {
		t.Errorf("side %g want 20 (from header)", back.Side)
	}
	if back.Name != "rt" {
		t.Errorf("name %q want rt", back.Name)
	}
	if len(back.CheckIns) != len(d.CheckIns) {
		t.Fatalf("count %d want %d", len(back.CheckIns), len(d.CheckIns))
	}
	for i := range d.CheckIns {
		if back.CheckIns[i].User != d.CheckIns[i].User {
			t.Fatalf("user mismatch at %d", i)
		}
		if back.CheckIns[i].Loc.Dist(d.CheckIns[i].Loc) > 1e-5 {
			t.Fatalf("location drift at %d", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x", 20); err == nil {
		t.Error("empty file should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n"), "x", 20); err == nil {
		t.Error("wrong field count should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,2,3\n"), "x", 20); err == nil {
		t.Error("bad user should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,zz,3\n"), "x", 20); err == nil {
		t.Error("bad x should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2,zz\n"), "x", 20); err == nil {
		t.Error("bad y should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2,3\n"), "x", 0); err == nil {
		t.Error("unknown side should error")
	}
	d, err := ReadCSV(strings.NewReader("user,x_km,y_km\n1,2,3\n2,4,5\n"), "ok", 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers != 2 || len(d.CheckIns) != 2 {
		t.Errorf("users=%d checkins=%d", d.NumUsers, len(d.CheckIns))
	}
}

// TestReadCSVNeverPanics feeds structured junk into the parser: it must
// return an error or a valid dataset, never crash.
func TestReadCSVNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	alphabet := []rune("0123456789,.-# \nabcxyz_=")
	for trial := 0; trial < 500; trial++ {
		n := rng.IntN(200)
		runes := make([]rune, n)
		for i := range runes {
			runes[i] = alphabet[rng.IntN(len(alphabet))]
		}
		input := string(runes)
		d, err := ReadCSV(strings.NewReader(input), "fuzz", 20)
		if err != nil {
			continue
		}
		if len(d.CheckIns) == 0 || d.Side <= 0 {
			t.Fatalf("trial %d: accepted dataset is invalid: %+v (input %q)", trial, d, input)
		}
	}
}

// TestZipfPopularity: the most popular POI receives far more check-ins than
// the median POI.
func TestZipfPopularity(t *testing.T) {
	cfg := GenConfig{
		Name: "zipf", Side: 20, NumUsers: 500, NumCheckIns: 50000, NumPOIs: 500,
		NumClusters: 5, CoreClusters: 1, ClusterSigma: 1, ZipfS: 1.0,
		HomeAffinity: 0, // pure popularity sampling
		Seed:         3,
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[[2]float64]int{}
	for _, c := range d.CheckIns {
		counts[[2]float64{c.Loc.X, c.Loc.Y}]++
	}
	max := 0
	all := make([]int, 0, len(counts))
	for _, n := range counts {
		all = append(all, n)
		if n > max {
			max = n
		}
	}
	sort.Ints(all)
	median := all[len(all)/2]
	if max < 10*median {
		t.Errorf("popularity not heavy-tailed: max=%d median=%d", max, median)
	}
}

// TestHomeAffinityLocality: with high affinity, a user's check-ins cluster
// much more tightly than the global spread.
func TestHomeAffinityLocality(t *testing.T) {
	mk := func(aff float64) float64 {
		cfg := GenConfig{
			Name: "aff", Side: 20, NumUsers: 50, NumCheckIns: 20000, NumPOIs: 300,
			NumClusters: 8, CoreClusters: 0, ClusterSigma: 0.8, ZipfS: 1.0,
			HomeAffinity: aff, Seed: 4,
		}
		d, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Mean distance of each user's check-ins to the user's centroid.
		sums := map[int][3]float64{} // sx, sy, n
		for _, c := range d.CheckIns {
			s := sums[c.User]
			sums[c.User] = [3]float64{s[0] + c.Loc.X, s[1] + c.Loc.Y, s[2] + 1}
		}
		total, n := 0.0, 0.0
		for _, c := range d.CheckIns {
			s := sums[c.User]
			cx, cy := s[0]/s[2], s[1]/s[2]
			total += math.Hypot(c.Loc.X-cx, c.Loc.Y-cy)
			n++
		}
		return total / n
	}
	tight := mk(0.95)
	loose := mk(0.0)
	if tight >= loose {
		t.Errorf("affinity 0.95 spread %.3f not tighter than affinity 0 spread %.3f", tight, loose)
	}
}
