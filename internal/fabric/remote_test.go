package fabric

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geoind/internal/channel"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/opt"
)

// newSnapshotServer runs an httptest server speaking the snapshot endpoint
// protocol: parse the key, look the frame up in fb (fault injection and
// all), serve the raw bytes. before, when non-nil, runs first and may hijack
// the response (returning false serves nothing else).
func newSnapshotServer(t *testing.T, fb *channel.FaultBacking, before func(w http.ResponseWriter, r *http.Request) bool) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if before != nil && !before(w, r) {
			return
		}
		key, _, err := ParseSnapshotRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		frame, ok := fb.Frame(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(frame)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// ownedKey returns a test key whose rendezvous owner is owner.
func ownedKey(t *testing.T, ring *Ring, owner string) channel.Key {
	t.Helper()
	for cell := 0; cell < 100000; cell++ {
		key := tkey(cell)
		if ring.Owner(channel.ContentHash(key)) == owner {
			return key
		}
	}
	t.Fatalf("no test key owned by %q", owner)
	return channel.Key{}
}

const fakeSelf = "http://self.invalid"

// twoPeerTier builds a RemoteTier whose only real peer is srv.
func twoPeerTier(t *testing.T, srv *httptest.Server, codec channel.Codec, opts RemoteOptions) (*RemoteTier, *Ring) {
	t.Helper()
	ring, err := NewRing([]string{fakeSelf, srv.URL}, fakeSelf)
	if err != nil {
		t.Fatal(err)
	}
	return NewRemoteTier(ring, codec, opts), ring
}

func TestRemoteTierFetchesOwnerSnapshot(t *testing.T) {
	fb := channel.NewFaultBacking(strCodec{}, 1)
	var requests atomic.Int64
	srv := newSnapshotServer(t, fb, func(http.ResponseWriter, *http.Request) bool {
		requests.Add(1)
		return true
	})
	rt, ring := twoPeerTier(t, srv, strCodec{}, RemoteOptions{HedgeDelay: -1})

	remoteKey := ownedKey(t, ring, srv.URL)
	if err := fb.Put(remoteKey, "from-owner"); err != nil {
		t.Fatal(err)
	}
	v, ok := rt.Load(context.Background(), remoteKey)
	if !ok || v.(string) != "from-owner" {
		t.Fatalf("owner fetch: %v %v", v, ok)
	}

	// A key this replica owns never goes over the network.
	selfKey := ownedKey(t, ring, fakeSelf)
	before := requests.Load()
	if _, ok := rt.Load(context.Background(), selfKey); ok {
		t.Fatal("self-owned key fetched remotely")
	}
	if requests.Load() != before {
		t.Fatal("self-owned miss issued an HTTP request")
	}
	st := rt.Stats()
	if st.Hits != 1 || st.Errors != 0 {
		t.Fatalf("remote stats: %+v", st)
	}
	if rs := rt.RemoteStats(); rs.Fetches != 1 || rs.Fallbacks != 0 {
		t.Fatalf("remote fetch stats: %+v", rs)
	}
}

// TestRemoteFetchedChannelBitIdentical is the acceptance round trip: a real
// OPT channel solved locally, framed, served over HTTP, fetched and
// re-validated by the remote tier must expose the identical distribution
// and the identical sample stream as the original.
func TestRemoteFetchedChannelBitIdentical(t *testing.T) {
	g, err := grid.New(geo.NewSquare(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	prior := make([]float64, g.NumCells())
	for i := range prior {
		prior[i] = float64(i%4) + 1
	}
	orig, err := opt.Build(1.2, g, prior, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}

	codec := opt.SnapshotCodec{}
	fb := channel.NewFaultBacking(codec, 2)
	srv := newSnapshotServer(t, fb, nil)
	rt, ring := twoPeerTier(t, srv, codec, RemoteOptions{HedgeDelay: -1})
	key := ownedKey(t, ring, srv.URL)
	if err := fb.Put(key, orig); err != nil {
		t.Fatal(err)
	}

	v, ok := rt.Load(context.Background(), key)
	if !ok {
		t.Fatal("remote fetch missed")
	}
	fetched, ok := v.(*opt.Channel)
	if !ok {
		t.Fatalf("fetched %T", v)
	}
	ko, kf := orig.DenseK(), fetched.DenseK()
	if len(ko) != len(kf) {
		t.Fatalf("K size %d vs %d", len(ko), len(kf))
	}
	for i := range ko {
		if ko[i] != kf[i] {
			t.Fatalf("K[%d]: %v vs %v (not bit-identical)", i, ko[i], kf[i])
		}
	}
	ra := rand.New(rand.NewPCG(7, 7))
	rb := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 2000; i++ {
		x := i % orig.N()
		if a, b := orig.SampleIndex(x, ra), fetched.SampleIndex(x, rb); a != b {
			t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
		}
	}
}

func TestRemoteCorruptResponseDegradesToMiss(t *testing.T) {
	fb := channel.NewFaultBacking(strCodec{}, 3)
	fb.CorruptRate = 1
	srv := newSnapshotServer(t, fb, nil)
	rt, ring := twoPeerTier(t, srv, strCodec{}, RemoteOptions{
		HedgeDelay: -1, Retries: -1,
	})
	key := ownedKey(t, ring, srv.URL)
	if err := fb.Put(key, "pristine"); err != nil {
		t.Fatal(err)
	}
	if v, ok := rt.Load(context.Background(), key); ok {
		t.Fatalf("corrupt response surfaced a value: %v", v)
	}
	st := rt.Stats()
	if st.Errors+st.VersionMisses == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	if rs := rt.RemoteStats(); rs.Fallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", rs)
	}
}

func TestRemoteForeignVersionCountsAsVersionMiss(t *testing.T) {
	codec := strCodec{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key, _, err := ParseSnapshotRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		payload, _ := codec.Encode("old-format")
		frame := channel.Snapshot(key, payload)
		binary.LittleEndian.PutUint32(frame[4:], 99) // foreign version
		binary.LittleEndian.PutUint32(frame[len(frame)-4:], crc32.ChecksumIEEE(frame[:len(frame)-4]))
		w.Write(frame)
	}))
	defer srv.Close()
	rt, ring := twoPeerTier(t, srv, codec, RemoteOptions{HedgeDelay: -1, Retries: -1})
	key := ownedKey(t, ring, srv.URL)
	if _, ok := rt.Load(context.Background(), key); ok {
		t.Fatal("foreign-version frame accepted")
	}
	if st := rt.Stats(); st.VersionMisses != 1 || st.Errors != 0 {
		t.Fatalf("foreign version must be a version miss, not an error: %+v", st)
	}
}

// TestRemoteHedgeWins: a slow owner is overtaken by a hedged cached-only
// fetch to the next replica on the ring; first success wins and the loser
// is canceled.
func TestRemoteHedgeWins(t *testing.T) {
	fb := channel.NewFaultBacking(strCodec{}, 4)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	slow := newSnapshotServer(t, fb, func(w http.ResponseWriter, r *http.Request) bool {
		select { // park until canceled or the test ends
		case <-r.Context().Done():
		case <-release:
		}
		return false
	})
	var hedgeSolve atomic.Bool
	fast := newSnapshotServer(t, fb, func(w http.ResponseWriter, r *http.Request) bool {
		if _, solve, err := ParseSnapshotRequest(r); err == nil && solve {
			hedgeSolve.Store(true)
		}
		return true
	})
	ring, err := NewRing([]string{fakeSelf, slow.URL, fast.URL}, fakeSelf)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRemoteTier(ring, strCodec{}, RemoteOptions{HedgeDelay: 5 * time.Millisecond})
	key := ownedKey(t, ring, slow.URL)
	if err := fb.Put(key, "hedged"); err != nil {
		t.Fatal(err)
	}
	v, ok := rt.Load(context.Background(), key)
	if !ok || v.(string) != "hedged" {
		t.Fatalf("hedged fetch: %v %v", v, ok)
	}
	rs := rt.RemoteStats()
	if rs.Hedges != 1 || rs.HedgeWins != 1 {
		t.Fatalf("hedge not counted: %+v", rs)
	}
	if hedgeSolve.Load() {
		t.Fatal("hedge request asked a non-owner to solve")
	}
}

func TestRemoteRetriesTransientFailures(t *testing.T) {
	fb := channel.NewFaultBacking(strCodec{}, 5)
	var n atomic.Int64
	srv := newSnapshotServer(t, fb, func(w http.ResponseWriter, r *http.Request) bool {
		if n.Add(1) == 1 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return false
		}
		return true
	})
	rt, ring := twoPeerTier(t, srv, strCodec{}, RemoteOptions{
		HedgeDelay: -1, Retries: 2, Backoff: time.Millisecond,
	})
	key := ownedKey(t, ring, srv.URL)
	if err := fb.Put(key, "second-try"); err != nil {
		t.Fatal(err)
	}
	v, ok := rt.Load(context.Background(), key)
	if !ok || v.(string) != "second-try" {
		t.Fatalf("retried fetch: %v %v", v, ok)
	}
	if rs := rt.RemoteStats(); rs.Retries != 1 || rs.Fetches != 2 {
		t.Fatalf("retry accounting: %+v", rs)
	}
}

func TestRemoteDefinitiveMissDoesNotRetry(t *testing.T) {
	fb := channel.NewFaultBacking(strCodec{}, 6) // empty: every fetch is 404
	var n atomic.Int64
	srv := newSnapshotServer(t, fb, func(http.ResponseWriter, *http.Request) bool {
		n.Add(1)
		return true
	})
	rt, ring := twoPeerTier(t, srv, strCodec{}, RemoteOptions{
		HedgeDelay: -1, Retries: 5, Backoff: time.Millisecond,
	})
	if _, ok := rt.Load(context.Background(), ownedKey(t, ring, srv.URL)); ok {
		t.Fatal("404 produced a value")
	}
	if n.Load() != 1 {
		t.Fatalf("definitive miss fetched %d times", n.Load())
	}
}

func TestRemoteLoadHonorsCancellation(t *testing.T) {
	fb := channel.NewFaultBacking(strCodec{}, 7)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	srv := newSnapshotServer(t, fb, func(w http.ResponseWriter, r *http.Request) bool {
		select {
		case <-r.Context().Done():
		case <-release:
		}
		return false
	})
	rt, ring := twoPeerTier(t, srv, strCodec{}, RemoteOptions{HedgeDelay: -1})
	key := ownedKey(t, ring, srv.URL)
	if err := fb.Put(key, "never"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := rt.Load(ctx, key); ok {
		t.Fatal("canceled load returned a value")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("canceled load did not return promptly")
	}
}

// TestFlappingRemoteNeverServesWrongChannel is the fabric half of the
// fault-injection race suite: a full store with a mem→remote chain over a
// flapping peer (drops, corruption, transient 500s) under concurrent load
// must always produce the correct channel for every key — faults cost a
// local re-solve, never correctness.
func TestFlappingRemoteNeverServesWrongChannel(t *testing.T) {
	fb := channel.NewFaultBacking(strCodec{}, 8)
	fb.DropRate = 0.25
	fb.CorruptRate = 0.25
	var n atomic.Int64
	srv := newSnapshotServer(t, fb, func(w http.ResponseWriter, r *http.Request) bool {
		if n.Add(1)%5 == 0 { // transient server failures too
			http.Error(w, "flap", http.StatusInternalServerError)
			return false
		}
		return true
	})
	rt, _ := twoPeerTier(t, srv, strCodec{}, RemoteOptions{
		HedgeDelay: -1, Retries: 1, Backoff: time.Millisecond,
	})
	const keys = 16
	want := func(cell int) string { return fmt.Sprintf("value-%d", cell) }
	for cell := 0; cell < keys; cell++ {
		if err := fb.Put(tkey(cell), want(cell)); err != nil {
			t.Fatal(err)
		}
	}
	// MaxCost 1 keeps evicting so the chain stays hot for the whole run.
	s := channel.New(channel.Options{
		Backing: NewTieredBacking(NewMemTier(4, nil), rt),
		MaxCost: 1,
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 17))
			for i := 0; i < 60; i++ {
				cell := rng.IntN(keys)
				v, _, err := s.GetOrComputeCtx(context.Background(), tkey(cell), func(context.Context) (any, error) {
					return want(cell), nil // local-solve fallback
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if v.(string) != want(cell) {
					t.Errorf("worker %d: key %d got %q", w, cell, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	s.Sync()
}

// TestFabricAssembly covers New's tier selection and the degenerate
// single-replica fabric.
func TestFabricAssembly(t *testing.T) {
	if _, err := New(Config{Peers: []string{"a"}, Self: "a"}); err == nil {
		t.Error("nil codec accepted")
	}
	if _, err := New(Config{Peers: []string{"a"}, Self: "b", Codec: strCodec{}}); err == nil {
		t.Error("self outside peers accepted")
	}
	if _, err := New(Config{Peers: []string{"a"}, Self: "a", Codec: strCodec{}, MemBytes: -1}); err == nil {
		t.Error("tierless fabric accepted")
	}

	single, err := New(Config{Peers: []string{"http://a"}, Self: "http://a", Codec: strCodec{}, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if single.FetchLatency() != nil {
		t.Error("single-replica fabric has a remote tier")
	}
	for cell := 0; cell < 50; cell++ {
		if !single.Owns(tkey(cell)) {
			t.Fatal("single replica must own every key")
		}
	}
	st := single.Stats()
	if st.Remote != nil || len(st.Tiers) != 2 || st.Tiers[0].Name != "mem" || st.Tiers[1].Name != "disk" {
		t.Fatalf("single-replica stats: %+v", st)
	}

	fleet, err := New(Config{
		Peers: []string{"http://a", "http://b"}, Self: "http://a",
		Codec: strCodec{}, CacheDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	for cell := 0; cell < 200; cell++ {
		if fleet.Owns(tkey(cell)) {
			owned++
		}
	}
	if owned == 0 || owned == 200 {
		t.Fatalf("2-replica ownership degenerate: %d/200", owned)
	}
	st = fleet.Stats()
	if st.Remote == nil || len(st.Tiers) != 3 || st.Tiers[2].Name != "remote" {
		t.Fatalf("fleet stats: %+v", st)
	}
	if fleet.FetchLatency() == nil {
		t.Error("fleet fabric lacks a fetch-latency histogram")
	}
}
