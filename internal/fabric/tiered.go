// TieredBacking: the fabric's backing chain, consulted fastest-first.
//
// A replica's channel store sees one Backing; behind it the fabric chains an
// in-memory tier (decoded values, LRU-bounded), the local DirCache (the PR 4
// snapshot directory), and a remote HTTP tier that fetches the owner's
// snapshot over the network. A hit at any tier is promoted write-behind into
// every faster local tier, so a channel fetched once from a peer costs a map
// lookup ever after — and is persisted locally, surviving restarts without
// re-fetching. Every tier keeps DirCache-shaped counters plus cumulative
// load latency, surfaced per tier through the store's generalized stats
// (channel.TierStatser) into /v1/stats and /metrics.
package fabric

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"geoind/internal/channel"
)

// Tier is one level of a TieredBacking: a Backing that also identifies
// itself and reports its counters. Local tiers (memory, disk) accept
// promotions and are consulted by solve-free LoadLocal lookups; non-local
// tiers (remote) are skipped by both.
type Tier interface {
	channel.Backing
	Name() string
	Local() bool
	Stats() channel.DirStats
}

// TieredBacking chains tiers fastest-first and implements channel.Backing
// plus the store's introspection interfaces (TierStatser, DiskStatser,
// LocalLoader). Safe for concurrent use.
type TieredBacking struct {
	tiers []Tier
	nanos []atomic.Int64 // per-tier cumulative Load wall time

	promotions sync.WaitGroup // in-flight write-behind promotions
}

// NewTieredBacking chains the given tiers, consulted in order.
func NewTieredBacking(tiers ...Tier) *TieredBacking {
	return &TieredBacking{tiers: tiers, nanos: make([]atomic.Int64, len(tiers))}
}

// Load implements channel.Backing: consult each tier in order and promote a
// hit into every faster local tier (asynchronously — the waiter gets its
// channel immediately; Sync waits for promotions, e.g. before exit).
func (t *TieredBacking) Load(ctx context.Context, key channel.Key) (any, bool) {
	return t.load(ctx, key, false)
}

// LoadLocal implements channel.LocalLoader: like Load but consults local
// tiers only, so "serve only if already cached" lookups never touch the
// network.
func (t *TieredBacking) LoadLocal(ctx context.Context, key channel.Key) (any, bool) {
	return t.load(ctx, key, true)
}

func (t *TieredBacking) load(ctx context.Context, key channel.Key, localOnly bool) (any, bool) {
	for i, tier := range t.tiers {
		if localOnly && !tier.Local() {
			continue
		}
		if ctx.Err() != nil {
			return nil, false
		}
		start := time.Now()
		v, ok := tier.Load(ctx, key)
		t.nanos[i].Add(int64(time.Since(start)))
		if ok {
			t.promote(i, key, v)
			return v, true
		}
	}
	return nil, false
}

// promote writes a value that hit at tier index from into every faster
// local tier, in the background.
func (t *TieredBacking) promote(from int, key channel.Key, v any) {
	if from == 0 {
		return
	}
	t.promotions.Add(1)
	go func() {
		defer t.promotions.Done()
		for j := from - 1; j >= 0; j-- {
			if t.tiers[j].Local() {
				t.tiers[j].Store(key, v)
			}
		}
	}()
}

// Store implements channel.Backing write-behind: freshly solved channels are
// persisted into every local tier. Remote tiers are not written — peers pull
// snapshots over HTTP; nothing is pushed.
func (t *TieredBacking) Store(key channel.Key, v any) {
	for _, tier := range t.tiers {
		if tier.Local() {
			tier.Store(key, v)
		}
	}
}

// Sync waits for promotions started so far to land (the store's own Sync
// covers write-behind of solved values; this covers promotion of fetched
// ones).
func (t *TieredBacking) Sync() {
	t.promotions.Wait()
}

// TierStats implements channel.TierStatser.
func (t *TieredBacking) TierStats() []channel.TierStats {
	out := make([]channel.TierStats, len(t.tiers))
	for i, tier := range t.tiers {
		out[i] = channel.TierStats{
			Name:      tier.Name(),
			DirStats:  tier.Stats(),
			LoadNanos: t.nanos[i].Load(),
		}
	}
	return out
}

// DiskStats implements channel.DiskStatser: the durable disk tier's own
// counters, preserving the meaning of the legacy /v1/stats disk fields.
func (t *TieredBacking) DiskStats() (channel.DirStats, bool) {
	for _, tier := range t.tiers {
		if d, ok := tier.(*DiskTier); ok {
			return d.Stats(), true
		}
	}
	return channel.DirStats{}, false
}

var (
	_ channel.Backing     = (*TieredBacking)(nil)
	_ channel.TierStatser = (*TieredBacking)(nil)
	_ channel.DiskStatser = (*TieredBacking)(nil)
	_ channel.LocalLoader = (*TieredBacking)(nil)
)

// MemTier is a bounded in-memory tier of decoded channel values with LRU
// eviction by cost. It exists for values the store itself no longer holds
// (evicted, or loaded by solve-free peer lookups): hitting here skips both
// the disk read+decode and any network fetch.
type MemTier struct {
	maxBytes int64
	cost     func(any) int64

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[channel.Key]*list.Element
	total int64

	loads, hits, writes atomic.Int64
}

type memItem struct {
	key  channel.Key
	v    any
	cost int64
}

// NewMemTier builds a memory tier holding at most maxBytes of cost (as
// measured by cost, typically opt.SnapshotCost); cost nil charges 1 per
// entry.
func NewMemTier(maxBytes int64, cost func(any) int64) *MemTier {
	if cost == nil {
		cost = func(any) int64 { return 1 }
	}
	return &MemTier{
		maxBytes: maxBytes,
		cost:     cost,
		ll:       list.New(),
		items:    make(map[channel.Key]*list.Element),
	}
}

// Name implements Tier.
func (m *MemTier) Name() string { return "mem" }

// Local implements Tier.
func (m *MemTier) Local() bool { return true }

// Load implements channel.Backing.
func (m *MemTier) Load(_ context.Context, key channel.Key) (any, bool) {
	m.loads.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return nil, false
	}
	m.ll.MoveToFront(el)
	m.hits.Add(1)
	return el.Value.(*memItem).v, true
}

// Store implements channel.Backing: insert (or refresh) and evict LRU
// entries beyond the byte bound. A single value larger than the bound is
// simply not retained.
func (m *MemTier) Store(key channel.Key, v any) {
	c := m.cost(v)
	m.writes.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		it := el.Value.(*memItem)
		m.total += c - it.cost
		it.v, it.cost = v, c
		m.ll.MoveToFront(el)
	} else {
		m.items[key] = m.ll.PushFront(&memItem{key: key, v: v, cost: c})
		m.total += c
	}
	for m.total > m.maxBytes && m.ll.Len() > 0 {
		back := m.ll.Back()
		it := back.Value.(*memItem)
		m.ll.Remove(back)
		delete(m.items, it.key)
		m.total -= it.cost
	}
}

// Stats implements Tier (Writes counts inserts; eviction is implicit).
func (m *MemTier) Stats() channel.DirStats {
	return channel.DirStats{
		Loads:  m.loads.Load(),
		Hits:   m.hits.Load(),
		Writes: m.writes.Load(),
	}
}

// Len returns the resident entry count.
func (m *MemTier) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// DiskTier adapts the PR 4 DirCache to the Tier interface.
type DiskTier struct {
	*channel.DirCache
}

// Name implements Tier.
func (*DiskTier) Name() string { return "disk" }

// Local implements Tier.
func (*DiskTier) Local() bool { return true }

var (
	_ Tier = (*MemTier)(nil)
	_ Tier = (*DiskTier)(nil)
)
