package fabric

import (
	"net/http/httptest"
	"strings"
	"testing"

	"geoind/internal/channel"
)

func TestSnapshotURLRoundTrip(t *testing.T) {
	keys := []channel.Key{
		channel.NewKey("msm", 0, 0, 0.25, 0, 0xdeadbeef),
		channel.NewKey("msm", 3, 1234, 1.0/3.0, 1, 0xffffffffffffffff).WithVariant(42),
		channel.NewKey("adaptive", 7, 99, 1e-9, 0, 1),
		{Namespace: "", Level: -1, Cell: 0, EpsBits: 0x3fd5555555555555, Metric: 0, PriorHash: 0},
	}
	for _, solve := range []bool{false, true} {
		for _, key := range keys {
			u := SnapshotURL("http://peer:8080/", key, solve)
			if !strings.HasPrefix(u, "http://peer:8080"+SnapshotPathPrefix) {
				t.Fatalf("URL %q lacks prefix", u)
			}
			r := httptest.NewRequest("GET", u, nil)
			got, gotSolve, err := ParseSnapshotRequest(r)
			if err != nil {
				t.Fatalf("parse %q: %v", u, err)
			}
			if got != key || gotSolve != solve {
				t.Fatalf("round trip %q: got %+v solve=%v, want %+v solve=%v", u, got, gotSolve, key, solve)
			}
		}
	}
}

func TestParseSnapshotRequestRejectsMangledURLs(t *testing.T) {
	key := channel.NewKey("msm", 1, 5, 0.5, 0, 0xabc)
	good := SnapshotURL("http://peer", key, true)
	bad := []string{
		"http://peer/v1/channels/",                     // missing hash
		"http://peer/v1/channels/zzzz",                 // unparsable hash
		"http://peer/v1/channels/0/extra",              // extra path element
		strings.Replace(good, "level=1", "level=2", 1), // field no longer matches hash
		strings.Replace(good, "level=1", "level=x", 1), // unparsable field
		strings.Replace(good, "prior=abc", "prior=abd", 1),
	}
	for _, u := range bad {
		if _, _, err := ParseSnapshotRequest(httptest.NewRequest("GET", u, nil)); err == nil {
			t.Errorf("mangled URL accepted: %q", u)
		}
	}
	if _, _, err := ParseSnapshotRequest(httptest.NewRequest("GET", good, nil)); err != nil {
		t.Fatalf("good URL rejected: %v", err)
	}
}
