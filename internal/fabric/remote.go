// RemoteTier: fetch a peer's snapshot instead of re-running the LP.
//
// On a local miss for a key this replica does not own, the remote tier asks
// the key's owner for its snapshot (?solve=1 — the owner solves on its own
// miss, so a cold key is solved exactly once per fleet, by its owner). The
// fetch is hedged: if the owner has not answered within HedgeDelay, a second
// request goes to the next replica on the rendezvous order with ?solve=0 —
// "serve it only if you already have it" — so hedging can only ever cost
// latency, never a duplicate solve. First success wins and cancels the
// loser through the shared fetch context. Transient failures (connection
// errors, 5xx, 429) are retried with exponential backoff up to Retries
// times; a definitive owner miss (404 on a solve request only happens if
// the owner considers the key foreign) or exhausted retries make the tier
// report a miss, and the store falls back to solving locally — ownership is
// an optimization for solve dedup, never a correctness or availability
// dependency.
//
// Received payloads go through exactly the verification a local snapshot
// file does: channel.Load re-checks the CRC and the full embedded key, and
// the codec re-validates the decoded channel (row sums, geometry, cum
// reconstruction — opt.SnapshotCodec), so a corrupt, truncated or
// foreign-version peer response degrades to a local solve and a fetched
// channel samples bit-identically to a locally solved one.
package fabric

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"geoind/internal/channel"
	"geoind/internal/metrics"
)

// Remote tier defaults, chosen for LAN fleets: the hedge delay is well above
// a healthy snapshot round trip but far below an LP solve, and the retry
// budget keeps worst-case added latency bounded (fetch path total <
// 2*Timeout) before falling back to the local solve.
const (
	DefaultHedgeDelay   = 150 * time.Millisecond
	DefaultFetchTimeout = 15 * time.Second
	DefaultFetchBackoff = 100 * time.Millisecond
	DefaultFetchRetries = 2
	// DefaultMaxBody caps a snapshot response read; larger is certainly not
	// one of our channels.
	DefaultMaxBody = 256 << 20
)

// fetchLatencyBounds are the remote-fetch histogram buckets in seconds.
var fetchLatencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// RemoteOptions tunes a RemoteTier; the zero value selects every default.
type RemoteOptions struct {
	// Client is the HTTP client used for snapshot fetches (default
	// http.DefaultClient). Its transport is shared by hedged requests.
	Client *http.Client
	// HedgeDelay is how long to wait on the owner before hedging to the
	// next replica on the ring; <0 disables hedging.
	HedgeDelay time.Duration
	// FetchTimeout bounds one Load's whole fetch attempt set (all retries
	// and hedges for one key).
	FetchTimeout time.Duration
	// Retries is how many times a transiently failed owner fetch is retried
	// before giving up (<0 disables retries; 0 selects the default).
	Retries int
	// Backoff is the initial retry backoff, doubled per attempt.
	Backoff time.Duration
	// MaxBody caps the accepted response size.
	MaxBody int64
}

// RemoteStats is a snapshot of remote-tier behaviour beyond the
// DirCache-shaped counters.
type RemoteStats struct {
	// Fetches counts HTTP requests issued (primaries, hedges and retries).
	Fetches int64
	// Hedges counts hedged (second) requests launched; HedgeWins counts
	// hedges that answered first with a usable snapshot.
	Hedges    int64
	HedgeWins int64
	// Retries counts re-fetches after a transient failure.
	Retries int64
	// Fallbacks counts Loads that gave up (miss → the caller solves
	// locally).
	Fallbacks int64
	// FetchP50Ms / FetchP99Ms are latency quantile estimates over completed
	// fetch attempts, in milliseconds.
	FetchP50Ms float64
	FetchP99Ms float64
}

// RemoteTier fetches owner snapshots over HTTP. It implements Tier with
// Local() == false: it is never written to and never consulted by local-only
// lookups.
type RemoteTier struct {
	ring    *Ring
	codec   channel.Codec
	client  *http.Client
	hedge   time.Duration
	timeout time.Duration
	retries int
	backoff time.Duration
	maxBody int64

	loads, hits, errs, versionMisses         atomic.Int64
	fetches, hedges, hedgeWins, retriedCount atomic.Int64
	fallbacks                                atomic.Int64
	latency                                  *metrics.Histogram
}

// NewRemoteTier builds a remote tier over ring, decoding payloads with
// codec.
func NewRemoteTier(ring *Ring, codec channel.Codec, opts RemoteOptions) *RemoteTier {
	t := &RemoteTier{
		ring:    ring,
		codec:   codec,
		client:  opts.Client,
		hedge:   opts.HedgeDelay,
		timeout: opts.FetchTimeout,
		retries: opts.Retries,
		backoff: opts.Backoff,
		maxBody: opts.MaxBody,
		latency: metrics.NewHistogram(fetchLatencyBounds),
	}
	if t.client == nil {
		t.client = http.DefaultClient
	}
	if t.hedge == 0 {
		t.hedge = DefaultHedgeDelay
	}
	if t.timeout == 0 {
		t.timeout = DefaultFetchTimeout
	}
	if t.retries == 0 {
		t.retries = DefaultFetchRetries
	} else if t.retries < 0 {
		t.retries = 0
	}
	if t.backoff == 0 {
		t.backoff = DefaultFetchBackoff
	}
	if t.maxBody == 0 {
		t.maxBody = DefaultMaxBody
	}
	return t
}

// Name implements Tier.
func (t *RemoteTier) Name() string { return "remote" }

// Local implements Tier.
func (t *RemoteTier) Local() bool { return false }

// Store implements channel.Backing as a no-op: snapshots are pulled by the
// replicas that need them, never pushed.
func (t *RemoteTier) Store(channel.Key, any) {}

// Stats implements Tier with the DirCache-shaped counters.
func (t *RemoteTier) Stats() channel.DirStats {
	return channel.DirStats{
		Loads:         t.loads.Load(),
		Hits:          t.hits.Load(),
		Errors:        t.errs.Load(),
		VersionMisses: t.versionMisses.Load(),
	}
}

// RemoteStats returns the fetch/hedge/retry counters and latency quantiles.
func (t *RemoteTier) RemoteStats() RemoteStats {
	return RemoteStats{
		Fetches:    t.fetches.Load(),
		Hedges:     t.hedges.Load(),
		HedgeWins:  t.hedgeWins.Load(),
		Retries:    t.retriedCount.Load(),
		Fallbacks:  t.fallbacks.Load(),
		FetchP50Ms: t.latency.Quantile(0.50) * 1e3,
		FetchP99Ms: t.latency.Quantile(0.99) * 1e3,
	}
}

// LatencyHistogram exposes the fetch-latency histogram for registration in
// a metrics registry (observations are in seconds).
func (t *RemoteTier) LatencyHistogram() *metrics.Histogram { return t.latency }

// Load implements channel.Backing: fetch the snapshot for a key this
// replica does not own from the key's owner, hedged and retried. For a key
// this replica owns the tier is an instant miss — the owner is the one that
// solves.
func (t *RemoteTier) Load(ctx context.Context, key channel.Key) (any, bool) {
	order := t.ring.Order(channel.ContentHash(key))
	if order[0] == t.ring.Self() {
		return nil, false
	}
	t.loads.Add(1)
	// The hedge target is the best-ranked peer after the owner that is not
	// this replica (asking ourselves over HTTP would deadlock a busy server
	// for no information we don't already have).
	hedgePeer := ""
	for _, p := range order[1:] {
		if p != t.ring.Self() {
			hedgePeer = p
			break
		}
	}
	fctx, cancel := context.WithTimeout(ctx, t.timeout)
	defer cancel()
	backoff := t.backoff
	for attempt := 0; ; attempt++ {
		v, ok, retryable := t.fetchHedged(fctx, cancel, key, order[0], hedgePeer)
		if ok {
			t.hits.Add(1)
			return v, true
		}
		if !retryable || attempt >= t.retries || fctx.Err() != nil {
			t.fallbacks.Add(1)
			return nil, false
		}
		t.retriedCount.Add(1)
		select {
		case <-time.After(backoff):
		case <-fctx.Done():
			t.fallbacks.Add(1)
			return nil, false
		}
		backoff *= 2
	}
}

type fetchResult struct {
	v         any
	ok        bool
	retryable bool
	hedged    bool
}

// fetchHedged runs one owner fetch with an optional hedge: if the owner has
// not answered within the hedge delay, a cached-only request goes to
// hedgePeer; the first usable answer wins and cancel aborts the other
// request via the shared context.
func (t *RemoteTier) fetchHedged(ctx context.Context, cancel context.CancelFunc, key channel.Key, owner, hedgePeer string) (any, bool, bool) {
	results := make(chan fetchResult, 2)
	launch := func(peer string, solve, hedged bool) {
		t.fetches.Add(1)
		go func() {
			v, ok, retryable := t.fetchOne(ctx, key, peer, solve)
			results <- fetchResult{v, ok, retryable, hedged}
		}()
	}
	launch(owner, true, false)
	pending := 1

	var hedgeC <-chan time.Time
	if hedgePeer != "" && t.hedge >= 0 {
		timer := time.NewTimer(t.hedge)
		defer timer.Stop()
		hedgeC = timer.C
	}
	retryable := false
	for pending > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			t.hedges.Add(1)
			launch(hedgePeer, false, true)
			pending++
		case r := <-results:
			pending--
			if r.ok {
				if r.hedged {
					t.hedgeWins.Add(1)
				}
				cancel() // first success wins; abort the other request
				return r.v, true, false
			}
			if !r.hedged {
				retryable = r.retryable
			}
		}
	}
	return nil, false, retryable
}

// fetchOne performs a single snapshot GET against peer and fully verifies
// the response: HTTP status triage, CRC + key re-verification of the frame,
// codec re-validation of the payload. retryable reports whether a failure
// looks transient (network error, 5xx, 429) rather than definitive (404,
// corrupt frame for this exact key, foreign snapshot version).
func (t *RemoteTier) fetchOne(ctx context.Context, key channel.Key, peer string, solve bool) (any, bool, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, SnapshotURL(peer, key, solve), nil)
	if err != nil {
		t.errs.Add(1)
		return nil, false, false
	}
	start := time.Now()
	resp, err := t.client.Do(req)
	if err != nil {
		// Context cancellation (the hedge race was won, the caller gave up)
		// is not a peer error.
		if ctx.Err() == nil {
			t.errs.Add(1)
		}
		return nil, false, true
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	t.latency.Observe(time.Since(start).Seconds())
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, false // definitive: not cached there / foreign key
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		t.errs.Add(1)
		return nil, false, true
	default:
		t.errs.Add(1)
		return nil, false, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, t.maxBody+1))
	if err != nil || int64(len(data)) > t.maxBody {
		t.errs.Add(1)
		return nil, false, true
	}
	payload, err := channel.Load(data, key)
	if err != nil {
		if errors.Is(err, channel.ErrSnapshotVersion) {
			// A peer running a different snapshot format: expected during
			// rollouts, counted separately, not retried (it will keep
			// sending the same version).
			t.versionMisses.Add(1)
			return nil, false, false
		}
		t.errs.Add(1)
		return nil, false, true
	}
	v, err := t.codec.Decode(ctx, payload)
	if err != nil {
		t.errs.Add(1)
		return nil, false, true
	}
	return v, true, false
}

var _ Tier = (*RemoteTier)(nil)
