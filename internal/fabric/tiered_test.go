package fabric

import (
	"context"
	"fmt"
	"testing"

	"geoind/internal/channel"
)

// strCodec mirrors the channel package's test codec: payload = "S:" + value.
type strCodec struct{}

func (strCodec) Encode(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("strCodec: %T", v)
	}
	return append([]byte("S:"), s...), nil
}

func (strCodec) Decode(_ context.Context, data []byte) (any, error) {
	if len(data) < 2 || string(data[:2]) != "S:" {
		return nil, fmt.Errorf("strCodec: bad payload")
	}
	return string(data[2:]), nil
}

// faultTier adapts a FaultBacking to the Tier interface under a chosen name
// and locality, standing in for disk or remote tiers in chain tests.
type faultTier struct {
	*channel.FaultBacking
	name  string
	local bool
}

func (ft *faultTier) Name() string { return ft.name }
func (ft *faultTier) Local() bool  { return ft.local }

func tkey(cell int) channel.Key {
	return channel.NewKey("t", 1, cell, 0.5, 0, 0xfab)
}

// TestTieredPromotion: a hit in a slower tier is promoted write-behind into
// every faster local tier, so the next load stops at the front.
func TestTieredPromotion(t *testing.T) {
	ctx := context.Background()
	mem := NewMemTier(1<<20, nil)
	slow := &faultTier{FaultBacking: channel.NewFaultBacking(strCodec{}, 1), name: "slow", local: true}
	if err := slow.Put(tkey(1), "hello"); err != nil {
		t.Fatal(err)
	}
	tb := NewTieredBacking(mem, slow)

	v, ok := tb.Load(ctx, tkey(1))
	if !ok || v.(string) != "hello" {
		t.Fatalf("Load through chain: %v %v", v, ok)
	}
	tb.Sync() // wait for the promotion
	if v, ok := mem.Load(ctx, tkey(1)); !ok || v.(string) != "hello" {
		t.Fatalf("hit not promoted to mem tier: %v %v", v, ok)
	}
	slowLoads := slow.Stats().Loads
	if _, ok := tb.Load(ctx, tkey(1)); !ok {
		t.Fatal("second load missed")
	}
	if got := slow.Stats().Loads; got != slowLoads {
		t.Fatalf("second load reached the slow tier (%d -> %d loads)", slowLoads, got)
	}
}

// TestTieredLocalOnlyAndStoreScope: LoadLocal never consults non-local
// tiers, and Store writes local tiers only.
func TestTieredLocalOnlyAndStoreScope(t *testing.T) {
	ctx := context.Background()
	local := &faultTier{FaultBacking: channel.NewFaultBacking(strCodec{}, 2), name: "mem", local: true}
	remote := &faultTier{FaultBacking: channel.NewFaultBacking(strCodec{}, 3), name: "remote", local: false}
	if err := remote.Put(tkey(2), "remote-only"); err != nil {
		t.Fatal(err)
	}
	tb := NewTieredBacking(local, remote)

	if _, ok := tb.LoadLocal(ctx, tkey(2)); ok {
		t.Fatal("LoadLocal consulted the remote tier")
	}
	if remote.Stats().Loads != 0 {
		t.Fatal("LoadLocal issued a remote load")
	}
	if v, ok := tb.Load(ctx, tkey(2)); !ok || v.(string) != "remote-only" {
		t.Fatalf("full Load: %v %v", v, ok)
	}
	tb.Sync()
	// The remote hit was promoted into the local tier; LoadLocal now hits.
	if v, ok := tb.LoadLocal(ctx, tkey(2)); !ok || v.(string) != "remote-only" {
		t.Fatalf("promotion did not reach the local tier: %v %v", v, ok)
	}

	tb.Store(tkey(3), "solved")
	if remote.Stats().Writes != 0 {
		t.Fatal("Store wrote to the remote tier")
	}
	if v, ok := local.Load(ctx, tkey(3)); !ok || v.(string) != "solved" {
		t.Fatalf("Store missed the local tier: %v %v", v, ok)
	}
}

// TestTieredStatsSurfaces: per-tier stats carry tier names in chain order,
// and DiskStats reports the real DiskTier specifically.
func TestTieredStatsSurfaces(t *testing.T) {
	ctx := context.Background()
	mem := NewMemTier(1<<20, nil)
	dc, err := channel.NewDirCache(t.TempDir(), strCodec{})
	if err != nil {
		t.Fatal(err)
	}
	disk := &DiskTier{DirCache: dc}
	tb := NewTieredBacking(mem, disk)

	tb.Store(tkey(4), "v")
	if _, ok := tb.Load(ctx, tkey(4)); !ok {
		t.Fatal("load after store missed")
	}
	ts := tb.TierStats()
	if len(ts) != 2 || ts[0].Name != "mem" || ts[1].Name != "disk" {
		t.Fatalf("tier stats: %+v", ts)
	}
	if ts[0].Hits != 1 || ts[0].Writes != 1 {
		t.Fatalf("mem tier counters: %+v", ts[0])
	}
	ds, ok := tb.DiskStats()
	if !ok || ds.Writes != 1 {
		t.Fatalf("disk stats: %+v ok=%v", ds, ok)
	}

	// A chain without a DiskTier reports no disk stats.
	if _, ok := NewTieredBacking(mem).DiskStats(); ok {
		t.Fatal("memory-only chain reported disk stats")
	}
}

// TestMemTierLRUEviction: the byte bound evicts least-recently-used entries.
func TestMemTierLRUEviction(t *testing.T) {
	ctx := context.Background()
	mem := NewMemTier(2, func(any) int64 { return 1 })
	mem.Store(tkey(0), "a")
	mem.Store(tkey(1), "b")
	if _, ok := mem.Load(ctx, tkey(0)); !ok { // touch 0: 1 becomes LRU
		t.Fatal("miss on resident entry")
	}
	mem.Store(tkey(2), "c")
	if mem.Len() != 2 {
		t.Fatalf("len = %d after eviction", mem.Len())
	}
	if _, ok := mem.Load(ctx, tkey(1)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := mem.Load(ctx, tkey(0)); !ok {
		t.Fatal("recently used entry evicted")
	}
	// Refreshing an existing key updates cost in place.
	mem.Store(tkey(0), "a2")
	if v, _ := mem.Load(ctx, tkey(0)); v.(string) != "a2" {
		t.Fatalf("refresh did not replace value: %v", v)
	}
}

// TestTieredBackingThroughStore wires the chain as a real store Backing and
// checks the generalized stats surface end to end.
func TestTieredBackingThroughStore(t *testing.T) {
	mem := NewMemTier(1<<20, nil)
	dc, err := channel.NewDirCache(t.TempDir(), strCodec{})
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTieredBacking(mem, &DiskTier{DirCache: dc})
	s := channel.New(channel.Options{Backing: tb})

	if _, _, err := s.GetOrCompute(tkey(7), func() (any, error) { return "solved", nil }); err != nil {
		t.Fatal(err)
	}
	s.Sync()
	tiers, ok := s.BackingTierStats()
	if !ok || len(tiers) != 2 {
		t.Fatalf("BackingTierStats through store: %+v ok=%v", tiers, ok)
	}
	ds, ok := s.BackingStats()
	if !ok || ds.Writes != 1 {
		t.Fatalf("BackingStats through store must be the disk tier: %+v ok=%v", ds, ok)
	}
	// LoadCached consults local tiers only — and hits after the write-behind.
	if v, ok := s.LoadCached(context.Background(), tkey(7)); !ok || v.(string) != "solved" {
		t.Fatalf("LoadCached: %v %v", v, ok)
	}
}
