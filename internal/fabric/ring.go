// Consistent-hash ownership of channel keys across a replica fleet.
//
// The fabric assigns every channel key exactly one owner replica via
// rendezvous (highest-random-weight) hashing: each peer's score for a key is
// a stable FNV-1a hash of (peer URL, key content hash), and the peer with
// the highest score owns the key. Rendezvous hashing needs no virtual nodes
// or ring state, is deterministic across processes (the same property the
// DirCache relies on for content addressing), and the full descending score
// order doubles as the hedge/fallback sequence: the second-ranked peer is
// the natural target for a hedged fetch or for picking up ownership when the
// first is gone.
package fabric

import (
	"fmt"
	"sort"

	"geoind/internal/channel"
)

// Ring is an immutable rendezvous hash over a static replica set. The zero
// value is not usable; construct with NewRing. Safe for concurrent use.
type Ring struct {
	peers []string
	self  string
}

// NewRing validates and builds a ring. peers are replica base URLs (the
// strings must match across the fleet byte-for-byte — they are hashed, not
// resolved); self must be one of them. Duplicates are rejected rather than
// deduplicated so a misconfigured fleet fails at startup, not at query time.
func NewRing(peers []string, self string) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("fabric: empty peer set")
	}
	seen := make(map[string]bool, len(peers))
	hasSelf := false
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("fabric: empty peer URL")
		}
		if seen[p] {
			return nil, fmt.Errorf("fabric: duplicate peer %q", p)
		}
		seen[p] = true
		if p == self {
			hasSelf = true
		}
	}
	if !hasSelf {
		return nil, fmt.Errorf("fabric: self %q not in peer set %v", self, peers)
	}
	return &Ring{peers: append([]string(nil), peers...), self: self}, nil
}

// Peers returns the replica set (do not mutate).
func (r *Ring) Peers() []string { return r.peers }

// Self returns this replica's own URL.
func (r *Ring) Self() string { return r.self }

// score is the rendezvous weight of peer for a key hash: process-stable so
// every replica computes the same ownership.
func score(peer string, keyHash uint64) uint64 {
	h := channel.NewHasher()
	h.String(peer)
	h.Uint64(keyHash)
	return h.Sum()
}

// Order returns the peers ranked by descending rendezvous score for keyHash
// (ties broken lexicographically, so the order is total and identical on
// every replica). Order[0] is the owner; Order[1] is the hedge target.
func (r *Ring) Order(keyHash uint64) []string {
	out := append([]string(nil), r.peers...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := score(out[i], keyHash), score(out[j], keyHash)
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// Owner returns the owning peer for keyHash.
func (r *Ring) Owner(keyHash uint64) string {
	best := r.peers[0]
	bestScore := score(best, keyHash)
	for _, p := range r.peers[1:] {
		if s := score(p, keyHash); s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}

// OwnsKey reports whether this replica owns key.
func (r *Ring) OwnsKey(key channel.Key) bool {
	return r.Owner(channel.ContentHash(key)) == r.self
}
