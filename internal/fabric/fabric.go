// Package fabric turns a fleet of geoind replicas that share nothing but
// the network into one logical channel cache. It builds on the channel
// store's Backing hook (PR 4): each replica's store is backed by a tiered
// chain — in-memory → local snapshot directory → remote HTTP fetch from the
// key's owner — with rendezvous-hash ownership deciding, identically on
// every replica, which one is allowed to run the LP solve for each key.
// Non-owners fetch the owner's snapshot (hedged, retried, fully
// re-verified) and fall back to solving locally if the owner is
// unreachable: the fabric deduplicates solves fleet-wide but is never a
// correctness or availability dependency.
package fabric

import (
	"fmt"
	"net/http"
	"time"

	"geoind/internal/channel"
	"geoind/internal/metrics"
)

// DefaultMemBytes bounds the in-memory tier when the config leaves it zero.
const DefaultMemBytes = 64 << 20

// Config assembles a Fabric.
type Config struct {
	// Peers is the full replica set (base URLs, identical strings on every
	// replica); Self must be one of them. A single-peer set builds a
	// degenerate fabric with no remote tier: this replica owns every key.
	Peers []string
	Self  string

	// CacheDir, when non-empty, adds the local snapshot directory tier.
	CacheDir string
	// Codec encodes/decodes snapshot payloads (required).
	Codec channel.Codec
	// Cost sizes values for the memory tier (typically opt.SnapshotCost).
	Cost func(any) int64
	// MemBytes bounds the in-memory tier (0 = DefaultMemBytes, <0 =
	// disable the tier).
	MemBytes int64

	// Remote fetch tuning; zero values select the package defaults.
	HedgeDelay   time.Duration
	FetchTimeout time.Duration
	FetchRetries int
	FetchBackoff time.Duration
	Client       *http.Client
}

// Stats is a point-in-time snapshot of fabric behaviour for /v1/stats and
// /metrics.
type Stats struct {
	Self  string
	Peers []string
	// Tiers is the per-tier breakdown, fastest first.
	Tiers []channel.TierStats
	// Remote is nil for a degenerate single-replica fabric.
	Remote *RemoteStats
}

// Fabric is one replica's view of the fleet-wide channel cache.
type Fabric struct {
	ring    *Ring
	backing *TieredBacking
	remote  *RemoteTier // nil when the fleet has one replica
	mem     *MemTier    // nil when disabled
	disk    *channel.DirCache
}

// New assembles the tier chain for this replica.
func New(cfg Config) (*Fabric, error) {
	if cfg.Codec == nil {
		return nil, fmt.Errorf("fabric: nil codec")
	}
	ring, err := NewRing(cfg.Peers, cfg.Self)
	if err != nil {
		return nil, err
	}
	f := &Fabric{ring: ring}
	var tiers []Tier
	if cfg.MemBytes >= 0 {
		memBytes := cfg.MemBytes
		if memBytes == 0 {
			memBytes = DefaultMemBytes
		}
		f.mem = NewMemTier(memBytes, cfg.Cost)
		tiers = append(tiers, f.mem)
	}
	if cfg.CacheDir != "" {
		dc, err := channel.NewDirCache(cfg.CacheDir, cfg.Codec)
		if err != nil {
			return nil, err
		}
		f.disk = dc
		tiers = append(tiers, &DiskTier{DirCache: dc})
	}
	if len(ring.Peers()) > 1 {
		f.remote = NewRemoteTier(ring, cfg.Codec, RemoteOptions{
			Client:       cfg.Client,
			HedgeDelay:   cfg.HedgeDelay,
			FetchTimeout: cfg.FetchTimeout,
			Retries:      cfg.FetchRetries,
			Backoff:      cfg.FetchBackoff,
		})
		tiers = append(tiers, f.remote)
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("fabric: no tiers (single replica, no cache dir, memory tier disabled)")
	}
	f.backing = NewTieredBacking(tiers...)
	return f, nil
}

// Backing returns the chain to install as the channel store's Backing.
func (f *Fabric) Backing() channel.Backing { return f.backing }

// Ring returns the ownership ring.
func (f *Fabric) Ring() *Ring { return f.ring }

// Owns reports whether this replica owns key (and is therefore the one that
// precomputes and solves it).
func (f *Fabric) Owns(key channel.Key) bool { return f.ring.OwnsKey(key) }

// Sync waits for in-flight tier promotions (call alongside Store.Sync
// before exit).
func (f *Fabric) Sync() { f.backing.Sync() }

// FetchLatency exposes the remote-fetch latency histogram (nil for a
// single-replica fabric); observations are in seconds.
func (f *Fabric) FetchLatency() *metrics.Histogram {
	if f.remote == nil {
		return nil
	}
	return f.remote.LatencyHistogram()
}

// Stats snapshots every tier plus the remote fetch counters.
func (f *Fabric) Stats() Stats {
	st := Stats{
		Self:  f.ring.Self(),
		Peers: f.ring.Peers(),
		Tiers: f.backing.TierStats(),
	}
	if f.remote != nil {
		rs := f.remote.RemoteStats()
		st.Remote = &rs
	}
	return st
}
