package fabric

import (
	"testing"

	"geoind/internal/channel"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, "a"); err == nil {
		t.Error("empty peer set accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, "a"); err == nil {
		t.Error("duplicate peer accepted")
	}
	if _, err := NewRing([]string{"a", "b"}, "c"); err == nil {
		t.Error("self outside peer set accepted")
	}
	if _, err := NewRing([]string{"a", ""}, "a"); err == nil {
		t.Error("empty peer URL accepted")
	}
	if _, err := NewRing([]string{"a"}, "a"); err != nil {
		t.Errorf("single-peer ring rejected: %v", err)
	}
}

// TestRingDeterministicOwnership pins the properties the fleet depends on:
// every replica computes the same owner and the same full order for every
// key, the order is a permutation of the peer set, and ownership spreads
// across peers rather than collapsing onto one.
func TestRingDeterministicOwnership(t *testing.T) {
	peers := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	ra, err := NewRing(peers, peers[0])
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRing(peers, peers[1])
	if err != nil {
		t.Fatal(err)
	}
	owned := make(map[string]int)
	for cell := 0; cell < 600; cell++ {
		key := channel.NewKey("t", 1, cell, 0.5, 0, 0xabc)
		h := channel.ContentHash(key)
		oa, ob := ra.Owner(h), rb.Owner(h)
		if oa != ob {
			t.Fatalf("cell %d: replicas disagree on owner: %q vs %q", cell, oa, ob)
		}
		order := ra.Order(h)
		if len(order) != len(peers) || order[0] != oa {
			t.Fatalf("cell %d: order %v inconsistent with owner %q", cell, order, oa)
		}
		seen := make(map[string]bool)
		for _, p := range order {
			seen[p] = true
		}
		if len(seen) != len(peers) {
			t.Fatalf("cell %d: order %v is not a permutation", cell, order)
		}
		if got := ra.OwnsKey(key); got != (oa == ra.Self()) {
			t.Fatalf("cell %d: OwnsKey=%v but owner=%q", cell, got, oa)
		}
		owned[oa]++
	}
	for _, p := range peers {
		if owned[p] < 60 { // each peer should own a nontrivial share of 600
			t.Fatalf("degenerate ownership distribution: %v", owned)
		}
	}
}

// TestRingExactlyOneOwner: for every key, exactly one replica in the fleet
// answers OwnsKey true — the invariant that makes owner-only precompute a
// partition of the key space.
func TestRingExactlyOneOwner(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c", "http://d"}
	rings := make([]*Ring, len(peers))
	for i, p := range peers {
		r, err := NewRing(peers, p)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for cell := 0; cell < 300; cell++ {
		key := channel.NewKey("t", 2, cell, 0.25, 0, 7)
		owners := 0
		for _, r := range rings {
			if r.OwnsKey(key) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("cell %d owned by %d replicas", cell, owners)
		}
	}
}
