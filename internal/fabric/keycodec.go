// Wire form of channel keys for the snapshot endpoint.
//
// GET /v1/channels/{hash} carries the key's content hash in the path — the
// same FNV-1a fingerprint the DirCache uses for file names, so a fetch URL
// is to the fleet what a snapshot path is to a volume — and the full key in
// query parameters, mirroring the snapshot frame's own design: the hash
// addresses, the full key verifies. The server recomputes the hash from the
// parsed fields and rejects a mismatch before doing any work, and the framed
// response re-embeds the key so the receiving side verifies end to end.
//
// ?solve=1 asks the serving replica to solve on a local miss (sent to the
// key's owner, which is the one replica entitled to solve it); without it
// the server answers only from its local caches (hedge requests, which must
// never cause a duplicate LP solve on a non-owner).
package fabric

import (
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"geoind/internal/channel"
)

// SnapshotPathPrefix is the snapshot endpoint route prefix (the trailing
// element is the key's content hash in hex).
const SnapshotPathPrefix = "/v1/channels/"

// SnapshotURL renders the fetch URL for key against a peer base URL.
func SnapshotURL(base string, key channel.Key, solve bool) string {
	q := url.Values{}
	q.Set("ns", key.Namespace)
	q.Set("level", strconv.Itoa(key.Level))
	q.Set("cell", strconv.Itoa(key.Cell))
	q.Set("eps", strconv.FormatFloat(math.Float64frombits(key.EpsBits), 'x', -1, 64))
	q.Set("metric", strconv.Itoa(key.Metric))
	q.Set("prior", strconv.FormatUint(key.PriorHash, 16))
	if key.Variant != 0 {
		q.Set("variant", strconv.FormatUint(key.Variant, 16))
	}
	if solve {
		q.Set("solve", "1")
	}
	return fmt.Sprintf("%s%s%016x?%s",
		strings.TrimSuffix(base, "/"), SnapshotPathPrefix, channel.ContentHash(key), q.Encode())
}

// ParseSnapshotRequest reconstructs the key and solve flag from a snapshot
// request and verifies the path hash against the parsed fields, so a
// truncated or hand-mangled URL is rejected up front instead of producing a
// framed snapshot for the wrong key.
func ParseSnapshotRequest(r *http.Request) (channel.Key, bool, error) {
	rest, ok := strings.CutPrefix(r.URL.Path, SnapshotPathPrefix)
	if !ok || rest == "" || strings.Contains(rest, "/") {
		return channel.Key{}, false, fmt.Errorf("fabric: bad snapshot path %q", r.URL.Path)
	}
	wantHash, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return channel.Key{}, false, fmt.Errorf("fabric: bad key hash %q: %w", rest, err)
	}
	q := r.URL.Query()
	atoi := func(name string) (int, error) {
		v, err := strconv.Atoi(q.Get(name))
		if err != nil {
			return 0, fmt.Errorf("fabric: bad %s %q", name, q.Get(name))
		}
		return v, nil
	}
	key := channel.Key{Namespace: q.Get("ns")}
	if key.Level, err = atoi("level"); err != nil {
		return channel.Key{}, false, err
	}
	if key.Cell, err = atoi("cell"); err != nil {
		return channel.Key{}, false, err
	}
	eps, err := strconv.ParseFloat(q.Get("eps"), 64)
	if err != nil {
		return channel.Key{}, false, fmt.Errorf("fabric: bad eps %q", q.Get("eps"))
	}
	key.EpsBits = math.Float64bits(eps)
	if key.Metric, err = atoi("metric"); err != nil {
		return channel.Key{}, false, err
	}
	if key.PriorHash, err = strconv.ParseUint(q.Get("prior"), 16, 64); err != nil {
		return channel.Key{}, false, fmt.Errorf("fabric: bad prior %q", q.Get("prior"))
	}
	if v := q.Get("variant"); v != "" {
		if key.Variant, err = strconv.ParseUint(v, 16, 64); err != nil {
			return channel.Key{}, false, fmt.Errorf("fabric: bad variant %q", v)
		}
	}
	if got := channel.ContentHash(key); got != wantHash {
		return channel.Key{}, false, fmt.Errorf("fabric: key hash %016x does not match fields (%016x)", wantHash, got)
	}
	return key, q.Get("solve") == "1", nil
}
