// Package grid implements the spatial discretization structures of the
// paper: the regular grid used by the baseline OPT mechanism (§3.2) and the
// GeoInd-preserving Hierarchical Index (GIHI, §4, Fig. 4) traversed by the
// multi-step mechanism. Cells are indexed row-major; a hierarchy of height h
// with fanout g^2 has granularity g^i at level i, with level 0 being the
// single virtual root node.
package grid

import (
	"fmt"

	"geoind/internal/geo"
)

// MaxCellsPerSide bounds grid granularity to prevent accidental
// mis-configuration from exhausting memory (g^h grows quickly).
const MaxCellsPerSide = 1 << 14

// Grid is a regular g x g partition of a rectangular region. The logical
// locations of the paper (§3.1) are the cell centers.
type Grid struct {
	bounds geo.Rect
	g      int
	cellW  float64
	cellH  float64
}

// New returns a g x g grid over bounds.
func New(bounds geo.Rect, g int) (*Grid, error) {
	if g < 1 || g > MaxCellsPerSide {
		return nil, fmt.Errorf("grid: granularity %d out of range [1,%d]", g, MaxCellsPerSide)
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("grid: degenerate bounds %v", bounds)
	}
	return &Grid{
		bounds: bounds,
		g:      g,
		cellW:  bounds.Width() / float64(g),
		cellH:  bounds.Height() / float64(g),
	}, nil
}

// MustNew is New panicking on error, for statically valid arguments.
func MustNew(bounds geo.Rect, g int) *Grid {
	gr, err := New(bounds, g)
	if err != nil {
		panic(err)
	}
	return gr
}

// Bounds returns the spatial extent of the grid.
func (gr *Grid) Bounds() geo.Rect { return gr.bounds }

// Granularity returns g, the number of cells per side.
func (gr *Grid) Granularity() int { return gr.g }

// NumCells returns g*g.
func (gr *Grid) NumCells() int { return gr.g * gr.g }

// CellSize returns the width and height of one cell.
func (gr *Grid) CellSize() (w, h float64) { return gr.cellW, gr.cellH }

// Index converts a (row, col) pair into a cell index.
func (gr *Grid) Index(row, col int) int { return row*gr.g + col }

// RowCol converts a cell index into its (row, col) pair.
func (gr *Grid) RowCol(idx int) (row, col int) { return idx / gr.g, idx % gr.g }

// CellIndex returns the index of the cell enclosing p. ok is false when p is
// outside the grid bounds; in that case idx is -1.
func (gr *Grid) CellIndex(p geo.Point) (idx int, ok bool) {
	if !gr.bounds.Contains(p) {
		return -1, false
	}
	col := int((p.X - gr.bounds.MinX) / gr.cellW)
	row := int((p.Y - gr.bounds.MinY) / gr.cellH)
	// Floating-point division can round a boundary point up.
	if col >= gr.g {
		col = gr.g - 1
	}
	if row >= gr.g {
		row = gr.g - 1
	}
	return gr.Index(row, col), true
}

// ClampIndex returns the index of the cell enclosing p after clamping p into
// the grid bounds. It is EnclosingCell(x, i) of the paper for points that
// may lie slightly outside the current subdomain.
func (gr *Grid) ClampIndex(p geo.Point) int {
	idx, ok := gr.CellIndex(p)
	if ok {
		return idx
	}
	idx, _ = gr.CellIndex(gr.bounds.Clamp(p))
	return idx
}

// CellRect returns the spatial extent of cell idx.
func (gr *Grid) CellRect(idx int) geo.Rect {
	row, col := gr.RowCol(idx)
	return geo.Rect{
		MinX: gr.bounds.MinX + float64(col)*gr.cellW,
		MinY: gr.bounds.MinY + float64(row)*gr.cellH,
		MaxX: gr.bounds.MinX + float64(col+1)*gr.cellW,
		MaxY: gr.bounds.MinY + float64(row+1)*gr.cellH,
	}
}

// Center returns the logical location of cell idx: its center (the
// centerOf(C) procedure of §4).
func (gr *Grid) Center(idx int) geo.Point {
	row, col := gr.RowCol(idx)
	return geo.Point{
		X: gr.bounds.MinX + (float64(col)+0.5)*gr.cellW,
		Y: gr.bounds.MinY + (float64(row)+0.5)*gr.cellH,
	}
}

// Snap maps p to the center of its enclosing cell, clamping p into bounds
// first. This is the grid discretization step of §3.1.
func (gr *Grid) Snap(p geo.Point) geo.Point {
	return gr.Center(gr.ClampIndex(p))
}

// Centers returns the centers of all cells in index order.
func (gr *Grid) Centers() []geo.Point {
	out := make([]geo.Point, gr.NumCells())
	for i := range out {
		out[i] = gr.Center(i)
	}
	return out
}

// Hierarchy is the GIHI: a conceptual stack of grids over the same root
// region where level i has granularity fanout^i, for i in 1..height. Level 0
// is the virtual root node RN covering the whole region (Fig. 4).
type Hierarchy struct {
	root   geo.Rect
	fanout int
	height int
	levels []*Grid // levels[i-1] is the full grid at level i
}

// NewHierarchy builds a hierarchy of the given fanout (cells per side per
// step, the paper's g) and height (number of levels below the root).
func NewHierarchy(root geo.Rect, fanout, height int) (*Hierarchy, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("grid: hierarchy fanout %d < 2", fanout)
	}
	if height < 1 {
		return nil, fmt.Errorf("grid: hierarchy height %d < 1", height)
	}
	side := 1
	for i := 0; i < height; i++ {
		side *= fanout
		if side > MaxCellsPerSide {
			return nil, fmt.Errorf("grid: effective granularity %d^%d exceeds %d", fanout, height, MaxCellsPerSide)
		}
	}
	h := &Hierarchy{root: root, fanout: fanout, height: height}
	g := 1
	for i := 1; i <= height; i++ {
		g *= fanout
		gr, err := New(root, g)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, gr)
	}
	return h, nil
}

// Root returns the extent of the virtual root node.
func (h *Hierarchy) Root() geo.Rect { return h.root }

// Fanout returns g (cells per side introduced per level).
func (h *Hierarchy) Fanout() int { return h.fanout }

// Height returns the number of levels below the virtual root.
func (h *Hierarchy) Height() int { return h.height }

// LeafGranularity returns fanout^height, the effective granularity of the
// leaf level.
func (h *Hierarchy) LeafGranularity() int { return h.levels[h.height-1].Granularity() }

// LevelGrid returns the full grid at level i (1-based). Level 0 is the
// virtual root and has no grid.
func (h *Hierarchy) LevelGrid(level int) *Grid {
	if level < 1 || level > h.height {
		panic(fmt.Sprintf("grid: level %d out of range [1,%d]", level, h.height))
	}
	return h.levels[level-1]
}

// SubGrid returns the fanout x fanout partial grid covering the spatial
// extent of cell parentIdx at level (the set G_i of Algorithm 1 for the
// enclosing cell C). For level 0 pass parentIdx 0: the result covers the
// whole root region.
func (h *Hierarchy) SubGrid(level, parentIdx int) *Grid {
	var rect geo.Rect
	if level == 0 {
		rect = h.root
	} else {
		rect = h.LevelGrid(level).CellRect(parentIdx)
	}
	return MustNew(rect, h.fanout)
}

// ChildIndex converts a local cell index within SubGrid(level, parentIdx)
// into the global cell index at level+1.
func (h *Hierarchy) ChildIndex(level, parentIdx, localIdx int) int {
	f := h.fanout
	localRow, localCol := localIdx/f, localIdx%f
	var pRow, pCol int
	if level > 0 {
		pRow, pCol = h.LevelGrid(level).RowCol(parentIdx)
	}
	child := h.LevelGrid(level + 1)
	return child.Index(pRow*f+localRow, pCol*f+localCol)
}

// ParentIndex returns the index at level-1 of the parent of cell idx at
// level. For level 1 it returns 0 (the virtual root).
func (h *Hierarchy) ParentIndex(level, idx int) int {
	if level <= 1 {
		return 0
	}
	row, col := h.LevelGrid(level).RowCol(idx)
	return h.LevelGrid(level-1).Index(row/h.fanout, col/h.fanout)
}
