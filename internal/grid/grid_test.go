package grid

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"geoind/internal/geo"
)

func unit20() geo.Rect { return geo.NewSquare(20) }

func TestNewValidation(t *testing.T) {
	if _, err := New(unit20(), 0); err == nil {
		t.Error("g=0 should error")
	}
	if _, err := New(unit20(), MaxCellsPerSide+1); err == nil {
		t.Error("huge g should error")
	}
	if _, err := New(geo.Rect{MinX: 0, MinY: 0, MaxX: 0, MaxY: 10}, 4); err == nil {
		t.Error("degenerate bounds should error")
	}
	if _, err := New(unit20(), 4); err != nil {
		t.Errorf("valid grid errored: %v", err)
	}
}

func TestCellIndexAndCenters(t *testing.T) {
	gr := MustNew(unit20(), 4) // 5km cells
	idx, ok := gr.CellIndex(geo.Point{X: 0.1, Y: 0.1})
	if !ok || idx != 0 {
		t.Errorf("bottom-left cell: idx=%d ok=%v", idx, ok)
	}
	idx, ok = gr.CellIndex(geo.Point{X: 19.9, Y: 19.9})
	if !ok || idx != 15 {
		t.Errorf("top-right cell: idx=%d ok=%v", idx, ok)
	}
	idx, ok = gr.CellIndex(geo.Point{X: 7.5, Y: 12.5})
	if !ok || idx != gr.Index(2, 1) {
		t.Errorf("mid cell: idx=%d ok=%v want %d", idx, ok, gr.Index(2, 1))
	}
	if _, ok := gr.CellIndex(geo.Point{X: -1, Y: 5}); ok {
		t.Error("outside point should not resolve")
	}
	if _, ok := gr.CellIndex(geo.Point{X: 20, Y: 5}); ok {
		t.Error("max edge is exclusive")
	}
	c := gr.Center(0)
	if math.Abs(c.X-2.5) > 1e-12 || math.Abs(c.Y-2.5) > 1e-12 {
		t.Errorf("Center(0)=%v want (2.5,2.5)", c)
	}
	w, h := gr.CellSize()
	if w != 5 || h != 5 {
		t.Errorf("CellSize=(%g,%g) want (5,5)", w, h)
	}
}

func TestRowColRoundTrip(t *testing.T) {
	gr := MustNew(unit20(), 7)
	for idx := 0; idx < gr.NumCells(); idx++ {
		r, c := gr.RowCol(idx)
		if gr.Index(r, c) != idx {
			t.Fatalf("Index(RowCol(%d)) = %d", idx, gr.Index(r, c))
		}
	}
}

// Property: every in-bounds point maps to the cell whose rect contains it,
// and the cell center snaps back to the same cell.
func TestCellIndexConsistency(t *testing.T) {
	gr := MustNew(unit20(), 9)
	f := func(rx, ry float64) bool {
		p := geo.Point{X: math.Abs(math.Mod(rx, 20)), Y: math.Abs(math.Mod(ry, 20))}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			return true
		}
		idx, ok := gr.CellIndex(p)
		if !ok {
			return false
		}
		if !gr.CellRect(idx).Contains(p) {
			return false
		}
		c := gr.Center(idx)
		cIdx, ok := gr.CellIndex(c)
		return ok && cIdx == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampIndexAndSnap(t *testing.T) {
	gr := MustNew(unit20(), 4)
	if got := gr.ClampIndex(geo.Point{X: -5, Y: -5}); got != 0 {
		t.Errorf("ClampIndex(-5,-5)=%d want 0", got)
	}
	if got := gr.ClampIndex(geo.Point{X: 100, Y: 100}); got != 15 {
		t.Errorf("ClampIndex(100,100)=%d want 15", got)
	}
	s := gr.Snap(geo.Point{X: 1, Y: 1})
	if math.Abs(s.X-2.5) > 1e-12 || math.Abs(s.Y-2.5) > 1e-12 {
		t.Errorf("Snap=(%v) want (2.5,2.5)", s)
	}
}

func TestCentersCount(t *testing.T) {
	gr := MustNew(unit20(), 5)
	cs := gr.Centers()
	if len(cs) != 25 {
		t.Fatalf("len=%d want 25", len(cs))
	}
	// All centers distinct and in bounds.
	seen := map[geo.Point]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatalf("duplicate center %v", c)
		}
		seen[c] = true
		if !gr.Bounds().Contains(c) {
			t.Fatalf("center %v out of bounds", c)
		}
	}
}

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(unit20(), 1, 3); err == nil {
		t.Error("fanout 1 should error")
	}
	if _, err := NewHierarchy(unit20(), 2, 0); err == nil {
		t.Error("height 0 should error")
	}
	if _, err := NewHierarchy(unit20(), 4, 10); err == nil {
		t.Error("4^10 cells per side should exceed the cap")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(unit20(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Fanout() != 3 || h.Height() != 3 || h.LeafGranularity() != 27 {
		t.Fatalf("fanout/height/leaf = %d/%d/%d", h.Fanout(), h.Height(), h.LeafGranularity())
	}
	for lvl := 1; lvl <= 3; lvl++ {
		want := int(math.Pow(3, float64(lvl)))
		if got := h.LevelGrid(lvl).Granularity(); got != want {
			t.Errorf("level %d granularity %d want %d", lvl, got, want)
		}
	}
}

func TestSubGridRootCoversRegion(t *testing.T) {
	h, _ := NewHierarchy(unit20(), 2, 3)
	sg := h.SubGrid(0, 0)
	if sg.Bounds() != unit20() {
		t.Errorf("root subgrid bounds %v", sg.Bounds())
	}
	if sg.Granularity() != 2 {
		t.Errorf("root subgrid granularity %d", sg.Granularity())
	}
}

// TestChildIndexGeometry: the rect of local cell j of SubGrid(level, parent)
// equals the rect of global cell ChildIndex(level, parent, j) at level+1.
func TestChildIndexGeometry(t *testing.T) {
	h, _ := NewHierarchy(unit20(), 3, 3)
	for level := 0; level < 3; level++ {
		nParents := 1
		if level > 0 {
			nParents = h.LevelGrid(level).NumCells()
		}
		for parent := 0; parent < nParents; parent++ {
			sg := h.SubGrid(level, parent)
			for local := 0; local < sg.NumCells(); local++ {
				global := h.ChildIndex(level, parent, local)
				got := sg.CellRect(local)
				want := h.LevelGrid(level + 1).CellRect(global)
				if math.Abs(got.MinX-want.MinX) > 1e-9 || math.Abs(got.MinY-want.MinY) > 1e-9 ||
					math.Abs(got.MaxX-want.MaxX) > 1e-9 || math.Abs(got.MaxY-want.MaxY) > 1e-9 {
					t.Fatalf("level %d parent %d local %d: %v != %v", level, parent, local, got, want)
				}
			}
		}
	}
}

// TestParentChildInverse: ParentIndex inverts ChildIndex.
func TestParentChildInverse(t *testing.T) {
	h, _ := NewHierarchy(unit20(), 4, 3)
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 200; trial++ {
		level := rng.IntN(3) // 0..2
		nParents := 1
		if level > 0 {
			nParents = h.LevelGrid(level).NumCells()
		}
		parent := rng.IntN(nParents)
		local := rng.IntN(h.Fanout() * h.Fanout())
		child := h.ChildIndex(level, parent, local)
		if got := h.ParentIndex(level+1, child); got != parent {
			t.Fatalf("ParentIndex(level=%d, child=%d)=%d want %d", level+1, child, got, parent)
		}
	}
}

// TestHierarchyPointDescent: descending through enclosing cells lands in the
// same leaf cell as direct indexing at the leaf grid.
func TestHierarchyPointDescent(t *testing.T) {
	h, _ := NewHierarchy(unit20(), 3, 3)
	rng := rand.New(rand.NewPCG(8, 9))
	for trial := 0; trial < 500; trial++ {
		p := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		parent := 0
		for level := 0; level < h.Height(); level++ {
			sg := h.SubGrid(level, parent)
			local := sg.ClampIndex(p)
			parent = h.ChildIndex(level, parent, local)
		}
		direct, ok := h.LevelGrid(h.Height()).CellIndex(p)
		if !ok || parent != direct {
			t.Fatalf("descent landed at %d, direct index %d (ok=%v) for %v", parent, direct, ok, p)
		}
	}
}

func TestLevelGridPanicsOutOfRange(t *testing.T) {
	h, _ := NewHierarchy(unit20(), 2, 2)
	for _, lvl := range []int{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LevelGrid(%d) should panic", lvl)
				}
			}()
			h.LevelGrid(lvl)
		}()
	}
}
