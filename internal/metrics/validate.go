package metrics

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

var (
	helpLine   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]Inf|[0-9eE.+-]+)$`)
	leRe       = regexp.MustCompile(`,?le="((?:[^"\\]|\\.)*)"`)
)

// Validate checks that text parses as the Prometheus 0.0.4 text exposition
// format: every line is a HELP, TYPE or sample line; each family has exactly
// one HELP and one TYPE preceding its samples; no series is duplicated; and
// every histogram family's bucket series are cumulative, end at le="+Inf"
// and agree with its _count. It returns the parsed sample values keyed by
// full series name (including the label block) and the list of violations
// found (empty for a valid document). It exists so tests — here and in the
// server package — can assert scrape output is genuinely parseable instead
// of merely non-empty.
func Validate(text string) (map[string]float64, []string) {
	var problems []string
	samples := make(map[string]float64)
	typed := make(map[string]string)
	helped := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if m := helpLine.FindStringSubmatch(line); m != nil {
			if helped[m[1]] {
				problems = append(problems, fmt.Sprintf("duplicate HELP for %s", m[1]))
			}
			helped[m[1]] = true
			continue
		}
		if m := typeLine.FindStringSubmatch(line); m != nil {
			if _, dup := typed[m[1]]; dup {
				problems = append(problems, fmt.Sprintf("duplicate TYPE for %s", m[1]))
			}
			typed[m[1]] = m[2]
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			problems = append(problems, fmt.Sprintf("malformed exposition line: %q", line))
			continue
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if _, ok := typed[base]; !ok {
			if _, ok := typed[m[1]]; !ok {
				problems = append(problems, fmt.Sprintf("sample %q before its TYPE line", line))
			}
		}
		v, err := parseValue(m[3])
		if err != nil {
			problems = append(problems, fmt.Sprintf("bad value in %q: %v", line, err))
			continue
		}
		if _, dup := samples[m[1]+m[2]]; dup {
			problems = append(problems, fmt.Sprintf("duplicate series %s%s", m[1], m[2]))
		}
		samples[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("scan: %v", err))
	}
	for name, typ := range typed {
		if !helped[name] {
			problems = append(problems, fmt.Sprintf("TYPE without HELP for %s", name))
		}
		if typ == "histogram" {
			problems = append(problems, validateHistogramFamily(name, samples)...)
		}
	}
	return samples, problems
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateHistogramFamily checks cumulativity and the _count / le="+Inf"
// agreement for every label variant of one histogram family.
func validateHistogramFamily(name string, samples map[string]float64) []string {
	var problems []string
	type bucket struct{ le, cum float64 }
	groups := make(map[string][]bucket)
	for series, v := range samples {
		if !strings.HasPrefix(series, name+"_bucket{") {
			continue
		}
		lbl := series[len(name+"_bucket"):]
		m := leRe.FindStringSubmatch(lbl)
		if m == nil {
			problems = append(problems, fmt.Sprintf("bucket series %s missing le label", series))
			continue
		}
		le, err := parseValue(m[1])
		if err != nil {
			problems = append(problems, fmt.Sprintf("bucket series %s: bad le: %v", series, err))
			continue
		}
		rest := leRe.ReplaceAllString(lbl, "")
		if rest == "{}" {
			rest = ""
		}
		groups[rest] = append(groups[rest], bucket{le, v})
	}
	for rest, bs := range groups {
		for i := range bs {
			for j := i + 1; j < len(bs); j++ {
				if bs[j].le < bs[i].le {
					bs[i], bs[j] = bs[j], bs[i]
				}
			}
		}
		var prev float64
		var inf bool
		for _, b := range bs {
			if b.cum < prev {
				problems = append(problems, fmt.Sprintf(
					"%s%s: bucket counts not cumulative at le=%g (%g < %g)", name, rest, b.le, b.cum, prev))
			}
			prev = b.cum
			if math.IsInf(b.le, 1) {
				inf = true
				countKey := name + "_count"
				if rest != "" {
					countKey += rest
				}
				if c, ok := samples[countKey]; !ok || c != b.cum {
					problems = append(problems, fmt.Sprintf(
						"%s%s: _count %g != +Inf bucket %g", name, rest, c, b.cum))
				}
			}
		}
		if !inf {
			problems = append(problems, fmt.Sprintf("%s%s: no le=\"+Inf\" bucket", name, rest))
		}
	}
	return problems
}
