package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// mustValidate runs Validate and reports every violation as a test error.
func mustValidate(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples, problems := Validate(text)
	for _, p := range problems {
		t.Error(p)
	}
	return samples
}

func TestCounterAndGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("geoind_requests_total", "Requests served.", Labels{"endpoint": "/v1/report", "code": "200"})
	c.Add(41)
	c.Inc()
	c.Add(-5) // ignored: counters are monotonic
	r.Counter("geoind_requests_total", "Requests served.", Labels{"endpoint": "/v1/report", "code": "400"}).Inc()
	r.GaugeFunc("geoind_queue_depth", "Current queue depth.", nil, func() float64 { return 3 })
	fc := r.FloatCounter("geoind_eps_total", "Total epsilon.", nil)
	fc.Add(0.25)
	fc.Add(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := mustValidate(t, b.String())
	if got := samples[`geoind_requests_total{code="200",endpoint="/v1/report"}`]; got != 42 {
		t.Errorf("counter = %g, want 42 (samples: %v)", got, samples)
	}
	if got := samples[`geoind_requests_total{code="400",endpoint="/v1/report"}`]; got != 1 {
		t.Errorf("second series = %g, want 1", got)
	}
	if got := samples["geoind_queue_depth"]; got != 3 {
		t.Errorf("gauge = %g, want 3", got)
	}
	if got := samples["geoind_eps_total"]; got != 0.5 {
		t.Errorf("float counter = %g, want 0.5", got)
	}
	// One HELP/TYPE header per family even with two series.
	if n := strings.Count(b.String(), "# TYPE geoind_requests_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
}

func TestCounterReregistrationReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", Labels{"k": "v"})
	b := r.Counter("x_total", "h", Labels{"k": "v"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("shared series not observed through second handle")
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("geoind_latency_seconds", "Latency.", Labels{"endpoint": "/v1/report"}, []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := mustValidate(t, b.String())
	want := map[string]float64{
		`geoind_latency_seconds_bucket{endpoint="/v1/report",le="0.001"}`: 1,
		`geoind_latency_seconds_bucket{endpoint="/v1/report",le="0.01"}`:  3,
		`geoind_latency_seconds_bucket{endpoint="/v1/report",le="0.1"}`:   4,
		`geoind_latency_seconds_bucket{endpoint="/v1/report",le="1"}`:     5,
		`geoind_latency_seconds_bucket{endpoint="/v1/report",le="+Inf"}`:  6,
		`geoind_latency_seconds_count{endpoint="/v1/report"}`:             6,
	}
	for k, v := range want {
		if samples[k] != v {
			t.Errorf("%s = %g, want %g", k, samples[k], v)
		}
	}
	sum := samples[`geoind_latency_seconds_sum{endpoint="/v1/report"}`]
	if math.Abs(sum-5.5545) > 1e-9 {
		t.Errorf("sum = %g, want 5.5545", sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 = %g, want within (1,2]", q)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if NewHistogram([]float64{1}).Quantile(0.99) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// Observations beyond the last bound land in +Inf; quantile clamps to
	// the largest finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 1 {
		t.Errorf("overflow quantile = %g, want clamp to 1", q)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", Labels{"path": `a"b\c` + "\n"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\n"`) {
		t.Errorf("label not escaped: %q", b.String())
	}
	mustValidate(t, b.String())
}

func TestValidateCatchesMalformedDocuments(t *testing.T) {
	cases := []string{
		"garbage line\n",
		"# TYPE x counter\nx 1\nx 2\n", // duplicate series
		"# HELP h_seconds h\n# TYPE h_seconds histogram\nh_seconds_bucket{le=\"1\"} 5\nh_seconds_bucket{le=\"+Inf\"} 3\nh_seconds_count 3\n", // not cumulative
		"# HELP h2_seconds h\n# TYPE h2_seconds histogram\nh2_seconds_bucket{le=\"1\"} 1\nh2_seconds_count 1\n",                              // no +Inf
	}
	for i, doc := range cases {
		if _, problems := Validate(doc); len(problems) == 0 {
			t.Errorf("case %d: malformed document validated cleanly:\n%s", i, doc)
		}
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "h", nil, []float64{0.01, 0.1, 1})
	c := r.Counter("c_total", "h", nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64(j%100) / 50)
				c.Inc()
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := mustValidate(t, b.String())
	if samples["c_total"] != float64(c.Value()) {
		t.Errorf("final scrape disagrees with counter: %g vs %d", samples["c_total"], c.Value())
	}
}

func TestMismatchedKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering one name as counter and gauge should panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m_total", "h", nil)
	r.GaugeFunc("m_total", "h", nil, func() float64 { return 0 })
}

func TestDecreasingBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds should panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func ExampleRegistry() {
	r := NewRegistry()
	r.Counter("example_total", "An example counter.", Labels{"kind": "demo"}).Add(3)
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP example_total An example counter.
	// # TYPE example_total counter
	// example_total{kind="demo"} 3
}
