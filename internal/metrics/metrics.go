// Package metrics is a dependency-free implementation of the Prometheus
// text exposition format (version 0.0.4), sized for this repository's
// observability needs: counters, gauges, and fixed-bucket histograms,
// rendered by a Registry that groups label variants of one name under a
// single # HELP/# TYPE header.
//
// Two collection styles coexist:
//
//   - Owned instruments (Counter, Histogram) are updated on the hot path
//     with atomics and read at scrape time.
//   - Func gauges/counters sample an external source (e.g. the channel
//     store's own atomic counters) at scrape time, so subsystems that
//     already keep stats are exposed without double accounting.
//
// The package deliberately implements only what the server scrapes: no
// summaries, no exemplars, no timestamps, no metric expiry.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add increases the counter by d (d must be >= 0 for Prometheus semantics;
// negative deltas are ignored).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.n.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// FloatCounter is a monotonically increasing float (e.g. total epsilon
// charged). Adds use a CAS loop on the bit pattern.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add increases the counter by d; negative or NaN deltas are ignored.
func (c *FloatCounter) Add(d float64) {
	if !(d > 0) {
		return
	}
	for {
		old := c.bits.Load()
		cur := math.Float64frombits(old)
		if c.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observations and scrapes
// are lock-free; bucket counts are per-bound (not cumulative) internally and
// accumulated at render time, matching the Prometheus bucket contract
// (le-labeled series are cumulative, ending at le="+Inf").
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds, excluding +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	sum    FloatCounter
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bounds. The implicit +Inf bucket is always present.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(h.bounds) {
		h.inf.Add(1)
	} else {
		h.counts[lo].Add(1)
	}
	if v > 0 {
		h.sum.Add(v)
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) assuming a
// uniform distribution within each bucket; the lower edge of the first
// nonempty bucket is taken as 0. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i := range h.counts {
		n := h.counts[i].Load()
		if float64(cum+n) >= rank && n > 0 {
			frac := (rank - float64(cum)) / float64(n)
			return lower + frac*(h.bounds[i]-lower)
		}
		cum += n
		lower = h.bounds[i]
	}
	return lower // rank falls in the +Inf bucket: report the largest bound
}

// kind is the Prometheus metric type of one family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one label variant of a family: either an owned instrument or a
// scrape-time sampling function.
type series struct {
	labels string // pre-rendered {k="v",...} or ""
	ctr    *Counter
	fctr   *FloatCounter
	hist   *Histogram
	fn     func() float64
}

type family struct {
	name   string
	help   string
	kind   kind
	series []*series
}

// Registry holds metric families and renders them in the text exposition
// format. Registration is expected at setup time; rendering may run
// concurrently with hot-path updates to the registered instruments.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Labels is an ordered label set rendered as {k1="v1",k2="v2"}; keys are
// sorted at render time so series identity is order-independent.
type Labels map[string]string

func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(ls[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format label escaping rules.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) familyFor(name, help string, k kind) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as both %v and %v", name, f.kind, k))
	}
	return f
}

func (r *Registry) addSeries(name, help string, k kind, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, k)
	for _, ex := range f.series {
		if ex.labels == s.labels {
			panic(fmt.Sprintf("metrics: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers (or returns the existing) counter series for the given
// name and labels.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	lbl := renderLabels(ls)
	r.mu.Lock()
	f := r.familyFor(name, help, kindCounter)
	for _, ex := range f.series {
		if ex.labels == lbl && ex.ctr != nil {
			r.mu.Unlock()
			return ex.ctr
		}
	}
	c := &Counter{}
	f.series = append(f.series, &series{labels: lbl, ctr: c})
	r.mu.Unlock()
	return c
}

// FloatCounter registers (or returns the existing) float counter series.
func (r *Registry) FloatCounter(name, help string, ls Labels) *FloatCounter {
	lbl := renderLabels(ls)
	r.mu.Lock()
	f := r.familyFor(name, help, kindCounter)
	for _, ex := range f.series {
		if ex.labels == lbl && ex.fctr != nil {
			r.mu.Unlock()
			return ex.fctr
		}
	}
	c := &FloatCounter{}
	f.series = append(f.series, &series{labels: lbl, fctr: c})
	r.mu.Unlock()
	return c
}

// Histogram registers a histogram series with the given bucket upper bounds.
func (r *Registry) Histogram(name, help string, ls Labels, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.addSeries(name, help, kindHistogram, &series{labels: renderLabels(ls), hist: h})
	return h
}

// RegisterHistogram adds an externally owned histogram as a series, for
// subsystems that observe into a histogram constructed before (or without)
// any registry — e.g. the fabric's remote-fetch latency histogram, which
// exists whether or not the metrics endpoint is enabled.
func (r *Registry) RegisterHistogram(name, help string, ls Labels, h *Histogram) {
	r.addSeries(name, help, kindHistogram, &series{labels: renderLabels(ls), hist: h})
}

// GaugeFunc registers a gauge sampled by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, ls Labels, fn func() float64) {
	r.addSeries(name, help, kindGauge, &series{labels: renderLabels(ls), fn: fn})
}

// CounterFunc registers a counter whose value is sampled by fn at scrape
// time — for subsystems that already keep their own monotonic counters.
func (r *Registry) CounterFunc(name, help string, ls Labels, fn func() float64) {
	r.addSeries(name, help, kindCounter, &series{labels: renderLabels(ls), fn: fn})
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	// %g keeps integers compact (1234 not 1234.000000) and floats precise.
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered family in the text exposition
// format: one # HELP and # TYPE header per family, then each series. The
// output is deterministic for a fixed registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.hist != nil:
		return writeHistogram(w, f.name, s)
	case s.ctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.ctr.Value())
		return err
	case s.fctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.fctr.Value()))
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.fn()))
		return err
	}
}

// writeHistogram renders the cumulative bucket series, sum and count. The
// series labels are merged with the le label (labels are pre-rendered, so the
// le pair is spliced in before the closing brace).
func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.hist
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(s.labels, "le", formatValue(b)), cum); err != nil {
			return err
		}
	}
	cum += h.inf.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(s.labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatValue(h.sum.Value())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, cum)
	return err
}

// spliceLabel appends one extra label pair to a pre-rendered label block.
func spliceLabel(labels, key, val string) string {
	pair := key + `="` + escapeLabel(val) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}
