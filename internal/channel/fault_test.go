package channel

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

// TestFaultBackingNeverServesWrongChannel is the flapping-tier correctness
// suite (run under -race in CI): a store backed by a FaultBacking that drops
// and corrupts aggressively, hammered by concurrent callers across a key
// set, must only ever return the correct value for each key — a fault can
// cost a re-solve, never a wrong channel or an error.
func TestFaultBackingNeverServesWrongChannel(t *testing.T) {
	fb := NewFaultBacking(stringCodec{}, 42)
	fb.DropRate = 0.4
	fb.CorruptRate = 0.4
	fb.Latency = 100 * time.Microsecond

	const keys = 24
	want := func(cell int) string { return fmt.Sprintf("value-%d", cell) }
	// Pre-populate the backing so read-throughs actually exercise the fault
	// paths instead of always missing on an empty map.
	for cell := 0; cell < keys; cell++ {
		if err := fb.Put(testKey(cell), want(cell)); err != nil {
			t.Fatal(err)
		}
	}

	// MaxCost 1 forces constant eviction, so reads keep going back to the
	// flapping backing for the whole run.
	s := New(Options{Backing: fb, MaxCost: 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for i := 0; i < 200; i++ {
				cell := rng.IntN(keys)
				v, _, err := s.GetOrComputeCtx(context.Background(), testKey(cell), func(context.Context) (any, error) {
					return want(cell), nil
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if v.(string) != want(cell) {
					t.Errorf("worker %d: key %d returned %q", w, cell, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	s.Sync()

	dropped, corrupted := fb.FaultCounts()
	if dropped == 0 || corrupted == 0 {
		t.Fatalf("fault paths not exercised: dropped=%d corrupted=%d", dropped, corrupted)
	}
	st := fb.Stats()
	if st.Errors == 0 {
		t.Fatalf("corrupted frames never rejected: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("backing never hit: %+v", st)
	}
}

// TestFaultBackingDeterministicFaults pins the two injection modes: full
// drop reads as a silent miss, full corruption reads as a counted rejection,
// and neither ever surfaces bytes that decode to a value.
func TestFaultBackingDeterministicFaults(t *testing.T) {
	ctx := context.Background()
	key := testKey(3)

	drop := NewFaultBacking(stringCodec{}, 1)
	drop.DropRate = 1
	if err := drop.Put(key, "x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := drop.Load(ctx, key); ok {
		t.Fatal("dropping backing returned a value")
	}
	if st := drop.Stats(); st.Errors != 0 || st.Hits != 0 {
		t.Fatalf("drop must be a silent miss: %+v", st)
	}

	corrupt := NewFaultBacking(stringCodec{}, 2)
	corrupt.CorruptRate = 1
	if err := corrupt.Put(key, "x"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if v, ok := corrupt.Load(ctx, key); ok && v.(string) != "x" {
			t.Fatalf("corrupted frame decoded to wrong value %q", v)
		}
	}
	if st := corrupt.Stats(); st.Errors+st.VersionMisses == 0 {
		t.Fatalf("corruption never counted: %+v", st)
	}

	fail := NewFaultBacking(stringCodec{}, 3)
	fail.FailStores = true
	fail.Store(key, "x")
	if fail.Len() != 0 {
		t.Fatal("FailStores persisted a snapshot")
	}
	if st := fail.Stats(); st.WriteErrors != 1 {
		t.Fatalf("failed store not counted: %+v", st)
	}
}

// TestFaultBackingHonorsLoadCancellation: a canceled load must return
// promptly as a miss while injecting latency.
func TestFaultBackingHonorsLoadCancellation(t *testing.T) {
	fb := NewFaultBacking(stringCodec{}, 4)
	fb.Latency = time.Hour
	if err := fb.Put(testKey(1), "x"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, ok := fb.Load(ctx, testKey(1)); ok {
		t.Fatal("canceled load returned a value")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("canceled load blocked on injected latency")
	}
}

// tierStatsBacking is a minimal composite backing for the stats-surface
// tests: it reports per-tier stats and a disk tier distinct from the sum.
type tierStatsBacking struct {
	FaultBacking
	disk DirStats
}

func (b *tierStatsBacking) TierStats() []TierStats {
	return []TierStats{
		{Name: "mem", DirStats: DirStats{Loads: 10, Hits: 9}},
		{Name: "disk", DirStats: b.disk},
	}
}

func (b *tierStatsBacking) DiskStats() (DirStats, bool) { return b.disk, true }

// TestBackingStatsGeneralized pins the satellite fix: a composite backing
// reports its disk tier through BackingStats (so /v1/stats disk_errors and
// version_misses keep their meaning), a plain DirCache-style backing still
// reports itself, and BackingTierStats presents both uniformly.
func TestBackingStatsGeneralized(t *testing.T) {
	// Single-tier backing: unchanged legacy behaviour.
	fb := NewFaultBacking(stringCodec{}, 5)
	fb.Load(context.Background(), testKey(1)) // one miss
	single := New(Options{Backing: fb})
	ds, ok := single.BackingStats()
	if !ok || ds.Loads != 1 {
		t.Fatalf("single-tier BackingStats: %+v ok=%v", ds, ok)
	}
	tiers, ok := single.BackingTierStats()
	if !ok || len(tiers) != 1 || tiers[0].Name != "disk" || tiers[0].Loads != 1 {
		t.Fatalf("single-tier BackingTierStats: %+v ok=%v", tiers, ok)
	}

	// Composite backing: disk tier reported specifically, not the front tier.
	comp := &tierStatsBacking{disk: DirStats{Loads: 4, Errors: 2, VersionMisses: 1}}
	multi := New(Options{Backing: comp})
	ds, ok = multi.BackingStats()
	if !ok || ds.Errors != 2 || ds.VersionMisses != 1 {
		t.Fatalf("composite BackingStats must surface the disk tier: %+v ok=%v", ds, ok)
	}
	tiers, ok = multi.BackingTierStats()
	if !ok || len(tiers) != 2 || tiers[0].Name != "mem" || tiers[1].Name != "disk" {
		t.Fatalf("composite BackingTierStats: %+v ok=%v", tiers, ok)
	}

	// No backing at all.
	bare := New(Options{})
	if _, ok := bare.BackingStats(); ok {
		t.Fatal("no-backing store reported backing stats")
	}
	if _, ok := bare.BackingTierStats(); ok {
		t.Fatal("no-backing store reported tier stats")
	}
}

// TestStoreLoadCached pins the solve-free lookup used by hedged snapshot
// serving: resident values hit, backed values hit without installing into
// the store, absent values miss, and a LocalLoader backing is consulted via
// its local path only.
func TestStoreLoadCached(t *testing.T) {
	ctx := context.Background()
	fb := NewFaultBacking(stringCodec{}, 6)
	s := New(Options{Backing: fb})

	// Absent everywhere: miss, and no solve was triggered.
	if _, ok := s.LoadCached(ctx, testKey(1)); ok {
		t.Fatal("LoadCached hit on empty store")
	}

	// Resident: hit without touching the backing.
	if _, _, err := s.GetOrCompute(testKey(2), func() (any, error) { return "resident", nil }); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.LoadCached(ctx, testKey(2)); !ok || v.(string) != "resident" {
		t.Fatalf("resident LoadCached: %v %v", v, ok)
	}

	// Backing-only: hit, but the value is not installed in the store.
	if err := fb.Put(testKey(3), "backed"); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.LoadCached(ctx, testKey(3)); !ok || v.(string) != "backed" {
		t.Fatalf("backed LoadCached: %v %v", v, ok)
	}
	if _, ok := s.Get(testKey(3)); ok {
		t.Fatal("LoadCached installed the value into the store")
	}
}
