package channel

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"
)

// blockingSolve returns a solve function that signals `started`, then blocks
// until its detached context is canceled or `release` is closed. It reports
// whether the solve context was canceled via the returned pointer.
func blockingSolve(started chan<- struct{}, release <-chan struct{}, val any) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return val, nil
		}
	}
}

// TestAbandonKeepsSolveAliveForOtherWaiters is the detached-lifecycle
// contract: a caller whose context is canceled abandons the flight and
// returns promptly, while the solve keeps running and delivers its result to
// the remaining waiter.
func TestAbandonKeepsSolveAliveForOtherWaiters(t *testing.T) {
	s := New(Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	solve := blockingSolve(started, release, "solved")

	cancelCtx, cancel := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrComputeCtx(cancelCtx, key(1), solve)
		errA <- err
	}()
	<-started

	// Second waiter joins the same flight under a background context.
	valB := make(chan any, 1)
	go func() {
		v, hit, err := s.GetOrComputeCtx(context.Background(), key(1), func(context.Context) (any, error) {
			t.Error("second caller must join the flight, not solve")
			return nil, nil
		})
		if err != nil || !hit {
			t.Errorf("joined waiter: v=%v hit=%v err=%v", v, hit, err)
		}
		valB <- v
	}()
	// Wait until B is accounted as a waiter so the cancel below cannot drop
	// the refcount to zero.
	waitFor(t, func() bool { return waiterCount(s, key(1)) >= 2 })

	cancel()
	select {
	case err := <-errA:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoning caller: err=%v want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoning caller did not return after cancel")
	}
	// The solve must still be running: A abandoned, it did not abort.
	if st := s.Stats(); st.Inflight != 1 || st.Canceled != 0 || st.Abandoned != 1 {
		t.Fatalf("after abandon: %+v want inflight=1 canceled=0 abandoned=1", st)
	}

	close(release)
	select {
	case v := <-valB:
		if v.(string) != "solved" {
			t.Fatalf("remaining waiter got %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("remaining waiter never received the solved value")
	}
	if st := s.Stats(); st.Misses != 1 || st.Canceled != 0 {
		t.Errorf("final stats %+v want misses=1 canceled=0", st)
	}
}

// TestLastWaiterAbortsSolve: when the only waiter abandons, the refcount hits
// zero and the detached solve is canceled; the store caches nothing and a
// later call starts a fresh solve.
func TestLastWaiterAbortsSolve(t *testing.T) {
	s := New(Options{})
	started := make(chan struct{})
	solve := blockingSolve(started, nil, nil) // only returns on ctx cancel

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrComputeCtx(ctx, key(2), solve)
		errCh <- err
	}()
	<-started
	cancel()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("caller did not return after cancel")
	}
	// The detached solve observes its canceled context and unwinds.
	waitFor(t, func() bool { return s.Stats().Inflight == 0 })
	st := s.Stats()
	if st.Abandoned != 1 || st.Canceled != 1 {
		t.Errorf("stats %+v want abandoned=1 canceled=1", st)
	}
	if s.Len() != 0 {
		t.Errorf("aborted solve left %d entries resident", s.Len())
	}

	// A retry starts fresh and succeeds.
	v, hit, err := s.GetOrCompute(key(2), func() (any, error) { return "fresh", nil })
	if err != nil || hit || v.(string) != "fresh" {
		t.Fatalf("retry: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestSolveSurvivingAbandonIsCached: a solve that ignores cancellation and
// completes after every waiter left still publishes its (valid) result, so
// the work is not wasted.
func TestSolveSurvivingAbandonIsCached(t *testing.T) {
	s := New(Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	// Deliberately ignores ctx: simulates a solve past its last checkpoint.
	solve := func(context.Context) (any, error) {
		close(started)
		<-release
		return "late-but-valid", nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrComputeCtx(ctx, key(3), solve)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v want context.Canceled", err)
	}
	close(release)
	waitFor(t, func() bool {
		v, ok := s.Get(key(3))
		return ok && v.(string) == "late-but-valid"
	})
	if st := s.Stats(); st.Canceled != 0 {
		t.Errorf("completed solve counted as canceled: %+v", st)
	}
}

// TestSolveTimeoutAbortsSolve: the store-owned SolveTimeout cancels a solve
// even though its waiter never gives up.
func TestSolveTimeoutAbortsSolve(t *testing.T) {
	s := New(Options{SolveTimeout: 20 * time.Millisecond})
	started := make(chan struct{})
	solve := blockingSolve(started, nil, nil)

	_, _, err := s.GetOrComputeCtx(context.Background(), key(4), solve)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v want context.DeadlineExceeded", err)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Errorf("stats %+v want canceled=1", st)
	}
	if s.Len() != 0 {
		t.Errorf("timed-out solve left %d entries", s.Len())
	}
}

// TestPreCanceledContextSkipsSolve: a caller arriving with an already-dead
// context must not burn a solve.
func TestPreCanceledContextSkipsSolve(t *testing.T) {
	s := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.GetOrComputeCtx(ctx, key(5), func(ctx context.Context) (any, error) {
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v want context.Canceled", err)
	}
	waitFor(t, func() bool { return s.Stats().Inflight == 0 })
	if s.Len() != 0 {
		t.Errorf("%d entries after pre-canceled call", s.Len())
	}
}

// TestTruncatedSnapshotFallsBackToSolve covers the corrupt-persistence path
// end to end: a snapshot file cut mid-header is rejected cleanly by the
// DirCache, and the store falls back to solving instead of panicking or
// erroring.
func TestTruncatedSnapshotFallsBackToSolve(t *testing.T) {
	dir := t.TempDir()
	dc, err := NewDirCache(dir, stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(11)
	dc.Store(k, "full snapshot payload")
	path := dc.Path(k)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-frame: keep the magic and part of the header, drop
	// the rest (including the trailing checksum).
	if err := os.Truncate(path, info.Size()/3); err != nil {
		t.Fatal(err)
	}

	s := New(Options{Backing: dc})
	solved := false
	v, hit, err := s.GetOrComputeCtx(context.Background(), k, func(context.Context) (any, error) {
		solved = true
		return "re-solved", nil
	})
	if err != nil || hit || v.(string) != "re-solved" || !solved {
		t.Fatalf("fallback solve: v=%v hit=%v err=%v solved=%v", v, hit, err, solved)
	}
	if st := dc.Stats(); st.Errors == 0 {
		t.Errorf("truncated snapshot not counted as an error: %+v", st)
	}
	// The write-behind refresh replaces the corrupt file with a good one.
	s.Sync()
	v2, ok := dc.Load(context.Background(), k)
	if !ok || v2.(string) != "re-solved" {
		t.Errorf("snapshot not repaired after fallback solve: %v %v", v2, ok)
	}
}

// waiterCount reads the refcount of an in-flight entry under the shard lock.
func waiterCount(s *Store, k Key) int64 {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[k]; ok {
		return e.waiters
	}
	return 0
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestForEachCtxCancel: a canceled context drains the worker pool promptly
// and surfaces ctx.Err, while a background context matches ForEach exactly.
func TestForEachCtxCancel(t *testing.T) {
	var mu sync.Mutex
	seen := 0
	err := ForEachCtx(context.Background(), 4, 50, func(i int) error {
		mu.Lock()
		seen++
		mu.Unlock()
		return nil
	})
	if err != nil || seen != 50 {
		t.Fatalf("background: err=%v seen=%d", err, seen)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err = ForEachCtx(ctx, 4, 1000, func(i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled: err=%v", err)
	}
	if ran == 1000 {
		t.Error("pre-canceled ForEachCtx still ran every iteration")
	}
}
