package channel

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// FuzzSnapshotLoad drives the snapshot frame decoder with arbitrary byte
// strings. The contract under fuzzing: Load never panics, and every rejection
// is a structured error wrapping ErrSnapshot (so cache layers above can tell
// "unreadable snapshot" apart from I/O failures). Accepted inputs must
// round-trip: re-encoding the recovered payload under the same key yields a
// frame Load accepts again with an identical payload.
func FuzzSnapshotLoad(f *testing.F) {
	key := NewKey("fuzz", 3, 17, 0.25, 1, 0xabad1dea).WithVariant(9)

	valid := Snapshot(key, []byte("payload-bytes"))
	f.Add(valid)
	f.Add(Snapshot(key, nil))
	f.Add(Snapshot(NewKey("", 0, 0, 0, 0, 0), bytes.Repeat([]byte{0xff}, 64)))

	// Foreign version with a recomputed CRC: structurally sound, wrong era.
	foreign := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(foreign[4:], SnapshotVersion+1)
	binary.LittleEndian.PutUint32(foreign[len(foreign)-4:],
		crc32.ChecksumIEEE(foreign[:len(foreign)-4]))
	f.Add(foreign)

	// Truncations and a bit flip seed the interesting failure paths.
	f.Add(valid[:4])
	f.Add(valid[:len(valid)-5])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("GICH"))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Load(data, key)
		if err != nil {
			if !errors.Is(err, ErrSnapshot) {
				t.Fatalf("Load error does not wrap ErrSnapshot: %v", err)
			}
			return
		}
		reencoded := Snapshot(key, payload)
		back, err := Load(reencoded, key)
		if err != nil {
			t.Fatalf("re-encoded accepted payload rejected: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("payload changed across re-encode round trip")
		}
	})
}
