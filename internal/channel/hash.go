package channel

import "math"

// Hasher builds the PriorHash component of a Key: a deterministic FNV-1a
// fingerprint of everything a mechanism's channels depend on beyond the
// per-key fields — prior weights, partition geometry, region bounds. Two
// mechanisms sharing one Store collide on a key only if every fingerprinted
// input is identical, in which case the channels genuinely are
// interchangeable.
type Hasher struct {
	h uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewHasher returns a Hasher in its initial state.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

func (h *Hasher) byte(b byte) {
	h.h ^= uint64(b)
	h.h *= fnvPrime
}

// Uint64 mixes v into the hash.
func (h *Hasher) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

// Int mixes v into the hash.
func (h *Hasher) Int(v int) { h.Uint64(uint64(v)) }

// String mixes s (with its length, so concatenations cannot collide) into
// the hash.
func (h *Hasher) String(s string) {
	h.Int(len(s))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// Float64 mixes the exact bit pattern of f into the hash.
func (h *Hasher) Float64(f float64) { h.Uint64(math.Float64bits(f)) }

// Floats mixes a slice of float64 values (with its length) into the hash.
func (h *Hasher) Floats(fs []float64) {
	h.Int(len(fs))
	for _, f := range fs {
		h.Float64(f)
	}
}

// Sum returns the accumulated fingerprint.
func (h *Hasher) Sum() uint64 { return h.h }
