// Channel persistence: content-addressed snapshots of solved channels.
//
// The paper's central performance claim (§4, §6.2) is that channels are pure
// precomputation — each depends only on subdomain geometry, level budget,
// metric and prior, never on user locations — so the O(n^4)-per-iteration
// IPM solves can be done once, offline, and reused forever. The Store makes
// that reuse concurrent within a process; this file makes it survive the
// process. A DirCache mirrors solved channels to a directory of
// self-verifying snapshot files keyed by a content hash of the full store
// key, so a restarted server — or a fleet of servers sharing a volume —
// skips the LP solve phase entirely: cold start drops from minutes of
// interior-point iterations to milliseconds of file reads.
//
// Snapshot file layout (version 2, all integers little-endian):
//
//	offset  size      field
//	0       4         magic "GICH"
//	4       4         format version (uint32, currently 2)
//	8       4         namespace length (uint32)
//	12      ns        namespace bytes
//	...     8         Level   (int64)
//	...     8         Cell    (int64)
//	...     8         EpsBits (uint64)
//	...     8         Metric  (int64)
//	...     8         PriorHash (uint64)
//	...     8         Variant (uint64)
//	...     8         payload length (uint64)
//	...     payload   codec-encoded channel value
//	...     4         CRC-32 (IEEE) of every preceding byte
//
// The snapshot embeds the FULL key, not just the hash used for the file
// name: Load verifies every key field and the checksum before the payload is
// trusted, so a hash collision, a stale file from an older configuration, a
// torn write or bit rot all degrade to a cache miss (the caller re-solves
// and overwrites). A file carrying a foreign format version (e.g. a v1
// directory read by a v2 process, or vice versa) is likewise a plain miss —
// distinguished by ErrSnapshotVersion and its own counter rather than an
// error, because a version skew on a shared volume is an expected rollout
// state, not damage; the re-solve overwrites the file in the current format,
// migrating the directory entry by entry as keys are touched. Writers stage
// into a temp file in the destination directory and publish with an atomic
// rename, so concurrent writers on a shared volume never expose partial
// files to readers.
//
// Version history: v1 payloads stored dense channels with their cumulative
// rows duplicated on disk; v2 payloads drop the cumulative rows (rebuilt at
// decode) and add compact pruned representations. The frame layout above is
// unchanged since v1 — only the version number and payload encoding differ.
package channel

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
)

// SnapshotVersion is the current snapshot format version. Load rejects
// snapshots written by any other version with ErrSnapshotVersion.
const SnapshotVersion = 2

// snapshotMagic identifies snapshot files ("Geo-Ind CHannel").
const snapshotMagic = "GICH"

// ErrSnapshot is wrapped by every Load failure, so callers can distinguish
// "not a usable snapshot" from I/O plumbing errors with errors.Is.
var ErrSnapshot = errors.New("invalid channel snapshot")

// ErrSnapshotVersion is the Load failure for a structurally sound frame
// written by a different format version. It wraps ErrSnapshot (errors.Is
// matches both), but callers that want rollout-friendly behaviour — treat
// the file as a miss, re-solve, overwrite in the current format — can match
// it specifically. DirCache counts these as VersionMisses, not Errors.
var ErrSnapshotVersion = fmt.Errorf("%w: foreign format version", ErrSnapshot)

// Backing is a secondary, typically persistent, channel source consulted by
// the Store: read-through on a miss (before solving) and write-behind after
// each successful solve. Implementations must be safe for concurrent use.
// Load receives the detached solve context and should honour its
// cancellation around I/O and decoding; returning ok=false for any reason —
// absent, corrupt, mismatched, canceled — makes the store fall back to
// solving, so a Backing can never turn a cache problem into a query failure.
// Store is invoked from the write-behind goroutine, which the Store owns
// until Sync; it is deliberately not cancelable by request contexts.
type Backing interface {
	Load(ctx context.Context, key Key) (any, bool)
	Store(key Key, v any)
}

// Codec serializes cached channel values for a Backing. Decode must validate
// its input defensively: it receives bytes that passed the snapshot checksum
// and key check but could still have been written by a buggy or foreign
// producer, and a decoding error is reported as a cache miss, not a failure.
// Decode receives the solve context and should poll it between expensive
// validation phases so an abandoned solve does not burn cycles re-validating
// a snapshot nobody is waiting for.
type Codec interface {
	Encode(v any) ([]byte, error)
	Decode(ctx context.Context, data []byte) (any, error)
}

// Snapshot frames a codec payload for key as a self-verifying snapshot file
// image (see the package comment for the layout).
func Snapshot(key Key, payload []byte) []byte {
	buf := make([]byte, 0, 4+4+4+len(key.Namespace)+6*8+8+len(payload)+4)
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, SnapshotVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key.Namespace)))
	buf = append(buf, key.Namespace...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(key.Level))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(key.Cell))
	buf = binary.LittleEndian.AppendUint64(buf, key.EpsBits)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(key.Metric))
	buf = binary.LittleEndian.AppendUint64(buf, key.PriorHash)
	buf = binary.LittleEndian.AppendUint64(buf, key.Variant)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// Load verifies a snapshot image against the expected key and returns the
// embedded codec payload. Every failure mode — short file, bad magic,
// foreign version, checksum mismatch, any key field differing from want —
// returns an error wrapping ErrSnapshot.
func Load(data []byte, want Key) ([]byte, error) {
	const fixed = 4 + 4 + 4 // magic + version + namespace length
	if len(data) < fixed+6*8+8+4 {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrSnapshot, len(data))
	}
	if string(data[:4]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshot, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != SnapshotVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrSnapshotVersion, v, SnapshotVersion)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshot)
	}
	nsLen := int(binary.LittleEndian.Uint32(data[8:]))
	if nsLen < 0 || fixed+nsLen+6*8+8 > len(body) {
		return nil, fmt.Errorf("%w: namespace length %d exceeds snapshot", ErrSnapshot, nsLen)
	}
	off := fixed
	got := Key{Namespace: string(data[off : off+nsLen])}
	off += nsLen
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	got.Level = int(int64(u64()))
	got.Cell = int(int64(u64()))
	got.EpsBits = u64()
	got.Metric = int(int64(u64()))
	got.PriorHash = u64()
	got.Variant = u64()
	if got != want {
		return nil, fmt.Errorf("%w: key mismatch (snapshot holds %+v)", ErrSnapshot, got)
	}
	payLen := u64()
	if payLen != uint64(len(body)-off) {
		return nil, fmt.Errorf("%w: payload length %d, have %d bytes", ErrSnapshot, payLen, len(body)-off)
	}
	return body[off:], nil
}

// DirStats is a snapshot of DirCache behaviour.
type DirStats struct {
	// Loads counts Load calls; Hits of them returned a usable channel.
	Loads int64
	Hits  int64
	// Errors counts loads that found a file but rejected it (corrupt,
	// truncated, key mismatch, undecodable payload). An absent file is a
	// plain miss, not an error.
	Errors int64
	// VersionMisses counts loads that found an intact file written by a
	// foreign format version. These are expected during rollouts (a v1
	// cache directory warming a v2 process) and are deliberately not
	// Errors: the caller re-solves and overwrites the file in the current
	// format.
	VersionMisses int64
	// Writes counts snapshots successfully published; WriteErrors counts
	// encode or I/O failures (the entry simply stays memory-only).
	Writes      int64
	WriteErrors int64
}

// DirCache is a Backing that persists channels as snapshot files under
// <dir>/<namespace>/<keyhash>.chan. The key hash is a deterministic FNV-1a
// fingerprint (stable across processes, unlike the store's seeded shard
// hash), making the directory content-addressed: any process that derives
// the same key reads the same file. Safe for concurrent use within and
// across processes sharing one directory.
type DirCache struct {
	dir   string
	codec Codec

	loads         atomic.Int64
	hits          atomic.Int64
	errors        atomic.Int64
	versionMisses atomic.Int64
	writes        atomic.Int64
	writeErrors   atomic.Int64
}

// NewDirCache opens (creating if needed) a snapshot directory.
func NewDirCache(dir string, codec Codec) (*DirCache, error) {
	if codec == nil {
		return nil, fmt.Errorf("channel: nil codec for cache dir %q", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("channel: cache dir: %w", err)
	}
	return &DirCache{dir: dir, codec: codec}, nil
}

// Dir returns the cache directory root.
func (d *DirCache) Dir() string { return d.dir }

// Path returns the snapshot file path for key.
func (d *DirCache) Path(key Key) string {
	return filepath.Join(d.dir, pathComponent(key.Namespace), fmt.Sprintf("%016x.chan", ContentHash(key)))
}

// ContentHash fingerprints the full key with the package's process-stable
// FNV-1a hasher. It addresses both DirCache snapshot files and the fabric's
// consistent-hash key ownership, so every process derives the same placement
// for the same key. Collisions are harmless: the snapshot embeds the full
// key, so a colliding file fails Load's key check and reads as a miss.
func ContentHash(key Key) uint64 {
	h := NewHasher()
	h.String(key.Namespace)
	h.Int(key.Level)
	h.Int(key.Cell)
	h.Uint64(key.EpsBits)
	h.Int(key.Metric)
	h.Uint64(key.PriorHash)
	h.Uint64(key.Variant)
	return h.Sum()
}

// pathComponent maps a namespace onto a safe directory name.
func pathComponent(ns string) string {
	if ns == "" {
		return "_"
	}
	out := make([]byte, len(ns))
	for i := 0; i < len(ns); i++ {
		switch c := ns[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Load implements Backing: it reads, verifies and decodes the snapshot for
// key. Any defect — missing file, corruption, version or key mismatch,
// undecodable payload — reads as a miss so the store falls back to solving.
// Cancellation is checked before the file read and again before the decode
// (the two expensive phases); a canceled load is a plain miss, not an error.
func (d *DirCache) Load(ctx context.Context, key Key) (any, bool) {
	if ctx.Err() != nil {
		return nil, false
	}
	d.loads.Add(1)
	data, err := os.ReadFile(d.Path(key))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			d.errors.Add(1)
		}
		return nil, false
	}
	payload, err := Load(data, key)
	if err != nil {
		if errors.Is(err, ErrSnapshotVersion) {
			d.versionMisses.Add(1)
		} else {
			d.errors.Add(1)
		}
		return nil, false
	}
	if ctx.Err() != nil {
		return nil, false
	}
	v, err := d.codec.Decode(ctx, payload)
	if err != nil {
		d.errors.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return v, true
}

// Store implements Backing: it encodes v and publishes the snapshot with a
// temp-file write followed by an atomic rename, so concurrent writers (other
// goroutines, other processes on a shared volume) never expose a partial
// file and the last completed writer wins. Failures are counted and
// swallowed: persistence is an optimization, never a correctness dependency.
func (d *DirCache) Store(key Key, v any) {
	payload, err := d.codec.Encode(v)
	if err != nil {
		d.writeErrors.Add(1)
		return
	}
	path := d.Path(key)
	nsDir := filepath.Dir(path)
	if err := os.MkdirAll(nsDir, 0o755); err != nil {
		d.writeErrors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(nsDir, ".chan-*.tmp")
	if err != nil {
		d.writeErrors.Add(1)
		return
	}
	data := Snapshot(key, payload)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		d.writeErrors.Add(1)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		d.writeErrors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		d.writeErrors.Add(1)
		return
	}
	d.writes.Add(1)
}

// Stats returns a snapshot of the cache counters.
func (d *DirCache) Stats() DirStats {
	return DirStats{
		Loads:         d.loads.Load(),
		Hits:          d.hits.Load(),
		Errors:        d.errors.Load(),
		VersionMisses: d.versionMisses.Load(),
		Writes:        d.writes.Load(),
		WriteErrors:   d.writeErrors.Load(),
	}
}
