// Package channel owns the channel lifecycle shared by every mechanism in
// the repository: the Multi-Step Mechanism (internal/core), the adaptive
// k-d-style index and the quadtree index (internal/adaptive) all construct
// per-(level, cell) optimal channels by solving the OPT linear program and
// then reuse them for every subsequent query. The paper treats these solves
// as pure post-processing-safe precomputation (§4, §6.2): a channel depends
// only on the subdomain geometry, the level budget eps_i, the utility metric
// and the restricted prior — never on user locations — so caching and
// sharing them across queries (and across users, in the server deployment)
// does not affect the GeoInd guarantee.
//
// Store is a sharded, singleflight-deduplicated concurrent cache keyed by
// exactly those inputs. Concurrent requests for the same key perform one LP
// solve: the first caller computes while the rest wait on the entry's done
// channel. Shards keep unrelated keys from contending on a single lock, so
// the warm path (pure map lookups) scales with cores. Optional cost-aware
// eviction bounds resident channel mass for long-lived servers with very
// large hierarchies.
package channel

import (
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"
)

// Key identifies one solved channel. All the inputs the solve depends on
// participate, so distinct mechanisms (or distinct priors) sharing one Store
// can never collide: Namespace separates mechanism families, Level/Cell
// locate the subdomain in the index, EpsBits is the exact level budget,
// Metric the utility metric, and PriorHash fingerprints the prior (plus any
// partition geometry derived from it).
type Key struct {
	// Namespace separates mechanism families sharing a store ("msm",
	// "adaptive", "quad", ...).
	Namespace string
	// Level is the index level (0 = descent from the virtual root) or tree
	// depth of the node.
	Level int
	// Cell is the parent cell index at Level (grid mechanisms) or the node
	// ID (tree mechanisms).
	Cell int
	// EpsBits is math.Float64bits of the budget the channel satisfies.
	EpsBits uint64
	// Metric is the utility metric identifier.
	Metric int
	// PriorHash fingerprints the adversarial prior (and, for adaptive
	// indexes, the partition geometry derived from it).
	PriorHash uint64
	// Variant distinguishes alternative constructions of the same
	// subdomain channel: 0 is the exact full-constraint LP; a
	// spanner-reduced channel stores math.Float64bits of its stretch
	// factor. Reduced and exact channels thereby share singleflight,
	// stats, eviction and persistence without colliding.
	Variant uint64
}

// NewKey assembles a Key, converting eps to its exact bit pattern.
func NewKey(namespace string, level, cell int, eps float64, metric int, priorHash uint64) Key {
	return Key{
		Namespace: namespace,
		Level:     level,
		Cell:      cell,
		EpsBits:   math.Float64bits(eps),
		Metric:    metric,
		PriorHash: priorHash,
	}
}

// WithVariant returns a copy of k tagged with the given variant bits
// (conventionally math.Float64bits of a spanner stretch factor; 0 means the
// exact channel).
func (k Key) WithVariant(variant uint64) Key {
	k.Variant = variant
	return k
}

// Stats is a snapshot of store behaviour. Hits+Misses equals the number of
// GetOrCompute calls that completed; Misses equals the number of solves
// actually performed (deduplicated waiters count as hits).
type Stats struct {
	// Hits counts lookups satisfied without a new solve (including calls
	// that waited on an in-flight solve for the same key).
	Hits int64
	// Misses counts lookups that performed the solve.
	Misses int64
	// Inflight is the number of solves currently executing.
	Inflight int64
	// Entries is the number of resident channels.
	Entries int64
	// Cost is the total resident cost (CostFn units).
	Cost int64
	// Evictions counts entries removed by the cost-aware eviction policy.
	Evictions int64
	// BackingHits counts lookups satisfied by the backing cache instead of
	// a solve (counted as Hits, not Misses: no solve happened).
	BackingHits int64
	// BackingWrites counts freshly solved channels handed to the backing
	// cache for write-behind persistence.
	BackingWrites int64
}

// Options configures a Store.
type Options struct {
	// MaxCost bounds the total resident cost; 0 means unbounded. When an
	// insert pushes the total above MaxCost, least-recently-used entries are
	// evicted (approximately: eviction scans shards independently) until the
	// store fits again. In-flight entries are never evicted.
	MaxCost int64
	// CostFn assigns a cost to a computed value; nil means every entry costs
	// 1 (MaxCost then bounds the entry count).
	CostFn func(v any) int64
	// Backing, when non-nil, is consulted read-through on every miss before
	// solving and written behind (asynchronously) after every successful
	// solve. Evicted entries therefore remain loadable: a later miss for the
	// same key reloads from the backing instead of re-solving.
	Backing Backing
}

const numShards = 32

// Store is the sharded singleflight channel cache. The zero value is not
// usable; construct with New.
type Store struct {
	shards  [numShards]shard
	seed    maphash.Seed
	costFn  func(v any) int64
	maxCost int64
	backing Backing

	hits          atomic.Int64
	misses        atomic.Int64
	inflight      atomic.Int64
	entries       atomic.Int64
	cost          atomic.Int64
	evictions     atomic.Int64
	backingHits   atomic.Int64
	backingWrites atomic.Int64
	clock         atomic.Int64 // logical time for LRU ordering

	backingWG sync.WaitGroup // tracks in-flight write-behind goroutines
}

type shard struct {
	mu sync.Mutex
	m  map[Key]*entry
}

type entry struct {
	done     chan struct{} // closed when val/err are set
	val      any
	err      error
	cost     int64
	lastUsed atomic.Int64
}

// New builds an empty store.
func New(opts Options) *Store {
	s := &Store{
		seed:    maphash.MakeSeed(),
		maxCost: opts.MaxCost,
		costFn:  opts.CostFn,
		backing: opts.Backing,
	}
	if s.costFn == nil {
		s.costFn = func(any) int64 { return 1 }
	}
	for i := range s.shards {
		s.shards[i].m = make(map[Key]*entry)
	}
	return s
}

func (s *Store) shardFor(k Key) *shard {
	var h maphash.Hash
	h.SetSeed(s.seed)
	h.WriteString(k.Namespace)
	var buf [48]byte
	put64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put64(0, uint64(k.Level))
	put64(8, uint64(k.Cell))
	put64(16, k.EpsBits)
	put64(24, uint64(k.Metric))
	put64(32, k.PriorHash)
	put64(40, k.Variant)
	h.Write(buf[:])
	return &s.shards[h.Sum64()%numShards]
}

// GetOrCompute returns the channel for key, invoking solve exactly once per
// key across all concurrent callers (singleflight). The second return value
// reports whether the call was satisfied without solving (resident entry,
// joined flight, or backing-cache load). A failed solve is not cached: the
// error is delivered to every caller that joined the flight, and a later
// call retries.
//
// With a Backing configured, a miss first attempts a read-through load —
// still under the singleflight, so concurrent callers share one disk read —
// and only solves if the backing declines. Freshly solved values are handed
// to the backing asynchronously (write-behind); call Sync to wait for those
// writes, e.g. before process exit.
func (s *Store) GetOrCompute(key Key, solve func() (any, error)) (any, bool, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		<-e.done
		if e.err != nil {
			// The flight we joined failed; its entry has already been
			// removed by the computing goroutine, so retrying is safe.
			return nil, false, e.err
		}
		e.lastUsed.Store(s.clock.Add(1))
		s.hits.Add(1)
		return e.val, true, nil
	}
	e := &entry{done: make(chan struct{})}
	e.lastUsed.Store(s.clock.Add(1))
	sh.m[key] = e
	sh.mu.Unlock()

	s.inflight.Add(1)
	fromBacking := false
	if s.backing != nil {
		if v, ok := s.backing.Load(key); ok {
			e.val = v
			fromBacking = true
		}
	}
	if !fromBacking {
		e.val, e.err = solve()
	}
	s.inflight.Add(-1)
	if e.err != nil {
		sh.mu.Lock()
		delete(sh.m, key)
		sh.mu.Unlock()
		close(e.done)
		return nil, false, e.err
	}
	e.cost = s.costFn(e.val)
	s.entries.Add(1)
	total := s.cost.Add(e.cost)
	close(e.done)
	if fromBacking {
		s.hits.Add(1)
		s.backingHits.Add(1)
	} else {
		s.misses.Add(1)
		if s.backing != nil {
			s.backingWrites.Add(1)
			s.backingWG.Add(1)
			val := e.val
			go func() {
				defer s.backingWG.Done()
				s.backing.Store(key, val)
			}()
		}
	}
	if s.maxCost > 0 && total > s.maxCost {
		s.evict(total - s.maxCost)
	}
	return e.val, fromBacking, nil
}

// Sync blocks until every write-behind persistence goroutine started so far
// has completed. It does not prevent new writes from starting; callers
// should quiesce queries first (e.g. after Precompute, or during shutdown).
func (s *Store) Sync() {
	s.backingWG.Wait()
}

// Get returns the channel for key if resident and fully computed.
func (s *Store) Get(key Key) (any, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
	default:
		return nil, false // still computing
	}
	if e.err != nil {
		return nil, false
	}
	e.lastUsed.Store(s.clock.Add(1))
	return e.val, true
}

// evict removes completed entries in least-recently-used order until at
// least need cost has been reclaimed. It scans all shards to rank entries;
// entries still in flight are skipped.
func (s *Store) evict(need int64) {
	type victim struct {
		sh   *shard
		key  Key
		e    *entry
		used int64
	}
	var victims []victim
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			select {
			case <-e.done:
				if e.err == nil {
					victims = append(victims, victim{sh, k, e, e.lastUsed.Load()})
				}
			default:
			}
		}
		sh.mu.Unlock()
	}
	// Selection sort over the (small) victim set ordered by recency.
	for need > 0 && len(victims) > 0 {
		oldest := 0
		for i := 1; i < len(victims); i++ {
			if victims[i].used < victims[oldest].used {
				oldest = i
			}
		}
		v := victims[oldest]
		victims[oldest] = victims[len(victims)-1]
		victims = victims[:len(victims)-1]
		v.sh.mu.Lock()
		if cur, ok := v.sh.m[v.key]; ok && cur == v.e {
			delete(v.sh.m, v.key)
			v.sh.mu.Unlock()
			s.entries.Add(-1)
			s.cost.Add(-v.e.cost)
			s.evictions.Add(1)
			need -= v.e.cost
		} else {
			v.sh.mu.Unlock()
		}
	}
}

// Len returns the number of resident channels (including in-flight solves).
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Clear drops every resident channel. Solves in flight complete normally but
// their results are discarded from the cache.
func (s *Store) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			select {
			case <-e.done:
				if e.err == nil {
					s.entries.Add(-1)
					s.cost.Add(-e.cost)
				}
				delete(sh.m, k)
			default:
				// Leave in-flight entries: their computing goroutine still
				// owns the map slot and will complete the flight.
			}
		}
		sh.mu.Unlock()
	}
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Inflight:      s.inflight.Load(),
		Entries:       s.entries.Load(),
		Cost:          s.cost.Load(),
		Evictions:     s.evictions.Load(),
		BackingHits:   s.backingHits.Load(),
		BackingWrites: s.backingWrites.Load(),
	}
}
