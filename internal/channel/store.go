// Package channel owns the channel lifecycle shared by every mechanism in
// the repository: the Multi-Step Mechanism (internal/core), the adaptive
// k-d-style index and the quadtree index (internal/adaptive) all construct
// per-(level, cell) optimal channels by solving the OPT linear program and
// then reuse them for every subsequent query. The paper treats these solves
// as pure post-processing-safe precomputation (§4, §6.2): a channel depends
// only on the subdomain geometry, the level budget eps_i, the utility metric
// and the restricted prior — never on user locations — so caching and
// sharing them across queries (and across users, in the server deployment)
// does not affect the GeoInd guarantee.
//
// Store is a sharded, singleflight-deduplicated concurrent cache keyed by
// exactly those inputs. Concurrent requests for the same key perform one LP
// solve: the solve runs in its own detached goroutine under a store-owned
// context while every caller — including the one that triggered it — waits
// on the entry's done channel. Waiters can abandon the flight individually
// when their request context is canceled; the solve itself is aborted only
// when its refcount of live waiters drops to zero (there is no one left who
// wants the result), or when the store's SolveTimeout elapses. Shards keep
// unrelated keys from contending on a single lock, so the warm path (pure
// map lookups) scales with cores. Optional cost-aware eviction bounds
// resident channel mass for long-lived servers with very large hierarchies.
package channel

import (
	"context"
	"errors"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Key identifies one solved channel. All the inputs the solve depends on
// participate, so distinct mechanisms (or distinct priors) sharing one Store
// can never collide: Namespace separates mechanism families, Level/Cell
// locate the subdomain in the index, EpsBits is the exact level budget,
// Metric the utility metric, and PriorHash fingerprints the prior (plus any
// partition geometry derived from it).
type Key struct {
	// Namespace separates mechanism families sharing a store ("msm",
	// "adaptive", "quad", ...).
	Namespace string
	// Level is the index level (0 = descent from the virtual root) or tree
	// depth of the node.
	Level int
	// Cell is the parent cell index at Level (grid mechanisms) or the node
	// ID (tree mechanisms).
	Cell int
	// EpsBits is math.Float64bits of the budget the channel satisfies.
	EpsBits uint64
	// Metric is the utility metric identifier.
	Metric int
	// PriorHash fingerprints the adversarial prior (and, for adaptive
	// indexes, the partition geometry derived from it).
	PriorHash uint64
	// Variant distinguishes alternative constructions of the same
	// subdomain channel: 0 is the exact full-constraint LP; a
	// spanner-reduced channel stores math.Float64bits of its stretch
	// factor. Reduced and exact channels thereby share singleflight,
	// stats, eviction and persistence without colliding.
	Variant uint64
}

// NewKey assembles a Key, converting eps to its exact bit pattern.
func NewKey(namespace string, level, cell int, eps float64, metric int, priorHash uint64) Key {
	return Key{
		Namespace: namespace,
		Level:     level,
		Cell:      cell,
		EpsBits:   math.Float64bits(eps),
		Metric:    metric,
		PriorHash: priorHash,
	}
}

// WithVariant returns a copy of k tagged with the given variant bits
// (conventionally math.Float64bits of a spanner stretch factor; 0 means the
// exact channel).
func (k Key) WithVariant(variant uint64) Key {
	k.Variant = variant
	return k
}

// ErrSolveOverload is returned by GetOrComputeCtx when admission control is
// enabled (Options.MaxSolves > 0), every solve slot is busy and the bounded
// admission queue is full. The rejection is immediate — the caller is never
// parked and no goroutine is spawned — so an overloaded store sheds load
// instead of accumulating blocked solves. Callers should surface it as a
// retryable condition (the HTTP server maps it to 429 + Retry-After).
var ErrSolveOverload = errors.New("channel: solve admission queue full")

// Stats is a snapshot of store behaviour. Hits+Misses equals the number of
// GetOrCompute calls that completed; Misses equals the number of solves
// actually performed (deduplicated waiters count as hits).
type Stats struct {
	// Hits counts lookups satisfied without a new solve (including calls
	// that waited on an in-flight solve for the same key).
	Hits int64
	// Misses counts lookups that performed the solve.
	Misses int64
	// Inflight is the number of solves currently executing.
	Inflight int64
	// Entries is the number of resident channels.
	Entries int64
	// Cost is the total resident cost (CostFn units).
	Cost int64
	// Evictions counts entries removed by the cost-aware eviction policy.
	Evictions int64
	// BackingHits counts lookups satisfied by the backing cache instead of
	// a solve (counted as Hits, not Misses: no solve happened).
	BackingHits int64
	// BackingWrites counts freshly solved channels handed to the backing
	// cache for write-behind persistence.
	BackingWrites int64
	// Abandoned counts waiters that gave up on an in-flight solve because
	// their own context was canceled or timed out. Abandoning is per caller:
	// the solve keeps running as long as at least one other waiter remains.
	Abandoned int64
	// Canceled counts solves aborted before completion — because every
	// waiter abandoned the flight (refcount hit zero) or the store's
	// SolveTimeout elapsed. A canceled solve caches nothing; a later call
	// for the same key starts a fresh one.
	Canceled int64
	// Queued is the number of admitted solves currently waiting for a free
	// solve slot (only nonzero with Options.MaxSolves set).
	Queued int64
	// Rejected counts misses refused outright with ErrSolveOverload because
	// every solve slot was busy and the admission queue was full.
	Rejected int64
}

// Options configures a Store.
type Options struct {
	// MaxCost bounds the total resident cost; 0 means unbounded. When an
	// insert pushes the total above MaxCost, least-recently-used entries are
	// evicted (approximately: eviction scans shards independently) until the
	// store fits again. In-flight entries are never evicted.
	MaxCost int64
	// CostFn assigns a cost to a computed value; nil means every entry costs
	// 1 (MaxCost then bounds the entry count).
	CostFn func(v any) int64
	// Backing, when non-nil, is consulted read-through on every miss before
	// solving and written behind (asynchronously) after every successful
	// solve. Evicted entries therefore remain loadable: a later miss for the
	// same key reloads from the backing instead of re-solving.
	Backing Backing
	// SolveTimeout bounds the wall-clock time of one detached solve
	// (including the backing read-through preceding it); 0 means unbounded.
	// The timeout is owned by the store, not by any caller: a solve that
	// outlives the request that triggered it still completes — and is cached
	// for the next caller — unless this deadline expires first.
	SolveTimeout time.Duration
	// MaxSolves bounds the number of detached solves (including their
	// backing read-through) executing concurrently; 0 means unbounded. A
	// miss arriving while every slot is busy queues for admission — up to
	// SolveQueue deep — and beyond that is rejected immediately with
	// ErrSolveOverload. Joining an in-flight solve for the same key is never
	// subject to admission: singleflight deduplication happens first.
	MaxSolves int
	// SolveQueue bounds how many admitted solves may wait for a free slot
	// before further misses are rejected; 0 with MaxSolves > 0 defaults to
	// MaxSolves. Each queued solve costs one parked goroutine, so the
	// worst-case goroutine commitment is MaxSolves + SolveQueue regardless
	// of offered load.
	SolveQueue int
}

const numShards = 32

// Store is the sharded singleflight channel cache. The zero value is not
// usable; construct with New.
type Store struct {
	shards       [numShards]shard
	seed         maphash.Seed
	costFn       func(v any) int64
	maxCost      int64
	backing      Backing
	solveTimeout time.Duration
	solveSem     chan struct{} // nil = unbounded; else capacity MaxSolves
	queueCap     int64

	hits          atomic.Int64
	misses        atomic.Int64
	inflight      atomic.Int64
	entries       atomic.Int64
	cost          atomic.Int64
	evictions     atomic.Int64
	backingHits   atomic.Int64
	backingWrites atomic.Int64
	abandoned     atomic.Int64
	canceled      atomic.Int64
	queued        atomic.Int64
	rejected      atomic.Int64
	clock         atomic.Int64 // logical time for LRU ordering

	backingWG sync.WaitGroup // tracks in-flight write-behind goroutines
}

type shard struct {
	mu sync.Mutex
	m  map[Key]*entry
}

type entry struct {
	done        chan struct{} // closed when val/err are set
	val         any
	err         error
	cost        int64
	fromBacking bool
	lastUsed    atomic.Int64

	// waiters is the refcount of callers currently blocked on done; guarded
	// by the owning shard's mutex. When an abandoning waiter drops it to
	// zero while the solve is still running, the entry is unmapped and
	// cancel is invoked, aborting the detached solve.
	waiters int64
	cancel  context.CancelFunc
}

// New builds an empty store.
func New(opts Options) *Store {
	s := &Store{
		seed:         maphash.MakeSeed(),
		maxCost:      opts.MaxCost,
		costFn:       opts.CostFn,
		backing:      opts.Backing,
		solveTimeout: opts.SolveTimeout,
	}
	if s.costFn == nil {
		s.costFn = func(any) int64 { return 1 }
	}
	if opts.MaxSolves > 0 {
		s.solveSem = make(chan struct{}, opts.MaxSolves)
		s.queueCap = int64(opts.SolveQueue)
		if s.queueCap == 0 {
			s.queueCap = int64(opts.MaxSolves)
		}
	}
	for i := range s.shards {
		s.shards[i].m = make(map[Key]*entry)
	}
	return s
}

func (s *Store) shardFor(k Key) *shard {
	var h maphash.Hash
	h.SetSeed(s.seed)
	h.WriteString(k.Namespace)
	var buf [48]byte
	put64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put64(0, uint64(k.Level))
	put64(8, uint64(k.Cell))
	put64(16, k.EpsBits)
	put64(24, uint64(k.Metric))
	put64(32, k.PriorHash)
	put64(40, k.Variant)
	h.Write(buf[:])
	return &s.shards[h.Sum64()%numShards]
}

// GetOrCompute is GetOrComputeCtx with a background context: the caller
// never abandons, and the solve function ignores cancellation.
func (s *Store) GetOrCompute(key Key, solve func() (any, error)) (any, bool, error) {
	return s.GetOrComputeCtx(context.Background(), key, func(context.Context) (any, error) {
		return solve()
	})
}

// GetOrComputeCtx returns the channel for key, invoking solve at most once
// per key across all concurrent callers (singleflight). The second return
// value reports whether the call was satisfied without solving (resident
// entry, joined flight, or backing-cache load). A failed solve is not
// cached: the error is delivered to every caller still waiting on the
// flight, and a later call retries.
//
// Solve lifecycle is decoupled from any single caller. The solve runs in a
// detached goroutine under a store-owned context (bounded by
// Options.SolveTimeout when set), and every caller — including the one whose
// miss triggered it — merely waits on the result. When ctx is canceled the
// caller abandons the flight immediately and returns ctx.Err(); the solve
// keeps running for the benefit of the other waiters and is aborted only
// when the last live waiter has abandoned. solve receives the detached solve
// context, not ctx, and should poll it at its cancellation checkpoints.
//
// With a Backing configured, a miss first attempts a read-through load —
// still under the singleflight, so concurrent callers share one disk read —
// and only solves if the backing declines. Freshly solved values are handed
// to the backing asynchronously (write-behind); call Sync to wait for those
// writes, e.g. before process exit.
func (s *Store) GetOrComputeCtx(ctx context.Context, key Key, solve func(ctx context.Context) (any, error)) (any, bool, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		select {
		case <-e.done:
			// Warm path: the value is resident, no waiter accounting needed.
			sh.mu.Unlock()
			if e.err != nil {
				return nil, false, e.err
			}
			e.lastUsed.Store(s.clock.Add(1))
			s.hits.Add(1)
			return e.val, true, nil
		default:
		}
		e.waiters++
		sh.mu.Unlock()
		return s.wait(ctx, sh, key, e, true)
	}
	// Admission control: reserve a solve slot — or a bounded queue position —
	// before the flight exists, so an overloaded store rejects in O(1)
	// without allocating an entry or spawning a goroutine. Only genuinely new
	// flights are subject to admission; callers joining an in-flight solve
	// for the same key were already deduplicated above.
	queuedSolve := false
	if s.solveSem != nil {
		select {
		case s.solveSem <- struct{}{}:
		default:
			if s.queued.Add(1) > s.queueCap {
				s.queued.Add(-1)
				s.rejected.Add(1)
				sh.mu.Unlock()
				return nil, false, ErrSolveOverload
			}
			queuedSolve = true
		}
	}
	e := &entry{done: make(chan struct{}), waiters: 1}
	e.lastUsed.Store(s.clock.Add(1))
	solveCtx, cancel := s.newSolveContext()
	e.cancel = cancel
	sh.m[key] = e
	sh.mu.Unlock()

	go s.runSolve(solveCtx, sh, key, e, solve, queuedSolve)
	return s.wait(ctx, sh, key, e, false)
}

// newSolveContext builds the detached context one solve runs under: rooted
// in Background — never in a request context — so the solve outlives any
// individual caller, with the store's SolveTimeout applied when configured.
func (s *Store) newSolveContext() (context.Context, context.CancelFunc) {
	if s.solveTimeout > 0 {
		return context.WithTimeout(context.Background(), s.solveTimeout)
	}
	return context.WithCancel(context.Background())
}

// runSolve executes one detached flight: queue admission (when the flight
// did not win a solve slot immediately), backing read-through, then the
// solve itself, then result publication. It owns the entry's map slot until
// the flight settles.
func (s *Store) runSolve(ctx context.Context, sh *shard, key Key, e *entry, solve func(ctx context.Context) (any, error), queuedSolve bool) {
	defer e.cancel() // release the timeout timer, if any
	if queuedSolve {
		// Parked in the bounded admission queue: wait for a slot unless the
		// flight is aborted first (every waiter abandoned, or SolveTimeout).
		select {
		case s.solveSem <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			e.err = ctx.Err()
			s.settleFailed(sh, key, e)
			return
		}
	}
	if s.solveSem != nil {
		defer func() { <-s.solveSem }()
	}
	s.inflight.Add(1)
	fromBacking := false
	if s.backing != nil && ctx.Err() == nil {
		if v, ok := s.backing.Load(ctx, key); ok {
			e.val = v
			fromBacking = true
		}
	}
	if !fromBacking {
		if err := ctx.Err(); err != nil {
			e.err = err
		} else {
			e.val, e.err = solve(ctx)
		}
	}
	s.inflight.Add(-1)
	if e.err != nil {
		s.settleFailed(sh, key, e)
		return
	}
	e.cost = s.costFn(e.val)
	e.fromBacking = fromBacking
	keep := true
	sh.mu.Lock()
	if cur, ok := sh.m[key]; !ok {
		// Every waiter abandoned and the slot was cleared, but the solve
		// finished before noticing the cancel: the result is valid, cache it.
		sh.m[key] = e
	} else if cur != e {
		// A fresh flight replaced the abandoned one; let it win.
		keep = false
	}
	sh.mu.Unlock()
	var total int64
	if keep {
		s.entries.Add(1)
		total = s.cost.Add(e.cost)
	}
	if fromBacking {
		s.hits.Add(1)
		s.backingHits.Add(1)
	} else {
		s.misses.Add(1)
		if s.backing != nil && keep {
			// Register the write-behind BEFORE publishing done: a waiter
			// that returns from GetOrComputeCtx and immediately calls Sync
			// must observe this Add, and WaitGroup forbids Add racing with
			// Wait at zero.
			s.backingWrites.Add(1)
			s.backingWG.Add(1)
			val := e.val
			go func() {
				defer s.backingWG.Done()
				s.backing.Store(key, val)
			}()
		}
	}
	close(e.done)
	if keep && s.maxCost > 0 && total > s.maxCost {
		s.evict(total - s.maxCost)
	}
}

// settleFailed publishes a failed flight: counts the cancellation, unmaps
// the entry — unless the abandonment path already did, or a fresh flight
// owns the slot — and wakes every waiter with e.err.
func (s *Store) settleFailed(sh *shard, key Key, e *entry) {
	if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
		s.canceled.Add(1)
	}
	sh.mu.Lock()
	if cur, ok := sh.m[key]; ok && cur == e {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
	close(e.done)
}

// wait blocks one caller on a flight until the result is published or the
// caller's own context is canceled. joined reports whether the caller merely
// joined an existing flight (it then counts as a hit) rather than triggering
// it.
func (s *Store) wait(ctx context.Context, sh *shard, key Key, e *entry, joined bool) (any, bool, error) {
	select {
	case <-e.done:
	case <-ctx.Done():
		s.abandoned.Add(1)
		sh.mu.Lock()
		e.waiters--
		if e.waiters == 0 {
			select {
			case <-e.done:
				// Finished in the meantime; leave the cached result alone.
			default:
				// Last waiter out: unmap the doomed flight so late arrivals
				// start fresh, then abort the detached solve.
				if cur, ok := sh.m[key]; ok && cur == e {
					delete(sh.m, key)
				}
				e.cancel()
			}
		}
		sh.mu.Unlock()
		return nil, false, ctx.Err()
	}
	sh.mu.Lock()
	e.waiters--
	sh.mu.Unlock()
	if e.err != nil {
		return nil, false, e.err
	}
	e.lastUsed.Store(s.clock.Add(1))
	if joined {
		s.hits.Add(1)
	}
	return e.val, joined || e.fromBacking, nil
}

// Sync blocks until every write-behind persistence goroutine started so far
// has completed. It does not prevent new writes from starting; callers
// should quiesce queries first (e.g. after Precompute, or during shutdown).
func (s *Store) Sync() {
	s.backingWG.Wait()
}

// Get returns the channel for key if resident and fully computed.
func (s *Store) Get(key Key) (any, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
	default:
		return nil, false // still computing
	}
	if e.err != nil {
		return nil, false
	}
	e.lastUsed.Store(s.clock.Add(1))
	return e.val, true
}

// evict removes completed entries in least-recently-used order until at
// least need cost has been reclaimed. It scans all shards to rank entries;
// entries still in flight are skipped.
func (s *Store) evict(need int64) {
	type victim struct {
		sh   *shard
		key  Key
		e    *entry
		used int64
	}
	var victims []victim
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			select {
			case <-e.done:
				if e.err == nil {
					victims = append(victims, victim{sh, k, e, e.lastUsed.Load()})
				}
			default:
			}
		}
		sh.mu.Unlock()
	}
	// Selection sort over the (small) victim set ordered by recency.
	for need > 0 && len(victims) > 0 {
		oldest := 0
		for i := 1; i < len(victims); i++ {
			if victims[i].used < victims[oldest].used {
				oldest = i
			}
		}
		v := victims[oldest]
		victims[oldest] = victims[len(victims)-1]
		victims = victims[:len(victims)-1]
		v.sh.mu.Lock()
		if cur, ok := v.sh.m[v.key]; ok && cur == v.e {
			delete(v.sh.m, v.key)
			v.sh.mu.Unlock()
			s.entries.Add(-1)
			s.cost.Add(-v.e.cost)
			s.evictions.Add(1)
			need -= v.e.cost
		} else {
			v.sh.mu.Unlock()
		}
	}
}

// Len returns the number of resident channels (including in-flight solves).
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Clear drops every resident channel. Solves in flight complete normally but
// their results are discarded from the cache.
func (s *Store) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			select {
			case <-e.done:
				if e.err == nil {
					s.entries.Add(-1)
					s.cost.Add(-e.cost)
				}
				delete(sh.m, k)
			default:
				// Leave in-flight entries: their computing goroutine still
				// owns the map slot and will complete the flight.
			}
		}
		sh.mu.Unlock()
	}
}

// BackingStats returns the counters of the backing's durable disk tier; ok
// is false when there is no backing, no disk tier, or no stats at all. A
// composite backing (DiskStatser) reports its disk tier specifically so the
// long-standing /v1/stats disk_errors and version_misses fields keep meaning
// "the local snapshot directory" even when the chain also has mem and remote
// tiers; a plain single-tier backing (DirCache) reports itself as before.
func (s *Store) BackingStats() (DirStats, bool) {
	switch b := s.backing.(type) {
	case DiskStatser:
		return b.DiskStats()
	case interface{ Stats() DirStats }:
		return b.Stats(), true
	}
	return DirStats{}, false
}

// BackingTierStats returns the per-tier breakdown of a composite backing.
// A single-tier backing with stats is reported as one "disk" tier so callers
// can render uniformly; ok is false only when no stats exist at all.
func (s *Store) BackingTierStats() ([]TierStats, bool) {
	switch b := s.backing.(type) {
	case TierStatser:
		return b.TierStats(), true
	case interface{ Stats() DirStats }:
		return []TierStats{{Name: "disk", DirStats: b.Stats()}}, true
	}
	return nil, false
}

// LoadCached returns the channel for key only if it is already available
// without solving and without leaving the machine: a resident completed
// entry, or a hit in the backing's local tiers. It never starts a solve,
// never joins a flight, and never performs a remote fetch, so peers can ask
// "do you already have this?" (hedged snapshot fetches) at pure lookup cost.
// The loaded value is not installed in the store: serving a snapshot to a
// peer should not perturb this replica's resident set or LRU order.
func (s *Store) LoadCached(ctx context.Context, key Key) (any, bool) {
	if v, ok := s.Get(key); ok {
		return v, true
	}
	switch b := s.backing.(type) {
	case nil:
		return nil, false
	case LocalLoader:
		return b.LoadLocal(ctx, key)
	default:
		return b.Load(ctx, key)
	}
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Inflight:      s.inflight.Load(),
		Entries:       s.entries.Load(),
		Cost:          s.cost.Load(),
		Evictions:     s.evictions.Load(),
		BackingHits:   s.backingHits.Load(),
		BackingWrites: s.backingWrites.Load(),
		Abandoned:     s.abandoned.Load(),
		Canceled:      s.canceled.Load(),
		Queued:        s.queued.Load(),
		Rejected:      s.rejected.Load(),
	}
}

// MaxSolves returns the configured solve-concurrency bound (0 = unbounded).
func (s *Store) MaxSolves() int {
	if s.solveSem == nil {
		return 0
	}
	return cap(s.solveSem)
}
