package channel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitForQueued polls the store until exactly want solves are parked in the
// admission queue (or the deadline passes).
func waitForQueued(t *testing.T, s *Store, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().Queued == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %d (stats %+v)", want, s.Stats())
}

// waitForInflight polls the store until want solves are executing.
func waitForInflight(t *testing.T, s *Store, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().Inflight == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("inflight never reached %d (stats %+v)", want, s.Stats())
}

// TestAdmissionQueueFullRejects drives the three admission states end to end:
// a running solve holds the single slot, a second miss parks in the bounded
// queue, and a third is rejected immediately with ErrSolveOverload. Releasing
// the first solve admits the queued one, which completes and is cached.
func TestAdmissionQueueFullRejects(t *testing.T) {
	s := New(Options{MaxSolves: 1, SolveQueue: 1})
	release := make(chan struct{})
	keyA := NewKey("adm", 0, 0, 1, 0, 1)
	keyB := NewKey("adm", 0, 1, 1, 0, 1)
	keyC := NewKey("adm", 0, 2, 1, 0, 1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := s.GetOrCompute(keyA, func() (any, error) {
			<-release
			return "a", nil
		})
		if err != nil || v != "a" {
			t.Errorf("solve A: got (%v, %v)", v, err)
		}
	}()
	// Wait until A actually occupies the solve slot before issuing B.
	waitForInflight(t, s, 1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := s.GetOrCompute(keyB, func() (any, error) { return "b", nil })
		if err != nil || v != "b" {
			t.Errorf("solve B: got (%v, %v)", v, err)
		}
	}()
	waitForQueued(t, s, 1)

	// Slot busy, queue full: C must be shed immediately, not parked.
	start := time.Now()
	if _, _, err := s.GetOrCompute(keyC, func() (any, error) { return "c", nil }); !errors.Is(err, ErrSolveOverload) {
		t.Fatalf("overloaded miss: got err %v, want ErrSolveOverload", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("rejection took %v, want immediate", d)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}

	// A rejected key left no residue: the same key succeeds once load drops.
	close(release)
	wg.Wait()
	if v, ok := s.Get(keyB); !ok || v != "b" {
		t.Errorf("queued solve B not cached: (%v, %v)", v, ok)
	}
	if v, _, err := s.GetOrCompute(keyC, func() (any, error) { return "c", nil }); err != nil || v != "c" {
		t.Errorf("post-overload solve C: got (%v, %v)", v, err)
	}
	if st := s.Stats(); st.Queued != 0 {
		t.Errorf("Queued = %d after drain, want 0", st.Queued)
	}
}

// TestAdmissionJoinBypassesQueue verifies that singleflight deduplication
// happens before admission control: a caller for a key whose solve is already
// in flight joins that flight even when the slot and queue are both full.
func TestAdmissionJoinBypassesQueue(t *testing.T) {
	s := New(Options{MaxSolves: 1, SolveQueue: 1})
	release := make(chan struct{})
	keyA := NewKey("adm", 1, 0, 1, 0, 1)
	keyB := NewKey("adm", 1, 1, 1, 0, 1)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := s.GetOrCompute(keyA, func() (any, error) {
				<-release
				return "a", nil
			})
			if err != nil || v != "a" {
				t.Errorf("join A: got (%v, %v)", v, err)
			}
		}()
		if i == 0 {
			waitForInflight(t, s, 1) // A must hold the slot before B queues
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := s.GetOrCompute(keyB, func() (any, error) { return "b", nil }); err != nil {
			t.Errorf("queued B: %v", err)
		}
	}()
	waitForQueued(t, s, 1)

	// Late joiner for the in-flight key A: must wait on the flight, never be
	// rejected — issue it concurrently and release the solve.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, hit, err := s.GetOrCompute(keyA, func() (any, error) { return "wrong", nil })
		if err != nil || v != "a" || !hit {
			t.Errorf("late join A: got (%v, hit=%v, %v)", v, hit, err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the joiner reach the flight
	close(release)
	wg.Wait()
	if st := s.Stats(); st.Rejected != 0 {
		t.Errorf("Rejected = %d, want 0 (joiners are never shed)", st.Rejected)
	}
}

// TestAdmissionQueuedSolveAbandoned cancels the only waiter of a queued solve:
// the parked flight must abort without ever consuming a solve slot, and a
// later call for the same key must start fresh and succeed.
func TestAdmissionQueuedSolveAbandoned(t *testing.T) {
	s := New(Options{MaxSolves: 1, SolveQueue: 1})
	release := make(chan struct{})
	keyA := NewKey("adm", 2, 0, 1, 0, 1)
	keyB := NewKey("adm", 2, 1, 1, 0, 1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = s.GetOrCompute(keyA, func() (any, error) {
			<-release
			return "a", nil
		})
	}()
	waitForInflight(t, s, 1) // A must hold the slot before B queues
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrComputeCtx(ctx, keyB, func(context.Context) (any, error) { return "b", nil })
		errCh <- err
	}()
	waitForQueued(t, s, 1)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned queued solve: got %v, want context.Canceled", err)
	}
	waitForQueued(t, s, 0)

	close(release)
	wg.Wait()
	if v, _, err := s.GetOrCompute(keyB, func() (any, error) { return "b2", nil }); err != nil || v != "b2" {
		t.Errorf("retry after abandoned queue slot: got (%v, %v)", v, err)
	}
}

// TestAdmissionNoGoroutinePileup floods an overloaded store with distinct-key
// misses and asserts the shed path neither parks callers nor leaks solve
// goroutines: exactly MaxSolves+SolveQueue flights are committed, everything
// else returns ErrSolveOverload, and the goroutine count stays bounded by the
// admission limits rather than the offered load.
func TestAdmissionNoGoroutinePileup(t *testing.T) {
	const (
		maxSolves = 2
		queue     = 2
		offered   = 300
	)
	s := New(Options{MaxSolves: maxSolves, SolveQueue: queue})
	release := make(chan struct{})
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, rejected := 0, 0
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := NewKey("pileup", 0, i, 1, 0, 1)
			v, _, err := s.GetOrCompute(key, func() (any, error) {
				<-release
				return i, nil
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case errors.Is(err, ErrSolveOverload):
				rejected++
			case err == nil && v == i:
				admitted++
			default:
				t.Errorf("key %d: unexpected (%v, %v)", i, v, err)
			}
		}(i)
	}

	// Every goroutine beyond the committed flights and their callers must
	// have been rejected and returned; poll until the count settles.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := rejected == offered-maxSolves-queue
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Still alive: the committed flights (solving or queued) and their
	// blocked callers, plus test scaffolding slack.
	if n := runtime.NumGoroutine(); n > baseline+2*(maxSolves+queue)+8 {
		t.Errorf("goroutine pile-up: %d alive, baseline %d, admission bound %d",
			n, baseline, maxSolves+queue)
	}

	close(release)
	wg.Wait()
	if admitted != maxSolves+queue {
		t.Errorf("admitted = %d, want %d", admitted, maxSolves+queue)
	}
	if rejected != offered-maxSolves-queue {
		t.Errorf("rejected = %d, want %d", rejected, offered-maxSolves-queue)
	}
	if st := s.Stats(); st.Rejected != int64(rejected) || st.Queued != 0 {
		t.Errorf("stats %+v inconsistent with rejected=%d", st, rejected)
	}
}

// TestAdmissionDefaultQueueDepth checks the SolveQueue=0 default (MaxSolves)
// and that MaxSolves() reports the configured bound.
func TestAdmissionDefaultQueueDepth(t *testing.T) {
	s := New(Options{MaxSolves: 3})
	if got := s.MaxSolves(); got != 3 {
		t.Errorf("MaxSolves() = %d, want 3", got)
	}
	if s.queueCap != 3 {
		t.Errorf("default queueCap = %d, want MaxSolves", s.queueCap)
	}
	if s2 := New(Options{}); s2.MaxSolves() != 0 {
		t.Errorf("unbounded store reports MaxSolves %d", s2.MaxSolves())
	}
	// Unbounded stores never reject.
	for i := 0; i < 64; i++ {
		key := NewKey("unbounded", 0, i, 1, 0, 1)
		if _, _, err := New(Options{}).GetOrCompute(key, func() (any, error) { return i, nil }); err != nil {
			t.Fatalf("unbounded store rejected: %v", err)
		}
	}
}
