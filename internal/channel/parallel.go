package channel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option to an effective parallelism degree:
// n <= 0 selects one worker per CPU minus the convention that 0 means
// "serial" (historical behaviour); concretely 0 and 1 mean serial, n > 1
// means up to n workers, and n < 0 means runtime.NumCPU().
func Workers(n int) int {
	switch {
	case n < 0:
		return runtime.NumCPU()
	case n <= 1:
		return 1
	default:
		return n
	}
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the first error encountered (by completion order). Remaining
// iterations are skipped once an error is observed, but iterations already
// in flight run to completion. workers <= 1 runs inline in submission order.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		once   sync.Once
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					once.Do(func() { first = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// ForEachCtx is ForEach with cancellation: every iteration first polls ctx,
// so a cancel drains the pool promptly — workers stop picking up new indices
// as soon as one observes the canceled context, and the ctx error is
// returned. When ctx is never canceled the iteration pattern (and, for
// callers whose fn writes to per-index destinations, the output) is
// identical to ForEach.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx.Done() == nil {
		// Background-like context: cancellation is impossible, skip the
		// per-iteration poll entirely.
		return ForEach(workers, n, fn)
	}
	return ForEach(workers, n, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(i)
	})
}
