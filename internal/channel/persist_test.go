package channel

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// stringCodec is a trivial Codec over string values: payload = raw bytes
// prefixed with a marker so Decode can reject foreign payloads.
type stringCodec struct{}

func (stringCodec) Encode(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("stringCodec: %T", v)
	}
	return append([]byte("S:"), s...), nil
}

func (stringCodec) Decode(_ context.Context, data []byte) (any, error) {
	if len(data) < 2 || string(data[:2]) != "S:" {
		return nil, fmt.Errorf("stringCodec: bad payload")
	}
	return string(data[2:]), nil
}

func testKey(cell int) Key {
	return NewKey("test", 1, cell, 0.5, 0, 0xfeedface).WithVariant(7)
}

func TestSnapshotRoundTrip(t *testing.T) {
	key := testKey(3)
	payload := []byte("the quick brown fox")
	img := Snapshot(key, payload)
	got, err := Load(img, key)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round-trip: got %q want %q", got, payload)
	}
	if _, err := Load(img, testKey(4)); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("wrong-key Load: got %v, want ErrSnapshot", err)
	}
}

func TestSnapshotEmptyNamespaceAndPayload(t *testing.T) {
	key := Key{}
	img := Snapshot(key, nil)
	got, err := Load(img, key)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty payload, got %d bytes", len(got))
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	key := testKey(1)
	img := Snapshot(key, []byte("payload-bytes"))

	cases := map[string]func([]byte) []byte{
		"truncated-header": func(b []byte) []byte { return b[:8] },
		"truncated-tail":   func(b []byte) []byte { return b[:len(b)-3] },
		"empty":            func(b []byte) []byte { return nil },
		"bad-magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		},
		"wrong-version": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[4:], SnapshotVersion+1)
			return c
		},
		"flipped-payload-bit": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-10] ^= 0x01
			return c
		},
		"flipped-key-bit": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[20] ^= 0x01
			return c
		},
		"flipped-crc": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x01
			return c
		},
	}
	for name, mutate := range cases {
		if _, err := Load(mutate(img), key); !errors.Is(err, ErrSnapshot) {
			t.Errorf("%s: got %v, want ErrSnapshot", name, err)
		}
	}
}

func TestDirCacheRoundTrip(t *testing.T) {
	dc, err := NewDirCache(t.TempDir(), stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(5)
	if _, ok := dc.Load(context.Background(), key); ok {
		t.Fatal("Load hit on empty cache")
	}
	dc.Store(key, "hello channels")
	v, ok := dc.Load(context.Background(), key)
	if !ok || v.(string) != "hello channels" {
		t.Fatalf("Load after Store: %v, %v", v, ok)
	}
	st := dc.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Loads != 2 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	// The file lands where Path says, inside the namespace subdirectory.
	if _, err := os.Stat(dc.Path(key)); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	if !strings.HasPrefix(dc.Path(key), filepath.Join(dc.Dir(), "test")) {
		t.Fatalf("path %q not under namespace dir", dc.Path(key))
	}
}

func TestDirCacheRejectsTamperedFiles(t *testing.T) {
	dc, err := NewDirCache(t.TempDir(), stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(6)
	dc.Store(key, "pristine")

	path := dc.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte: CRC check must reject, Load must miss.
	data[len(data)-8] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := dc.Load(context.Background(), key); ok {
		t.Fatal("Load accepted a corrupted snapshot")
	}
	if st := dc.Stats(); st.Errors == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
}

func TestDirCacheFullKeyCheckBeatsFilenameHash(t *testing.T) {
	dc, err := NewDirCache(t.TempDir(), stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	keyA, keyB := testKey(10), testKey(11)
	dc.Store(keyA, "channel A")
	// Simulate a filename-hash collision: put A's snapshot at B's path. The
	// embedded full key must reject it even though the file parses fine.
	if err := os.MkdirAll(filepath.Dir(dc.Path(keyB)), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dc.Path(keyA))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dc.Path(keyB), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := dc.Load(context.Background(), keyB); ok {
		t.Fatal("Load trusted a snapshot whose embedded key differs")
	}
	if v, ok := dc.Load(context.Background(), keyA); !ok || v.(string) != "channel A" {
		t.Fatalf("original key: %v, %v", v, ok)
	}
}

func TestStoreBackingReadThroughAndWriteBehind(t *testing.T) {
	dir := t.TempDir()
	dc, err := NewDirCache(dir, stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	solves := 0
	s := New(Options{Backing: dc})
	key := testKey(20)
	solve := func() (any, error) { solves++; return "solved-value", nil }

	v, hit, err := s.GetOrCompute(key, solve)
	if err != nil || hit || v.(string) != "solved-value" {
		t.Fatalf("first call: %v %v %v", v, hit, err)
	}
	s.Sync()
	st := s.Stats()
	if st.Misses != 1 || st.BackingWrites != 1 || st.BackingHits != 0 {
		t.Fatalf("after solve: %+v", st)
	}

	// A second store over the same directory loads instead of solving.
	dc2, err := NewDirCache(dir, stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{Backing: dc2})
	v, hit, err = s2.GetOrCompute(key, func() (any, error) {
		t.Error("solve called on warm restart")
		return nil, nil
	})
	if err != nil || !hit || v.(string) != "solved-value" {
		t.Fatalf("warm call: %v %v %v", v, hit, err)
	}
	st = s2.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.BackingHits != 1 || st.BackingWrites != 0 {
		t.Fatalf("warm stats: %+v", st)
	}
	if solves != 1 {
		t.Fatalf("solves = %d", solves)
	}
}

func TestStoreBackingCorruptFallsBackToSolve(t *testing.T) {
	dir := t.TempDir()
	dc, err := NewDirCache(dir, stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(21)
	dc.Store(key, "good")
	path := dc.Path(key)
	if err := os.WriteFile(path, []byte("garbage, not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Options{Backing: dc})
	v, hit, err := s.GetOrCompute(key, func() (any, error) { return "re-solved", nil })
	if err != nil || hit || v.(string) != "re-solved" {
		t.Fatalf("fallback: %v %v %v", v, hit, err)
	}
	s.Sync()
	// The write-behind overwrote the garbage with a valid snapshot.
	if v, ok := dc.Load(context.Background(), key); !ok || v.(string) != "re-solved" {
		t.Fatalf("repaired snapshot: %v %v", v, ok)
	}
}

func TestStoreEvictedEntryReloadsFromDisk(t *testing.T) {
	dir := t.TempDir()
	dc, err := NewDirCache(dir, stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	// Each entry costs 1; capacity 2 forces eviction on the third insert.
	s := New(Options{MaxCost: 2, Backing: dc})
	for cell := 0; cell < 3; cell++ {
		cell := cell
		if _, _, err := s.GetOrCompute(testKey(cell), func() (any, error) {
			return fmt.Sprintf("value-%d", cell), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Sync()
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("no eviction at MaxCost 2: %+v", st)
	}
	// Every key — including the evicted one — now resolves without a solve.
	for cell := 0; cell < 3; cell++ {
		v, _, err := s.GetOrCompute(testKey(cell), func() (any, error) {
			return nil, fmt.Errorf("unexpected solve for cell %d", cell)
		})
		if err != nil {
			t.Fatal(err)
		}
		if v.(string) != fmt.Sprintf("value-%d", cell) {
			t.Fatalf("cell %d: %v", cell, v)
		}
	}
}

// TestDirCacheConcurrentWriters hammers one shared directory from several
// stores and goroutines (run with -race): atomic renames must keep every
// load either a clean miss or a fully consistent snapshot.
func TestDirCacheConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	const stores, keys, rounds = 4, 8, 10
	var wg sync.WaitGroup
	for si := 0; si < stores; si++ {
		si := si
		wg.Add(1)
		go func() {
			defer wg.Done()
			dc, err := NewDirCache(dir, stringCodec{})
			if err != nil {
				t.Error(err)
				return
			}
			s := New(Options{Backing: dc})
			for r := 0; r < rounds; r++ {
				for cell := 0; cell < keys; cell++ {
					cell := cell
					v, _, err := s.GetOrCompute(testKey(cell), func() (any, error) {
						return fmt.Sprintf("value-%d", cell), nil
					})
					if err != nil {
						t.Errorf("store %d: %v", si, err)
						return
					}
					if v.(string) != fmt.Sprintf("value-%d", cell) {
						t.Errorf("store %d cell %d: got %v", si, cell, v)
						return
					}
				}
			}
			s.Sync()
		}()
	}
	wg.Wait()

	// Every surviving snapshot file must verify.
	dc, err := NewDirCache(dir, stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < keys; cell++ {
		if v, ok := dc.Load(context.Background(), testKey(cell)); !ok || v.(string) != fmt.Sprintf("value-%d", cell) {
			t.Fatalf("cell %d after concurrent writers: %v %v", cell, v, ok)
		}
	}
	// No temp files leaked.
	entries, err := os.ReadDir(filepath.Join(dir, "test"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leaked temp file %s", e.Name())
		}
	}
}

func TestNewDirCacheValidation(t *testing.T) {
	if _, err := NewDirCache(t.TempDir(), nil); err == nil {
		t.Fatal("nil codec accepted")
	}
	// A directory that cannot be created fails construction, not use.
	bad := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirCache(filepath.Join(bad, "sub"), stringCodec{}); err == nil {
		t.Fatal("uncreatable dir accepted")
	}
}

func TestKeyVariantSeparation(t *testing.T) {
	s := New(Options{})
	base := NewKey("v", 0, 0, 1.0, 0, 1)
	va := base.WithVariant(1)
	if base == va {
		t.Fatal("WithVariant did not change the key")
	}
	if _, _, err := s.GetOrCompute(base, func() (any, error) { return "exact", nil }); err != nil {
		t.Fatal(err)
	}
	v, hit, err := s.GetOrCompute(va, func() (any, error) { return "reduced", nil })
	if err != nil || hit || v.(string) != "reduced" {
		t.Fatalf("variant key collided with base: %v %v %v", v, hit, err)
	}
}

// rewriteVersion patches a snapshot image to carry a different format
// version and recomputes the trailing CRC, producing the structurally sound
// foreign-version file a rollout leaves behind (e.g. a v1 cache directory
// read by a v2 process).
func rewriteVersion(img []byte, version uint32) []byte {
	c := append([]byte(nil), img...)
	binary.LittleEndian.PutUint32(c[4:], version)
	body := c[:len(c)-4]
	binary.LittleEndian.PutUint32(c[len(c)-4:], crc32.ChecksumIEEE(body))
	return c
}

func TestLoadForeignVersionIsVersionError(t *testing.T) {
	key := testKey(30)
	v1 := rewriteVersion(Snapshot(key, []byte("S:old payload")), SnapshotVersion-1)
	_, err := Load(v1, key)
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("got %v, want ErrSnapshotVersion", err)
	}
	// ErrSnapshotVersion wraps ErrSnapshot, so version-agnostic callers
	// that match the broad sentinel keep working.
	if !errors.Is(err, ErrSnapshot) {
		t.Fatalf("ErrSnapshotVersion does not wrap ErrSnapshot: %v", err)
	}
}

func TestDirCacheForeignVersionCountsAsVersionMiss(t *testing.T) {
	dc, err := NewDirCache(t.TempDir(), stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(31)
	dc.Store(key, "current")
	data, err := os.ReadFile(dc.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the file as a valid frame of the previous format version.
	if err := os.WriteFile(dc.Path(key), rewriteVersion(data, SnapshotVersion-1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := dc.Load(context.Background(), key); ok {
		t.Fatal("Load accepted a foreign-version snapshot")
	}
	st := dc.Stats()
	if st.VersionMisses != 1 {
		t.Fatalf("VersionMisses = %d, want 1 (stats %+v)", st.VersionMisses, st)
	}
	if st.Errors != 0 {
		t.Fatalf("foreign version counted as error: %+v", st)
	}
	// The store path: a read-through miss falls back to solving and the
	// write-behind overwrites the file in the current format.
	s := New(Options{Backing: dc})
	v, hit, err := s.GetOrCompute(key, func() (any, error) { return "re-solved", nil })
	if err != nil || hit || v.(string) != "re-solved" {
		t.Fatalf("fallback solve: %v %v %v", v, hit, err)
	}
	s.Sync()
	if v, ok := dc.Load(context.Background(), key); !ok || v.(string) != "re-solved" {
		t.Fatalf("migrated snapshot: %v %v", v, ok)
	}
}
