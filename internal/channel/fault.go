// FaultBacking: a fault-injection Backing test double shared by the
// internal/channel and internal/fabric test suites. It keeps framed
// snapshots in memory and serves them through the same verification path a
// real tier uses (frame check, key check, codec decode), while injecting
// configurable failures — dropped lookups, artificial latency, and
// truncated- or flipped-byte payload corruption — so tests can prove that a
// flapping backing never surfaces a wrong channel, only misses.
//
// It lives in the main package (not a _test.go file) because the fabric's
// tests need it too and internal/channel's own tests are in-package; it has
// no dependencies beyond the snapshot codec machinery already here.
package channel

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"time"
)

// FaultBacking is a concurrency-safe in-memory Backing with fault injection.
// Configure the exported knobs before sharing it across goroutines; they are
// read without synchronization afterwards.
type FaultBacking struct {
	codec Codec

	// DropRate is the probability that a Load pretends the snapshot is
	// absent even though it exists (a flapping or lossy tier).
	DropRate float64
	// CorruptRate is the probability that a Load (or Frame) serves a
	// corrupted copy of the snapshot — truncated or with a flipped byte —
	// which must fail frame verification and read as a miss, never as a
	// wrong channel.
	CorruptRate float64
	// Latency, when set, is the per-Load artificial delay, honoring the
	// load context's cancellation.
	Latency time.Duration
	// FailStores makes Store drop writes silently (write-behind loss).
	FailStores bool

	mu    sync.Mutex
	rng   *rand.Rand
	data  map[Key][]byte
	stats struct {
		DirStats
		dropped   int64
		corrupted int64
	}
}

// NewFaultBacking builds an empty FaultBacking with a deterministic fault
// stream seeded by seed.
func NewFaultBacking(codec Codec, seed uint64) *FaultBacking {
	return &FaultBacking{
		codec: codec,
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		data:  make(map[Key][]byte),
	}
}

// Put stores a pristine framed snapshot for key, bypassing fault injection
// (test setup) and counting nothing.
func (f *FaultBacking) Put(key Key, v any) error {
	payload, err := f.codec.Encode(v)
	if err != nil {
		return err
	}
	frame := Snapshot(key, payload)
	f.mu.Lock()
	f.data[key] = frame
	f.mu.Unlock()
	return nil
}

// Frame returns the raw snapshot bytes for key with fault injection applied:
// absent key or an injected drop reads as ok=false, and an injected
// corruption returns damaged bytes that must fail Load verification. HTTP
// tests serve these bytes directly to exercise a peer's receive-side
// validation.
func (f *FaultBacking) Frame(key Key) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	frame, ok := f.data[key]
	if !ok {
		return nil, false
	}
	if f.DropRate > 0 && f.rng.Float64() < f.DropRate {
		f.stats.dropped++
		return nil, false
	}
	if f.CorruptRate > 0 && f.rng.Float64() < f.CorruptRate {
		f.stats.corrupted++
		return f.corruptLocked(frame), true
	}
	return append([]byte(nil), frame...), true
}

// corruptLocked returns a damaged copy of frame: truncated at a random
// offset, or with one random byte flipped. Callers hold f.mu.
func (f *FaultBacking) corruptLocked(frame []byte) []byte {
	if f.rng.IntN(2) == 0 && len(frame) > 1 {
		return append([]byte(nil), frame[:f.rng.IntN(len(frame)-1)+1]...)
	}
	out := append([]byte(nil), frame...)
	out[f.rng.IntN(len(out))] ^= 1 << uint(f.rng.IntN(8))
	return out
}

// Load implements Backing through the full verification path: injected
// latency, fault-filtered frame fetch, frame verification against key, codec
// decode. Every injected fault degrades to a miss.
func (f *FaultBacking) Load(ctx context.Context, key Key) (any, bool) {
	if f.Latency > 0 {
		t := time.NewTimer(f.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, false
		}
	}
	f.mu.Lock()
	f.stats.Loads++
	f.mu.Unlock()
	frame, ok := f.Frame(key)
	if !ok {
		return nil, false
	}
	payload, err := Load(frame, key)
	if err != nil {
		if errors.Is(err, ErrSnapshotVersion) {
			f.count(func(s *DirStats) { s.VersionMisses++ })
		} else {
			f.count(func(s *DirStats) { s.Errors++ })
		}
		return nil, false
	}
	v, err := f.codec.Decode(ctx, payload)
	if err != nil {
		f.count(func(s *DirStats) { s.Errors++ })
		return nil, false
	}
	f.count(func(s *DirStats) { s.Hits++ })
	return v, true
}

// Store implements Backing; writes are dropped when FailStores is set.
func (f *FaultBacking) Store(key Key, v any) {
	if f.FailStores {
		f.count(func(s *DirStats) { s.WriteErrors++ })
		return
	}
	if err := f.Put(key, v); err != nil {
		f.count(func(s *DirStats) { s.WriteErrors++ })
		return
	}
	f.count(func(s *DirStats) { s.Writes++ })
}

func (f *FaultBacking) count(fn func(*DirStats)) {
	f.mu.Lock()
	fn(&f.stats.DirStats)
	f.mu.Unlock()
}

// Stats returns the DirCache-shaped counters.
func (f *FaultBacking) Stats() DirStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats.DirStats
}

// FaultCounts reports how many faults were actually injected, so tests can
// assert the fault path was exercised rather than silently skipped.
func (f *FaultBacking) FaultCounts() (dropped, corrupted int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats.dropped, f.stats.corrupted
}

// Len returns the number of stored snapshots.
func (f *FaultBacking) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.data)
}

var _ Backing = (*FaultBacking)(nil)
