package channel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func key(i int) Key { return NewKey("test", 0, i, 0.5, 1, 42) }

func TestGetOrComputeBasic(t *testing.T) {
	s := New(Options{})
	v, hit, err := s.GetOrCompute(key(1), func() (any, error) { return "a", nil })
	if err != nil || hit || v.(string) != "a" {
		t.Fatalf("first call: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = s.GetOrCompute(key(1), func() (any, error) {
		t.Error("solve called on warm key")
		return nil, nil
	})
	if err != nil || !hit || v.(string) != "a" {
		t.Fatalf("second call: v=%v hit=%v err=%v", v, hit, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats %+v want hits=1 misses=1 entries=1", st)
	}
}

func TestKeySeparation(t *testing.T) {
	s := New(Options{})
	mk := func(k Key, v string) {
		got, _, err := s.GetOrCompute(k, func() (any, error) { return v, nil })
		if err != nil || got.(string) != v {
			t.Fatalf("key %+v: got %v err %v", k, got, err)
		}
	}
	base := NewKey("msm", 1, 2, 0.5, 1, 99)
	mk(base, "base")
	for name, k := range map[string]Key{
		"namespace": NewKey("quad", 1, 2, 0.5, 1, 99),
		"level":     NewKey("msm", 2, 2, 0.5, 1, 99),
		"cell":      NewKey("msm", 1, 3, 0.5, 1, 99),
		"eps":       NewKey("msm", 1, 2, 0.25, 1, 99),
		"metric":    NewKey("msm", 1, 2, 0.5, 2, 99),
		"prior":     NewKey("msm", 1, 2, 0.5, 1, 100),
	} {
		mk(k, "variant-"+name)
	}
	if got := s.Len(); got != 7 {
		t.Errorf("Len=%d want 7 distinct entries", got)
	}
	if v, ok := s.Get(base); !ok || v.(string) != "base" {
		t.Errorf("base key clobbered: %v %v", v, ok)
	}
}

func TestSingleflight(t *testing.T) {
	s := New(Options{})
	const goroutines = 32
	var solves atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := s.GetOrCompute(key(7), func() (any, error) {
				solves.Add(1)
				<-release // hold the flight open so everyone joins it
				return 123, nil
			})
			if err != nil || v.(int) != 123 {
				t.Errorf("v=%v err=%v", v, err)
			}
		}()
	}
	// Wait for the one flight to start, then release it.
	for s.Stats().Inflight == 0 {
	}
	close(release)
	wg.Wait()
	if n := solves.Load(); n != 1 {
		t.Errorf("%d solves for one key, want 1 (singleflight)", n)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Errorf("stats %+v want misses=1 hits=%d", st, goroutines-1)
	}
}

func TestErrorNotCached(t *testing.T) {
	s := New(Options{})
	boom := errors.New("boom")
	if _, _, err := s.GetOrCompute(key(1), func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err=%v want boom", err)
	}
	if s.Len() != 0 {
		t.Fatal("failed solve left an entry behind")
	}
	v, _, err := s.GetOrCompute(key(1), func() (any, error) { return "ok", nil })
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry after error: v=%v err=%v", v, err)
	}
}

func TestCostAwareEviction(t *testing.T) {
	s := New(Options{
		MaxCost: 10,
		CostFn:  func(v any) int64 { return int64(v.(int)) },
	})
	for i := 0; i < 5; i++ {
		if _, _, err := s.GetOrCompute(key(i), func() (any, error) { return 3, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Cost > 10 {
		t.Errorf("resident cost %d exceeds MaxCost 10", st.Cost)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite cost pressure")
	}
	// The most recent key must have survived.
	if _, ok := s.Get(key(4)); !ok {
		t.Error("most recently inserted entry was evicted")
	}
}

func TestClear(t *testing.T) {
	s := New(Options{})
	for i := 0; i < 10; i++ {
		s.GetOrCompute(key(i), func() (any, error) { return i, nil })
	}
	s.Clear()
	if s.Len() != 0 {
		t.Errorf("Len=%d after Clear", s.Len())
	}
	if st := s.Stats(); st.Entries != 0 || st.Cost != 0 {
		t.Errorf("stats after Clear: %+v", st)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	s := New(Options{})
	const keys = 20
	var solves atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key((g + i) % keys)
				v, _, err := s.GetOrCompute(k, func() (any, error) {
					solves.Add(1)
					return fmt.Sprintf("v%d", (g+i)%keys), nil
				})
				want := fmt.Sprintf("v%d", (g+i)%keys)
				if err != nil || v.(string) != want {
					t.Errorf("got %v want %v err %v", v, want, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := solves.Load(); n != keys {
		t.Errorf("%d solves for %d keys", n, keys)
	}
}

func TestForEach(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		var sum atomic.Int64
		if err := ForEach(workers, 100, func(i int) error {
			sum.Add(int64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum.Load() != 4950 {
			t.Errorf("workers=%d sum=%d want 4950", workers, sum.Load())
		}
	}
	boom := errors.New("boom")
	err := ForEach(8, 1000, func(i int) error {
		if i == 37 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err=%v want boom", err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) != 1 || Workers(1) != 1 || Workers(7) != 7 {
		t.Error("Workers mapping broken")
	}
	if Workers(-1) < 1 {
		t.Error("Workers(-1) must be >= 1")
	}
}
