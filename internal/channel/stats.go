// Backing introspection surfaces. PR 4's single DirCache grew into the
// fabric's tiered chains (internal/fabric), so the store can no longer
// assume its Backing is one disk cache: these small optional interfaces let
// a Backing report per-tier counters, expose which tier is the durable disk
// one (so the legacy /v1/stats disk_errors / version_misses fields keep
// meaning "the disk"), and answer cheap local-only lookups that must never
// trigger a solve or a network fetch.
package channel

import (
	"context"
	"errors"
)

// TierStats is one tier's counters inside a composite Backing, identified by
// a short stable name ("mem", "disk", "remote").
type TierStats struct {
	Name string
	DirStats
	// LoadNanos is the cumulative wall-clock time spent inside this tier's
	// Load calls, letting per-tier latency be derived at scrape time.
	LoadNanos int64
}

// TierStatser is implemented by composite Backings (the fabric's
// TieredBacking) that can break their counters down per tier, ordered
// fastest first.
type TierStatser interface {
	TierStats() []TierStats
}

// DiskStatser is implemented by Backings that contain (or are) a durable
// local disk tier and can surface its counters specifically. ok=false means
// the backing has no disk tier (e.g. a mem→remote chain).
type DiskStatser interface {
	DiskStats() (DirStats, bool)
}

// LocalLoader is implemented by Backings that can attempt a lookup against
// their local tiers only — in-process memory or the local disk — without any
// network fetch and without solving. Store.LoadCached uses it so "serve only
// if already cached" requests (hedged snapshot fetches from peers) stay
// cheap and side-effect-free.
type LocalLoader interface {
	LoadLocal(ctx context.Context, key Key) (any, bool)
}

// ErrUnknownKey reports a channel key that does not belong to the mechanism
// asked to serve it: wrong namespace, level out of range, epsilon/prior/
// variant mismatch. Peers treat it as a definitive miss (no retry).
var ErrUnknownKey = errors.New("channel: key does not belong to this mechanism")

// ErrNotCached reports a valid key whose channel is not currently cached
// locally, returned by solve-free lookups (hedged fetches ask for cached
// channels only, so a hedge can never trigger a duplicate LP solve).
var ErrNotCached = errors.New("channel: not cached locally")
