// Package session owns durable per-user serving state: the rolling-window
// privacy-budget ledger enforcing the composability accounting of §2.2, the
// last-release memo the predictive trace mechanism re-releases while a user
// is stationary, and the temporal-composition counters behind /v1/stats.
//
// The store is sharded by an FNV-1a hash of the user ID with one mutex per
// shard, so millions of users contend only within their shard. When opened
// with a directory it is crash-safe: every accepted mutation appends an
// absolute-state record to a checksummed journal (see journal.go) which is
// periodically compacted into a snapshot and replayed on startup, so a
// restart never forgets spend and never lets a user over-spend.
package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"geoind/internal/geo"
)

// ErrBudgetExhausted is returned by Spend when a user's window budget cannot
// cover the request. internal/server re-exports this value, so errors.Is and
// direct equality both keep working across the layers.
var ErrBudgetExhausted = errors.New("privacy budget exhausted for this window")

const (
	numShards = 64
	// sweepOps is the per-shard mutation count between opportunistic GC
	// sweeps. A sweep walks one shard's map (1/numShards of the users), so
	// the amortized cost per operation is bounded by users/(numShards*sweepOps).
	sweepOps = 512
)

// Config parameterizes Open.
type Config struct {
	// Limit is the per-window budget each user may spend. Required, > 0.
	Limit float64
	// Window is the rolling accounting window. Required, > 0.
	Window time.Duration
	// Clock overrides time.Now (tests). Nil uses time.Now.
	Clock func() time.Time
	// Dir, when non-empty, enables the durable journal in that directory.
	// Empty means a memory-only store (state dies with the process).
	Dir string
	// SyncEvery is the number of journal records between fsyncs. 1 (the
	// default) syncs every record: a crash loses at most the record being
	// written. Larger values trade bounded loss for throughput.
	SyncEvery int
	// CompactEvery triggers snapshot compaction after this many journal
	// records. Defaults to DefaultCompactEvery.
	CompactEvery int
	// Owns reports whether this replica owns a user. Non-owned users are
	// served from memory but never journaled — in a fabric each replica
	// persists only the users the rendezvous hash assigns to it. Nil means
	// own everything.
	Owns func(user string) bool
}

// State is one user's exported session state (Export/Import and snapshots).
type State struct {
	User        string
	Seq         uint64
	Spent       float64
	WindowStart time.Time
	HasMemo     bool
	Memo        geo.Point
}

type entry struct {
	seq         uint64
	spent       float64
	windowStart time.Time
	hasMemo     bool
	memo        geo.Point
}

type shard struct {
	mu    sync.Mutex
	users map[string]*entry
	ops   int // mutations since the last opportunistic sweep
}

// Store is the sharded session store. The zero value is not usable; call
// Open.
type Store struct {
	limit  float64
	window time.Duration
	now    func() time.Time
	owns   func(string) bool
	j      *journal // nil for memory-only stores

	// seq orders mutations across the whole store. Journal replay applies a
	// record only if its seq is newer than the state already loaded, which
	// makes snapshot-vs-journal overlap commutative regardless of the order
	// compaction interleaved with live appends.
	seq    atomic.Uint64
	shards [numShards]shard

	evicted    atomic.Int64
	spends     atomic.Int64
	refunds    atomic.Int64
	memoReads  atomic.Int64
	memoHits   atomic.Int64
	memoWrites atomic.Int64
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Users      int           `json:"users"`
	Evicted    int64         `json:"evicted"`
	Spends     int64         `json:"spends"`
	Refunds    int64         `json:"refunds"`
	MemoReads  int64         `json:"memo_reads"`
	MemoHits   int64         `json:"memo_hits"`
	MemoWrites int64         `json:"memo_writes"`
	Journal    *JournalStats `json:"journal,omitempty"`
}

// Open creates a session store. With cfg.Dir set it replays the journal in
// that directory (snapshot, then rotated and current journal segments),
// sweeps stale entries, and compacts so the journal starts the run empty.
func Open(cfg Config) (*Store, error) {
	if !(cfg.Limit > 0) {
		return nil, fmt.Errorf("session: limit %g must be positive", cfg.Limit)
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("session: window %v must be positive", cfg.Window)
	}
	s := &Store{
		limit:  cfg.Limit,
		window: cfg.Window,
		now:    cfg.Clock,
		owns:   cfg.Owns,
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.owns == nil {
		s.owns = func(string) bool { return true }
	}
	for i := range s.shards {
		s.shards[i].users = make(map[string]*entry)
	}
	if cfg.Dir != "" {
		j, states, err := openJournal(cfg)
		if err != nil {
			return nil, err
		}
		s.j = j
		var maxSeq uint64
		for _, st := range states {
			if st.Seq > maxSeq {
				maxSeq = st.Seq
			}
			sh := s.shard(st.User)
			sh.users[st.User] = &entry{
				seq:         st.Seq,
				spent:       st.Spent,
				windowStart: st.WindowStart,
				hasMemo:     st.HasMemo,
				memo:        st.Memo,
			}
		}
		s.seq.Store(maxSeq)
		s.Sweep()
		// Compact immediately so startup replay cost stays bounded: the
		// snapshot now carries everything and both journal segments reset.
		if err := s.j.compact(s.exportOwned); err != nil {
			_ = s.j.close()
			return nil, err
		}
	}
	return s, nil
}

// shard picks the user's shard by FNV-1a over the user ID.
func (s *Store) shard(user string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(user); i++ {
		h ^= uint64(user[i])
		h *= 1099511628211
	}
	return &s.shards[h%numShards]
}

// Limit returns the per-window budget.
func (s *Store) Limit() float64 { return s.limit }

// Window returns the accounting window.
func (s *Store) Window() time.Duration { return s.window }

// entryLocked returns the user's current-window entry, creating it and
// rolling an elapsed window as needed. Caller holds sh.mu; mutating callers
// only — pure reads must not go through here (they would allocate state for
// arbitrary queried IDs).
func (s *Store) entryLocked(sh *shard, user string, now time.Time) *entry {
	e := sh.users[user]
	if e == nil {
		e = &entry{windowStart: now}
		sh.users[user] = e
	} else if now.Sub(e.windowStart) >= s.window {
		e.spent = 0
		e.windowStart = now
	}
	return e
}

// logLocked journals the user's absolute state. Caller holds sh.mu; the
// journal mutex is a leaf below every shard mutex.
func (s *Store) logLocked(user string, e *entry, now time.Time) {
	if s.j == nil || !s.owns(user) {
		return
	}
	s.j.append(record{
		at:          now.UnixNano(),
		seq:         e.seq,
		user:        user,
		spent:       e.spent,
		windowStart: e.windowStart.UnixNano(),
		hasMemo:     e.hasMemo,
		memoX:       e.memo.X,
		memoY:       e.memo.Y,
	})
}

// Spend debits eps from the user's window budget, or returns
// ErrBudgetExhausted (leaving the store unchanged) when the remaining budget
// is insufficient. Accepted spends are journaled before Spend returns, so
// under SyncEvery=1 a crash can never forget a spend it admitted.
func (s *Store) Spend(user string, eps float64) error {
	if !(eps > 0) {
		return fmt.Errorf("session: spend amount %g must be positive", eps)
	}
	sh := s.shard(user)
	sh.mu.Lock()
	now := s.now()
	s.maybeSweepLocked(sh, now)
	e := s.entryLocked(sh, user, now)
	if e.spent+eps > s.limit+1e-12 {
		sh.mu.Unlock()
		return ErrBudgetExhausted
	}
	e.spent += eps
	e.seq = s.seq.Add(1)
	s.logLocked(user, e, now)
	sh.mu.Unlock()
	s.spends.Add(1)
	s.maybeCompact()
	return nil
}

// Refund credits eps back to the user's window budget, clamping at zero
// spend. It undoes a Spend whose report never happened (request canceled,
// deadline exceeded, mechanism failure): the user revealed nothing, so the
// composability accounting of §2.2 owes them the budget back. Refunding
// after the window rolled over is harmless — the fresh window already has
// zero spend and the clamp keeps it there.
func (s *Store) Refund(user string, eps float64) {
	if !(eps > 0) {
		return
	}
	sh := s.shard(user)
	sh.mu.Lock()
	now := s.now()
	e := s.entryLocked(sh, user, now)
	e.spent -= eps
	if e.spent < 0 {
		e.spent = 0
	}
	e.seq = s.seq.Add(1)
	s.logLocked(user, e, now)
	sh.mu.Unlock()
	s.refunds.Add(1)
	s.maybeCompact()
}

// Remaining returns the user's unspent budget in the current window. It is a
// pure read: unknown users and users whose window has elapsed report the
// full limit without any state being created or rolled.
func (s *Store) Remaining(user string) float64 {
	sh := s.shard(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.users[user]
	if e == nil || s.now().Sub(e.windowStart) >= s.window {
		return s.limit
	}
	if r := s.limit - e.spent; r > 0 {
		return r
	}
	return 0
}

// Memo returns the user's last released location, if any. Pure read.
func (s *Store) Memo(user string) (geo.Point, bool) {
	sh := s.shard(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.memoReads.Add(1)
	e := sh.users[user]
	if e == nil || !e.hasMemo {
		return geo.Point{}, false
	}
	s.memoHits.Add(1)
	return e.memo, true
}

// SetMemo records the user's last released location. The memo does not
// expire with the budget window; it is lost only when the whole entry is
// evicted after a long idle period (costing the user one fresh report).
func (s *Store) SetMemo(user string, p geo.Point) {
	sh := s.shard(user)
	sh.mu.Lock()
	now := s.now()
	e := s.entryLocked(sh, user, now)
	e.hasMemo = true
	e.memo = p
	e.seq = s.seq.Add(1)
	s.logLocked(user, e, now)
	sh.mu.Unlock()
	s.memoWrites.Add(1)
	s.maybeCompact()
}

// evictableLocked reports whether an entry is garbage: its window has fully
// elapsed with nothing spent (nothing to remember for admission control), or
// it has been idle for two full windows (stale regardless of last spend —
// the rollover would zero it anyway; a memoized release is also dropped,
// costing that user one fresh report if they ever return).
func (s *Store) evictableLocked(e *entry, now time.Time) bool {
	idle := now.Sub(e.windowStart)
	return (idle >= s.window && e.spent == 0) || idle >= 2*s.window
}

// maybeSweepLocked runs an opportunistic GC sweep of one shard every
// sweepOps mutations. Caller holds sh.mu.
func (s *Store) maybeSweepLocked(sh *shard, now time.Time) {
	sh.ops++
	if sh.ops < sweepOps {
		return
	}
	sh.ops = 0
	s.sweepShardLocked(sh, now)
}

func (s *Store) sweepShardLocked(sh *shard, now time.Time) int {
	n := 0
	for u, e := range sh.users {
		if s.evictableLocked(e, now) {
			delete(sh.users, u)
			n++
		}
	}
	if n > 0 {
		s.evicted.Add(int64(n))
	}
	return n
}

// Sweep evicts all garbage entries across every shard and returns how many
// were dropped. Spend/Refund also sweep opportunistically; Sweep exists for
// deterministic tests and shutdown compaction.
func (s *Store) Sweep() int {
	now := s.now()
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += s.sweepShardLocked(sh, now)
		sh.ops = 0
		sh.mu.Unlock()
	}
	return n
}

// Users returns the number of users with live session entries.
func (s *Store) Users() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.users)
		sh.mu.Unlock()
	}
	return n
}

// Export copies every live entry out of the store. Shards are locked one at
// a time, so the result is per-user consistent (each State is a snapshot of
// that user at some point during the call) — exactly what seq-gated replay
// needs, and what the JSON ledger Save serializes.
func (s *Store) Export() []State {
	out := make([]State, 0, 256)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for u, e := range sh.users {
			out = append(out, State{
				User:        u,
				Seq:         e.seq,
				Spent:       e.spent,
				WindowStart: e.windowStart,
				HasMemo:     e.hasMemo,
				Memo:        e.memo,
			})
		}
		sh.mu.Unlock()
	}
	return out
}

// exportOwned is Export restricted to users this replica owns — what
// snapshot compaction persists (the journal never carries non-owned users,
// so the snapshot must not either).
func (s *Store) exportOwned() []State {
	all := s.Export()
	out := all[:0]
	for _, st := range all {
		if s.owns(st.User) {
			out = append(out, st)
		}
	}
	return out
}

// Replace atomically-per-shard replaces all session state with the given
// entries (ledger Load). Every imported entry is journaled, and durable
// stores then compact synchronously: the pre-import segments still carry
// the replaced users' records and the journal has no tombstone op, so
// without a fresh snapshot a restart would resurrect users absent from the
// import. After Replace returns, the on-disk state reflects exactly the
// imported entries.
func (s *Store) Replace(states []State) error {
	for _, st := range states {
		if st.User == "" {
			return fmt.Errorf("session: import: empty user ID")
		}
		if st.Spent < 0 {
			return fmt.Errorf("session: import: invalid entry for user %q", st.User)
		}
	}
	now := s.now()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.users = make(map[string]*entry)
		sh.mu.Unlock()
	}
	for _, st := range states {
		sh := s.shard(st.User)
		sh.mu.Lock()
		e := &entry{
			spent:       st.Spent,
			windowStart: st.WindowStart,
			hasMemo:     st.HasMemo,
			memo:        st.Memo,
			seq:         s.seq.Add(1),
		}
		sh.users[st.User] = e
		s.logLocked(st.User, e, now)
		sh.mu.Unlock()
	}
	if s.j != nil {
		if err := s.j.compact(s.exportOwned); err != nil {
			return fmt.Errorf("session: import compact: %w", err)
		}
	}
	return nil
}

// maybeCompact kicks off asynchronous journal compaction when the current
// segment has grown past the configured threshold. The compactor never holds
// a shard mutex and the journal mutex at the same time (rotation happens
// under j.mu alone, the export locks shards one by one afterwards), so it
// cannot deadlock with the append path's shard→journal lock order.
func (s *Store) maybeCompact() {
	if s.j == nil || !s.j.shouldCompact() {
		return
	}
	if !s.j.compacting.CompareAndSwap(false, true) {
		return
	}
	s.j.wg.Add(1)
	go func() {
		defer s.j.wg.Done()
		defer s.j.compacting.Store(false)
		if err := s.j.compact(s.exportOwned); err != nil {
			s.j.failures.Add(1)
		}
	}()
}

// Sync forces an fsync of the journal segment (no-op for memory-only
// stores).
func (s *Store) Sync() error {
	if s.j == nil {
		return nil
	}
	return s.j.sync()
}

// Compact synchronously compacts the journal into a snapshot (tests,
// shutdown). No-op for memory-only stores.
func (s *Store) Compact() error {
	if s.j == nil {
		return nil
	}
	return s.j.compact(s.exportOwned)
}

// Close compacts one final time and closes the journal. The store remains
// readable afterwards but further mutations will not be persisted.
func (s *Store) Close() error {
	if s.j == nil {
		return nil
	}
	s.j.wg.Wait()
	err := s.Compact()
	if cerr := s.j.close(); err == nil {
		err = cerr
	}
	return err
}

// JournalStats exposes the journal counters when durability is enabled.
func (s *Store) journalStats() *JournalStats {
	if s.j == nil {
		return nil
	}
	return s.j.stats()
}

// Stats returns a point-in-time snapshot of the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		Users:      s.Users(),
		Evicted:    s.evicted.Load(),
		Spends:     s.spends.Load(),
		Refunds:    s.refunds.Load(),
		MemoReads:  s.memoReads.Load(),
		MemoHits:   s.memoHits.Load(),
		MemoWrites: s.memoWrites.Load(),
		Journal:    s.journalStats(),
	}
}
