// Journal: crash-safe durability for the session store, mirroring the
// versioned-framing + CRC idiom of internal/channel/persist.go ("GICH").
//
// Layout inside the directory:
//
//	sessions.wal      append-only segment of absolute-state records
//	sessions.wal.old  previous segment, present only between rotation and
//	                  snapshot publication during compaction
//	sessions.snap     snapshot of all user state at the last compaction
//
// Segment framing (all little-endian):
//
//	magic "GISJ" | version uint32 | limit float64 bits | window int64 ns |
//	crc32 uint32 of the preceding 20 bytes
//
// followed by records, each:
//
//	length uint32 | body | crc32 uint32 of body
//
// where body is op uint8 (1 = state) | at int64 | seq uint64 |
// userLen uint32 | user | spent float64 | windowStart int64 |
// hasMemo uint8 | memoX float64 | memoY float64.
//
// Records carry the user's *absolute* post-mutation state stamped with a
// store-wide sequence number; replay applies a record only when its seq is
// newer than what is already loaded. That makes replay idempotent and makes
// the snapshot/segment overlap produced by concurrent compaction
// commutative: snapshot, then sessions.wal.old, then sessions.wal can be
// applied in order at any crash point without double-counting or
// resurrecting stale state.
//
// Snapshot framing ("GISS"): magic | version uint32 | limit float64 bits |
// window int64 | count uint64 | per-user (seq uint64 | userLen uint32 |
// user | spent float64 | windowStart int64 | hasMemo uint8 | memoX |
// memoY) | crc32 uint32 of everything preceding. Snapshots are published
// with the temp-file + atomic-rename pattern of channel.DirCache.
//
// Compaction: (1) under the journal mutex, fsync and rotate sessions.wal to
// sessions.wal.old and start a fresh segment; (2) export the live store;
// (3) write the snapshot; (4) delete sessions.wal.old. A crash between any
// two steps is recovered by ordered seq-gated replay. A torn record at the
// tail of a segment (crash mid-append) ends that segment's replay and is
// truncated away; with SyncEvery=1 that is at most the one record whose
// write was interrupted. A segment no longer than its header whose header
// fails structural checks (crash between creation and the header write
// landing) is recovered the same way: truncated and re-headed, since no
// record can have followed it.
package session

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"geoind/internal/geo"
)

const (
	walMagic  = "GISJ"
	snapMagic = "GISS"
	// JournalVersion is bumped on any incompatible framing change.
	JournalVersion = 1
	// DefaultCompactEvery is the records-per-segment threshold that
	// triggers background compaction.
	DefaultCompactEvery = 4096

	opState uint8 = 1

	walName    = "sessions.wal"
	walOldName = "sessions.wal.old"
	snapName   = "sessions.snap"

	walHeaderLen = 4 + 4 + 8 + 8 + 4
	recordFixed  = 1 + 8 + 8 + 4 + 8 + 8 + 1 + 8 + 8 // body minus the user bytes
	maxUserLen   = 4096
)

var (
	// ErrJournal wraps any framing/CRC violation found while decoding.
	ErrJournal = errors.New("session: corrupt journal")
	// ErrJournalVersion marks a well-formed header with an unknown version.
	ErrJournalVersion = errors.New("session: unsupported journal version")
	// errTorn marks an incomplete record at the tail of a segment — the
	// expected shape of a crash mid-append, recovered by truncation.
	errTorn = errors.New("session: torn journal tail")
)

// record is one absolute-state journal entry.
type record struct {
	at          int64 // clock reading at append time (unix ns)
	seq         uint64
	user        string
	spent       float64
	windowStart int64 // unix ns
	hasMemo     bool
	memoX       float64
	memoY       float64
}

type journal struct {
	dir          string
	limit        float64
	window       time.Duration
	syncEvery    int
	compactEvery int

	// mu guards the active segment file. It is a leaf lock: the append path
	// acquires it while holding a shard mutex, so nothing acquired under mu
	// may ever wait on a shard.
	mu         sync.Mutex
	f          *os.File
	unsynced   int
	segRecords int // records in the active segment since last rotation

	// compactMu serializes compactions (background and explicit).
	compactMu  sync.Mutex
	compacting atomic.Bool
	wg         sync.WaitGroup

	appended    atomic.Int64
	bytes       atomic.Int64
	syncs       atomic.Int64
	compactions atomic.Int64
	replayed    atomic.Int64
	anomalies   atomic.Int64
	failures    atomic.Int64
}

// JournalStats is a point-in-time snapshot of journal counters.
type JournalStats struct {
	// Records and Bytes count appends since the store was opened.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	Syncs   int64 `json:"syncs"`
	// Compactions counts snapshot publications (including the one at open).
	Compactions int64 `json:"compactions"`
	// Replayed counts records applied during startup replay.
	Replayed int64 `json:"replayed"`
	// Anomalies counts torn tails, CRC failures and over-limit clamps seen
	// during replay. Nonzero after an unclean shutdown is expected (the torn
	// tail); growth during steady state is not.
	Anomalies int64 `json:"anomalies"`
	// Failures counts background compactions that errored and records
	// dropped because no segment was writable (state stays safe: in-memory
	// admission control is unaffected, and the journal keeps growing until
	// a compaction succeeds).
	Failures int64 `json:"failures"`
}

func (j *journal) stats() *JournalStats {
	return &JournalStats{
		Records:     j.appended.Load(),
		Bytes:       j.bytes.Load(),
		Syncs:       j.syncs.Load(),
		Compactions: j.compactions.Load(),
		Replayed:    j.replayed.Load(),
		Anomalies:   j.anomalies.Load(),
		Failures:    j.failures.Load(),
	}
}

// ---- record codec ----

func appendUint32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendUint64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// encodeRecord frames one record: length | body | crc32(body).
func encodeRecord(rec record) ([]byte, error) {
	if len(rec.user) == 0 || len(rec.user) > maxUserLen {
		return nil, fmt.Errorf("%w: user ID length %d", ErrJournal, len(rec.user))
	}
	body := make([]byte, 0, recordFixed+len(rec.user))
	body = append(body, opState)
	body = appendUint64(body, uint64(rec.at))
	body = appendUint64(body, rec.seq)
	body = appendUint32(body, uint32(len(rec.user)))
	body = append(body, rec.user...)
	body = appendFloat(body, rec.spent)
	body = appendUint64(body, uint64(rec.windowStart))
	if rec.hasMemo {
		body = append(body, 1)
	} else {
		body = append(body, 0)
	}
	body = appendFloat(body, rec.memoX)
	body = appendFloat(body, rec.memoY)

	out := make([]byte, 0, 4+len(body)+4)
	out = appendUint32(out, uint32(len(body)))
	out = append(out, body...)
	out = appendUint32(out, crc32.ChecksumIEEE(body))
	return out, nil
}

// decodeRecord parses one framed record from the front of data, returning
// the bytes consumed. errTorn means data ends mid-record (valid crash
// tail); ErrJournal means the bytes are positively malformed.
func decodeRecord(data []byte) (record, int, error) {
	var rec record
	if len(data) < 4 {
		return rec, 0, errTorn
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n < recordFixed || n > recordFixed+maxUserLen {
		return rec, 0, fmt.Errorf("%w: record length %d", ErrJournal, n)
	}
	if len(data) < 4+n+4 {
		return rec, 0, errTorn
	}
	body := data[4 : 4+n]
	sum := binary.LittleEndian.Uint32(data[4+n:])
	if crc32.ChecksumIEEE(body) != sum {
		return rec, 0, fmt.Errorf("%w: record checksum mismatch", ErrJournal)
	}
	if body[0] != opState {
		return rec, 0, fmt.Errorf("%w: unknown op %d", ErrJournal, body[0])
	}
	rec.at = int64(binary.LittleEndian.Uint64(body[1:]))
	rec.seq = binary.LittleEndian.Uint64(body[9:])
	userLen := int(binary.LittleEndian.Uint32(body[17:]))
	if userLen == 0 || userLen > maxUserLen || recordFixed+userLen != n {
		return rec, 0, fmt.Errorf("%w: user length %d in %d-byte record", ErrJournal, userLen, n)
	}
	p := 21
	rec.user = string(body[p : p+userLen])
	p += userLen
	rec.spent = math.Float64frombits(binary.LittleEndian.Uint64(body[p:]))
	rec.windowStart = int64(binary.LittleEndian.Uint64(body[p+8:]))
	rec.hasMemo = body[p+16] != 0
	rec.memoX = math.Float64frombits(binary.LittleEndian.Uint64(body[p+17:]))
	rec.memoY = math.Float64frombits(binary.LittleEndian.Uint64(body[p+25:]))
	return rec, 4 + n + 4, nil
}

// ---- segment header ----

func encodeWALHeader(limit float64, window time.Duration) []byte {
	b := make([]byte, 0, walHeaderLen)
	b = append(b, walMagic...)
	b = appendUint32(b, JournalVersion)
	b = appendFloat(b, limit)
	b = appendUint64(b, uint64(window))
	b = appendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

func checkWALHeader(data []byte, limit float64, window time.Duration) error {
	if len(data) < walHeaderLen {
		return fmt.Errorf("%w: segment shorter than its header", ErrJournal)
	}
	if string(data[:4]) != walMagic {
		return fmt.Errorf("%w: bad magic %q", ErrJournal, data[:4])
	}
	if crc32.ChecksumIEEE(data[:walHeaderLen-4]) != binary.LittleEndian.Uint32(data[walHeaderLen-4:]) {
		return fmt.Errorf("%w: header checksum mismatch", ErrJournal)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != JournalVersion {
		return fmt.Errorf("%w: segment version %d", ErrJournalVersion, v)
	}
	gotLimit := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	gotWindow := time.Duration(binary.LittleEndian.Uint64(data[16:]))
	if gotLimit != limit || gotWindow != window {
		return fmt.Errorf("session: journal limit/window (%g, %v) do not match configuration (%g, %v)",
			gotLimit, gotWindow, limit, window)
	}
	return nil
}

// ---- snapshot codec ----

func encodeSnapshot(limit float64, window time.Duration, states []State) []byte {
	b := make([]byte, 0, 32+len(states)*64)
	b = append(b, snapMagic...)
	b = appendUint32(b, JournalVersion)
	b = appendFloat(b, limit)
	b = appendUint64(b, uint64(window))
	b = appendUint64(b, uint64(len(states)))
	for _, st := range states {
		b = appendUint64(b, st.Seq)
		b = appendUint32(b, uint32(len(st.User)))
		b = append(b, st.User...)
		b = appendFloat(b, st.Spent)
		b = appendUint64(b, uint64(st.WindowStart.UnixNano()))
		if st.HasMemo {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendFloat(b, st.Memo.X)
		b = appendFloat(b, st.Memo.Y)
	}
	return appendUint32(b, crc32.ChecksumIEEE(b))
}

func decodeSnapshot(data []byte, limit float64, window time.Duration) ([]State, error) {
	if len(data) < 32+4 {
		return nil, fmt.Errorf("%w: snapshot too short", ErrJournal)
	}
	if string(data[:4]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic %q", ErrJournal, data[:4])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrJournal)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != JournalVersion {
		return nil, fmt.Errorf("%w: snapshot version %d", ErrJournalVersion, v)
	}
	gotLimit := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	gotWindow := time.Duration(binary.LittleEndian.Uint64(data[16:]))
	if gotLimit != limit || gotWindow != window {
		return nil, fmt.Errorf("session: snapshot limit/window (%g, %v) do not match configuration (%g, %v)",
			gotLimit, gotWindow, limit, window)
	}
	count := binary.LittleEndian.Uint64(data[24:])
	if count > uint64(len(data)) { // cheap upper bound before allocating
		return nil, fmt.Errorf("%w: snapshot claims %d users in %d bytes", ErrJournal, count, len(data))
	}
	states := make([]State, 0, count)
	p := 32
	for i := uint64(0); i < count; i++ {
		if len(body)-p < 8+4 {
			return nil, fmt.Errorf("%w: snapshot truncated at user %d", ErrJournal, i)
		}
		seq := binary.LittleEndian.Uint64(body[p:])
		userLen := int(binary.LittleEndian.Uint32(body[p+8:]))
		p += 12
		if userLen == 0 || userLen > maxUserLen || len(body)-p < userLen+33 {
			return nil, fmt.Errorf("%w: snapshot user %d length %d", ErrJournal, i, userLen)
		}
		user := string(body[p : p+userLen])
		p += userLen
		st := State{
			User:        user,
			Seq:         seq,
			Spent:       math.Float64frombits(binary.LittleEndian.Uint64(body[p:])),
			WindowStart: time.Unix(0, int64(binary.LittleEndian.Uint64(body[p+8:]))),
			HasMemo:     body[p+16] != 0,
		}
		st.Memo.X = math.Float64frombits(binary.LittleEndian.Uint64(body[p+17:]))
		st.Memo.Y = math.Float64frombits(binary.LittleEndian.Uint64(body[p+25:]))
		states = append(states, st)
		p += 33
	}
	if p != len(body) {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrJournal, len(body)-p)
	}
	return states, nil
}

// ---- open / replay ----

// openJournal loads the directory's persisted state (snapshot, rotated
// segment, active segment — in that order, seq-gated) and returns the
// journal positioned to append to the active segment. Config mismatches and
// positive corruption (a bad CRC anywhere but a segment tail) are errors:
// serving with a damaged budget history could let users over-spend.
func openJournal(cfg Config) (*journal, map[string]State, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("session: journal dir: %w", err)
	}
	j := &journal{
		dir:          cfg.Dir,
		limit:        cfg.Limit,
		window:       cfg.Window,
		syncEvery:    cfg.SyncEvery,
		compactEvery: cfg.CompactEvery,
	}
	if j.syncEvery <= 0 {
		j.syncEvery = 1
	}
	if j.compactEvery <= 0 {
		j.compactEvery = DefaultCompactEvery
	}

	states := make(map[string]State)
	if data, err := os.ReadFile(filepath.Join(cfg.Dir, snapName)); err == nil {
		loaded, derr := decodeSnapshot(data, cfg.Limit, cfg.Window)
		if derr != nil {
			return nil, nil, derr
		}
		for _, st := range loaded {
			states[st.User] = st
			j.replayed.Add(1)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("session: read snapshot: %w", err)
	}

	for _, name := range []string{walOldName, walName} {
		if err := j.replaySegment(filepath.Join(cfg.Dir, name), states); err != nil {
			return nil, nil, err
		}
	}

	// Clamp any replayed over-spend defensively: records are only written
	// for accepted operations, so this fires only on tampered or anomalous
	// history — never silently grant budget beyond the limit.
	for u, st := range states {
		if st.Spent > cfg.Limit {
			st.Spent = cfg.Limit
			states[u] = st
			j.anomalies.Add(1)
		}
	}

	if err := j.openSegment(); err != nil {
		return nil, nil, err
	}
	return j, states, nil
}

// replaySegment applies one segment's records (seq-gated) into states. A
// torn tail is truncated in place; a missing file is fine.
func (j *journal) replaySegment(path string, states map[string]State) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("session: read journal segment: %w", err)
	}
	if len(data) == 0 {
		return nil
	}
	if err := checkWALHeader(data, j.limit, j.window); err != nil {
		// A structurally broken header on a segment no longer than the
		// header itself is the footprint of a crash between segment
		// creation and the header write reaching disk. No record can have
		// followed, so nothing is lost: recover like a torn record tail
		// (truncate; openSegment rewrites the header) instead of refusing
		// to open. Version and limit/window mismatches require a valid CRC
		// and stay fatal, as does any broken header with records after it.
		if len(data) <= walHeaderLen && errors.Is(err, ErrJournal) {
			j.anomalies.Add(1)
			if terr := os.Truncate(path, 0); terr != nil {
				return fmt.Errorf("session: truncate torn journal header: %w", terr)
			}
			return nil
		}
		return fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	p := walHeaderLen
	for p < len(data) {
		rec, n, err := decodeRecord(data[p:])
		if errors.Is(err, errTorn) {
			// Crash mid-append: drop the torn tail and stop. Everything
			// before it was fully framed and checksummed.
			j.anomalies.Add(1)
			if terr := os.Truncate(path, int64(p)); terr != nil {
				return fmt.Errorf("session: truncate torn journal tail: %w", terr)
			}
			break
		}
		if err != nil {
			return fmt.Errorf("%s at offset %d: %w", filepath.Base(path), p, err)
		}
		p += n
		prev, ok := states[rec.user]
		if ok && rec.seq <= prev.Seq {
			continue // stale relative to the snapshot or a later record
		}
		states[rec.user] = State{
			User:        rec.user,
			Seq:         rec.seq,
			Spent:       rec.spent,
			WindowStart: time.Unix(0, rec.windowStart),
			HasMemo:     rec.hasMemo,
			Memo:        geo.Point{X: rec.memoX, Y: rec.memoY},
		}
		j.replayed.Add(1)
	}
	return nil
}

// openSegment opens (or creates) the active segment for appending,
// validating the header when the file already has one.
func (j *journal) openSegment() error {
	path := filepath.Join(j.dir, walName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("session: open journal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("session: stat journal: %w", err)
	}
	if info.Size() == 0 {
		if _, err := f.Write(encodeWALHeader(j.limit, j.window)); err != nil {
			f.Close()
			return fmt.Errorf("session: write journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("session: sync journal header: %w", err)
		}
	} else if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return fmt.Errorf("session: seek journal: %w", err)
	}
	j.mu.Lock()
	j.f = f
	j.segRecords = 0
	j.unsynced = 0
	j.mu.Unlock()
	return nil
}

// append writes one record to the active segment, honoring the fsync
// policy. Called with a shard mutex held; must never block on anything but
// j.mu and the disk. Failures are counted, not propagated: the in-memory
// state is already mutated and remains authoritative for this process —
// durability degrades, admission control does not.
func (j *journal) append(rec record) {
	frame, err := encodeRecord(rec)
	if err != nil {
		j.anomalies.Add(1)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		// No active segment (closed store, or a failed rotation whose
		// restore also failed): the record is dropped. Count it so the
		// durability degradation is visible in metrics, not silent.
		j.failures.Add(1)
		return
	}
	if _, err := j.f.Write(frame); err != nil {
		j.failures.Add(1)
		return
	}
	j.appended.Add(1)
	j.bytes.Add(int64(len(frame)))
	j.segRecords++
	j.unsynced++
	if j.unsynced >= j.syncEvery {
		if err := j.f.Sync(); err != nil {
			j.failures.Add(1)
		} else {
			j.syncs.Add(1)
		}
		j.unsynced = 0
	}
}

func (j *journal) shouldCompact() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.segRecords >= j.compactEvery
}

func (j *journal) sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	j.unsynced = 0
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.syncs.Add(1)
	return nil
}

// compact rotates the active segment aside, snapshots the exported state and
// drops the rotated segment. export runs with no journal lock held. If a
// previous compaction crashed or failed after rotation (sessions.wal.old
// still present), rotation is skipped: the snapshot about to be written
// covers that segment too, so it is simply deleted afterwards.
func (j *journal) compact(export func() []State) error {
	j.compactMu.Lock()
	defer j.compactMu.Unlock()

	oldPath := filepath.Join(j.dir, walOldName)
	walPath := filepath.Join(j.dir, walName)

	_, statErr := os.Stat(oldPath)
	leftover := statErr == nil

	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return fmt.Errorf("session: journal closed")
	}
	if !leftover {
		if err := j.f.Sync(); err != nil {
			j.mu.Unlock()
			return fmt.Errorf("session: sync before rotate: %w", err)
		}
		if err := j.f.Close(); err != nil {
			j.mu.Unlock()
			return fmt.Errorf("session: close before rotate: %w", err)
		}
		j.f = nil
		if err := os.Rename(walPath, oldPath); err != nil {
			// Reopen so appends keep flowing even though rotation failed.
			rerr := j.reopenAppend(walPath)
			j.mu.Unlock()
			if rerr != nil {
				return errors.Join(err, rerr)
			}
			return fmt.Errorf("session: rotate journal: %w", err)
		}
		f, err := os.OpenFile(walPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			rerr := j.restoreRotated(oldPath, walPath)
			j.mu.Unlock()
			return errors.Join(fmt.Errorf("session: fresh journal segment: %w", err), rerr)
		}
		if _, err := f.Write(encodeWALHeader(j.limit, j.window)); err != nil {
			f.Close()
			rerr := j.restoreRotated(oldPath, walPath)
			j.mu.Unlock()
			return errors.Join(fmt.Errorf("session: fresh segment header: %w", err), rerr)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			rerr := j.restoreRotated(oldPath, walPath)
			j.mu.Unlock()
			return errors.Join(fmt.Errorf("session: sync fresh segment: %w", err), rerr)
		}
		j.f = f
		j.segRecords = 0
		j.unsynced = 0
	}
	j.mu.Unlock()

	states := export()
	snap := encodeSnapshot(j.limit, j.window, states)
	tmp, err := os.CreateTemp(j.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("session: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(snap); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("session: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("session: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("session: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(j.dir, snapName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("session: publish snapshot: %w", err)
	}
	if err := os.Remove(oldPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("session: drop rotated segment: %w", err)
	}
	j.compactions.Add(1)
	return nil
}

// reopenAppend re-opens the active segment for appending after a failed
// rotation. Caller holds j.mu.
func (j *journal) reopenAppend(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("session: reopen journal: %w", err)
	}
	j.f = f
	return nil
}

// restoreRotated undoes a rotation whose fresh segment could not be
// created: the partial fresh file (at most a header, never any records) is
// removed, the rotated segment is renamed back into place, and appending
// resumes on it — so one bad compaction degrades to a retried compaction,
// not a silently dead journal. If the restore itself fails, j.f stays nil
// and append counts every dropped record in failures. Caller holds j.mu.
func (j *journal) restoreRotated(oldPath, walPath string) error {
	if err := os.Remove(walPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("session: remove partial fresh segment: %w", err)
	}
	if err := os.Rename(oldPath, walPath); err != nil {
		return fmt.Errorf("session: restore rotated segment: %w", err)
	}
	return j.reopenAppend(walPath)
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
