package session

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"geoind/internal/geo"
)

// fakeClock is a mutable test clock shared by store and test.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Limit: 0, Window: time.Hour}); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := Open(Config{Limit: 1, Window: 0}); err == nil {
		t.Error("zero window accepted")
	}
}

func TestSpendAndExhaust(t *testing.T) {
	s := mustOpen(t, Config{Limit: 1.0, Window: time.Hour})
	for i := 0; i < 4; i++ {
		if err := s.Spend("alice", 0.25); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	if err := s.Spend("alice", 0.25); err != ErrBudgetExhausted {
		t.Fatalf("5th spend: got %v, want ErrBudgetExhausted", err)
	}
	if err := s.Spend("alice", -1); err == nil || errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("negative spend: got %v", err)
	}
	if err := s.Spend("bob", 0.5); err != nil {
		t.Fatalf("bob: %v", err)
	}
	if got := s.Users(); got != 2 {
		t.Fatalf("Users() = %d, want 2", got)
	}
	if r := s.Remaining("bob"); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("bob remaining = %g, want 0.5", r)
	}
}

func TestReadsDoNotAllocate(t *testing.T) {
	s := mustOpen(t, Config{Limit: 1.0, Window: time.Hour})
	if err := s.Spend("real", 0.5); err != nil {
		t.Fatal(err)
	}
	// A scan of bogus user IDs through every read path must not create
	// ledger state (the old server.Ledger allocated an entry per queried ID).
	for i := 0; i < 100; i++ {
		u := fmt.Sprintf("bogus-%d", i)
		if r := s.Remaining(u); r != 1.0 {
			t.Fatalf("Remaining(%s) = %g, want full limit", u, r)
		}
		if _, ok := s.Memo(u); ok {
			t.Fatalf("Memo(%s) reported a memo", u)
		}
	}
	if got := s.Users(); got != 1 {
		t.Fatalf("Users() = %d after read-only scan, want 1", got)
	}
}

func TestWindowRollover(t *testing.T) {
	clock := newFakeClock()
	s := mustOpen(t, Config{Limit: 1.0, Window: 24 * time.Hour, Clock: clock.Now})
	if err := s.Spend("u", 1.0); err != nil {
		t.Fatal(err)
	}
	clock.Advance(23 * time.Hour)
	if err := s.Spend("u", 0.1); err != ErrBudgetExhausted {
		t.Fatalf("inside window: got %v", err)
	}
	// Remaining must report the virtual rollover without mutating.
	clock.Advance(2 * time.Hour)
	if r := s.Remaining("u"); r != 1.0 {
		t.Fatalf("after window elapsed: Remaining = %g, want 1.0", r)
	}
	if err := s.Spend("u", 0.7); err != nil {
		t.Fatalf("spend after rollover: %v", err)
	}
	if r := s.Remaining("u"); math.Abs(r-0.3) > 1e-12 {
		t.Fatalf("post-rollover remaining = %g, want 0.3", r)
	}
}

// TestRefundAfterRolloverProperty is the satellite property test: refunding
// after the window rolled over must never produce negative spend, and must
// never resurrect the previous window's spend.
func TestRefundAfterRolloverProperty(t *testing.T) {
	clock := newFakeClock()
	s := mustOpen(t, Config{Limit: 10, Window: time.Hour, Clock: clock.Now})
	// Deterministic pseudo-random schedule of spends, refunds and rollovers.
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	var pendingSpend float64
	for i := 0; i < 5000; i++ {
		switch next(5) {
		case 0, 1: // spend
			amt := 0.25 * float64(1+next(4))
			if err := s.Spend("u", amt); err == nil {
				pendingSpend = amt
			}
		case 2: // refund the last accepted spend (possibly after rollover)
			if pendingSpend > 0 {
				s.Refund("u", pendingSpend)
				pendingSpend = 0
			}
		case 3: // refund something never spent this window
			s.Refund("u", 0.5)
		case 4: // roll the window
			clock.Advance(time.Hour + time.Duration(next(60))*time.Minute)
		}
		rem := s.Remaining("u")
		if rem < 0 || rem > s.Limit()+1e-9 {
			t.Fatalf("step %d: remaining %g outside [0, %g]", i, rem, s.Limit())
		}
	}
	// After a final rollover the fresh window must be exactly full: no
	// resurrected spend, no accumulated refund credit.
	clock.Advance(2 * time.Hour)
	s.Refund("u", 3.0)
	if r := s.Remaining("u"); r != s.Limit() {
		t.Fatalf("post-rollover refund: remaining %g, want full limit %g", r, s.Limit())
	}
	if err := s.Spend("u", s.Limit()); err != nil {
		t.Fatalf("full-limit spend after rollover refund: %v", err)
	}
}

// TestIdleEntryGC is the satellite regression test: entries whose window has
// fully elapsed with zero spend are evicted, observable via Users().
func TestIdleEntryGC(t *testing.T) {
	clock := newFakeClock()
	s := mustOpen(t, Config{Limit: 1, Window: time.Hour, Clock: clock.Now})
	for i := 0; i < 50; i++ {
		if err := s.Spend(fmt.Sprintf("idle-%d", i), 0.5); err != nil {
			t.Fatal(err)
		}
		s.Refund(fmt.Sprintf("idle-%d", i), 0.5) // zero net spend
	}
	if err := s.Spend("active", 0.5); err != nil {
		t.Fatal(err)
	}
	s.SetMemo("memoized", geo.Point{X: 1, Y: 2})
	if got := s.Users(); got != 52 {
		t.Fatalf("pre-GC Users() = %d, want 52", got)
	}

	clock.Advance(time.Hour + time.Minute)
	evicted := s.Sweep()
	// idle-* entries have zero spend and an elapsed window: gone. "active"
	// spent within the (now elapsed) window: kept until 2 windows idle.
	// "memoized" never spent, so its entry is garbage too — but the memo
	// evicting with it must only cost a future fresh report, never an error.
	if evicted != 51 {
		t.Fatalf("Sweep evicted %d, want 51", evicted)
	}
	if got := s.Users(); got != 1 {
		t.Fatalf("post-GC Users() = %d, want 1 (active only)", got)
	}

	clock.Advance(time.Hour + time.Minute)
	s.Sweep()
	if got := s.Users(); got != 0 {
		t.Fatalf("after 2 idle windows Users() = %d, want 0", got)
	}
	if st := s.Stats(); st.Evicted != 52 {
		t.Fatalf("Stats.Evicted = %d, want 52", st.Evicted)
	}
}

func TestOpportunisticSweep(t *testing.T) {
	clock := newFakeClock()
	s := mustOpen(t, Config{Limit: 1, Window: time.Minute, Clock: clock.Now})
	// Park idle users in the same shard as the hot user, roll the window,
	// then hammer the hot user: the in-band periodic sweep must reap the
	// idle pile without anyone calling Sweep(). (Sweeps are per-shard, so
	// the test pins every entry to one shard.)
	hotShard := s.shard("hot")
	parked := 0
	for i := 0; parked < 20; i++ {
		u := fmt.Sprintf("park-%d", i)
		if s.shard(u) == hotShard {
			s.Refund(u, 1) // creates a zero-spend entry
			parked++
		}
	}
	clock.Advance(2 * time.Minute)
	for i := 0; i < sweepOps+1; i++ {
		if err := s.Spend("hot", 0.0001); err != nil {
			t.Fatal(err)
		}
		s.Refund("hot", 0.0001)
	}
	if got := s.Users(); got != 1 {
		t.Fatalf("opportunistic sweep left %d users, want 1 (hot only)", got)
	}
}

func TestMemoRoundTrip(t *testing.T) {
	s := mustOpen(t, Config{Limit: 1, Window: time.Hour})
	if _, ok := s.Memo("u"); ok {
		t.Fatal("memo before SetMemo")
	}
	want := geo.Point{X: 3.5, Y: -1.25}
	s.SetMemo("u", want)
	got, ok := s.Memo("u")
	if !ok || got != want {
		t.Fatalf("Memo = %v/%v, want %v/true", got, ok, want)
	}
	st := s.Stats()
	if st.MemoReads != 2 || st.MemoHits != 1 || st.MemoWrites != 1 {
		t.Fatalf("memo counters = %d/%d/%d, want 2/1/1", st.MemoReads, st.MemoHits, st.MemoWrites)
	}
}

func TestExportReplace(t *testing.T) {
	clock := newFakeClock()
	s := mustOpen(t, Config{Limit: 2, Window: time.Hour, Clock: clock.Now})
	if err := s.Spend("a", 1.5); err != nil {
		t.Fatal(err)
	}
	s.SetMemo("a", geo.Point{X: 7, Y: 8})
	if err := s.Spend("b", 0.25); err != nil {
		t.Fatal(err)
	}
	exported := s.Export()
	if len(exported) != 2 {
		t.Fatalf("exported %d states, want 2", len(exported))
	}

	s2 := mustOpen(t, Config{Limit: 2, Window: time.Hour, Clock: clock.Now})
	if err := s2.Replace(exported); err != nil {
		t.Fatal(err)
	}
	if r := s2.Remaining("a"); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("a remaining after import = %g, want 0.5", r)
	}
	if m, ok := s2.Memo("a"); !ok || (m != geo.Point{X: 7, Y: 8}) {
		t.Fatalf("a memo after import = %v/%v", m, ok)
	}
	if err := s2.Replace([]State{{User: "", Spent: 1}}); err == nil {
		t.Error("empty user accepted by Replace")
	}
	if err := s2.Replace([]State{{User: "x", Spent: -1}}); err == nil {
		t.Error("negative spend accepted by Replace")
	}
}

// TestConcurrentSpendExact verifies admission is exact under contention:
// with limit 100 and 500 attempted spends of 0.25 per-user across shards,
// exactly 400 must succeed for each user.
func TestConcurrentSpendExact(t *testing.T) {
	s := mustOpen(t, Config{Limit: 100, Window: time.Hour})
	users := []string{"u1", "u2", "u3"}
	var wg sync.WaitGroup
	okCh := make(chan string, 3*500)
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, u := range users {
					if err := s.Spend(u, 0.25); err == nil {
						okCh <- u
					}
				}
			}
		}()
	}
	wg.Wait()
	close(okCh)
	counts := map[string]int{}
	for u := range okCh {
		counts[u]++
	}
	for _, u := range users {
		if counts[u] != 400 {
			t.Errorf("user %s: %d spends admitted, want exactly 400", u, counts[u])
		}
		if r := s.Remaining(u); r != 0 {
			t.Errorf("user %s: remaining %g, want 0", u, r)
		}
	}
}

// TestConcurrentMixedOps races Spend/Refund/Memo/Export/Sweep across shards
// (run under -race via `make race`) and checks the invariant 0 <= remaining
// <= limit throughout.
func TestConcurrentMixedOps(t *testing.T) {
	clock := newFakeClock()
	s := mustOpen(t, Config{Limit: 50, Window: time.Hour, Clock: clock.Now})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := fmt.Sprintf("u%d", (w*31+i)%64)
				switch i % 5 {
				case 0, 1:
					_ = s.Spend(u, 0.5)
				case 2:
					s.Refund(u, 0.5)
				case 3:
					s.SetMemo(u, geo.Point{X: float64(i), Y: float64(w)})
					_, _ = s.Memo(u)
				case 4:
					if r := s.Remaining(u); r < 0 || r > s.Limit()+1e-9 {
						t.Errorf("remaining %g outside [0, %g]", r, s.Limit())
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = s.Export()
			s.Sweep()
			_ = s.Users()
			clock.Advance(time.Minute)
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}
