package session

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkJournalAppend measures the cost one accepted Spend pays for
// durability under the two interesting fsync policies: SyncEvery=1 (the
// default — every record hits disk before Spend returns) and SyncEvery=64
// (bounded-loss batching). The memory-only store is the no-journal floor.
func BenchmarkJournalAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		dir  bool
		sync int
	}{
		{"memory", false, 0},
		{"sync=1", true, 1},
		{"sync=64", true, 64},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := Config{Limit: 1e12, Window: time.Hour, SyncEvery: tc.sync}
			if tc.dir {
				cfg.Dir = b.TempDir()
			}
			s, err := Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Spend(fmt.Sprintf("u%d", i%1024), 0.001); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
