package session

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"geoind/internal/geo"
)

func TestJournalReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	cfg := Config{Limit: 5, Window: time.Hour, Clock: clock.Now, Dir: dir}

	s := mustOpen(t, cfg)
	if err := s.Spend("alice", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("bob", 0.25); err != nil {
		t.Fatal(err)
	}
	s.Refund("bob", 0.25)
	s.SetMemo("alice", geo.Point{X: 4, Y: -2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, cfg)
	if r := s2.Remaining("alice"); math.Abs(r-3.5) > 1e-12 {
		t.Fatalf("alice remaining after replay = %g, want 3.5", r)
	}
	if r := s2.Remaining("bob"); r != 5 {
		t.Fatalf("bob remaining after replay = %g, want 5", r)
	}
	if m, ok := s2.Memo("alice"); !ok || (m != geo.Point{X: 4, Y: -2}) {
		t.Fatalf("alice memo after replay = %v/%v", m, ok)
	}
	st := s2.Stats()
	if st.Journal == nil || st.Journal.Replayed == 0 {
		t.Fatalf("journal stats after replay = %+v", st.Journal)
	}
}

// TestJournalReplayWithoutClose simulates a crash: the first store is never
// closed (no final compaction), so recovery runs purely off the snapshot
// written at open plus the record-by-record journal.
func TestJournalReplayWithoutClose(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	cfg := Config{Limit: 5, Window: time.Hour, Clock: clock.Now, Dir: dir}

	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Spend("u", 0.4); err != nil {
			t.Fatal(err)
		}
	}
	s.SetMemo("u", geo.Point{X: 1, Y: 1})
	// Abandon s without Close: SyncEvery=1 means every record hit disk.

	s2 := mustOpen(t, cfg)
	if r := s2.Remaining("u"); math.Abs(r-1.0) > 1e-12 {
		t.Fatalf("remaining after crash replay = %g, want 1.0", r)
	}
	// The replayed user must not be able to over-spend.
	if err := s2.Spend("u", 1.5); err != ErrBudgetExhausted {
		t.Fatalf("over-spend after replay: got %v, want ErrBudgetExhausted", err)
	}
	_ = s.j.close()
}

// TestJournalTornTail appends garbage and a truncated record to the segment
// and verifies replay keeps everything before the tear, truncates the rest,
// and counts the anomaly.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Limit: 5, Window: time.Hour, Dir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("u", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Close wrote a snapshot and an empty segment; tear the *snapshotted*
	// state path by instead appending a half record to the fresh segment:
	// write a full valid record followed by a truncated copy of it.
	rec, err := encodeRecord(record{at: 1, seq: 99, user: "u", spent: 4, windowStart: time.Now().UnixNano()})
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec[:len(rec)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, cfg)
	// The full record (seq 99, spent 4) wins over the snapshot; the torn
	// copy is dropped.
	if r := s2.Remaining("u"); r != 1 {
		t.Fatalf("remaining = %g, want 1 (absolute record applied once)", r)
	}
	if st := s2.Stats(); st.Journal.Anomalies == 0 {
		t.Fatal("torn tail not counted as an anomaly")
	}
}

// TestJournalTornHeaderRecovers simulates a crash between segment creation
// and the header write reaching disk: a segment shorter than its header
// must be recovered like a torn tail (truncated, re-headed, anomaly
// counted), not treated as positive corruption that refuses to open.
func TestJournalTornHeaderRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Limit: 5, Window: time.Hour, Dir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("u", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Close compacted: the state lives in the snapshot and the active
	// segment is a bare header. Tear that header short.
	walPath := filepath.Join(dir, walName)
	if err := os.Truncate(walPath, int64(walHeaderLen/2)); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, cfg)
	if r := s2.Remaining("u"); r != 3 {
		t.Fatalf("remaining after torn-header recovery = %g, want 3", r)
	}
	if st := s2.Stats(); st.Journal.Anomalies == 0 {
		t.Fatal("torn header not counted as an anomaly")
	}
	// The recovered store must be fully writable again.
	if err := s2.Spend("u", 1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, cfg)
	if r := s3.Remaining("u"); r != 2 {
		t.Fatalf("remaining after recovery round trip = %g, want 2", r)
	}
}

// TestJournalCorruptHeaderWithRecordsFails: a broken header on a segment
// that does contain records is positive corruption, not a torn creation —
// replaying records framed by an unverified header could mis-account spend.
func TestJournalCorruptHeaderWithRecordsFails(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Limit: 5, Window: time.Hour, Dir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("u", 1); err != nil {
		t.Fatal(err)
	}
	_ = s.j.close() // keep the record in the segment (no compaction)

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[5] ^= 0xFF // corrupt the header, records follow
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); !errors.Is(err, ErrJournal) {
		t.Fatalf("open over corrupt header with records: got %v, want ErrJournal", err)
	}
}

// TestJournalCountsDroppedAppends: once the journal has no writable segment
// (here: a closed store), mutations keep being admitted in memory but every
// dropped record must surface in the failures counter.
func TestJournalCountsDroppedAppends(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Limit: 5, Window: time.Hour, Dir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("u", 1); err != nil {
		t.Fatal(err)
	}
	s.Refund("u", 0.5)
	if f := s.Stats().Journal.Failures; f != 2 {
		t.Fatalf("failures after 2 unjournalable mutations = %d, want 2", f)
	}
}

// TestJournalReplaceCompacts: Replace on a durable store must not let a
// restart resurrect users absent from the import — the journal has no
// tombstones, so Replace has to publish a fresh snapshot synchronously.
func TestJournalReplaceCompacts(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	cfg := Config{Limit: 5, Window: time.Hour, Clock: clock.Now, Dir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("old", 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Replace([]State{{User: "new", Spent: 1, WindowStart: clock.Now()}}); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close, as a crash would: the synchronous compaction
	// inside Replace is all the durability the import gets.
	_ = s.j.close()

	s2 := mustOpen(t, cfg)
	if r := s2.Remaining("new"); math.Abs(r-4) > 1e-12 {
		t.Fatalf("imported user remaining = %g, want 4", r)
	}
	if r := s2.Remaining("old"); r != 5 {
		t.Fatalf("replaced user resurrected: remaining = %g, want 5", r)
	}
	if n := s2.Users(); n != 1 {
		t.Fatalf("users after replayed import = %d, want 1 (old entry replaced)", n)
	}
}

// TestJournalCorruptRecordFails verifies that a bit flip in the middle of a
// segment (not a torn tail) refuses to open: serving from damaged budget
// history could let users over-spend.
func TestJournalCorruptRecordFails(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Limit: 5, Window: time.Hour, Dir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("u", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("u", 1); err != nil {
		t.Fatal(err)
	}
	_ = s.j.close() // leave the records in the segment (no compaction)

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderLen+10] ^= 0xFF // flip a bit inside the first record body
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); !errors.Is(err, ErrJournal) {
		t.Fatalf("open over corrupt record: got %v, want ErrJournal", err)
	}
}

func TestJournalConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Limit: 5, Window: time.Hour, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("u", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Limit: 9, Window: time.Hour, Dir: dir}); err == nil {
		t.Fatal("limit mismatch accepted")
	}
	if _, err := Open(Config{Limit: 5, Window: 2 * time.Hour, Dir: dir}); err == nil {
		t.Fatal("window mismatch accepted")
	}
}

// TestJournalCompaction drives enough records through a tiny CompactEvery to
// force several compactions, then replays and checks exact state.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	cfg := Config{Limit: 1000, Window: time.Hour, Clock: clock.Now, Dir: dir, CompactEvery: 16, SyncEvery: 4}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for i := 0; i < 400; i++ {
		u := fmt.Sprintf("u%d", i%7)
		if err := s.Spend(u, 0.5); err != nil {
			t.Fatal(err)
		}
		want[u] += 0.5
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Journal.Compactions < 2 {
		t.Fatalf("compactions = %d, want >= 2 (open + size-triggered)", st.Journal.Compactions)
	}
	if _, err := os.Stat(filepath.Join(dir, walOldName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("rotated segment left behind after Close: %v", err)
	}

	s2 := mustOpen(t, cfg)
	for u, spent := range want {
		if r := s2.Remaining(u); math.Abs(r-(1000-spent)) > 1e-9 {
			t.Fatalf("user %s remaining = %g, want %g", u, r, 1000-spent)
		}
	}
}

// TestJournalLeftoverRotatedSegment simulates a compaction that crashed
// between rotation and snapshot publication: both segments plus a stale
// snapshot must replay to the exact final state.
func TestJournalLeftoverRotatedSegment(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Limit: 100, Window: time.Hour, Dir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("u", 10); err != nil { // goes to the active segment
		t.Fatal(err)
	}
	// Hand-rotate without snapshotting, as if compaction died right after
	// the rename.
	if err := s.j.close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, walName), filepath.Join(dir, walOldName)); err != nil {
		t.Fatal(err)
	}
	if err := s.j.openSegment(); err != nil {
		t.Fatal(err)
	}
	s.Spend("u", 5) // lands in the fresh segment
	_ = s.j.close()

	s2 := mustOpen(t, cfg)
	if r := s2.Remaining("u"); math.Abs(r-85) > 1e-9 {
		t.Fatalf("remaining = %g, want 85 (10 from rotated + 5 from active)", r)
	}
	// Open's compaction must have cleaned the leftover.
	if _, err := os.Stat(filepath.Join(dir, walOldName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("leftover rotated segment survived open: %v", err)
	}
}

// TestJournalOwnership: non-owned users are served but never journaled.
func TestJournalOwnership(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Limit: 5, Window: time.Hour, Dir: dir,
		Owns: func(u string) bool { return u == "mine" }}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("mine", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Spend("theirs", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, cfg)
	if r := s2.Remaining("mine"); r != 3 {
		t.Fatalf("owned user remaining = %g, want 3", r)
	}
	if r := s2.Remaining("theirs"); r != 5 {
		t.Fatalf("non-owned user remaining = %g, want 5 (never journaled)", r)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []record{
		{at: 123, seq: 1, user: "u", spent: 0.5, windowStart: 456, hasMemo: false},
		{at: -1, seq: 1 << 60, user: "user-with-a-longer-id", spent: 1e-9,
			windowStart: time.Now().UnixNano(), hasMemo: true, memoX: -3.25, memoY: 7.5},
	}
	for _, rec := range recs {
		frame, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := decodeRecord(frame)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(frame) || got != rec {
			t.Fatalf("round trip: got %+v (%d bytes), want %+v (%d)", got, n, rec, len(frame))
		}
		// Decoding with trailing bytes consumes exactly one record.
		if _, n2, err := decodeRecord(append(bytes.Clone(frame), 0xAA)); err != nil || n2 != len(frame) {
			t.Fatalf("decode with trailing bytes: n=%d err=%v", n2, err)
		}
	}
	if _, err := encodeRecord(record{user: ""}); err == nil {
		t.Error("empty user encoded")
	}
	if _, err := encodeRecord(record{user: string(make([]byte, maxUserLen+1))}); err == nil {
		t.Error("oversized user encoded")
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	states := []State{
		{User: "a", Seq: 5, Spent: 1.5, WindowStart: time.Unix(0, 12345), HasMemo: true, Memo: geo.Point{X: 1, Y: 2}},
		{User: "b", Seq: 9, Spent: 0, WindowStart: time.Unix(0, 999)},
	}
	data := encodeSnapshot(3, time.Hour, states)
	got, err := decodeSnapshot(data, 3, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(states) {
		t.Fatalf("decoded %d states, want %d", len(got), len(states))
	}
	for i := range states {
		if !got[i].WindowStart.Equal(states[i].WindowStart) {
			t.Fatalf("state %d window start %v != %v", i, got[i].WindowStart, states[i].WindowStart)
		}
		got[i].WindowStart = states[i].WindowStart
		if got[i] != states[i] {
			t.Fatalf("state %d = %+v, want %+v", i, got[i], states[i])
		}
	}
	// Corruption anywhere must fail the checksum.
	bad := bytes.Clone(data)
	bad[len(bad)/2] ^= 1
	if _, err := decodeSnapshot(bad, 3, time.Hour); !errors.Is(err, ErrJournal) {
		t.Fatalf("corrupt snapshot: got %v", err)
	}
	if _, err := decodeSnapshot(data, 4, time.Hour); err == nil {
		t.Fatal("limit mismatch accepted")
	}
}

// FuzzJournalRecord fuzzes the record codec: arbitrary bytes must never
// panic, and any successfully decoded record must re-encode to exactly the
// bytes consumed (canonical framing).
func FuzzJournalRecord(f *testing.F) {
	seed, _ := encodeRecord(record{at: 1, seq: 2, user: "seed", spent: 0.5,
		windowStart: 3, hasMemo: true, memoX: 1, memoY: 2})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(seed[:len(seed)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded %d bytes from %d", n, len(data))
		}
		re, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record failed: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("non-canonical framing: %x != %x", re, data[:n])
		}
	})
}

// FuzzSessionSnapshot fuzzes the snapshot codec for panics and for
// round-trip stability of valid decodes.
func FuzzSessionSnapshot(f *testing.F) {
	f.Add(encodeSnapshot(3, time.Hour, []State{{User: "s", Seq: 1, Spent: 1, WindowStart: time.Unix(0, 7)}}))
	f.Add([]byte("GISS"))
	f.Fuzz(func(t *testing.T, data []byte) {
		states, err := decodeSnapshot(data, 3, time.Hour)
		if err != nil {
			return
		}
		for _, st := range states {
			// UnixNano is undefined outside ~[1678, 2262]; a crafted
			// timestamp there decodes fine but cannot re-encode bit-exactly.
			if !st.WindowStart.Equal(time.Unix(0, st.WindowStart.UnixNano())) {
				return
			}
		}
		re := encodeSnapshot(3, time.Hour, states)
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical snapshot: %d vs %d bytes", len(re), len(data))
		}
	})
}
