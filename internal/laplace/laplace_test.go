package laplace

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := New(eps, rng); err == nil {
			t.Errorf("eps=%g should error", eps)
		}
	}
	if _, err := New(0.5, nil); err == nil {
		t.Error("nil rng should error")
	}
	m, err := New(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epsilon() != 0.5 {
		t.Errorf("Epsilon=%g", m.Epsilon())
	}
	if m.MeanRadius() != 4 {
		t.Errorf("MeanRadius=%g want 4", m.MeanRadius())
	}
}

func TestRadiusCDFBasics(t *testing.T) {
	if RadiusCDF(1, 0) != 0 || RadiusCDF(1, -1) != 0 {
		t.Error("CDF should be 0 at r<=0")
	}
	if got := RadiusCDF(1, 1e9); math.Abs(got-1) > 1e-12 {
		t.Errorf("CDF at huge r = %g", got)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for r := 0.0; r <= 20; r += 0.25 {
		cur := RadiusCDF(0.7, r)
		if cur < prev-1e-15 {
			t.Fatalf("CDF not monotone at r=%g", r)
		}
		prev = cur
	}
}

func TestInverseRadiusCDFRoundTrip(t *testing.T) {
	f := func(rawEps, rawP float64) bool {
		eps := 0.05 + math.Abs(math.Mod(rawEps, 3))
		p := math.Abs(math.Mod(rawP, 0.999))
		r, err := InverseRadiusCDF(eps, p)
		if err != nil {
			return false
		}
		return math.Abs(RadiusCDF(eps, r)-p) <= 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInverseRadiusCDFDomain(t *testing.T) {
	if _, err := InverseRadiusCDF(0, 0.5); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := InverseRadiusCDF(1, 1); err == nil {
		t.Error("p=1 should error")
	}
	if _, err := InverseRadiusCDF(1, -0.1); err == nil {
		t.Error("p<0 should error")
	}
	r, err := InverseRadiusCDF(1, 0)
	if err != nil || r != 0 {
		t.Errorf("p=0: r=%g err=%v", r, err)
	}
}

// TestEmpiricalMeanRadius: E[r] = 2/eps for the planar Laplace radius.
func TestEmpiricalMeanRadius(t *testing.T) {
	for _, eps := range []float64{0.1, 0.5, 1.0} {
		m, err := New(eps, rand.New(rand.NewPCG(7, uint64(eps*1000))))
		if err != nil {
			t.Fatal(err)
		}
		const n = 200000
		sumR := 0.0
		for i := 0; i < n; i++ {
			dx, dy := m.SampleNoise()
			sumR += math.Hypot(dx, dy)
		}
		mean := sumR / n
		want := 2 / eps
		if math.Abs(mean-want) > 0.02*want {
			t.Errorf("eps=%g: empirical mean radius %g want %g", eps, mean, want)
		}
	}
}

// TestEmpiricalAngleUniform: the noise direction is symmetric, so mean dx
// and dy are ~0.
func TestEmpiricalAngleUniform(t *testing.T) {
	m, _ := New(0.5, rand.New(rand.NewPCG(3, 4)))
	const n = 200000
	var sx, sy float64
	for i := 0; i < n; i++ {
		dx, dy := m.SampleNoise()
		sx += dx
		sy += dy
	}
	if math.Abs(sx/n) > 0.1 || math.Abs(sy/n) > 0.1 {
		t.Errorf("noise not centred: mean=(%g,%g)", sx/n, sy/n)
	}
}

// TestEmpiricalRadiusQuantiles compares empirical radius quantiles against
// the analytic CDF.
func TestEmpiricalRadiusQuantiles(t *testing.T) {
	eps := 0.5
	m, _ := New(eps, rand.New(rand.NewPCG(9, 10)))
	const n = 100000
	count := 0
	rMedian, err := InverseRadiusCDF(eps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		dx, dy := m.SampleNoise()
		if math.Hypot(dx, dy) <= rMedian {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("median check: %g of samples below analytic median", frac)
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	x := geo.Point{X: 10, Y: 10}
	m1, _ := New(0.5, rand.New(rand.NewPCG(42, 43)))
	m2, _ := New(0.5, rand.New(rand.NewPCG(42, 43)))
	for i := 0; i < 100; i++ {
		a, b := m1.Sample(x), m2.Sample(x)
		if a != b {
			t.Fatalf("sample %d diverged: %v vs %v", i, a, b)
		}
	}
}

func TestSampleRemappedLandsOnCenters(t *testing.T) {
	g := grid.MustNew(geo.NewSquare(20), 6)
	m, _ := New(0.3, rand.New(rand.NewPCG(11, 12)))
	centers := map[geo.Point]bool{}
	for _, c := range g.Centers() {
		centers[c] = true
	}
	x := geo.Point{X: 3, Y: 17}
	for i := 0; i < 1000; i++ {
		z := m.SampleRemapped(x, g)
		if !centers[z] {
			t.Fatalf("remapped output %v is not a grid center", z)
		}
	}
}

// TestDensityRatioBound verifies analytically that the PL density satisfies
// the GeoInd constraint: D(x,z)/D(x',z) = exp(eps*(d(x',z)-d(x,z))) <=
// exp(eps*d(x,x')) by the triangle inequality.
func TestDensityRatioBound(t *testing.T) {
	eps := 0.8
	density := func(x, z geo.Point) float64 {
		return eps * eps / (2 * math.Pi) * math.Exp(-eps*x.Dist(z))
	}
	rng := rand.New(rand.NewPCG(13, 14))
	for i := 0; i < 1000; i++ {
		x := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		xp := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		z := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		ratio := density(x, z) / density(xp, z)
		bound := math.Exp(eps * x.Dist(xp))
		if ratio > bound*(1+1e-12) {
			t.Fatalf("density ratio %g exceeds bound %g", ratio, bound)
		}
	}
}

func BenchmarkSample(b *testing.B) {
	m, _ := New(0.5, rand.New(rand.NewPCG(1, 2)))
	x := geo.Point{X: 10, Y: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Sample(x)
	}
}
