// Package laplace implements the Planar Laplace mechanism (PL) of §2.3, the
// efficient-but-noisy GeoInd baseline: the reported location is the true
// location plus noise drawn from the bivariate distribution with density
// D_eps(x, z) = (eps^2 / 2pi) * exp(-eps * d(x, z))  (Eq. 2).
//
// Sampling follows the paper's three-step recipe: draw an angle theta
// uniformly from [0, 2pi), draw a radius from the Gamma-like radial CDF
// C_eps(r) = 1 - (1 + eps*r) * exp(-eps*r) by inversion (computed in closed
// form with the -1 branch of the Lambert W function), and report
// z = x + (r cos theta, r sin theta). The optional remap step projects the
// output to the nearest grid cell center, the post-processing of [5] that
// the paper's evaluation (§6.2) applies to the PL benchmark.
package laplace

import (
	"fmt"
	"math"
	"math/rand/v2"

	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/mathx"
)

// Mechanism is a planar Laplace sampler with privacy level eps (per km).
type Mechanism struct {
	eps float64
	rng *rand.Rand
}

// New returns a PL mechanism with privacy budget eps > 0. The rng drives all
// sampling; pass a seeded source for reproducibility.
func New(eps float64, rng *rand.Rand) (*Mechanism, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("laplace: eps must be positive and finite, got %g", eps)
	}
	if rng == nil {
		return nil, fmt.Errorf("laplace: nil rng")
	}
	return &Mechanism{eps: eps, rng: rng}, nil
}

// Epsilon returns the privacy budget.
func (m *Mechanism) Epsilon() float64 { return m.eps }

// RadiusCDF returns C_eps(r) = 1 - (1 + eps*r) e^{-eps*r}, the probability
// that the sampled noise radius is at most r.
func RadiusCDF(eps, r float64) float64 {
	if r <= 0 {
		return 0
	}
	return 1 - (1+eps*r)*math.Exp(-eps*r)
}

// InverseRadiusCDF returns the radius r with C_eps(r) = p, for p in [0, 1).
// This is the Gamma-inverse step of the paper's sampling recipe, evaluated
// in closed form as r = -(1/eps) * (W_{-1}((p-1)/e) + 1).
func InverseRadiusCDF(eps, p float64) (float64, error) {
	if !(eps > 0) {
		return 0, fmt.Errorf("laplace: eps must be positive, got %g", eps)
	}
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("laplace: p=%g outside [0,1)", p)
	}
	if p == 0 {
		return 0, nil
	}
	w, err := mathx.LambertWm1((p - 1) / math.E)
	if err != nil {
		return 0, fmt.Errorf("laplace: inverse CDF at p=%g: %w", p, err)
	}
	return -(w + 1) / eps, nil
}

// SampleNoise draws a noise vector (dx, dy) from the planar Laplace
// distribution centred at the origin.
func (m *Mechanism) SampleNoise() (dx, dy float64) {
	theta := m.rng.Float64() * 2 * math.Pi
	// Float64 returns values in [0,1); InverseRadiusCDF accepts exactly that
	// half-open range.
	r, err := InverseRadiusCDF(m.eps, m.rng.Float64())
	if err != nil {
		// Unreachable for valid state; keep the mechanism total.
		r = 0
	}
	return r * math.Cos(theta), r * math.Sin(theta)
}

// Sample reports a perturbed version of x: the raw PL mechanism.
func (m *Mechanism) Sample(x geo.Point) geo.Point {
	dx, dy := m.SampleNoise()
	return x.Add(dx, dy)
}

// SampleBatch perturbs every point of xs in input order, drawing from the
// mechanism's RNG exactly as a Sample loop would (so batching never changes
// output). When g is non-nil every report is remapped to its nearest cell
// center, matching SampleRemapped.
func (m *Mechanism) SampleBatch(xs []geo.Point, g *grid.Grid) []geo.Point {
	out := make([]geo.Point, len(xs))
	for i, x := range xs {
		if g != nil {
			out[i] = m.SampleRemapped(x, g)
		} else {
			out[i] = m.Sample(x)
		}
	}
	return out
}

// SampleRemapped reports a perturbed version of x projected to the center of
// the nearest cell of g (outputs falling outside the grid are clamped to the
// boundary cell first). Remapping is post-processing of a GeoInd mechanism
// and therefore preserves the guarantee.
func (m *Mechanism) SampleRemapped(x geo.Point, g *grid.Grid) geo.Point {
	return g.Snap(m.Sample(x))
}

// MeanRadius returns the expected noise magnitude E[r] = 2/eps, useful for
// calibrating expectations in tests and examples.
func (m *Mechanism) MeanRadius() float64 { return 2 / m.eps }
