package core

import (
	"context"
	"fmt"

	"geoind/internal/geo"
)

// MaxExactChannelCells bounds the leaf-grid size for which ExactChannel will
// materialize the full end-to-end matrix.
const MaxExactChannelCells = 4096

// ExactChannel computes the exact end-to-end channel of the multi-step
// mechanism: entry [x*n+z] is the probability that MSM reports leaf cell z
// when the true location is the center of leaf cell x, marginalized over all
// descent paths. Out-of-subdomain inputs use the uniform-random substitution
// of Algorithm 1 line 10, which corresponds to averaging the channel rows.
//
// This is a diagnostic/audit tool (it solves every channel in the index and
// costs O(n * paths)); it powers the privacy-audit tests and the effective-
// epsilon experiment, not the serving path.
func (m *Mechanism) ExactChannel() ([]float64, error) {
	leaf := m.LeafGrid()
	n := leaf.NumCells()
	if n > MaxExactChannelCells {
		return nil, fmt.Errorf("msm: exact channel needs %d <= %d leaf cells", n, MaxExactChannelCells)
	}
	out := make([]float64, n*n)
	for x := 0; x < n; x++ {
		row, err := m.exactRow(leaf.Center(x))
		if err != nil {
			return nil, err
		}
		copy(out[x*n:(x+1)*n], row)
	}
	return out, nil
}

// exactRow returns the exact leaf-cell output distribution for true point x.
func (m *Mechanism) exactRow(x geo.Point) ([]float64, error) {
	gg := m.cfg.G * m.cfg.G
	dist := map[int]float64{0: 1}
	for level := 0; level < m.Height(); level++ {
		next := make(map[int]float64, len(dist)*gg)
		for parent, q := range dist {
			ch, err := m.channel(context.Background(), level, parent)
			if err != nil {
				return nil, err
			}
			sub := m.hier.SubGrid(level, parent)
			var row []float64
			if xLocal, ok := sub.CellIndex(x); ok {
				row = ch.Row(xLocal)
			} else {
				// Uniform random substitute input: average of all rows.
				avg := make([]float64, gg)
				for xi := 0; xi < gg; xi++ {
					for z, v := range ch.Row(xi) {
						avg[z] += v
					}
				}
				for z := range avg {
					avg[z] /= float64(gg)
				}
				row = avg
			}
			for z, p := range row {
				if p == 0 {
					continue
				}
				next[m.hier.ChildIndex(level, parent, z)] += q * p
			}
		}
		dist = next
	}
	out := make([]float64, m.LeafGrid().NumCells())
	for cell, q := range dist {
		out[cell] = q
	}
	return out, nil
}

// SnappedDistance returns the distance between the level-i logical locations
// (cell centers at the level-i full grid) of points a and b, the
// distinguishability distance that level i's OPT channel operates on.
func (m *Mechanism) SnappedDistance(level int, a, b geo.Point) float64 {
	g := m.hier.LevelGrid(level)
	return g.Snap(a).Dist(g.Snap(b))
}
