package core

import (
	"math/rand/v2"
	"sync"
	"testing"

	"geoind/internal/channel"
	"geoind/internal/geo"
)

// concurrencyConfig builds a small MSM with a skewed prior and the given
// worker count.
func concurrencyConfig(workers int) Config {
	return Config{
		Eps:         0.5,
		G:           3,
		Region:      region20(),
		PriorPoints: clusteredPoints(500, 3),
		Workers:     workers,
	}
}

// hammer fires fn from 16 goroutines, n calls each, spreading inputs over
// the region so many distinct channels get exercised.
func hammer(t *testing.T, n int, fn func(x geo.Point) error) {
	t.Helper()
	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 99))
			for i := 0; i < n; i++ {
				x := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
				if err := fn(x); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentColdSingleflight hammers a cold mechanism from 16 goroutines
// and verifies that the store's singleflight performed exactly one LP solve
// per resident (level, cell) key, with every other lookup a hit.
func TestConcurrentColdSingleflight(t *testing.T) {
	m, err := New(concurrencyConfig(-1), 42)
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, 25, func(x geo.Point) error {
		_, err := m.Report(x)
		return err
	})
	queries, solves := m.Stats()
	if queries != 16*25 {
		t.Errorf("queries = %d, want %d", queries, 16*25)
	}
	if solves != m.ChannelCount() {
		t.Errorf("solves = %d, resident channels = %d: duplicate or lost solves", solves, m.ChannelCount())
	}
	st := m.StoreStats()
	if int(st.Misses) != solves {
		t.Errorf("store misses = %d, want %d (one per solve)", st.Misses, solves)
	}
	if st.Hits == 0 {
		t.Error("expected warm hits under repeated concurrent load")
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after quiescence, want 0", st.Inflight)
	}
}

// TestConcurrentPrecomputeAndReport overlaps eager Precompute with live
// Report traffic; singleflight must still hold the one-solve-per-key
// invariant and Precompute must leave the full index resident.
func TestConcurrentPrecomputeAndReport(t *testing.T) {
	m, err := New(concurrencyConfig(-1), 7)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	precompErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		precompErr <- m.Precompute()
	}()
	hammer(t, 15, func(x geo.Point) error {
		_, err := m.Report(x)
		return err
	})
	wg.Wait()
	if err := <-precompErr; err != nil {
		t.Fatal(err)
	}
	// Full index: 1 root channel plus g^2 per additional level.
	want := 0
	parents := 1
	for level := 0; level < m.Height(); level++ {
		want += parents
		parents *= m.cfg.G * m.cfg.G
	}
	if m.ChannelCount() != want {
		t.Errorf("resident channels = %d, want full index %d", m.ChannelCount(), want)
	}
	_, solves := m.Stats()
	if solves != want {
		t.Errorf("solves = %d, want exactly %d (one per key)", solves, want)
	}
}

// TestSequentialModeBitIdenticalToSeed verifies the Workers<=1 Report path
// reproduces the historical output stream bit for bit: the seed code drew
// every report from one PCG stream (seed, 0x9e3779b97f4a7c15) in call order.
func TestSequentialModeBitIdenticalToSeed(t *testing.T) {
	const seed = 42
	m, err := New(concurrencyConfig(1), seed)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(concurrencyConfig(1), seed)
	if err != nil {
		t.Fatal(err)
	}
	refRng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	inputs := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 200; i++ {
		x := geo.Point{X: inputs.Float64() * 20, Y: inputs.Float64() * 20}
		got, err := m.Report(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.ReportWith(x, refRng)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("report %d: sequential mode diverged from seed stream: %v vs %v", i, got, want)
		}
	}
}

// TestParallelModeDeterministicByArrival verifies the Workers>1 path is
// deterministic given the seed and arrival order: two identical mechanisms
// fed the same sequential call stream produce identical outputs.
func TestParallelModeDeterministicByArrival(t *testing.T) {
	mk := func() *Mechanism {
		m, err := New(concurrencyConfig(4), 42)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := mk(), mk()
	inputs := rand.New(rand.NewPCG(8, 9))
	for i := 0; i < 200; i++ {
		x := geo.Point{X: inputs.Float64() * 20, Y: inputs.Float64() * 20}
		z1, err1 := m1.Report(x)
		z2, err2 := m2.Report(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if z1 != z2 {
			t.Fatalf("report %d diverged across identical mechanisms: %v vs %v", i, z1, z2)
		}
	}
}

// TestSharedStoreAcrossMechanisms injects one store into two identically
// configured mechanisms and verifies the second rides the first's channels
// (same prior fingerprint) without a single extra solve.
func TestSharedStoreAcrossMechanisms(t *testing.T) {
	cfg := concurrencyConfig(-1)
	cfg.Store = channel.New(channel.Options{})
	m1, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Precompute(); err != nil {
		t.Fatal(err)
	}
	_, solvesBefore := m1.Stats()
	m2, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, 10, func(x geo.Point) error {
		_, err := m2.Report(x)
		return err
	})
	if _, solves := m2.Stats(); solves != 0 {
		t.Errorf("second mechanism performed %d solves despite shared warm store", solves)
	}
	if _, solves := m1.Stats(); solves != solvesBefore {
		t.Errorf("first mechanism's solve count moved %d -> %d", solvesBefore, solves)
	}
}
