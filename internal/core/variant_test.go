package core

import (
	"math"
	"testing"
)

// TestVariantHashDistinguishesConstructions pins the store-key variant
// against aliasing: every pairwise combination of spanner stretch, prune
// mass and the local parameters must map to a distinct Key.Variant (and
// the default construction to variant 0), so exact, spanner, pruned and
// locally relevant channels can never collide in a shared store or
// DirCache — including two local configurations differing only in radius
// or mass floor.
func TestVariantHashDistinguishesConstructions(t *testing.T) {
	base := Config{Eps: 0.5, G: 3, Region: region20()}
	mods := map[string]func(Config) Config{
		"exact":         func(c Config) Config { return c },
		"spanner":       func(c Config) Config { c.SpannerStretch = 1.5; return c },
		"spanner-1.8":   func(c Config) Config { c.SpannerStretch = 1.8; return c },
		"prune":         func(c Config) Config { c.PruneMass = 0.05; return c },
		"prune-0.01":    func(c Config) Config { c.PruneMass = 0.01; return c },
		"local":         func(c Config) Config { c.LocalRadius = 2; return c },
		"local-r4":      func(c Config) Config { c.LocalRadius = 4; return c },
		"local-floor":   func(c Config) Config { c.LocalRadius = 2; c.LocalMassFloor = 0.01; return c },
		"spanner+prune": func(c Config) Config { c.SpannerStretch = 1.5; c.PruneMass = 0.05; return c },
		"spanner+local": func(c Config) Config { c.SpannerStretch = 1.5; c.LocalRadius = 2; return c },
		"prune+local":   func(c Config) Config { c.PruneMass = 0.05; c.LocalRadius = 2; return c },
		"all": func(c Config) Config {
			c.SpannerStretch = 1.5
			c.PruneMass = 0.05
			c.LocalRadius = 2
			c.LocalMassFloor = 0.01
			return c
		},
	}
	variants := make(map[string]uint64, len(mods))
	for name, mod := range mods {
		m, err := New(mod(base), 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		variants[name] = m.variant
	}
	if variants["exact"] != 0 {
		t.Errorf("exact construction has variant %#x, want 0", variants["exact"])
	}
	for a, va := range variants {
		for b, vb := range variants {
			if a < b && va == vb {
				t.Errorf("variant aliasing: %q and %q both hash to %#x", a, b, va)
			}
		}
	}
}

func TestNewValidationLocal(t *testing.T) {
	base := Config{Eps: 0.5, G: 3, Region: region20()}
	bad := map[string]func(Config) Config{
		"negative-radius":      func(c Config) Config { c.LocalRadius = -1; return c },
		"inf-radius":           func(c Config) Config { c.LocalRadius = math.Inf(1); return c },
		"floor-without-radius": func(c Config) Config { c.LocalMassFloor = 0.01; return c },
		"floor-too-large":      func(c Config) Config { c.LocalRadius = 2; c.LocalMassFloor = 0.6; return c },
		"negative-floor":       func(c Config) Config { c.LocalRadius = 2; c.LocalMassFloor = -0.1; return c },
	}
	for name, mod := range bad {
		if _, err := New(mod(base), 1); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
	if _, err := New(Config{Eps: 0.5, G: 3, Region: region20(), LocalRadius: 3, LocalMassFloor: 0.02}, 1); err != nil {
		t.Errorf("valid local config rejected: %v", err)
	}
}
