// Package core implements the paper's primary contribution: the Multi-Step
// Mechanism (MSM, §4) for geo-indistinguishable location reporting over a
// GeoInd-preserving Hierarchical Index (GIHI).
//
// MSM splits the total privacy budget eps across the levels of a
// hierarchical grid using the analytical model of §5 (package budget), then
// descends the index top-down (Algorithm 1): at level i it builds the
// optimal mechanism OPT (package opt) on the g x g subgrid of the cell
// selected at level i-1, using budget eps_i and the adversarial prior
// restricted to that subgrid, and samples the next cell from the resulting
// channel. The center of the leaf-level cell selected at the final step is
// reported. By the composability property of GeoInd (§2.2), the pipeline
// satisfies eps-GeoInd with eps = sum_i eps_i.
//
// Each per-level channel depends only on (level, parent cell), so solved
// channels are memoized: the first query through a region pays h small LP
// solves, subsequent queries only sample. Precompute warms the whole cache,
// mirroring the paper's offline-download deployment model (§3.1).
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"geoind/internal/budget"
	"geoind/internal/channel"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/lp"
	"geoind/internal/opt"
	"geoind/internal/prior"
)

// Default configuration values.
const (
	// DefaultRho is the per-level same-cell probability target (§6.1 uses
	// 0.8 as the default).
	DefaultRho = 0.8
	// DefaultMaxLeafGranularity bounds g^h: the index stops deepening when
	// the leaf grid would exceed this many cells per side.
	DefaultMaxLeafGranularity = 1024
	// MaxFanout bounds the per-level granularity so each LP stays small.
	MaxFanout = 16
)

// Config parameterizes an MSM mechanism.
type Config struct {
	// Eps is the total privacy budget (required, > 0).
	Eps float64
	// G is the per-level grid granularity (fanout per side), in [2, MaxFanout].
	G int
	// Region is the square planar domain (side L) locations live in.
	Region geo.Rect
	// Rho is the per-level target for Pr[x|x]; 0 means DefaultRho.
	Rho float64
	// Metric is the utility metric dQ optimized at each level.
	Metric geo.Metric
	// MaxHeight optionally caps the index height; 0 means "as deep as the
	// budget and DefaultMaxLeafGranularity allow".
	MaxHeight int
	// ForceHeight pins the index to exactly this many levels, distributing
	// the budget with budget.AllocateFixedHeight. Used for like-for-like
	// comparisons against OPT at a fixed effective granularity (Table 2).
	// 0 means adaptive height (Algorithm 2).
	ForceHeight int
	// CustomBudgets, if non-empty, bypasses the allocation strategy
	// entirely: level i gets CustomBudgets[i-1] and the height is the slice
	// length. Eps is then ignored except that the total budget becomes
	// sum(CustomBudgets). Used by the budget-allocation ablation.
	CustomBudgets []float64
	// Prior is the adversarial prior. Its grid must cover Region with a
	// granularity divisible by the leaf granularity g^h. Nil means uniform
	// (or PriorPoints, if given).
	Prior *prior.Prior
	// PriorPoints, if non-empty and Prior is nil, is a set of check-in
	// locations from which the leaf-granularity empirical prior is built.
	PriorPoints []geo.Point
	// LP configures the per-level interior-point solves.
	LP *lp.IPMOptions
	// DisableCache turns off channel memoization (used by benchmarks to
	// measure cold-path cost): every descent step re-solves its LP, and the
	// channel store is bypassed entirely.
	DisableCache bool
	// Workers bounds the parallelism of the whole channel pipeline: the
	// per-column block factorizations inside each LP solve (unless LP
	// already pins its own worker count), the Precompute fan-out across the
	// hierarchy, and — when greater than one — the warm sampling path, which
	// switches from one mutex-guarded RNG to an independent seeded PCG
	// stream per query so concurrent Reports never serialize. 0 or 1 keeps
	// the historical fully sequential behaviour (bit-identical outputs);
	// negative means one worker per CPU.
	Workers int
	// Store optionally injects a shared channel store (e.g. one store for
	// several mechanisms in a server). Nil means a private store. Keys
	// include the level budget, metric and a prior fingerprint, so distinct
	// mechanisms sharing a store never collide.
	Store *channel.Store
	// Owns, when non-nil, restricts PrecomputeCtx to the channel keys it
	// returns true for (the fabric installs its consistent-hash ownership
	// test here, so a fleet's replicas precompute disjoint partitions of
	// the key space — each unique channel is solved by exactly one
	// replica). Query-time descent is unaffected: a non-owned channel is
	// fetched from its owner through the store's backing, or solved
	// locally as a last resort.
	Owns func(key channel.Key) bool
	// SpannerStretch, when > 0, replaces each per-level full-constraint LP
	// with the spanner-reduced formulation of Bordenabe et al. at this
	// stretch factor (>= 1; stretch -> 1 recovers the exact LP). Reduced
	// channels satisfy eps-GeoInd exactly but are keyed separately in the
	// store (Key.Variant carries the stretch bits), so exact and reduced
	// channels — including persisted snapshots — never alias. 0 keeps the
	// exact formulation.
	SpannerStretch float64
	// Sampler selects the warm-path sampling implementation: opt.SamplerCum
	// (the default — cumulative binary search, bit-identical to historical
	// output streams) or opt.SamplerAlias (O(1) Walker alias tables, built
	// once per channel and shared across goroutines).
	Sampler opt.SamplerKind
	// PruneMass, when > 0, compacts each solved channel by pruning per-row
	// probability mass up to this bound into a uniform background row (the
	// eps-preserving construction of opt.Channel.Prune), shrinking resident
	// and persisted channels. Every pruned channel is re-verified against
	// the full GeoInd constraint set; a verification failure falls back to
	// the dense channel (counted in SamplerInfo). Must be in
	// [0, opt.MaxPruneMass); pruned channels are keyed separately in the
	// store (Key.Variant covers the prune mass), so dense and compact
	// channels — including persisted snapshots — never alias.
	PruneMass float64
	// LocalRadius, when > 0 (km), switches every per-level solve to the
	// locally relevant OPT construction (opt.BuildLocal): the LP runs only
	// over the relevance set — the heaviest-prior cells covering 1 -
	// LocalMassFloor of the subdomain's mass, dilated by this radius — and
	// the excluded tail receives the analytically padded β background.
	// Each local channel is re-gated by the GeoInd verifier restricted to
	// its domain; a gate failure falls back to the dense (or spanner)
	// solve, counted in LocalInfo. Composes with SpannerStretch (the
	// reduced LP then uses spanner constraints) and is keyed separately in
	// the store via Key.Variant. PruneMass is ignored for local channels —
	// they are already compact.
	LocalRadius float64
	// LocalMassFloor bounds the prior mass left outside the relevance core
	// (and the per-row prune budget inside it). 0 means
	// opt.DefaultLocalMassFloor; must stay in (0, opt.MaxPruneMass). Only
	// meaningful when LocalRadius > 0.
	LocalMassFloor float64
}

// storeNamespace is the Key namespace of MSM grid channels.
const storeNamespace = "msm"

// reportStreamSalt derives the per-query PCG stream sequence numbers used by
// the lock-free sampling path (Workers > 1). The sequential path keeps the
// historical stream constant, so the two modes can never collide.
const reportStreamSalt = 0x6a09e667f3bcc909

// Mechanism is a ready-to-use multi-step mechanism.
type Mechanism struct {
	cfg       Config
	alloc     budget.Allocation
	hier      *grid.Hierarchy
	leafPrior *prior.Prior
	seed      uint64

	store     *channel.Store
	priorHash uint64
	variant   uint64 // store-key variant; 0 means unset (exact, dense)

	queries        atomic.Int64
	solves         atomic.Int64 // LP solves performed (store misses + bypass solves)
	prunedChannels atomic.Int64 // solves whose channel was compacted
	pruneFallbacks atomic.Int64 // solves kept dense after a failed prune
	localChannels  atomic.Int64 // solves done over a locally relevant domain
	localFallbacks atomic.Int64 // local builds that fell back to a dense solve
	queryIdx       atomic.Uint64

	rng   *rand.Rand
	rngMu sync.Mutex // guards rng for sequential-mode Report
}

// New builds an MSM mechanism: it runs the budget allocation of §5 to fix
// the index height and per-level budgets, constructs the hierarchy, and
// prepares the leaf-granularity prior. Channels are solved lazily on first
// use (or eagerly via Precompute). The seed makes all sampling reproducible.
func New(cfg Config, seed uint64) (*Mechanism, error) {
	if !(cfg.Eps > 0) || math.IsInf(cfg.Eps, 0) {
		return nil, fmt.Errorf("msm: eps=%g must be positive and finite", cfg.Eps)
	}
	if cfg.G < 2 || cfg.G > MaxFanout {
		return nil, fmt.Errorf("msm: granularity g=%d outside [2,%d]", cfg.G, MaxFanout)
	}
	if cfg.Region.Width() <= 0 || cfg.Region.Height() <= 0 {
		return nil, fmt.Errorf("msm: degenerate region %v", cfg.Region)
	}
	if cfg.Rho == 0 {
		cfg.Rho = DefaultRho
	}
	if !(cfg.Rho > 0 && cfg.Rho < 1) {
		return nil, fmt.Errorf("msm: rho=%g outside (0,1)", cfg.Rho)
	}
	if !cfg.Metric.Valid() {
		return nil, fmt.Errorf("msm: unknown metric %v", cfg.Metric)
	}
	if cfg.SpannerStretch != 0 && (!(cfg.SpannerStretch >= 1) || math.IsInf(cfg.SpannerStretch, 0)) {
		return nil, fmt.Errorf("msm: spanner stretch %g must be 0 (exact) or >= 1", cfg.SpannerStretch)
	}
	if cfg.PruneMass != 0 && (!(cfg.PruneMass > 0) || cfg.PruneMass >= opt.MaxPruneMass) {
		return nil, fmt.Errorf("msm: prune mass %g outside [0, %g)", cfg.PruneMass, opt.MaxPruneMass)
	}
	if cfg.LocalRadius != 0 && (!(cfg.LocalRadius > 0) || math.IsInf(cfg.LocalRadius, 0)) {
		return nil, fmt.Errorf("msm: local radius %g must be 0 (off) or positive and finite", cfg.LocalRadius)
	}
	if cfg.LocalMassFloor != 0 {
		if cfg.LocalRadius == 0 {
			return nil, fmt.Errorf("msm: local mass floor set without a local radius")
		}
		if !(cfg.LocalMassFloor > 0) || cfg.LocalMassFloor >= opt.MaxPruneMass {
			return nil, fmt.Errorf("msm: local mass floor %g outside (0, %g)", cfg.LocalMassFloor, opt.MaxPruneMass)
		}
	}

	// Height cap from the leaf-granularity bound (and the user's cap).
	maxH := 0
	for side := cfg.G; side <= DefaultMaxLeafGranularity; side *= cfg.G {
		maxH++
	}
	if maxH == 0 {
		maxH = 1
	}
	if cfg.MaxHeight > 0 && cfg.MaxHeight < maxH {
		maxH = cfg.MaxHeight
	}

	// The paper assumes a square domain (footnote 3); use the longer side
	// as L for allocation purposes.
	sideL := math.Max(cfg.Region.Width(), cfg.Region.Height())
	var (
		alloc budget.Allocation
		err   error
	)
	switch {
	case len(cfg.CustomBudgets) > 0:
		total := 0.0
		for i, e := range cfg.CustomBudgets {
			if !(e > 0) || math.IsInf(e, 0) {
				return nil, fmt.Errorf("msm: custom budget %d is %g, must be positive and finite", i+1, e)
			}
			total += e
		}
		alloc = budget.Allocation{Rho: cfg.Rho, Eps: append([]float64(nil), cfg.CustomBudgets...)}
		cfg.Eps = total
	case cfg.ForceHeight > 0:
		alloc, err = budget.AllocateFixedHeight(cfg.Eps, sideL, cfg.G, cfg.Rho, cfg.ForceHeight)
	default:
		alloc, err = budget.Allocate(cfg.Eps, sideL, cfg.G, cfg.Rho, maxH)
	}
	if err != nil {
		return nil, fmt.Errorf("msm: budget allocation: %w", err)
	}

	hier, err := grid.NewHierarchy(cfg.Region, cfg.G, alloc.Height())
	if err != nil {
		return nil, fmt.Errorf("msm: %w", err)
	}

	leafGrid := hier.LevelGrid(alloc.Height())
	var leaf *prior.Prior
	switch {
	case cfg.Prior != nil:
		leaf, err = adaptPrior(cfg.Prior, leafGrid)
		if err != nil {
			return nil, fmt.Errorf("msm: %w", err)
		}
	case len(cfg.PriorPoints) > 0:
		leaf = prior.FromPoints(leafGrid, cfg.PriorPoints)
	default:
		leaf = prior.Uniform(leafGrid)
	}

	m := &Mechanism{
		cfg:       cfg,
		alloc:     alloc,
		hier:      hier,
		leafPrior: leaf,
		seed:      seed,
		rng:       rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		store:     cfg.Store,
	}
	if m.store == nil {
		m.store = channel.New(channel.Options{})
	}
	// Fingerprint everything the per-key fields don't already capture:
	// geometry, fanout, height and the exact leaf prior.
	h := channel.NewHasher()
	h.Int(cfg.G)
	h.Int(alloc.Height())
	h.Float64(cfg.Region.MinX)
	h.Float64(cfg.Region.MinY)
	h.Float64(cfg.Region.MaxX)
	h.Float64(cfg.Region.MaxY)
	h.Floats(leaf.Weights())
	m.priorHash = h.Sum()
	// Non-default channel constructions (spanner-reduced LPs, pruned compact
	// representations, locally relevant domains) get a store-key variant
	// fingerprinting every knob, so they never alias the exact dense
	// channels — or each other — in a shared store or its persisted
	// snapshots.
	if cfg.SpannerStretch > 0 || cfg.PruneMass > 0 || cfg.LocalRadius > 0 {
		vh := channel.NewHasher()
		vh.Uint64(math.Float64bits(cfg.SpannerStretch))
		vh.Uint64(math.Float64bits(cfg.PruneMass))
		vh.Uint64(math.Float64bits(cfg.LocalRadius))
		vh.Uint64(math.Float64bits(cfg.LocalMassFloor))
		m.variant = vh.Sum()
	}
	return m, nil
}

// adaptPrior brings a user-supplied prior onto the leaf grid: identical
// granularity is used as-is, a finer divisible granularity is aggregated.
func adaptPrior(p *prior.Prior, leaf *grid.Grid) (*prior.Prior, error) {
	pg := p.Grid()
	if pg.Bounds() != leaf.Bounds() {
		return nil, fmt.Errorf("prior bounds %v do not match region %v", pg.Bounds(), leaf.Bounds())
	}
	if pg.Granularity() == leaf.Granularity() {
		return p, nil
	}
	if pg.Granularity()%leaf.Granularity() == 0 {
		return p.Aggregate(leaf)
	}
	return nil, fmt.Errorf("prior granularity %d incompatible with leaf granularity %d (must be an exact multiple)",
		pg.Granularity(), leaf.Granularity())
}

// Allocation returns the budget split chosen at construction.
func (m *Mechanism) Allocation() budget.Allocation { return m.alloc }

// Height returns the index height h.
func (m *Mechanism) Height() int { return m.alloc.Height() }

// LeafGrid returns the finest-level grid (granularity g^h).
func (m *Mechanism) LeafGrid() *grid.Grid { return m.hier.LevelGrid(m.Height()) }

// Hierarchy exposes the underlying GIHI.
func (m *Mechanism) Hierarchy() *grid.Hierarchy { return m.hier }

// Epsilon returns the total privacy budget.
func (m *Mechanism) Epsilon() float64 { return m.cfg.Eps }

// Metric returns the configured utility metric.
func (m *Mechanism) Metric() geo.Metric { return m.cfg.Metric }

// Stats reports cache behaviour: total queries answered and LP solves
// performed (equivalently, channel-store misses; with DisableCache, every
// descent step). Both counters are maintained atomically, so Stats is safe
// and accurate under concurrent Report/Precompute load.
func (m *Mechanism) Stats() (queries, solves int) {
	return int(m.queries.Load()), int(m.solves.Load())
}

// SamplerInfo reports the warm-path sampling configuration and the pruning
// counters: how many solved channels were compacted and how many fell back
// to dense after failing the post-prune GeoInd verification.
func (m *Mechanism) SamplerInfo() (kind string, pruneMass float64, pruned, fallbacks int64) {
	return m.cfg.Sampler.String(), m.cfg.PruneMass, m.prunedChannels.Load(), m.pruneFallbacks.Load()
}

// LocalInfo reports the locally relevant OPT configuration and its solve
// counters: channels solved over a reduced domain, and local builds whose
// restricted verifier gate (or LP) failed so the solve fell back to the
// dense formulation. Radius 0 means the variant is off.
func (m *Mechanism) LocalInfo() (radius, massFloor float64, localChannels, denseFallbacks int64) {
	massFloor = m.cfg.LocalMassFloor
	if m.cfg.LocalRadius > 0 && massFloor == 0 {
		massFloor = opt.DefaultLocalMassFloor
	}
	return m.cfg.LocalRadius, massFloor, m.localChannels.Load(), m.localFallbacks.Load()
}

// sample draws one descent step from ch with the configured sampler kind
// (the alias table is built lazily on first use and shared thereafter).
func (m *Mechanism) sample(ch *opt.Channel, xLocal int, rng *rand.Rand) int {
	return ch.Sampler(m.cfg.Sampler).Sample(xLocal, rng)
}

// StoreStats returns a snapshot of the underlying channel store's counters
// (hits, misses, in-flight solves, resident entries). With an injected
// shared store the numbers aggregate every mechanism using it.
func (m *Mechanism) StoreStats() channel.Stats { return m.store.Stats() }

// DirCacheStats returns the persistent backing cache's counters (loads,
// version misses, decode errors) when one is configured; ok is false
// otherwise.
func (m *Mechanism) DirCacheStats() (channel.DirStats, bool) { return m.store.BackingStats() }

// SyncStore blocks until the store's write-behind persistence goroutines
// (if a backing cache is configured) have drained. Call after Precompute or
// before shutdown to guarantee solved channels reached disk.
func (m *Mechanism) SyncStore() { m.store.Sync() }

// Workers returns the effective parallelism degree of the pipeline.
func (m *Mechanism) Workers() int { return channel.Workers(m.cfg.Workers) }

// levelSubPrior returns the normalized prior over the g x g children of
// parentIdx at the given level (0 = root). Zero-mass subdomains fall back
// to uniform.
func (m *Mechanism) levelSubPrior(level, parentIdx int) []float64 {
	g := m.cfg.G
	leafG := m.LeafGrid().Granularity()
	childG := 1
	for i := 0; i <= level; i++ {
		childG *= g
	}
	ratio := leafG / childG // leaf cells per child cell side
	var pRow, pCol int
	if level > 0 {
		pRow, pCol = m.hier.LevelGrid(level).RowCol(parentIdx)
	}
	baseRow := pRow * g * ratio
	baseCol := pCol * g * ratio
	w := make([]float64, g*g)
	total := 0.0
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			mass := m.leafPrior.BlockMass(baseRow+r*ratio, baseCol+c*ratio, ratio, ratio)
			w[r*g+c] = mass
			total += mass
		}
	}
	if total == 0 {
		u := 1 / float64(len(w))
		for i := range w {
			w[i] = u
		}
		return w
	}
	inv := 1 / total
	for i := range w {
		w[i] *= inv
	}
	return w
}

// lpOpts resolves the interior-point options for one solve: an explicit
// Config.LP wins field by field, with the pipeline worker count filled in
// when LP does not pin its own.
func (m *Mechanism) lpOpts() *lp.IPMOptions {
	var o lp.IPMOptions
	if m.cfg.LP != nil {
		o = *m.cfg.LP
	}
	if o.Workers == 0 {
		o.Workers = m.cfg.Workers
	}
	return &o
}

// channel returns the OPT channel for descending from parentIdx at level
// (into level+1). The shared store deduplicates concurrent solves of the
// same key (singleflight), so a cold channel is solved exactly once no
// matter how many goroutines race for it; with DisableCache the store is
// bypassed and every call re-solves.
func (m *Mechanism) channel(ctx context.Context, level, parentIdx int) (*opt.Channel, error) {
	if m.cfg.DisableCache {
		return m.solveChannel(ctx, level, parentIdx)
	}
	key := m.storeKey(level, parentIdx)
	v, _, err := m.store.GetOrComputeCtx(ctx, key, func(solveCtx context.Context) (any, error) {
		// solveCtx is the store's detached solve context, not the caller's
		// request ctx: the solve outlives any individual waiter and is only
		// canceled when every waiter has abandoned it (or SolveTimeout fires).
		return m.solveChannel(solveCtx, level, parentIdx)
	})
	if err != nil {
		return nil, err
	}
	// A persisted snapshot passed checksum, key and codec validation, but a
	// foreign backing could in principle hand back the wrong shape; never
	// trust it over a fresh solve.
	ch, ok := v.(*opt.Channel)
	if !ok || ch.N() != m.cfg.G*m.cfg.G {
		return m.solveChannel(ctx, level, parentIdx)
	}
	return ch, nil
}

// storeKey assembles the store key for the channel descending from
// parentIdx at level. Every replica with the same configuration derives the
// same key (the prior hash and variant are content fingerprints), which is
// what lets a fleet address each other's snapshots.
func (m *Mechanism) storeKey(level, parentIdx int) channel.Key {
	key := channel.NewKey(storeNamespace, level, parentIdx, m.alloc.Eps[level], int(m.cfg.Metric), m.priorHash)
	if m.variant != 0 {
		key = key.WithVariant(m.variant)
	}
	return key
}

// levelCells returns the number of parent cells at level (the virtual root
// is the single level-0 parent).
func (m *Mechanism) levelCells(level int) int {
	if level == 0 {
		return 1
	}
	return m.hier.LevelGrid(level).NumCells()
}

// ChannelSnapshot serves one channel in the persisted GICH frame format for
// the fabric's snapshot endpoint. The key is validated against this
// mechanism's own configuration — namespace, level range, exact level
// budget, cell range, metric, prior fingerprint and variant — so a peer can
// never make this replica solve (or leak) a channel outside its index;
// mismatches return ErrUnknownKey. With solve set the channel is obtained
// through the store's full path (singleflight, read-through, admission
// control — the caller should be the key's owner); without it only resident
// or locally cached channels are served, and a cold key returns
// ErrNotCached so a hedged fetch can never cause a duplicate solve.
func (m *Mechanism) ChannelSnapshot(ctx context.Context, key channel.Key, solve bool) ([]byte, error) {
	if m.cfg.DisableCache {
		return nil, fmt.Errorf("%w: channel cache disabled", channel.ErrUnknownKey)
	}
	if key.Namespace != storeNamespace {
		return nil, fmt.Errorf("%w: namespace %q", channel.ErrUnknownKey, key.Namespace)
	}
	if key.Level < 0 || key.Level >= m.Height() {
		return nil, fmt.Errorf("%w: level %d outside [0,%d)", channel.ErrUnknownKey, key.Level, m.Height())
	}
	if key.Cell < 0 || key.Cell >= m.levelCells(key.Level) {
		return nil, fmt.Errorf("%w: cell %d outside level %d", channel.ErrUnknownKey, key.Cell, key.Level)
	}
	if want := m.storeKey(key.Level, key.Cell); key != want {
		return nil, fmt.Errorf("%w: budget/metric/prior/variant mismatch", channel.ErrUnknownKey)
	}
	var v any
	if solve {
		var err error
		v, _, err = m.store.GetOrComputeCtx(ctx, key, func(solveCtx context.Context) (any, error) {
			return m.solveChannel(solveCtx, key.Level, key.Cell)
		})
		if err != nil {
			return nil, err
		}
	} else {
		var ok bool
		if v, ok = m.store.LoadCached(ctx, key); !ok {
			return nil, channel.ErrNotCached
		}
	}
	payload, err := opt.SnapshotCodec{}.Encode(v)
	if err != nil {
		return nil, fmt.Errorf("msm: encode snapshot: %w", err)
	}
	return channel.Snapshot(key, payload), nil
}

// solveChannel performs the LP solve for one (level, parent) subdomain,
// using the locally relevant construction when LocalRadius is set (with a
// counted dense fallback if its restricted verifier gate rejects) and the
// spanner-reduced formulation when SpannerStretch is set.
func (m *Mechanism) solveChannel(ctx context.Context, level, parentIdx int) (*opt.Channel, error) {
	sub := m.hier.SubGrid(level, parentIdx)
	pw := m.levelSubPrior(level, parentIdx)
	var (
		ch  *opt.Channel
		err error
	)
	if m.cfg.LocalRadius > 0 {
		lo := &opt.LocalOptions{
			MassFloor:      m.cfg.LocalMassFloor,
			SpannerStretch: m.cfg.SpannerStretch,
			LP:             m.lpOpts(),
			Workers:        m.cfg.Workers,
		}
		ch, err = opt.BuildLocalCtx(ctx, m.alloc.Eps[level], sub, pw, m.cfg.Metric, m.cfg.LocalRadius, lo)
		if err == nil {
			m.solves.Add(1)
			m.localChannels.Add(1)
			// Already compact: PruneMass has nothing left to prune.
			return ch, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("msm: level %d cell %d: %w", level+1, parentIdx, err)
		}
		// The local construction is an optimization, never a correctness
		// dependency: fall back to the dense (or spanner) solve and count it.
		m.localFallbacks.Add(1)
	}
	if m.cfg.SpannerStretch > 0 {
		ch, err = opt.BuildSpannerCtx(ctx, m.alloc.Eps[level], sub, pw, m.cfg.Metric, m.cfg.SpannerStretch, &opt.Options{LP: m.lpOpts()})
	} else {
		ch, err = opt.BuildCtx(ctx, m.alloc.Eps[level], sub, pw, m.cfg.Metric, &opt.Options{LP: m.lpOpts()})
	}
	if err != nil {
		return nil, fmt.Errorf("msm: level %d cell %d: %w", level+1, parentIdx, err)
	}
	m.solves.Add(1)
	if m.cfg.PruneMass > 0 {
		if pruned, perr := ch.Prune(m.cfg.PruneMass, pw); perr == nil {
			ch = pruned
			m.prunedChannels.Add(1)
		} else {
			// Keep the dense channel: pruning is an optimization, never a
			// correctness dependency. The verifier gate inside Prune already
			// rejected the compact form, so dense is the only safe answer.
			m.pruneFallbacks.Add(1)
		}
	}
	return ch, nil
}

// Report runs Algorithm 1 for the actual location x using the mechanism's
// seeded randomness and returns the sanitized location (a leaf cell
// center). Locations outside the region are clamped onto it first.
//
// With Workers <= 1 all reports draw from one shared RNG under a mutex,
// reproducing the historical sequential output stream bit for bit. With
// Workers > 1 the i-th report (in arrival order) draws from its own PCG
// stream split off the seed by the query index, so concurrent reports are
// lock-free on the sampling path while remaining deterministic: the same
// seed and the same arrival order produce the same outputs.
func (m *Mechanism) Report(x geo.Point) (geo.Point, error) {
	return m.ReportCtx(context.Background(), x)
}

// ReportCtx is Report under a context: the descent polls ctx between levels
// (through the channel store), so canceling ctx makes an in-flight cold
// report return promptly with ctx.Err() — abandoning, not aborting, any
// shared solve that still has other waiters. Warm reports never block and
// are unaffected. With ctx == context.Background() the sampling output is
// bit-identical to Report.
func (m *Mechanism) ReportCtx(ctx context.Context, x geo.Point) (geo.Point, error) {
	m.queries.Add(1)
	if channel.Workers(m.cfg.Workers) <= 1 {
		m.rngMu.Lock()
		defer m.rngMu.Unlock()
		return m.reportWithCtx(ctx, x, m.rng)
	}
	qi := m.queryIdx.Add(1) - 1
	rng := rand.New(rand.NewPCG(m.seed, reportStreamSalt^qi))
	return m.reportWithCtx(ctx, x, rng)
}

// ReportBatch sanitizes a slice of locations in one call, amortizing the
// per-report overhead of the sampling path, and returns the results in input
// order. With Workers <= 1 the shared RNG mutex is acquired once for the
// whole batch and the points are processed sequentially, so the output is
// bit-identical to calling Report in a loop. With Workers > 1 the batch
// reserves a contiguous block of query indices and runs Algorithm 1 level by
// level over the whole batch: each level's distinct (level, parent) channels
// and subgrids are acquired from the store exactly once per batch — instead
// of once per point — and the per-point descent steps fan across up to
// Workers goroutines. Every point draws from the PCG stream of its own query
// index in per-point order, so the result is independent of the worker count
// and identical to what a sequential Report loop in the same arrival order
// would produce.
//
// Sampling errors abort the batch: the returned slice is nil and the first
// error (by completion order) is reported.
func (m *Mechanism) ReportBatch(xs []geo.Point) ([]geo.Point, error) {
	return m.ReportBatchCtx(context.Background(), xs)
}

// ReportBatchCtx is ReportBatch under a context: the pooled fan-out polls
// ctx before every per-point step, so a cancel drains the workers promptly
// and the call returns ctx.Err(). When ctx is never canceled the output is
// bit-identical to ReportBatch (the polls consume no randomness).
func (m *Mechanism) ReportBatchCtx(ctx context.Context, xs []geo.Point) ([]geo.Point, error) {
	m.queries.Add(int64(len(xs)))
	out := make([]geo.Point, len(xs))
	if len(xs) == 0 {
		return out, nil
	}
	workers := channel.Workers(m.cfg.Workers)
	if workers <= 1 {
		m.rngMu.Lock()
		defer m.rngMu.Unlock()
		if err := m.reportBatchSeq(ctx, xs, out, m.rng); err != nil {
			return nil, err
		}
		return out, nil
	}
	base := m.queryIdx.Add(uint64(len(xs))) - uint64(len(xs))
	if len(xs) == 1 {
		rng := rand.New(rand.NewPCG(m.seed, reportStreamSalt^base))
		z, err := m.reportWithCtx(ctx, xs[0], rng)
		if err != nil {
			return nil, err
		}
		out[0] = z
		return out, nil
	}
	if err := m.reportBatchLevels(ctx, xs, out, base, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// reportBatchLevels is the pooled Workers>1 batch descent. Per level it
// resolves the distinct parent cells across the batch, acquires each one's
// channel and subgrid once, and then advances every point one step in
// parallel. Each point consumes its own PCG stream in the same order a
// per-point ReportCell descent would, so outputs are bit-identical to the
// per-point path for any worker count.
func (m *Mechanism) reportBatchLevels(ctx context.Context, xs, out []geo.Point, base uint64, workers int) error {
	n := len(xs)
	rngs := make([]*rand.Rand, n)
	parents := make([]int, n) // level-0 parent is the virtual root, index 0
	clamped := make([]geo.Point, n)
	for i, x := range xs {
		rngs[i] = rand.New(rand.NewPCG(m.seed, reportStreamSalt^(base+uint64(i))))
		clamped[i] = m.cfg.Region.Clamp(x)
	}
	for level := 0; level < m.Height(); level++ {
		// Distinct parents in first-appearance order; slot maps a parent to
		// its channel/subgrid index. The map is read-only during the fan-out.
		slot := make(map[int]int)
		var order []int
		for _, p := range parents {
			if _, ok := slot[p]; !ok {
				slot[p] = len(order)
				order = append(order, p)
			}
		}
		chs := make([]*opt.Channel, len(order))
		subs := make([]*grid.Grid, len(order))
		level := level
		if err := channel.ForEachCtx(ctx, workers, len(order), func(j int) error {
			ch, err := m.channel(ctx, level, order[j])
			if err != nil {
				return err
			}
			chs[j] = ch
			subs[j] = m.hier.SubGrid(level, order[j])
			return nil
		}); err != nil {
			return err
		}
		if err := channel.ForEachCtx(ctx, workers, n, func(i int) error {
			j := slot[parents[i]]
			sub := subs[j]
			// Algorithm 1 line 10: points outside the selected subdomain
			// substitute a uniformly random logical location.
			xLocal, ok := sub.CellIndex(clamped[i])
			if !ok {
				xLocal = rngs[i].IntN(sub.NumCells())
			}
			zLocal := m.sample(chs[j], xLocal, rngs[i])
			parents[i] = m.hier.ChildIndex(level, parents[i], zLocal)
			return nil
		}); err != nil {
			return err
		}
	}
	leaf := m.LeafGrid()
	for i, p := range parents {
		out[i] = leaf.Center(p)
	}
	return nil
}

// batchChan is one memoized (channel, subgrid) pair of a batch descent.
type batchChan struct {
	ch  *opt.Channel
	sub *grid.Grid
}

// reportBatchSeq runs the sequential batch descent: points in input order,
// every sample drawn from rng, so the output is bit-identical to a ReportWith
// loop. The only difference from the loop is that each (level, parent)
// channel and subgrid is acquired once per batch and memoized locally — the
// acquisition consumes no randomness, so the draw stream is unchanged. (With
// DisableCache this means one solve per distinct subdomain per batch rather
// than one per point: a batch acquires each channel once by contract.)
func (m *Mechanism) reportBatchSeq(ctx context.Context, xs, out []geo.Point, rng *rand.Rand) error {
	cache := make(map[uint64]batchChan)
	leaf := m.LeafGrid()
	h := m.Height()
	cancelable := ctx.Done() != nil
	for i, x := range xs {
		// Poll with a stride: one warm descent is a few hundred ns, so a
		// 32-point stride still cancels within ~10µs while keeping the
		// ctx.Err() cost off the per-point hot path.
		if cancelable && i&31 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		x = m.cfg.Region.Clamp(x)
		parent := 0 // virtual root
		for level := 0; level < h; level++ {
			key := uint64(level)<<32 | uint64(uint32(parent))
			bc, ok := cache[key]
			if !ok {
				ch, err := m.channel(ctx, level, parent)
				if err != nil {
					return err
				}
				bc = batchChan{ch: ch, sub: m.hier.SubGrid(level, parent)}
				cache[key] = bc
			}
			// Algorithm 1 line 10: points outside the selected subdomain
			// substitute a uniformly random logical location.
			xLocal, inSub := bc.sub.CellIndex(x)
			if !inSub {
				xLocal = rng.IntN(bc.sub.NumCells())
			}
			zLocal := m.sample(bc.ch, xLocal, rng)
			parent = m.hier.ChildIndex(level, parent, zLocal)
		}
		out[i] = leaf.Center(parent)
	}
	return nil
}

// ReportBatchWith is ReportBatch with a caller-supplied RNG: always
// sequential in input order regardless of Workers, drawing every sample from
// rng, so the output matches a ReportWith loop exactly. The evaluation
// harness uses it to keep experiment output bit-identical to the historical
// per-point loop.
func (m *Mechanism) ReportBatchWith(xs []geo.Point, rng *rand.Rand) ([]geo.Point, error) {
	out := make([]geo.Point, len(xs))
	if err := m.reportBatchSeq(context.Background(), xs, out, rng); err != nil {
		return nil, err
	}
	return out, nil
}

// ReportWith is Report with a caller-supplied RNG (not counted in Stats'
// query counter when called directly).
func (m *Mechanism) ReportWith(x geo.Point, rng *rand.Rand) (geo.Point, error) {
	return m.reportWithCtx(context.Background(), x, rng)
}

func (m *Mechanism) reportWithCtx(ctx context.Context, x geo.Point, rng *rand.Rand) (geo.Point, error) {
	idx, err := m.ReportCellCtx(ctx, x, rng)
	if err != nil {
		return geo.Point{}, err
	}
	return m.LeafGrid().Center(idx), nil
}

// ReportCell runs the multi-step descent and returns the index of the
// selected leaf cell.
func (m *Mechanism) ReportCell(x geo.Point, rng *rand.Rand) (int, error) {
	return m.ReportCellCtx(context.Background(), x, rng)
}

// ReportCellCtx is ReportCell under a context; the per-level channel
// acquisitions observe ctx, so canceling it aborts a cold descent promptly.
func (m *Mechanism) ReportCellCtx(ctx context.Context, x geo.Point, rng *rand.Rand) (int, error) {
	x = m.cfg.Region.Clamp(x)
	parent := 0 // virtual root
	for level := 0; level < m.Height(); level++ {
		ch, err := m.channel(ctx, level, parent)
		if err != nil {
			return 0, err
		}
		sub := m.hier.SubGrid(level, parent)
		// x-hat_i: the user's logical location at this level. When the
		// actual location falls outside the selected subdomain (possible by
		// design: the previous level may have reported a different cell),
		// Algorithm 1 line 10 substitutes a uniformly random location.
		xLocal, ok := sub.CellIndex(x)
		if !ok {
			xLocal = rng.IntN(sub.NumCells())
		}
		zLocal := m.sample(ch, xLocal, rng)
		parent = m.hier.ChildIndex(level, parent, zLocal)
	}
	return parent, nil
}

// Precompute eagerly solves every channel in the index (the paper's offline
// phase). The number of LPs is 1 + g^2 + g^4 + ... + g^{2(h-1)}. Each
// level's solves fan out across up to Workers goroutines — the cold path is
// then bounded by the slowest level sum instead of the serial total — and
// the store's singleflight keeps concurrent Precompute/Report traffic from
// duplicating work.
func (m *Mechanism) Precompute() error {
	return m.PrecomputeCtx(context.Background())
}

// PrecomputeCtx is Precompute under a context: the per-level fan-out polls
// ctx before each solve, so canceling it (e.g. on SIGINT during warmup)
// stops issuing new solves and returns ctx.Err() promptly. Channels already
// solved stay in the store.
func (m *Mechanism) PrecomputeCtx(ctx context.Context) error {
	if m.cfg.DisableCache {
		return fmt.Errorf("msm: cannot precompute with cache disabled")
	}
	workers := channel.Workers(m.cfg.Workers)
	parents := []int{0}
	for level := 0; level < m.Height(); level++ {
		level := level
		ps := parents
		if err := channel.ForEachCtx(ctx, workers, len(ps), func(i int) error {
			// Owner-only precompute: replicas in a fabric fleet warm
			// disjoint key partitions, so each unique channel is solved by
			// exactly one replica. Non-owned channels are pulled lazily from
			// their owner (or solved as a fallback) at query time.
			if m.cfg.Owns != nil && !m.cfg.Owns(m.storeKey(level, ps[i])) {
				return nil
			}
			_, err := m.channel(ctx, level, ps[i])
			return err
		}); err != nil {
			return err
		}
		var next []int
		if level+1 < m.Height() {
			for _, p := range ps {
				for local := 0; local < m.cfg.G*m.cfg.G; local++ {
					next = append(next, m.hier.ChildIndex(level, p, local))
				}
			}
		}
		parents = next
	}
	return nil
}

// ChannelCount returns the number of resident channels. With an injected
// shared store the count covers every mechanism using that store.
func (m *Mechanism) ChannelCount() int {
	if m.cfg.DisableCache {
		return 0
	}
	return m.store.Len()
}

// ClearCache drops all cached channels (benchmarking aid). With an injected
// shared store this clears the other users' channels too.
func (m *Mechanism) ClearCache() {
	m.store.Clear()
}
