package core

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/laplace"
	"geoind/internal/prior"
)

func region20() geo.Rect { return geo.NewSquare(20) }

func clusteredPoints(n int, seed uint64) []geo.Point {
	rng := rand.New(rand.NewPCG(seed, 1))
	centers := []geo.Point{{X: 5, Y: 5}, {X: 14, Y: 12}, {X: 8, Y: 17}}
	pts := make([]geo.Point, 0, n)
	for i := 0; i < n; i++ {
		c := centers[rng.IntN(len(centers))]
		p := geo.Point{X: c.X + rng.NormFloat64()*1.5, Y: c.Y + rng.NormFloat64()*1.5}
		pts = append(pts, region20().Clamp(p))
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	base := Config{Eps: 0.5, G: 3, Region: region20()}
	cases := []func(Config) Config{
		func(c Config) Config { c.Eps = 0; return c },
		func(c Config) Config { c.Eps = math.Inf(1); return c },
		func(c Config) Config { c.G = 1; return c },
		func(c Config) Config { c.G = MaxFanout + 1; return c },
		func(c Config) Config { c.Region = geo.Rect{}; return c },
		func(c Config) Config { c.Rho = 1.5; return c },
		func(c Config) Config { c.Rho = -0.1; return c },
		func(c Config) Config { c.Metric = geo.Metric(9); return c },
	}
	for i, mod := range cases {
		if _, err := New(mod(base), 1); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := New(base, 1); err != nil {
		t.Fatalf("base config should build: %v", err)
	}
}

func TestAllocationConsistency(t *testing.T) {
	m, err := New(Config{Eps: 0.5, G: 4, Region: region20()}, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Allocation()
	if a.Height() != m.Height() {
		t.Errorf("height mismatch %d vs %d", a.Height(), m.Height())
	}
	if math.Abs(a.Total()-0.5) > 1e-12 {
		t.Errorf("budget total %g != 0.5", a.Total())
	}
	wantLeaf := 1
	for i := 0; i < m.Height(); i++ {
		wantLeaf *= 4
	}
	if m.LeafGrid().Granularity() != wantLeaf {
		t.Errorf("leaf granularity %d want %d", m.LeafGrid().Granularity(), wantLeaf)
	}
}

func TestMaxHeightRespected(t *testing.T) {
	m, err := New(Config{Eps: 50, G: 2, Region: region20(), MaxHeight: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Height() != 2 {
		t.Errorf("height %d want 2 (capped)", m.Height())
	}
}

func TestReportDeterministicWithSeed(t *testing.T) {
	mk := func() *Mechanism {
		m, err := New(Config{Eps: 0.5, G: 3, Region: region20(), PriorPoints: clusteredPoints(500, 3)}, 42)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := mk(), mk()
	x := geo.Point{X: 6, Y: 7}
	for i := 0; i < 50; i++ {
		z1, err1 := m1.Report(x)
		z2, err2 := m2.Report(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if z1 != z2 {
			t.Fatalf("report %d diverged: %v vs %v", i, z1, z2)
		}
	}
}

func TestReportsAreLeafCenters(t *testing.T) {
	m, err := New(Config{Eps: 0.5, G: 3, Region: region20()}, 9)
	if err != nil {
		t.Fatal(err)
	}
	centers := map[geo.Point]bool{}
	for _, c := range m.LeafGrid().Centers() {
		centers[c] = true
	}
	rng := rand.New(rand.NewPCG(10, 11))
	for i := 0; i < 300; i++ {
		x := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		z, err := m.ReportWith(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !centers[z] {
			t.Fatalf("report %v is not a leaf center", z)
		}
	}
	// Out-of-region input is clamped, not an error.
	if _, err := m.ReportWith(geo.Point{X: -50, Y: 999}, rng); err != nil {
		t.Fatalf("out-of-region report failed: %v", err)
	}
}

func TestChannelCacheBehaviour(t *testing.T) {
	m, err := New(Config{Eps: 0.5, G: 2, Region: region20()}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(20, 21))
	for i := 0; i < 200; i++ {
		x := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		if _, err := m.ReportWith(x, rng); err != nil {
			t.Fatal(err)
		}
	}
	_, solves := m.Stats()
	maxChannels := 0
	per := 1
	for level := 0; level < m.Height(); level++ {
		maxChannels += per
		per *= 4
	}
	if solves > maxChannels {
		t.Errorf("solves %d exceed channel count bound %d", solves, maxChannels)
	}
	if m.ChannelCount() != solves {
		t.Errorf("cache size %d != solves %d", m.ChannelCount(), solves)
	}
	// Re-running the same workload must not trigger new solves.
	before := solves
	rng = rand.New(rand.NewPCG(20, 21))
	for i := 0; i < 200; i++ {
		x := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		if _, err := m.ReportWith(x, rng); err != nil {
			t.Fatal(err)
		}
	}
	if _, after := m.Stats(); after != before {
		t.Errorf("warm cache performed %d extra solves", after-before)
	}
}

func TestPrecompute(t *testing.T) {
	m, err := New(Config{Eps: 0.6, G: 2, Region: region20(), MaxHeight: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Precompute(); err != nil {
		t.Fatal(err)
	}
	want := 0
	per := 1
	for level := 0; level < m.Height(); level++ {
		want += per
		per *= 4
	}
	if m.ChannelCount() != want {
		t.Errorf("precomputed %d channels want %d", m.ChannelCount(), want)
	}
	_, solvesBefore := m.Stats()
	rng := rand.New(rand.NewPCG(33, 34))
	for i := 0; i < 100; i++ {
		if _, err := m.ReportWith(geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}, rng); err != nil {
			t.Fatal(err)
		}
	}
	if _, solvesAfter := m.Stats(); solvesAfter != solvesBefore {
		t.Errorf("post-precompute queries performed %d LP solves", solvesAfter-solvesBefore)
	}
	m.ClearCache()
	if m.ChannelCount() != 0 {
		t.Error("ClearCache left channels behind")
	}
}

func TestDisableCache(t *testing.T) {
	m, err := New(Config{Eps: 0.5, G: 2, Region: region20(), MaxHeight: 2, DisableCache: true}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(44, 45))
	for i := 0; i < 5; i++ {
		if _, err := m.ReportWith(geo.Point{X: 3, Y: 3}, rng); err != nil {
			t.Fatal(err)
		}
	}
	_, solves := m.Stats()
	if solves < 5*m.Height() {
		t.Errorf("cache disabled but only %d solves for %d queries of height %d", solves, 5, m.Height())
	}
	if err := m.Precompute(); err == nil {
		t.Error("Precompute should refuse with cache disabled")
	}
}

func TestLevelSubPriorNormalized(t *testing.T) {
	m, err := New(Config{Eps: 0.5, G: 3, Region: region20(), PriorPoints: clusteredPoints(2000, 8)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for level := 0; level < m.Height(); level++ {
		nParents := 1
		if level > 0 {
			nParents = m.hier.LevelGrid(level).NumCells()
		}
		for p := 0; p < nParents; p++ {
			w := m.levelSubPrior(level, p)
			if len(w) != 9 {
				t.Fatalf("level %d parent %d: len %d", level, p, len(w))
			}
			s := 0.0
			for _, v := range w {
				if v < 0 {
					t.Fatalf("negative subprior weight %g", v)
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("level %d parent %d: subprior sums to %g", level, p, s)
			}
		}
	}
}

func TestPriorAdaptation(t *testing.T) {
	// A prior on a finer, divisible grid is aggregated.
	m0, err := New(Config{Eps: 0.5, G: 2, Region: region20(), MaxHeight: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	leafG := m0.LeafGrid().Granularity() // 4
	fine := grid.MustNew(region20(), leafG*3)
	p := prior.Uniform(fine)
	if _, err := New(Config{Eps: 0.5, G: 2, Region: region20(), MaxHeight: 2, Prior: p}, 5); err != nil {
		t.Errorf("divisible finer prior should adapt: %v", err)
	}
	// Incompatible granularity errors.
	odd := prior.Uniform(grid.MustNew(region20(), leafG*3-1))
	if _, err := New(Config{Eps: 0.5, G: 2, Region: region20(), MaxHeight: 2, Prior: odd}, 5); err == nil {
		t.Error("incompatible prior granularity should error")
	}
	// Mismatched bounds error.
	other := prior.Uniform(grid.MustNew(geo.NewSquare(10), leafG))
	if _, err := New(Config{Eps: 0.5, G: 2, Region: region20(), MaxHeight: 2, Prior: other}, 5); err == nil {
		t.Error("mismatched prior bounds should error")
	}
}

func TestExactChannelStochastic(t *testing.T) {
	m, err := New(Config{Eps: 0.4, G: 2, Region: region20(), MaxHeight: 2,
		PriorPoints: clusteredPoints(300, 12)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	k, err := m.ExactChannel()
	if err != nil {
		t.Fatal(err)
	}
	n := m.LeafGrid().NumCells()
	for x := 0; x < n; x++ {
		s := 0.0
		for z := 0; z < n; z++ {
			v := k[x*n+z]
			if v < 0 {
				t.Fatalf("negative exact-channel entry at (%d,%d)", x, z)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("exact channel row %d sums to %g", x, s)
		}
	}
}

// TestExactChannelMatchesSampling cross-checks the analytic end-to-end
// channel against empirical sampling frequencies.
func TestExactChannelMatchesSampling(t *testing.T) {
	m, err := New(Config{Eps: 0.5, G: 2, Region: region20(), MaxHeight: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	k, err := m.ExactChannel()
	if err != nil {
		t.Fatal(err)
	}
	n := m.LeafGrid().NumCells()
	xCell := 5
	x := m.LeafGrid().Center(xCell)
	rng := rand.New(rand.NewPCG(55, 56))
	const trials = 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		z, err := m.ReportCell(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[z]++
	}
	for z := 0; z < n; z++ {
		emp := float64(counts[z]) / trials
		if math.Abs(emp-k[xCell*n+z]) > 0.012 {
			t.Errorf("z=%d: empirical %g vs exact %g", z, emp, k[xCell*n+z])
		}
	}
}

// TestPrivacyAudit verifies the composite GeoInd bound on the exact
// end-to-end channel. The per-level distinguishability distance is the
// distance between snapped (level-i) logical locations when both inputs lie
// in the same traversed subdomain, and is bounded by the subdomain diameter
// when only one does; summing eps_i times those distances bounds the
// log-ratio of output probabilities (composability, §2.2).
func TestPrivacyAudit(t *testing.T) {
	m, err := New(Config{Eps: 0.6, G: 2, Region: region20(), MaxHeight: 2,
		PriorPoints: clusteredPoints(400, 17)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	k, err := m.ExactChannel()
	if err != nil {
		t.Fatal(err)
	}
	leaf := m.LeafGrid()
	n := leaf.NumCells()
	a := m.Allocation()
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			// Composite bound over levels. If the pair snaps to the same
			// level-i cell the level contributes nothing (identical rows on
			// every path). Otherwise, paths where both points share the
			// traversed subdomain contribute eps_i * snapped distance, and
			// paths where the subdomain splits them contribute at most
			// eps_i * subdomain diameter (the uniform-substitution row is an
			// average of rows, each within exp(eps_i*diam) of any other).
			// Level 1's subdomain is the whole root, which contains both.
			bound := 0.0
			pa, pb := leaf.Center(x), leaf.Center(xp)
			for level := 1; level <= m.Height(); level++ {
				lg := m.hier.LevelGrid(level)
				snapped := lg.Snap(pa).Dist(lg.Snap(pb))
				if snapped == 0 {
					continue
				}
				d := snapped
				if level > 1 {
					parentSide := 20.0 / math.Pow(float64(m.cfg.G), float64(level-1))
					d = math.Max(snapped, parentSide*math.Sqrt2)
				}
				bound += a.Eps[level-1] * d
			}
			for z := 0; z < n; z++ {
				pxz, pxpz := k[x*n+z], k[xp*n+z]
				if pxz <= 0 || pxpz <= 0 {
					continue
				}
				if math.Log(pxz)-math.Log(pxpz) > bound+1e-9 {
					t.Fatalf("audit failed: x=%d xp=%d z=%d ratio %g bound %g",
						x, xp, z, math.Log(pxz)-math.Log(pxpz), bound)
				}
			}
		}
	}
}

// TestMSMBeatsPlanarLaplace: the headline utility claim in miniature. On a
// clustered prior at a tight budget MSM's mean Euclidean loss should beat
// raw PL's.
func TestMSMBeatsPlanarLaplace(t *testing.T) {
	pts := clusteredPoints(4000, 23)
	m, err := New(Config{Eps: 0.3, G: 4, Region: region20(), PriorPoints: pts}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(66, 67))
	pl, err := laplace.New(0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	const nq = 2000
	var msmLoss, plLoss float64
	for i := 0; i < nq; i++ {
		x := pts[rng.IntN(len(pts))]
		z, err := m.ReportWith(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		msmLoss += x.Dist(z)
		plLoss += x.Dist(pl.Sample(x))
	}
	msmLoss /= nq
	plLoss /= nq
	if msmLoss >= plLoss {
		t.Errorf("MSM loss %g not better than PL loss %g at eps=0.3", msmLoss, plLoss)
	}
	t.Logf("mean loss: MSM=%.3f km, PL=%.3f km", msmLoss, plLoss)
}

func TestForceHeight(t *testing.T) {
	for _, h := range []int{1, 2, 3} {
		m, err := New(Config{Eps: 0.5, G: 2, Region: region20(), ForceHeight: h}, 3)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if m.Height() != h {
			t.Errorf("ForceHeight=%d gave height %d", h, m.Height())
		}
		if math.Abs(m.Allocation().Total()-0.5) > 1e-12 {
			t.Errorf("h=%d: total %g", h, m.Allocation().Total())
		}
	}
}

func TestCustomBudgets(t *testing.T) {
	m, err := New(Config{Eps: 999, G: 2, Region: region20(),
		CustomBudgets: []float64{0.3, 0.1, 0.05}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Height() != 3 {
		t.Errorf("height %d want 3", m.Height())
	}
	// Eps is overridden by the custom total.
	if math.Abs(m.Epsilon()-0.45) > 1e-12 {
		t.Errorf("epsilon %g want 0.45", m.Epsilon())
	}
	got := m.Allocation().Eps
	want := []float64{0.3, 0.1, 0.05}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("level %d: %g want %g", i+1, got[i], want[i])
		}
	}
	// Invalid custom budgets.
	if _, err := New(Config{Eps: 1, G: 2, Region: region20(),
		CustomBudgets: []float64{0.3, 0}}, 3); err == nil {
		t.Error("zero custom budget should error")
	}
	if _, err := New(Config{Eps: 1, G: 2, Region: region20(),
		CustomBudgets: []float64{0.3, -0.1}}, 3); err == nil {
		t.Error("negative custom budget should error")
	}
}

// TestReportConcurrent exercises the mutex paths under concurrent load.
func TestReportConcurrent(t *testing.T) {
	m, err := New(Config{Eps: 0.5, G: 2, Region: region20()}, 9)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 1))
			for i := 0; i < 50; i++ {
				x := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
				if _, err := m.Report(x); err != nil {
					errs <- err
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	queries, _ := m.Stats()
	if queries != 400 {
		t.Errorf("queries %d want 400", queries)
	}
}
