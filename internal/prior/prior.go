// Package prior models the adversary's background knowledge as a probability
// distribution over grid cells, following §6.1 of the paper: check-in counts
// on a fine grid, normalized, and aggregated onto coarser (aligned) grids.
//
// A Prior carries a 2-D prefix-sum table so that the mass of any aligned
// block of cells — a cell of any coarser level of the hierarchical index —
// is computed in O(1). This implements the paper's "store a global prior on
// the finest effective granularity grid ... and aggregate this information to
// obtain priors on coarser grids".
package prior

import (
	"fmt"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

// Prior is a probability distribution over the cells of a regular grid.
type Prior struct {
	g       *grid.Grid
	weights []float64 // normalized to sum 1
	cum     []float64 // (g+1)x(g+1) prefix sums of weights
}

// Uniform returns the uniform prior over g's cells.
func Uniform(g *grid.Grid) *Prior {
	w := make([]float64, g.NumCells())
	u := 1 / float64(len(w))
	for i := range w {
		w[i] = u
	}
	p, _ := FromWeights(g, w)
	return p
}

// FromPoints builds the empirical prior from check-in locations: the weight
// of a cell is its share of the in-bounds points. Points outside the grid
// bounds are ignored. If no point falls inside, the uniform prior is
// returned (the paper's mechanisms require a fully supported prior only for
// utility, not privacy, so this fallback is always safe).
func FromPoints(g *grid.Grid, pts []geo.Point) *Prior {
	w := make([]float64, g.NumCells())
	n := 0
	for _, p := range pts {
		if idx, ok := g.CellIndex(p); ok {
			w[idx]++
			n++
		}
	}
	if n == 0 {
		return Uniform(g)
	}
	inv := 1 / float64(n)
	for i := range w {
		w[i] *= inv
	}
	p, _ := FromWeights(g, w)
	return p
}

// FromWeights builds a prior from nonnegative weights (one per cell); the
// weights are normalized to sum 1. An error is returned for negative
// weights, a length mismatch, or all-zero weights.
func FromWeights(g *grid.Grid, weights []float64) (*Prior, error) {
	if len(weights) != g.NumCells() {
		return nil, fmt.Errorf("prior: %d weights for %d cells", len(weights), g.NumCells())
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || w != w {
			return nil, fmt.Errorf("prior: invalid weight %g at cell %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("prior: all weights are zero")
	}
	p := &Prior{g: g, weights: make([]float64, len(weights))}
	for i, w := range weights {
		p.weights[i] = w / total
	}
	p.buildPrefix()
	return p, nil
}

func (p *Prior) buildPrefix() {
	n := p.g.Granularity()
	p.cum = make([]float64, (n+1)*(n+1))
	for r := 0; r < n; r++ {
		rowSum := 0.0
		for c := 0; c < n; c++ {
			rowSum += p.weights[p.g.Index(r, c)]
			p.cum[(r+1)*(n+1)+(c+1)] = p.cum[r*(n+1)+(c+1)] + rowSum
		}
	}
}

// Grid returns the underlying grid.
func (p *Prior) Grid() *grid.Grid { return p.g }

// Weight returns the probability mass of cell idx.
func (p *Prior) Weight(idx int) float64 { return p.weights[idx] }

// Weights returns a copy of the full weight vector.
func (p *Prior) Weights() []float64 {
	return append([]float64(nil), p.weights...)
}

// BlockMass returns the total mass of the cell block
// rows [row0, row0+rows) x cols [col0, col0+cols), clipped to the grid.
func (p *Prior) BlockMass(row0, col0, rows, cols int) float64 {
	n := p.g.Granularity()
	r0, c0 := clamp(row0, 0, n), clamp(col0, 0, n)
	r1, c1 := clamp(row0+rows, 0, n), clamp(col0+cols, 0, n)
	if r1 <= r0 || c1 <= c0 {
		return 0
	}
	w := n + 1
	m := p.cum[r1*w+c1] - p.cum[r0*w+c1] - p.cum[r1*w+c0] + p.cum[r0*w+c0]
	if m < 0 {
		// Cancellation in the inclusion-exclusion can leave a tiny negative
		// residue for zero-mass blocks.
		return 0
	}
	return m
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Aggregate returns the prior induced on a coarser grid whose granularity
// divides this prior's granularity exactly (aligned nesting, as in the
// hierarchical index). The coarser grid must share this grid's bounds.
func (p *Prior) Aggregate(coarse *grid.Grid) (*Prior, error) {
	fineG := p.g.Granularity()
	coarseG := coarse.Granularity()
	if coarse.Bounds() != p.g.Bounds() {
		return nil, fmt.Errorf("prior: aggregate bounds mismatch")
	}
	if coarseG <= 0 || fineG%coarseG != 0 {
		return nil, fmt.Errorf("prior: granularity %d does not divide %d", coarseG, fineG)
	}
	ratio := fineG / coarseG
	w := make([]float64, coarse.NumCells())
	for r := 0; r < coarseG; r++ {
		for c := 0; c < coarseG; c++ {
			w[coarse.Index(r, c)] = p.BlockMass(r*ratio, c*ratio, ratio, ratio)
		}
	}
	return FromWeights(coarse, w)
}

// SubPrior returns the normalized prior over an aligned block of cells,
// flattened row-major as a plain weight vector of length rows*cols. If the
// block carries zero mass the result is uniform — MSM needs a usable prior
// for every visited subdomain even when the adversary assigns it no mass.
func (p *Prior) SubPrior(row0, col0, rows, cols int) []float64 {
	out := make([]float64, rows*cols)
	total := 0.0
	n := p.g.Granularity()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			gr, gc := row0+r, col0+c
			if gr < 0 || gr >= n || gc < 0 || gc >= n {
				continue
			}
			w := p.weights[p.g.Index(gr, gc)]
			out[r*cols+c] = w
			total += w
		}
	}
	if total == 0 {
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return out
	}
	inv := 1 / total
	for i := range out {
		out[i] *= inv
	}
	return out
}
