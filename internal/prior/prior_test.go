package prior

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

func g20(g int) *grid.Grid { return grid.MustNew(geo.NewSquare(20), g) }

func sum(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v
	}
	return s
}

func TestUniform(t *testing.T) {
	p := Uniform(g20(4))
	for i := 0; i < 16; i++ {
		if math.Abs(p.Weight(i)-1.0/16) > 1e-15 {
			t.Fatalf("Weight(%d)=%g", i, p.Weight(i))
		}
	}
	if math.Abs(sum(p.Weights())-1) > 1e-12 {
		t.Error("weights do not sum to 1")
	}
}

func TestFromPoints(t *testing.T) {
	g := g20(2)
	pts := []geo.Point{
		{X: 1, Y: 1}, {X: 2, Y: 2}, // cell 0 (bottom-left)
		{X: 15, Y: 15},   // cell 3 (top-right)
		{X: 100, Y: 100}, // outside: ignored
	}
	p := FromPoints(g, pts)
	if math.Abs(p.Weight(0)-2.0/3) > 1e-12 {
		t.Errorf("cell0=%g want 2/3", p.Weight(0))
	}
	if math.Abs(p.Weight(3)-1.0/3) > 1e-12 {
		t.Errorf("cell3=%g want 1/3", p.Weight(3))
	}
	if p.Weight(1) != 0 || p.Weight(2) != 0 {
		t.Error("empty cells should have zero mass")
	}
}

func TestFromPointsAllOutside(t *testing.T) {
	p := FromPoints(g20(3), []geo.Point{{X: -5, Y: -5}})
	for i := 0; i < 9; i++ {
		if math.Abs(p.Weight(i)-1.0/9) > 1e-15 {
			t.Fatal("expected uniform fallback")
		}
	}
}

func TestFromWeightsValidation(t *testing.T) {
	g := g20(2)
	if _, err := FromWeights(g, []float64{1, 2, 3}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FromWeights(g, []float64{1, -1, 1, 1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := FromWeights(g, []float64{0, 0, 0, 0}); err == nil {
		t.Error("all-zero weights should error")
	}
	if _, err := FromWeights(g, []float64{1, math.NaN(), 0, 0}); err == nil {
		t.Error("NaN weight should error")
	}
	p, err := FromWeights(g, []float64{2, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Weight(3)-0.5) > 1e-15 {
		t.Errorf("normalization wrong: %g", p.Weight(3))
	}
}

func TestBlockMassMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	g := g20(8)
	w := make([]float64, 64)
	for i := range w {
		w[i] = rng.Float64()
	}
	p, err := FromWeights(g, w)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d uint8) bool {
		r0, c0 := int(a%10)-1, int(b%10)-1 // may be slightly out of range
		rows, cols := int(c%9), int(d%9)
		direct := 0.0
		for r := r0; r < r0+rows; r++ {
			for cc := c0; cc < c0+cols; cc++ {
				if r >= 0 && r < 8 && cc >= 0 && cc < 8 {
					direct += p.Weight(g.Index(r, cc))
				}
			}
		}
		return math.Abs(p.BlockMass(r0, c0, rows, cols)-direct) <= 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockMassWholeGrid(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for _, n := range []int{1, 2, 5, 16} {
		g := g20(n)
		w := make([]float64, n*n)
		for i := range w {
			w[i] = rng.Float64() + 0.01
		}
		p, err := FromWeights(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if m := p.BlockMass(0, 0, n, n); math.Abs(m-1) > 1e-12 {
			t.Errorf("n=%d: whole-grid mass %g", n, m)
		}
	}
}

func TestAggregateConservesMass(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	fine := g20(12)
	w := make([]float64, 144)
	for i := range w {
		w[i] = rng.Float64() * rng.Float64()
	}
	p, err := FromWeights(fine, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, cg := range []int{1, 2, 3, 4, 6, 12} {
		coarse := g20(cg)
		agg, err := p.Aggregate(coarse)
		if err != nil {
			t.Fatalf("cg=%d: %v", cg, err)
		}
		if math.Abs(sum(agg.Weights())-1) > 1e-12 {
			t.Errorf("cg=%d: mass %g", cg, sum(agg.Weights()))
		}
		// Each coarse cell's mass equals the direct sum over its fine cells.
		ratio := 12 / cg
		for r := 0; r < cg; r++ {
			for c := 0; c < cg; c++ {
				direct := 0.0
				for fr := r * ratio; fr < (r+1)*ratio; fr++ {
					for fc := c * ratio; fc < (c+1)*ratio; fc++ {
						direct += p.Weight(fine.Index(fr, fc))
					}
				}
				if math.Abs(agg.Weight(coarse.Index(r, c))-direct) > 1e-12 {
					t.Fatalf("cg=%d cell (%d,%d): %g vs %g", cg, r, c, agg.Weight(coarse.Index(r, c)), direct)
				}
			}
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	p := Uniform(g20(6))
	if _, err := p.Aggregate(g20(4)); err == nil {
		t.Error("4 does not divide 6: should error")
	}
	other := grid.MustNew(geo.NewSquare(10), 3)
	if _, err := p.Aggregate(other); err == nil {
		t.Error("bounds mismatch should error")
	}
}

func TestSubPrior(t *testing.T) {
	g := g20(4)
	w := make([]float64, 16)
	w[g.Index(0, 0)] = 1
	w[g.Index(0, 1)] = 3
	w[g.Index(1, 0)] = 4
	w[g.Index(1, 1)] = 2
	w[g.Index(3, 3)] = 10
	p, err := FromWeights(g, w)
	if err != nil {
		t.Fatal(err)
	}
	sub := p.SubPrior(0, 0, 2, 2)
	want := []float64{0.1, 0.3, 0.4, 0.2}
	for i := range want {
		if math.Abs(sub[i]-want[i]) > 1e-12 {
			t.Errorf("sub[%d]=%g want %g", i, sub[i], want[i])
		}
	}
	// A zero-mass block falls back to uniform.
	sub = p.SubPrior(2, 0, 2, 2)
	for i := range sub {
		if math.Abs(sub[i]-0.25) > 1e-12 {
			t.Errorf("zero-mass sub[%d]=%g want 0.25", i, sub[i])
		}
	}
	// Out-of-range rows contribute zero weight but keep vector shape.
	sub = p.SubPrior(3, 3, 2, 2)
	if len(sub) != 4 {
		t.Fatalf("len=%d", len(sub))
	}
	if math.Abs(sub[0]-1) > 1e-12 {
		t.Errorf("corner sub=%v want mass concentrated at local 0", sub)
	}
}

func TestSubPriorAlwaysNormalized(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	g := g20(9)
	w := make([]float64, 81)
	for i := range w {
		if rng.Float64() < 0.5 {
			w[i] = rng.Float64()
		}
	}
	w[0] = 1 // ensure nonzero
	p, err := FromWeights(g, w)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		r0, c0 := int(a%9), int(b%9)
		sub := p.SubPrior(r0, c0, 3, 3)
		return math.Abs(sum(sub)-1) <= 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
