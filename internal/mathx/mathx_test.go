package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLambertW0KnownValues(t *testing.T) {
	cases := []struct{ x, w float64 }{
		{0, 0},
		{math.E, 1},
		{2 * math.E * math.E, 2},
		{-1 / math.E, -1},
		{1, 0.5671432904097838}, // Omega constant
	}
	for _, c := range cases {
		got, err := LambertW0(c.x)
		if err != nil {
			t.Fatalf("LambertW0(%g): %v", c.x, err)
		}
		if math.Abs(got-c.w) > 1e-10 {
			t.Errorf("LambertW0(%g)=%.15g want %.15g", c.x, got, c.w)
		}
	}
}

func TestLambertWm1KnownValues(t *testing.T) {
	cases := []struct{ x, w float64 }{
		{-1 / math.E, -1},
		{-2 * math.Exp(-2), -2},
		{-5 * math.Exp(-5), -5},
		{-0.1, -3.577152063957297},
	}
	for _, c := range cases {
		got, err := LambertWm1(c.x)
		if err != nil {
			t.Fatalf("LambertWm1(%g): %v", c.x, err)
		}
		if math.Abs(got-c.w) > 1e-9*math.Abs(c.w) {
			t.Errorf("LambertWm1(%g)=%.15g want %.15g", c.x, got, c.w)
		}
	}
}

func TestLambertWDomain(t *testing.T) {
	if _, err := LambertW0(-1); err == nil {
		t.Error("W0(-1) should be out of domain")
	}
	if _, err := LambertWm1(0.5); err == nil {
		t.Error("Wm1(0.5) should be out of domain")
	}
	if _, err := LambertWm1(-1); err == nil {
		t.Error("Wm1(-1) should be out of domain")
	}
	if _, err := LambertW0(math.NaN()); err == nil {
		t.Error("W0(NaN) should be out of domain")
	}
}

// Property: W0 inverts w*e^w on w >= -1.
func TestLambertW0Inverse(t *testing.T) {
	f := func(raw float64) bool {
		w := math.Mod(math.Abs(raw), 20) - 1 // w in [-1, 19)
		x := w * math.Exp(w)
		got, err := LambertW0(x)
		if err != nil {
			return false
		}
		return math.Abs(got-w) <= 1e-8*(1+math.Abs(w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Wm1 inverts w*e^w on w <= -1.
func TestLambertWm1Inverse(t *testing.T) {
	f := func(raw float64) bool {
		w := -1 - math.Mod(math.Abs(raw), 30) // w in (-31, -1]
		x := w * math.Exp(w)
		if x >= 0 { // underflow to -0 for very negative w
			return true
		}
		got, err := LambertWm1(x)
		if err != nil {
			return false
		}
		return math.Abs(got-w) <= 1e-8*(1+math.Abs(w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZetaKnownValues(t *testing.T) {
	cases := []struct{ s, want float64 }{
		{2, math.Pi * math.Pi / 6},
		{4, math.Pow(math.Pi, 4) / 90},
		{6, math.Pow(math.Pi, 6) / 945},
		{1.5, 2.6123753486854883},
		{2.5, 1.3414872572509171},
		{3.5, 1.1267338673170566},
	}
	for _, c := range cases {
		got, err := Zeta(c.s)
		if err != nil {
			t.Fatalf("Zeta(%g): %v", c.s, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Zeta(%g)=%.16g want %.16g", c.s, got, c.want)
		}
	}
}

func TestZetaDomain(t *testing.T) {
	for _, s := range []float64{1, 0.5, -2, math.NaN()} {
		if _, err := Zeta(s); err == nil {
			t.Errorf("Zeta(%g) should be out of domain", s)
		}
	}
	if _, err := HurwitzZeta(2, 0); err == nil {
		t.Error("HurwitzZeta(2,0) should be out of domain")
	}
}

func TestDirichletBetaKnownValues(t *testing.T) {
	cases := []struct{ s, want float64 }{
		{2, 0.9159655941772190}, // Catalan's constant
		{3, math.Pow(math.Pi, 3) / 32},
		{5, 5 * math.Pow(math.Pi, 5) / 1536},
	}
	for _, c := range cases {
		got, err := DirichletBeta(c.s)
		if err != nil {
			t.Fatalf("DirichletBeta(%g): %v", c.s, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DirichletBeta(%g)=%.16g want %.16g", c.s, got, c.want)
		}
	}
}

// TestDirichletBetaVsDirectSum cross-checks the Hurwitz-based evaluation
// against direct summation of Eq. (10) with Euler-style pairing, at the
// half-integer arguments actually used by the budget allocator.
func TestDirichletBetaVsDirectSum(t *testing.T) {
	for _, s := range []float64{1.5, 2.5, 3.5, 4.5, 5.5} {
		direct := 0.0
		// Pair consecutive terms for an alternating series: partial sums
		// of pairs converge monotonically.
		for n := 0; n < 2_000_000; n += 2 {
			a := math.Pow(float64(2*n+1), -s)
			b := math.Pow(float64(2*n+3), -s)
			direct += a - b
		}
		got, err := DirichletBeta(s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-direct) > 1e-7 {
			t.Errorf("DirichletBeta(%g)=%.12g direct=%.12g", s, got, direct)
		}
	}
}

func TestHurwitzZetaReducesToZeta(t *testing.T) {
	for _, s := range []float64{1.5, 2, 3.25, 7} {
		h, err := HurwitzZeta(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		z, err := Zeta(s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h-z) > 1e-14 {
			t.Errorf("HurwitzZeta(%g,1)=%g != Zeta=%g", s, h, z)
		}
	}
}

// Hurwitz zeta shift identity: zeta(s,a) = a^{-s} + zeta(s, a+1).
func TestHurwitzZetaShift(t *testing.T) {
	f := func(rawS, rawA float64) bool {
		s := 1.1 + math.Mod(math.Abs(rawS), 8)
		a := 0.1 + math.Mod(math.Abs(rawA), 5)
		h1, err1 := HurwitzZeta(s, a)
		h2, err2 := HurwitzZeta(s, a+1)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(h1-(math.Pow(a, -s)+h2)) <= 1e-11*(1+math.Abs(h1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialReal(t *testing.T) {
	cases := []struct {
		alpha float64
		k     int
		want  float64
	}{
		{5, 2, 10},
		{5, 0, 1},
		{5, 5, 1},
		{5, 6, 0},
		{-1.5, 0, 1},
		{-1.5, 1, -1.5},
		{-1.5, 2, 1.875},   // (-3/2)(-5/2)/2
		{-1.5, 3, -2.1875}, // (-3/2)(-5/2)(-7/2)/6
		{0.5, 2, -0.125},   // (1/2)(-1/2)/2
		{-0.5, 3, -0.3125}, // (-1/2)(-3/2)(-5/2)/6
	}
	for _, c := range cases {
		got, err := BinomialReal(c.alpha, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BinomialReal(%g,%d)=%g want %g", c.alpha, c.k, got, c.want)
		}
	}
	if _, err := BinomialReal(1, -1); err == nil {
		t.Error("negative k should error")
	}
}

// Pascal's rule holds for generalized binomials:
// C(a,k) = C(a-1,k) + C(a-1,k-1).
func TestBinomialPascal(t *testing.T) {
	f := func(rawA float64, rawK uint8) bool {
		a := math.Mod(rawA, 10)
		if math.IsNaN(a) {
			return true
		}
		k := int(rawK%10) + 1
		c0, _ := BinomialReal(a, k)
		c1, _ := BinomialReal(a-1, k)
		c2, _ := BinomialReal(a-1, k-1)
		return math.Abs(c0-(c1+c2)) <= 1e-9*(1+math.Abs(c0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
