// Package mathx implements the special functions required by the paper's
// mechanisms and analytical model, on top of the standard library only:
//
//   - Lambert W (principal and -1 branches), used to invert the CDF of the
//     planar Laplace radius distribution (§2.3, the Gamma-inverse step).
//   - The Riemann zeta function at real s > 1 and the Dirichlet L-series
//     L(s, chi4) (the Dirichlet beta function), which appear in the
//     coefficients of the lattice-sum expansion Eq. (8)-(10) of §5.
//   - Generalized binomial coefficients over real upper argument, needed for
//     the binom(-3/2, k-1) factor in Eq. (9).
//
// Both zeta-type functions are evaluated through the Hurwitz zeta function
// with Euler-Maclaurin summation, accurate to ~1e-14 for s >= 1.1.
package mathx

import (
	"errors"
	"math"
)

// ErrDomain is returned when an argument is outside a function's domain.
var ErrDomain = errors.New("mathx: argument outside domain")

// LambertW0 returns the principal branch W0(x) for x >= -1/e, the solution
// w >= -1 of w*e^w = x.
func LambertW0(x float64) (float64, error) {
	if math.IsNaN(x) || x < -1/math.E {
		return math.NaN(), ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	var w float64
	switch {
	case x < -0.25: // near the branch point -1/e
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3 + 11.0/72.0*p*p*p
	case x < 1:
		// series seed w ~ x(1 - x + 3/2 x^2)
		w = x * (1 - x + 1.5*x*x)
	default:
		l1 := math.Log(x)
		l2 := math.Log(l1)
		w = l1 - l2 + l2/l1
	}
	return halleyW(w, x)
}

// LambertWm1 returns the -1 branch W_{-1}(x) for x in [-1/e, 0), the
// solution w <= -1 of w*e^w = x.
func LambertWm1(x float64) (float64, error) {
	if math.IsNaN(x) || x < -1/math.E || x >= 0 {
		return math.NaN(), ErrDomain
	}
	var w float64
	if x < -0.25 {
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 - p - p*p/3 - 11.0/72.0*p*p*p
	} else {
		l1 := math.Log(-x)
		l2 := math.Log(-l1)
		w = l1 - l2 + l2/l1
	}
	return halleyW(w, x)
}

// halleyW refines a Lambert W estimate with Halley's method.
func halleyW(w, x float64) (float64, error) {
	if w == -1 {
		// Exactly at the branch point.
		return -1, nil
	}
	for i := 0; i < 60; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if f == 0 {
			return w, nil
		}
		d := ew*(w+1) - (w+2)*f/(2*(w+1))
		step := f / d
		wNext := w - step
		if math.Abs(step) <= 1e-15*(1+math.Abs(wNext)) {
			return wNext, nil
		}
		w = wNext
	}
	// Converged to the limit of float64 precision or oscillating at ulp
	// scale; the last iterate is accurate enough for all callers.
	return w, nil
}

// Bernoulli numbers B2..B12 used by the Euler-Maclaurin tail.
var bernoulli = []float64{
	1.0 / 6.0, -1.0 / 30.0, 1.0 / 42.0, -1.0 / 30.0, 5.0 / 66.0, -691.0 / 2730.0,
}

// HurwitzZeta returns zeta(s, a) = sum_{n>=0} (n+a)^{-s} for s > 1, a > 0,
// via Euler-Maclaurin summation.
func HurwitzZeta(s, a float64) (float64, error) {
	if math.IsNaN(s) || math.IsNaN(a) || s <= 1 || a <= 0 {
		return math.NaN(), ErrDomain
	}
	const N = 24
	sum := 0.0
	for n := 0; n < N; n++ {
		sum += math.Pow(float64(n)+a, -s)
	}
	na := float64(N) + a
	sum += math.Pow(na, 1-s) / (s - 1)
	sum += math.Pow(na, -s) / 2
	// Tail: sum_k B_{2k}/(2k)! * s(s+1)...(s+2k-2) * na^{-s-2k+1}
	factorial := 1.0
	poch := 1.0 // (s)_{2k-1} built incrementally
	pow := math.Pow(na, -s-1)
	for k := 1; k <= len(bernoulli); k++ {
		factorial *= float64(2*k-1) * float64(2*k)
		if k == 1 {
			poch = s
		} else {
			poch *= (s + float64(2*k-3)) * (s + float64(2*k-2))
		}
		sum += bernoulli[k-1] / factorial * poch * pow
		pow /= na * na
	}
	return sum, nil
}

// Zeta returns the Riemann zeta function for real s > 1.
func Zeta(s float64) (float64, error) {
	return HurwitzZeta(s, 1)
}

// DirichletBeta returns L(s, chi4) = sum_{n>=0} (-1)^n (2n+1)^{-s}, the
// Dirichlet L-series of the non-principal character mod 4 (Eq. 10 of the
// paper). Valid for s > 1 (sufficient for the Eq. 9 coefficients, which use
// s = k + 1/2 with k >= 1).
func DirichletBeta(s float64) (float64, error) {
	h1, err := HurwitzZeta(s, 0.25)
	if err != nil {
		return math.NaN(), err
	}
	h3, err := HurwitzZeta(s, 0.75)
	if err != nil {
		return math.NaN(), err
	}
	return math.Pow(4, -s) * (h1 - h3), nil
}

// BinomialReal returns the generalized binomial coefficient
// C(alpha, k) = alpha(alpha-1)...(alpha-k+1)/k! for real alpha and k >= 0.
func BinomialReal(alpha float64, k int) (float64, error) {
	if k < 0 {
		return math.NaN(), ErrDomain
	}
	num := 1.0
	for i := 0; i < k; i++ {
		num *= (alpha - float64(i)) / float64(i+1)
	}
	return num, nil
}
