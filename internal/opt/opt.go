// Package opt implements the Optimal Mechanism (OPT) of Bordenabe et al. as
// described in §3.2 of the paper: given a privacy budget eps, a regular grid
// of candidate locations, an adversarial prior Pi, and a utility metric dQ,
// it solves the linear program of Eq. (3)-(6) to obtain the channel matrix
// K(X)(Z) that minimizes expected utility loss subject to eps-GeoInd.
//
// The LP is solved with the structure-exploiting interior-point method of
// internal/lp. Two exact post-processing steps keep the result safe:
//
//   - Cleanup: tiny negative entries from the numerical solver are clamped
//     and rows are renormalized.
//   - Mixing: the channel is blended with the uniform channel,
//     K' = (1-delta) K + delta U. The uniform channel is 0-GeoInd (perfectly
//     private), and a convex combination of GeoInd mechanisms with e^{eps d}
//     >= 1 satisfies the same constraints, so mixing preserves eps-GeoInd
//     exactly while guaranteeing strictly positive entries. The positive
//     floor delta/n is what justifies dropping constraints for pairs with
//     exp(-eps d(x,x')) < delta/n: those are implied by the floor alone.
//
// VerifyGeoInd provides an independent O(n^3) check of every constraint.
package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/lp"
)

// DefaultMixDelta is the default uniform mixing weight. It is small enough
// to change expected utility loss by a negligible amount (< delta * diameter)
// and large enough to keep all probabilities comfortably above the float64
// noise floor.
const DefaultMixDelta = 1e-9

// Options configures channel construction.
type Options struct {
	// MixDelta is the uniform mixing weight delta; 0 means DefaultMixDelta.
	// Set to a negative value to disable mixing (then no constraints are
	// dropped either; useful for exact comparisons in tests).
	MixDelta float64
	// LP configures the interior-point solver.
	LP *lp.IPMOptions
}

func (o *Options) mixDelta() float64 {
	if o == nil || o.MixDelta == 0 {
		return DefaultMixDelta
	}
	if o.MixDelta < 0 {
		return 0
	}
	return o.MixDelta
}

// Channel is a solved optimal GeoInd mechanism over a grid: a row-stochastic
// matrix whose rows are input (actual) cells and columns output (reported)
// cells.
type Channel struct {
	// Grid is the candidate-location grid; X = Z = its cell centers.
	Grid *grid.Grid
	// Eps is the privacy budget the channel satisfies.
	Eps float64
	// Metric is the utility metric the channel was optimized for.
	Metric geo.Metric
	// K is the row-major channel matrix, length n*n, strictly positive with
	// unit row sums.
	K []float64
	// ExpectedLoss is sum_x prior[x] sum_z K[x][z] dQ(x, z) for the prior
	// used at construction time.
	ExpectedLoss float64
	// Iters is the number of interior-point iterations used.
	Iters int
	// PairFamilies is the number of ordered-pair constraint families in the
	// LP that produced the channel (each family spans all n outputs). For
	// the full formulation this is ~n(n-1); the spanner variant is far
	// smaller.
	PairFamilies int

	cum    []float64   // dense: row-wise cumulative sums (reference sampler)
	sparse *sparseRows // compact: pruned representation (K and cum are nil)
	ref    Sampler     // cached reference sampler (no per-call allocation)

	// localDomain, when non-nil, marks a locally relevant channel: the
	// sorted cell indices the LP was solved over. GeoInd verification is
	// restricted to pairs inside this domain (see BuildLocalCtx).
	localDomain []int32

	aliasOnce sync.Once // guards the lazy, shared alias-table build
	alias     Sampler
}

// Build solves the OPT linear program. priorWeights must have one
// nonnegative entry per grid cell; it is normalized internally.
func Build(eps float64, g *grid.Grid, priorWeights []float64, metric geo.Metric, opts *Options) (*Channel, error) {
	return BuildCtx(context.Background(), eps, g, priorWeights, metric, opts)
}

// BuildCtx is Build under a context: the LP solve polls ctx once per
// interior-point iteration (and per block inside an iteration), so canceling
// ctx aborts a running solve promptly with ctx.Err(). A solve that finishes
// before cancellation is unaffected.
func BuildCtx(ctx context.Context, eps float64, g *grid.Grid, priorWeights []float64, metric geo.Metric, opts *Options) (*Channel, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("opt: eps must be positive and finite, got %g", eps)
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("opt: unknown metric %v", metric)
	}
	n := g.NumCells()
	if len(priorWeights) != n {
		return nil, fmt.Errorf("opt: %d prior weights for %d cells", len(priorWeights), n)
	}
	total := 0.0
	for i, w := range priorWeights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("opt: invalid prior weight %g at cell %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("opt: prior has zero mass")
	}
	pi := make([]float64, n)
	for i, w := range priorWeights {
		pi[i] = w / total
	}

	centers := g.Centers()
	delta := (opts).mixDelta()
	dropTol := 0.0
	if delta > 0 {
		dropTol = delta / float64(n)
	}

	prob := &lp.GeoIndProblem{N: n, Obj: make([]float64, n*n)}
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			prob.Obj[x*n+z] = pi[x] * metric.Loss(centers[x], centers[z])
		}
	}
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			coef := math.Exp(-eps * centers[x].Dist(centers[xp]))
			if coef <= dropTol {
				continue // implied by the post-mix positivity floor
			}
			prob.Pairs = append(prob.Pairs, lp.Pair{X: x, Xp: xp, Coef: coef})
		}
	}

	var lpOpts *lp.IPMOptions
	if opts != nil {
		lpOpts = opts.LP
	}
	sol, err := prob.SolveCtx(ctx, lpOpts)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("opt: LP did not converge: %v (gap %.3g)", sol.Status, sol.Gap)
	}

	k := sol.K
	cleanup(k, n)
	if delta > 0 {
		mixUniform(k, n, delta)
	}

	ch := &Channel{Grid: g, Eps: eps, Metric: metric, K: k, Iters: sol.Iters, PairFamilies: len(prob.Pairs)}
	for x := 0; x < n; x++ {
		if pi[x] == 0 {
			continue
		}
		for z := 0; z < n; z++ {
			ch.ExpectedLoss += pi[x] * k[x*n+z] * metric.Loss(centers[x], centers[z])
		}
	}
	ch.buildCum()
	return ch, nil
}

// cleanup clamps negative entries to zero and renormalizes each row.
func cleanup(k []float64, n int) {
	for x := 0; x < n; x++ {
		row := k[x*n : (x+1)*n]
		sum := 0.0
		for i, v := range row {
			if v < 0 {
				row[i] = 0
			} else {
				sum += v
			}
		}
		if sum <= 0 {
			u := 1 / float64(n)
			for i := range row {
				row[i] = u
			}
			continue
		}
		inv := 1 / sum
		for i := range row {
			row[i] *= inv
		}
	}
}

// mixUniform applies K <- (1-delta) K + delta/n.
func mixUniform(k []float64, n int, delta float64) {
	u := delta / float64(n)
	for i := range k {
		k[i] = (1-delta)*k[i] + u
	}
}

// buildCum builds the dense cumulative rows (prefix sums of K) and caches
// the reference sampler over them.
func (c *Channel) buildCum() {
	n := c.Grid.NumCells()
	c.cum = prefixSumRows(n, c.K)
	c.ref = cumSampler{n: n, cum: c.cum}
}

// prefixSumRows is the single prefix-sum implementation shared by dense
// channels and the snapshot decoder (bit-determinism of float64 addition is
// what lets a loaded channel sample identically to a solved one).
func prefixSumRows(n int, k []float64) []float64 {
	cum := make([]float64, n*n)
	for x := 0; x < n; x++ {
		s := 0.0
		for z := 0; z < n; z++ {
			s += k[x*n+z]
			cum[x*n+z] = s
		}
	}
	return cum
}

// initSparse attaches a compact representation and its reference sampler.
func (c *Channel) initSparse(s *sparseRows) {
	c.sparse = s
	c.ref = sparseRefSampler{s: s}
}

// NewChannel wraps a caller-supplied row-stochastic matrix as a
// sampling-ready channel (rows are renormalized exactly). It exists for
// synthetic channels — closed-form mechanisms, benchmarks, property tests —
// and performs no GeoInd verification: callers claiming eps must check with
// VerifyGeoInd (Prune always re-verifies regardless).
func NewChannel(g *grid.Grid, eps float64, metric geo.Metric, k []float64) (*Channel, error) {
	if g == nil {
		return nil, fmt.Errorf("opt: nil grid")
	}
	n := g.NumCells()
	if len(k) != n*n {
		return nil, fmt.Errorf("opt: matrix has %d entries, want %d", len(k), n*n)
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("opt: eps must be positive and finite, got %g", eps)
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("opt: unknown metric %v", metric)
	}
	kc := append([]float64(nil), k...)
	for x := 0; x < n; x++ {
		row := kc[x*n : (x+1)*n]
		sum := 0.0
		for _, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("opt: matrix entry %g out of range", v)
			}
			sum += v
		}
		if sum <= 0 {
			return nil, fmt.Errorf("opt: matrix row %d has zero mass", x)
		}
		inv := 1 / sum
		for i := range row {
			row[i] *= inv
		}
	}
	ch := &Channel{Grid: g, Eps: eps, Metric: metric, K: kc}
	ch.buildCum()
	return ch, nil
}

// N returns the number of candidate locations.
func (c *Channel) N() int { return c.Grid.NumCells() }

// IsCompact reports whether the channel uses the pruned sparse
// representation (K is nil; use Prob, Row or DenseK for matrix access).
func (c *Channel) IsCompact() bool { return c.sparse != nil }

// Prob returns K(x)(z), the probability of reporting cell z from cell x.
func (c *Channel) Prob(x, z int) float64 {
	if c.sparse != nil {
		return c.sparse.prob(x, z)
	}
	return c.K[x*c.N()+z]
}

// Row returns row x of the channel matrix. For dense channels this is a
// view into K (do not mutate); compact channels materialize a fresh slice.
func (c *Channel) Row(x int) []float64 {
	if c.sparse != nil {
		return c.sparse.appendRow(nil, x)
	}
	n := c.N()
	return c.K[x*n : (x+1)*n]
}

// DenseK returns the full row-major matrix. Dense channels return K itself
// (do not mutate); compact channels materialize a fresh n*n slice.
func (c *Channel) DenseK() []float64 {
	if c.sparse != nil {
		return c.sparse.dense()
	}
	return c.K
}

// VerifyMaxExcess re-runs the O(n^3) GeoInd verifier on the channel
// (materializing compact representations) and returns the maximum log-ratio
// excess; <= 0 means every constraint holds. For locally relevant channels
// the verifier is restricted to the reduced domain — that restriction is
// the variant's documented guarantee, full-domain constraints between two
// snapped inputs with different representatives are intentionally outside
// it.
func (c *Channel) VerifyMaxExcess() float64 {
	if c.localDomain != nil {
		return verifyLocalSparse(c.Grid, c.Eps, c.sparse, c.localDomain)
	}
	return VerifyGeoInd(c.Grid, c.Eps, c.DenseK())
}

// ProbSame returns Pr[x|x] = K(x)(x), the probability that the reported cell
// equals the actual cell; this is the quantity the budget-allocation model
// of §5 estimates as Phi(x).
func (c *Channel) ProbSame(x int) float64 { return c.Prob(x, x) }

// SampleIndex draws an output cell index for input cell x with the reference
// sampler (cumulative binary search; the historical bit-exact draw stream).
func (c *Channel) SampleIndex(x int, rng *rand.Rand) int {
	return c.ref.Sample(x, rng)
}

// Sampler returns the channel's sampler of the requested kind. The reference
// (cum) sampler is built with the channel; the alias table is built lazily on
// first request, exactly once, and shared by every caller — the returned
// values are immutable and safe for concurrent use.
func (c *Channel) Sampler(kind SamplerKind) Sampler {
	if kind != SamplerAlias {
		return c.ref
	}
	c.aliasOnce.Do(func() {
		if c.sparse != nil {
			c.alias = newSparseAlias(c.sparse)
		} else {
			c.alias = newAliasTable(c.N(), c.K)
		}
	})
	return c.alias
}

// Sample snaps the actual location to its enclosing cell (clamping into the
// grid if needed), draws an output cell from the channel, and returns its
// center: a full OPT invocation for one location report.
func (c *Channel) Sample(x geo.Point, rng *rand.Rand) geo.Point {
	xi := c.Grid.ClampIndex(x)
	return c.Grid.Center(c.SampleIndex(xi, rng))
}

// SampleVia is Sample drawing through an explicit Sampler (obtained from
// Sampler(kind)); with the reference sampler it is identical to Sample.
func (c *Channel) SampleVia(s Sampler, x geo.Point, rng *rand.Rand) geo.Point {
	xi := c.Grid.ClampIndex(x)
	return c.Grid.Center(s.Sample(xi, rng))
}

// SampleBatch runs Sample for every point in xs sequentially against one
// RNG and returns the reports in input order. The draws are exactly those a
// Sample loop would make, so batching never changes output — it only saves
// the per-call overhead of the callers that loop over large workloads.
func (c *Channel) SampleBatch(xs []geo.Point, rng *rand.Rand) []geo.Point {
	out := make([]geo.Point, len(xs))
	for i, x := range xs {
		out[i] = c.Sample(x, rng)
	}
	return out
}

// VerifyGeoInd exhaustively checks the channel against the GeoInd definition
// (Eq. 1) for all ordered pairs of cells and all outputs. It returns the
// maximum violation, measured as ln K(x)(z) - ln K(x')(z) - eps*d(x, x');
// nonpositive values mean the constraint holds. The check is O(n^3).
func VerifyGeoInd(g *grid.Grid, eps float64, k []float64) float64 {
	n := g.NumCells()
	centers := g.Centers()
	logK := make([]float64, len(k))
	for i, v := range k {
		logK[i] = math.Log(v)
	}
	maxExcess := math.Inf(-1)
	for x := 0; x < n; x++ {
		for xp := 0; xp < n; xp++ {
			if x == xp {
				continue
			}
			bound := eps * centers[x].Dist(centers[xp])
			for z := 0; z < n; z++ {
				if ex := logK[x*n+z] - logK[xp*n+z] - bound; ex > maxExcess {
					maxExcess = ex
				}
			}
		}
	}
	return maxExcess
}

// RowSumError returns the maximum deviation of any row sum from 1.
func RowSumError(n int, k []float64) float64 {
	worst := 0.0
	for x := 0; x < n; x++ {
		s := 0.0
		for z := 0; z < n; z++ {
			s += k[x*n+z]
		}
		if d := math.Abs(s - 1); d > worst {
			worst = d
		}
	}
	return worst
}
