package opt

import (
	"math"
	"math/rand/v2"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

func g20(g int) *grid.Grid { return grid.MustNew(geo.NewSquare(20), g) }

func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func skewedWeights(n int, rng *rand.Rand) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64() * rng.Float64()
	}
	w[rng.IntN(n)] += 3 // a popular "downtown" cell
	return w
}

func TestBuildValidation(t *testing.T) {
	g := g20(3)
	if _, err := Build(0, g, uniformWeights(9), geo.Euclidean, nil); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := Build(0.5, g, uniformWeights(4), geo.Euclidean, nil); err == nil {
		t.Error("weight length mismatch should error")
	}
	if _, err := Build(0.5, g, make([]float64, 9), geo.Euclidean, nil); err == nil {
		t.Error("zero-mass prior should error")
	}
	bad := uniformWeights(9)
	bad[0] = -1
	if _, err := Build(0.5, g, bad, geo.Euclidean, nil); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := Build(0.5, g, uniformWeights(9), geo.Metric(99), nil); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestChannelStochasticAndGeoInd(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	for _, tc := range []struct {
		g      int
		eps    float64
		metric geo.Metric
	}{
		{2, 0.5, geo.Euclidean},
		{3, 0.1, geo.Euclidean},
		{3, 0.9, geo.SquaredEuclidean},
		{4, 0.5, geo.Euclidean},
		{5, 0.3, geo.SquaredEuclidean},
	} {
		g := g20(tc.g)
		ch, err := Build(tc.eps, g, skewedWeights(g.NumCells(), rng), tc.metric, nil)
		if err != nil {
			t.Fatalf("g=%d eps=%g: %v", tc.g, tc.eps, err)
		}
		if e := RowSumError(ch.N(), ch.K); e > 1e-9 {
			t.Errorf("g=%d eps=%g: row sum error %g", tc.g, tc.eps, e)
		}
		for i, v := range ch.K {
			if v <= 0 {
				t.Fatalf("g=%d eps=%g: K[%d]=%g not strictly positive", tc.g, tc.eps, i, v)
			}
		}
		if ex := VerifyGeoInd(g, tc.eps, ch.K); ex > 1e-6 {
			t.Errorf("g=%d eps=%g: GeoInd violated by %g", tc.g, tc.eps, ex)
		}
	}
}

// TestLowEpsConstantReport: as eps -> 0 the GeoInd constraints force every
// column of K to be (nearly) constant across rows, i.e. the report carries no
// information about the input. The optimal such channel reports the cell
// minimizing the prior-weighted expected distance (the medoid) with
// probability ~1.
func TestLowEpsConstantReport(t *testing.T) {
	g := g20(3)
	ch, err := Build(0.001, g, uniformWeights(9), geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rows nearly identical.
	for x := 1; x < 9; x++ {
		for z := 0; z < 9; z++ {
			if math.Abs(ch.Prob(x, z)-ch.Prob(0, z)) > 0.01 {
				t.Fatalf("rows 0 and %d differ at z=%d: %g vs %g",
					x, z, ch.Prob(0, z), ch.Prob(x, z))
			}
		}
	}
	// Mass concentrates on the medoid: for a uniform prior on a symmetric
	// grid that is the center cell (index 4).
	if ch.Prob(0, 4) < 0.95 {
		t.Errorf("Prob(., medoid)=%g want ~1", ch.Prob(0, 4))
	}
}

// TestHighEpsNearIdentity: with a huge budget the mechanism can report the
// true cell almost always.
func TestHighEpsNearIdentity(t *testing.T) {
	g := g20(3)
	ch, err := Build(20, g, uniformWeights(9), geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 9; x++ {
		if ch.ProbSame(x) < 0.95 {
			t.Errorf("ProbSame(%d)=%g want near 1 at huge eps", x, ch.ProbSame(x))
		}
	}
	if ch.ExpectedLoss > 0.2 {
		t.Errorf("expected loss %g want near 0", ch.ExpectedLoss)
	}
}

// TestExpectedLossDecreasingInEps mirrors the LP-level monotonicity test at
// the mechanism level.
func TestExpectedLossDecreasingInEps(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	g := g20(3)
	w := skewedWeights(9, rng)
	prev := math.Inf(1)
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		ch, err := Build(eps, g, w, geo.Euclidean, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ch.ExpectedLoss > prev+1e-6 {
			t.Errorf("eps=%g: loss %g > previous %g", eps, ch.ExpectedLoss, prev)
		}
		prev = ch.ExpectedLoss
	}
}

// TestSamplingMatchesChannel: empirical output frequencies approach K rows.
func TestSamplingMatchesChannel(t *testing.T) {
	g := g20(3)
	ch, err := Build(0.5, g, uniformWeights(9), geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(81, 82))
	const trials = 100000
	counts := make([]int, 9)
	for i := 0; i < trials; i++ {
		counts[ch.SampleIndex(4, rng)]++
	}
	for z := 0; z < 9; z++ {
		emp := float64(counts[z]) / trials
		if math.Abs(emp-ch.Prob(4, z)) > 0.01 {
			t.Errorf("z=%d: empirical %g vs channel %g", z, emp, ch.Prob(4, z))
		}
	}
}

func TestSampleReturnsCellCenters(t *testing.T) {
	g := g20(4)
	ch, err := Build(0.5, g, uniformWeights(16), geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	centers := map[geo.Point]bool{}
	for _, c := range g.Centers() {
		centers[c] = true
	}
	rng := rand.New(rand.NewPCG(91, 92))
	for i := 0; i < 500; i++ {
		z := ch.Sample(geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}, rng)
		if !centers[z] {
			t.Fatalf("sample %v is not a cell center", z)
		}
	}
	// Out-of-bounds inputs are clamped, not rejected.
	if z := ch.Sample(geo.Point{X: -100, Y: 300}, rng); !centers[z] {
		t.Fatalf("clamped sample %v is not a cell center", z)
	}
}

// TestMixingPreservesGeoInd builds without mixing, verifies, then mixes with
// a large delta and verifies again: mixing can only loosen violations.
func TestMixingPreservesGeoInd(t *testing.T) {
	g := g20(3)
	ch, err := Build(0.5, g, uniformWeights(9), geo.Euclidean, &Options{MixDelta: -1})
	if err != nil {
		t.Fatal(err)
	}
	before := VerifyGeoInd(g, 0.5, ch.K)
	k2 := append([]float64(nil), ch.K...)
	mixUniform(k2, 9, 0.3)
	after := VerifyGeoInd(g, 0.5, k2)
	if after > math.Max(before, 0)+1e-9 {
		t.Errorf("mixing increased violation: before %g after %g", before, after)
	}
	if e := RowSumError(9, k2); e > 1e-12 {
		t.Errorf("mixing broke stochasticity: %g", e)
	}
}

// TestVerifierCatchesViolation: a deliberately unsafe channel must be
// flagged.
func TestVerifierCatchesViolation(t *testing.T) {
	g := g20(2)
	// Identity channel: reports the true cell with certainty. Infinitely
	// distinguishable (after flooring, still wildly over budget).
	k := make([]float64, 16)
	for x := 0; x < 4; x++ {
		for z := 0; z < 4; z++ {
			if x == z {
				k[x*4+z] = 1 - 3e-9
			} else {
				k[x*4+z] = 1e-9
			}
		}
	}
	if ex := VerifyGeoInd(g, 0.5, k); ex < 1 {
		t.Errorf("verifier missed a blatant violation: excess %g", ex)
	}
}

// TestDroppedConstraintsStillSafe uses a large domain and large eps so that
// far pairs are dropped, then verifies all constraints anyway.
func TestDroppedConstraintsStillSafe(t *testing.T) {
	big := grid.MustNew(geo.NewSquare(2000), 4) // 500km cells: eps*d up to ~2100
	ch, err := Build(1.0, big, uniformWeights(16), geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex := VerifyGeoInd(big, 1.0, ch.K); ex > 1e-6 {
		t.Errorf("GeoInd violated with dropped constraints: %g", ex)
	}
}

func TestProbSameUniformPriorSymmetry(t *testing.T) {
	// Under a uniform prior on a symmetric grid, symmetric cells should have
	// similar Pr[x|x]; spot-check the four corners of a 3x3 grid.
	g := g20(3)
	ch, err := Build(0.5, g, uniformWeights(9), geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	corners := []int{0, 2, 6, 8}
	base := ch.ProbSame(corners[0])
	for _, c := range corners[1:] {
		if math.Abs(ch.ProbSame(c)-base) > 0.01 {
			t.Errorf("corner %d ProbSame=%g vs %g", c, ch.ProbSame(c), base)
		}
	}
}
