package opt

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

// expMechChannel builds a synthetic exponential-mechanism channel
// K[x][z] ∝ e^{-(eps/2) d(x,z)} over a granularity² grid. By the triangle
// inequality the mechanism satisfies eps-GeoInd exactly, so it is a valid
// (and LP-free, hence fast) fixture for sampler and pruning tests at any n.
func expMechChannel(t testing.TB, granularity int, eps float64) *Channel {
	t.Helper()
	g, err := grid.New(geo.Rect{MaxX: 10, MaxY: 10}, granularity)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumCells()
	centers := g.Centers()
	k := make([]float64, n*n)
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			k[x*n+z] = math.Exp(-eps / 2 * centers[x].Dist(centers[z]))
		}
	}
	ch, err := NewChannel(g, eps, geo.Euclidean, k)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// TestSampleCumRowBitCompat pins the shared cum-row helper (and therefore
// SampleIndex and Sampler(SamplerCum)) to the historical draw stream: one
// rng.Float64() scaled by the final cumulative entry, sort.SearchFloat64s,
// and a clamp of the off-the-end edge case.
func TestSampleCumRowBitCompat(t *testing.T) {
	ch := expMechChannel(t, 3, 1.2)
	n := ch.N()

	historical := func(x int, rng *rand.Rand) int {
		row := ch.cum[x*n : (x+1)*n]
		z := sort.SearchFloat64s(row, rng.Float64()*row[n-1])
		if z >= n {
			z = n - 1
		}
		return z
	}

	rngA := rand.New(rand.NewPCG(11, 13))
	rngB := rand.New(rand.NewPCG(11, 13))
	rngC := rand.New(rand.NewPCG(11, 13))
	cum := ch.Sampler(SamplerCum)
	for i := 0; i < 2000; i++ {
		x := i % n
		want := historical(x, rngA)
		if got := ch.SampleIndex(x, rngB); got != want {
			t.Fatalf("draw %d: SampleIndex %d, historical %d", i, got, want)
		}
		if got := cum.Sample(x, rngC); got != want {
			t.Fatalf("draw %d: Sampler(cum) %d, historical %d", i, got, want)
		}
	}
}

// impliedAliasDist computes the exact distribution an alias table row
// produces: slot i is hit with probability 1/n, accepted with prob[i], and
// redirected to alias[i] otherwise.
func impliedAliasDist(n int, prob []float64, alias []int32) []float64 {
	p := make([]float64, n)
	for i := 0; i < n; i++ {
		p[i] += prob[i] / float64(n)
		p[alias[i]] += (1 - prob[i]) / float64(n)
	}
	return p
}

// TestAliasDistributionExactDense checks the alias table analytically rather
// than statistically: the distribution implied by (prob, alias) must equal
// the channel row to within accumulated float rounding. This is the
// "distribution-exact" claim of the tentpole, with no sampling noise.
func TestAliasDistributionExactDense(t *testing.T) {
	for _, granularity := range []int{3, 5} {
		ch := expMechChannel(t, granularity, 1.0)
		at, ok := ch.Sampler(SamplerAlias).(*aliasTable)
		if !ok {
			t.Fatalf("dense alias sampler is %T", ch.Sampler(SamplerAlias))
		}
		n := ch.N()
		for x := 0; x < n; x++ {
			implied := impliedAliasDist(n, at.prob[x*n:(x+1)*n], at.alias[x*n:(x+1)*n])
			for z := 0; z < n; z++ {
				if d := math.Abs(implied[z] - ch.Prob(x, z)); d > 1e-12*float64(n) {
					t.Fatalf("g=%d row %d col %d: implied %g, exact %g (|Δ|=%g)",
						granularity, x, z, implied[z], ch.Prob(x, z), d)
				}
			}
		}
	}
}

// TestAliasDistributionExactSparse is the compact-channel counterpart: the
// background branch contributes bgMass/n to every column and the kept branch
// runs a row-local alias over the kept values, so the implied column
// probability must reproduce Prob(x, z) exactly.
func TestAliasDistributionExactSparse(t *testing.T) {
	ch := expMechChannel(t, 4, 1.5)
	compact, err := ch.Prune(0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa, ok := compact.Sampler(SamplerAlias).(*sparseAlias)
	if !ok {
		t.Fatalf("sparse alias sampler is %T", compact.Sampler(SamplerAlias))
	}
	s := compact.sparse
	n := compact.N()
	for x := 0; x < n; x++ {
		implied := make([]float64, n)
		for z := range implied {
			implied[z] = s.bgMass[x] / float64(n)
		}
		lo, hi := int(s.rowStart[x]), int(s.rowStart[x+1])
		if cnt := hi - lo; cnt > 0 {
			local := impliedAliasDist(cnt, sa.prob[lo:hi], sa.alias[lo:hi])
			for j, pj := range local {
				implied[s.idx[lo+j]] += (1 - s.bgMass[x]) * pj
			}
		}
		for z := 0; z < n; z++ {
			if d := math.Abs(implied[z] - compact.Prob(x, z)); d > 1e-12*float64(n) {
				t.Fatalf("row %d col %d: implied %g, exact %g (|Δ|=%g)",
					x, z, implied[z], compact.Prob(x, z), d)
			}
		}
	}
}

// tvDistance returns the total-variation distance between an empirical count
// vector (over draws samples) and an exact distribution.
func tvDistance(counts []int, draws int, exact func(z int) float64) float64 {
	tv := 0.0
	for z, c := range counts {
		tv += math.Abs(float64(c)/float64(draws) - exact(z))
	}
	return tv / 2
}

// sampleTV draws from one row through s and returns the TV distance of the
// empirical distribution against exact.
func sampleTV(s Sampler, x, n, draws int, seed uint64, exact func(z int) float64) float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Sample(x, rng)]++
	}
	return tvDistance(counts, draws, exact)
}

// TestAliasVsCumTVDistance is the end-to-end statistical check: 200k draws
// through the alias sampler stay within TV 0.02 of the exact row — and within
// the same bound of the cum reference stream — for dense and compact channels.
// (The analytic tests above prove exactness of the tables; this one exercises
// the full Sample code path, clamps included.)
func TestAliasVsCumTVDistance(t *testing.T) {
	const draws = 200_000
	const bound = 0.02
	ch := expMechChannel(t, 4, 1.0)
	compact, err := expMechChannel(t, 4, 1.5).Prune(0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*Channel{"dense": ch, "compact": compact} {
		n := c.N()
		for _, x := range []int{0, n / 2, n - 1} {
			exact := func(z int) float64 { return c.Prob(x, z) }
			if tv := sampleTV(c.Sampler(SamplerAlias), x, n, draws, uint64(101+x), exact); tv > bound {
				t.Errorf("%s row %d: alias TV %.4f > %.2f", name, x, tv, bound)
			}
			if tv := sampleTV(c.Sampler(SamplerCum), x, n, draws, uint64(211+x), exact); tv > bound {
				t.Errorf("%s row %d: cum TV %.4f > %.2f", name, x, tv, bound)
			}
		}
	}
}

// TestAliasVsCumTVDistancePoints runs the same statistical check on a solved
// PointChannel (dense and pruned) over an irregular candidate set.
func TestAliasVsCumTVDistancePoints(t *testing.T) {
	const draws = 200_000
	const bound = 0.02
	centers := []geo.Point{
		{X: 0, Y: 0}, {X: 1.5, Y: 0.2}, {X: 3, Y: 2.4}, {X: 4.2, Y: 0.7},
		{X: 0.4, Y: 3.1}, {X: 2.2, Y: 4}, {X: 5, Y: 5}, {X: 1, Y: 1.8},
	}
	pw := []float64{5, 1, 3, 1, 2, 4, 1, 2}
	dense, err := BuildPoints(1.2, centers, pw, geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := dense.Prune(0.1, pw)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*PointChannel{"dense": dense, "compact": compact} {
		n := c.N()
		for _, x := range []int{0, n - 1} {
			exact := func(z int) float64 { return c.Prob(x, z) }
			if tv := sampleTV(c.Sampler(SamplerAlias), x, n, draws, uint64(307+x), exact); tv > bound {
				t.Errorf("%s row %d: alias TV %.4f > %.2f", name, x, tv, bound)
			}
			if tv := sampleTV(c.Sampler(SamplerCum), x, n, draws, uint64(401+x), exact); tv > bound {
				t.Errorf("%s row %d: cum TV %.4f > %.2f", name, x, tv, bound)
			}
		}
	}
}

// TestAliasSharingConcurrentBuild races the lazy alias-table build: many
// goroutines request Sampler(SamplerAlias) on one channel simultaneously,
// must all receive the identical shared table, and sample correct values from
// it. Run under -race by the Makefile's focused persistence/sharing pass.
func TestAliasSharingConcurrentBuild(t *testing.T) {
	compact, err := expMechChannel(t, 4, 1.5).Prune(0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for cname, ch := range map[string]*Channel{
		"dense":   expMechChannel(t, 4, 1.0),
		"compact": compact,
	} {
		const workers = 16
		samplers := make([]Sampler, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := ch.Sampler(SamplerAlias)
				samplers[w] = s
				rng := rand.New(rand.NewPCG(uint64(w), 99))
				n := ch.N()
				for i := 0; i < 5000; i++ {
					if z := s.Sample(i%n, rng); z < 0 || z >= n {
						t.Errorf("%s: sample out of range: %d", cname, z)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for w := 1; w < workers; w++ {
			if samplers[w] != samplers[0] {
				t.Fatalf("%s: goroutine %d received a different alias table", cname, w)
			}
		}
	}
}
