package opt

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/lp"
)

// BuildSpanner solves the optimal-mechanism LP with the constraint-reduction
// technique of Bordenabe et al. (CCS 2014, reference [2] of the paper):
// instead of one GeoInd constraint family per ordered pair of locations
// (O(n^2) families), constraints are imposed only on the edges of a greedy
// delta-spanner of the cell centers, each tightened by the stretch factor:
//
//	K(u)(z) <= exp((eps/delta) * d(u, v)) * K(v)(z)   for spanner edges (u,v).
//
// Chaining edge constraints along a spanner path of length <= delta*d(x,x')
// yields K(x)(z) <= exp(eps*d(x,x')) * K(x')(z) for every pair, so the
// result satisfies eps-GeoInd exactly — it is merely (slightly) conservative
// for nearby pairs, trading a little utility for a much smaller LP. With
// stretch -> 1 the spanner degenerates to the complete graph and the result
// coincides with Build.
func BuildSpanner(eps float64, g *grid.Grid, priorWeights []float64, metric geo.Metric, stretch float64, opts *Options) (*Channel, error) {
	return BuildSpannerCtx(context.Background(), eps, g, priorWeights, metric, stretch, opts)
}

// BuildSpannerCtx is BuildSpanner under a context; see BuildCtx for the
// cancellation contract.
func BuildSpannerCtx(ctx context.Context, eps float64, g *grid.Grid, priorWeights []float64, metric geo.Metric, stretch float64, opts *Options) (*Channel, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("opt: eps must be positive and finite, got %g", eps)
	}
	if !(stretch >= 1) || math.IsInf(stretch, 0) {
		return nil, fmt.Errorf("opt: spanner stretch %g must be >= 1", stretch)
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("opt: unknown metric %v", metric)
	}
	n := g.NumCells()
	if len(priorWeights) != n {
		return nil, fmt.Errorf("opt: %d prior weights for %d cells", len(priorWeights), n)
	}
	pi, err := normalizePrior(priorWeights)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	centers := g.Centers()

	edges := GreedySpanner(centers, stretch)

	prob := &lp.GeoIndProblem{N: n, Obj: make([]float64, n*n)}
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			prob.Obj[x*n+z] = pi[x] * metric.Loss(centers[x], centers[z])
		}
	}
	epsEdge := eps / stretch
	for _, e := range edges {
		d := centers[e[0]].Dist(centers[e[1]])
		coef := math.Exp(-epsEdge * d)
		// Both directions; no dropping — the chaining argument needs every
		// edge constraint present.
		prob.Pairs = append(prob.Pairs,
			lp.Pair{X: e[0], Xp: e[1], Coef: coef},
			lp.Pair{X: e[1], Xp: e[0], Coef: coef})
	}

	var lpOpts *lp.IPMOptions
	delta := (opts).mixDelta()
	if opts != nil {
		lpOpts = opts.LP
	}
	sol, err := prob.SolveCtx(ctx, lpOpts)
	if err != nil {
		return nil, fmt.Errorf("opt: spanner: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("opt: spanner LP did not converge: %v (gap %.3g)", sol.Status, sol.Gap)
	}
	k := sol.K
	cleanup(k, n)
	if delta > 0 {
		mixUniform(k, n, delta)
	}
	ch := &Channel{Grid: g, Eps: eps, Metric: metric, K: k, Iters: sol.Iters, PairFamilies: len(prob.Pairs)}
	for x := 0; x < n; x++ {
		if pi[x] == 0 {
			continue
		}
		for z := 0; z < n; z++ {
			ch.ExpectedLoss += pi[x] * k[x*n+z] * metric.Loss(centers[x], centers[z])
		}
	}
	ch.buildCum()
	return ch, nil
}

// GreedySpanner builds a delta-spanner over the points with the classic
// greedy algorithm: consider pairs in increasing distance order and add an
// edge whenever the current graph distance exceeds delta times the metric
// distance. The result satisfies dG(u, v) <= delta * d(u, v) for all pairs.
func GreedySpanner(pts []geo.Point, stretch float64) [][2]int {
	n := len(pts)
	type pair struct {
		u, v int
		d    float64
	}
	pairs := make([]pair, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, pair{u, v, pts[u].Dist(pts[v])})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })

	adj := make([][]spEdge, n)
	var edges [][2]int
	dist := make([]float64, n)
	for _, p := range pairs {
		if dijkstraBounded(adj, p.u, p.v, stretch*p.d, dist) <= stretch*p.d {
			continue
		}
		adj[p.u] = append(adj[p.u], spEdge{to: p.v, w: p.d})
		adj[p.v] = append(adj[p.v], spEdge{to: p.u, w: p.d})
		edges = append(edges, [2]int{p.u, p.v})
	}
	return edges
}

type spEdge struct {
	to int
	w  float64
}

// dijkstraBounded returns the shortest-path distance from src to dst in the
// weighted graph, abandoning the search once all frontier nodes exceed
// bound (in which case it returns +Inf). dist is scratch space of length n.
func dijkstraBounded(adj [][]spEdge, src, dst int, bound float64, dist []float64) float64 {
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &spHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(spItem)
		if item.d > dist[item.node] {
			continue
		}
		if item.node == dst {
			return item.d
		}
		if item.d > bound {
			return math.Inf(1)
		}
		for _, e := range adj[item.node] {
			nd := item.d + e.w
			if nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, spItem{node: e.to, d: nd})
			}
		}
	}
	return dist[dst]
}

type spItem struct {
	node int
	d    float64
}

type spHeap []spItem

func (h spHeap) Len() int            { return len(h) }
func (h spHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h spHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *spHeap) Push(x interface{}) { *h = append(*h, x.(spItem)) }
func (h *spHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
