package opt

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

// Snapshot payload encoding for solved channels (the bytes framed by
// internal/channel's versioned, checksummed snapshot files). The encoding is
// little-endian and fully self-describing: a one-byte kind tag, the grid
// geometry (or candidate set), the solve parameters, and the length-prefixed
// row-major K matrix plus its cumulative-row companion. Decode rebuilds and
// revalidates everything — grid bounds and granularity, metric, row
// stochasticity, strict positivity and finiteness of K, and bit-exact
// agreement of the stored cumulative rows with a recomputation from K — so a
// loaded channel samples identically to the solved channel it mirrors, and
// malformed bytes (even ones that pass the outer checksum) are rejected
// rather than served.

const (
	snapKindGrid   = 1 // *Channel over a regular grid
	snapKindPoints = 2 // *PointChannel over an arbitrary candidate set
)

// rowSumTol bounds the acceptable deviation of a decoded row sum from 1.
// Freshly built channels are renormalized exactly, so any larger deviation
// indicates foreign or damaged bytes.
const rowSumTol = 1e-6

// SnapshotCodec implements internal/channel's Codec for the two channel
// types this repository caches: *Channel (grid mechanisms: MSM, quadtree)
// and *PointChannel (the adaptive k-d index).
type SnapshotCodec struct{}

// SnapshotCost is a channel.Options.CostFn measuring resident bytes of the
// sampling-critical payload (K plus cumulative rows) of a cached channel.
// Unknown values cost 1 so a misconfigured store still bounds entry count.
func SnapshotCost(v any) int64 {
	switch c := v.(type) {
	case *Channel:
		return int64(len(c.K)+len(c.cum)) * 8
	case *PointChannel:
		return int64(len(c.K)+len(c.cum)) * 8
	default:
		return 1
	}
}

// Encode serializes a *Channel or *PointChannel.
func (SnapshotCodec) Encode(v any) ([]byte, error) {
	switch c := v.(type) {
	case *Channel:
		buf := make([]byte, 0, 1+4*8+4+8+8+8+4+4+2*(8+len(c.K)*8))
		buf = append(buf, snapKindGrid)
		b := c.Grid.Bounds()
		buf = appendFloat(buf, b.MinX)
		buf = appendFloat(buf, b.MinY)
		buf = appendFloat(buf, b.MaxX)
		buf = appendFloat(buf, b.MaxY)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Grid.Granularity()))
		buf = appendFloat(buf, c.Eps)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c.Metric)))
		buf = appendFloat(buf, c.ExpectedLoss)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Iters))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.PairFamilies))
		buf = appendFloats(buf, c.K)
		buf = appendFloats(buf, c.cum)
		return buf, nil
	case *PointChannel:
		buf := make([]byte, 0, 1+4+len(c.Centers)*16+8+8+8+4+2*(8+len(c.K)*8))
		buf = append(buf, snapKindPoints)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Centers)))
		for _, p := range c.Centers {
			buf = appendFloat(buf, p.X)
			buf = appendFloat(buf, p.Y)
		}
		buf = appendFloat(buf, c.Eps)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c.Metric)))
		buf = appendFloat(buf, c.ExpectedLoss)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Iters))
		buf = appendFloats(buf, c.K)
		buf = appendFloats(buf, c.cum)
		return buf, nil
	default:
		return nil, fmt.Errorf("opt: cannot snapshot %T", v)
	}
}

// Decode parses and validates a snapshot payload, returning a *Channel or
// *PointChannel ready to sample (cumulative rows verified bit-exact against
// a recomputation from K). ctx is polled before the parse and again before
// the O(n^2) validation pass, so a caller that has already given up does not
// pay for revalidating a large matrix it will discard.
func (SnapshotCodec) Decode(ctx context.Context, data []byte) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &snapReader{data: data}
	kind := r.byte()
	switch kind {
	case snapKindGrid:
		return decodeGrid(ctx, r)
	case snapKindPoints:
		return decodePoints(ctx, r)
	default:
		return nil, fmt.Errorf("opt: unknown snapshot kind %d", kind)
	}
}

func decodeGrid(ctx context.Context, r *snapReader) (*Channel, error) {
	bounds := geo.Rect{MinX: r.float(), MinY: r.float(), MaxX: r.float(), MaxY: r.float()}
	gran := int(r.uint32())
	eps := r.float()
	metric := geo.Metric(int64(r.uint64()))
	loss := r.float()
	iters := int(r.uint32())
	pairFamilies := int(r.uint32())
	k := r.floats()
	cum := r.floats()
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("opt: %d trailing snapshot bytes", r.remaining())
	}
	for _, f := range []float64{bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("opt: non-finite grid bounds in snapshot")
		}
	}
	g, err := grid.New(bounds, gran)
	if err != nil {
		return nil, fmt.Errorf("opt: snapshot geometry: %w", err)
	}
	ch := &Channel{
		Grid: g, Eps: eps, Metric: metric, K: k,
		ExpectedLoss: loss, Iters: iters, PairFamilies: pairFamilies, cum: cum,
	}
	if iters < 0 || pairFamilies < 0 {
		return nil, fmt.Errorf("opt: negative solve metadata in snapshot")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := validateChannel(g.NumCells(), eps, metric, loss, k, cum); err != nil {
		return nil, err
	}
	return ch, nil
}

func decodePoints(ctx context.Context, r *snapReader) (*PointChannel, error) {
	n := int(r.uint32())
	if r.err == nil && (n < 1 || n > grid.MaxCellsPerSide*grid.MaxCellsPerSide) {
		return nil, fmt.Errorf("opt: snapshot candidate count %d out of range", n)
	}
	centers := make([]geo.Point, 0, min(n, 1<<16))
	for i := 0; i < n && r.err == nil; i++ {
		centers = append(centers, geo.Point{X: r.float(), Y: r.float()})
	}
	eps := r.float()
	metric := geo.Metric(int64(r.uint64()))
	loss := r.float()
	iters := int(r.uint32())
	k := r.floats()
	cum := r.floats()
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("opt: %d trailing snapshot bytes", r.remaining())
	}
	for _, p := range centers {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			return nil, fmt.Errorf("opt: non-finite candidate location in snapshot")
		}
	}
	if iters < 0 {
		return nil, fmt.Errorf("opt: negative solve metadata in snapshot")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := validateChannel(n, eps, metric, loss, k, cum); err != nil {
		return nil, err
	}
	return &PointChannel{
		Centers: centers, Eps: eps, Metric: metric, K: k,
		ExpectedLoss: loss, Iters: iters, cum: cum,
	}, nil
}

// validateChannel checks the invariants every freshly built channel holds:
// positive finite eps, known metric, finite nonnegative loss, an n x n
// matrix of finite nonnegative entries with row sums within rowSumTol of 1,
// and cumulative rows that are a bit-exact prefix-sum recomputation of K
// (float64 addition is deterministic, so solved and loaded channels must
// agree on every bit or sampling could diverge).
func validateChannel(n int, eps float64, metric geo.Metric, loss float64, k, cum []float64) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("opt: snapshot eps %g out of range", eps)
	}
	if !metric.Valid() {
		return fmt.Errorf("opt: snapshot has unknown metric %v", metric)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) || loss < 0 {
		return fmt.Errorf("opt: snapshot expected loss %g out of range", loss)
	}
	if len(k) != n*n {
		return fmt.Errorf("opt: snapshot K has %d entries, want %d", len(k), n*n)
	}
	if len(cum) != n*n {
		return fmt.Errorf("opt: snapshot cum has %d entries, want %d", len(cum), n*n)
	}
	for i, v := range k {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("opt: snapshot K[%d] = %g out of range", i, v)
		}
	}
	for x := 0; x < n; x++ {
		s := 0.0
		for z := 0; z < n; z++ {
			s += k[x*n+z]
			if cum[x*n+z] != s {
				return fmt.Errorf("opt: snapshot cum[%d] diverges from prefix sum of K", x*n+z)
			}
		}
		if math.Abs(s-1) > rowSumTol {
			return fmt.Errorf("opt: snapshot row %d sums to %g", x, s)
		}
	}
	return nil
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func appendFloats(buf []byte, fs []float64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(fs)))
	for _, f := range fs {
		buf = appendFloat(buf, f)
	}
	return buf
}

// snapReader is a bounds-checked little-endian cursor. The first short read
// latches an error; subsequent reads return zero values, so decode paths can
// read a full record and check err once.
type snapReader struct {
	data []byte
	off  int
	err  error
}

func (r *snapReader) remaining() int { return len(r.data) - r.off }

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.err = fmt.Errorf("opt: snapshot truncated at offset %d", r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *snapReader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *snapReader) uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *snapReader) float() float64 { return math.Float64frombits(r.uint64()) }

func (r *snapReader) floats() []float64 {
	n := r.uint64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining())/8 {
		r.err = fmt.Errorf("opt: snapshot float slice length %d exceeds remaining bytes", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.float()
	}
	return out
}
