package opt

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

// Snapshot payload encoding for solved channels (the bytes framed by
// internal/channel's versioned, checksummed snapshot files — format v2).
// The encoding is little-endian and fully self-describing: a one-byte kind
// tag, the grid geometry (or candidate set), the solve parameters, and the
// matrix in its native representation:
//
//   - Dense kinds store the length-prefixed row-major K matrix only. The
//     cumulative-row companion that format v1 duplicated on disk (doubling
//     every snapshot) is rebuilt at decode time by the same prefix-sum code
//     the solver uses — float64 addition is deterministic, so the rebuilt
//     rows are bit-identical to the solved channel's and sampling from a
//     loaded channel matches the original draw for draw.
//   - Compact kinds store the pruned representation: prune parameters
//     (pruneMass, beta), the per-row uniform background levels, per-row kept
//     counts, and the flat (index, prob) pairs. Decode revalidates geometry,
//     row mass, CSR structure, the beta floor — and re-runs the full O(n^3)
//     GeoInd verifier on the materialized matrix, so no byte pattern can
//     smuggle an ε-violating channel past the loader.
//
// Malformed bytes (even ones that pass the outer frame checksum) are
// rejected rather than served; the store treats that as a miss and re-solves.

const (
	snapKindGrid          = 1 // dense *Channel over a regular grid
	snapKindPoints        = 2 // dense *PointChannel over a candidate set
	snapKindGridCompact   = 3 // pruned *Channel
	snapKindPointsCompact = 4 // pruned *PointChannel
	snapKindGridLocal     = 5 // locally relevant *Channel (compact + domain)
)

// rowSumTol bounds the acceptable deviation of a decoded row sum from 1.
// Freshly built channels are renormalized exactly, so any larger deviation
// indicates foreign or damaged bytes.
const rowSumTol = 1e-6

// SnapshotCodec implements internal/channel's Codec for the two channel
// types this repository caches: *Channel (grid mechanisms: MSM, quadtree)
// and *PointChannel (the adaptive k-d index), in both their dense and
// compact (pruned) representations.
type SnapshotCodec struct{}

// SnapshotCost is a channel.Options.CostFn measuring resident bytes of the
// sampling-critical payload of a cached channel: K plus cumulative rows for
// dense channels, the CSR arrays plus background rows for compact ones
// (lazily built alias tables are excluded — they are derived state, rebuilt
// on demand after an eviction). Unknown values cost 1 so a misconfigured
// store still bounds entry count.
func SnapshotCost(v any) int64 {
	switch c := v.(type) {
	case *Channel:
		if c.sparse != nil {
			return c.sparse.costBytes()
		}
		return int64(len(c.K)+len(c.cum)) * 8
	case *PointChannel:
		if c.sparse != nil {
			return c.sparse.costBytes()
		}
		return int64(len(c.K)+len(c.cum)) * 8
	default:
		return 1
	}
}

// appendGridGeom writes the grid bounds and granularity.
func appendGridGeom(buf []byte, g *grid.Grid) []byte {
	b := g.Bounds()
	buf = appendFloat(buf, b.MinX)
	buf = appendFloat(buf, b.MinY)
	buf = appendFloat(buf, b.MaxX)
	buf = appendFloat(buf, b.MaxY)
	return binary.LittleEndian.AppendUint32(buf, uint32(g.Granularity()))
}

// appendSparse writes the compact matrix payload: pruneMass, beta, the
// per-row background levels, per-row kept counts, then the flat index and
// value arrays.
func appendSparse(buf []byte, s *sparseRows) []byte {
	buf = appendFloat(buf, s.pruneMass)
	buf = appendFloat(buf, s.beta)
	buf = appendFloats(buf, s.bg)
	for x := 0; x < s.n; x++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.rowStart[x+1]-s.rowStart[x]))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.idx)))
	for _, i := range s.idx {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
	}
	buf = appendFloats(buf, s.val)
	return buf
}

// Encode serializes a *Channel or *PointChannel (dense or compact).
func (SnapshotCodec) Encode(v any) ([]byte, error) {
	switch c := v.(type) {
	case *Channel:
		var buf []byte
		switch {
		case c.localDomain != nil:
			buf = make([]byte, 0, 1+4*8+4+8+8+8+4+4+4+len(c.localDomain)*4+2*8+3*8+c.sparse.n*12+c.sparse.entries()*12)
			buf = append(buf, snapKindGridLocal)
		case c.sparse != nil:
			buf = make([]byte, 0, 1+4*8+4+8+8+8+4+4+2*8+3*8+c.sparse.n*12+c.sparse.entries()*12)
			buf = append(buf, snapKindGridCompact)
		default:
			buf = make([]byte, 0, 1+4*8+4+8+8+8+4+4+8+len(c.K)*8)
			buf = append(buf, snapKindGrid)
		}
		buf = appendGridGeom(buf, c.Grid)
		buf = appendFloat(buf, c.Eps)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c.Metric)))
		buf = appendFloat(buf, c.ExpectedLoss)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Iters))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.PairFamilies))
		switch {
		case c.localDomain != nil:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.localDomain)))
			for _, d := range c.localDomain {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
			}
			buf = appendSparse(buf, c.sparse)
		case c.sparse != nil:
			buf = appendSparse(buf, c.sparse)
		default:
			buf = appendFloats(buf, c.K)
		}
		return buf, nil
	case *PointChannel:
		var buf []byte
		if c.sparse != nil {
			buf = make([]byte, 0, 1+4+len(c.Centers)*16+8+8+8+4+2*8+3*8+c.sparse.n*12+c.sparse.entries()*12)
			buf = append(buf, snapKindPointsCompact)
		} else {
			buf = make([]byte, 0, 1+4+len(c.Centers)*16+8+8+8+4+8+len(c.K)*8)
			buf = append(buf, snapKindPoints)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Centers)))
		for _, p := range c.Centers {
			buf = appendFloat(buf, p.X)
			buf = appendFloat(buf, p.Y)
		}
		buf = appendFloat(buf, c.Eps)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c.Metric)))
		buf = appendFloat(buf, c.ExpectedLoss)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Iters))
		if c.sparse != nil {
			buf = appendSparse(buf, c.sparse)
		} else {
			buf = appendFloats(buf, c.K)
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("opt: cannot snapshot %T", v)
	}
}

// Decode parses and validates a snapshot payload, returning a *Channel or
// *PointChannel ready to sample. Dense payloads get their cumulative rows
// rebuilt (bit-exact with the solved channel by float determinism); compact
// payloads are structurally validated and then re-verified against the full
// GeoInd constraint set. ctx is polled before the parse and again before the
// expensive validation passes, so a caller that has already given up does
// not pay for revalidating a large matrix it will discard.
func (SnapshotCodec) Decode(ctx context.Context, data []byte) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &snapReader{data: data}
	kind := r.byte()
	switch kind {
	case snapKindGrid, snapKindGridCompact, snapKindGridLocal:
		return decodeGrid(ctx, r, kind)
	case snapKindPoints, snapKindPointsCompact:
		return decodePoints(ctx, r, kind == snapKindPointsCompact)
	default:
		return nil, fmt.Errorf("opt: unknown snapshot kind %d", kind)
	}
}

func decodeGrid(ctx context.Context, r *snapReader, kind byte) (*Channel, error) {
	bounds := geo.Rect{MinX: r.float(), MinY: r.float(), MaxX: r.float(), MaxY: r.float()}
	gran := int(r.uint32())
	eps := r.float()
	metric := geo.Metric(int64(r.uint64()))
	loss := r.float()
	iters := int(r.uint32())
	pairFamilies := int(r.uint32())
	if r.err != nil {
		return nil, r.err
	}
	for _, f := range []float64{bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("opt: non-finite grid bounds in snapshot")
		}
	}
	g, err := grid.New(bounds, gran)
	if err != nil {
		return nil, fmt.Errorf("opt: snapshot geometry: %w", err)
	}
	if iters < 0 || pairFamilies < 0 {
		return nil, fmt.Errorf("opt: negative solve metadata in snapshot")
	}
	n := g.NumCells()
	ch := &Channel{
		Grid: g, Eps: eps, Metric: metric,
		ExpectedLoss: loss, Iters: iters, PairFamilies: pairFamilies,
	}
	if kind == snapKindGridLocal {
		// The relevance domain travels with the payload; the sparse matrix
		// that follows is the standard compact encoding of all n rows.
		m := int(r.uint32())
		if r.err == nil && (m < 1 || m > n) {
			return nil, fmt.Errorf("opt: snapshot local domain size %d out of range", m)
		}
		domain := make([]int32, 0, min(m, 1<<16))
		prev := int32(-1)
		for i := 0; i < m && r.err == nil; i++ {
			d := r.uint32()
			if r.err != nil {
				break
			}
			if d >= uint32(n) || int32(d) <= prev {
				return nil, fmt.Errorf("opt: snapshot local domain not a sorted cell subset")
			}
			prev = int32(d)
			domain = append(domain, int32(d))
		}
		s, err := decodeSparse(ctx, r, n, eps, metric, loss)
		if err != nil {
			return nil, err
		}
		if err := validateLocalRows(g, s, domain); err != nil {
			return nil, err
		}
		ch.localDomain = domain
		ch.initSparse(s)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Same contract as compact payloads, restricted to the domain the
		// channel was solved over — the guarantee BuildLocal gates on.
		if ex := verifyLocalSparse(g, eps, s, domain); ex > pruneVerifyTol {
			return nil, fmt.Errorf("opt: local snapshot violates GeoInd on its domain (excess %.3g)", ex)
		}
		return ch, nil
	}
	if kind == snapKindGridCompact {
		s, err := decodeSparse(ctx, r, n, eps, metric, loss)
		if err != nil {
			return nil, err
		}
		ch.initSparse(s)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The ε constraint is part of the format contract for compact
		// payloads: a foreign writer's pruning is never trusted blindly.
		if ex := VerifyGeoInd(g, eps, s.dense()); ex > pruneVerifyTol {
			return nil, fmt.Errorf("opt: compact snapshot violates GeoInd (excess %.3g)", ex)
		}
		return ch, nil
	}
	k := r.floats()
	if err := finishDense(ctx, r, n, eps, metric, loss, k); err != nil {
		return nil, err
	}
	ch.K = k
	ch.buildCum()
	return ch, nil
}

func decodePoints(ctx context.Context, r *snapReader, compact bool) (*PointChannel, error) {
	n := int(r.uint32())
	if r.err == nil && (n < 1 || n > grid.MaxCellsPerSide*grid.MaxCellsPerSide) {
		return nil, fmt.Errorf("opt: snapshot candidate count %d out of range", n)
	}
	centers := make([]geo.Point, 0, min(n, 1<<16))
	for i := 0; i < n && r.err == nil; i++ {
		centers = append(centers, geo.Point{X: r.float(), Y: r.float()})
	}
	eps := r.float()
	metric := geo.Metric(int64(r.uint64()))
	loss := r.float()
	iters := int(r.uint32())
	if r.err != nil {
		return nil, r.err
	}
	for _, p := range centers {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			return nil, fmt.Errorf("opt: non-finite candidate location in snapshot")
		}
	}
	if iters < 0 {
		return nil, fmt.Errorf("opt: negative solve metadata in snapshot")
	}
	ch := &PointChannel{
		Centers: centers, Eps: eps, Metric: metric,
		ExpectedLoss: loss, Iters: iters,
	}
	if compact {
		s, err := decodeSparse(ctx, r, n, eps, metric, loss)
		if err != nil {
			return nil, err
		}
		ch.initSparse(s)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ex := VerifyGeoIndPoints(centers, eps, s.dense()); ex > pruneVerifyTol {
			return nil, fmt.Errorf("opt: compact snapshot violates GeoInd (excess %.3g)", ex)
		}
		return ch, nil
	}
	k := r.floats()
	if err := finishDense(ctx, r, n, eps, metric, loss, k); err != nil {
		return nil, err
	}
	ch.K = k
	ch.buildCum()
	return ch, nil
}

// finishDense runs the trailing-byte check and full dense-matrix validation.
func finishDense(ctx context.Context, r *snapReader, n int, eps float64, metric geo.Metric, loss float64, k []float64) error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("opt: %d trailing snapshot bytes", r.remaining())
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return validateChannel(n, eps, metric, loss, k)
}

// decodeSparse parses and structurally validates a compact matrix payload.
// The GeoInd re-verification runs in the caller (it needs the geometry).
func decodeSparse(ctx context.Context, r *snapReader, n int, eps float64, metric geo.Metric, loss float64) (*sparseRows, error) {
	pruneMass := r.float()
	beta := r.float()
	bg := r.floats()
	counts := make([]uint32, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		counts = append(counts, r.uint32())
	}
	idx := r.uint32s()
	val := r.floats()
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("opt: %d trailing snapshot bytes", r.remaining())
	}
	if err := validateScalars(eps, metric, loss); err != nil {
		return nil, err
	}
	if !(pruneMass > 0) || pruneMass >= MaxPruneMass {
		return nil, fmt.Errorf("opt: snapshot prune mass %g out of range", pruneMass)
	}
	if !(beta > 0) || beta >= MaxPruneMass {
		return nil, fmt.Errorf("opt: snapshot background weight %g out of range", beta)
	}
	if len(bg) != n {
		return nil, fmt.Errorf("opt: snapshot has %d background rows, want %d", len(bg), n)
	}
	if len(idx) != len(val) {
		return nil, fmt.Errorf("opt: snapshot index/value length mismatch (%d vs %d)", len(idx), len(val))
	}
	s := &sparseRows{
		n: n, beta: beta, pruneMass: pruneMass,
		rowStart: make([]int32, n+1),
		idx:      make([]int32, len(idx)),
		val:      val,
		bg:       bg,
	}
	total := 0
	for x, c := range counts {
		if int(c) > n {
			return nil, fmt.Errorf("opt: snapshot row %d keeps %d of %d entries", x, c, n)
		}
		total += int(c)
		if total > len(idx) {
			return nil, fmt.Errorf("opt: snapshot row counts exceed %d stored entries", len(idx))
		}
		s.rowStart[x+1] = int32(total)
	}
	if total != len(idx) {
		return nil, fmt.Errorf("opt: snapshot row counts cover %d of %d entries", total, len(idx))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bgFloor := beta / float64(n) * (1 - 1e-9)
	for x := 0; x < n; x++ {
		if math.IsNaN(bg[x]) || math.IsInf(bg[x], 0) || bg[x] < bgFloor {
			return nil, fmt.Errorf("opt: snapshot background level %g below floor at row %d", bg[x], x)
		}
		sum := float64(n) * bg[x]
		prev := int32(-1)
		for j := s.rowStart[x]; j < s.rowStart[x+1]; j++ {
			c := idx[j]
			if c >= uint32(n) || int32(c) <= prev {
				return nil, fmt.Errorf("opt: snapshot row %d has invalid column sequence", x)
			}
			prev = int32(c)
			s.idx[j] = int32(c)
			v := val[j]
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return nil, fmt.Errorf("opt: snapshot value %g out of range at entry %d", v, j)
			}
			sum += v
		}
		if math.Abs(sum-1) > rowSumTol {
			return nil, fmt.Errorf("opt: snapshot row %d sums to %g", x, sum)
		}
	}
	s.finish()
	return s, nil
}

// validateLocalRows enforces the structural contract of local payloads:
// every out-of-domain row is an entry-for-entry copy of its snap
// representative's row, where the representative mapping is re-derived
// from the grid geometry and the domain (a pure function, so encoder and
// decoder agree). Anything else is a foreign or damaged payload.
func validateLocalRows(g *grid.Grid, s *sparseRows, domain []int32) error {
	rep := snapReps(g, domain)
	for x := 0; x < s.n; x++ {
		r := int(rep[x])
		if r == x {
			continue
		}
		xs, xe := s.rowStart[x], s.rowStart[x+1]
		rs, re := s.rowStart[r], s.rowStart[r+1]
		if xe-xs != re-rs || s.bg[x] != s.bg[r] {
			return fmt.Errorf("opt: snapshot row %d is not a copy of its representative %d", x, r)
		}
		for j := int32(0); j < xe-xs; j++ {
			if s.idx[xs+j] != s.idx[rs+j] || s.val[xs+j] != s.val[rs+j] {
				return fmt.Errorf("opt: snapshot row %d is not a copy of its representative %d", x, r)
			}
		}
	}
	return nil
}

// validateScalars checks the solve parameters shared by every payload kind.
func validateScalars(eps float64, metric geo.Metric, loss float64) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("opt: snapshot eps %g out of range", eps)
	}
	if !metric.Valid() {
		return fmt.Errorf("opt: snapshot has unknown metric %v", metric)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) || loss < 0 {
		return fmt.Errorf("opt: snapshot expected loss %g out of range", loss)
	}
	return nil
}

// validateChannel checks the invariants every freshly built dense channel
// holds: positive finite eps, known metric, finite nonnegative loss, and an
// n x n matrix of finite nonnegative entries with row sums within rowSumTol
// of 1. (Format v1 also stored the cumulative rows and required bit-exact
// agreement with a recomputation; v2 rebuilds them from K with the same
// prefix-sum code instead, which guarantees agreement by construction.)
func validateChannel(n int, eps float64, metric geo.Metric, loss float64, k []float64) error {
	if err := validateScalars(eps, metric, loss); err != nil {
		return err
	}
	if len(k) != n*n {
		return fmt.Errorf("opt: snapshot K has %d entries, want %d", len(k), n*n)
	}
	for i, v := range k {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("opt: snapshot K[%d] = %g out of range", i, v)
		}
	}
	for x := 0; x < n; x++ {
		s := 0.0
		for z := 0; z < n; z++ {
			s += k[x*n+z]
		}
		if math.Abs(s-1) > rowSumTol {
			return fmt.Errorf("opt: snapshot row %d sums to %g", x, s)
		}
	}
	return nil
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func appendFloats(buf []byte, fs []float64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(fs)))
	for _, f := range fs {
		buf = appendFloat(buf, f)
	}
	return buf
}

// snapReader is a bounds-checked little-endian cursor. The first short read
// latches an error; subsequent reads return zero values, so decode paths can
// read a full record and check err once.
type snapReader struct {
	data []byte
	off  int
	err  error
}

func (r *snapReader) remaining() int { return len(r.data) - r.off }

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.err = fmt.Errorf("opt: snapshot truncated at offset %d", r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *snapReader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *snapReader) uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *snapReader) float() float64 { return math.Float64frombits(r.uint64()) }

func (r *snapReader) floats() []float64 {
	n := r.uint64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining())/8 {
		r.err = fmt.Errorf("opt: snapshot float slice length %d exceeds remaining bytes", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.float()
	}
	return out
}

func (r *snapReader) uint32s() []uint32 {
	n := r.uint64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining())/4 {
		r.err = fmt.Errorf("opt: snapshot uint32 slice length %d exceeds remaining bytes", n)
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.uint32()
	}
	return out
}
