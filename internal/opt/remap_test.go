package opt

import (
	"math"
	"math/rand/v2"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/laplace"
)

func TestRemapValidation(t *testing.T) {
	g := g20(3)
	ch, err := Build(0.5, g, uniformWeights(9), geo.Euclidean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Remap(ch, uniformWeights(4), geo.Euclidean); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Remap(ch, make([]float64, 9), geo.Euclidean); err == nil {
		t.Error("zero prior should error")
	}
	bad := uniformWeights(9)
	bad[2] = -1
	if _, err := Remap(ch, bad, geo.Euclidean); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := Remap(ch, uniformWeights(9), geo.Metric(7)); err == nil {
		t.Error("bad metric should error")
	}
}

// TestRemapNeverHurts: remapping is the Bayes-optimal post-processing, so
// the expected loss under the construction prior cannot increase.
func TestRemapNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, tc := range []struct {
		g      int
		eps    float64
		metric geo.Metric
	}{
		{3, 0.2, geo.Euclidean},
		{3, 0.5, geo.SquaredEuclidean},
		{4, 0.3, geo.Euclidean},
	} {
		g := g20(tc.g)
		w := skewedWeights(g.NumCells(), rng)
		ch, err := Build(tc.eps, g, w, tc.metric, nil)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Remap(ch, w, tc.metric)
		if err != nil {
			t.Fatal(err)
		}
		if re.ExpectedLoss > ch.ExpectedLoss+1e-9 {
			t.Errorf("g=%d eps=%g %v: remap loss %g > original %g",
				tc.g, tc.eps, tc.metric, re.ExpectedLoss, ch.ExpectedLoss)
		}
		if e := RowSumError(re.N(), re.K); e > 1e-9 {
			t.Errorf("remapped channel not stochastic: %g", e)
		}
	}
}

// TestRemapPreservesGeoIndOnPL: remapping a PL-discretized channel preserves
// the GeoInd bound (post-processing invariance), even though the remapped
// channel itself has zero entries.
func TestRemapImprovesPLUtility(t *testing.T) {
	g := g20(4)
	ch, err := PLChannel(0.3, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	w := skewedWeights(16, rng)
	// Expected loss of the raw PL channel under the prior.
	pi, err := normalizePrior(w)
	if err != nil {
		t.Fatal(err)
	}
	centers := g.Centers()
	raw := 0.0
	for x := 0; x < 16; x++ {
		for z := 0; z < 16; z++ {
			raw += pi[x] * ch.K[x*16+z] * centers[x].Dist(centers[z])
		}
	}
	re, err := Remap(ch, w, geo.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if re.ExpectedLoss > raw+1e-9 {
		t.Errorf("remap made PL worse: %g > %g", re.ExpectedLoss, raw)
	}
	t.Logf("PL raw loss %.4f km, remapped %.4f km", raw, re.ExpectedLoss)
}

// TestPLChannelMatchesSampling: the analytic PL channel matches empirical
// SampleRemapped frequencies.
func TestPLChannelMatchesSampling(t *testing.T) {
	g := g20(3)
	eps := 0.4
	ch, err := PLChannel(eps, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e := RowSumError(9, ch.K); e > 1e-9 {
		t.Fatalf("row sum error %g", e)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	pl, err := laplace.New(eps, rng)
	if err != nil {
		t.Fatal(err)
	}
	xCell := 4 // center cell
	x := g.Center(xCell)
	const trials = 150000
	counts := make([]float64, 9)
	for i := 0; i < trials; i++ {
		z := pl.SampleRemapped(x, g)
		idx, ok := g.CellIndex(z)
		if !ok {
			t.Fatal("remapped sample outside grid")
		}
		counts[idx]++
	}
	for z := 0; z < 9; z++ {
		emp := counts[z] / trials
		if math.Abs(emp-ch.K[xCell*9+z]) > 0.012 {
			t.Errorf("z=%d: empirical %.4f vs analytic %.4f", z, emp, ch.K[xCell*9+z])
		}
	}
}

// TestPLChannelBoundaryRow: a corner-cell input sends its out-of-grid mass
// back to boundary cells, so the corner's self-probability exceeds an
// interior cell's.
func TestPLChannelBoundaryRow(t *testing.T) {
	g := g20(3)
	ch, err := PLChannel(0.3, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ch.ProbSame(0) <= ch.ProbSame(4) {
		t.Errorf("corner self-prob %.4f not above interior %.4f (clamping should boost it)",
			ch.ProbSame(0), ch.ProbSame(4))
	}
}

// TestPLChannelSatisfiesGeoInd: the exact PL mechanism is eps-GeoInd and
// snapping is post-processing, but discretizing the *input* to cell centers
// means the channel matrix must satisfy the constraint with respect to
// distances between cell centers — which it does, since those are exactly
// the inputs used.
func TestPLChannelSatisfiesGeoInd(t *testing.T) {
	g := g20(3)
	eps := 0.5
	ch, err := PLChannel(eps, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ex := VerifyGeoInd(g, eps, ch.K); ex > 1e-6 {
		t.Errorf("PL channel violates GeoInd by %g", ex)
	}
}

func TestPLChannelValidation(t *testing.T) {
	g := g20(3)
	if _, err := PLChannel(0, g, 3); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := PLChannel(0.5, g, 0); err == nil {
		t.Error("sub=0 should error")
	}
}
