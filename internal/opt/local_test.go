package opt

import (
	"math"
	"testing"

	"geoind/internal/dataset"
	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/prior"
)

func localTestPrior(t *testing.T, ds *dataset.Dataset, gran int) (*grid.Grid, []float64) {
	t.Helper()
	g, err := grid.New(ds.Region(), gran)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return g, prior.FromPoints(g, ds.Points()).Weights()
}

func TestBuildLocalBasic(t *testing.T) {
	ds := dataset.SyntheticGowalla()
	g, w := localTestPrior(t, ds, 10)
	n := g.NumCells()
	radius := ds.Side * 0.1
	ch, err := BuildLocal(1.0, g, w, geo.Euclidean, radius, &LocalOptions{MassFloor: 0.05, Workers: 4})
	if err != nil {
		t.Fatalf("BuildLocal: %v", err)
	}
	if !ch.IsLocal() || !ch.IsCompact() {
		t.Fatalf("local channel not marked local+compact")
	}
	domain := ch.LocalDomain()
	if len(domain) == 0 || len(domain) >= n {
		t.Fatalf("domain size %d not a proper nonempty subset of %d cells", len(domain), n)
	}
	for i := 1; i < len(domain); i++ {
		if domain[i] <= domain[i-1] {
			t.Fatalf("domain not sorted/unique at %d: %v <= %v", i, domain[i], domain[i-1])
		}
	}
	if ex := ch.VerifyMaxExcess(); ex > pruneVerifyTol {
		t.Fatalf("restricted GeoInd excess %g > %g", ex, pruneVerifyTol)
	}
	for x := 0; x < n; x++ {
		sum := 0.0
		for _, v := range ch.Row(x) {
			if v <= 0 {
				t.Fatalf("non-positive entry in row %d", x)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", x, sum)
		}
	}
	// Out-of-domain rows must be exact copies of their snap representative.
	rep := snapReps(g, ch.localDomain)
	inDomain := make([]bool, n)
	for _, d := range domain {
		inDomain[d] = true
	}
	for x := 0; x < n; x++ {
		if inDomain[x] {
			if rep[x] != int32(x) {
				t.Fatalf("domain cell %d has rep %d", x, rep[x])
			}
			continue
		}
		rx, rr := ch.Row(x), ch.Row(int(rep[x]))
		for z := range rx {
			if rx[z] != rr[z] {
				t.Fatalf("snapped row %d differs from rep %d at col %d", x, rep[x], z)
			}
		}
	}
	if !(ch.ExpectedLoss > 0) {
		t.Fatalf("expected loss %g", ch.ExpectedLoss)
	}
}

// TestLocalUtilityParity pins the documented utility bound of the locally
// relevant construction against the exact dense channel on the seed
// priors: with the relevance radius covering the prior's support, the
// prior-weighted total-variation distance stays below localParityTV and
// the expected loss within localParityLossRel relative plus the analytic
// (massFloor+beta)·diameter padding slack.
const (
	localParityTV      = 0.15
	localParityLossRel = 0.10
)

func TestLocalUtilityParity(t *testing.T) {
	for _, ds := range []*dataset.Dataset{dataset.SyntheticGowalla(), dataset.SyntheticYelp()} {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			g, w := localTestPrior(t, ds, 10)
			n := g.NumCells()
			eps := 1.0
			exact, err := Build(eps, g, w, geo.Euclidean, nil)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			radius := ds.Side * 0.1
			massFloor := 0.05
			local, err := BuildLocal(eps, g, w, geo.Euclidean, radius, &LocalOptions{MassFloor: massFloor, Workers: 2})
			if err != nil {
				t.Fatalf("BuildLocal: %v", err)
			}
			pi, err := normalizePrior(w)
			if err != nil {
				t.Fatal(err)
			}

			tv := 0.0
			for x := 0; x < n; x++ {
				if pi[x] == 0 {
					continue
				}
				re, rl := exact.Row(x), local.Row(x)
				d := 0.0
				for z := 0; z < n; z++ {
					d += math.Abs(re[z] - rl[z])
				}
				tv += pi[x] * d / 2
			}
			if tv > localParityTV {
				t.Errorf("prior-weighted TV distance %g > %g", tv, localParityTV)
			}

			cw, chh := g.CellSize()
			beta, err := pruneBeta(eps, massFloor, math.Min(cw, chh))
			if err != nil {
				t.Fatal(err)
			}
			diam := math.Hypot(ds.Side, ds.Side)
			bound := localParityLossRel*exact.ExpectedLoss + (massFloor+beta)*diam
			if diff := math.Abs(local.ExpectedLoss - exact.ExpectedLoss); diff > bound {
				t.Errorf("expected loss %g vs exact %g: |diff| %g > bound %g",
					local.ExpectedLoss, exact.ExpectedLoss, diff, bound)
			}
			t.Logf("%s: m=%d/%d tv=%.4f loss local=%.4f exact=%.4f",
				ds.Name, len(local.LocalDomain()), n, tv, local.ExpectedLoss, exact.ExpectedLoss)
		})
	}
}

// TestLocalSpannerComposition checks the reduced LP can itself run on
// spanner constraints: far fewer pair families than the full m(m-1) set,
// same restricted GeoInd gate.
func TestLocalSpannerComposition(t *testing.T) {
	ds := dataset.SyntheticGowalla()
	g, w := localTestPrior(t, ds, 10)
	radius := ds.Side * 0.3
	full, err := BuildLocal(1.0, g, w, geo.Euclidean, radius, nil)
	if err != nil {
		t.Fatalf("BuildLocal: %v", err)
	}
	sp, err := BuildLocal(1.0, g, w, geo.Euclidean, radius, &LocalOptions{SpannerStretch: 1.5})
	if err != nil {
		t.Fatalf("BuildLocal spanner: %v", err)
	}
	m := len(sp.LocalDomain())
	if sp.PairFamilies >= m*(m-1) {
		t.Fatalf("spanner composition kept %d pair families, full set is %d", sp.PairFamilies, m*(m-1))
	}
	if ex := sp.VerifyMaxExcess(); ex > pruneVerifyTol {
		t.Fatalf("restricted GeoInd excess %g > %g", ex, pruneVerifyTol)
	}
	if sp.PairFamilies >= full.PairFamilies {
		t.Errorf("spanner pairs %d >= full local pairs %d", sp.PairFamilies, full.PairFamilies)
	}
}

func TestRelevanceDomainDegenerate(t *testing.T) {
	g, err := grid.New(geo.NewSquare(6), 6)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumCells()

	t.Run("all-mass-one-cell", func(t *testing.T) {
		w := make([]float64, n)
		w[17] = 1
		pi, _ := normalizePrior(w)
		dom := relevanceDomain(g, pi, 1.5, 1e-3, 1)
		if len(dom) == 0 {
			t.Fatal("empty domain")
		}
		centers := g.Centers()
		found := false
		for _, d := range dom {
			if d == 17 {
				found = true
			}
			if dist := centers[17].Dist(centers[d]); dist > 1.5 {
				t.Fatalf("cell %d at distance %g outside radius", d, dist)
			}
		}
		if !found {
			t.Fatal("core cell 17 not in its own domain")
		}
		// Tiny radius: the domain degenerates to the single core cell and
		// the m=1 LP path must still produce a verifying channel.
		ch, err := BuildLocal(1.0, g, w, geo.Euclidean, 0.05, nil)
		if err != nil {
			t.Fatalf("BuildLocal m=1: %v", err)
		}
		if m := len(ch.LocalDomain()); m != 1 {
			t.Fatalf("domain size %d, want 1", m)
		}
		if ex := ch.VerifyMaxExcess(); ex > pruneVerifyTol {
			t.Fatalf("m=1 GeoInd excess %g", ex)
		}
	})

	t.Run("uniform", func(t *testing.T) {
		w := make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		pi, _ := normalizePrior(w)
		dom := relevanceDomain(g, pi, 10, 1e-3, 1)
		if len(dom) != n {
			t.Fatalf("uniform prior with covering radius: domain %d, want all %d", len(dom), n)
		}
		if _, err := BuildLocal(1.0, g, w, geo.Euclidean, 10, nil); err != nil {
			t.Fatalf("BuildLocal full-domain: %v", err)
		}
	})

	t.Run("zero-mass", func(t *testing.T) {
		if _, err := BuildLocal(1.0, g, make([]float64, n), geo.Euclidean, 1, nil); err == nil {
			t.Fatal("zero-mass prior accepted")
		}
	})

	t.Run("empty-rows", func(t *testing.T) {
		// Half the cells carry no mass; they may only enter via dilation.
		w := make([]float64, n)
		for i := 0; i < n; i += 2 {
			w[i] = 1
		}
		pi, _ := normalizePrior(w)
		dom := relevanceDomain(g, pi, 1.2, 1e-3, -1)
		inDom := make(map[int32]bool, len(dom))
		for _, d := range dom {
			inDom[d] = true
		}
		for i := 0; i < n; i += 2 {
			if !inDom[int32(i)] {
				t.Fatalf("positive-mass cell %d missing from domain", i)
			}
		}
	})
}

// TestLocalParallelDeterminism pins that relevance-set construction is
// identical for any worker count, all the way down to the emitted matrix.
func TestLocalParallelDeterminism(t *testing.T) {
	ds := dataset.SyntheticYelp()
	g, w := localTestPrior(t, ds, 8)
	radius := ds.Side * 0.2
	a, err := BuildLocal(0.9, g, w, geo.Euclidean, radius, &LocalOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildLocal(0.9, g, w, geo.Euclidean, radius, &LocalOptions{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	da, db := a.LocalDomain(), b.LocalDomain()
	if len(da) != len(db) {
		t.Fatalf("domain sizes differ: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("domains differ at %d: %d vs %d", i, da[i], db[i])
		}
	}
	ka, kb := a.DenseK(), b.DenseK()
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("matrices differ at %d", i)
		}
	}
}
