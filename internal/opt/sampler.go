package opt

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Warm-path sampling is abstracted behind Sampler so the serving layers can
// choose their speed/​memory point without touching the channel math:
//
//   - SamplerCum is the historical per-row cumulative binary search
//     (O(log n) per draw). It consumes exactly one rng.Float64() per draw in
//     the exact sequence the pre-refactor SampleIndex did, so it is the
//     bit-compatibility reference and the correctness oracle the alias
//     implementation is tested against (TV distance / chi-square).
//   - SamplerAlias is a Walker/Vose alias table: O(1) per draw, branch-light,
//     distribution-exact up to float64 rounding of the table construction.
//     Tables are built lazily, once per channel, and shared by every
//     goroutine sampling that channel (the build is guarded by a sync.Once).
//
// Both kinds exist for dense and compact (pruned) channels; Channel.Sampler
// and PointChannel.Sampler return the right implementation for their
// representation.

// SamplerKind selects a warm-path sampling implementation.
type SamplerKind int

const (
	// SamplerCum is the cumulative-row binary search (reference/oracle).
	SamplerCum SamplerKind = iota
	// SamplerAlias is the O(1) Walker alias-method table.
	SamplerAlias
)

// String returns the flag spelling of the kind.
func (k SamplerKind) String() string {
	switch k {
	case SamplerCum:
		return "cum"
	case SamplerAlias:
		return "alias"
	default:
		return fmt.Sprintf("SamplerKind(%d)", int(k))
	}
}

// ParseSamplerKind parses a -sampler flag value. The empty string means the
// default (cum, the bit-compatible reference).
func ParseSamplerKind(s string) (SamplerKind, error) {
	switch s {
	case "", "cum":
		return SamplerCum, nil
	case "alias":
		return SamplerAlias, nil
	default:
		return 0, fmt.Errorf("opt: unknown sampler %q (want cum or alias)", s)
	}
}

// Sampler draws an output index for input index x. Implementations are safe
// for concurrent use: they are immutable after construction and rng is the
// only mutable state, owned by the caller.
type Sampler interface {
	Sample(x int, rng *rand.Rand) int
}

// searchCum locates u in a cumulative row by binary search, clamping the
// not-found edge case (u beyond the last entry, possible through float
// rounding) onto the last index.
func searchCum(row []float64, u float64) int {
	z := sort.SearchFloat64s(row, u)
	if z >= len(row) {
		z = len(row) - 1
	}
	return z
}

// sampleCumRow draws an index from one cumulative row: the single shared
// implementation of the clamp + sort.SearchFloat64s sampling step that
// Channel and PointChannel previously duplicated. Scaling the uniform draw
// by the final entry (≈1) keeps the draw stream bit-identical to the
// historical code for any row whose sum deviates from 1 in the last ulp.
func sampleCumRow(row []float64, rng *rand.Rand) int {
	return searchCum(row, rng.Float64()*row[len(row)-1])
}

// cumSampler is the reference Sampler over dense cumulative rows.
type cumSampler struct {
	n   int
	cum []float64
}

func (s cumSampler) Sample(x int, rng *rand.Rand) int {
	return sampleCumRow(s.cum[x*s.n:(x+1)*s.n], rng)
}

// aliasTable is a Walker/Vose alias table for a dense row-stochastic matrix:
// one n-slot table per row, flattened. A draw scales one uniform by n; the
// integer part picks a slot, the fractional part decides between the slot
// and its alias — O(1) and branch-light regardless of n.
type aliasTable struct {
	n     int
	prob  []float64 // n*n acceptance thresholds
	alias []int32   // n*n alias targets
}

func (t *aliasTable) Sample(x int, rng *rand.Rand) int {
	v := rng.Float64() * float64(t.n)
	i := int(v)
	if i >= t.n { // v == n is impossible, but guard float rounding
		i = t.n - 1
	}
	off := x*t.n + i
	if v-float64(i) < t.prob[off] {
		return i
	}
	return int(t.alias[off])
}

// newAliasTable builds the alias table of a dense n x n row-stochastic
// matrix. Cost is O(n) per row; the construction is deterministic, so every
// process building a table from the same matrix gets the same table.
func newAliasTable(n int, k []float64) *aliasTable {
	t := &aliasTable{n: n, prob: make([]float64, n*n), alias: make([]int32, n*n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for x := 0; x < n; x++ {
		buildAliasRow(k[x*n:(x+1)*n], t.prob[x*n:(x+1)*n], t.alias[x*n:(x+1)*n], scaled, &small, &large)
	}
	return t
}

// buildAliasRow fills one row's alias table from nonnegative weights w
// (Vose's stable formulation). scaled, small and large are caller-provided
// scratch to keep per-row allocations zero.
func buildAliasRow(w, prob []float64, alias []int32, scaled []float64, small, large *[]int32) {
	n := len(w)
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if sum <= 0 {
		// Degenerate row: fall back to uniform.
		for i := range prob {
			prob[i] = 1
			alias[i] = int32(i)
		}
		return
	}
	sm, lg := (*small)[:0], (*large)[:0]
	inv := float64(n) / sum
	for i, v := range w {
		scaled[i] = v * inv
		if scaled[i] < 1 {
			sm = append(sm, int32(i))
		} else {
			lg = append(lg, int32(i))
		}
	}
	for len(sm) > 0 && len(lg) > 0 {
		s := sm[len(sm)-1]
		sm = sm[:len(sm)-1]
		l := lg[len(lg)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			lg = lg[:len(lg)-1]
			sm = append(sm, l)
		}
	}
	// Leftovers (float residue) are exactly-1 slots.
	for _, i := range lg {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range sm {
		prob[i] = 1
		alias[i] = i
	}
	*small, *large = sm[:0], lg[:0]
}
