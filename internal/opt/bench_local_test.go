package opt

import (
	"math"
	"strconv"
	"testing"

	"geoind/internal/geo"
	"geoind/internal/grid"
	"geoind/internal/lp"
)

// Locally relevant OPT benchmarks: the construction's claim is that solving
// the LP only over the relevance set turns per-channel solve cost from a
// function of the grid size n into a function of the (much smaller) domain
// size m, unlocking city-scale fine grids.
//
// `make bench-local` records these as BENCH_local.json. Two claims are
// pinned there:
//
//   - BenchmarkLocalVsDense: at n=144 (the largest grid where the dense LP
//     is still comfortable to run repeatedly) the local solve over the same
//     concentrated prior is >=10x faster per channel. The `cells/solve`
//     metric reports how many LP variables each construction actually
//     solved over (n for dense, m for local).
//   - BenchmarkLocalPrecompute: the local construction completes at n=1024
//     (32x32), a size where the dense LP is infeasible outright: its
//     GeoInd constraint system has ~n^2(n-1) ~ 10^9 rows, i.e. ~24 GB of
//     slack variables alone before factorization, so there is no dense
//     timing to compare against - the dense column for this size is the
//     analytic infeasibility argument above, not a measurement.
//
// The fixture prior is a Gaussian hotspot, the regime the construction
// targets: real check-in priors concentrate in a city core while the grid
// covers the whole metro area.
const (
	benchLocalSide   = 20.0 // region side, km
	benchLocalSigma  = 0.8  // prior hotspot scale, km
	benchLocalRadius = 1.5  // relevance dilation radius, km
	benchLocalFloor  = 0.02 // prior mass allowed outside the core
	benchLocalEps    = 1.0
)

// benchLocalPrior builds the hotspot prior on a gran x gran grid: mass
// exp(-d^2/2sigma^2) around the region center, so the relevance core covers
// a fixed area in km^2 and a shrinking fraction of the grid as granularity
// grows.
func benchLocalPrior(b *testing.B, gran int) (*grid.Grid, []float64) {
	b.Helper()
	g, err := grid.New(geo.NewSquare(benchLocalSide), gran)
	if err != nil {
		b.Fatal(err)
	}
	hot := geo.Point{X: benchLocalSide / 2, Y: benchLocalSide / 2}
	centers := g.Centers()
	w := make([]float64, g.NumCells())
	for i, c := range centers {
		d := hot.Dist(c)
		w[i] = math.Exp(-d * d / (2 * benchLocalSigma * benchLocalSigma))
	}
	return g, w
}

// BenchmarkLocalVsDense solves the same channel both ways at n=144.
// Workers are pinned to 1 on both sides so the comparison is pure
// algorithmic work, not parallel speedup.
func BenchmarkLocalVsDense(b *testing.B) {
	const gran = 12
	g, w := benchLocalPrior(b, gran)
	n := g.NumCells()
	b.Run("dense/n="+strconv.Itoa(n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(benchLocalEps, g, w, geo.Euclidean, &Options{
				LP: &lp.IPMOptions{Workers: 1},
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n), "cells/solve")
	})
	b.Run("local/n="+strconv.Itoa(n), func(b *testing.B) {
		m := 0
		for i := 0; i < b.N; i++ {
			ch, err := BuildLocal(benchLocalEps, g, w, geo.Euclidean, benchLocalRadius, &LocalOptions{
				MassFloor: benchLocalFloor,
				LP:        &lp.IPMOptions{Workers: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			m = len(ch.LocalDomain())
		}
		b.ReportMetric(float64(m), "cells/solve")
	})
}

// BenchmarkLocalPrecompute runs the local construction at n=1024, where the
// dense LP cannot be formed at all (see the package comment above). The LP
// itself may use all cores here - this measures the realistic precompute
// path, not a controlled algorithmic comparison.
func BenchmarkLocalPrecompute(b *testing.B) {
	const gran = 32
	g, w := benchLocalPrior(b, gran)
	n := g.NumCells()
	b.Run("local/n="+strconv.Itoa(n), func(b *testing.B) {
		m := 0
		for i := 0; i < b.N; i++ {
			ch, err := BuildLocal(benchLocalEps, g, w, geo.Euclidean, benchLocalRadius, &LocalOptions{
				MassFloor: benchLocalFloor,
				LP:        &lp.IPMOptions{Workers: -1},
				Workers:   -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			m = len(ch.LocalDomain())
		}
		b.ReportMetric(float64(m), "cells/solve")
	})
}
