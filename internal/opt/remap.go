package opt

import (
	"fmt"
	"math"

	"geoind/internal/geo"
	"geoind/internal/grid"
)

// Remap computes the Bayesian-optimal post-processing of a channel
// (Chatzikokolakis, ElSalamouny, Palamidessi, PoPETS 2017 — reference [5] of
// the paper, whose evaluation applies it to the PL benchmark): every output
// cell z is deterministically replaced by the cell minimizing the posterior
// expected utility loss,
//
//	r(z) = argmin_{z'} sum_x Pr[x | z] * dQ(x, z'),
//
// where the posterior is computed from the construction prior by Bayes'
// rule. Remapping acts only on the mechanism's output, so it preserves
// eps-GeoInd exactly, and by construction it never increases the expected
// loss under the prior it was derived for.
//
// The returned channel has K'[x][z'] = sum_{z: r(z)=z'} K[x][z] and shares
// the original's grid, budget and metric. Its Sample method reports the
// remapped cells directly.
func Remap(c *Channel, priorWeights []float64, metric geo.Metric) (*Channel, error) {
	n := c.N()
	if len(priorWeights) != n {
		return nil, fmt.Errorf("opt: remap: %d prior weights for %d cells", len(priorWeights), n)
	}
	pi, err := normalizePrior(priorWeights)
	if err != nil {
		return nil, fmt.Errorf("opt: remap: %w", err)
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("opt: remap: unknown metric %v", metric)
	}
	centers := c.Grid.Centers()

	// joint[x][z] = pi_x * K[x][z]; column sums give the output marginal.
	mapping := make([]int, n)
	for z := 0; z < n; z++ {
		best, bestCost := z, math.Inf(1)
		for zp := 0; zp < n; zp++ {
			cost := 0.0
			for x := 0; x < n; x++ {
				w := pi[x] * c.K[x*n+z]
				if w == 0 {
					continue
				}
				cost += w * metric.Loss(centers[x], centers[zp])
			}
			if cost < bestCost {
				best, bestCost = zp, cost
			}
		}
		mapping[z] = best
	}

	k := make([]float64, n*n)
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			k[x*n+mapping[z]] += c.K[x*n+z]
		}
	}
	out := &Channel{Grid: c.Grid, Eps: c.Eps, Metric: metric, K: k, Iters: c.Iters}
	for x := 0; x < n; x++ {
		if pi[x] == 0 {
			continue
		}
		for z := 0; z < n; z++ {
			if k[x*n+z] == 0 {
				continue
			}
			out.ExpectedLoss += pi[x] * k[x*n+z] * metric.Loss(centers[x], centers[z])
		}
	}
	out.buildCum()
	return out, nil
}

// PLChannel discretizes the planar Laplace mechanism onto a grid: entry
// [x][z] is the probability that x's cell center plus PL noise, snapped into
// the grid (out-of-bounds outputs clamp to the boundary), lands in cell z —
// exactly the distribution of laplace.SampleRemapped from a cell center.
//
// Cell masses come from a sub x sub midpoint rule per cell, computed over an
// extended virtual grid with a margin wide enough to capture all but e^-30
// of the noise mass; a margin cell's area clamps entirely into the nearest
// boundary cell (clamping is the componentwise nearest point), so folding
// margin cells onto boundary cells is exact. This is the "PL + remapping"
// benchmark of the paper's evaluation in channel-matrix form, which the
// Bayesian adversary module consumes.
func PLChannel(eps float64, g *grid.Grid, sub int) (*Channel, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("opt: pl channel: eps=%g must be positive and finite", eps)
	}
	if sub < 1 {
		return nil, fmt.Errorf("opt: pl channel: sub=%d must be >= 1", sub)
	}
	n := g.NumCells()
	gg := g.Granularity()
	centers := g.Centers()
	cw, chh := g.CellSize()
	bounds := g.Bounds()
	// Margin in cells capturing e^-30 of radial mass.
	reach := 30 / eps
	margin := int(reach/math.Min(cw, chh)) + 1
	cellDiag := math.Hypot(cw, chh)
	density := eps * eps / (2 * math.Pi)
	area := (cw / float64(sub)) * (chh / float64(sub))

	k := make([]float64, n*n)
	for x := 0; x < n; x++ {
		row := k[x*n : (x+1)*n]
		c := centers[x]
		for er := -margin; er < gg+margin; er++ {
			for ec := -margin; ec < gg+margin; ec++ {
				minX := bounds.MinX + float64(ec)*cw
				minY := bounds.MinY + float64(er)*chh
				cellCenter := geo.Point{X: minX + cw/2, Y: minY + chh/2}
				if c.Dist(cellCenter) > reach+cellDiag {
					continue
				}
				mass := 0.0
				for i := 0; i < sub; i++ {
					for j := 0; j < sub; j++ {
						p := geo.Point{
							X: minX + (float64(j)+0.5)*cw/float64(sub),
							Y: minY + (float64(i)+0.5)*chh/float64(sub),
						}
						mass += density * math.Exp(-eps*c.Dist(p))
					}
				}
				// Clamp the (possibly virtual) cell onto the grid.
				tr, tc := clampInt(er, 0, gg-1), clampInt(ec, 0, gg-1)
				row[g.Index(tr, tc)] += mass * area
			}
		}
		// Remove the e^-30 truncation residue exactly.
		total := 0.0
		for _, v := range row {
			total += v
		}
		inv := 1 / total
		for z := range row {
			row[z] *= inv
		}
	}
	ch := &Channel{Grid: g, Eps: eps, Metric: geo.Euclidean, K: k}
	ch.buildCum()
	return ch, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// normalizePrior validates and normalizes a weight vector.
func normalizePrior(w []float64) ([]float64, error) {
	total := 0.0
	for i, v := range w {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("invalid prior weight %g at cell %d", v, i)
		}
		total += v
	}
	if total == 0 {
		return nil, fmt.Errorf("prior has zero mass")
	}
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = v / total
	}
	return out, nil
}
