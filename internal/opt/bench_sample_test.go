package opt

import (
	"math/rand/v2"
	"strconv"
	"sync"
	"testing"

	"geoind/internal/geo"
)

// Sampler benchmarks: the warm path of a fleet-scale deployment is one
// sanitized report from an already-solved channel, so ns/draw here is the
// entire per-request cost. The fixtures are synthetic exponential-mechanism
// channels (see expMechChannel) with eps scaled so eps·cellSize is constant:
// rows concentrate near the diagonal the way solved OPT channels do,
// independent of grid size.
//
// `make bench-sample` records these as BENCH_sample.json; the committed
// baseline documents the tentpole claims (alias ≥5× cum on the warm path,
// compact snapshots ≥4× smaller than the v1 on-disk format).

// benchEps keeps eps·cellSize = 1.5 over the 10×10 fixture region.
func benchEps(granularity int) float64 { return 1.5 * float64(granularity) / 10 }

var benchFixtures struct {
	sync.Mutex
	dense   map[int]*Channel
	compact map[int]*Channel
}

// benchDense returns (building once per process) the dense fixture with
// granularity² cells.
func benchDense(b *testing.B, granularity int) *Channel {
	b.Helper()
	benchFixtures.Lock()
	defer benchFixtures.Unlock()
	if benchFixtures.dense == nil {
		benchFixtures.dense = map[int]*Channel{}
	}
	ch, ok := benchFixtures.dense[granularity]
	if !ok {
		ch = expMechChannel(b, granularity, benchEps(granularity))
		benchFixtures.dense[granularity] = ch
	}
	return ch
}

// benchCompact returns the pruned counterpart (prune mass 0.2). Building it
// runs the O(n³) verifier, so sizes are kept moderate and the result cached.
func benchCompact(b *testing.B, granularity int) *Channel {
	b.Helper()
	dense := benchDense(b, granularity)
	benchFixtures.Lock()
	defer benchFixtures.Unlock()
	if benchFixtures.compact == nil {
		benchFixtures.compact = map[int]*Channel{}
	}
	ch, ok := benchFixtures.compact[granularity]
	if !ok {
		var err error
		ch, err = dense.Prune(0.2, nil)
		if err != nil {
			b.Fatal(err)
		}
		benchFixtures.compact[granularity] = ch
	}
	return ch
}

// benchSample times s over random rows of an n-candidate channel.
func benchSample(b *testing.B, s Sampler, n int) {
	xs := make([]int, 1024)
	xrng := rand.New(rand.NewPCG(1, 2))
	for i := range xs {
		xs[i] = xrng.IntN(n)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += s.Sample(xs[i&1023], rng)
	}
	_ = sink
}

// BenchmarkSamplerDraw is the core comparison: one output draw per op,
// cum (binary search) vs alias (O(1) table), dense vs compact, across grid
// sizes. Single goroutine — the warm path is embarrassingly parallel, so
// single-core draw throughput is the per-core fleet capacity.
func BenchmarkSamplerDraw(b *testing.B) {
	for _, g := range []int{16, 32, 64} {
		n := g * g
		ch := benchDense(b, g)
		b.Run("dense/cum/n="+strconv.Itoa(n), func(b *testing.B) {
			benchSample(b, ch.Sampler(SamplerCum), n)
		})
		b.Run("dense/alias/n="+strconv.Itoa(n), func(b *testing.B) {
			benchSample(b, ch.Sampler(SamplerAlias), n)
		})
	}
	for _, g := range []int{16, 32} {
		n := g * g
		ch := benchCompact(b, g)
		b.Run("compact/cum/n="+strconv.Itoa(n), func(b *testing.B) {
			benchSample(b, ch.Sampler(SamplerCum), n)
		})
		b.Run("compact/alias/n="+strconv.Itoa(n), func(b *testing.B) {
			benchSample(b, ch.Sampler(SamplerAlias), n)
		})
	}
}

// BenchmarkSampleViaReport is the full warm-path report: clamp the actual
// location into the grid, draw, return the reported cell center — what one
// Report costs once the channel is resident.
func BenchmarkSampleViaReport(b *testing.B) {
	const g = 64
	ch := benchDense(b, g)
	pts := make([]geo.Point, 1024)
	prng := rand.New(rand.NewPCG(5, 6))
	for i := range pts {
		pts[i] = geo.Point{X: prng.Float64() * 10, Y: prng.Float64() * 10}
	}
	for _, kind := range []SamplerKind{SamplerCum, SamplerAlias} {
		s := ch.Sampler(kind)
		b.Run(kind.String()+"/n="+strconv.Itoa(g*g), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(7, 8))
			sink := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += ch.SampleVia(s, pts[i&1023], rng).X
			}
			_ = sink
		})
	}
}

// BenchmarkAliasBuild is the cold cost the alias sampler pays once per
// channel (at solve or snapshot-load time) to buy O(1) draws.
func BenchmarkAliasBuild(b *testing.B) {
	for _, g := range []int{16, 32} {
		n := g * g
		dense := benchDense(b, g)
		b.Run("dense/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				newAliasTable(n, dense.K)
			}
		})
		compact := benchCompact(b, g)
		b.Run("compact/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				newSparseAlias(compact.sparse)
			}
		})
	}
}

// BenchmarkSnapshotBytes records on-disk snapshot sizes (as B/op) on the
// standard eval grid (20×20 = 400 cells, the upper end of the paper's
// granularity sweep): the retired v1 dense layout (K plus a redundant cum
// copy, 16 B/entry), the v2 dense layout (8 B/entry), and the v2 compact
// layout. ns/op is the encode cost.
func BenchmarkSnapshotBytes(b *testing.B) {
	const g = 20
	n := g * g
	codec := SnapshotCodec{}
	dense := benchDense(b, g)
	compact := benchCompact(b, g)

	b.Run("v1-dense/n="+strconv.Itoa(n), func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			data, err := codec.Encode(dense)
			if err != nil {
				b.Fatal(err)
			}
			size = len(data) + 8*n*n // v1 appended the n² cum floats
		}
		b.ReportMetric(float64(size), "B/op")
	})
	b.Run("dense/n="+strconv.Itoa(n), func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			data, err := codec.Encode(dense)
			if err != nil {
				b.Fatal(err)
			}
			size = len(data)
		}
		b.ReportMetric(float64(size), "B/op")
	})
	b.Run("compact/n="+strconv.Itoa(n), func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			data, err := codec.Encode(compact)
			if err != nil {
				b.Fatal(err)
			}
			size = len(data)
		}
		b.ReportMetric(float64(size), "B/op")
	})
}
